package lbmech

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewSystem([]float64{1, 2, 5, 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Alloc) != 4 || len(out.Payment) != 4 {
		t.Fatalf("outcome shapes wrong: %+v", out)
	}
	var sum float64
	for _, x := range out.Alloc {
		sum += x
	}
	if math.Abs(sum-8) > 1e-9 {
		t.Errorf("allocation sums to %v, want 8", sum)
	}
	for i, u := range out.Utility {
		if u < 0 {
			t.Errorf("truthful agent %d has negative utility %v", i, u)
		}
	}
}

func TestPaperSystemHeadline(t *testing.T) {
	sys, err := PaperSystem()
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.RealLatency-78.4313725) > 1e-4 {
		t.Errorf("paper system latency = %v, want 78.43", out.RealLatency)
	}
}

func TestPaperExperiments(t *testing.T) {
	exps := PaperExperiments()
	if len(exps) != 8 {
		t.Fatalf("got %d experiments", len(exps))
	}
	for _, e := range exps {
		o, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		if o.RealLatency < 78.43 {
			t.Errorf("%s latency %v below optimum", e.Name, o.RealLatency)
		}
	}
}

func TestMechanismConstructors(t *testing.T) {
	agents := Truthful([]float64{1, 2, 5})
	for _, m := range []Mechanism{
		VerificationMechanism(nil),
		VerificationMechanism(LinearModel()),
		NoVerificationMechanism(nil),
		VCG(nil),
		ArcherTardos(),
		Classical(nil),
	} {
		o, err := m.Run(agents, 6)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if len(o.Alloc) != 3 {
			t.Errorf("%s: bad outcome", m.Name())
		}
	}
}

func TestMM1SystemThroughFacade(t *testing.T) {
	// Rate 3 keeps both exclusion subsystems (capacities 4 and 10)
	// strictly feasible.
	sys, err := NewSystem([]float64{0.1, 0.25}, 3, WithModel(MM1Model()))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Model != "mm1" {
		t.Errorf("model = %q", out.Model)
	}
}

func TestTruthfulnessThroughFacade(t *testing.T) {
	sys, err := NewSystem([]float64{1, 2, 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.VerifyTruthfulness(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truthful() {
		t.Errorf("unexpected manipulation: %+v", rep.Best)
	}
}

func TestDistributedThroughFacade(t *testing.T) {
	agents := Truthful([]float64{1, 2, 4, 8})
	res, err := RunDistributed(BinaryTree(4), agents, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 12 {
		t.Errorf("messages = %d, want 12", res.Messages)
	}
	// Cross-check against the centralized mechanism.
	central, err := VerificationMechanism(nil).Run(agents, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range agents {
		if math.Abs(res.Payments[i]-central.Payment[i]) > 1e-9 {
			t.Errorf("payment[%d]: distributed %v vs central %v",
				i, res.Payments[i], central.Payment[i])
		}
	}
	for _, build := range []func(int) Tree{StarTree, ChainTree} {
		if _, err := RunDistributed(build(4), agents, 6); err != nil {
			t.Error(err)
		}
	}
}

func TestMechanismByNameFacade(t *testing.T) {
	m, err := MechanismByName("vcg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "vcg-clarke" {
		t.Errorf("name = %q", m.Name())
	}
	if _, err := MechanismByName("nope", nil); err == nil {
		t.Error("expected error")
	}
}

func TestShapleySharesFacade(t *testing.T) {
	shares, err := ShapleyShares([]float64{1, 2, 5, 10}, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	// Efficiency: shares sum to the optimal latency 64/1.8.
	want := 64.0 / 1.8
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("shares sum to %v, want %v", sum, want)
	}
}

// TestEndToEndStory walks the full pipeline a downstream user would
// run: configure, deviate, run the mechanism, verify truthfulness,
// run the protocol with estimation, then the distributed round.
func TestEndToEndStory(t *testing.T) {
	sys, err := NewSystem([]float64{1, 2, 4, 8}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetBid(2, 2); err != nil { // computer 3 underbids
		t.Fatal(err)
	}
	if err := sys.SetExec(2, 8); err != nil { // ... and slacks
		t.Fatal(err)
	}
	out, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	truth, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Utility[2] >= truth.Utility[2] {
		t.Error("deviation should not pay")
	}
	rep, err := sys.VerifyTruthfulness(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truthful() {
		t.Error("mechanism manipulable")
	}
	res, err := sys.RunProtocol(10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 20 {
		t.Errorf("messages = %d", res.Messages)
	}
	dres, err := RunDistributed(BinaryTree(4), sys.Agents(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dres.Payments {
		if math.Abs(dres.Payments[i]-truth.Payment[i]) > 1e-9 {
			t.Errorf("distributed payment %d diverges from centralized", i)
		}
	}
}

func TestProtocolThroughFacade(t *testing.T) {
	sys, err := NewSystem([]float64{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunProtocol(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 10 {
		t.Errorf("messages = %d, want 10", res.Messages)
	}
}
