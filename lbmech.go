// Package lbmech is a Go implementation of the load balancing
// mechanism with verification of Grosu & Chronopoulos (IPDPS 2003),
// together with the substrates needed to reproduce the paper end to
// end: latency models, optimal allocation algorithms, baseline
// mechanisms, a strategic (game-theoretic) analysis toolkit, a
// discrete-event cluster simulator with execution-value estimation,
// and the paper's full evaluation (Tables 1-2, Figures 1-6).
//
// # The problem
//
// A distributed system has n heterogeneous computers owned by
// self-interested agents. Computer i is characterized by a linear
// load-dependent latency function l_i(x) = t_i*x, where t_i (its
// "true value") is private. Jobs arrive at total rate R and must be
// split so that the total latency L(x) = sum_i t_i*x_i^2 is minimized
// — which the PR algorithm achieves by allocating in proportion to
// processing rates. But selfish computers may misreport t_i and may
// execute jobs slower than their capacity, so the mechanism pays each
// computer a compensation (its verified realized cost) plus a bonus
// (its contribution to reducing total latency), computed *after*
// observing the actual execution rates. Under this mechanism,
// truthful bidding and full-capacity execution is a dominant strategy
// (Theorem 3.1) and truthful agents never lose (Theorem 3.2).
//
// # Quick start
//
//	sys, _ := lbmech.NewSystem([]float64{1, 2, 5, 10}, 8)
//	out, _ := sys.Run()
//	fmt.Println(out.Alloc, out.Payment, out.Utility)
//
// See the examples directory for runnable scenarios and DESIGN.md for
// the full system inventory.
package lbmech

import (
	"repro/internal/coop"
	"repro/internal/core"
	"repro/internal/distmech"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/game"
	"repro/internal/mech"
	"repro/internal/protocol"
	"repro/internal/supervise"
)

// Agent is one self-interested computer: private true value, reported
// bid and realized execution value.
type Agent = mech.Agent

// Outcome is the result of one mechanism execution: allocation,
// latencies, payments, valuations and utilities.
type Outcome = mech.Outcome

// Mechanism computes an allocation and payments from agent reports.
type Mechanism = mech.Mechanism

// Model abstracts the latency family (linear or M/M/1).
type Model = mech.Model

// System is the high-level handle for configuring and running the
// mechanism on a set of computers.
type System = core.System

// Option configures a System.
type Option = core.Option

// TruthfulnessReport is the outcome of a deviation grid search.
type TruthfulnessReport = game.Report

// ProtocolResult is the outcome of a full message-level protocol
// round, including execution-value estimates and message counts.
type ProtocolResult = protocol.Result

// Experiment is one of the paper's Table 2 scenarios.
type Experiment = experiments.Experiment

// NewSystem creates a system of computers with the given true latency
// parameters (all initially truthful) facing the given total job
// arrival rate. By default it uses the linear latency model and the
// paper's compensation-and-bonus mechanism with verification.
func NewSystem(trueValues []float64, rate float64, opts ...Option) (*System, error) {
	return core.NewSystem(trueValues, rate, opts...)
}

// WithModel selects the latency model: LinearModel() (default) or
// MM1Model().
func WithModel(m Model) Option { return core.WithModel(m) }

// WithMechanism overrides the mechanism, e.g. VCG() or Classical()
// for baseline comparisons.
func WithMechanism(m Mechanism) Option { return core.WithMechanism(m) }

// LinearModel returns the paper's latency model l(x) = t*x.
func LinearModel() Model { return mech.LinearModel{} }

// MM1Model returns the M/M/1 latency model of the companion CLUSTER
// 2002 paper, with private value t = 1/mu.
func MM1Model() Model { return mech.MM1Model{} }

// VerificationMechanism returns the paper's compensation-and-bonus
// mechanism with verification for the given model (nil = linear).
func VerificationMechanism(m Model) Mechanism { return mech.CompensationBonus{Model: m} }

// NoVerificationMechanism returns the compensation-and-bonus
// construction computed from bids alone — the manipulable baseline
// that motivates verification.
func NoVerificationMechanism(m Model) Mechanism { return mech.BidCompensationBonus{Model: m} }

// VCG returns the Vickrey-Clarke-Groves baseline (truthful in bids,
// payments fixed before execution).
func VCG(m Model) Mechanism { return mech.VCG{Model: m} }

// ArcherTardos returns the Archer-Tardos one-parameter baseline with
// integral payments (linear model only unless a custom
// OneParameterModel is supplied).
func ArcherTardos() Mechanism { return mech.ArcherTardos{} }

// Classical returns the traditional obedient-agents allocation with no
// payments.
func Classical(m Model) Mechanism { return mech.Classical{Model: m} }

// Truthful builds a truthful agent population from true values, named
// C1..Cn.
func Truthful(trueValues []float64) []Agent { return mech.Truthful(trueValues) }

// PaperSystem returns the paper's 16-computer configuration (Table 1)
// at the paper's job arrival rate R = 20, ready to run.
func PaperSystem() (*System, error) {
	return core.NewSystem(experiments.PaperTrueValues(), experiments.PaperRate)
}

// PaperExperiments returns the paper's eight Table 2 scenarios.
func PaperExperiments() []Experiment { return experiments.Table2Experiments() }

// Tree is a spanning-tree topology for the distributed mechanism.
type Tree = distmech.Topology

// DistributedResult is the outcome of a distributed mechanism round.
type DistributedResult = distmech.Result

// StarTree, ChainTree and BinaryTree build standard topologies for
// RunDistributed.
func StarTree(n int) Tree   { return distmech.Star(n) }
func ChainTree(n int) Tree  { return distmech.Chain(n) }
func BinaryTree(n int) Tree { return distmech.Binary(n) }

// RunDistributed executes the fully distributed version of the
// verification mechanism over a spanning tree: one convergecast
// aggregates S = sum 1/b_j, one broadcast disseminates it, and each
// computer derives its own allocation and payment locally, audited by
// its tree parent. O(n) messages; linear model only.
func RunDistributed(tree Tree, agents []Agent, rate float64) (*DistributedResult, error) {
	return distmech.Run(distmech.Config{Tree: tree, Agents: agents, Rate: rate})
}

// FaultPlan is a deterministic, seedable fault-injection plan (see
// package faults): message drops, duplication, delay jitter,
// reordering, node crashes, silence, stalls and Byzantine payment
// claims, all derived reproducibly from a seed.
type FaultPlan = faults.Plan

// ParseFaults composes a FaultPlan from a spec string such as
// "seed=7,drop=0.05,crash=3+7,byz=5@1.2".
func ParseFaults(spec string) (*FaultPlan, error) { return faults.ParseSpec(spec) }

// RoundReport is the structured outcome of a supervised round: every
// attempt, failure classification, exclusion, backoff and degradation
// decision, plus the accepted allocation indexed by original node id.
type RoundReport = supervise.Report

// RunSupervised executes the distributed round under supervision: a
// failed attempt is classified (partial aggregate, conservation
// violation, audit flags, unreachable nodes), misbehaving or
// persistently unreachable nodes are excluded, and the round retries
// with exponential backoff, degrading gracefully to any quorum of at
// least two reachable computers. The returned report's Trace() is
// byte-identical across runs for the same seed and plan.
func RunSupervised(tree Tree, agents []Agent, rate float64, plan *FaultPlan) (*RoundReport, error) {
	return supervise.Run(distmech.Config{
		Tree:   tree,
		Agents: agents,
		Rate:   rate,
		Faults: plan,
	}, supervise.Options{})
}

// MechanismByName constructs a registered mechanism ("verification",
// "noverification", "vcg", "archertardos", "classical") over the given
// model (nil = linear).
func MechanismByName(name string, m Model) (Mechanism, error) {
	return mech.ByName(name, m)
}

// ShapleyShares computes the cooperative-game attribution of the
// system's optimal latency: each computer's Shapley cost share in the
// game whose coalitions pay their own optimal total latency. Exact
// enumeration for n <= 20, parallel permutation sampling otherwise.
func ShapleyShares(trueValues []float64, rate float64, samples int, seed uint64) ([]float64, error) {
	g, err := coop.NewCostGame(trueValues, rate)
	if err != nil {
		return nil, err
	}
	if len(trueValues) <= 12 {
		return g.ShapleyExact()
	}
	return g.ShapleyMonteCarlo(samples, seed)
}
