// Command lbswarm runs distributed selfish load balancing at scale:
// m tasks migrate over n machines with the randomized neighborhood-
// free protocol of arXiv cs/0506098 (each task samples one machine
// per round and moves with probability 1 − ℓ_dest/ℓ_src), and the
// run reports how fast the decentralized dynamics reach the one-shot
// optimum x* the mechanism computes directly.
//
// The machine population is a sealed registry epoch: lbswarm builds a
// bid registry with slopes log-spaced across -spread, seals it, and
// bridges the snapshot into the swarm, so the convergence target is
// literally the epoch's PR allocation. Convergence is reported as
// rounds to ε-balance, total-variation distance to x*, migration
// throughput, and the cs/0506098 O(log log m + n²) scale.
//
// Usage:
//
//	lbswarm                                   # 10^6 tasks on 1024 machines
//	lbswarm -m 10000000 -n 4096 -eps 0.01     # the 10^7-agent headline run
//	lbswarm -spread 32 -place random          # heterogeneous machines
//	lbswarm -join 5000 -leave 5000            # online arrivals/departures
//	lbswarm -sweep-m 100000,1000000,10000000 -sweep-n 16,256,4096
//	lbswarm -workers 4 -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/swarm"
)

func main() {
	m := flag.Int("m", 1_000_000, "tasks")
	n := flag.Int("n", 1024, "machines")
	spread := flag.Float64("spread", 1, "bid spread: slowest slope / fastest slope (1 = uniform machines)")
	eps := flag.Float64("eps", 0.01, "relative imbalance target for convergence")
	maxRounds := flag.Int("max-rounds", 1000, "round budget per run")
	seed := flag.Uint64("seed", 1, "root seed (the trajectory is a pure function of the config)")
	workers := flag.Int("workers", 0, "fan-out width (0 = GOMAXPROCS); any value replays the same trajectory")
	block := flag.Int("block", 0, "tasks per block (0 = default; part of the stream layout)")
	place := flag.String("place", "single", "initial placement: single (adversarial all-on-one) or random")
	join := flag.Int("join", 0, "tasks arriving per round (online variant)")
	leave := flag.Int("leave", 0, "tasks departing per round (online variant)")
	churnFrom := flag.Int("churn-from", 0, "first churn round (0 = from the start)")
	churnUntil := flag.Int("churn-until", 0, "last churn round (0 = forever)")
	sweepM := flag.String("sweep-m", "", "comma-separated task counts: run the full m × n grid")
	sweepN := flag.String("sweep-n", "", "comma-separated machine counts for the grid (default: -n)")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile")
	memprofile := flag.String("memprofile", "", "write a heap profile")
	flag.Parse()

	if *m < 1 || *n < 1 {
		fatalf("need -m >= 1 and -n >= 1")
	}
	if *spread < 1 || math.IsNaN(*spread) || math.IsInf(*spread, 0) {
		fatalf("-spread must be a finite value >= 1, got %v", *spread)
	}
	if !(*eps >= 0) {
		fatalf("-eps must be >= 0, got %v", *eps)
	}
	var placeSingle bool
	switch *place {
	case "single":
		placeSingle = true
	case "random":
	default:
		fatalf("-place must be single or random, got %q", *place)
	}

	stopProfiles, err := profile.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProfiles()

	var ob *obs.Observer
	var met *obs.SwarmMetrics
	if *metrics {
		ob = obs.New(0)
		met = ob.SwarmMetrics()
	}

	ms, err := intList(*sweepM, *m)
	if err != nil {
		fatalf("-sweep-m: %v", err)
	}
	ns, err := intList(*sweepN, *n)
	if err != nil {
		fatalf("-sweep-n: %v", err)
	}

	tbl := report.NewTable(
		fmt.Sprintf("selfish rebalancing: rounds to %.2g-balance vs the mechanism optimum (spread %g, place %s)", *eps, *spread, *place),
		"m", "n", "workers", "rounds", "bound", "migrated", "moved/s", "decisions/s", "imbalance", "tv(x*)", "wall")
	for _, mm := range ms {
		for _, nn := range ns {
			cfg, err := epochConfig(mm, nn, *spread)
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Seed = *seed
			cfg.Workers = *workers
			cfg.Block = *block
			cfg.PlaceSingle = placeSingle
			cfg.Join, cfg.Leave = *join, *leave
			cfg.ChurnFrom, cfg.ChurnUntil = *churnFrom, *churnUntil
			if *join > 0 {
				cfg.MaxTasks = mm + *join**maxRounds
			}
			cfg.Metrics = met
			s, err := swarm.New(cfg)
			if err != nil {
				fatalf("%v", err)
			}
			start := time.Now()
			rounds, moved := 0, int64(0)
			var last swarm.RoundStats
			converged := false
			for rounds < *maxRounds {
				t0 := time.Now()
				last = s.Round()
				met.RoundTimed(time.Since(t0).Seconds())
				rounds++
				moved += last.Migrations
				if last.Imbalance <= *eps {
					converged = true
					met.BalancedRun()
					break
				}
			}
			wall := time.Since(start)
			roundsCell := strconv.Itoa(rounds)
			if !converged {
				roundsCell = ">" + roundsCell
			}
			secs := wall.Seconds()
			tbl.AddRow(
				fmtCount(mm), strconv.Itoa(nn), strconv.Itoa(s.Workers()),
				roundsCell,
				fmt.Sprintf("%.0f", swarm.BoundUniform(mm, nn)),
				fmtCount64(moved),
				fmtCount64(int64(float64(moved)/secs)),
				fmtCount64(int64(float64(last.Tasks)*float64(rounds)/secs)),
				fmt.Sprintf("%.4f", last.Imbalance),
				fmt.Sprintf("%.5f", last.TVOptimum),
				wall.Round(time.Millisecond).String(),
			)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println("\nbound is the cs/0506098 O(log log m + n²) scale at constant 1; tv(x*) is the")
	fmt.Println("total-variation distance between the final task shares and the sealed epoch's")
	fmt.Println("PR optimum x*. Any -workers value replays the identical trajectory.")

	if *metrics {
		fmt.Println()
		if err := ob.Dump(os.Stdout, true, false); err != nil {
			fatalf("%v", err)
		}
	}
}

// epochConfig seals a registry epoch of n bids log-spaced across
// [1, spread] and bridges it into a swarm config: the convergence
// target is the sealed epoch's PR allocation.
func epochConfig(tasks, n int, spread float64) (swarm.Config, error) {
	reg, err := registry.New(registry.Config{})
	if err != nil {
		return swarm.Config{}, err
	}
	if err := reg.SetRate(float64(tasks)); err != nil {
		return swarm.Config{}, err
	}
	for i := 0; i < n; i++ {
		t := 1.0
		if n > 1 && spread > 1 {
			t = math.Pow(spread, float64(i)/float64(n-1))
		}
		if _, err := reg.Add(t); err != nil {
			return swarm.Config{}, err
		}
	}
	return swarm.ConfigFromSnapshot(reg.Seal(), tasks)
}

// intList parses a comma-separated positive int list, or returns
// [def] for an empty spec.
func intList(spec string, def int) ([]int, error) {
	if spec == "" {
		return []int{def}, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// fmtCount renders 1000000 as 1.0e6 for the table's m column.
func fmtCount(v int) string {
	if v < 100000 {
		return strconv.Itoa(v)
	}
	return fmt.Sprintf("%.1e", float64(v))
}

// fmtCount64 renders large counts compactly (12.3M, 4.5k).
func fmtCount64(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return strconv.FormatInt(v, 10)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lbswarm: "+format+"\n", args...)
	os.Exit(1)
}
