// Command lbsim runs the full message-level mechanism protocol on a
// discrete-event simulation: bid collection, allocation, simulated
// execution, execution-value estimation (verification) and payment
// delivery.
//
// Usage:
//
//	lbsim -experiment Low2 -jobs 100000 -seed 7   # a paper Table 2 scenario
//	lbsim -scenario system.json                   # a custom JSON scenario
//	lbsim -faults drop=0.1,stall=2@500:10 -dropouts   # inject faults
//
// A scenario file looks like:
//
//	{
//	  "name": "two-tier", "model": "linear", "rate": 6, "jobs": 50000,
//	  "computers": [
//	    {"true": 1},
//	    {"true": 2, "bid_factor": 0.5, "exec_factor": 2}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	expName := flag.String("experiment", "True1", "Table 2 experiment name (True1..Low2)")
	scenarioPath := flag.String("scenario", "", "path to a JSON scenario file (overrides -experiment)")
	jobs := flag.Int("jobs", 100000, "number of jobs to simulate")
	seed := flag.Uint64("seed", 1, "random seed")
	faultSpec := flag.String("faults", "", "fault plan, e.g. drop=0.1,silent=3,stall=2@500:10 (see package faults)")
	dropouts := flag.Bool("dropouts", false, "tolerate agents whose bids never arrive instead of aborting")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	trace := flag.Bool("trace", false, "print the event trace after the run")
	flag.Parse()

	plan, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	var inj faults.Injector
	if *faultSpec != "" {
		inj = plan
	}

	var ob *obs.Observer
	if *metrics || *trace {
		ob = obs.New(0)
	}

	var res *protocol.Result
	var header string
	if *scenarioPath != "" {
		f, err := os.Open(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		s, err := scenario.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if inj != nil {
			s.Faults = inj
		}
		if *dropouts {
			s.AllowDropouts = true
		}
		s.Obs = ob
		res, err = s.Run()
		if err != nil {
			fatal(err)
		}
		header = fmt.Sprintf("scenario %s (%s model, R=%g)", s.Name, s.Model, s.Rate)
	} else {
		exp, err := experiments.ExperimentByName(*expName)
		if err != nil {
			fatal(err)
		}
		strategies := make([]protocol.Strategy, 16)
		strategies[0] = protocol.FactorStrategy{BidFactor: exp.BidFactor, ExecFactor: exp.ExecFactor}
		res, err = protocol.Run(protocol.Config{
			Trues:         experiments.PaperTrueValues(),
			Strategies:    strategies,
			Rate:          experiments.PaperRate,
			Jobs:          *jobs,
			Seed:          *seed,
			Faults:        inj,
			AllowDropouts: *dropouts,
			Obs:           ob,
		})
		if err != nil {
			fatal(err)
		}
		header = fmt.Sprintf("experiment %s: C1 bids %.3g*t1, executes at %.3g*t1",
			exp.Name, exp.BidFactor, exp.ExecFactor)
	}
	printResult(header, res)
	if *metrics || *trace {
		fmt.Println()
		if err := ob.Dump(os.Stdout, *metrics, *trace); err != nil {
			fatal(err)
		}
	}
}

func printResult(header string, res *protocol.Result) {
	fmt.Println(header)
	fmt.Printf("protocol messages: %d\n", res.Messages)
	if res.Lost > 0 || len(res.Dropped) > 0 {
		fmt.Printf("fault layer: %d messages lost, dropped agents: %s\n",
			res.Lost, joinOrNone(res.Dropped))
	}
	fmt.Printf("simulated %d jobs over %.1f s of virtual time\n\n",
		totalJobs(res), res.Sim.Duration)

	tab := report.NewTable("Per-computer results (payments from estimated execution values).",
		"Computer", "Assigned rate", "Estimated t~", "95% CI", "Flagged",
		"Payment", "Oracle payment", "Utility")
	for i := range res.Estimates {
		est := res.Estimates[i]
		flagged := ""
		if res.Verdicts[i].Invalid {
			flagged = "INVALID"
		} else if res.Verdicts[i].Deviating {
			flagged = "DEVIATING"
		}
		tab.AddRow(
			fmt.Sprintf("C%d", res.Active[i]+1),
			report.FormatFloat(res.Outcome.Alloc[i]),
			report.FormatFloat(est.Value),
			fmt.Sprintf("[%s, %s]", report.FormatFloat(est.Lo), report.FormatFloat(est.Hi)),
			flagged,
			report.FormatFloat(res.Outcome.Payment[i]),
			report.FormatFloat(res.Oracle.Payment[i]),
			report.FormatFloat(res.Outcome.Utility[i]),
		)
	}
	tab.Render(os.Stdout)

	fmt.Printf("\nrealized total latency (analytic): %s\n",
		report.FormatFloat(res.Oracle.RealLatency))
	fmt.Printf("realized total latency (simulated): %s\n",
		report.FormatFloat(res.Sim.TotalLatencyRate))
}

func totalJobs(res *protocol.Result) int {
	n := 0
	for _, s := range res.Sim.PerNode {
		n += s.Jobs
	}
	return n
}

func joinOrNone(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "," + n
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbsim:", err)
	os.Exit(1)
}
