// Command lbload is the open-loop load driver for the networked
// serving front end (lbserve -listen): N connections each admit a
// population of agents, then pipeline rebid traffic against the
// server — Poisson arrivals when -rate is set, closed-loop otherwise —
// and report sustained ops/s with p50/p99/p99.9 latency quantiles.
//
// Latency is measured open-loop style: a request's clock starts at its
// *scheduled* arrival, so a server that falls behind accumulates
// queueing delay in the percentiles instead of silently slowing the
// generator down (coordinated omission).
//
// Usage:
//
//	lbload -addr 127.0.0.1:9070 -conns 4 -agents 1000 -duration 5s
//	lbload -addr 127.0.0.1:9070 -rate 500000 -window 1024
//	lbload -addr 127.0.0.1:9070 -seal-out /tmp/seal.txt
//
// With -seal-out the driver seals a final epoch after the run and
// writes "epoch=E n=N s=0xHEX" (the canonical aggregate's exact bits)
// to the file — comparable byte-for-byte against lbserve's
// -recovered-out after a crash/restart, which is how the CI kill-9
// smoke proves recovery is bitwise exact.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/lbclient"
	"repro/internal/report"
	"repro/internal/wire"
)

// latHist is a log-bucketed latency histogram: 8 sub-buckets per
// octave of nanoseconds, exact to ~9% — plenty for p50/p99/p99.9 over
// a microsecond-to-second range.
type latHist struct {
	counts [64 * 8]uint64
	n      uint64
}

func (h *latHist) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	o := uint(bits.Len64(ns)) - 1 // octave: floor(log2 ns)
	var sub uint64
	if o >= 3 {
		sub = (ns >> (o - 3)) & 7 // top 3 bits below the leading one
	}
	h.counts[uint64(o)*8+sub]++
	h.n++
}

func (h *latHist) merge(o *latHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
}

// quantile returns the q-quantile as the lower bound of the bucket the
// rank falls in.
func (h *latHist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n-1))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > rank {
			o := uint(i / 8)
			sub := uint64(i % 8)
			ns := uint64(1) << o
			if o >= 3 {
				ns |= sub << (o - 3)
			}
			return time.Duration(ns)
		}
	}
	return 0
}

type connResult struct {
	ops      int
	errs     int
	overload int
	hist     latHist
	err      error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9070", "server address")
	conns := flag.Int("conns", 4, "concurrent connections")
	agents := flag.Int("agents", 1024, "agents each connection admits before driving load")
	duration := flag.Duration("duration", 5*time.Second, "time to drive load")
	rate := flag.Float64("rate", 0, "total target ops/s, Poisson arrivals split across connections (0 = closed loop)")
	window := flag.Int("window", 4096, "pipeline window: max outstanding requests per connection")
	seed := flag.Uint64("seed", 1, "random seed")
	sealOut := flag.String("seal-out", "", "seal a final epoch and write epoch/n/S-bits to this file")
	flag.Parse()
	if *conns <= 0 || *agents <= 0 || *window <= 0 {
		fmt.Fprintln(os.Stderr, "lbload: need -conns, -agents and -window > 0")
		os.Exit(1)
	}

	results := make([]connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(*duration)
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = driveConn(connConfig{
				addr: *addr, agents: *agents, deadline: deadline,
				rate: *rate / float64(*conns), window: *window,
				seed: *seed, worker: w,
			})
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total, errs, overloads := 0, 0, 0
	var hist latHist
	for w := range results {
		if results[w].err != nil {
			fmt.Fprintf(os.Stderr, "lbload: conn %d: %v\n", w, results[w].err)
			errs++
		}
		total += results[w].ops
		overloads += results[w].overload
		hist.merge(&results[w].hist)
	}

	mode := "closed-loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f ops/s Poisson", *rate)
	}
	tab := report.NewTable(
		fmt.Sprintf("Networked serving load: %d conns x %d agents, window %d, %s, %s.",
			*conns, *agents, *window, mode, elapsed.Round(time.Millisecond)),
		"Conns", "Ops", "Ops/sec", "Overloaded", "p50", "p99", "p99.9")
	tab.AddRow(
		fmt.Sprintf("%d", *conns),
		fmt.Sprintf("%d", total),
		fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
		fmt.Sprintf("%d", overloads),
		hist.quantile(0.50).Round(time.Microsecond).String(),
		hist.quantile(0.99).Round(time.Microsecond).String(),
		hist.quantile(0.999).Round(time.Microsecond).String(),
	)
	tab.Render(os.Stdout)

	if errs > 0 || total == 0 {
		fmt.Fprintln(os.Stderr, "lbload: no throughput or connection errors")
		os.Exit(1)
	}

	if *sealOut != "" {
		c, err := lbclient.Dial(*addr, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbload:", err)
			os.Exit(1)
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(10 * time.Second))
		info, err := c.Seal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbload:", err)
			os.Exit(1)
		}
		line := fmt.Sprintf("epoch=%d n=%d s=0x%016x\n", info.Epoch, info.N, math.Float64bits(info.Sum))
		if err := os.WriteFile(*sealOut, []byte(line), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "lbload:", err)
			os.Exit(1)
		}
		fmt.Printf("sealed %s -> %s\n", strings.TrimSpace(line), *sealOut)
	}
}

type connConfig struct {
	addr     string
	agents   int
	deadline time.Time
	rate     float64 // per-connection ops/s; 0 = closed loop
	window   int
	seed     uint64
	worker   int
}

// driveConn runs one connection: admit the population synchronously,
// then split into a pipelining writer and a latency-recording reader
// joined by a FIFO token channel whose capacity is the window — the
// channel both bounds outstanding requests and carries each request's
// scheduled-arrival time to the reader (responses are FIFO by the
// pipelining contract, so tokens and responses pair up exactly).
func driveConn(cfg connConfig) connResult {
	res := connResult{}
	c, err := lbclient.Dial(cfg.addr, 0)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()
	c.SetDeadline(cfg.deadline.Add(10 * time.Second))

	rng := rand.New(rand.NewPCG(cfg.seed, uint64(cfg.worker)+1))
	ids := make([]int, cfg.agents)
	for i := range ids {
		if ids[i], err = c.Add(0.1 + 10*rng.Float64()); err != nil {
			res.err = err
			return res
		}
	}

	const flushEvery = 256
	tokens := make(chan time.Time, cfg.window)
	writeErr := make(chan error, 1)
	var sent int

	go func() {
		defer close(tokens)
		gap := 0.0
		if cfg.rate > 0 {
			gap = 1 / cfg.rate
		}
		next := time.Now()
		pending := 0
		for time.Now().Before(cfg.deadline) {
			if cfg.rate > 0 {
				// Poisson arrivals: exponential gaps from the schedule,
				// never resetting to "now" — a slow server builds a
				// backlog instead of stretching the schedule.
				next = next.Add(time.Duration(rng.ExpFloat64() * gap * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					if pending > 0 {
						if err := c.Flush(); err != nil {
							writeErr <- err
							return
						}
						pending = 0
					}
					time.Sleep(d)
				}
			}
			if pending > 0 && len(tokens) == cfg.window {
				// About to block on a full window: flush so the reader
				// can drain it.
				if err := c.Flush(); err != nil {
					writeErr <- err
					return
				}
				pending = 0
			}
			select {
			case tokens <- next:
			default:
				if err := c.Flush(); err != nil {
					writeErr <- err
					return
				}
				pending = 0
				tokens <- next
			}
			if cfg.rate == 0 {
				next = time.Now()
			}
			c.QueueRebid(ids[sent%len(ids)], 0.1+10*rng.Float64())
			sent++
			pending++
			if pending >= flushEvery {
				if err := c.Flush(); err != nil {
					writeErr <- err
					return
				}
				pending = 0
			}
		}
		if pending > 0 {
			if err := c.Flush(); err != nil {
				writeErr <- err
			}
		}
	}()

	for t0 := range tokens {
		p, err := c.Recv()
		if err != nil {
			res.err = err
			// Unblock the writer (it may be parked on a full token
			// channel); the run is failing anyway.
			go func() {
				for range tokens {
				}
			}()
			break
		}
		res.hist.observe(time.Since(t0))
		switch p.Status {
		case wire.StatusOK:
			res.ops++
		case wire.StatusOverloaded:
			res.overload++
		default:
			res.errs++
		}
	}
	select {
	case err := <-writeErr:
		if res.err == nil {
			res.err = err
		}
	default:
	}
	return res
}
