// Command lbrounds runs the mechanism as a long-lived multi-round
// system on the paper's 16-computer population, with one persistent
// deviator and a reputation policy that suspends computers repeatedly
// caught executing slower than they bid.
//
// Usage:
//
//	lbrounds -rounds 20 -exec-factor 2 -strikes 2 -ban 3
//	lbrounds -rounds 20 -faults drop=0.05,crash=7 -retries 2
//	lbrounds -rounds 200 -jobs 2000 -replications 32 -workers 0
//
// With -replications N > 1 the simulation becomes a Monte Carlo
// sweep: N independent replications with derived seeds fan out over
// -workers goroutines (0 = all CPUs), each worker reusing a pooled
// round engine, and the per-round table is replaced by a
// per-replication summary. Results are deterministic: any worker
// count produces identical numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rounds"
)

func main() {
	nRounds := flag.Int("rounds", 20, "number of rounds")
	execFactor := flag.Float64("exec-factor", 2, "C1's execution slowdown factor")
	bidFactor := flag.Float64("bid-factor", 1, "C1's bid factor")
	strikes := flag.Int("strikes", 2, "flags before suspension")
	ban := flag.Int("ban", 3, "suspension length in rounds")
	jobs := flag.Int("jobs", 20000, "simulated jobs per round")
	seed := flag.Uint64("seed", 1, "random seed")
	faultSpec := flag.String("faults", "", "fault plan, e.g. drop=0.05,crash=7 (see package faults)")
	retries := flag.Int("retries", 0, "per-round retries before degrading to the responsive computers")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	trace := flag.Bool("trace", false, "print the event trace after the run")
	replications := flag.Int("replications", 1, "independent replications with derived seeds (> 1 enables the sweep)")
	workers := flag.Int("workers", 0, "fan-out width for -replications (0 = all CPUs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profile.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrounds:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	var inj faults.Injector
	if *faultSpec != "" {
		plan, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbrounds:", err)
			os.Exit(1)
		}
		inj = plan
	}

	pop := make([]rounds.ComputerSpec, 16)
	for i, tv := range experiments.PaperTrueValues() {
		pop[i] = rounds.ComputerSpec{True: tv}
	}
	pop[0].Strategy = protocol.FactorStrategy{BidFactor: *bidFactor, ExecFactor: *execFactor}

	var ob *obs.Observer
	if *metrics || *trace {
		if *replications > 1 {
			fmt.Fprintln(os.Stderr, "lbrounds: -metrics/-trace are ignored with -replications > 1 (the observer is not shared across workers)")
		} else {
			ob = obs.New(0)
		}
	}

	cfg := rounds.Config{
		Computers:    pop,
		Rate:         experiments.PaperRate,
		Rounds:       *nRounds,
		JobsPerRound: *jobs,
		Seed:         *seed,
		Policy:       rounds.Policy{Strikes: *strikes, BanRounds: *ban, ForgiveAfter: 10},
		Faults:       inj,
		MaxRetries:   *retries,
		Obs:          ob,
	}
	if *replications > 1 {
		runSweep(cfg, *replications, *workers)
		return
	}

	res, err := rounds.Run(cfg)
	if err != nil {
		// Flush whatever was recorded up to the failure first.
		ob.Dump(os.Stdout, *metrics, *trace)
		fmt.Fprintln(os.Stderr, "lbrounds:", err)
		os.Exit(1)
	}

	tab := report.NewTable(
		fmt.Sprintf("Multi-round system: C1 bids %.3g*t, executes %.3g*t; %d strikes -> %d-round ban.",
			*bidFactor, *execFactor, *strikes, *ban),
		"Round", "Active", "Latency", "Optimum (active)", "Flagged", "Suspended", "Attempts", "Dropouts")
	for _, rec := range res.Records {
		tab.AddRow(
			fmt.Sprintf("%d", rec.Round),
			fmt.Sprintf("%d", len(rec.Active)),
			report.FormatFloat(rec.Latency),
			report.FormatFloat(rec.OptLatency),
			joinInts(rec.Flagged),
			joinInts(rec.Suspended),
			fmt.Sprintf("%d", rec.Attempts),
			joinInts(rec.Dropouts),
		)
	}
	tab.Render(os.Stdout)
	fmt.Printf("\nsuspensions per computer: %v\n", res.Suspensions)
	fmt.Println("note: while C1 is suspended the system runs at the optimum of the honest computers.")
	if *metrics || *trace {
		fmt.Println()
		if err := ob.Dump(os.Stdout, *metrics, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "lbrounds:", err)
			os.Exit(1)
		}
	}
}

// runSweep fans count replications over the parallel harness and
// prints a per-replication summary plus aggregates.
func runSweep(cfg rounds.Config, count, workers int) {
	results, err := rounds.RunReplications(rounds.Replications{
		Base:    cfg,
		Count:   count,
		Workers: workers,
		// The fault plan carries its own seed independent of cfg.Seed;
		// reseed it per replication so the sweep samples different
		// fault realizations, not just different estimation noise.
		Vary: func(rep int, c *rounds.Config) {
			c.Faults = faults.Reseed(c.Faults, uint64(rep)*0xbf58476d1ce4e5b9)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrounds:", err)
		os.Exit(1)
	}
	tab := report.NewTable(
		fmt.Sprintf("Monte Carlo sweep: %d replications x %d rounds (seeds derived from %d).",
			count, cfg.Rounds, cfg.Seed),
		"Replication", "Mean latency", "Mean optimum", "Regret %", "Mean payment", "Flags", "Suspensions", "Dropout rounds")
	var meanLat, meanOpt, meanRegret, meanPay float64
	var totalFlags, totalSusp int
	for rep, res := range results {
		var lat, opt, pay float64
		var flags, droprounds int
		for _, rec := range res.Records {
			lat += rec.Latency
			opt += rec.OptLatency
			pay += rec.TotalPayment
			flags += len(rec.Flagged)
			if len(rec.Dropouts) > 0 {
				droprounds++
			}
		}
		lat /= float64(len(res.Records))
		opt /= float64(len(res.Records))
		pay /= float64(len(res.Records))
		susp := 0
		for _, s := range res.Suspensions {
			susp += s
		}
		regret := 100 * (lat - opt) / opt
		tab.AddRow(
			fmt.Sprintf("%d", rep),
			report.FormatFloat(lat),
			report.FormatFloat(opt),
			fmt.Sprintf("%.2f", regret),
			report.FormatFloat(pay),
			fmt.Sprintf("%d", flags),
			fmt.Sprintf("%d", susp),
			fmt.Sprintf("%d", droprounds),
		)
		meanLat += lat
		meanOpt += opt
		meanRegret += regret
		meanPay += pay
		totalFlags += flags
		totalSusp += susp
	}
	n := float64(len(results))
	tab.AddRow("mean",
		report.FormatFloat(meanLat/n),
		report.FormatFloat(meanOpt/n),
		fmt.Sprintf("%.2f", meanRegret/n),
		report.FormatFloat(meanPay/n),
		fmt.Sprintf("%.1f", float64(totalFlags)/n),
		fmt.Sprintf("%.1f", float64(totalSusp)/n),
		"")
	tab.Render(os.Stdout)
}

func joinInts(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("C%d", v+1)
	}
	return strings.Join(parts, ",")
}
