// Command lbrounds runs the mechanism as a long-lived multi-round
// system on the paper's 16-computer population, with one persistent
// deviator and a reputation policy that suspends computers repeatedly
// caught executing slower than they bid.
//
// Usage:
//
//	lbrounds -rounds 20 -exec-factor 2 -strikes 2 -ban 3
//	lbrounds -rounds 20 -faults drop=0.05,crash=7 -retries 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rounds"
)

func main() {
	nRounds := flag.Int("rounds", 20, "number of rounds")
	execFactor := flag.Float64("exec-factor", 2, "C1's execution slowdown factor")
	bidFactor := flag.Float64("bid-factor", 1, "C1's bid factor")
	strikes := flag.Int("strikes", 2, "flags before suspension")
	ban := flag.Int("ban", 3, "suspension length in rounds")
	jobs := flag.Int("jobs", 20000, "simulated jobs per round")
	seed := flag.Uint64("seed", 1, "random seed")
	faultSpec := flag.String("faults", "", "fault plan, e.g. drop=0.05,crash=7 (see package faults)")
	retries := flag.Int("retries", 0, "per-round retries before degrading to the responsive computers")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	trace := flag.Bool("trace", false, "print the event trace after the run")
	flag.Parse()

	var inj faults.Injector
	if *faultSpec != "" {
		plan, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbrounds:", err)
			os.Exit(1)
		}
		inj = plan
	}

	pop := make([]rounds.ComputerSpec, 16)
	for i, tv := range experiments.PaperTrueValues() {
		pop[i] = rounds.ComputerSpec{True: tv}
	}
	pop[0].Strategy = protocol.FactorStrategy{BidFactor: *bidFactor, ExecFactor: *execFactor}

	var ob *obs.Observer
	if *metrics || *trace {
		ob = obs.New(0)
	}

	res, err := rounds.Run(rounds.Config{
		Computers:    pop,
		Rate:         experiments.PaperRate,
		Rounds:       *nRounds,
		JobsPerRound: *jobs,
		Seed:         *seed,
		Policy:       rounds.Policy{Strikes: *strikes, BanRounds: *ban, ForgiveAfter: 10},
		Faults:       inj,
		MaxRetries:   *retries,
		Obs:          ob,
	})
	if err != nil {
		// Flush whatever was recorded up to the failure first.
		ob.Dump(os.Stdout, *metrics, *trace)
		fmt.Fprintln(os.Stderr, "lbrounds:", err)
		os.Exit(1)
	}

	tab := report.NewTable(
		fmt.Sprintf("Multi-round system: C1 bids %.3g*t, executes %.3g*t; %d strikes -> %d-round ban.",
			*bidFactor, *execFactor, *strikes, *ban),
		"Round", "Active", "Latency", "Optimum (active)", "Flagged", "Suspended", "Attempts", "Dropouts")
	for _, rec := range res.Records {
		tab.AddRow(
			fmt.Sprintf("%d", rec.Round),
			fmt.Sprintf("%d", len(rec.Active)),
			report.FormatFloat(rec.Latency),
			report.FormatFloat(rec.OptLatency),
			joinInts(rec.Flagged),
			joinInts(rec.Suspended),
			fmt.Sprintf("%d", rec.Attempts),
			joinInts(rec.Dropouts),
		)
	}
	tab.Render(os.Stdout)
	fmt.Printf("\nsuspensions per computer: %v\n", res.Suspensions)
	fmt.Println("note: while C1 is suspended the system runs at the optimum of the honest computers.")
	if *metrics || *trace {
		fmt.Println()
		if err := ob.Dump(os.Stdout, *metrics, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "lbrounds:", err)
			os.Exit(1)
		}
	}
}

func joinInts(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("C%d", v+1)
	}
	return strings.Join(parts, ",")
}
