// Command lbgame explores the strategic landscape of the mechanisms:
// it sweeps one agent's bid and execution deviations, prints the
// utility surface, and reports whether any deviation beats truth.
//
// Usage:
//
//	lbgame -mech verification        # the paper's mechanism (truthful)
//	lbgame -mech noverification      # bids-only payments (manipulable)
//	lbgame -mech classical -agent 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/mech"
	"repro/internal/report"
)

func main() {
	mechName := flag.String("mech", "verification",
		"mechanism: verification, noverification, vcg, archertardos, classical")
	agent := flag.Int("agent", 0, "index of the probed agent (0-based)")
	flag.Parse()

	m, err := mech.ByName(*mechName, nil)
	if err != nil {
		fatal(err)
	}
	agents := mech.Truthful(experiments.PaperTrueValues())
	grid := game.DefaultGrid()
	rep, err := game.VerifyTruthfulness(m, agents, experiments.PaperRate, *agent, grid, 0)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("mechanism: %s, probing agent C%d (t=%g)\n\n",
		m.Name(), *agent+1, agents[*agent].True)

	// Utility surface at full-capacity execution.
	tab := report.NewTable("Utility of deviating bids (execution at capacity).",
		"Bid factor", "Utility", "vs truth")
	pop := append([]mech.Agent(nil), agents...)
	for _, bf := range grid.BidFactors {
		pop[*agent].Bid = bf * pop[*agent].True
		pop[*agent].Exec = pop[*agent].True
		o, err := m.Run(pop, experiments.PaperRate)
		if err != nil {
			continue
		}
		diff := o.Utility[*agent] - rep.TruthUtility
		mark := ""
		if bf == 1 {
			mark = "<- truth"
		} else if diff > 1e-9 {
			mark = "PROFITABLE"
		}
		tab.AddRow(report.FormatFloat(bf), report.FormatFloat(o.Utility[*agent]), mark)
	}
	tab.Render(os.Stdout)

	fmt.Printf("\ntruthful utility: %s\n", report.FormatFloat(rep.TruthUtility))
	fmt.Printf("best deviation:   bid %s*t, exec %s*t -> utility %s (epsilon %s)\n",
		report.FormatFloat(rep.Best.BidFactor),
		report.FormatFloat(rep.Best.ExecFactor),
		report.FormatFloat(rep.Best.Utility),
		report.FormatFloat(rep.Epsilon))
	if rep.Truthful() {
		fmt.Println("verdict: TRUTHFUL on the probed grid — no profitable deviation")
	} else {
		fmt.Printf("verdict: MANIPULABLE — %d profitable deviations found\n", len(rep.Profitable))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbgame:", err)
	os.Exit(1)
}
