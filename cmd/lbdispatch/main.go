// Command lbdispatch drives per-job dispatch policies against a sealed
// registry epoch at full speed and prices what each policy actually did.
// A population of computers bids ascending latency parameters, the
// registry seals the epoch, and every policy routes the same Poisson
// job stream (split into per-worker substreams whose superposition is
// again Poisson) through the Dispatcher interface. The realized
// per-instance rates are then pushed through a latency model — M/M/1
// queues by default, the paper's linear model with -model linear — and
// compared against the mechanism optimum for the sealed epoch.
//
// The point of the exercise is the herding column: a greedy router
// that sends every job to the instance with the best sealed bid
// collapses the whole stream onto it (max share 1.0, modeled queue
// unstable), while alias-table sampling tracks the sealed allocation
// x_i* and lands within noise of the optimal latency. The classic
// baselines (round-robin, least-connections, power-of-two-choices,
// smooth weighted, ip-hash) fall in between.
//
// Usage:
//
//	lbdispatch
//	lbdispatch -computers 64 -jobs 5000000 -workers 8 -rho 0.85
//	lbdispatch -policies alias,greedy -model linear -dist pareto
//	lbdispatch -eject 1   # SealCorrected demo: eject the fastest instance
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	computers := flag.Int("computers", 16, "number of live computers in the sealed epoch")
	jobs := flag.Int("jobs", 2_000_000, "jobs dispatched per policy")
	workers := flag.Int("workers", 0, "concurrent dispatch workers (0 = GOMAXPROCS)")
	policiesSpec := flag.String("policies", "all", "comma-separated policies, or \"all\" (see dispatch.Policies)")
	seed := flag.Uint64("seed", 1, "hash seed for the randomized policies and the job stream")
	model := flag.String("model", "mm1", "latency model: mm1 (exponential service) or linear (the paper's)")
	rho := flag.Float64("rho", 0.7, "system utilization R/sum(mu) of the M/M/1 model, in (0,1)")
	rate := flag.Float64("rate", 1000, "modeled total arrival rate R (jobs/s)")
	distName := flag.String("dist", "const", "job size distribution: const, exp, lognormal, pareto")
	clients := flag.Uint64("clients", 4096, "distinct client keys in the stream (ip-hash stickiness domain)")
	spread := flag.Float64("spread", 4, "bid spread: slowest bid / fastest bid")
	inflight := flag.Int("inflight", 64, "per-worker in-flight window before Done is reported (0 = fire and forget)")
	eject := flag.Int("eject", 0, "eject the k fastest instances via a SealCorrected epoch before dispatching")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	flag.Parse()

	if *computers < 1 || *jobs < 1 || *spread < 1 || *clients < 1 {
		fatalf("need -computers >= 1, -jobs >= 1, -spread >= 1, -clients >= 1")
	}
	if !(*rho > 0 && *rho < 1) {
		fatalf("-rho must be in (0,1), got %v", *rho)
	}
	if *eject < 0 || *eject >= *computers {
		fatalf("-eject must leave at least one instance (got %d of %d)", *eject, *computers)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > *jobs {
		w = *jobs
	}
	dist, err := parseDist(*distName)
	if err != nil {
		fatalf("%v", err)
	}
	policies, err := parsePolicies(*policiesSpec)
	if err != nil {
		fatalf("%v", err)
	}

	var ob *obs.Observer
	if *metrics {
		ob = obs.New(0)
	}

	// Seal the epoch: bids ascend linearly from 1 to the spread, so
	// instance 0 (reported one-based as instance 1) is the fastest and
	// the greedy policy's collapse target.
	reg, err := registry.New(registry.Config{Rate: *rate, Metrics: ob.RegistryMetrics()})
	if err != nil {
		fatalf("registry: %v", err)
	}
	ids := make([]int, *computers)
	for i := range ids {
		t := 1.0
		if *computers > 1 {
			t = 1 + (*spread-1)*float64(i)/float64(*computers-1)
		}
		id, err := reg.Add(t)
		if err != nil {
			fatalf("add computer %d: %v", i, err)
		}
		ids[i] = id
	}
	snap := reg.Seal()
	if *eject > 0 {
		drop := make(map[int]bool, *eject)
		for _, id := range ids[:*eject] {
			drop[id] = true
		}
		snap, err = reg.SealCorrected(&registry.Correction{Drop: drop})
		if err != nil {
			fatalf("corrected seal: %v", err)
		}
		fmt.Printf("corrected epoch %d: ejected the %d fastest instance(s); %d remain\n",
			snap.Epoch(), *eject, snap.N())
	}

	mdl, err := newModel(*model, snap, *rho)
	if err != nil {
		fatalf("%v", err)
	}
	n := snap.N()
	fmt.Printf("epoch %d: %d instances, R=%g, S=%.6g, model=%s, bid spread %gx\n",
		snap.Epoch(), n, snap.Rate(), snap.Sum(), mdl.describe(), *spread)
	fmt.Printf("dispatching %d jobs per policy across %d workers (dist=%s, clients=%d, inflight=%d)\n\n",
		*jobs, w, *distName, *clients, *inflight)

	horizon := float64(*jobs) / snap.Rate()
	tbl := report.NewTable("per-job dispatch: "+mdl.describe(),
		"policy", "Mjobs/s", "mean", "p99", "vs opt", "max share", "unstable")
	accounts := make(map[string]*dispatch.Account, len(policies))
	for _, policy := range policies {
		d, err := dispatch.New(policy, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		err = d.Rebuild(snap)
		ob.DispatchMetrics().Rebuilt(policy, snap.Epoch(), err)
		if err != nil {
			fatalf("rebuild %s: %v", policy, err)
		}
		tal, elapsed := drive(d, *jobs, w, snap.Rate(), dist, *clients, *inflight, *seed)
		acct, err := mdl.account(tal, horizon)
		if err != nil {
			fatalf("account %s: %v", policy, err)
		}
		accounts[policy] = acct
		maxShare, _ := acct.MaxShare()
		ob.DispatchMetrics().Dispatched(policy, acct.Jobs)
		ob.DispatchMetrics().Accounted(maxShare, acct.Unstable)
		tbl.AddRow(policy,
			fmt.Sprintf("%.2f", float64(*jobs)/elapsed.Seconds()/1e6),
			fmtLatency(acct.Mean),
			fmtLatency(acct.P99),
			fmtRatio(acct.Mean/mdl.optMean),
			fmt.Sprintf("%.3f", maxShare),
			fmt.Sprintf("%d", acct.Unstable),
		)
	}
	tbl.Render(os.Stdout)
	fmt.Printf("\noptimal mean latency at the sealed allocation x*: %s (max share %.3f)\n",
		fmtLatency(mdl.optMean), mdl.optMaxShare)

	herdingSummary(snap, mdl, accounts)

	if *metrics {
		fmt.Println()
		if err := ob.Dump(os.Stdout, true, false); err != nil {
			fatalf("%v", err)
		}
	}
}

// drive pushes the job stream through one dispatcher from w workers
// and returns the merged tally plus wall time. Job IDs are globally
// unique and worker-independent (worker k owns a contiguous ID block),
// and client keys derive from the job ID — so for pure-function
// policies the merged tally is byte-identical for any worker count.
func drive(d dispatch.Dispatcher, jobs, w int, rate float64, dist workload.SizeDist, clients uint64, inflight int, seed uint64) (*dispatch.Tally, time.Duration) {
	srcs := workload.SplitPoisson(rate, jobs, w, dist, numeric.NewRand(seed))
	base := make([]int64, w)
	per, rem := jobs/w, jobs%w
	for i := 1; i < w; i++ {
		k := per
		if i-1 < rem {
			k++
		}
		base[i] = base[i-1] + int64(k)
	}
	tallies := make([]*dispatch.Tally, w)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tal := dispatch.NewTally(d.N())
			var ring []int
			rpos := 0
			if inflight > 0 {
				ring = make([]int, 0, inflight)
			}
			src := srcs[i]
			for {
				j, ok := src.Next()
				if !ok {
					break
				}
				id := base[i] + j.ID
				job := dispatch.Job{ID: id, Key: uint64(id)%clients + 1}
				tgt := d.Pick(job)
				tal.Observe(tgt, j.Size)
				if inflight > 0 {
					if len(ring) < inflight {
						ring = append(ring, tgt)
					} else {
						d.Done(job, ring[rpos])
						ring[rpos] = tgt
						rpos = (rpos + 1) % inflight
					}
				}
			}
			for _, tgt := range ring {
				d.Done(dispatch.Job{}, tgt)
			}
			tallies[i] = tal
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	merged := tallies[0]
	for _, tal := range tallies[1:] {
		if err := merged.Merge(tal); err != nil {
			fatalf("merge tallies: %v", err)
		}
	}
	return merged, elapsed
}

// model prices tallies and knows the epoch's optimum under itself.
type model struct {
	name        string
	ts          []float64 // linear: sealed bids per instance
	mus         []float64 // mm1: service rates per instance
	optMean     float64   // modeled mean latency at the sealed x*
	optMaxShare float64   // largest x_i*/R — what herding should look like
}

// newModel derives the per-instance latency model from the sealed
// epoch. For mm1 the service rates are proportional to the sealed
// speeds 1/t_i, scaled so total utilization is rho: mu_i =
// R/(rho·t_i·S), hence x_i*/mu_i = rho for every instance — the sealed
// allocation loads all queues evenly.
func newModel(name string, snap *registry.Snapshot, rho float64) (*model, error) {
	ids := snap.IDs()
	m := &model{name: name}
	var opt numeric.KahanSum
	for _, id := range ids {
		t, _ := snap.Value(id)
		x, _ := snap.Load(id)
		share := x / snap.Rate()
		if share > m.optMaxShare {
			m.optMaxShare = share
		}
		switch name {
		case "linear":
			m.ts = append(m.ts, t)
			opt.Add(share * t * x)
		case "mm1":
			mu := x / rho
			m.mus = append(m.mus, mu)
			opt.Add(share / (mu - x))
		default:
			return nil, fmt.Errorf("unknown -model %q (want mm1 or linear)", name)
		}
	}
	m.optMean = opt.Value()
	return m, nil
}

func (m *model) account(tal *dispatch.Tally, horizon float64) (*dispatch.Account, error) {
	if m.name == "linear" {
		return dispatch.AccountLinear(tal, m.ts, horizon)
	}
	return dispatch.AccountMM1(tal, m.mus, horizon)
}

func (m *model) describe() string {
	if m.name == "linear" {
		return "linear latency model"
	}
	return "M/M/1 queues"
}

// herdingSummary quantifies collapse-vs-tracking when both the greedy
// and alias policies ran: greedy's max share against the sealed
// optimum's, and alias' worst per-instance deviation from x_i*/R.
func herdingSummary(snap *registry.Snapshot, mdl *model, accounts map[string]*dispatch.Account) {
	greedy, alias := accounts["greedy"], accounts["alias"]
	if greedy == nil && alias == nil {
		return
	}
	fmt.Println("\nherding:")
	if greedy != nil {
		share, inst := greedy.MaxShare()
		fmt.Printf("  greedy routes %.1f%% of all jobs to instance %d (optimal share %.1f%%)",
			share*100, inst+1, mdl.optMaxShare*100)
		if greedy.Unstable > 0 {
			fmt.Printf(" — its modeled queue is unstable, latency unbounded")
		}
		fmt.Println()
	}
	if alias != nil {
		worst := 0.0
		for i, s := range alias.Shares {
			x, _ := snap.Load(snap.IDs()[i])
			if d := math.Abs(s - x/snap.Rate()); d > worst {
				worst = d
			}
		}
		fmt.Printf("  alias tracks the sealed allocation: worst per-instance share deviation from x_i*/R is %.4f\n", worst)
	}
}

func parsePolicies(spec string) ([]string, error) {
	if spec == "all" {
		return dispatch.Policies(), nil
	}
	known := dispatch.Policies()
	var out []string
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		found := false
		for _, k := range known {
			if p == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown policy %q (known: %s)", p, strings.Join(known, ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies selected")
	}
	return out, nil
}

func parseDist(name string) (workload.SizeDist, error) {
	switch name {
	case "const":
		return workload.ConstSize{}, nil
	case "exp":
		return workload.ExpSize{}, nil
	case "lognormal":
		return workload.LognormalSize{Sigma: 1}, nil
	case "pareto":
		return workload.ParetoSize{Alpha: 2.5}, nil
	}
	return nil, fmt.Errorf("unknown -dist %q (want const, exp, lognormal, pareto)", name)
}

func fmtLatency(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%.4g", v)
}

func fmtRatio(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%.3fx", v)
}

func fatalf(format string, args ...any) {
	fmt.Fprintln(os.Stderr, "lbdispatch: "+fmt.Sprintf(format, args...))
	os.Exit(1)
}
