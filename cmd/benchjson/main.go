// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON document on stdout, so benchmark baselines can be
// committed and diffed (make bench > BENCH_mech.json). The output is
// deterministic for a given input: no timestamps, benchmarks in input
// order.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// trailing "-<GOMAXPROCS>" suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the benchmark ran
	// with -benchmem (-1 when absent).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values by unit (e.g. the
	// swarm's tasks_moved_per_s and rounds_to_eps columns).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON structure.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        []string `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one "BenchmarkFoo-8  100  123 ns/op  45 B/op  6 allocs/op"
// line; ok is false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// Remaining fields come in "<value> <unit>" pairs.
	for k := 2; k+1 < len(fields); k += 2 {
		val, unit := fields[k], fields[k+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			// Custom b.ReportMetric pairs: record them under their
			// unit. Non-numeric values mark a non-benchmark line.
			var f float64
			if f, err = strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = f
			}
		}
		if err != nil {
			return Result{}, false
		}
	}
	return r, true
}

func run(in *bufio.Scanner, out *os.File) error {
	var doc Document
	for in.Scan() {
		line := in.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = append(doc.Pkg, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := in.Err(); err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// check validates a committed BENCH_*.json: it must parse as a
// Document, carry at least one benchmark, and record the machine spec
// (goos and goarch; a cpu line when the platform reports one is
// carried through but not required). CI runs this against
// BENCH_swarm.json so a hand-edited or truncated baseline fails fast.
func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: %s: no benchmarks recorded", path)
	}
	if doc.Goos == "" || doc.Goarch == "" {
		return fmt.Errorf("benchjson: %s: missing machine spec (goos=%q goarch=%q)", path, doc.Goos, doc.Goarch)
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "" || b.Iterations <= 0 {
			return fmt.Errorf("benchjson: %s: malformed benchmark entry %+v", path, b)
		}
	}
	fmt.Printf("benchjson: %s ok (%d benchmarks, %s/%s", path, len(doc.Benchmarks), doc.Goos, doc.Goarch)
	if doc.CPU != "" {
		fmt.Printf(", %s", doc.CPU)
	}
	fmt.Println(")")
	return nil
}

func main() {
	checkPath := flag.String("check", "", "validate an existing BENCH_*.json instead of converting stdin")
	flag.Parse()
	if *checkPath != "" {
		if err := check(*checkPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if err := run(sc, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
