package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/wal"
)

// listenConfig configures the -listen networked serving mode.
type listenConfig struct {
	addr         string
	walDir       string // "" = volatile registry, no journal
	sync         wal.SyncPolicy
	snapEvery    int
	rate         float64
	shards       int
	sealInterval time.Duration
	recoveredOut string // write the recovered epoch line here (for the kill-9 smoke's cmp)
	ob           *obs.Observer
}

// runListen serves the registry over TCP until SIGINT/SIGTERM, then
// drains connections gracefully and commits the WAL. With -wal-dir it
// first recovers whatever log the directory holds, so a kill -9 /
// restart cycle resumes from bitwise-identical sealed epochs — the
// multi-process version of the -wal-demo story.
func runListen(cfg listenConfig, out io.Writer) int {
	var (
		reg *registry.Registry
		w   *wal.Writer
		err error
	)
	if cfg.walDir != "" {
		var info *wal.Info
		reg, w, info, err = wal.Open(cfg.walDir,
			wal.Options{Sync: cfg.sync, SnapshotEvery: cfg.snapEvery, Metrics: cfg.ob.WALMetrics()},
			registry.Config{Rate: cfg.rate, Shards: cfg.shards, Metrics: cfg.ob.RegistryMetrics()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
		if info.Fresh {
			fmt.Fprintf(out, "lbserve: fresh write-ahead log under %s (sync=%s)\n", cfg.walDir, cfg.sync)
		} else {
			snap := reg.Snapshot()
			fmt.Fprintf(out, "lbserve: recovered %s: epoch=%d n=%d s=0x%016x\n",
				cfg.walDir, snap.Epoch(), snap.N(), math.Float64bits(snap.Sum()))
		}
	} else {
		reg, err = registry.New(registry.Config{Rate: cfg.rate, Shards: cfg.shards, Metrics: cfg.ob.RegistryMetrics()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
	}
	if cfg.recoveredOut != "" {
		snap := reg.Snapshot()
		line := fmt.Sprintf("epoch=%d n=%d s=0x%016x\n", snap.Epoch(), snap.N(), math.Float64bits(snap.Sum()))
		if err := os.WriteFile(cfg.recoveredOut, []byte(line), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
	}

	srv := server.New(server.Config{
		Registry:     reg,
		SealInterval: cfg.sealInterval,
		Metrics:      cfg.ob.ServerMetrics(),
	})
	addr, err := srv.Start(cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		return 1
	}
	fmt.Fprintf(out, "lbserve: serving on %s (shards=%d", addr, reg.Shards())
	if cfg.sealInterval > 0 {
		fmt.Fprintf(out, ", seal every %s", cfg.sealInterval)
	}
	fmt.Fprintln(out, ")")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(out, "lbserve: %s, draining...\n", got)
	srv.Shutdown(2 * time.Second)
	snap := reg.Snapshot()
	fmt.Fprintf(out, "lbserve: stopped at epoch=%d n=%d s=0x%016x\n",
		snap.Epoch(), snap.N(), math.Float64bits(snap.Sum()))
	if w != nil {
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
		fmt.Fprintf(out, "lbserve: write-ahead log committed under %s\n", cfg.walDir)
	}
	if cfg.ob != nil {
		fmt.Fprintln(out)
		if err := cfg.ob.Dump(out, true, false); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
	}
	return 0
}
