// Command lbserve drives the concurrent bid registry with mixed
// read/rebid traffic and reports a worker-count throughput sweep — the
// serving-path counterpart of lbrounds' simulation sweeps. Each run
// populates a sharded registry, hammers it from W goroutines (reads
// are lock-free snapshot queries, writes rebid the worker's own
// agents, one worker seals epochs on a fixed cadence), then seals a
// final epoch and settles payments for the whole population through
// the engine's leave-one-out machinery.
//
// Usage:
//
//	lbserve -agents 100000 -ops 2000000 -workers 1,2,4,8
//	lbserve -agents 1000000 -shards 64 -read-frac 0.99 -metrics
//	lbserve -ops 5000000 -cpuprofile cpu.out -memprofile mem.out
//
// With -health the command instead runs the self-healing chaos demo:
// a small population under a deterministic fault plan, the
// internal/health control loop verifying every tick, and the
// degrade → eject → probe → slow-start story printed live:
//
//	lbserve -health
//	lbserve -health -plan crash=1,flap=5@6:0.5 -ticks 80 -fault-until 45
//
// With -wal-dir the sweep journals every registry into a crash-
// recoverable write-ahead log (one subdirectory per sweep point), and
// with -wal-demo the command runs the restart-and-recover story
// instead: serve, seal a corrected epoch, fsync, kill -9, recover, and
// verify the recovered epoch is bit-for-bit the pre-crash one:
//
//	lbserve -wal-demo -wal-dir /tmp/lbwal -agents 50000 -ops 500000
//	lbserve -wal-dir /tmp/lbwal -wal-sync seal -snapshot-every 4
//
// With -listen the command becomes the networked serving front end:
// a framed TCP server (internal/server) accepting pipelined clients
// (internal/lbclient, cmd/lbload) until SIGINT/SIGTERM, optionally
// journaling into a WAL so a killed server restarts from its last
// sealed epoch bit-for-bit:
//
//	lbserve -listen 127.0.0.1:9070
//	lbserve -listen 127.0.0.1:9070 -wal-dir /tmp/lbwal -wal-sync seal
//	lbserve -listen 127.0.0.1:9070 -seal-interval 100ms -metrics
//
// Throughput scales with worker count only up to the host's cores:
// on a single-core box the sweep stays flat (see README, "Concurrent
// serving").
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"path/filepath"

	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/wal"
)

func main() {
	agents := flag.Int("agents", 100_000, "number of live agents to populate")
	shards := flag.Int("shards", registry.DefaultShards, "lock stripes (rounded up to a power of two)")
	workersSpec := flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep")
	ops := flag.Int("ops", 1_000_000, "total operations per sweep point")
	readFrac := flag.Float64("read-frac", 0.9, "fraction of operations that are snapshot reads")
	sealEvery := flag.Int("seal-every", 4096, "operations between epoch seals (worker 0; 0 = no mid-run seals)")
	seed := flag.Uint64("seed", 1, "random seed")
	rate := flag.Float64("rate", 20, "total arrival rate R")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	healthMode := flag.Bool("health", false, "run the health control-loop chaos demo instead of the throughput sweep")
	computers := flag.Int("computers", 8, "population size of the -health demo")
	ticks := flag.Int("ticks", 80, "control ticks the -health demo runs")
	plan := flag.String("plan", "crash=1,stall=3@0.5:1,byz=5@1.6,flap=6@8:0.75", "fault plan of the -health demo (internal/faults spec)")
	faultFrom := flag.Int("fault-from", 5, "first tick the -health fault plan is active")
	faultUntil := flag.Int("fault-until", 45, "first tick the -health faults are repaired (0 = never)")
	healthEvery := flag.Int("health-every", 20, "ticks between -health state tables (0 = final only)")
	walDir := flag.String("wal-dir", "", "journal each registry into a crash-recoverable write-ahead log under this directory")
	walSync := flag.String("wal-sync", "batch", "WAL fsync policy: batch, seal, interval or none")
	snapshotEvery := flag.Int("snapshot-every", 8, "sealed epochs between WAL snapshot compactions (0 = never)")
	walDemo := flag.Bool("wal-demo", false, "run the crash/restart recovery demo (needs -wal-dir pointing at a new directory)")
	listen := flag.String("listen", "", "serve the registry over framed TCP on this address instead of the local sweep")
	sealInterval := flag.Duration("seal-interval", 0, "with -listen, seal an epoch on this cadence in the background (0 = client-driven seals only)")
	recoveredOut := flag.String("recovered-out", "", "with -listen, write the starting epoch/n/S-bits line to this file (comparable against lbload -seal-out)")
	flag.Parse()

	if *healthMode {
		var ob *obs.Observer
		if *metrics {
			ob = obs.New(0)
		}
		code := runHealth(healthConfig{
			computers:  *computers,
			ticks:      *ticks,
			plan:       *plan,
			faultFrom:  *faultFrom,
			faultUntil: *faultUntil,
			seed:       *seed,
			rate:       *rate,
			shards:     *shards,
			every:      *healthEvery,
			ob:         ob,
		}, os.Stdout)
		if code == 0 && *metrics {
			fmt.Println()
			if err := ob.Dump(os.Stdout, true, false); err != nil {
				fmt.Fprintln(os.Stderr, "lbserve:", err)
				code = 1
			}
		}
		os.Exit(code)
	}

	if *listen != "" {
		var ob *obs.Observer
		if *metrics {
			ob = obs.New(0)
		}
		var syncPolicy wal.SyncPolicy
		if *walDir != "" {
			var err error
			if syncPolicy, err = wal.ParseSyncPolicy(*walSync); err != nil {
				fmt.Fprintln(os.Stderr, "lbserve:", err)
				os.Exit(1)
			}
		}
		os.Exit(runListen(listenConfig{
			addr:         *listen,
			walDir:       *walDir,
			sync:         syncPolicy,
			snapEvery:    *snapshotEvery,
			rate:         *rate,
			shards:       *shards,
			sealInterval: *sealInterval,
			recoveredOut: *recoveredOut,
			ob:           ob,
		}, os.Stdout))
	}

	workers, err := parseWorkers(*workersSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
	if *agents < 2 || *ops <= 0 || *readFrac < 0 || *readFrac > 1 {
		fmt.Fprintln(os.Stderr, "lbserve: need -agents >= 2, -ops > 0 and -read-frac in [0,1]")
		os.Exit(1)
	}

	var syncPolicy wal.SyncPolicy
	if *walDir != "" || *walDemo {
		if syncPolicy, err = wal.ParseSyncPolicy(*walSync); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			os.Exit(1)
		}
	}
	if *walDemo {
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "lbserve: -wal-demo needs -wal-dir")
			os.Exit(1)
		}
		var ob *obs.Observer
		if *metrics {
			ob = obs.New(0)
		}
		code := runWALDemo(walDemoConfig{
			dir:       *walDir,
			sync:      syncPolicy,
			snapEvery: *snapshotEvery,
			agents:    *agents,
			ops:       *ops,
			workers:   workers[len(workers)-1],
			seed:      *seed,
			rate:      *rate,
			shards:    *shards,
			ob:        ob,
		}, os.Stdout)
		if code == 0 && *metrics {
			fmt.Println()
			if err := ob.Dump(os.Stdout, true, false); err != nil {
				fmt.Fprintln(os.Stderr, "lbserve:", err)
				code = 1
			}
		}
		os.Exit(code)
	}
	stopProfiles, err := profile.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	var ob *obs.Observer
	var met *obs.RegistryMetrics
	var walMet *obs.WALMetrics
	if *metrics {
		ob = obs.New(0)
		met = ob.RegistryMetrics()
		if *walDir != "" {
			walMet = ob.WALMetrics()
		}
	}

	tab := report.NewTable(
		fmt.Sprintf("Registry load: %d agents, %d shards, %d ops per point, %.0f%% reads, seal every %d ops.",
			*agents, *shards, *ops, 100**readFrac, *sealEvery),
		"Workers", "Elapsed", "Ops/sec", "Speedup", "Epochs", "Mean read", "p99 read")
	var base float64
	var last *registry.Registry
	var lastWAL *wal.Writer
	for i, w := range workers {
		cfg := registry.Config{Rate: *rate, Shards: *shards, Metrics: met}
		var ww *wal.Writer
		if *walDir != "" {
			ww, err = wal.Create(filepath.Join(*walDir, fmt.Sprintf("w%d", w)),
				wal.Options{Sync: syncPolicy, SnapshotEvery: *snapshotEvery, Metrics: walMet})
			if err != nil {
				fmt.Fprintln(os.Stderr, "lbserve:", err)
				os.Exit(1)
			}
			cfg.Journal = ww
		}
		r, err := registry.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			os.Exit(1)
		}
		populate(r, *agents, *seed)
		res := drive(r, driveConfig{
			workers:   w,
			ops:       *ops,
			readFrac:  *readFrac,
			sealEvery: *sealEvery,
			seed:      *seed,
			met:       met,
		})
		if base == 0 {
			base = res.opsPerSec
		}
		tab.AddRow(
			strconv.Itoa(w),
			res.elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", res.opsPerSec),
			fmt.Sprintf("%.2fx", res.opsPerSec/base),
			strconv.FormatUint(res.epochs, 10),
			fmt.Sprintf("%.0fns", res.meanRead*1e9),
			fmt.Sprintf("%.0fns", res.p99Read*1e9),
		)
		last = r
		if ww != nil {
			if i == len(workers)-1 {
				lastWAL = ww // stays open for the final settlement seal
			} else if err := ww.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lbserve:", err)
				os.Exit(1)
			}
		}
	}
	tab.Render(os.Stdout)

	// Settle the final epoch: one full payment sweep over the sealed
	// population through the O(n) leave-one-out engine.
	snap := last.Seal()
	var sw registry.Sweep
	start := time.Now()
	out, err := sw.Payments(snap, mech.NewEngine(mech.CompensationBonus{}), workers[len(workers)-1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
	settle := time.Since(start)
	fmt.Printf("\nfinal epoch %d: %d agents, S=%.6g, L*=%.6g, total payment %.6g (settled in %s)\n",
		snap.Epoch(), snap.N(), snap.Sum(), snap.OptimalLatency(),
		out.TotalPayment(), settle.Round(time.Microsecond))
	if lastWAL != nil {
		if err := lastWAL.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			os.Exit(1)
		}
		fmt.Printf("write-ahead log committed under %s (sync=%s)\n", *walDir, syncPolicy)
	}

	if *metrics {
		fmt.Println()
		if err := ob.Dump(os.Stdout, true, false); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			os.Exit(1)
		}
	}
}

// populate fills a fresh registry with a deterministic bid population
// and seals the starting epoch.
func populate(r *registry.Registry, agents int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 0x6c62272e07bb0142))
	for i := 0; i < agents; i++ {
		if _, err := r.Add(0.1 + 10*rng.Float64()); err != nil {
			panic(err) // bids are drawn positive; unreachable
		}
	}
	r.Seal()
}

type driveConfig struct {
	workers   int
	ops       int
	readFrac  float64
	sealEvery int
	seed      uint64
	met       *obs.RegistryMetrics
}

type driveResult struct {
	elapsed   time.Duration
	opsPerSec float64
	epochs    uint64
	meanRead  float64 // seconds
	p99Read   float64 // seconds
}

// drive hammers the registry with cfg.ops mixed operations split
// across cfg.workers goroutines. Reads grab the current snapshot and
// answer a load and an exclusion-latency query; writes rebid an agent
// in the worker's own id stripe; worker 0 seals on the configured
// cadence. Every 1024th read is timed into the sampled read-latency
// pool (and the lb_registry_read_seconds histogram when -metrics).
func drive(r *registry.Registry, cfg driveConfig) driveResult {
	agents := r.Live()
	epoch0 := r.Snapshot().Epoch()
	// Scale worker 0's seal cadence by the worker count so every sweep
	// point seals the same number of epochs per total operation.
	sealEvery := cfg.sealEvery / cfg.workers
	if cfg.sealEvery > 0 && sealEvery == 0 {
		sealEvery = 1
	}
	samples := make([][]float64, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		ops := cfg.ops / cfg.workers
		if w == 0 {
			ops += cfg.ops % cfg.workers
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.seed, uint64(w)+1))
			lo := w * agents / cfg.workers
			hi := (w + 1) * agents / cfg.workers
			var sink float64
			var mine []float64
			for i := 0; i < ops; i++ {
				if rng.Float64() < cfg.readFrac {
					timed := i%1024 == 0
					var t0 time.Time
					if timed {
						t0 = time.Now()
					}
					snap := r.Snapshot()
					id := rng.IntN(agents)
					x, _ := snap.Load(id)
					e, _ := snap.ExclusionLatency(id)
					sink += x + e
					if timed {
						d := time.Since(t0).Seconds()
						mine = append(mine, d)
						cfg.met.ReadSampled(d)
					}
				} else {
					id := lo + rng.IntN(hi-lo)
					if err := r.Update(id, 0.1+10*rng.Float64()); err != nil {
						panic(err) // own-stripe ids are always live; unreachable
					}
				}
				if sealEvery > 0 && w == 0 && i%sealEvery == sealEvery-1 {
					r.Seal()
				}
			}
			_ = sink
			samples[w] = mine
		}(w, ops)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	return driveResult{
		elapsed:   elapsed,
		opsPerSec: float64(cfg.ops) / elapsed.Seconds(),
		epochs:    r.Snapshot().Epoch() - epoch0,
		meanRead:  mean(all),
		p99Read:   quantile(all, 0.99),
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	k := int(q * float64(len(sorted)-1))
	return sorted[k]
}

func parseWorkers(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}
