package main

// The -health mode: a chaos demo of the serving control loop. A small
// population is registered with the registry and the health
// controller, a deterministic fault plan (crash, stall, Byzantine,
// flapping — see internal/faults) is injected over a configurable
// window, and the controller's per-tick verification drives the
// degrade → eject → probe → slow-start arc live on stdout: every
// state transition as an event line, periodic state-table snapshots
// with each computer's corrected traffic share, and a final census.
// Everything is seeded, so the same flags replay the same story.

import (
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/report"
)

type healthConfig struct {
	computers  int
	ticks      int
	plan       string
	faultFrom  int
	faultUntil int
	seed       uint64
	rate       float64
	shards     int
	every      int
	ob         *obs.Observer
}

// runHealth executes the chaos demo and returns an exit code.
func runHealth(cfg healthConfig, w io.Writer) int {
	if cfg.computers < 2 || cfg.ticks <= 0 {
		fmt.Fprintln(os.Stderr, "lbserve: need -computers >= 2 and -ticks > 0")
		return 1
	}
	plan, err := faults.ParseSpec(cfg.plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		return 1
	}
	var inj faults.Injector
	if plan != nil {
		inj = faults.Reseed(plan, cfg.seed)
	}

	reg, err := registry.New(registry.Config{Rate: cfg.rate, Shards: cfg.shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		return 1
	}
	src := health.NewSource(cfg.seed, inj, health.SourceConfig{
		FaultFrom:  cfg.faultFrom,
		FaultUntil: cfg.faultUntil,
	})
	ctl := health.New(health.Config{}, reg, cfg.ob)

	for i := 0; i < cfg.computers; i++ {
		declared := 2 + 0.5*float64(i)
		id, err := reg.Add(declared)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
		src.Add(id, declared)
		if err := ctl.Track(id, declared); err != nil {
			fmt.Fprintln(os.Stderr, "lbserve:", err)
			return 1
		}
	}

	hc := ctl.Config()
	fmt.Fprintf(w, "Health control loop: %d computers, %d ticks, plan %q active [%d, %s).\n",
		cfg.computers, cfg.ticks, cfg.plan, cfg.faultFrom, untilLabel(cfg.faultUntil))
	fmt.Fprintf(w, "Policy: max_fails %d/%d ticks, fail_timeout %d, recover streak %d, slow-start %.2f over %d ticks.\n\n",
		hc.MaxFails, hc.FailWindow, hc.FailTimeout, hc.RecoverStreak, hc.SlowStartWeight, hc.SlowStartTicks)

	var sealed *registry.Snapshot
	corrected := 0
	for tick := 1; tick <= cfg.ticks; tick++ {
		rep := ctl.Tick(src.Tick(tick))
		for _, tr := range rep.Transitions {
			z := "-"
			if !math.IsNaN(tr.Z) {
				z = fmt.Sprintf("z=%.1f", tr.Z)
			}
			fmt.Fprintf(w, "tick %3d  computer %d  %s -> %s  (%s %s)\n",
				tr.Tick, tr.ID, tr.From, tr.To, tr.Reason, z)
		}
		if rep.Sealed != nil {
			sealed = rep.Sealed
			corrected++
		}
		if cfg.every > 0 && tick%cfg.every == 0 {
			stateTable(ctl, sealed, tick).Render(w)
			fmt.Fprintln(w)
		}
	}

	if cfg.every <= 0 || cfg.ticks%cfg.every != 0 {
		stateTable(ctl, sealed, cfg.ticks).Render(w)
	}
	healthy := 0
	for _, id := range ctl.Tracked() {
		if st, _, _ := ctl.State(id); st == health.Healthy {
			healthy++
		}
	}
	epoch := uint64(0)
	if sealed != nil {
		epoch = sealed.Epoch()
	}
	fmt.Fprintf(w, "\n%d/%d computers healthy after %d ticks; %d corrected epochs sealed (last epoch %d).\n",
		healthy, cfg.computers, cfg.ticks, corrected, epoch)
	return 0
}

// stateTable renders the live census: per computer its state, serving
// weight and traffic share under the last corrected epoch.
func stateTable(ctl *health.Controller, sealed *registry.Snapshot, tick int) *report.Table {
	tab := report.NewTable(
		fmt.Sprintf("State at tick %d:", tick),
		"Computer", "State", "Weight", "Traffic share")
	for _, id := range ctl.Tracked() {
		st, weight, _ := ctl.State(id)
		share := "-"
		if sealed != nil {
			if x, ok := sealed.Load(id); ok && sealed.Rate() > 0 {
				share = fmt.Sprintf("%.1f%%", 100*x/sealed.Rate())
			} else if !ok {
				share = "0% (out)"
			}
		}
		tab.AddRow(
			fmt.Sprintf("%d", id),
			st.String(),
			fmt.Sprintf("%.2f", weight),
			share,
		)
	}
	return tab
}

func untilLabel(until int) string {
	if until <= 0 {
		return "end"
	}
	return fmt.Sprintf("%d", until)
}
