package main

// The -wal-demo mode: populate a journaled registry, serve mixed
// traffic with seals and a corrected (ejecting) epoch, kill the
// process image mid-flight (simulated: the writer abandons its
// unflushed buffer exactly as a kill -9 would), then restart, recover,
// and prove the recovered sealed epoch is bit-for-bit identical to the
// pre-crash one before serving resumes on the same log.

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/wal"
)

type walDemoConfig struct {
	dir       string
	sync      wal.SyncPolicy
	snapEvery int
	agents    int
	ops       int
	workers   int
	seed      uint64
	rate      float64
	shards    int
	ob        *obs.Observer
}

func runWALDemo(cfg walDemoConfig, out io.Writer) int {
	var met *obs.WALMetrics
	var rmet *obs.RegistryMetrics
	if cfg.ob != nil {
		met = cfg.ob.WALMetrics()
		rmet = cfg.ob.RegistryMetrics()
	}
	opts := wal.Options{Sync: cfg.sync, SnapshotEvery: cfg.snapEvery, Metrics: met}

	fmt.Fprintf(out, "Durable serving demo: %d agents, %d ops, sync=%s, snapshot every %d epochs\nlog: %s\n\n",
		cfg.agents, cfg.ops, cfg.sync, cfg.snapEvery, cfg.dir)

	// ---- first incarnation -------------------------------------------
	r, w, info, err := wal.Open(cfg.dir, opts, registry.Config{Rate: cfg.rate, Shards: cfg.shards, Metrics: rmet})
	if err != nil {
		fmt.Fprintln(out, "lbserve:", err)
		return 1
	}
	if !info.Fresh {
		fmt.Fprintf(out, "lbserve: %s already holds a log; pass an empty -wal-dir for the demo\n", cfg.dir)
		w.Close()
		return 1
	}
	start := time.Now()
	populate(r, cfg.agents, cfg.seed)
	res := drive(r, driveConfig{
		workers: cfg.workers, ops: cfg.ops, readFrac: 0.5,
		sealEvery: 4096, seed: cfg.seed, met: rmet,
	})
	fmt.Fprintf(out, "served %d ops across %d workers in %s (%d epochs sealed)\n",
		cfg.ops, cfg.workers, res.elapsed.Round(time.Millisecond), res.epochs)

	// A health-style corrected epoch: eject two agents, discount one.
	rng := rand.New(rand.NewPCG(cfg.seed, 0xda7a))
	c := &registry.Correction{
		Drop:    map[int]bool{rng.IntN(cfg.agents): true, rng.IntN(cfg.agents): true},
		Weights: map[int]float64{rng.IntN(cfg.agents): 0.5},
	}
	pre, err := r.SealCorrected(c)
	if err != nil {
		fmt.Fprintln(out, "lbserve:", err)
		return 1
	}
	if err := w.Sync(); err != nil { // the durable point the crash cannot take back
		fmt.Fprintln(out, "lbserve:", err)
		return 1
	}
	dropped, discounted := pre.Correction()
	fmt.Fprintf(out, "sealed corrected epoch %d: %d live, %d ejected, %d discounted, S=%.9g\n",
		pre.Epoch(), pre.N(), dropped, discounted, pre.Sum())

	// Unsynced writes the crash WILL take back (under -wal-sync none/
	// seal/batch these sit in the buffer or page cache).
	lost := 0
	for i := 0; i < 1000; i++ {
		if _, err := r.Add(0.1 + 10*rng.Float64()); err == nil {
			lost++
		}
	}
	w.Abandon() // kill -9
	fmt.Fprintf(out, "crash: process killed with %d admissions after the last fsync\n\n", lost)
	setup := time.Since(start)

	// ---- restart ------------------------------------------------------
	t0 := time.Now()
	r2, w2, rec, err := wal.Open(cfg.dir, opts, registry.Config{Rate: cfg.rate, Shards: cfg.shards, Metrics: rmet})
	if err != nil {
		fmt.Fprintln(out, "lbserve:", err)
		return 1
	}
	defer w2.Close()
	elapsed := time.Since(t0)
	fmt.Fprintf(out, "recovered in %s: snapshot epoch %d + %d replayed records (%d seals, %.1f MB",
		elapsed.Round(time.Millisecond), rec.SnapshotEpoch, rec.Records, rec.Seals, float64(rec.Bytes)/1e6)
	if rec.TornTail {
		fmt.Fprint(out, ", torn tail truncated")
	}
	fmt.Fprintln(out, ")")

	got := r2.Snapshot()
	identical := got.Epoch() == pre.Epoch() &&
		math.Float64bits(got.Sum()) == math.Float64bits(pre.Sum()) &&
		got.N() == pre.N()
	if identical {
		for _, id := range got.IDs() {
			a, _ := got.Value(id)
			b, ok := pre.Value(id)
			if !ok || math.Float64bits(a) != math.Float64bits(b) {
				identical = false
				break
			}
		}
	}
	fmt.Fprintf(out, "recovered epoch %d: %d live, S=%.9g — bit-identical to pre-crash seal: %v\n",
		got.Epoch(), got.N(), got.Sum(), identical)
	if !identical {
		fmt.Fprintln(out, "lbserve: recovered state diverged from the pre-crash seal")
		return 1
	}

	// Serving resumes on the same log: ids stay monotone, epochs advance.
	id, err := r2.Add(1.0)
	if err != nil {
		fmt.Fprintln(out, "lbserve:", err)
		return 1
	}
	next := r2.Seal()
	fmt.Fprintf(out, "resumed: admitted agent %d, sealed epoch %d (%d live)\n", id, next.Epoch(), next.N())
	fmt.Fprintf(out, "\ntotal: %s serving + %s recovery\n",
		setup.Round(time.Millisecond), elapsed.Round(time.Millisecond))
	return 0
}
