// Command lbsupervise runs one supervised distributed mechanism round
// under an injected fault plan and prints the structured RoundReport:
// every attempt, failure classification, exclusion, backoff and
// degradation decision, then the accepted allocation and payments.
//
// Usage:
//
//	lbsupervise -topology binary -n 12 -faults drop=0.1,byz=5@1.2
//	lbsupervise -topology chain -n 16 -faults crash=8 -max-attempts 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/distmech"
	"repro/internal/faults"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/supervise"
)

func main() {
	topoName := flag.String("topology", "star", "spanning tree shape: star, chain or binary")
	n := flag.Int("n", 12, "number of nodes (coordinator included)")
	rate := flag.Float64("rate", 20, "total job arrival rate R")
	faultSpec := flag.String("faults", "", "fault plan, e.g. drop=0.1,crash=3+7,byz=5@1.2 (see package faults)")
	maxAttempts := flag.Int("max-attempts", 6, "retry budget")
	deadline := flag.Float64("deadline", 0, "per-attempt deadline in simulated seconds (0 = none)")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot (JSON then Prometheus text) after the run")
	trace := flag.Bool("trace", false, "print the event trace after the run")
	flag.Parse()

	var tree distmech.Topology
	switch *topoName {
	case "star":
		tree = distmech.Star(*n)
	case "chain":
		tree = distmech.Chain(*n)
	case "binary":
		tree = distmech.Binary(*n)
	default:
		fatal(fmt.Errorf("unknown topology %q (want star, chain or binary)", *topoName))
	}

	var inj faults.Injector
	if *faultSpec != "" {
		plan, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		inj = plan
	}

	agents := make([]mech.Agent, *n)
	for i := range agents {
		t := 1 + 0.15*float64(i)
		agents[i] = mech.Agent{Name: fmt.Sprintf("C%d", i+1), True: t, Bid: t, Exec: t}
	}

	var ob *obs.Observer
	if *metrics || *trace {
		ob = obs.New(0)
	}

	rep, err := supervise.Run(distmech.Config{
		Tree:   tree,
		Agents: agents,
		Rate:   *rate,
		Faults: inj,
	}, supervise.Options{
		MaxAttempts: *maxAttempts,
		Deadline:    *deadline,
		Obs:         ob,
	})
	fmt.Print(rep.Trace())
	// Flush the snapshot before any fatal exit: a failed round's
	// counters are exactly what an operator needs to see.
	if derr := ob.Dump(os.Stdout, *metrics, *trace); derr != nil {
		fatal(derr)
	}
	if err != nil {
		fatal(err)
	}

	tab := report.NewTable("Accepted allocation (excluded nodes hold zero).",
		"Node", "Allocation", "Payment", "Utility")
	for i := range rep.Alloc {
		tab.AddRow(
			fmt.Sprintf("C%d", i+1),
			report.FormatFloat(rep.Alloc[i]),
			report.FormatFloat(rep.Payments[i]),
			report.FormatFloat(rep.Utilities[i]),
		)
	}
	fmt.Println()
	tab.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbsupervise:", err)
	os.Exit(1)
}
