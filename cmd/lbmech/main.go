// Command lbmech regenerates the paper's tables and figures.
//
// Usage:
//
//	lbmech -exp fig1            # print one artifact (table + chart)
//	lbmech -exp all             # print everything
//	lbmech -exp all -csv out/   # also write CSV files
//	lbmech -exp fig2 -svg out/  # also write SVG charts
//	lbmech -checks              # verify every paper claim
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "artifact id (table1, table2, fig1..fig6, des, ext-*) or 'all'/'ext'")
	csvDir := flag.String("csv", "", "directory to write CSV files into")
	svgDir := flag.String("svg", "", "directory to write SVG charts into")
	checks := flag.Bool("checks", false, "verify the paper's quantitative claims and exit")
	outDir := flag.String("out", "", "write the complete report (all artifacts + checks) into this directory and exit")
	flag.Parse()

	if *outDir != "" {
		files, err := experiments.WriteReport(*outDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d files under %s\n", len(files), *outDir)
		return
	}

	if *checks {
		if err := runChecks(); err != nil {
			fatal(err)
		}
		return
	}

	var arts []experiments.Artifact
	switch *exp {
	case "all":
		arts = experiments.Artifacts()
	case "ext":
		arts = experiments.ExtendedArtifacts()
	default:
		a, err := experiments.ArtifactByID(*exp)
		if err != nil {
			fatal(err)
		}
		arts = []experiments.Artifact{a}
	}
	for _, a := range arts {
		if err := emit(a, *csvDir, *svgDir); err != nil {
			fatal(fmt.Errorf("%s: %w", a.ID, err))
		}
	}
}

func emit(a experiments.Artifact, csvDir, svgDir string) error {
	tab, err := a.Table()
	if err != nil {
		return err
	}
	tab.Render(os.Stdout)
	fmt.Println()
	if a.Chart != nil {
		ch, err := a.Chart()
		if err != nil {
			return err
		}
		if err := ch.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if svgDir != "" {
			if err := os.MkdirAll(svgDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(svgDir, a.ID+".svg"))
			if err != nil {
				return err
			}
			if err := ch.WriteSVG(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", filepath.Join(svgDir, a.ID+".svg"))
		}
	}
	if a.Line != nil && svgDir != "" {
		lc, err := a.Line()
		if err != nil {
			return err
		}
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(svgDir, a.ID+"-line.svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := lc.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if a.Heat != nil {
		hm, err := a.Heat()
		if err != nil {
			return err
		}
		if err := hm.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if svgDir != "" {
			if err := os.MkdirAll(svgDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(svgDir, a.ID+"-heat.svg")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := hm.WriteSVG(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, a.ID+".csv"))
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", filepath.Join(csvDir, a.ID+".csv"))
	}
	return nil
}

func runChecks() error {
	tab, err := experiments.ChecksTable()
	if err != nil {
		return err
	}
	tab.Render(os.Stdout)
	checks, err := experiments.Checks()
	if err != nil {
		return err
	}
	failed := 0
	for _, c := range checks {
		if !c.Pass {
			failed++
		}
	}
	fmt.Printf("\n%d/%d paper claims reproduced\n", len(checks)-failed, len(checks))
	if failed > 0 {
		os.Exit(1)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbmech:", err)
	os.Exit(1)
}
