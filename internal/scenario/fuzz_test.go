package scenario

import (
	"strings"
	"testing"
)

// FuzzLoad checks that arbitrary bytes never panic the scenario
// parser and that every accepted scenario is internally consistent.
func FuzzLoad(f *testing.F) {
	f.Add(`{"rate":6,"computers":[{"true":1},{"true":2}]}`)
	f.Add(`{"rate":6,"model":"mm1","computers":[{"true":0.1},{"true":0.2}]}`)
	f.Add(`{"rate":-1}`)
	f.Add(`[]`)
	f.Add(`{"rate":1e308,"computers":[{"true":1e-308},{"true":2}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted scenarios satisfy the validated invariants.
		if s.Rate <= 0 {
			t.Fatalf("accepted scenario with rate %v", s.Rate)
		}
		if len(s.Computers) < 2 {
			t.Fatalf("accepted scenario with %d computers", len(s.Computers))
		}
		if s.Model != "linear" && s.Model != "mm1" {
			t.Fatalf("accepted scenario with model %q", s.Model)
		}
		for i, c := range s.Computers {
			if c.True <= 0 || c.BidFactor <= 0 || c.ExecFactor <= 0 {
				t.Fatalf("accepted computer %d with non-positive parameters: %+v", i, c)
			}
		}
	})
}
