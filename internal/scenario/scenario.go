// Package scenario loads experiment descriptions from JSON so that
// custom systems can be simulated without writing Go: a scenario names
// the latency model, the arrival rate, and per-computer true values
// with optional bid/execution deviation factors, and runs as a full
// verification-protocol round.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Computer is one machine in a scenario file.
type Computer struct {
	// True is the private latency parameter (for the linear model) or
	// mean service time (for mm1).
	True float64 `json:"true"`
	// BidFactor scales the reported value; 0 means 1 (truthful).
	BidFactor float64 `json:"bid_factor,omitempty"`
	// ExecFactor scales the execution value; 0 means 1 (full
	// capacity).
	ExecFactor float64 `json:"exec_factor,omitempty"`
}

// Scenario is a complete simulation description.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Model selects the latency family: "linear" (default) or "mm1".
	Model string `json:"model,omitempty"`
	// Rate is the total job arrival rate.
	Rate float64 `json:"rate"`
	// Jobs is the execution-simulation budget (0 = protocol default).
	Jobs int `json:"jobs,omitempty"`
	// Seed drives the randomness (0 allowed).
	Seed uint64 `json:"seed,omitempty"`
	// Computers are the machines.
	Computers []Computer `json:"computers"`
	// FaultSpec composes a fault plan for the round in the package
	// faults spec syntax, e.g. "drop=0.05,silent=2".
	FaultSpec string `json:"faults,omitempty"`
	// AllowDropouts tolerates agents whose bids never arrive.
	AllowDropouts bool `json:"allow_dropouts,omitempty"`

	// Faults overrides FaultSpec with an already-composed injector
	// (set programmatically, e.g. by the -faults CLI flag).
	Faults faults.Injector `json:"-"`

	// Obs receives metrics and trace events from the round (set
	// programmatically, e.g. by the -metrics CLI flag).
	Obs *obs.Observer `json:"-"`
}

// Load parses and validates a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the scenario's internal consistency and fills
// defaults.
func (s *Scenario) Validate() error {
	switch s.Model {
	case "":
		s.Model = "linear"
	case "linear", "mm1":
	default:
		return fmt.Errorf("scenario: unknown model %q (want linear or mm1)", s.Model)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("scenario: invalid rate %g", s.Rate)
	}
	if len(s.Computers) < 2 {
		return errors.New("scenario: need at least two computers")
	}
	for i := range s.Computers {
		c := &s.Computers[i]
		if c.True <= 0 {
			return fmt.Errorf("scenario: computer %d has invalid true value %g", i, c.True)
		}
		if c.BidFactor == 0 {
			c.BidFactor = 1
		}
		if c.ExecFactor == 0 {
			c.ExecFactor = 1
		}
		if c.BidFactor < 0 || c.ExecFactor < 0 {
			return fmt.Errorf("scenario: computer %d has negative factors", i)
		}
	}
	if s.FaultSpec != "" {
		if _, err := faults.ParseSpec(s.FaultSpec); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	return nil
}

// Trues returns the true-value vector.
func (s *Scenario) Trues() []float64 {
	out := make([]float64, len(s.Computers))
	for i, c := range s.Computers {
		out[i] = c.True
	}
	return out
}

// Strategies returns the per-computer protocol strategies.
func (s *Scenario) Strategies() []protocol.Strategy {
	out := make([]protocol.Strategy, len(s.Computers))
	for i, c := range s.Computers {
		out[i] = protocol.FactorStrategy{BidFactor: c.BidFactor, ExecFactor: c.ExecFactor}
	}
	return out
}

// Run executes the scenario as a full protocol round under its model.
func (s *Scenario) Run() (*protocol.Result, error) {
	inj := s.Faults
	if inj == nil && s.FaultSpec != "" {
		plan, err := faults.ParseSpec(s.FaultSpec)
		if err != nil {
			return nil, err
		}
		inj = plan
	}
	cfg := protocol.Config{
		Trues:         s.Trues(),
		Strategies:    s.Strategies(),
		Rate:          s.Rate,
		Jobs:          s.Jobs,
		Seed:          s.Seed,
		Faults:        inj,
		AllowDropouts: s.AllowDropouts,
		Obs:           s.Obs,
	}
	if s.Model == "mm1" {
		return protocol.RunMM1(cfg)
	}
	return protocol.Run(cfg)
}
