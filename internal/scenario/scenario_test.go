package scenario

import (
	"strings"
	"testing"
)

const valid = `{
  "name": "two-tier",
  "rate": 6,
  "jobs": 2000,
  "seed": 3,
  "computers": [
    {"true": 1},
    {"true": 2, "bid_factor": 0.5, "exec_factor": 2},
    {"true": 5}
  ]
}`

func TestLoadValid(t *testing.T) {
	s, err := Load(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "two-tier" || s.Model != "linear" {
		t.Errorf("scenario = %+v", s)
	}
	if len(s.Computers) != 3 {
		t.Fatalf("computers = %d", len(s.Computers))
	}
	// Defaults applied.
	if s.Computers[0].BidFactor != 1 || s.Computers[0].ExecFactor != 1 {
		t.Errorf("defaults not applied: %+v", s.Computers[0])
	}
	// Explicit factors preserved.
	if s.Computers[1].BidFactor != 0.5 || s.Computers[1].ExecFactor != 2 {
		t.Errorf("explicit factors lost: %+v", s.Computers[1])
	}
	if got := s.Trues(); got[2] != 5 {
		t.Errorf("Trues = %v", got)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"rate": 6, "computers": [{"true": 1}]}`,                                  // one computer
		`{"rate": 0, "computers": [{"true": 1}, {"true": 2}]}`,                     // bad rate
		`{"rate": 6, "computers": [{"true": -1}, {"true": 2}]}`,                    // bad true
		`{"rate": 6, "model": "quantum", "computers": [{"true": 1}, {"true": 2}]}`, // bad model
		`{"rate": 6, "bogus": 1, "computers": [{"true": 1}, {"true": 2}]}`,         // unknown field
		`{"rate": 6, "computers": [{"true": 1, "bid_factor": -2}, {"true": 2}]}`,   // negative factor
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestScenarioRunLinear(t *testing.T) {
	s, err := Load(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 5*3 {
		t.Errorf("messages = %d", res.Messages)
	}
	// Computer 2 played Low2-style: bid low, execute slow.
	if res.Oracle.Utility[1] >= res.Oracle.Utility[0] && res.Oracle.Utility[1] > 0 {
		t.Logf("note: deviator utility %v", res.Oracle.Utility[1])
	}
}

func TestScenarioRunMM1(t *testing.T) {
	s := &Scenario{
		Model: "mm1",
		Rate:  4,
		Jobs:  20000,
		Seed:  9,
		Computers: []Computer{
			{True: 0.1}, {True: 0.2}, {True: 0.4},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Model != "mm1" {
		t.Errorf("model = %q", res.Outcome.Model)
	}
}
