// Package estimate makes the paper's verification assumption
// operational. The paper simply posits that "the processing rate with
// which the jobs were actually executed is known to the mechanism";
// here the mechanism *estimates* each computer's execution value ť
// from the per-job latencies it observes, with confidence intervals,
// and tests the estimate against the computer's declared value.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// ln2 is used by the robust median-based estimator.
const ln2 = 0.6931471805599453

// Estimate is a point estimate of an execution value ť with a normal-
// approximation confidence interval.
type Estimate struct {
	// Value is the point estimate ť̂.
	Value float64
	// StdErr is the standard error of the point estimate.
	StdErr float64
	// N is the number of observations used.
	N int
	// Lo, Hi bound the 95% confidence interval.
	Lo, Hi float64
}

const z95 = 1.959963984540054

// FromFlowDelays estimates ť for a computer in the linear flow model
// from observed per-job delays. At allocated rate x each delay has
// mean ť*x, so ť̂ = mean(delay)/x.
func FromFlowDelays(delays []float64, x float64) (Estimate, error) {
	if len(delays) == 0 {
		return Estimate{}, errors.New("estimate: no observations")
	}
	if x <= 0 || math.IsNaN(x) {
		return Estimate{}, fmt.Errorf("estimate: invalid arrival rate %g", x)
	}
	var s stats.Summary
	s.AddAll(delays)
	v := s.Mean() / x
	se := s.StdErr() / x
	return Estimate{
		Value:  v,
		StdErr: se,
		N:      s.N(),
		Lo:     v - z95*se,
		Hi:     v + z95*se,
	}, nil
}

// FromFlowDelaysRobust estimates ť from the sample median, which for
// exponential delays with mean ť*x sits at ť*x*ln2. It resists
// contamination by outliers (e.g. a node occasionally stalling),
// trading ~25% statistical efficiency for robustness. The reported
// standard error uses the asymptotic variance of the exponential
// median.
func FromFlowDelaysRobust(delays []float64, x float64) (Estimate, error) {
	if len(delays) == 0 {
		return Estimate{}, errors.New("estimate: no observations")
	}
	if x <= 0 || math.IsNaN(x) {
		return Estimate{}, fmt.Errorf("estimate: invalid arrival rate %g", x)
	}
	med := stats.Median(delays)
	v := med / (x * ln2)
	// Asymptotic: sd(median) = 1/(2 f(m) sqrt(n)) with f the density at
	// the median; for Exp(rate λ), f(m) = λ/2, so sd = 1/(λ sqrt(n)).
	// Here λ = 1/(ť x), estimated by the point estimate itself.
	se := v / math.Sqrt(float64(len(delays)))
	return Estimate{
		Value:  v,
		StdErr: se,
		N:      len(delays),
		Lo:     v - z95*se,
		Hi:     v + z95*se,
	}, nil
}

// FromMM1Sojourns estimates the mean service time 1/mu of an M/M/1
// computer from observed sojourn times at arrival rate x: the mean
// sojourn is 1/(mu-x), so the service-rate estimate inverts it.
// Successive sojourn times in a queue are strongly correlated, so the
// standard error of the mean sojourn is estimated with batch means
// (an i.i.d. standard error would make the interval under-cover
// badly) and then propagated through the inversion by the delta
// method.
func FromMM1Sojourns(sojourns []float64, x float64) (Estimate, error) {
	if len(sojourns) == 0 {
		return Estimate{}, errors.New("estimate: no observations")
	}
	if x < 0 || math.IsNaN(x) {
		return Estimate{}, fmt.Errorf("estimate: invalid arrival rate %g", x)
	}
	var w, seW float64
	if len(sojourns) >= 4 {
		var err error
		w, seW, err = stats.BatchMeans(sojourns, 0)
		if err != nil {
			return Estimate{}, err
		}
	} else {
		var s stats.Summary
		s.AddAll(sojourns)
		w, seW = s.Mean(), s.StdErr()
	}
	if w <= 0 {
		return Estimate{}, errors.New("estimate: non-positive mean sojourn")
	}
	mu := x + 1/w
	v := 1 / mu
	// dv/dw = 1/(w*mu)^2; propagate the batch-means standard error.
	dvdw := 1 / ((w * mu) * (w * mu))
	se := math.Abs(dvdw) * seW
	return Estimate{
		Value:  v,
		StdErr: se,
		N:      len(sojourns),
		Lo:     v - z95*se,
		Hi:     v + z95*se,
	}, nil
}

// Verdict is the outcome of testing an estimated execution value
// against a declared one.
type Verdict struct {
	// Estimated is the point estimate ť̂.
	Estimated float64
	// Declared is the value the computer bid.
	Declared float64
	// ZScore is (estimated - declared) / stderr.
	ZScore float64
	// Deviating is true when the estimate exceeds the declaration by
	// more than the chosen significance threshold — the computer
	// executed slower than it promised.
	Deviating bool
	// Invalid is true when the verdict could not be computed: the
	// estimate or declaration was NaN or infinite, or the standard
	// error was NaN or negative. An invalid verdict is never Deviating
	// (there is no evidence either way), but it must not be read as a
	// pass — use Flagged to treat both cases as audit failures.
	Invalid bool
}

// Flagged reports whether the verdict requires coordinator action:
// either the agent deviated, or the verification itself was fed
// invalid inputs and cannot vouch for the agent.
func (v Verdict) Flagged() bool { return v.Deviating || v.Invalid }

// isFinite reports whether f is neither NaN nor infinite.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Verify tests whether est is statistically above declared at the
// given one-sided z threshold (e.g. 3 for ~0.1% false positives).
// Only slower-than-declared execution counts as deviation, mirroring
// the paper's ť >= t assumption.
func Verify(est Estimate, declared, zThreshold float64) Verdict {
	return VerifyWithMargin(est, declared, zThreshold, 0)
}

// VerifyWithMargin additionally requires *practical* significance: the
// estimate must exceed declared*(1+margin) at the z threshold, not
// just declared. With very large samples a statistically significant
// excess can be operationally meaningless (estimator bias under
// measurement faults is on the order of the contamination fraction),
// so production deployments should set a margin reflecting the
// smallest slowdown worth punishing.
func VerifyWithMargin(est Estimate, declared, zThreshold, margin float64) Verdict {
	v := Verdict{Estimated: est.Value, Declared: declared}
	threshold := declared * (1 + margin)
	// A NaN anywhere in the z-score makes every comparison below
	// false, so without this guard a NaN estimate would silently pass
	// verification. Surface it as an explicit invalid verdict instead.
	if !isFinite(est.Value) || !isFinite(threshold) ||
		math.IsNaN(est.StdErr) || est.StdErr < 0 {
		v.Invalid = true
		v.ZScore = math.NaN()
		return v
	}
	if est.StdErr > 0 {
		v.ZScore = (est.Value - threshold) / est.StdErr
	} else if est.Value != threshold {
		v.ZScore = math.Inf(1)
		if est.Value < threshold {
			v.ZScore = math.Inf(-1)
		}
	}
	v.Deviating = v.ZScore > zThreshold
	return v
}
