package estimate

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/numeric"
	"repro/internal/workload"
)

// expDelays draws n exponential delays with mean tExec*x.
func expDelays(tExec, x float64, n int, seed uint64) []float64 {
	rng := numeric.NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = tExec * x * rng.ExpFloat64()
	}
	return out
}

func TestFromFlowDelaysRecoversValue(t *testing.T) {
	const tExec, x = 2.5, 4.0
	est, err := FromFlowDelays(expDelays(tExec, x, 50000, 1), x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-tExec)/tExec > 0.02 {
		t.Errorf("estimate = %v, want ~%v", est.Value, tExec)
	}
	if est.Lo > tExec || est.Hi < tExec {
		t.Errorf("CI (%v, %v) misses true value %v", est.Lo, est.Hi, tExec)
	}
	if est.N != 50000 {
		t.Errorf("N = %d", est.N)
	}
}

func TestFromFlowDelaysCICoverage(t *testing.T) {
	// ~95% of intervals should cover the truth.
	const tExec, x = 1.5, 3.0
	covered := 0
	const trials = 400
	for s := 0; s < trials; s++ {
		est, err := FromFlowDelays(expDelays(tExec, x, 400, uint64(s+10)), x)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo <= tExec && tExec <= est.Hi {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("CI coverage = %v, want ~0.95", frac)
	}
}

func TestFromFlowDelaysErrors(t *testing.T) {
	if _, err := FromFlowDelays(nil, 1); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := FromFlowDelays([]float64{1}, 0); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, err := FromFlowDelays([]float64{1}, math.NaN()); err == nil {
		t.Error("expected error for NaN rate")
	}
}

func TestRobustEstimatorUnderContamination(t *testing.T) {
	const tExec, x = 2.0, 3.0
	delays := expDelays(tExec, x, 20000, 5)
	// Contaminate 2% of the sample with huge stalls.
	for i := 0; i < len(delays); i += 50 {
		delays[i] = 1000
	}
	mean, err := FromFlowDelays(delays, x)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := FromFlowDelaysRobust(delays, x)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := math.Abs(mean.Value - tExec)
	robustErr := math.Abs(robust.Value - tExec)
	if robustErr >= meanErr {
		t.Errorf("robust error %v should beat mean error %v under contamination",
			robustErr, meanErr)
	}
	if robustErr/tExec > 0.05 {
		t.Errorf("robust estimate %v too far from %v", robust.Value, tExec)
	}
}

func TestRobustEstimatorCleanData(t *testing.T) {
	const tExec, x = 0.5, 8.0
	est, err := FromFlowDelaysRobust(expDelays(tExec, x, 50000, 9), x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-tExec)/tExec > 0.03 {
		t.Errorf("robust estimate = %v, want ~%v", est.Value, tExec)
	}
}

func TestFromMM1SojournsRecoversServiceTime(t *testing.T) {
	// Simulate a real M/M/1 queue and invert the sojourn time.
	const mu, lambda = 3.0, 2.0
	rng := numeric.NewRand(21)
	res, err := cluster.Run(cluster.Config{
		Nodes:       cluster.QueueNodes([]float64{mu}),
		Probs:       []float64{1},
		Source:      workload.NewPoisson(lambda, 200000, workload.ExpSize{}, rng.Split()),
		RNG:         rng.Split(),
		KeepSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := FromMM1Sojourns(res.PerNode[0].Latencies, lambda)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / mu
	if math.Abs(est.Value-want)/want > 0.05 {
		t.Errorf("estimated service time = %v, want ~%v", est.Value, want)
	}
}

func TestFromMM1SojournsErrors(t *testing.T) {
	if _, err := FromMM1Sojourns(nil, 1); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := FromMM1Sojourns([]float64{1}, -1); err == nil {
		t.Error("expected error for negative rate")
	}
	if _, err := FromMM1Sojourns([]float64{0, 0}, 1); err == nil {
		t.Error("expected error for zero sojourns")
	}
}

func TestVerifyDetectsSlowExecution(t *testing.T) {
	const declared, actual, x = 1.0, 2.0, 4.0
	est, err := FromFlowDelays(expDelays(actual, x, 5000, 31), x)
	if err != nil {
		t.Fatal(err)
	}
	v := Verify(est, declared, 3)
	if !v.Deviating {
		t.Errorf("failed to flag a 2x slowdown: %+v", v)
	}
	if v.ZScore <= 3 {
		t.Errorf("z-score %v should be large", v.ZScore)
	}
}

func TestVerifyAcceptsHonestExecution(t *testing.T) {
	const declared, x = 1.5, 4.0
	falsePositives := 0
	for s := 0; s < 200; s++ {
		est, err := FromFlowDelays(expDelays(declared, x, 1000, uint64(100+s)), x)
		if err != nil {
			t.Fatal(err)
		}
		if Verify(est, declared, 3).Deviating {
			falsePositives++
		}
	}
	if falsePositives > 2 {
		t.Errorf("%d/200 false positives at z=3, want near 0", falsePositives)
	}
}

func TestVerifyZeroStdErr(t *testing.T) {
	v := Verify(Estimate{Value: 2, StdErr: 0}, 1, 3)
	if !v.Deviating || !math.IsInf(v.ZScore, 1) {
		t.Errorf("degenerate slow case: %+v", v)
	}
	v = Verify(Estimate{Value: 1, StdErr: 0}, 1, 3)
	if v.Deviating {
		t.Errorf("exact match flagged: %+v", v)
	}
	v = Verify(Estimate{Value: 0.5, StdErr: 0}, 1, 3)
	if v.Deviating {
		t.Errorf("faster-than-declared flagged as deviating: %+v", v)
	}
}

// Regression: a NaN estimate produced a NaN z-score, every comparison
// against the threshold came back false, and the agent silently passed
// verification. Invalid inputs must yield an explicit invalid verdict
// that Flagged treats as an audit failure, never as a pass.
func TestVerifyInvalidInputs(t *testing.T) {
	cases := []struct {
		name     string
		est      Estimate
		declared float64
	}{
		{"nan value", Estimate{Value: math.NaN(), StdErr: 0.1}, 1},
		{"inf value", Estimate{Value: math.Inf(1), StdErr: 0.1}, 1},
		{"nan declared", Estimate{Value: 2, StdErr: 0.1}, math.NaN()},
		{"inf declared", Estimate{Value: 2, StdErr: 0.1}, math.Inf(1)},
		{"nan stderr", Estimate{Value: 2, StdErr: math.NaN()}, 1},
		{"negative stderr", Estimate{Value: 2, StdErr: -0.1}, 1},
	}
	for _, tc := range cases {
		v := Verify(tc.est, tc.declared, 3)
		if !v.Invalid {
			t.Errorf("%s: verdict not invalid: %+v", tc.name, v)
		}
		if v.Deviating {
			t.Errorf("%s: invalid verdict must not claim deviation: %+v", tc.name, v)
		}
		if !math.IsNaN(v.ZScore) {
			t.Errorf("%s: z-score = %v, want NaN", tc.name, v.ZScore)
		}
		if !v.Flagged() {
			t.Errorf("%s: invalid verdict must be flagged", tc.name)
		}
	}
}

func TestVerdictFlagged(t *testing.T) {
	if (Verdict{}).Flagged() {
		t.Error("clean verdict flagged")
	}
	if !(Verdict{Deviating: true}).Flagged() {
		t.Error("deviating verdict not flagged")
	}
	if !(Verdict{Invalid: true}).Flagged() {
		t.Error("invalid verdict not flagged")
	}
	// Valid inputs still produce valid verdicts.
	if v := Verify(Estimate{Value: 2, StdErr: 0.1}, 1, 3); v.Invalid || !v.Deviating {
		t.Errorf("valid slow case: %+v", v)
	}
}
