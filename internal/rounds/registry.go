package rounds

import "repro/internal/registry"

// ComputersFromSnapshot builds a truthful round population from a
// sealed registry epoch: one ComputerSpec per live agent in ascending
// id order, with the sealed bid as the true value. It bridges the
// concurrent serving path into the multi-round simulation machinery —
// seal the live bid registry, then replay the frozen population
// through the rounds engine (strategies, churn and policy can be
// layered onto the returned slice afterwards).
//
// dst is reused when it has capacity, following the SnapshotInto
// convention, so a server re-simulating every epoch does not allocate
// in steady state.
func ComputersFromSnapshot(dst []ComputerSpec, snap *registry.Snapshot) []ComputerSpec {
	n := snap.N()
	if cap(dst) < n {
		dst = make([]ComputerSpec, n)
	}
	dst = dst[:n]
	for j, id := range snap.IDs() {
		v, _ := snap.Value(id)
		dst[j] = ComputerSpec{True: v}
	}
	return dst
}
