package rounds

import (
	"math"
	"testing"

	"repro/internal/protocol"
)

func truthfulPopulation() []ComputerSpec {
	return []ComputerSpec{
		{True: 1}, {True: 2}, {True: 5}, {True: 10},
	}
}

func TestTruthfulSteadyState(t *testing.T) {
	res, err := Run(Config{
		Computers:    truthfulPopulation(),
		Rate:         8,
		Rounds:       10,
		JobsPerRound: 20000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("ran %d rounds", len(res.Records))
	}
	// At z=3 a single false flag across 40 honest agent-rounds is
	// within statistical expectation (the exponential t-statistic is
	// right-skewed); the multi-strike policy exists so that such
	// isolated flags never suspend anyone. Assert exactly that.
	totalFlags := 0
	for _, rec := range res.Records {
		totalFlags += len(rec.Flagged)
		if len(rec.Active) != 4 {
			t.Errorf("round %d active %v", rec.Round, rec.Active)
		}
		// Truthful rounds run at the optimum.
		if math.Abs(rec.Latency-rec.OptLatency) > 1e-9 {
			t.Errorf("round %d latency %v != optimum %v", rec.Round, rec.Latency, rec.OptLatency)
		}
	}
	if totalFlags > 1 {
		t.Errorf("%d false flags across 40 honest agent-rounds, expected at most ~1", totalFlags)
	}
	for i, s := range res.Suspensions {
		if s != 0 {
			t.Errorf("honest computer %d suspended %d times", i, s)
		}
	}
}

func TestPersistentDeviatorGetsSuspended(t *testing.T) {
	pop := truthfulPopulation()
	// Computer 0 always executes 2x slower than it bids.
	pop[0].Strategy = protocol.FactorStrategy{BidFactor: 1, ExecFactor: 2}
	res, err := Run(Config{
		Computers:    pop,
		Rate:         8,
		Rounds:       12,
		JobsPerRound: 30000,
		Seed:         2,
		Policy:       Policy{Strikes: 2, BanRounds: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspensions[0] == 0 {
		t.Fatal("persistent deviator never suspended")
	}
	// While suspended, rounds run without it and at the remaining
	// population's optimum.
	foundSuspendedRound := false
	for _, rec := range res.Records {
		for _, s := range rec.Suspended {
			if s == 0 {
				foundSuspendedRound = true
				for _, a := range rec.Active {
					if a == 0 {
						t.Error("computer both active and suspended")
					}
				}
				if math.Abs(rec.Latency-rec.OptLatency) > 1e-9 {
					t.Errorf("suspension round %d latency %v != optimum %v",
						rec.Round, rec.Latency, rec.OptLatency)
				}
			}
		}
	}
	if !foundSuspendedRound {
		t.Error("no round recorded the suspension")
	}
	// Honest computers are never suspended.
	for i := 1; i < 4; i++ {
		if res.Suspensions[i] != 0 {
			t.Errorf("honest computer %d suspended", i)
		}
	}
}

func TestSuspensionExpires(t *testing.T) {
	pop := truthfulPopulation()
	pop[0].Strategy = protocol.FactorStrategy{BidFactor: 1, ExecFactor: 2}
	res, err := Run(Config{
		Computers:    pop,
		Rate:         8,
		Rounds:       15,
		JobsPerRound: 30000,
		Seed:         3,
		Policy:       Policy{Strikes: 1, BanRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With strikes=1 and ban=2 the deviator cycles: active round,
	// then 2 suspended rounds, then active again...
	activeRounds, suspendedRounds := 0, 0
	for _, rec := range res.Records {
		for _, a := range rec.Active {
			if a == 0 {
				activeRounds++
			}
		}
		for _, s := range rec.Suspended {
			if s == 0 {
				suspendedRounds++
			}
		}
	}
	if activeRounds == 0 || suspendedRounds == 0 {
		t.Errorf("expected cycling: active %d, suspended %d", activeRounds, suspendedRounds)
	}
	if res.Suspensions[0] < 2 {
		t.Errorf("expected repeated suspensions, got %d", res.Suspensions[0])
	}
}

func TestChurn(t *testing.T) {
	pop := []ComputerSpec{
		{True: 1},
		{True: 2},
		{True: 5, JoinRound: 3},                 // joins late
		{True: 10, JoinRound: 0, LeaveRound: 5}, // leaves early
	}
	res, err := Run(Config{
		Computers:    pop,
		Rate:         6,
		Rounds:       8,
		JobsPerRound: 2000,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	countActive := func(round, idx int) bool {
		for _, a := range res.Records[round].Active {
			if a == idx {
				return true
			}
		}
		return false
	}
	if countActive(0, 2) {
		t.Error("computer 2 active before joining")
	}
	if !countActive(3, 2) || !countActive(7, 2) {
		t.Error("computer 2 missing after joining")
	}
	if !countActive(4, 3) {
		t.Error("computer 3 missing before leaving")
	}
	if countActive(5, 3) {
		t.Error("computer 3 active after leaving")
	}
}

func TestVariableRate(t *testing.T) {
	res, err := Run(Config{
		Computers:    truthfulPopulation(),
		RateFor:      func(round int) float64 { return 4 + float64(round) },
		Rate:         0, // ignored when RateFor is set
		Rounds:       5,
		JobsPerRound: 2000,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Latency grows with the rate (quadratically in R).
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].OptLatency <= res.Records[i-1].OptLatency {
			t.Errorf("round %d optimum did not grow", i)
		}
	}
}

func TestForgiveAfterResetsStrikes(t *testing.T) {
	// An intermittent deviator that misbehaves far apart in time: with
	// forgiveness enabled, its strikes reset between incidents and it
	// is never suspended under a 2-strike policy.
	run := func(forgive int) *Result {
		pop := truthfulPopulation()
		// Deviates on rounds 0, 6, 12... (fresh counter per run).
		pop[0].Strategy = &onOffStrategy{period: 6}
		res, err := Run(Config{
			Computers:    pop,
			Rate:         8,
			Rounds:       14,
			JobsPerRound: 30000,
			Seed:         7,
			Policy:       Policy{Strikes: 2, BanRounds: 3, ForgiveAfter: forgive},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withForgiveness := run(3)
	if withForgiveness.Suspensions[0] != 0 {
		t.Errorf("forgiving policy suspended the intermittent deviator %d times",
			withForgiveness.Suspensions[0])
	}
	without := run(0)
	if without.Suspensions[0] == 0 {
		t.Error("strict policy should eventually suspend the intermittent deviator")
	}
}

// onOffStrategy deviates (executes 2x slow) only on rounds that are
// multiples of period; the round is inferred by counting Exec calls.
type onOffStrategy struct {
	period int
	calls  int
}

func (s *onOffStrategy) Bid(trueValue float64) float64 { return trueValue }

func (s *onOffStrategy) Exec(trueValue, _ float64) float64 {
	round := s.calls
	s.calls++
	if round%s.period == 0 {
		return 2 * trueValue
	}
	return trueValue
}

func TestRunValidation(t *testing.T) {
	good := truthfulPopulation()
	cases := []Config{
		{Computers: good[:1], Rate: 5, Rounds: 3},
		{Computers: good, Rate: 5, Rounds: 0},
		{Computers: good, Rounds: 3},
		{Computers: []ComputerSpec{{True: -1}, {True: 1}}, Rate: 5, Rounds: 3},
		{Computers: []ComputerSpec{{True: 1, JoinRound: -2}, {True: 1}}, Rate: 5, Rounds: 3},
		{Computers: good, RateFor: func(int) float64 { return -1 }, Rounds: 3},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Too few active computers mid-run.
	pop := []ComputerSpec{{True: 1}, {True: 2, LeaveRound: 2}}
	if _, err := Run(Config{Computers: pop, Rate: 4, Rounds: 5, JobsPerRound: 500, Seed: 6}); err == nil {
		t.Error("expected error when population collapses")
	}
}
