package rounds

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Engine runs multi-round simulations with state reused across rounds
// and across Run calls. Two things make it fast:
//
//   - Churn is incremental. Joins, leaves, suspensions and ban
//     expiries are bucketed per round, and each event updates an
//     online alloc.Stream (the running S = Σ 1/t_i) plus sorted
//     active/suspended rosters in O(events) — the per-round optimum
//     L* = R²/S is then an O(1) read instead of an O(n) rebuild, and
//     a dropout round subtracts the dropouts' 1/t in O(#dropouts).
//
//   - Scratch is reused. The protocol engine underneath (and through
//     it the cluster scratch, the pooled DES heap, the RNG streams
//     and the payment engines), the roster slices and the per-round
//     Records are all engine-owned, so a steady-state round does
//     near-zero heap allocation.
//
// The Result returned by Run is owned by the engine and is valid only
// until the next Run; call Result.Clone to keep one. An Engine is not
// safe for concurrent use — RunReplications hands each worker its own.
type Engine struct {
	proto  *protocol.Engine
	stream *alloc.Stream

	// Membership state, indexed by population position.
	status      []uint8 // computerOut, computerActive or computerSuspended
	sid         []int   // stream id while active
	bannedUntil []int
	lastFlag    []int

	// Sorted rosters, updated incrementally.
	activeList    []int
	suspendedList []int

	// Per-round event buckets, indexed by round.
	joinAt   [][]int
	leaveAt  [][]int
	returnAt [][]int

	// Per-round scratch.
	trues      []float64
	strategies []protocol.Strategy
	responsive []bool
	scratchTs  []float64

	res Result
}

const (
	computerOut uint8 = iota
	computerActive
	computerSuspended
)

// NewEngine returns a reusable multi-round engine.
func NewEngine() *Engine {
	return &Engine{proto: protocol.NewEngine()}
}

// Run executes the multi-round system, reusing the engine's state. The
// returned Result is invalidated by the next Run.
func (e *Engine) Run(cfg Config) (*Result, error) {
	n := len(cfg.Computers)
	if n < 2 {
		return nil, errors.New("rounds: need at least two computers")
	}
	if cfg.Rounds <= 0 {
		return nil, errors.New("rounds: non-positive round count")
	}
	if cfg.Rate <= 0 && cfg.RateFor == nil {
		return nil, errors.New("rounds: no arrival rate configured")
	}
	for i, c := range cfg.Computers {
		if c.True <= 0 {
			return nil, fmt.Errorf("rounds: computer %d has invalid true value %g", i, c.True)
		}
		if c.JoinRound < 0 {
			return nil, fmt.Errorf("rounds: computer %d has negative join round", i)
		}
	}
	pol := cfg.Policy.withDefaults()
	jobs := cfg.JobsPerRound
	if jobs <= 0 {
		jobs = 5000
	}
	met := cfg.Obs.SuperviseMetrics()
	e.reset(cfg)

	for round := 0; round < cfg.Rounds; round++ {
		rate := cfg.Rate
		if cfg.RateFor != nil {
			rate = cfg.RateFor(round)
		}
		if rate <= 0 || e.stream.SetRate(rate) != nil {
			return nil, fmt.Errorf("rounds: round %d has invalid rate %g", round, rate)
		}

		// Apply this round's membership events: departures first (a
		// computer that leaves the round its ban expires is simply
		// gone), then arrivals, then ban expiries.
		for _, i := range e.leaveAt[round] {
			e.depart(i)
		}
		for _, i := range e.joinAt[round] {
			e.activate(i, cfg.Computers[i].True)
		}
		for _, i := range e.returnAt[round] {
			if e.status[i] == computerSuspended {
				e.suspendedList = removeSorted(e.suspendedList, i)
				e.activate(i, cfg.Computers[i].True)
			}
		}

		rec := e.nextRecord(round)
		rec.Active = append(rec.Active, e.activeList...)
		rec.Suspended = append(rec.Suspended, e.suspendedList...)
		e.trues = e.trues[:0]
		e.strategies = e.strategies[:0]
		for _, i := range e.activeList {
			e.trues = append(e.trues, cfg.Computers[i].True)
			e.strategies = append(e.strategies, cfg.Computers[i].Strategy)
		}
		if len(rec.Active) < 2 {
			return nil, fmt.Errorf("rounds: round %d has only %d active computers", round, len(rec.Active))
		}
		met.Excluded("suspended", len(rec.Suspended))

		base := protocol.Config{
			Trues:      e.trues,
			Strategies: e.strategies,
			Rate:       rate,
			Jobs:       jobs,
			Seed:       cfg.Seed + uint64(round)*0x9e3779b9,
			ZThreshold: pol.ZThreshold,
			Obs:        cfg.Obs,
		}
		var pres *protocol.Result
		var err error
		for attempt := 0; ; attempt++ {
			pcfg := base
			if attempt > 0 {
				pcfg.Seed = base.Seed + uint64(attempt)*0x85ebca6b
			}
			if cfg.Faults != nil {
				// Re-key the schedule per (round, attempt) — attempt 0
				// of round 0 keeps the plan's own seed — resolve
				// flapping nodes against the round number (a flapper is
				// stalled or healthy for whole rounds, so it trips
				// verification in its bad phase and serves normally in
				// its good one), and remap the population-level node
				// ids onto this round's active set.
				salt := uint64(round)<<8 | uint64(attempt&0xff)
				pcfg.Faults = faults.Remap(faults.FlapPhase(faults.Reseed(cfg.Faults, salt), round), rec.Active)
			}
			// Retries chase a fully responsive round; the final
			// attempt degrades to whoever answers.
			pcfg.AllowDropouts = cfg.MaxRetries > 0 && attempt == cfg.MaxRetries
			pres, err = e.proto.Run(pcfg)
			rec.Attempts = attempt + 1
			if err == nil {
				met.AttemptDone("ok")
				break
			}
			met.AttemptDone("protocol-error")
			if cfg.Obs != nil {
				cfg.Obs.Emit(obs.Event{
					Layer: "rounds", Kind: "attempt-failed", Node: round,
					Detail: fmt.Sprintf("#%d: %v", attempt+1, err),
				})
			}
			if attempt >= cfg.MaxRetries {
				return nil, fmt.Errorf("rounds: round %d: %w", round, err)
			}
			met.RetryScheduled(0)
		}
		rec.LostMessages = pres.Lost
		met.AcceptedRound(len(pres.Active) != len(rec.Active))

		// The optimum for the computers that actually served: R²/S
		// straight off the stream, with dropouts' 1/t subtracted.
		rec.OptLatency = e.stream.OptimalLatency()
		if len(pres.Active) != len(rec.Active) {
			if cap(e.responsive) < len(rec.Active) {
				e.responsive = make([]bool, len(rec.Active))
			}
			e.responsive = e.responsive[:len(rec.Active)]
			for i := range e.responsive {
				e.responsive[i] = false
			}
			for _, j := range pres.Active {
				e.responsive[j] = true
			}
			rest := e.stream.Sum()
			for j := range rec.Active {
				if !e.responsive[j] {
					rec.Dropouts = append(rec.Dropouts, rec.Active[j])
					rest -= 1 / e.trues[j]
				}
			}
			if rest > 0 {
				rec.OptLatency = rate * rate / rest
			} else {
				// Cancellation ate the whole sum (cannot happen with
				// ≥ 2 responsive computers short of pathological
				// trues): recompute from scratch over the responsive
				// subset.
				e.scratchTs = e.scratchTs[:0]
				for _, j := range pres.Active {
					e.scratchTs = append(e.scratchTs, e.trues[j])
				}
				opt, oerr := alloc.OptimalLatencyLinear(e.scratchTs, rate)
				if oerr != nil {
					return nil, oerr
				}
				rec.OptLatency = opt
			}
			met.Excluded("dropout", len(rec.Dropouts))
		}
		rec.Latency = pres.Oracle.RealLatency
		rec.TotalPayment = pres.Outcome.TotalPayment()

		for pos, v := range pres.Verdicts {
			// Flagged covers both deviation and invalid verdicts: a
			// measurement the coordinator cannot verify counts as a
			// strike, not as a pass.
			if !v.Flagged() {
				continue
			}
			// pres positions index the responsive subset; pres.Active
			// maps them to this round's roster, rec.Active to the
			// population.
			idx := rec.Active[pres.Active[pos]]
			rec.Flagged = append(rec.Flagged, idx)
			if pol.ForgiveAfter > 0 && e.lastFlag[idx] >= 0 &&
				round-e.lastFlag[idx] > pol.ForgiveAfter {
				e.res.Strikes[idx] = 0
			}
			e.lastFlag[idx] = round
			e.res.Strikes[idx]++
			if e.res.Strikes[idx] >= pol.Strikes {
				e.suspend(idx, round, pol, cfg.Rounds)
				if cfg.Obs != nil {
					cfg.Obs.Emit(obs.Event{
						Layer: "rounds", Kind: "suspend", Node: idx,
						Detail: fmt.Sprintf("round %d, %d rounds", round, pol.BanRounds),
					})
				}
			}
		}
	}
	return &e.res, nil
}

// reset prepares all engine state for a fresh simulation over cfg.
func (e *Engine) reset(cfg Config) {
	n := len(cfg.Computers)
	if e.stream == nil {
		e.stream, _ = alloc.NewStream(0)
	} else {
		_ = e.stream.Reset(0)
	}
	e.status = resizeUint8(e.status, n)
	e.sid = resizeInts(e.sid, n)
	e.bannedUntil = resizeInts(e.bannedUntil, n)
	e.lastFlag = resizeInts(e.lastFlag, n)
	for i := range e.lastFlag {
		e.lastFlag[i] = -1
	}
	e.activeList = e.activeList[:0]
	e.suspendedList = e.suspendedList[:0]
	e.joinAt = resizeBuckets(e.joinAt, cfg.Rounds)
	e.leaveAt = resizeBuckets(e.leaveAt, cfg.Rounds)
	e.returnAt = resizeBuckets(e.returnAt, cfg.Rounds)
	for i, c := range cfg.Computers {
		neverPresent := c.LeaveRound > 0 && c.LeaveRound <= c.JoinRound
		if neverPresent || c.JoinRound >= cfg.Rounds {
			continue
		}
		e.joinAt[c.JoinRound] = append(e.joinAt[c.JoinRound], i)
		if c.LeaveRound > 0 && c.LeaveRound < cfg.Rounds {
			e.leaveAt[c.LeaveRound] = append(e.leaveAt[c.LeaveRound], i)
		}
	}
	e.res.Records = e.res.Records[:0]
	e.res.Strikes = resizeInts(e.res.Strikes, n)
	e.res.Suspensions = resizeInts(e.res.Suspensions, n)
}

// activate moves computer i into the active set (join or ban expiry).
func (e *Engine) activate(i int, t float64) {
	id, err := e.stream.Add(t)
	if err != nil {
		// Trues are validated up front; this is unreachable.
		panic(err)
	}
	e.sid[i] = id
	e.status[i] = computerActive
	e.activeList = insertSorted(e.activeList, i)
}

// depart removes computer i from whichever set it is in (leave event).
func (e *Engine) depart(i int) {
	switch e.status[i] {
	case computerActive:
		_ = e.stream.Remove(e.sid[i])
		e.activeList = removeSorted(e.activeList, i)
	case computerSuspended:
		e.suspendedList = removeSorted(e.suspendedList, i)
	}
	e.status[i] = computerOut
}

// suspend bans computer idx at the end of round, moving it from the
// active to the suspended set and scheduling its return.
func (e *Engine) suspend(idx, round int, pol Policy, rounds int) {
	e.bannedUntil[idx] = round + 1 + pol.BanRounds
	e.res.Suspensions[idx]++
	e.res.Strikes[idx] = 0
	_ = e.stream.Remove(e.sid[idx])
	e.activeList = removeSorted(e.activeList, idx)
	e.suspendedList = insertSorted(e.suspendedList, idx)
	e.status[idx] = computerSuspended
	if e.bannedUntil[idx] < rounds {
		e.returnAt[e.bannedUntil[idx]] = append(e.returnAt[e.bannedUntil[idx]], idx)
	}
}

// nextRecord appends a cleared Record to the result, reusing the
// slot's nested slice capacity. The roster slices are kept non-nil so
// serialized Results compare byte-identical regardless of slot
// history.
func (e *Engine) nextRecord(round int) *Record {
	if len(e.res.Records) < cap(e.res.Records) {
		e.res.Records = e.res.Records[:len(e.res.Records)+1]
	} else {
		e.res.Records = append(e.res.Records, Record{})
	}
	rec := &e.res.Records[len(e.res.Records)-1]
	*rec = Record{
		Round:     round,
		Active:    emptyInts(rec.Active),
		Suspended: emptyInts(rec.Suspended),
		Flagged:   emptyInts(rec.Flagged),
		Dropouts:  emptyInts(rec.Dropouts),
	}
	return rec
}

// Clone deep-copies a Result so it survives the next Engine.Run.
func (r *Result) Clone() *Result {
	out := &Result{
		Records:     make([]Record, len(r.Records)),
		Strikes:     copyInts(r.Strikes),
		Suspensions: copyInts(r.Suspensions),
	}
	for i, rec := range r.Records {
		rec.Active = copyInts(rec.Active)
		rec.Suspended = copyInts(rec.Suspended)
		rec.Flagged = copyInts(rec.Flagged)
		rec.Dropouts = copyInts(rec.Dropouts)
		out.Records[i] = rec
	}
	return out
}

// insertSorted inserts v into ascending-sorted xs (churn lists are
// small and events rare; a linear shift beats the constant factors of
// anything fancier).
func insertSorted(xs []int, v int) []int {
	xs = append(xs, v)
	i := len(xs) - 1
	for i > 0 && xs[i-1] > v {
		xs[i] = xs[i-1]
		i--
	}
	xs[i] = v
	return xs
}

// removeSorted removes v from ascending-sorted xs, preserving order.
func removeSorted(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			copy(xs[i:], xs[i+1:])
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// emptyInts returns s truncated to length 0, allocating a non-nil
// empty slice the first time.
func emptyInts(s []int) []int {
	if s == nil {
		return []int{}
	}
	return s[:0]
}

// copyInts deep-copies s, preserving nil-ness and non-nil emptiness.
func copyInts(s []int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// resizeInts returns s with length n and all elements zero.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeUint8 returns s with length n and all elements zero.
func resizeUint8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeBuckets returns s with length n and every bucket empty,
// keeping the buckets' capacity.
func resizeBuckets(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s[:cap(s)])
		s = grown
	}
	s = s[:n]
	for i := range s {
		if s[i] != nil {
			s[i] = s[i][:0]
		}
	}
	return s
}
