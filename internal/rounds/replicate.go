package rounds

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/parallel"
)

// Replications configures a fan-out of independent multi-round
// simulations — the Monte Carlo workhorse behind confidence intervals
// on suspension counts, latency regret and payment totals.
type Replications struct {
	// Base is the configuration every replication starts from.
	Base Config
	// Count is the number of replications when Seeds is nil.
	Count int
	// Seeds overrides the per-replication seeds; when nil, replication
	// i runs with Base.Seed + i*2^64/φ, a fixed derivation so results
	// do not depend on scheduling.
	Seeds []uint64
	// Vary optionally mutates replication i's config (scenario sweeps:
	// a different rate, population or fault plan per slot). It is
	// called from worker goroutines and must not share mutable state
	// across replications.
	Vary func(rep int, cfg *Config)
	// Workers is the fan-out width (<= 0 means GOMAXPROCS).
	Workers int
}

// RunReplications runs every replication and returns the results in
// replication order: slot i is replication i no matter which worker
// ran it or when, and the records are byte-for-byte identical to a
// serial (Workers = 1) run of the same spec. Each worker owns a
// pooled Engine, so the fan-out reuses scratch instead of allocating
// per replication; results are deep copies that outlive the pool. The
// first error cancels unclaimed replications (fast fail) and is
// returned with its replication index.
//
// Two sharing caveats follow from the fan-out: Base.Obs, if set, sees
// events from all workers concurrently and must tolerate that; and
// stateful Strategy implementations in Base.Computers are shared
// across replications — strategies should be stateless (the ones in
// this repository are) or Vary should substitute per-replication
// instances.
func RunReplications(r Replications) ([]*Result, error) {
	count := r.Count
	if len(r.Seeds) > 0 {
		count = len(r.Seeds)
	}
	if count <= 0 {
		return nil, errors.New("rounds: no replications configured")
	}
	var pool sync.Pool // of *Engine
	results, err := parallel.MapErr(count, r.Workers, func(i int) (*Result, error) {
		cfg := r.Base
		if r.Seeds != nil {
			cfg.Seed = r.Seeds[i]
		} else {
			cfg.Seed = r.Base.Seed + uint64(i)*0x9e3779b97f4a7c15
		}
		if r.Vary != nil {
			r.Vary(i, &cfg)
		}
		eng, _ := pool.Get().(*Engine)
		if eng == nil {
			eng = NewEngine()
		}
		res, err := eng.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("rounds: replication %d: %w", i, err)
		}
		out := res.Clone()
		pool.Put(eng)
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
