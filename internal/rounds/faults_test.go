package rounds

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/protocol"
)

func population(n int) []ComputerSpec {
	pop := make([]ComputerSpec, n)
	for i := range pop {
		pop[i] = ComputerSpec{True: 1 + 0.3*float64(i)}
	}
	return pop
}

// TestRetryRecoversSilentComputer: a permanently silent computer
// fails every strict attempt; the final retry tolerates dropouts and
// the round degrades to the responsive computers instead of aborting
// the simulation.
func TestRetryRecoversSilentComputer(t *testing.T) {
	pop := population(4)
	pop[1].Strategy = protocol.SilentStrategy{}
	res, err := Run(Config{
		Computers:  pop,
		Rate:       8,
		Rounds:     2,
		Seed:       3,
		MaxRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Attempts != 2 {
			t.Fatalf("round %d took %d attempts, want 2", rec.Round, rec.Attempts)
		}
		if fmt.Sprint(rec.Dropouts) != "[1]" {
			t.Fatalf("round %d dropouts = %v", rec.Round, rec.Dropouts)
		}
	}
}

// TestVerdictMappingSurvivesDropouts: with a dropout shifting the
// protocol's positional indexing, a cheater must still be flagged
// under its population index.
func TestVerdictMappingSurvivesDropouts(t *testing.T) {
	pop := population(4)
	pop[1].Strategy = protocol.SilentStrategy{}
	pop[3].Strategy = protocol.FactorStrategy{BidFactor: 1, ExecFactor: 2}
	res, err := Run(Config{
		Computers:    pop,
		Rate:         8,
		Rounds:       3,
		JobsPerRound: 4000,
		Seed:         5,
		MaxRetries:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	flags := map[int]int{}
	for _, rec := range res.Records {
		for _, idx := range rec.Flagged {
			flags[idx]++
		}
	}
	if flags[3] == 0 {
		t.Fatalf("cheater (computer 3) never flagged: %v", flags)
	}
	if flags[1] != 0 || flags[2] != 0 {
		t.Fatalf("honest or silent computers flagged: %v", flags)
	}
}

func TestFaultPlanThreadsThroughRounds(t *testing.T) {
	cfg := Config{
		Computers:  population(5),
		Rate:       10,
		Rounds:     4,
		Seed:       7,
		MaxRetries: 2,
		Faults:     faults.New(13, faults.Drop(0.08)),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lost, retried := 0, 0
	for _, rec := range res.Records {
		lost += rec.LostMessages
		if rec.Attempts > 1 {
			retried++
		}
	}
	if lost == 0 && retried == 0 {
		t.Fatal("drop plan left no trace (no losses, no retries) across 4 rounds")
	}
	// Determinism: the same config replays byte-identically.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		a, b := res.Records[i], res2.Records[i]
		if a.Attempts != b.Attempts || a.LostMessages != b.LostMessages ||
			fmt.Sprint(a.Dropouts) != fmt.Sprint(b.Dropouts) {
			t.Fatalf("round %d diverged between identical runs: %+v vs %+v", i, a, b)
		}
	}
	_ = retried
}

func TestCrashPlanExcludesComputerEveryRound(t *testing.T) {
	cfg := Config{
		Computers:  population(5),
		Rate:       10,
		Rounds:     3,
		Seed:       9,
		MaxRetries: 1,
		Faults:     faults.New(1, faults.Crash(4)),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if fmt.Sprint(rec.Dropouts) != "[4]" {
			t.Fatalf("round %d dropouts = %v, want [4]", rec.Round, rec.Dropouts)
		}
	}
}

// TestFlapPlanCyclesSuspensionAndReturn: a flapping computer (period
// 4, duty 0.5 → stalled in rounds 0,1 mod 4) is flagged and suspended
// in its stalled phases, serves cleanly in its healthy phases after
// the ban expires, and is re-suspended when the bad phase comes back —
// the suspension/return cycle the per-round FlapPhase resolution
// exists to produce.
func TestFlapPlanCyclesSuspensionAndReturn(t *testing.T) {
	plan := faults.New(1, faults.Flap(4, 0.5, 3))
	res, err := Run(Config{
		Computers:    population(4),
		Rate:         8,
		Rounds:       16,
		JobsPerRound: 4000,
		Seed:         11,
		Policy:       Policy{Strikes: 1, BanRounds: 2},
		Faults:       plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspensions[3] < 2 {
		t.Fatalf("flapping computer suspended %d times, want >= 2 (suspend, return, re-suspend)", res.Suspensions[3])
	}
	activeHealthy, activeStalled := 0, 0
	for _, rec := range res.Records {
		active := false
		for _, a := range rec.Active {
			if a == 3 {
				active = true
			}
		}
		stalledPhase := faults.FlapStalled(plan, 3, rec.Round)
		if active && stalledPhase {
			activeStalled++
		}
		if active && !stalledPhase {
			activeHealthy++
			// A healthy-phase round must not flag the flapper.
			for _, f := range rec.Flagged {
				if f == 3 {
					t.Errorf("round %d (healthy phase) flagged the flapping computer", rec.Round)
				}
			}
		}
	}
	if activeHealthy == 0 {
		t.Fatal("flapping computer never returned to serve a healthy-phase round")
	}
	// Honest computers ride through every flap cycle unsuspended.
	for i := 0; i < 3; i++ {
		if res.Suspensions[i] != 0 {
			t.Errorf("honest computer %d suspended %d times", i, res.Suspensions[i])
		}
	}
}
