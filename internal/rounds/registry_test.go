package rounds

import (
	"testing"

	"repro/internal/registry"
)

func TestComputersFromSnapshot(t *testing.T) {
	r, err := registry.New(registry.Config{Rate: 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 5, 10, 10, 2}
	ids := make([]int, 0, len(want))
	for _, v := range want {
		id, err := r.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := r.Remove(ids[3]); err != nil {
		t.Fatal(err)
	}
	want = append(want[:3], want[4:]...)
	snap := r.Seal()

	pop := ComputersFromSnapshot(nil, snap)
	if len(pop) != len(want) {
		t.Fatalf("population size %d, want %d", len(pop), len(want))
	}
	for j, c := range pop {
		if c.True != want[j] {
			t.Errorf("computer %d true = %g, want %g", j, c.True, want[j])
		}
		if c.Strategy != nil || c.JoinRound != 0 || c.LeaveRound != 0 {
			t.Errorf("computer %d not a plain truthful round-0 spec: %+v", j, c)
		}
	}

	// Buffer reuse: a spare-capacity dst keeps its backing array.
	big := make([]ComputerSpec, 0, 64)
	pop2 := ComputersFromSnapshot(big, snap)
	if &pop2[0] != &big[:1][0] {
		t.Error("dst with capacity was not reused")
	}

	// The sealed population drives the rounds engine directly.
	res, err := Run(Config{
		Computers: pop,
		Rate:      snap.Rate(),
		Rounds:    2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || len(res.Records[0].Active) != len(want) {
		t.Fatalf("round records %+v, want 2 rounds of %d active", res.Records, len(want))
	}
}
