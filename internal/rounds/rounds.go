// Package rounds runs the load balancing mechanism as a long-lived
// system: repeated protocol rounds over a population of computers
// with churn (join/leave), per-round execution and verification, and
// a reputation policy that suspends computers repeatedly caught
// executing slower than they bid. This is the operational layer a
// deployment would put around the one-shot mechanism: the paper's
// verification step becomes an enforcement signal rather than just a
// payment input.
package rounds

import (
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Policy governs how verification flags turn into suspensions.
type Policy struct {
	// Strikes is the number of flags before a computer is suspended
	// (default 2).
	Strikes int
	// BanRounds is the suspension length in rounds (default 3).
	BanRounds int
	// ZThreshold is the verification significance threshold (default 3).
	ZThreshold float64
	// ForgiveAfter resets a computer's strike count when it has gone
	// that many rounds without a flag (0 = strikes never decay).
	// Without decay a rare false positive would count against an
	// honest computer forever.
	ForgiveAfter int
}

func (p Policy) withDefaults() Policy {
	if p.Strikes <= 0 {
		p.Strikes = 2
	}
	if p.BanRounds <= 0 {
		p.BanRounds = 3
	}
	if p.ZThreshold <= 0 {
		p.ZThreshold = 3
	}
	return p
}

// ComputerSpec describes one computer's lifetime and behaviour.
type ComputerSpec struct {
	// True is the computer's private latency parameter.
	True float64
	// Strategy decides its play each round (nil = truthful).
	Strategy protocol.Strategy
	// JoinRound is the first round the computer participates in.
	JoinRound int
	// LeaveRound is the first round it is gone again; <= 0 means it
	// never leaves.
	LeaveRound int
}

// Config drives a multi-round simulation.
type Config struct {
	// Computers is the full population, present or future.
	Computers []ComputerSpec
	// Rate is the arrival rate per round; RateFor overrides it per
	// round when non-nil.
	Rate float64
	// RateFor optionally returns the arrival rate of a given round.
	RateFor func(round int) float64
	// Rounds is the number of rounds to run.
	Rounds int
	// JobsPerRound is the execution-simulation budget per round
	// (default 5000).
	JobsPerRound int
	// Seed drives all randomness.
	Seed uint64
	// Policy is the reputation policy.
	Policy Policy
	// Faults injects faults into every round's protocol execution (see
	// package faults). Node indices refer to Computers; the injector is
	// remapped onto each round's active set and re-keyed per round and
	// per retry, so the fault schedule is deterministic but never
	// repeats between attempts. Nil injects nothing.
	Faults faults.Injector
	// MaxRetries is how many times a failed round is retried with a
	// re-keyed fault schedule before the simulation gives up; the
	// final attempt tolerates dropouts, degrading the round to the
	// responsive agents instead of failing it. 0 means fail fast
	// (legacy behaviour).
	MaxRetries int
	// Obs receives metrics and trace events from every round and from
	// the retry loop; nil disables instrumentation at no cost.
	Obs *obs.Observer
}

// Record summarizes one round.
type Record struct {
	// Round is the round index.
	Round int
	// Active lists the participating computer indices.
	Active []int
	// Suspended lists computers sitting out a ban this round.
	Suspended []int
	// Latency is the realized total latency (oracle values).
	Latency float64
	// OptLatency is the optimum for the active computers' true values.
	OptLatency float64
	// Flagged lists computers whose verification failed this round.
	Flagged []int
	// TotalPayment is the mechanism's outlay this round.
	TotalPayment float64
	// Attempts is how many protocol executions this round took
	// (1 = no retries).
	Attempts int
	// Dropouts lists computers excluded from the round because their
	// bids never reached the coordinator.
	Dropouts []int
	// LostMessages counts protocol messages dropped in the accepted
	// attempt.
	LostMessages int
}

// Result is the outcome of a full simulation.
type Result struct {
	// Records holds one entry per executed round.
	Records []Record
	// Strikes is each computer's final strike count.
	Strikes []int
	// Suspensions counts how many times each computer was suspended.
	Suspensions []int
}

// Run executes the multi-round system. It is the one-shot form of
// Engine.Run: a fresh engine is created per call, so the Result is
// caller-owned. Sweeps that run many simulations should hold an
// Engine and reuse it (or use RunReplications to fan out).
func Run(cfg Config) (*Result, error) {
	return NewEngine().Run(cfg)
}
