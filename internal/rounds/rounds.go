// Package rounds runs the load balancing mechanism as a long-lived
// system: repeated protocol rounds over a population of computers
// with churn (join/leave), per-round execution and verification, and
// a reputation policy that suspends computers repeatedly caught
// executing slower than they bid. This is the operational layer a
// deployment would put around the one-shot mechanism: the paper's
// verification step becomes an enforcement signal rather than just a
// payment input.
package rounds

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Policy governs how verification flags turn into suspensions.
type Policy struct {
	// Strikes is the number of flags before a computer is suspended
	// (default 2).
	Strikes int
	// BanRounds is the suspension length in rounds (default 3).
	BanRounds int
	// ZThreshold is the verification significance threshold (default 3).
	ZThreshold float64
	// ForgiveAfter resets a computer's strike count when it has gone
	// that many rounds without a flag (0 = strikes never decay).
	// Without decay a rare false positive would count against an
	// honest computer forever.
	ForgiveAfter int
}

func (p Policy) withDefaults() Policy {
	if p.Strikes <= 0 {
		p.Strikes = 2
	}
	if p.BanRounds <= 0 {
		p.BanRounds = 3
	}
	if p.ZThreshold <= 0 {
		p.ZThreshold = 3
	}
	return p
}

// ComputerSpec describes one computer's lifetime and behaviour.
type ComputerSpec struct {
	// True is the computer's private latency parameter.
	True float64
	// Strategy decides its play each round (nil = truthful).
	Strategy protocol.Strategy
	// JoinRound is the first round the computer participates in.
	JoinRound int
	// LeaveRound is the first round it is gone again; <= 0 means it
	// never leaves.
	LeaveRound int
}

// Config drives a multi-round simulation.
type Config struct {
	// Computers is the full population, present or future.
	Computers []ComputerSpec
	// Rate is the arrival rate per round; RateFor overrides it per
	// round when non-nil.
	Rate float64
	// RateFor optionally returns the arrival rate of a given round.
	RateFor func(round int) float64
	// Rounds is the number of rounds to run.
	Rounds int
	// JobsPerRound is the execution-simulation budget per round
	// (default 5000).
	JobsPerRound int
	// Seed drives all randomness.
	Seed uint64
	// Policy is the reputation policy.
	Policy Policy
	// Faults injects faults into every round's protocol execution (see
	// package faults). Node indices refer to Computers; the injector is
	// remapped onto each round's active set and re-keyed per round and
	// per retry, so the fault schedule is deterministic but never
	// repeats between attempts. Nil injects nothing.
	Faults faults.Injector
	// MaxRetries is how many times a failed round is retried with a
	// re-keyed fault schedule before the simulation gives up; the
	// final attempt tolerates dropouts, degrading the round to the
	// responsive agents instead of failing it. 0 means fail fast
	// (legacy behaviour).
	MaxRetries int
	// Obs receives metrics and trace events from every round and from
	// the retry loop; nil disables instrumentation at no cost.
	Obs *obs.Observer
}

// Record summarizes one round.
type Record struct {
	// Round is the round index.
	Round int
	// Active lists the participating computer indices.
	Active []int
	// Suspended lists computers sitting out a ban this round.
	Suspended []int
	// Latency is the realized total latency (oracle values).
	Latency float64
	// OptLatency is the optimum for the active computers' true values.
	OptLatency float64
	// Flagged lists computers whose verification failed this round.
	Flagged []int
	// TotalPayment is the mechanism's outlay this round.
	TotalPayment float64
	// Attempts is how many protocol executions this round took
	// (1 = no retries).
	Attempts int
	// Dropouts lists computers excluded from the round because their
	// bids never reached the coordinator.
	Dropouts []int
	// LostMessages counts protocol messages dropped in the accepted
	// attempt.
	LostMessages int
}

// Result is the outcome of a full simulation.
type Result struct {
	// Records holds one entry per executed round.
	Records []Record
	// Strikes is each computer's final strike count.
	Strikes []int
	// Suspensions counts how many times each computer was suspended.
	Suspensions []int
}

// Run executes the multi-round system.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.Computers)
	if n < 2 {
		return nil, errors.New("rounds: need at least two computers")
	}
	if cfg.Rounds <= 0 {
		return nil, errors.New("rounds: non-positive round count")
	}
	if cfg.Rate <= 0 && cfg.RateFor == nil {
		return nil, errors.New("rounds: no arrival rate configured")
	}
	for i, c := range cfg.Computers {
		if c.True <= 0 {
			return nil, fmt.Errorf("rounds: computer %d has invalid true value %g", i, c.True)
		}
		if c.JoinRound < 0 {
			return nil, fmt.Errorf("rounds: computer %d has negative join round", i)
		}
	}
	pol := cfg.Policy.withDefaults()
	jobs := cfg.JobsPerRound
	if jobs <= 0 {
		jobs = 5000
	}

	met := cfg.Obs.SuperviseMetrics()
	res := &Result{
		Strikes:     make([]int, n),
		Suspensions: make([]int, n),
	}
	bannedUntil := make([]int, n) // round index at which the ban ends
	lastFlag := make([]int, n)    // round of the most recent flag
	for i := range lastFlag {
		lastFlag[i] = -1
	}

	for round := 0; round < cfg.Rounds; round++ {
		rate := cfg.Rate
		if cfg.RateFor != nil {
			rate = cfg.RateFor(round)
		}
		if rate <= 0 {
			return nil, fmt.Errorf("rounds: round %d has invalid rate %g", round, rate)
		}
		rec := Record{Round: round}
		var trues []float64
		var strategies []protocol.Strategy
		for i, c := range cfg.Computers {
			present := round >= c.JoinRound && (c.LeaveRound <= 0 || round < c.LeaveRound)
			if !present {
				continue
			}
			if round < bannedUntil[i] {
				rec.Suspended = append(rec.Suspended, i)
				continue
			}
			rec.Active = append(rec.Active, i)
			trues = append(trues, c.True)
			strategies = append(strategies, c.Strategy)
		}
		if len(rec.Active) < 2 {
			return nil, fmt.Errorf("rounds: round %d has only %d active computers", round, len(rec.Active))
		}
		met.Excluded("suspended", len(rec.Suspended))
		base := protocol.Config{
			Trues:      trues,
			Strategies: strategies,
			Rate:       rate,
			Jobs:       jobs,
			Seed:       cfg.Seed + uint64(round)*0x9e3779b9,
			ZThreshold: pol.ZThreshold,
			Obs:        cfg.Obs,
		}
		var pres *protocol.Result
		var err error
		for attempt := 0; ; attempt++ {
			pcfg := base
			if attempt > 0 {
				pcfg.Seed = base.Seed + uint64(attempt)*0x85ebca6b
			}
			if cfg.Faults != nil {
				// Re-key the schedule per (round, attempt) — attempt 0
				// of round 0 keeps the plan's own seed — and remap the
				// population-level node ids onto this round's active
				// set.
				salt := uint64(round)<<8 | uint64(attempt&0xff)
				pcfg.Faults = faults.Remap(faults.Reseed(cfg.Faults, salt), rec.Active)
			}
			// Retries chase a fully responsive round; the final
			// attempt degrades to whoever answers.
			pcfg.AllowDropouts = cfg.MaxRetries > 0 && attempt == cfg.MaxRetries
			pres, err = protocol.Run(pcfg)
			rec.Attempts = attempt + 1
			if err == nil {
				met.AttemptDone("ok")
				break
			}
			met.AttemptDone("protocol-error")
			cfg.Obs.Emit(obs.Event{
				Layer: "rounds", Kind: "attempt-failed", Node: round,
				Detail: fmt.Sprintf("#%d: %v", attempt+1, err),
			})
			if attempt >= cfg.MaxRetries {
				return nil, fmt.Errorf("rounds: round %d: %w", round, err)
			}
			met.RetryScheduled(0)
		}
		rec.LostMessages = pres.Lost
		met.AcceptedRound(len(pres.Active) != len(rec.Active))
		activeTrues := trues
		if len(pres.Active) != len(rec.Active) {
			// Some computers dropped out: record them and compare the
			// realized latency against the optimum for the agents that
			// actually served.
			responsive := make(map[int]bool, len(pres.Active))
			activeTrues = nil
			for _, j := range pres.Active {
				responsive[j] = true
				activeTrues = append(activeTrues, trues[j])
			}
			for j := range rec.Active {
				if !responsive[j] {
					rec.Dropouts = append(rec.Dropouts, rec.Active[j])
				}
			}
			met.Excluded("dropout", len(rec.Dropouts))
		}
		rec.Latency = pres.Oracle.RealLatency
		rec.TotalPayment = pres.Outcome.TotalPayment()
		model := mech.LinearModel{}
		opt, err := model.OptimalTotal(activeTrues, rate)
		if err != nil {
			return nil, err
		}
		rec.OptLatency = opt
		for pos, v := range pres.Verdicts {
			// Flagged covers both deviation and invalid verdicts: a
			// measurement the coordinator cannot verify counts as a
			// strike, not as a pass.
			if !v.Flagged() {
				continue
			}
			// pres positions index the responsive subset; pres.Active
			// maps them to this round's roster, rec.Active to the
			// population.
			idx := rec.Active[pres.Active[pos]]
			rec.Flagged = append(rec.Flagged, idx)
			if pol.ForgiveAfter > 0 && lastFlag[idx] >= 0 &&
				round-lastFlag[idx] > pol.ForgiveAfter {
				res.Strikes[idx] = 0
			}
			lastFlag[idx] = round
			res.Strikes[idx]++
			if res.Strikes[idx] >= pol.Strikes {
				bannedUntil[idx] = round + 1 + pol.BanRounds
				res.Suspensions[idx]++
				res.Strikes[idx] = 0
				cfg.Obs.Emit(obs.Event{
					Layer: "rounds", Kind: "suspend", Node: idx,
					Detail: fmt.Sprintf("round %d, %d rounds", round, pol.BanRounds),
				})
			}
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}
