package rounds

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestReplicationsDeterministicAcrossWorkers is the harness's core
// guarantee: the same replication spec produces byte-identical records
// at any fan-out width, including under an injected fault plan and
// churn.
func TestReplicationsDeterministicAcrossWorkers(t *testing.T) {
	base := churnConfig()
	base.Faults = faults.New(11, faults.Drop(0.04), faults.Stall(400, 8, 1))
	base.MaxRetries = 2
	spec := Replications{Base: base, Count: 8}

	marshal := func(workers int) []byte {
		s := spec
		s.Workers = workers
		results, err := RunReplications(s)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := marshal(1)
	wide := marshal(runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, wide) {
		t.Fatalf("serial and parallel replication results differ:\nserial: %.200s\n  wide: %.200s",
			serial, wide)
	}
	// And against one-shot Runs with the derived seeds: the pooled
	// engines must not leak state between the replications they serve.
	var fresh []*Result
	for i := 0; i < spec.Count; i++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)*0x9e3779b97f4a7c15
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("fresh replication %d: %v", i, err)
		}
		fresh = append(fresh, res)
	}
	b, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, b) {
		t.Fatal("replication harness results differ from fresh one-shot runs")
	}
}

func TestReplicationsSeedsAndVary(t *testing.T) {
	base := Config{
		Computers: []ComputerSpec{{True: 1}, {True: 2}, {True: 5}},
		Rate:      2, Rounds: 3, JobsPerRound: 400, Seed: 5,
	}
	results, err := RunReplications(Replications{
		Base:  base,
		Seeds: []uint64{5, 5, 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Identical seeds agree; a different seed draws different latency
	// observations and therefore different estimate-based payments.
	if results[0].Records[0].TotalPayment != results[1].Records[0].TotalPayment {
		t.Error("identical seeds produced different results")
	}
	if results[0].Records[0].TotalPayment == results[2].Records[0].TotalPayment {
		t.Error("distinct seeds produced identical payments")
	}

	// Vary reshapes one slot's scenario without touching the others.
	results, err = RunReplications(Replications{
		Base:  base,
		Count: 2,
		Vary: func(rep int, cfg *Config) {
			if rep == 1 {
				cfg.Rounds = 7
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Records) != 3 || len(results[1].Records) != 7 {
		t.Errorf("vary: got %d/%d rounds, want 3/7",
			len(results[0].Records), len(results[1].Records))
	}
}

func TestReplicationsPropagatesError(t *testing.T) {
	base := Config{
		Computers: []ComputerSpec{{True: 1}, {True: 2}},
		Rate:      2, Rounds: 2, JobsPerRound: 300, Seed: 1,
	}
	_, err := RunReplications(Replications{
		Base:  base,
		Count: 4,
		Vary: func(rep int, cfg *Config) {
			if rep >= 1 {
				cfg.Rounds = 0 // invalid
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "replication 1") {
		t.Fatalf("err = %v, want replication 1 failure", err)
	}
	if _, err := RunReplications(Replications{Base: base}); err == nil {
		t.Fatal("zero replications should error")
	}
}
