package rounds

import (
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/protocol"
)

// churnConfig is a scenario exercising every membership transition:
// joins, leaves, suspensions (a persistent deviator), ban expiry and
// a leave during a ban window.
func churnConfig() Config {
	return Config{
		Computers: []ComputerSpec{
			{True: 1},
			{True: 2, Strategy: protocol.FactorStrategy{BidFactor: 1, ExecFactor: 2.5}},
			{True: 2},
			{True: 5, JoinRound: 4},
			{True: 5, JoinRound: 2, LeaveRound: 9},
			{True: 10},
			{True: 10, JoinRound: 6, LeaveRound: 12},
		},
		Rate:         4,
		Rounds:       14,
		JobsPerRound: 800,
		Seed:         7,
		Policy:       Policy{Strikes: 2, BanRounds: 3, ForgiveAfter: 6},
	}
}

// TestEngineMatchesRunBaseline locks the engine to the from-scratch
// semantics: one Engine reused across heterogeneous simulations must
// reproduce a fresh Run record for record.
func TestEngineMatchesRunBaseline(t *testing.T) {
	faulty := churnConfig()
	faulty.Faults = faults.New(3, faults.Drop(0.03))
	faulty.MaxRetries = 2
	small := Config{
		Computers: []ComputerSpec{{True: 1}, {True: 3}, {True: 9}},
		Rate:      2, Rounds: 4, JobsPerRound: 500, Seed: 99,
	}
	eng := NewEngine()
	for ci, cfg := range []Config{churnConfig(), faulty, small} {
		got, err := eng.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: engine: %v", ci, err)
		}
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: baseline: %v", ci, err)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("config %d: %d records, want %d", ci, len(got.Records), len(want.Records))
		}
		for r := range want.Records {
			g, w := got.Records[r], want.Records[r]
			if !equalInts(g.Active, w.Active) || !equalInts(g.Suspended, w.Suspended) ||
				!equalInts(g.Flagged, w.Flagged) || !equalInts(g.Dropouts, w.Dropouts) {
				t.Errorf("config %d round %d: rosters differ:\n got %+v\nwant %+v", ci, r, g, w)
			}
			if g.Latency != w.Latency || g.OptLatency != w.OptLatency ||
				g.TotalPayment != w.TotalPayment || g.Attempts != w.Attempts ||
				g.LostMessages != w.LostMessages {
				t.Errorf("config %d round %d: values differ:\n got %+v\nwant %+v", ci, r, g, w)
			}
		}
		for i := range want.Strikes {
			if got.Strikes[i] != want.Strikes[i] || got.Suspensions[i] != want.Suspensions[i] {
				t.Errorf("config %d: computer %d strikes/suspensions %d/%d, want %d/%d",
					ci, i, got.Strikes[i], got.Suspensions[i], want.Strikes[i], want.Suspensions[i])
			}
		}
	}
}

// TestStreamOptimaMatchScratch is the drift guard for the incremental
// churn state: every round's stream-derived optimum must agree with a
// from-scratch PR optimum over the computers that actually served, to
// within float roundoff, across a long churn-heavy run.
func TestStreamOptimaMatchScratch(t *testing.T) {
	cfg := churnConfig()
	cfg.Rounds = 40
	cfg.Faults = faults.New(5, faults.Drop(0.05))
	cfg.MaxRetries = 1
	res, err := NewEngine().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != cfg.Rounds {
		t.Fatalf("got %d records", len(res.Records))
	}
	sawChurn := false
	for _, rec := range res.Records {
		if len(rec.Suspended) > 0 || len(rec.Dropouts) > 0 {
			sawChurn = true
		}
		dropped := make(map[int]bool, len(rec.Dropouts))
		for _, i := range rec.Dropouts {
			dropped[i] = true
		}
		var ts []float64
		for _, i := range rec.Active {
			if !dropped[i] {
				ts = append(ts, cfg.Computers[i].True)
			}
		}
		want, err := alloc.OptimalLatencyLinear(ts, cfg.Rate)
		if err != nil {
			t.Fatalf("round %d: %v", rec.Round, err)
		}
		if diff := math.Abs(rec.OptLatency - want); diff > 1e-9*want {
			t.Errorf("round %d: OptLatency = %v, scratch = %v (drift %g)",
				rec.Round, rec.OptLatency, want, diff)
		}
	}
	if !sawChurn {
		t.Error("scenario exercised no suspensions or dropouts; drift guard is vacuous")
	}
}

// TestSteadyStateRoundsDoNotAllocate pins the scratch-reuse tentpole:
// after warm-up, a full steady-state simulation through a reused
// engine must do (near-)zero heap allocation per round.
func TestSteadyStateRoundsDoNotAllocate(t *testing.T) {
	cfg := Config{
		Computers: []ComputerSpec{
			{True: 1}, {True: 1}, {True: 2}, {True: 2}, {True: 2},
			{True: 5}, {True: 5}, {True: 10}, {True: 10}, {True: 10},
		},
		Rate:         5,
		Rounds:       20,
		JobsPerRound: 300,
		Seed:         1,
	}
	eng := NewEngine()
	if _, err := eng.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := eng.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	perRound := allocs / float64(cfg.Rounds)
	if perRound > 1 {
		t.Errorf("steady-state simulation allocated %.1f times per Run (%.2f per round), want < 1 per round",
			allocs, perRound)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
