package rounds

import (
	"testing"

	"repro/internal/protocol"
)

// benchSweepConfig is the throughput benchmark scenario: a
// 100-computer population with churn and a deviator, 200 rounds per
// simulation. JobsPerRound is kept modest so the benchmark exercises
// the round engine rather than just the job simulator.
func benchSweepConfig() Config {
	computers := make([]ComputerSpec, 100)
	trues := []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 10}
	for i := range computers {
		computers[i] = ComputerSpec{True: trues[i%len(trues)]}
	}
	// One persistent deviator and a little churn keep the suspension
	// and membership machinery on the measured path.
	computers[3].Strategy = protocol.FactorStrategy{BidFactor: 1, ExecFactor: 2}
	computers[50].JoinRound = 40
	computers[51].LeaveRound = 160
	return Config{
		Computers:    computers,
		Rate:         20,
		Rounds:       200,
		JobsPerRound: 150,
		Seed:         1,
		Policy:       Policy{Strikes: 2, BanRounds: 5, ForgiveAfter: 20},
	}
}

const benchReplications = 32

// BenchmarkRoundsFresh is the before-this-engine shape: a fresh
// engine (and all its scratch) per replication, run serially.
func BenchmarkRoundsFresh(b *testing.B) {
	cfg := benchSweepConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < benchReplications; rep++ {
			c := cfg
			c.Seed = cfg.Seed + uint64(rep)*0x9e3779b97f4a7c15
			if _, err := Run(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRoundsSerial runs the same sweep through the replication
// harness at width 1: one pooled engine, scratch reused end to end.
func BenchmarkRoundsSerial(b *testing.B) {
	spec := Replications{Base: benchSweepConfig(), Count: benchReplications, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunReplications(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundsParallel fans the sweep over GOMAXPROCS workers,
// each with its own pooled engine.
func BenchmarkRoundsParallel(b *testing.B) {
	spec := Replications{Base: benchSweepConfig(), Count: benchReplications}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunReplications(spec); err != nil {
			b.Fatal(err)
		}
	}
}
