package rounds

import (
	"testing"

	"repro/internal/dispatch"
	"repro/internal/registry"
)

// applied runs one Apply and fails the test on error.
func applied(t *testing.T, s *RegistrySync, specs []ComputerSpec, rec *Record) *registry.Snapshot {
	t.Helper()
	snap, err := s.Apply(specs, rec)
	if err != nil {
		t.Fatalf("Apply(round %d): %v", rec.Round, err)
	}
	return snap
}

// wantActive checks that a sealed snapshot holds exactly the active
// computers' true values, keyed through the sync's id map.
func wantActive(t *testing.T, s *RegistrySync, snap *registry.Snapshot, specs []ComputerSpec, active []int) {
	t.Helper()
	if snap.N() != len(active) {
		t.Fatalf("snapshot has %d instances, want %d", snap.N(), len(active))
	}
	for _, idx := range active {
		id := s.ID(idx)
		if id < 0 {
			t.Fatalf("active computer %d has no registry id", idx)
		}
		v, ok := snap.Value(id)
		if !ok {
			t.Fatalf("active computer %d (id %d) missing from snapshot", idx, id)
		}
		if v != specs[idx].True {
			t.Fatalf("computer %d sealed at %v, want %v", idx, v, specs[idx].True)
		}
	}
}

// TestRegistrySyncChurn replays hand-built membership records —
// including a leave-and-rejoin — and checks the sealed epochs track
// the active set exactly, with rejoiners admitted under fresh ids.
func TestRegistrySyncChurn(t *testing.T) {
	specs := []ComputerSpec{{True: 1}, {True: 2}, {True: 4}}
	reg, err := registry.New(registry.Config{Rate: 10})
	if err != nil {
		t.Fatal(err)
	}
	sync := NewRegistrySync(reg, len(specs))

	snap := applied(t, sync, specs, &Record{Round: 0, Active: []int{0, 1, 2}})
	wantActive(t, sync, snap, specs, []int{0, 1, 2})
	firstID := sync.ID(1)

	// Computer 1 drops out: its bid must leave the sealed epoch.
	snap = applied(t, sync, specs, &Record{Round: 1, Active: []int{0, 2}})
	wantActive(t, sync, snap, specs, []int{0, 2})
	if sync.ID(1) != -1 {
		t.Fatalf("departed computer still mapped to id %d", sync.ID(1))
	}

	// Rejoin: same computer, fresh registry id.
	snap = applied(t, sync, specs, &Record{Round: 2, Active: []int{0, 1, 2}})
	wantActive(t, sync, snap, specs, []int{0, 1, 2})
	if sync.ID(1) == firstID {
		t.Fatalf("rejoining computer recycled id %d", firstID)
	}

	// An epoch with nobody active still seals (dispatch rebuilds are
	// expected to fail and keep their previous table).
	snap = applied(t, sync, specs, &Record{Round: 3, Active: nil})
	if snap.N() != 0 {
		t.Fatalf("empty round sealed %d instances", snap.N())
	}
}

// TestRegistrySyncRounds drives a real multi-round simulation with
// join/leave churn, mirrors every record into a registry, and rebuilds
// an alias dispatcher from each sealed epoch — the full rounds→epoch→
// per-job-routing bridge.
func TestRegistrySyncRounds(t *testing.T) {
	specs := []ComputerSpec{
		{True: 1},
		{True: 2},
		{True: 4, JoinRound: 2},
		{True: 8, LeaveRound: 4},
	}
	res, err := Run(Config{
		Computers: specs,
		Rate:      12,
		Rounds:    6,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg, err := registry.New(registry.Config{Rate: 12})
	if err != nil {
		t.Fatal(err)
	}
	sync := NewRegistrySync(reg, len(specs))
	d, err := dispatch.New("alias", 42)
	if err != nil {
		t.Fatal(err)
	}

	var lastEpoch uint64
	for i := range res.Records {
		rec := &res.Records[i]
		snap := applied(t, sync, specs, rec)
		wantActive(t, sync, snap, specs, rec.Active)
		if snap.Epoch() <= lastEpoch {
			t.Fatalf("round %d sealed epoch %d, not after %d", rec.Round, snap.Epoch(), lastEpoch)
		}
		lastEpoch = snap.Epoch()

		if err := d.Rebuild(snap); err != nil {
			t.Fatalf("round %d rebuild: %v", rec.Round, err)
		}
		if d.N() != len(rec.Active) {
			t.Fatalf("round %d dispatcher sees %d instances, want %d", rec.Round, d.N(), len(rec.Active))
		}
		for j := 0; j < 64; j++ {
			idx := d.Pick(dispatch.Job{ID: int64(j), Key: uint64(rec.Round)})
			if idx < 0 || idx >= len(rec.Active) {
				t.Fatalf("round %d pick %d out of range [0, %d)", rec.Round, idx, len(rec.Active))
			}
		}
	}

	// The churn actually happened: round 0 ran without computer 2,
	// the last round without computer 3.
	if got := len(res.Records[0].Active); got != 3 {
		t.Fatalf("round 0 active %d computers, want 3", got)
	}
	if got := len(res.Records[len(res.Records)-1].Active); got != 3 {
		t.Fatalf("final round active %d computers, want 3", got)
	}
}
