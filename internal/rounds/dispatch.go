package rounds

import (
	"repro/internal/registry"
)

// RegistrySync mirrors a multi-round simulation's population into a
// concurrent bid registry, sealing one epoch per round — the reverse
// bridge of ComputersFromSnapshot. It is what connects the rounds
// engine to the per-job dispatch layer: each round's Record describes
// who is serving (joins applied, leavers gone, suspended computers
// sitting out a ban), Apply replays that churn into the registry and
// seals, and the returned snapshot is ready for Dispatcher.Rebuild —
// so per-job routing follows round-level membership with one epoch of
// lag, exactly the alias-table rebuild protocol.
//
// Ids are registry-monotone: a computer that leaves and later rejoins
// is re-admitted under a fresh id (the registry never recycles ids),
// which keeps sealed epochs byte-identical to a serial replay of the
// same membership events.
type RegistrySync struct {
	reg  *registry.Registry
	ids  []int  // registry id per computer index, -1 while absent
	mark []bool // scratch: active set of the round being applied
}

// NewRegistrySync returns a sync for a population of the given size
// (computer indices 0..population-1, matching Config.Computers).
func NewRegistrySync(reg *registry.Registry, population int) *RegistrySync {
	s := &RegistrySync{
		reg:  reg,
		ids:  make([]int, population),
		mark: make([]bool, population),
	}
	for i := range s.ids {
		s.ids[i] = -1
	}
	return s
}

// ID returns the registry id currently backing a computer index, or
// -1 while the computer is absent from the registry.
func (s *RegistrySync) ID(idx int) int { return s.ids[idx] }

// Apply replays one round's membership into the registry — admitting
// newly active computers at their true value, removing computers that
// left or were suspended — and seals a fresh epoch. The sealed
// snapshot reflects exactly the round's active set.
func (s *RegistrySync) Apply(specs []ComputerSpec, rec *Record) (*registry.Snapshot, error) {
	for _, idx := range rec.Active {
		s.mark[idx] = true
	}
	for idx, id := range s.ids {
		if id >= 0 && !s.mark[idx] {
			if err := s.reg.Remove(id); err != nil {
				return nil, err
			}
			s.ids[idx] = -1
		}
	}
	for _, idx := range rec.Active {
		s.mark[idx] = false
		if s.ids[idx] >= 0 {
			continue
		}
		id, err := s.reg.Add(specs[idx].True)
		if err != nil {
			return nil, err
		}
		s.ids[idx] = id
	}
	return s.reg.Seal(), nil
}
