package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/numeric"
)

func TestSplitPoissonBudget(t *testing.T) {
	srcs := SplitPoisson(100, 10_007, 8, nil, numeric.NewRand(1))
	if len(srcs) != 8 {
		t.Fatalf("got %d parts, want 8", len(srcs))
	}
	total := 0
	for i, src := range srcs {
		k := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			k++
		}
		// 10007 = 8·1250 + 7: the first seven parts carry the remainder.
		want := 1250
		if i < 7 {
			want = 1251
		}
		if k != want {
			t.Fatalf("part %d emitted %d jobs, want %d", i, k, want)
		}
		total += k
	}
	if total != 10_007 {
		t.Fatalf("parts emitted %d jobs total, want 10007", total)
	}
}

// TestSplitPoissonSuperposition merges the substreams by arrival time
// and checks the combined process looks Poisson(rate): mean
// interarrival 1/rate and interarrival CV near 1.
func TestSplitPoissonSuperposition(t *testing.T) {
	const rate, n = 50.0, 60_000
	srcs := SplitPoisson(rate, n, 6, nil, numeric.NewRand(42))
	arrivals := make([]float64, 0, n)
	for _, src := range srcs {
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			arrivals = append(arrivals, j.Arrival)
		}
	}
	sort.Float64s(arrivals)

	var mean, m2 float64
	count := 0.0
	last := 0.0
	for _, a := range arrivals {
		d := a - last
		last = a
		count++
		delta := d - mean
		mean += delta / count
		m2 += delta * (d - mean)
	}
	if got, want := mean, 1/rate; math.Abs(got-want)/want > 0.02 {
		t.Fatalf("merged mean interarrival = %v, want ~%v", got, want)
	}
	cv := math.Sqrt(m2/count) / mean
	if math.Abs(cv-1) > 0.03 {
		t.Fatalf("merged interarrival CV = %v, want ~1 (Poisson)", cv)
	}
}

func TestSplitPoissonDeterministic(t *testing.T) {
	drain := func() []float64 {
		srcs := SplitPoisson(10, 1000, 4, ExpSize{}, numeric.NewRand(7))
		out := make([]float64, 0, 2000)
		for _, src := range srcs {
			for {
				j, ok := src.Next()
				if !ok {
					break
				}
				out = append(out, j.Arrival, j.Size)
			}
		}
		return out
	}
	a, b := drain(), drain()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSplitPoissonPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"rate":     func() { SplitPoisson(0, 10, 2, nil, nil) },
		"rate-nan": func() { SplitPoisson(math.NaN(), 10, 2, nil, nil) },
		"rate-inf": func() { SplitPoisson(math.Inf(1), 10, 2, nil, nil) },
		"parts":    func() { SplitPoisson(1, 10, 0, nil, nil) },
		"n":        func() { SplitPoisson(1, 1, 2, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
