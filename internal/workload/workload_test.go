package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/numeric"
	"repro/internal/stats"
)

func TestPoissonRate(t *testing.T) {
	const rate, n = 20.0, 50000
	src := NewPoisson(rate, n, nil, numeric.NewRand(42))
	var last float64
	count := 0
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if j.Arrival < last {
			t.Fatal("arrivals not monotone")
		}
		last = j.Arrival
		count++
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	empirical := float64(n) / last
	if math.Abs(empirical-rate)/rate > 0.02 {
		t.Errorf("empirical rate %v, want ~%v", empirical, rate)
	}
}

func TestPoissonInterarrivalCV(t *testing.T) {
	// Exponential interarrivals have coefficient of variation 1.
	src := NewPoisson(5, 50000, nil, numeric.NewRand(7))
	var s stats.Summary
	var prev float64
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		s.Add(j.Arrival - prev)
		prev = j.Arrival
	}
	cv := s.Std() / s.Mean()
	if math.Abs(cv-1) > 0.03 {
		t.Errorf("interarrival CV = %v, want ~1", cv)
	}
}

func TestPoissonDeterministicWithSeed(t *testing.T) {
	a := Record(NewPoisson(3, 100, ExpSize{}, numeric.NewRand(9)), 0)
	b := Record(NewPoisson(3, 100, ExpSize{}, numeric.NewRand(9)), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at job %d", i)
		}
	}
}

func TestSizeDistributionsHaveUnitMean(t *testing.T) {
	dists := []SizeDist{
		ConstSize{}, ExpSize{},
		LognormalSize{Sigma: 0.5}, LognormalSize{Sigma: 1.5},
		ParetoSize{Alpha: 2.5}, ParetoSize{Alpha: 3},
	}
	for _, d := range dists {
		rng := numeric.NewRand(11)
		var s stats.Summary
		for i := 0; i < 300000; i++ {
			v := d.Sample(rng)
			if v <= 0 {
				t.Fatalf("%v produced non-positive size %v", d, v)
			}
			s.Add(v)
		}
		if math.Abs(s.Mean()-1) > 0.05 {
			t.Errorf("%v mean = %v, want ~1", d, s.Mean())
		}
	}
}

func TestParetoHeavierTailThanExp(t *testing.T) {
	rng := numeric.NewRand(13)
	exceedP, exceedE := 0, 0
	p := ParetoSize{Alpha: 2.1}
	e := ExpSize{}
	const n = 200000
	for i := 0; i < n; i++ {
		if p.Sample(rng) > 10 {
			exceedP++
		}
		if e.Sample(rng) > 10 {
			exceedE++
		}
	}
	if exceedP <= exceedE {
		t.Errorf("Pareto tail (%d) should exceed exponential tail (%d)", exceedP, exceedE)
	}
}

func TestDeterministicSpacing(t *testing.T) {
	src := NewDeterministic(4, 8)
	jobs := Record(src, 0)
	if len(jobs) != 8 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	for i, j := range jobs {
		want := float64(i+1) / 4
		if math.Abs(j.Arrival-want) > 1e-12 {
			t.Errorf("job %d arrival %v, want %v", i, j.Arrival, want)
		}
		if j.Size != 1 {
			t.Errorf("job %d size %v, want 1", i, j.Size)
		}
	}
}

func TestRecordLimit(t *testing.T) {
	src := NewDeterministic(1, 100)
	got := Record(src, 10)
	if len(got) != 10 {
		t.Errorf("Record(…, 10) returned %d jobs", len(got))
	}
}

func TestTraceReplay(t *testing.T) {
	orig := Record(NewPoisson(2, 50, ExpSize{}, numeric.NewRand(3)), 0)
	replayed := Record(orig.Replay(), 0)
	if len(replayed) != len(orig) {
		t.Fatalf("lengths differ: %d vs %d", len(replayed), len(orig))
	}
	for i := range orig {
		if orig[i] != replayed[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	orig := Record(NewPoisson(2, 100, LognormalSize{Sigma: 1}, numeric.NewRand(5)), 0)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(orig) {
		t.Fatalf("lengths differ: %d vs %d", len(loaded), len(orig))
	}
	for i := range orig {
		if orig[i] != loaded[i] {
			t.Fatalf("job %d differs after round trip: %+v vs %+v", i, orig[i], loaded[i])
		}
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("")); err == nil {
		t.Error("expected error for empty file")
	}
	if _, err := LoadTrace(strings.NewReader("id,arrival,size\nx,1,1\n")); err == nil {
		t.Error("expected error for bad id")
	}
	if _, err := LoadTrace(strings.NewReader("id,arrival,size\n1,x,1\n")); err == nil {
		t.Error("expected error for bad arrival")
	}
	if _, err := LoadTrace(strings.NewReader("id,arrival,size\n1,1,x\n")); err == nil {
		t.Error("expected error for bad size")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPoisson(0, 1, nil, nil) },
		func() { NewPoisson(1, 0, nil, nil) },
		func() { NewPoisson(math.Inf(1), 1, nil, nil) },
		func() { NewPoisson(math.NaN(), 1, nil, nil) },
		func() { new(Poisson).Reset(math.Inf(1), 1, nil, nil) },
		func() { NewDeterministic(-1, 1) },
		func() { NewDeterministic(1, 0) },
		func() { NewDeterministic(math.Inf(1), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
