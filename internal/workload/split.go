package workload

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// SplitPoisson decomposes a Poisson arrival stream into parts
// independent substreams whose superposition is again Poisson(rate):
// by the thinning/superposition property, `parts` independent
// Poisson(rate/parts) processes merge into one Poisson(rate) process.
// The total job budget n is split as evenly as possible, with the
// remainder going to the lowest-index parts, and each substream draws
// from its own generator split off rng — so concurrent workers can
// each drain one part with no shared state and the whole ensemble is
// reproducible from the parent seed.
func SplitPoisson(rate float64, n, parts int, dist SizeDist, rng *numeric.Rand) []*Poisson {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("workload: invalid rate %v", rate))
	}
	if parts <= 0 {
		panic("workload: non-positive part count")
	}
	if n < parts {
		panic(fmt.Sprintf("workload: cannot split %d jobs into %d parts", n, parts))
	}
	if rng == nil {
		rng = numeric.NewRand(1)
	}
	per, rem := n/parts, n%parts
	srcs := make([]*Poisson, parts)
	for i := range srcs {
		k := per
		if i < rem {
			k++
		}
		srcs[i] = NewPoisson(rate/float64(parts), k, dist, rng.Split())
	}
	return srcs
}
