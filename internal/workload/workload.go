// Package workload generates job arrival streams for the cluster
// simulator: Poisson and deterministic arrival processes, pluggable
// job-size distributions (constant, exponential, lognormal, Pareto —
// all normalized to mean 1), and CSV trace record/replay so that
// experiments can be rerun on identical inputs.
package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/numeric"
)

// Job is one unit of work arriving at the distributed system.
type Job struct {
	// ID is a sequence number unique within a stream.
	ID int64
	// Arrival is the absolute arrival time in seconds.
	Arrival float64
	// Size is the job's service demand relative to a mean job
	// (dimensionless, mean 1 across a stream).
	Size float64
}

// Source is an ordered stream of jobs with nondecreasing arrival
// times.
type Source interface {
	// Next returns the next job; ok is false when the stream is
	// exhausted.
	Next() (job Job, ok bool)
}

// SizeDist samples job sizes. Implementations are normalized so the
// mean size is 1.
type SizeDist interface {
	// Sample draws one job size.
	Sample(rng *numeric.Rand) float64
	// String names the distribution.
	String() string
}

// ConstSize is the degenerate distribution: every job has size 1.
type ConstSize struct{}

// Sample implements SizeDist.
func (ConstSize) Sample(*numeric.Rand) float64 { return 1 }

func (ConstSize) String() string { return "const" }

// ExpSize is the exponential distribution with mean 1 (M/M/1 service).
type ExpSize struct{}

// Sample implements SizeDist.
func (ExpSize) Sample(rng *numeric.Rand) float64 { return rng.ExpFloat64() }

func (ExpSize) String() string { return "exp" }

// LognormalSize is a lognormal distribution with unit mean and shape
// Sigma (the sigma of the underlying normal). Larger Sigma means a
// heavier tail.
type LognormalSize struct {
	Sigma float64
}

// Sample implements SizeDist.
func (d LognormalSize) Sample(rng *numeric.Rand) float64 {
	// mean = exp(mu + sigma^2/2) = 1  =>  mu = -sigma^2/2.
	mu := -d.Sigma * d.Sigma / 2
	return math.Exp(mu + d.Sigma*rng.NormFloat64())
}

func (d LognormalSize) String() string { return fmt.Sprintf("lognormal(sigma=%g)", d.Sigma) }

// ParetoSize is a Pareto distribution with unit mean and tail index
// Alpha > 1 (smaller Alpha = heavier tail; Alpha <= 2 has infinite
// variance).
type ParetoSize struct {
	Alpha float64
}

// Sample implements SizeDist.
func (d ParetoSize) Sample(rng *numeric.Rand) float64 {
	// mean = alpha*xm/(alpha-1) = 1 => xm = (alpha-1)/alpha.
	xm := (d.Alpha - 1) / d.Alpha
	u := 1 - rng.Float64() // (0, 1]
	return xm / math.Pow(u, 1/d.Alpha)
}

func (d ParetoSize) String() string { return fmt.Sprintf("pareto(alpha=%g)", d.Alpha) }

// Poisson is a Poisson arrival process with the given rate, emitting a
// fixed number of jobs with sizes drawn from Sizes.
type Poisson struct {
	rate  float64
	n     int64
	sizes SizeDist
	rng   *numeric.Rand

	next int64
	now  float64
}

// NewPoisson returns a Poisson source emitting n jobs at the given
// arrival rate (jobs per second) with sizes from dist (ConstSize if
// nil). It panics on a non-positive or non-finite rate or a
// non-positive n.
func NewPoisson(rate float64, n int, dist SizeDist, rng *numeric.Rand) *Poisson {
	p := &Poisson{}
	p.Reset(rate, n, dist, rng)
	return p
}

// Reset reinitializes p in place with the semantics of NewPoisson,
// letting a long-lived engine reuse one source across rounds instead
// of allocating a fresh one per round. The same validation applies.
func (p *Poisson) Reset(rate float64, n int, dist SizeDist, rng *numeric.Rand) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("workload: invalid rate %v", rate))
	}
	if n <= 0 {
		panic("workload: non-positive job count")
	}
	if dist == nil {
		dist = ConstSize{}
	}
	if rng == nil {
		rng = numeric.NewRand(1)
	}
	*p = Poisson{rate: rate, n: int64(n), sizes: dist, rng: rng}
}

// Next implements Source.
func (p *Poisson) Next() (Job, bool) {
	if p.next >= p.n {
		return Job{}, false
	}
	p.now += p.rng.ExpFloat64() / p.rate
	j := Job{ID: p.next, Arrival: p.now, Size: p.sizes.Sample(p.rng)}
	p.next++
	return j, true
}

// Deterministic emits n jobs of size 1 at exactly even spacing 1/rate.
type Deterministic struct {
	rate float64
	n    int64
	next int64
}

// NewDeterministic returns a deterministic arrival source.
func NewDeterministic(rate float64, n int) *Deterministic {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("workload: invalid rate %v", rate))
	}
	if n <= 0 {
		panic("workload: non-positive job count")
	}
	return &Deterministic{rate: rate, n: int64(n)}
}

// Next implements Source.
func (d *Deterministic) Next() (Job, bool) {
	if d.next >= d.n {
		return Job{}, false
	}
	j := Job{ID: d.next, Arrival: float64(d.next+1) / d.rate, Size: 1}
	d.next++
	return j, true
}

// Trace is a materialized job stream that can be saved, loaded and
// replayed.
type Trace []Job

// Record drains up to n jobs from src into a Trace (all jobs if
// n <= 0).
func Record(src Source, n int) Trace {
	var t Trace
	for n <= 0 || len(t) < n {
		j, ok := src.Next()
		if !ok {
			break
		}
		t = append(t, j)
	}
	return t
}

// Replay returns a Source that yields the trace's jobs in order.
func (t Trace) Replay() Source { return &traceSource{trace: t} }

type traceSource struct {
	trace Trace
	next  int
}

func (s *traceSource) Next() (Job, bool) {
	if s.next >= len(s.trace) {
		return Job{}, false
	}
	j := s.trace[s.next]
	s.next++
	return j, true
}

// Save writes the trace as CSV (id,arrival,size) with a header row.
func (t Trace) Save(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival", "size"}); err != nil {
		return err
	}
	for _, j := range t {
		rec := []string{
			strconv.FormatInt(j.ID, 10),
			strconv.FormatFloat(j.Arrival, 'g', 17, 64),
			strconv.FormatFloat(j.Size, 'g', 17, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadTrace parses a CSV trace written by Save.
func LoadTrace(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("workload: empty trace file")
	}
	var t Trace
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("workload: trace row %d has %d fields", i+2, len(row))
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d id: %w", i+2, err)
		}
		arr, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d arrival: %w", i+2, err)
		}
		size, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d size: %w", i+2, err)
		}
		t = append(t, Job{ID: id, Arrival: arr, Size: size})
	}
	return t, nil
}
