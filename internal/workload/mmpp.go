package workload

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// MMPP is a two-state Markov-modulated Poisson process: arrivals
// follow a Poisson process whose rate switches between RateA and
// RateB, with exponential state holding times of mean 1/SwitchA (time
// spent in state A before flipping) and 1/SwitchB. It produces bursty
// traffic — interarrival coefficient of variation above 1 — and is
// used to stress-test estimators and queues beyond the smooth Poisson
// assumption.
type MMPP struct {
	rateA, rateB     float64
	switchA, switchB float64
	sizes            SizeDist
	rng              *numeric.Rand

	n      int64
	next   int64
	now    float64
	inB    bool
	toFlip float64 // time of the next state flip
}

// NewMMPP returns an MMPP source emitting n jobs. rateA/rateB are the
// per-state arrival rates; switchA/switchB the state leave rates. dist
// may be nil for unit sizes.
func NewMMPP(rateA, rateB, switchA, switchB float64, n int, dist SizeDist, rng *numeric.Rand) *MMPP {
	for _, v := range []float64{rateA, rateB, switchA, switchB} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("workload: invalid MMPP parameter %v", v))
		}
	}
	if n <= 0 {
		panic("workload: non-positive job count")
	}
	if dist == nil {
		dist = ConstSize{}
	}
	if rng == nil {
		rng = numeric.NewRand(1)
	}
	m := &MMPP{
		rateA: rateA, rateB: rateB,
		switchA: switchA, switchB: switchB,
		sizes: dist, rng: rng, n: int64(n),
	}
	m.toFlip = m.rng.ExpFloat64() / m.switchA
	return m
}

// MeanRate returns the long-run arrival rate: the stationary
// distribution of the modulating chain weights the per-state rates.
func (m *MMPP) MeanRate() float64 {
	// pi_A = switchB/(switchA+switchB) — the chain spends time
	// proportional to its mean holding time in each state.
	den := 1/m.switchA + 1/m.switchB
	return (m.rateA*(1/m.switchA) + m.rateB*(1/m.switchB)) / den
}

// Next implements Source.
func (m *MMPP) Next() (Job, bool) {
	if m.next >= m.n {
		return Job{}, false
	}
	for {
		rate := m.rateA
		if m.inB {
			rate = m.rateB
		}
		dt := m.rng.ExpFloat64() / rate
		if m.now+dt < m.toFlip {
			m.now += dt
			j := Job{ID: m.next, Arrival: m.now, Size: m.sizes.Sample(m.rng)}
			m.next++
			return j, true
		}
		// The state flips before the candidate arrival; by the
		// memorylessness of the exponential we restart the arrival
		// clock in the new state.
		m.now = m.toFlip
		m.inB = !m.inB
		leave := m.switchA
		if m.inB {
			leave = m.switchB
		}
		m.toFlip = m.now + m.rng.ExpFloat64()/leave
	}
}
