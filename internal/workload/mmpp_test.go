package workload

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/stats"
)

func TestMMPPMeanRate(t *testing.T) {
	// Fast state 30/s half the time, slow state 2/s half the time.
	src := NewMMPP(30, 2, 1, 1, 300000, nil, numeric.NewRand(1))
	want := src.MeanRate()
	if math.Abs(want-16) > 1e-12 {
		t.Fatalf("analytic mean rate = %v, want 16", want)
	}
	var last float64
	count := 0
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if j.Arrival < last {
			t.Fatal("arrivals not monotone")
		}
		last = j.Arrival
		count++
	}
	got := float64(count) / last
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical rate %v, want ~%v", got, want)
	}
}

func TestMMPPIsBurstier(t *testing.T) {
	// Interarrival CV must exceed the Poisson value 1.
	src := NewMMPP(30, 2, 1, 1, 200000, nil, numeric.NewRand(2))
	var s stats.Summary
	var prev float64
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		s.Add(j.Arrival - prev)
		prev = j.Arrival
	}
	cv := s.Std() / s.Mean()
	if cv < 1.2 {
		t.Errorf("MMPP interarrival CV = %v, want clearly > 1", cv)
	}
}

func TestMMPPDegeneratesToPoissonWhenRatesEqual(t *testing.T) {
	src := NewMMPP(5, 5, 1, 1, 100000, nil, numeric.NewRand(3))
	var s stats.Summary
	var prev float64
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		s.Add(j.Arrival - prev)
		prev = j.Arrival
	}
	cv := s.Std() / s.Mean()
	if math.Abs(cv-1) > 0.03 {
		t.Errorf("equal-rate MMPP CV = %v, want ~1", cv)
	}
	if math.Abs(s.Mean()-0.2) > 0.005 {
		t.Errorf("mean interarrival %v, want 0.2", s.Mean())
	}
}

func TestMMPPPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMMPP(0, 1, 1, 1, 10, nil, nil) },
		func() { NewMMPP(1, -1, 1, 1, 10, nil, nil) },
		func() { NewMMPP(1, 1, 0, 1, 10, nil, nil) },
		func() { NewMMPP(1, 1, 1, math.NaN(), 10, nil, nil) },
		func() { NewMMPP(1, 1, 1, 1, 0, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMMPPEstimationStaysCalibratedUnderBursts(t *testing.T) {
	// The verification estimator for the flow model divides observed
	// delays by the *assigned* rate; burstiness of arrivals does not
	// bias it because flow-node delays are i.i.d. given the rate. This
	// pins that robustness claim.
	rng := numeric.NewRand(5)
	src := NewMMPP(30, 2, 0.5, 0.5, 50000, nil, rng.Split())
	var s stats.Summary
	const tExec, x = 2.0, 16.0 // mean rate of the MMPP is 16
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		s.Add(tExec * x * rng.ExpFloat64())
	}
	est := s.Mean() / x
	if math.Abs(est-tExec)/tExec > 0.05 {
		t.Errorf("estimate %v under bursty arrivals, want ~%v", est, tExec)
	}
}
