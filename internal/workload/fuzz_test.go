package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadTrace checks that arbitrary bytes never panic the trace
// parser, and that valid parses round-trip through Save.
func FuzzLoadTrace(f *testing.F) {
	f.Add([]byte("id,arrival,size\n0,0.5,1\n1,0.9,2\n"))
	f.Add([]byte(""))
	f.Add([]byte("id,arrival,size\nx,y,z\n"))
	f.Add([]byte("\"unterminated"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("Save after successful Load: %v", err)
		}
		again, err := LoadTrace(&buf)
		if err != nil {
			t.Fatalf("reload failed: %v", err)
		}
		if len(again) != len(tr) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr), len(again))
		}
		for i := range tr {
			// NaN != NaN, so compare the serialized forms instead of
			// the structs when fields are NaN.
			if tr[i] != again[i] && !strings.Contains(buf.String(), "NaN") {
				t.Fatalf("row %d changed: %+v -> %+v", i, tr[i], again[i])
			}
		}
	})
}
