// Package sim is a small discrete-event simulation engine: a virtual
// clock and a priority queue of timestamped events. Events scheduled
// for the same instant fire in FIFO order, which keeps simulations
// deterministic. The cluster and protocol packages build on it.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled action. It can be canceled before it fires.
type Event struct {
	time     float64
	seq      uint64
	action   func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.time }

// Cancel prevents the event's action from running. Canceling an event
// that already fired is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is a ready
// engine at time 0.
type Engine struct {
	now     float64
	events  eventHeap
	seq     uint64
	stopped bool
}

// New returns an engine with its clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events still scheduled (including
// canceled events not yet discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs action after the given delay of virtual time. It
// panics on negative or NaN delays.
func (e *Engine) Schedule(delay float64, action func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	return e.At(e.now+delay, action)
}

// At runs action at absolute virtual time t, which must not precede
// the current time.
func (e *Engine) At(t float64, action func()) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: cannot schedule at %v before now %v", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, action: action}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false when no events remain or the engine is stopped.
// Canceled events are skipped silently.
func (e *Engine) Step() bool {
	for !e.stopped && len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		ev.action()
		return true
	}
	return false
}

// Run fires events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires every event with timestamp <= t and then advances the
// clock to t. Events scheduled beyond t stay pending. It panics if t
// precedes the current time.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for !e.stopped && len(e.events) > 0 && e.events[0].time <= t {
		if !e.Step() {
			break
		}
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event. Scheduling remains
// possible; Resume re-enables stepping.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether the engine is stopped.
func (e *Engine) Stopped() bool { return e.stopped }
