// Package sim is a small discrete-event simulation engine: a virtual
// clock and a priority queue of timestamped events. Events scheduled
// for the same instant fire in FIFO order, which keeps simulations
// deterministic. The cluster and protocol packages build on it.
package sim

import (
	"fmt"
	"math"
)

// Event is a scheduled action. It can be canceled before it fires.
type Event struct {
	time     float64
	seq      uint64
	action   func()
	farg     func(float64) // payload-carrying action (AtCall/ScheduleCall)
	arg      float64
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.time }

// Cancel prevents the event's action from running. Canceling an event
// that already fired is a no-op — unless the engine has pooling
// enabled, in which case an Event handle is valid only until the
// event fires and Cancel after that point is undefined (the object
// may already describe a different event).
func (ev *Event) Cancel() { ev.canceled = true }

// eventHeap is a binary min-heap of events ordered by (time, seq) —
// a strict total order, so the pop sequence is unique and deterministic.
// Hand-rolled rather than container/heap: the interface dispatch of
// Less/Swap dominated the simulator's hot loop under profiling.
type eventHeap []*Event

// less orders by (time, seq).
func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

// push appends ev and sifts it up.
func (h *eventHeap) push(ev *Event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *Event {
	s := *h
	ev := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return ev
}

// Engine is a discrete-event simulator. The zero value is a ready
// engine at time 0.
type Engine struct {
	now     float64
	events  eventHeap
	seq     uint64
	stopped bool
	pooling bool
	free    []*Event
}

// New returns an engine with its clock at 0.
func New() *Engine { return &Engine{} }

// SetPooling enables (or disables) event reuse: once an event has
// fired or been discarded as canceled, its Event object goes onto a
// free list and is handed out again by a later Schedule/At. In a
// steady-state simulation this makes event scheduling allocation-free.
// The trade-off is handle lifetime: with pooling on, an *Event
// returned by Schedule/At is valid only until the event fires, and
// Cancel must not be called after that. Simulations that keep handles
// past firing (or cannot prove they don't) should leave pooling off,
// which is the default.
func (e *Engine) SetPooling(on bool) { e.pooling = on }

// Reset returns the clock to 0, discards all pending events
// (recycling them when pooling is enabled), clears a Stop and resets
// the sequence counter, so the engine replays identically to a fresh
// one while keeping its heap and free-list capacity.
func (e *Engine) Reset() {
	if e.pooling {
		for _, ev := range e.events {
			e.recycle(ev)
		}
	}
	for i := range e.events {
		e.events[i] = nil
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events still scheduled (including
// canceled events not yet discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs action after the given delay of virtual time. It
// panics on negative or NaN delays.
func (e *Engine) Schedule(delay float64, action func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	return e.At(e.now+delay, action)
}

// ScheduleCall is Schedule for a payload-carrying action: at the fire
// time it invokes fn(arg). Reusing one fn across many events (a
// per-node completion callback, say) avoids the closure allocation a
// plain Schedule would need to capture arg.
func (e *Engine) ScheduleCall(delay float64, fn func(float64), arg float64) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	return e.AtCall(e.now+delay, fn, arg)
}

// At runs action at absolute virtual time t, which must not precede
// the current time.
func (e *Engine) At(t float64, action func()) *Event {
	ev := e.newEvent(t)
	ev.action = action
	e.events.push(ev)
	return ev
}

// AtCall is At for a payload-carrying action: at time t it invokes
// fn(arg). See ScheduleCall.
func (e *Engine) AtCall(t float64, fn func(float64), arg float64) *Event {
	ev := e.newEvent(t)
	ev.farg = fn
	ev.arg = arg
	e.events.push(ev)
	return ev
}

// newEvent checks t, takes an Event from the free list (or allocates
// one) and stamps it with the next sequence number.
func (e *Engine) newEvent(t float64) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: cannot schedule at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.time = t
	ev.seq = e.seq
	e.seq++
	return ev
}

// recycle clears a popped event and returns it to the free list when
// pooling is enabled.
func (e *Engine) recycle(ev *Event) {
	if !e.pooling {
		return
	}
	ev.action = nil
	ev.farg = nil
	ev.arg = 0
	ev.canceled = false
	e.free = append(e.free, ev)
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false when no events remain or the engine is stopped.
// Canceled events are skipped silently.
func (e *Engine) Step() bool {
	for !e.stopped && len(e.events) > 0 {
		ev := e.events.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.time
		// Detach the action before recycling: the action may itself
		// schedule new events, which can reuse this Event object.
		action, farg, arg := ev.action, ev.farg, ev.arg
		e.recycle(ev)
		if farg != nil {
			farg(arg)
		} else {
			action()
		}
		return true
	}
	return false
}

// Run fires events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires every event with timestamp <= t and then advances the
// clock to t. Events scheduled beyond t stay pending. It panics if t
// precedes the current time.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for !e.stopped && len(e.events) > 0 && e.events[0].time <= t {
		if !e.Step() {
			break
		}
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event. Scheduling remains
// possible; Resume re-enables stepping.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether the engine is stopped.
func (e *Engine) Stopped() bool { return e.stopped }
