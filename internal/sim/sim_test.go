package sim

import (
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestScheduleFromWithinAction(t *testing.T) {
	e := New()
	var times []float64
	var tick func()
	count := 0
	tick = func() {
		times = append(times, e.Now())
		count++
		if count < 5 {
			e.Schedule(2, tick)
		}
	}
	e.Schedule(2, tick)
	e.Run()
	want := []float64{2, 4, 6, 8, 10}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []string
	a := e.Schedule(1, func() { got = append(got, "a") })
	e.Schedule(2, func() { got = append(got, "b") })
	_ = a
	a.Cancel()
	e.Run()
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("got %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %v, want 3 events", fired)
	}
	if e.Now() != 3 {
		t.Errorf("now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Idle advance: no events between 3 and 3.5.
	e.RunUntil(3.5)
	if e.Now() != 3.5 {
		t.Errorf("now = %v, want 3.5", e.Now())
	}
	e.Run()
	if len(fired) != 5 {
		t.Errorf("fired %v, want all 5", fired)
	}
}

func TestStopAndResume(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 after Stop", count)
	}
	if !e.Stopped() {
		t.Error("engine should report stopped")
	}
	e.Resume()
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5 after Resume", count)
	}
}

func TestAtAbsoluteTime(t *testing.T) {
	e := New()
	var at float64
	e.At(7, func() { at = e.Now() })
	e.Run()
	if at != 7 {
		t.Errorf("fired at %v, want 7", at)
	}
}

func TestScheduleZeroDelay(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(0, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Errorf("zero-delay event: fired=%v now=%v", fired, e.Now())
	}
}

func TestSchedulePanics(t *testing.T) {
	e := New()
	for _, fn := range []func(){
		func() { e.Schedule(-1, func() {}) },
		func() { e.At(-0.5, func() {}) },
		func() { e.RunUntil(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAtPastTimePanicsAfterAdvance(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.At(3, func() {})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

func TestScheduleCallCarriesArg(t *testing.T) {
	e := New()
	var got []float64
	add := func(v float64) { got = append(got, v) }
	e.ScheduleCall(2, add, 20)
	e.AtCall(1, add, 10)
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestPoolingReusesEvents(t *testing.T) {
	e := New()
	e.SetPooling(true)
	fn := func(float64) {}
	// One outstanding event at a time: after warm-up, scheduling must
	// reuse the single pooled Event instead of allocating.
	e.ScheduleCall(1, fn, 0)
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleCall(1, fn, 0)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("pooled schedule+run allocated %v per op, want 0", allocs)
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	e := New()
	e.SetPooling(true)
	run := func() []float64 {
		var order []float64
		e.Schedule(3, func() { order = append(order, e.Now()) })
		e.Schedule(1, func() { order = append(order, e.Now()) })
		e.Schedule(1, func() { order = append(order, -e.Now()) }) // FIFO tie-break
		e.Run()
		return order
	}
	first := run()
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("reset left now=%v pending=%d", e.Now(), e.Pending())
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged: %v vs %v", first, second)
		}
	}
}

func TestResetDiscardsPending(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Reset()
	e.Run()
	if fired {
		t.Error("event survived Reset")
	}
}

func TestResetClearsStop(t *testing.T) {
	e := New()
	e.Stop()
	e.Reset()
	if e.Stopped() {
		t.Error("Reset did not clear Stop")
	}
}

func TestPoolingRecyclesCanceled(t *testing.T) {
	e := New()
	e.SetPooling(true)
	ev := e.Schedule(1, func() { t.Error("canceled event fired") })
	ev.Cancel()
	e.Run()
	// The canceled event must have been recycled: the next schedule
	// runs without allocating.
	if allocs := testing.AllocsPerRun(10, func() {
		e.ScheduleCall(1, func(float64) {}, 0)
		e.Run()
	}); allocs != 0 {
		t.Errorf("schedule after canceled recycle allocated %v", allocs)
	}
}
