// Package cluster simulates a heterogeneous distributed system on top
// of the discrete-event engine: jobs arrive from a workload source,
// a dispatcher routes them to computers according to an allocation,
// and each computer serves them under a configurable service model.
//
// Two node models are provided, matching the two latency families of
// the repository:
//
//   - QueueNode is a real FCFS single-server queue with exponential
//     service — an M/M/1 system whose measured sojourn time converges
//     to 1/(mu-x), validating the MM1 latency model against an actual
//     queueing simulation.
//   - FlowNode realizes the paper's linear flow model: each job's
//     delay is drawn with mean t*x (t the computer's execution value,
//     x its configured arrival rate), the light-load M/G/1 reading the
//     paper gives for l(x) = t*x. It exercises the verification path:
//     the mechanism can estimate t from observed delays.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/numeric"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Node is one simulated computer.
type Node interface {
	// Name labels the node in results.
	Name() string
	// Submit hands the node a job at the current simulation time; the
	// node must invoke done(latency) when the job completes, where
	// latency is the job's total time in the node.
	Submit(eng *sim.Engine, job workload.Job, done func(latency float64))
}

// QueueNode is an FCFS single-server queue with service rate Mu: a
// job of size s occupies the server for s/Mu seconds. The service-time
// distribution is therefore inherited from the workload's size
// distribution — ExpSize arrivals make this an M/M/1 queue, ConstSize
// an M/D/1 queue.
type QueueNode struct {
	// ID labels the node.
	ID string
	// Mu is the service rate (jobs of size 1 per second).
	Mu float64

	availAt  float64 // time the server frees up
	busyTime float64 // accumulated service time, for utilization
}

// Name implements Node.
func (n *QueueNode) Name() string { return n.ID }

// Submit implements Node.
func (n *QueueNode) Submit(eng *sim.Engine, job workload.Job, done func(float64)) {
	now := eng.Now()
	start := now
	if n.availAt > start {
		start = n.availAt
	}
	svc := job.Size / n.Mu
	n.availAt = start + svc
	n.busyTime += svc
	finish := n.availAt
	eng.AtCall(finish, done, finish-job.Arrival)
}

// BusyTime returns the total service time accumulated so far.
func (n *QueueNode) BusyTime() float64 { return n.busyTime }

// FlowNode realizes the linear flow model l(x) = T*x: every job
// experiences an exponentially distributed delay with mean T*Rate,
// independent of the others (infinite-server semantics).
type FlowNode struct {
	// ID labels the node.
	ID string
	// T is the node's execution value ť (inverse processing rate).
	T float64
	// Rate is the arrival rate x the node was allocated; with the
	// paper's model the per-job latency at this operating point is
	// T*Rate.
	Rate float64
	// RNG drives the delay draws.
	RNG *numeric.Rand
}

// Name implements Node.
func (n *FlowNode) Name() string { return n.ID }

// Submit implements Node.
func (n *FlowNode) Submit(eng *sim.Engine, job workload.Job, done func(float64)) {
	mean := n.T * n.Rate
	delay := job.Size * mean * n.RNG.ExpFloat64()
	eng.ScheduleCall(delay, done, delay)
}

// NodeStats aggregates per-node measurements from a run.
type NodeStats struct {
	// Name is the node label.
	Name string
	// Jobs is the number of jobs completed at this node.
	Jobs int
	// ArrivalRate is the observed arrival rate (jobs per second of
	// simulated time).
	ArrivalRate float64
	// Latency summarizes observed per-job latencies.
	Latency stats.Summary
	// Latencies holds the raw observations (populated when
	// Config.KeepSamples is true) for use by the estimator.
	Latencies []float64
	// Utilization is busy time over total time, filled for QueueNodes.
	Utilization float64
}

// Result is the outcome of a cluster run.
type Result struct {
	// Duration is the simulated time span (last completion).
	Duration float64
	// PerNode holds per-node statistics, in node order.
	PerNode []NodeStats
	// MeanResponse is the mean latency across all jobs.
	MeanResponse float64
	// LostJobs counts jobs the fault layer dropped (dispatched to a
	// crashed node or lost in transit); they never execute.
	LostJobs int
	// DuplicatedJobs counts jobs the fault layer dispatched twice.
	DuplicatedJobs int
	// TotalLatencyRate is the flow-model total latency
	// sum_i x̂_i * mean latency_i, directly comparable to the paper's
	// L(x) = sum_i x_i * l_i(x_i).
	TotalLatencyRate float64
}

// Config drives a cluster run.
type Config struct {
	// Nodes are the computers.
	Nodes []Node
	// Probs are the routing probabilities (x_i / R); they must be
	// nonnegative and sum to 1 within 1e-9.
	Probs []float64
	// Source generates the jobs.
	Source workload.Source
	// RNG drives routing decisions.
	RNG *numeric.Rand
	// KeepSamples retains raw per-node latency observations.
	KeepSamples bool
	// Warmup discards observations from jobs that complete before
	// this simulated time, removing the initial transient from
	// steady-state statistics. Arrivals still happen during warmup;
	// only the measurement is suppressed.
	Warmup float64
	// Faults injects dispatch-path faults (see package faults): jobs
	// routed to crashed or silent nodes are lost, message drops lose
	// jobs in transit, duplicates dispatch a job twice, extra delay
	// postpones submission, and stalled nodes inflate every k-th
	// observed latency. Nil injects nothing.
	Faults faults.Injector
}

// Scratch holds the reusable hot state of cluster runs: the
// discrete-event engine (with event pooling), the result buffers
// (per-node stats and latency samples), the routing CDF and the
// per-node completion callbacks. A long-lived coordinator reuses one
// Scratch across rounds so that a steady-state run does no heap
// allocation in the job loop. The Result returned by Run is owned by
// the scratch and is valid only until the next Run call. A Scratch is
// not safe for concurrent use, and must not be copied once used.
type Scratch struct {
	eng  *sim.Engine
	res  Result
	cdf  []float64
	acc  float64
	done []func(float64)
	all  stats.Summary

	cfg        Config
	stallCount []int
	jobSeq     int
	pending    workload.Job
	pumpFn     func()
}

// Run simulates the full job stream through the cluster and returns
// aggregate statistics. The returned Result is owned by the scratch
// and invalidated by the next Run.
func (s *Scratch) Run(cfg Config) (*Result, error) {
	n := len(cfg.Nodes)
	if n == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if len(cfg.Probs) != n {
		return nil, fmt.Errorf("cluster: %d probs for %d nodes", len(cfg.Probs), n)
	}
	var sum float64
	for i, p := range cfg.Probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("cluster: invalid probability probs[%d] = %v", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("cluster: probabilities sum to %v, want 1", sum)
	}
	if cfg.Source == nil {
		return nil, errors.New("cluster: nil job source")
	}
	if cfg.RNG == nil {
		cfg.RNG = numeric.NewRand(1)
	}
	s.cfg = cfg

	if s.eng == nil {
		s.eng = sim.New()
		s.eng.SetPooling(true)
	} else {
		s.eng.Reset()
	}

	res := &s.res
	*res = Result{PerNode: res.PerNode}
	if cap(res.PerNode) < n {
		res.PerNode = append(res.PerNode[:cap(res.PerNode)], make([]NodeStats, n-cap(res.PerNode))...)
	}
	res.PerNode = res.PerNode[:n]
	for i := range res.PerNode {
		st := &res.PerNode[i]
		*st = NodeStats{Name: cfg.Nodes[i].Name(), Latencies: st.Latencies[:0]}
	}
	s.all = stats.Summary{}
	s.jobSeq = 0

	// Cumulative distribution for routing.
	s.cdf = s.cdf[:0]
	s.acc = 0
	for _, p := range cfg.Probs {
		s.acc += p
		s.cdf = append(s.cdf, s.acc)
	}
	if cap(s.stallCount) < n {
		s.stallCount = make([]int, n)
	}
	s.stallCount = s.stallCount[:n]
	clear(s.stallCount)

	// Per-node completion callbacks, created once and reused across
	// runs; they index the live buffers through s, so growing the
	// result slices never strands them.
	for len(s.done) < n {
		i := len(s.done)
		s.done = append(s.done, func(lat float64) { s.complete(i, lat) })
	}

	// Arrivals self-schedule: the pump fires at the pending job's
	// arrival time, dispatches it, and schedules the next one. This
	// keeps the event heap small (outstanding completions plus one
	// arrival) instead of holding the entire job stream.
	if s.pumpFn == nil {
		s.pumpFn = s.pump
	}
	if job, ok := cfg.Source.Next(); ok {
		s.pending = job
		s.eng.At(job.Arrival, s.pumpFn)
	}
	s.eng.Run()

	res.MeanResponse = s.all.Mean()
	window := res.Duration - cfg.Warmup
	if window > 0 {
		var k numeric.KahanSum
		for i := range res.PerNode {
			st := &res.PerNode[i]
			st.ArrivalRate = float64(st.Jobs) / window
			k.Add(st.ArrivalRate * st.Latency.Mean())
			if qn, ok := cfg.Nodes[i].(*QueueNode); ok && res.Duration > 0 {
				st.Utilization = qn.BusyTime() / res.Duration
			}
		}
		res.TotalLatencyRate = k.Value()
	}
	return res, nil
}

// pump processes the pending arrival and schedules the next one.
func (s *Scratch) pump() {
	job := s.pending
	if next, ok := s.cfg.Source.Next(); ok {
		s.pending = next
		s.eng.At(next.Arrival, s.pumpFn)
	}
	s.arrive(job)
}

// arrive routes one job, consulting the fault layer when configured.
func (s *Scratch) arrive(job workload.Job) {
	i := s.pick()
	if s.cfg.Faults == nil {
		s.dispatch(job, i, 0)
		return
	}
	cls := s.cfg.Faults.Class(i)
	if cls == faults.NodeCrashed || cls == faults.NodeSilent {
		s.res.LostJobs++
		return
	}
	seq := s.jobSeq
	s.jobSeq++
	d := s.cfg.Faults.Deliver(faults.Message{Seq: seq, From: -1, To: i, Kind: "job"})
	if d.Drop {
		s.res.LostJobs++
		return
	}
	extraObs := 0.0
	if cls == faults.NodeStalled {
		if delay, every := s.cfg.Faults.Stall(i); every > 0 && s.stallCount[i]%every == 0 {
			extraObs = delay
		}
		s.stallCount[i]++
	}
	if d.ExtraDelay > 0 {
		s.eng.Schedule(d.ExtraDelay, func() { s.dispatch(job, i, extraObs) })
	} else {
		s.dispatch(job, i, extraObs)
	}
	if d.Duplicate {
		s.res.DuplicatedJobs++
		s.dispatch(job, i, extraObs)
	}
}

// pick samples the routing distribution.
func (s *Scratch) pick() int {
	// Binary search for the first cdf entry above u: picks the same
	// index as a left-to-right scan (the cdf is nondecreasing) at
	// O(log n) per job instead of O(n).
	u := s.cfg.RNG.Float64() * s.acc
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u < s.cdf[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// dispatch hands a job to node i; extraObs is added to the observed
// latency (a stalled node's inflated measurement).
func (s *Scratch) dispatch(job workload.Job, i int, extraObs float64) {
	done := s.done[i]
	if extraObs != 0 {
		inner := done
		done = func(lat float64) { inner(lat + extraObs) }
	}
	s.cfg.Nodes[i].Submit(s.eng, job, done)
}

// complete records node i finishing a job with the given observed
// latency.
func (s *Scratch) complete(i int, lat float64) {
	if t := s.eng.Now(); t > s.res.Duration {
		s.res.Duration = t
	}
	if s.eng.Now() < s.cfg.Warmup {
		return
	}
	st := &s.res.PerNode[i]
	st.Jobs++
	st.Latency.Add(lat)
	if s.cfg.KeepSamples {
		st.Latencies = append(st.Latencies, lat)
	}
	s.all.Add(lat)
}

// Run simulates the full job stream through the cluster and returns
// aggregate statistics. It is the one-shot form of Scratch.Run; code
// that runs many rounds should keep a Scratch and amortize the
// buffers.
func Run(cfg Config) (*Result, error) {
	var s Scratch
	return s.Run(cfg)
}

// FlowNodes constructs FlowNodes for execution values ts and
// allocation x, with independent RNG streams split from rng.
func FlowNodes(ts, x []float64, rng *numeric.Rand) ([]Node, error) {
	if len(ts) != len(x) {
		return nil, fmt.Errorf("cluster: %d execution values for %d allocations", len(ts), len(x))
	}
	nodes := make([]Node, len(ts))
	for i := range ts {
		nodes[i] = &FlowNode{
			ID:   fmt.Sprintf("C%d", i+1),
			T:    ts[i],
			Rate: x[i],
			RNG:  rng.Split(),
		}
	}
	return nodes, nil
}

// QueueNodes constructs FCFS QueueNodes with service rates mus.
func QueueNodes(mus []float64) []Node {
	nodes := make([]Node, len(mus))
	for i, mu := range mus {
		nodes[i] = &QueueNode{
			ID: fmt.Sprintf("C%d", i+1),
			Mu: mu,
		}
	}
	return nodes
}

// Probs converts an allocation x into routing probabilities x_i/R.
// Zero-rate systems yield a uniform distribution.
func Probs(x []float64, rate float64) []float64 {
	p := make([]float64, len(x))
	if rate <= 0 {
		for i := range p {
			p[i] = 1 / float64(len(x))
		}
		return p
	}
	for i, v := range x {
		p[i] = v / rate
	}
	return p
}
