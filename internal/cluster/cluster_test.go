package cluster

import (
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/latency"
	"repro/internal/numeric"
	"repro/internal/workload"
)

func TestQueueNodeMatchesMM1Theory(t *testing.T) {
	// M/M/1 with mu=2, lambda=1: mean sojourn = 1/(mu-lambda) = 1.
	rng := numeric.NewRand(42)
	nodes := QueueNodes([]float64{2})
	res, err := Run(Config{
		Nodes:  nodes,
		Probs:  []float64{1},
		Source: workload.NewPoisson(1, 200000, workload.ExpSize{}, rng.Split()),
		RNG:    rng.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanResponse-1) > 0.05 {
		t.Errorf("M/M/1 mean sojourn = %v, want ~1", res.MeanResponse)
	}
}

func TestQueueNodeLowUtilizationApproachesServiceTime(t *testing.T) {
	// Nearly idle server: sojourn ~ service time = 1/mu.
	rng := numeric.NewRand(7)
	nodes := QueueNodes([]float64{10})
	res, err := Run(Config{
		Nodes:  nodes,
		Probs:  []float64{1},
		Source: workload.NewPoisson(0.1, 50000, workload.ExpSize{}, rng.Split()),
		RNG:    rng.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanResponse-0.1)/0.1 > 0.05 {
		t.Errorf("idle sojourn = %v, want ~0.1", res.MeanResponse)
	}
}

func TestTwoQueueNodesSplit(t *testing.T) {
	// Two M/M/1 servers (mu=4 each) with even split of lambda=4:
	// each sees lambda=2, sojourn 1/(4-2) = 0.5.
	rng := numeric.NewRand(11)
	nodes := QueueNodes([]float64{4, 4})
	res, err := Run(Config{
		Nodes:  nodes,
		Probs:  []float64{0.5, 0.5},
		Source: workload.NewPoisson(4, 200000, workload.ExpSize{}, rng.Split()),
		RNG:    rng.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanResponse-0.5) > 0.03 {
		t.Errorf("mean sojourn = %v, want ~0.5", res.MeanResponse)
	}
	// Roughly even job counts.
	a, b := res.PerNode[0].Jobs, res.PerNode[1].Jobs
	if math.Abs(float64(a-b))/float64(a+b) > 0.02 {
		t.Errorf("uneven split: %d vs %d", a, b)
	}
}

func TestFlowNodeMeanDelay(t *testing.T) {
	// FlowNode with T=2, Rate=3: mean per-job delay 6.
	rng := numeric.NewRand(13)
	node := &FlowNode{ID: "C1", T: 2, Rate: 3, RNG: rng.Split()}
	res, err := Run(Config{
		Nodes:  []Node{node},
		Probs:  []float64{1},
		Source: workload.NewPoisson(3, 100000, nil, rng.Split()),
		RNG:    rng.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanResponse-6)/6 > 0.02 {
		t.Errorf("flow-node mean delay = %v, want ~6", res.MeanResponse)
	}
}

func TestFlowClusterReproducesPaperLatency(t *testing.T) {
	// The DES cross-check of the paper's headline number: 16 computers
	// under the PR allocation at R=20 must measure a flow total
	// latency near 78.43.
	ts := []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}
	const rate = 20.0
	x, err := alloc.Proportional(ts, rate)
	if err != nil {
		t.Fatal(err)
	}
	rng := numeric.NewRand(17)
	nodes, err := FlowNodes(ts, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Nodes:  nodes,
		Probs:  Probs(x, rate),
		Source: workload.NewPoisson(rate, 400000, nil, rng.Split()),
		RNG:    rng.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = 78.431372549
	if math.Abs(res.TotalLatencyRate-want)/want > 0.03 {
		t.Errorf("simulated total latency = %v, want ~%v", res.TotalLatencyRate, want)
	}
}

func TestQueueNodePollaczekKhinchine(t *testing.T) {
	// The FCFS queue must reproduce the M/G/1 Pollaczek-Khinchine
	// sojourn time for non-exponential service too. Service time =
	// size/mu, so the size distribution's squared coefficient of
	// variation carries over directly.
	cases := []struct {
		name string
		dist workload.SizeDist
		cs2  float64
	}{
		{"M/D/1", workload.ConstSize{}, 0},
		{"M/M/1", workload.ExpSize{}, 1},
		{"M/G/1-lognormal", workload.LognormalSize{Sigma: 0.8}, math.Exp(0.8*0.8) - 1},
	}
	const mu, lambda = 4.0, 2.0
	for _, c := range cases {
		rng := numeric.NewRand(29)
		res, err := Run(Config{
			Nodes:  QueueNodes([]float64{mu}),
			Probs:  []float64{1},
			Source: workload.NewPoisson(lambda, 400000, c.dist, rng.Split()),
			RNG:    rng.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := latency.MG1{Mu: mu, CS2: c.cs2}.Latency(lambda)
		if math.Abs(res.MeanResponse-want)/want > 0.05 {
			t.Errorf("%s: simulated sojourn %v, PK predicts %v", c.name, res.MeanResponse, want)
		}
	}
}

func TestKeepSamples(t *testing.T) {
	rng := numeric.NewRand(19)
	nodes := QueueNodes([]float64{5})
	res, err := Run(Config{
		Nodes:       nodes,
		Probs:       []float64{1},
		Source:      workload.NewPoisson(1, 500, workload.ExpSize{}, rng.Split()),
		RNG:         rng.Split(),
		KeepSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode[0].Latencies) != 500 {
		t.Errorf("kept %d samples, want 500", len(res.PerNode[0].Latencies))
	}
	if res.PerNode[0].Jobs != 500 {
		t.Errorf("jobs = %d", res.PerNode[0].Jobs)
	}
}

func TestWarmupTrimsTransient(t *testing.T) {
	// A queue that starts empty under-measures the steady-state
	// sojourn; discarding the warmup window moves the estimate toward
	// (or past) the no-warmup one and reduces transient bias at high
	// utilization (rho = 0.9, slow convergence).
	const mu, lambda = 1.0, 0.9
	run := func(warmup float64) *Result {
		rng := numeric.NewRand(31)
		res, err := Run(Config{
			Nodes:  QueueNodes([]float64{mu}),
			Probs:  []float64{1},
			Source: workload.NewPoisson(lambda, 150000, workload.ExpSize{}, rng.Split()),
			RNG:    rng.Split(),
			Warmup: warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(0)
	warm := run(5000)
	want := 1 / (mu - lambda) // 10
	if math.Abs(warm.MeanResponse-want)/want > 0.25 {
		t.Errorf("warm estimate %v far from theory %v", warm.MeanResponse, want)
	}
	// Warmup actually discards the early completions (~lambda*5000 of
	// them) without touching the rest of the run.
	trimmed := cold.PerNode[0].Jobs - warm.PerNode[0].Jobs
	if trimmed < 3000 || trimmed > 6000 {
		t.Errorf("warmup trimmed %d jobs, expected ~4500", trimmed)
	}
	if warm.Duration != cold.Duration {
		t.Errorf("warmup changed the run duration: %v vs %v", warm.Duration, cold.Duration)
	}
}

func TestUtilizationReported(t *testing.T) {
	rng := numeric.NewRand(37)
	res, err := Run(Config{
		Nodes:  QueueNodes([]float64{4}),
		Probs:  []float64{1},
		Source: workload.NewPoisson(2, 100000, workload.ExpSize{}, rng.Split()),
		RNG:    rng.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// rho = lambda/mu = 0.5.
	if math.Abs(res.PerNode[0].Utilization-0.5) > 0.03 {
		t.Errorf("utilization = %v, want ~0.5", res.PerNode[0].Utilization)
	}
}

func TestRunValidation(t *testing.T) {
	nodes := QueueNodes([]float64{1})
	src := workload.NewDeterministic(1, 1)
	cases := []Config{
		{Nodes: nil, Probs: nil, Source: src},
		{Nodes: nodes, Probs: []float64{0.5, 0.5}, Source: src},
		{Nodes: nodes, Probs: []float64{0.9}, Source: src},
		{Nodes: nodes, Probs: []float64{-1}, Source: src},
		{Nodes: nodes, Probs: []float64{1}, Source: nil},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestProbs(t *testing.T) {
	p := Probs([]float64{1, 3}, 4)
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Errorf("Probs = %v", p)
	}
	u := Probs([]float64{1, 1}, 0)
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Errorf("zero-rate Probs = %v", u)
	}
}

func TestFlowNodesMismatch(t *testing.T) {
	if _, err := FlowNodes([]float64{1}, []float64{1, 2}, numeric.NewRand(1)); err == nil {
		t.Error("expected error")
	}
}

func TestDeterministicReplayability(t *testing.T) {
	run := func() float64 {
		rng := numeric.NewRand(23)
		nodes := QueueNodes([]float64{3, 2})
		res, err := Run(Config{
			Nodes:  nodes,
			Probs:  []float64{0.6, 0.4},
			Source: workload.NewPoisson(2, 5000, workload.ExpSize{}, rng.Split()),
			RNG:    rng.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponse
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic runs: %v vs %v", a, b)
	}
}

func TestScratchReuseMatchesFreshRuns(t *testing.T) {
	// A reused Scratch must reproduce, run for run, exactly what fresh
	// one-shot runs produce — including with faults in play, where the
	// per-run stall counters and job sequence numbers must reset.
	makeCfg := func(seed uint64) Config {
		rng := numeric.NewRand(seed)
		nodes, err := FlowNodes([]float64{1, 2, 5}, []float64{3, 2, 1}, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Nodes:       nodes,
			Probs:       Probs([]float64{3, 2, 1}, 6),
			Source:      workload.NewPoisson(6, 800, nil, rng.Split()),
			RNG:         rng.Split(),
			KeepSamples: true,
			Faults:      faults.New(seed, faults.Drop(0.05), faults.Stall(50, 7, 1)),
		}
	}
	var s Scratch
	for run := 0; run < 3; run++ {
		seed := uint64(run + 1)
		got, err := s.Run(makeCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(makeCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got.Duration != want.Duration || got.MeanResponse != want.MeanResponse ||
			got.LostJobs != want.LostJobs || got.DuplicatedJobs != want.DuplicatedJobs ||
			got.TotalLatencyRate != want.TotalLatencyRate {
			t.Fatalf("run %d aggregates diverged: scratch %+v, fresh %+v", run, got, want)
		}
		for i := range want.PerNode {
			g, w := &got.PerNode[i], &want.PerNode[i]
			if g.Jobs != w.Jobs || g.Latency.Mean() != w.Latency.Mean() || len(g.Latencies) != len(w.Latencies) {
				t.Fatalf("run %d node %d diverged: scratch %d jobs mean %v, fresh %d jobs mean %v",
					run, i, g.Jobs, g.Latency.Mean(), w.Jobs, w.Latency.Mean())
			}
			for j := range w.Latencies {
				if g.Latencies[j] != w.Latencies[j] {
					t.Fatalf("run %d node %d sample %d: %v != %v", run, i, j, g.Latencies[j], w.Latencies[j])
				}
			}
		}
	}
}
