package cluster

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/numeric"
	"repro/internal/workload"
)

func twoNodeConfig(seed uint64) Config {
	rng := numeric.NewRand(seed)
	nodes, _ := FlowNodes([]float64{1, 2}, []float64{3, 3}, rng.Split())
	return Config{
		Nodes:       nodes,
		Probs:       []float64{0.5, 0.5},
		Source:      workload.NewPoisson(6, 2000, nil, rng.Split()),
		RNG:         rng.Split(),
		KeepSamples: true,
	}
}

func TestCrashedNodeLosesItsJobs(t *testing.T) {
	cfg := twoNodeConfig(3)
	cfg.Faults = faults.New(1, faults.Crash(1))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNode[1].Jobs != 0 {
		t.Fatalf("crashed node completed %d jobs", res.PerNode[1].Jobs)
	}
	if res.LostJobs == 0 {
		t.Fatal("no jobs recorded lost")
	}
	if res.PerNode[0].Jobs+res.LostJobs != 2000 {
		t.Fatalf("jobs %d + lost %d != 2000", res.PerNode[0].Jobs, res.LostJobs)
	}
}

func TestDropAndDuplicatePlansAreAccounted(t *testing.T) {
	cfg := twoNodeConfig(5)
	cfg.Faults = faults.New(9, faults.Drop(0.1), faults.Duplicate(0.1))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostJobs == 0 || res.DuplicatedJobs == 0 {
		t.Fatalf("lost=%d duplicated=%d, want both nonzero", res.LostJobs, res.DuplicatedJobs)
	}
	total := res.PerNode[0].Jobs + res.PerNode[1].Jobs
	if total != 2000-res.LostJobs+res.DuplicatedJobs {
		t.Fatalf("completed %d, want %d", total, 2000-res.LostJobs+res.DuplicatedJobs)
	}
}

func TestNilFaultsMatchesNoFaults(t *testing.T) {
	a, err := Run(twoNodeConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoNodeConfig(7)
	cfg.Faults = faults.New(1) // empty plan: consulted but injects nothing
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse || a.Duration != b.Duration {
		t.Fatalf("empty plan changed the run: %v/%v vs %v/%v",
			a.MeanResponse, a.Duration, b.MeanResponse, b.Duration)
	}
	if b.LostJobs != 0 || b.DuplicatedJobs != 0 {
		t.Fatalf("empty plan lost %d duplicated %d", b.LostJobs, b.DuplicatedJobs)
	}
}

func TestStalledNodeInflatesObservations(t *testing.T) {
	cfg := twoNodeConfig(11)
	cfg.Faults = faults.New(1, faults.Stall(500, 10, 0))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stalled := 0
	for _, lat := range res.PerNode[0].Latencies {
		if lat >= 500 {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatal("no inflated observations at the stalled node")
	}
	want := (res.PerNode[0].Jobs + 9) / 10
	if stalled != want {
		t.Fatalf("stalled %d of %d observations, want every 10th = %d",
			stalled, res.PerNode[0].Jobs, want)
	}
	for _, lat := range res.PerNode[1].Latencies {
		if lat >= 500 {
			t.Fatal("healthy node shows stalls")
		}
	}
}
