package payproto

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestCommitVerifyRoundTrip(t *testing.T) {
	rng := numeric.NewRand(1)
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		v := -100 + 200*r.Float64()
		c, op, err := Commit(v, rng)
		if err != nil {
			return false
		}
		return c.Verify(op) && op.Value == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCommitmentIsBinding(t *testing.T) {
	rng := numeric.NewRand(2)
	c, op, err := Commit(1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Changing the value breaks verification.
	forged := op
	forged.Value = 3.0
	if c.Verify(forged) {
		t.Error("commitment accepted a different value")
	}
	// Changing the salt breaks verification.
	forged = op
	forged.Salt[0] ^= 1
	if c.Verify(forged) {
		t.Error("commitment accepted a different salt")
	}
}

func TestCommitmentIsHiding(t *testing.T) {
	// Same value, different randomness -> different digests: the
	// digest reveals nothing recognizable about the value.
	rng := numeric.NewRand(3)
	c1, _, err := Commit(2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Commit(2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Digest == c2.Digest {
		t.Error("commitments to the same value are identical — not hiding")
	}
}

func TestCommitErrors(t *testing.T) {
	rng := numeric.NewRand(4)
	if _, _, err := Commit(math.NaN(), rng); err == nil {
		t.Error("expected error for NaN")
	}
	if _, _, err := Commit(math.Inf(1), rng); err == nil {
		t.Error("expected error for Inf")
	}
	if _, _, err := Commit(1, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestSealedRound(t *testing.T) {
	rng := numeric.NewRand(5)
	values := []float64{1, 2, 5, 10}
	commits := make([]Commitment, len(values))
	opens := make([]Opening, len(values))
	for i, v := range values {
		c, op, err := Commit(v, rng)
		if err != nil {
			t.Fatal(err)
		}
		commits[i], opens[i] = c, op
	}
	bids, err := SealedRound(commits, opens)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if bids[i] != values[i] {
			t.Errorf("bid[%d] = %v, want %v", i, bids[i], values[i])
		}
	}
	// A cheater who tries to change its bid after seeing others is
	// caught.
	opens[2].Value = 0.1
	if _, err := SealedRound(commits, opens); err == nil {
		t.Error("sealed round accepted a mismatched reveal")
	}
	// Length mismatch.
	if _, err := SealedRound(commits[:2], opens[:3]); err == nil {
		t.Error("expected error for length mismatch")
	}
}
