package payproto

import (
	"errors"
	"fmt"

	"repro/internal/mech"
	"repro/internal/numeric"
)

// Auditor is one member of the redundant payment-computation panel. An
// honest auditor recomputes the mechanism's payment vector from the
// public round data; a corrupted one perturbs it.
type Auditor struct {
	// ID labels the auditor.
	ID string
	// Corrupt makes the auditor report a perturbed vector.
	Corrupt bool
	// Perturb is the multiplicative distortion a corrupt auditor
	// applies (default 1.1 when zero).
	Perturb float64
}

// AuditResult is the consensus outcome of a panel vote.
type AuditResult struct {
	// Payments is the agreed payment vector.
	Payments []float64
	// Dissenters lists auditors whose vectors disagreed with the
	// consensus.
	Dissenters []string
}

// ErrNoConsensus is returned when no strict majority of auditors
// agrees on a payment vector.
var ErrNoConsensus = errors.New("payproto: no majority consensus among auditors")

// AuditedPayments has every auditor independently recompute the
// verification mechanism's payments and majority-votes on the result.
// Vectors within tol (component-wise absolute) are considered equal.
// It tolerates any strict minority of corrupted auditors and returns
// ErrNoConsensus otherwise.
func AuditedPayments(agents []mech.Agent, rate float64, auditors []Auditor, tol float64) (*AuditResult, error) {
	if len(auditors) == 0 {
		return nil, errors.New("payproto: no auditors")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	mechanism := mech.CompensationBonus{}
	vectors := make([][]float64, len(auditors))
	for i, a := range auditors {
		o, err := mechanism.Run(agents, rate)
		if err != nil {
			return nil, fmt.Errorf("payproto: auditor %s: %w", a.ID, err)
		}
		v := append([]float64(nil), o.Payment...)
		if a.Corrupt {
			p := a.Perturb
			if p == 0 {
				p = 1.1
			}
			for j := range v {
				v[j] *= p
			}
		}
		vectors[i] = v
	}

	equal := func(a, b []float64) bool {
		for j := range a {
			if !numeric.AlmostEqual(a[j], b[j], 0, tol) {
				return false
			}
		}
		return true
	}

	// Group identical vectors and find a strict majority.
	best, bestCount := -1, 0
	counts := make([]int, len(vectors))
	for i := range vectors {
		for j := range vectors {
			if equal(vectors[i], vectors[j]) {
				counts[i]++
			}
		}
		if counts[i] > bestCount {
			best, bestCount = i, counts[i]
		}
	}
	if bestCount*2 <= len(auditors) {
		return nil, ErrNoConsensus
	}
	res := &AuditResult{Payments: vectors[best]}
	for i, a := range auditors {
		if !equal(vectors[i], vectors[best]) {
			res.Dissenters = append(res.Dissenters, a.ID)
		}
	}
	return res, nil
}
