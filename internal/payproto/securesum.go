package payproto

import (
	"errors"
	"fmt"

	"repro/internal/numeric"
)

// SumTranscript records a secure-sum run for inspection and testing.
type SumTranscript struct {
	// Shares[i][s] is agent i's share destined for server s. A real
	// deployment would never gather these in one place; the transcript
	// exists so tests can verify the privacy property.
	Shares [][]uint64
	// Partials[s] is server s's published partial sum.
	Partials []uint64
	// Sum is the reconstructed aggregate.
	Sum float64
}

// SecureSum simulates the secure aggregation protocol: each of the n
// agents splits its (fixed-point encoded) private value into
// additive shares, one per server; each server publishes only the sum
// of the shares it received; adding the partial sums reveals exactly
// sum(values) and nothing else. With the PR algorithm the coordinator
// only ever needs S = sum_j 1/b_j — each agent can then compute its
// own allocation x_i = R/(b_i*S) locally without revealing b_i.
//
// servers must be at least 2; privacy holds against any coalition of
// at most servers-1 servers.
func SecureSum(values []float64, servers int, rng *numeric.Rand) (*SumTranscript, error) {
	if len(values) == 0 {
		return nil, errors.New("payproto: no values to aggregate")
	}
	if servers < 2 {
		return nil, errors.New("payproto: need at least 2 servers")
	}
	if rng == nil {
		rng = numeric.NewRand(1)
	}
	tr := &SumTranscript{
		Shares:   make([][]uint64, len(values)),
		Partials: make([]uint64, servers),
	}
	for i, v := range values {
		enc, err := Encode(v)
		if err != nil {
			return nil, fmt.Errorf("payproto: agent %d: %w", i, err)
		}
		tr.Shares[i] = Share(enc, servers, rng)
		for s, sh := range tr.Shares[i] {
			tr.Partials[s] = addMod(tr.Partials[s], sh)
		}
	}
	total, err := Reconstruct(tr.Partials)
	if err != nil {
		return nil, err
	}
	tr.Sum = Decode(total)
	return tr, nil
}

// PrivateAllocation runs the privacy-preserving PR allocation: the
// agents' inverse bids are aggregated with SecureSum, the coordinator
// publishes S, and each agent derives its own load x_i = rate/(b_i*S).
// The returned allocation is what the agents individually compute; the
// coordinator never sees a bid.
func PrivateAllocation(bids []float64, rate float64, servers int, rng *numeric.Rand) ([]float64, float64, error) {
	if rate < 0 {
		return nil, 0, fmt.Errorf("payproto: negative rate %g", rate)
	}
	inv := make([]float64, len(bids))
	for i, b := range bids {
		if b <= 0 {
			return nil, 0, fmt.Errorf("payproto: invalid bid bids[%d] = %g", i, b)
		}
		inv[i] = 1 / b
	}
	tr, err := SecureSum(inv, servers, rng)
	if err != nil {
		return nil, 0, err
	}
	s := tr.Sum
	x := make([]float64, len(bids))
	for i, b := range bids {
		x[i] = rate / (b * s)
	}
	return x, s, nil
}
