package payproto

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mech"
	"repro/internal/numeric"
)

func TestFieldArithmetic(t *testing.T) {
	if got := addMod(P-1, 1); got != 0 {
		t.Errorf("addMod(P-1, 1) = %d, want 0", got)
	}
	if got := addMod(P-1, 2); got != 1 {
		t.Errorf("addMod(P-1, 2) = %d, want 1", got)
	}
	if got := subMod(0, 1); got != P-1 {
		t.Errorf("subMod(0, 1) = %d, want P-1", got)
	}
	if got := subMod(5, 3); got != 2 {
		t.Errorf("subMod(5, 3) = %d, want 2", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		v := 1000 * r.Float64()
		enc, err := Encode(v)
		if err != nil {
			return false
		}
		return math.Abs(Decode(enc)-v) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	for _, v := range []float64{-1, math.NaN(), math.Inf(1), 1e20} {
		if _, err := Encode(v); err == nil {
			t.Errorf("Encode(%v) should fail", v)
		}
	}
}

func TestShareReconstruct(t *testing.T) {
	rng := numeric.NewRand(1)
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		secret := randField(r)
		m := 2 + r.Intn(8)
		shares := Share(secret, m, rng)
		if len(shares) != m {
			return false
		}
		got, err := Reconstruct(shares)
		return err == nil && got == secret
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSharesIndependentOfSecret(t *testing.T) {
	// The first m-1 shares are pure randomness: with the same RNG
	// stream, two different secrets produce identical prefixes —
	// exactly the statement that a coalition of m-1 servers (holding
	// those shares) learns nothing.
	shares1 := Share(12345, 5, numeric.NewRand(9))
	shares2 := Share(98765432, 5, numeric.NewRand(9))
	for i := 0; i < 4; i++ {
		if shares1[i] != shares2[i] {
			t.Fatalf("share %d depends on the secret", i)
		}
	}
	if shares1[4] == shares2[4] {
		t.Error("last share should differ for different secrets")
	}
}

func TestSharePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Share(1, 1, numeric.NewRand(1)) },
		func() { Share(P, 2, numeric.NewRand(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(nil); err == nil {
		t.Error("expected error for no shares")
	}
	if _, err := Reconstruct([]uint64{P}); err == nil {
		t.Error("expected error for out-of-range share")
	}
}

func TestSecureSum(t *testing.T) {
	values := []float64{1, 0.5, 0.2, 0.1, 0.1, 0.1}
	tr, err := SecureSum(values, 3, numeric.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Sum-2.0) > 1e-7 {
		t.Errorf("secure sum = %v, want 2", tr.Sum)
	}
	if len(tr.Partials) != 3 {
		t.Errorf("partials = %d", len(tr.Partials))
	}
	// Partial sums individually reveal nothing recognizable: they are
	// not equal to any prefix sums of the encoded inputs (overwhelming
	// probability under random shares).
	enc0, _ := Encode(values[0])
	for s, p := range tr.Partials {
		if p == enc0 {
			t.Errorf("partial %d equals an input encoding — privacy leak", s)
		}
	}
}

func TestSecureSumErrors(t *testing.T) {
	if _, err := SecureSum(nil, 3, nil); err == nil {
		t.Error("expected error for no values")
	}
	if _, err := SecureSum([]float64{1}, 1, nil); err == nil {
		t.Error("expected error for one server")
	}
	if _, err := SecureSum([]float64{-1}, 2, nil); err == nil {
		t.Error("expected error for negative value")
	}
}

func TestPrivateAllocationMatchesPR(t *testing.T) {
	bids := []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}
	const rate = 20.0
	x, s, err := PrivateAllocation(bids, rate, 4, numeric.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-5.1) > 1e-7 {
		t.Errorf("aggregate = %v, want 5.1", s)
	}
	model := mech.LinearModel{}
	want, err := model.Alloc(bids, rate)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-rate) > 1e-6 {
		t.Errorf("allocation sums to %v, want %v", sum, rate)
	}
}

func TestPrivateAllocationErrors(t *testing.T) {
	if _, _, err := PrivateAllocation([]float64{1, 0}, 5, 3, nil); err == nil {
		t.Error("expected error for zero bid")
	}
	if _, _, err := PrivateAllocation([]float64{1, 2}, -5, 3, nil); err == nil {
		t.Error("expected error for negative rate")
	}
}

func auditAgents() []mech.Agent {
	return mech.Truthful([]float64{1, 2, 5, 10})
}

func TestAuditedPaymentsAllHonest(t *testing.T) {
	auditors := []Auditor{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	res, err := AuditedPayments(auditAgents(), 8, auditors, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dissenters) != 0 {
		t.Errorf("dissenters = %v, want none", res.Dissenters)
	}
	// Consensus equals the direct mechanism run.
	o, err := mech.CompensationBonus{}.Run(auditAgents(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Payments {
		if math.Abs(res.Payments[i]-o.Payment[i]) > 1e-12 {
			t.Errorf("payment[%d] = %v, want %v", i, res.Payments[i], o.Payment[i])
		}
	}
}

func TestAuditedPaymentsToleratesMinority(t *testing.T) {
	auditors := []Auditor{
		{ID: "a"}, {ID: "b", Corrupt: true}, {ID: "c"},
		{ID: "d", Corrupt: true, Perturb: 0.5}, {ID: "e"},
	}
	res, err := AuditedPayments(auditAgents(), 8, auditors, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dissenters) != 2 {
		t.Errorf("dissenters = %v, want b and d", res.Dissenters)
	}
	seen := map[string]bool{}
	for _, d := range res.Dissenters {
		seen[d] = true
	}
	if !seen["b"] || !seen["d"] {
		t.Errorf("dissenters = %v", res.Dissenters)
	}
}

func TestAuditedPaymentsFailsOnMajorityCorruptDisagreeing(t *testing.T) {
	// Corrupt auditors with *different* perturbations cannot form a
	// majority either, so consensus fails.
	auditors := []Auditor{
		{ID: "a"},
		{ID: "b", Corrupt: true, Perturb: 1.2},
		{ID: "c", Corrupt: true, Perturb: 0.7},
	}
	if _, err := AuditedPayments(auditAgents(), 8, auditors, 1e-9); err != ErrNoConsensus {
		t.Errorf("err = %v, want ErrNoConsensus", err)
	}
}

func TestAuditedPaymentsColludingMajorityWins(t *testing.T) {
	// Documented limitation: a colluding strict majority defeats the
	// vote. The test pins the behaviour so it is explicit.
	auditors := []Auditor{
		{ID: "a"},
		{ID: "b", Corrupt: true, Perturb: 1.5},
		{ID: "c", Corrupt: true, Perturb: 1.5},
	}
	res, err := AuditedPayments(auditAgents(), 8, auditors, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dissenters) != 1 || res.Dissenters[0] != "a" {
		t.Errorf("dissenters = %v, want the honest minority", res.Dissenters)
	}
}

func TestAuditedPaymentsErrors(t *testing.T) {
	if _, err := AuditedPayments(auditAgents(), 8, nil, 0); err == nil {
		t.Error("expected error for empty panel")
	}
	bad := []mech.Agent{{True: 1, Bid: 1, Exec: 1}}
	if _, err := AuditedPayments(bad, 8, []Auditor{{ID: "a"}}, 0); err == nil {
		t.Error("expected error for invalid agents")
	}
}
