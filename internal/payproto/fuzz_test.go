package payproto

import (
	"testing"

	"repro/internal/numeric"
)

// FuzzShareReconstruct checks the secret-sharing round trip for
// arbitrary secrets and share counts.
func FuzzShareReconstruct(f *testing.F) {
	f.Add(uint64(0), uint(2), uint64(1))
	f.Add(uint64(123456789), uint(5), uint64(42))
	f.Add(uint64(P-1), uint(10), uint64(7))
	f.Fuzz(func(t *testing.T, secret uint64, m uint, seed uint64) {
		secret %= P
		shares := int(m%14) + 2
		out := Share(secret, shares, numeric.NewRand(seed))
		got, err := Reconstruct(out)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("round trip %d -> %d with %d shares", secret, got, shares)
		}
		for _, s := range out {
			if s >= P {
				t.Fatalf("share %d out of field", s)
			}
		}
	})
}

// FuzzEncodeDecode checks fixed-point encoding stability.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(123456.789)
	f.Fuzz(func(t *testing.T, v float64) {
		enc, err := Encode(v)
		if err != nil {
			return // out-of-range inputs must error, not panic
		}
		dec := Decode(enc)
		if diff := dec - v; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("Encode/Decode drift: %v -> %v", v, dec)
		}
	})
}

// FuzzCommitVerify checks that commitments verify their own opening
// and reject tampered values.
func FuzzCommitVerify(f *testing.F) {
	f.Add(1.0, uint64(1), 2.0)
	f.Fuzz(func(t *testing.T, v float64, seed uint64, other float64) {
		c, op, err := Commit(v, numeric.NewRand(seed))
		if err != nil {
			return
		}
		if !c.Verify(op) {
			t.Fatal("own opening rejected")
		}
		if other != v {
			forged := op
			forged.Value = other
			if c.Verify(forged) {
				t.Fatalf("forged value %v accepted for commitment to %v", other, v)
			}
		}
	})
}
