package payproto

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Commitment is a hiding, binding commitment to a bid: the agent
// publishes Digest = SHA-256(salt || value) before the bidding
// deadline and reveals (salt, value) afterwards. Sealed bidding
// removes the coordinator's ability to leak early bids to late
// bidders — a practical hardening of the paper's one-shot protocol.
type Commitment struct {
	// Digest is the published commitment.
	Digest [32]byte
}

// Opening is the reveal message for a commitment.
type Opening struct {
	// Salt is the 32-byte blinding value.
	Salt [32]byte
	// Value is the committed bid.
	Value float64
}

// Commit creates a commitment to value with fresh randomness from
// rng. It returns the commitment (publish now) and the opening (keep
// private, reveal later).
func Commit(value float64, rng *numeric.Rand) (Commitment, Opening, error) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return Commitment{}, Opening{}, fmt.Errorf("payproto: cannot commit to %g", value)
	}
	if rng == nil {
		return Commitment{}, Opening{}, errors.New("payproto: nil rng")
	}
	var op Opening
	op.Value = value
	for i := 0; i < 32; i += 8 {
		binary.LittleEndian.PutUint64(op.Salt[i:], rng.Uint64())
	}
	return Commitment{Digest: digest(op)}, op, nil
}

// digest computes SHA-256(salt || value-bits).
func digest(op Opening) [32]byte {
	var buf [40]byte
	copy(buf[:32], op.Salt[:])
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(op.Value))
	return sha256.Sum256(buf[:])
}

// Verify reports whether the opening matches the commitment, in
// constant time over the digest comparison.
func (c Commitment) Verify(op Opening) bool {
	d := digest(op)
	return subtle.ConstantTimeCompare(c.Digest[:], d[:]) == 1
}

// SealedRound runs a commit-reveal bidding round: every agent first
// commits, then reveals; openings that fail verification are
// rejected. It returns the verified bids in agent order and an error
// naming the first agent whose reveal did not match its commitment.
func SealedRound(commitments []Commitment, openings []Opening) ([]float64, error) {
	if len(commitments) != len(openings) {
		return nil, fmt.Errorf("payproto: %d openings for %d commitments",
			len(openings), len(commitments))
	}
	bids := make([]float64, len(openings))
	for i, op := range openings {
		if !commitments[i].Verify(op) {
			return nil, fmt.Errorf("payproto: agent %d reveal does not match its commitment", i)
		}
		bids[i] = op.Value
	}
	return bids, nil
}
