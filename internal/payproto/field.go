// Package payproto implements the paper's stated future work:
// "distributed handling of payments and the agents' privacy". It
// provides two building blocks:
//
//   - additive secret sharing over the Mersenne prime field 2^61-1,
//     with a secure-sum protocol that lets the coordinator learn only
//     the aggregate sum(1/b_i) needed by the PR algorithm, never an
//     individual bid, as long as at least one share server is honest;
//   - redundant payment computation by a panel of auditors with
//     majority voting, tolerating any minority of corrupted auditors.
package payproto

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// P is the field modulus, the Mersenne prime 2^61 - 1.
const P = (1 << 61) - 1

// scale is the fixed-point scale for encoding real values into the
// field: ~9 decimal digits of fraction.
const scale = 1 << 30

// addMod returns (a + b) mod P for a, b < P.
func addMod(a, b uint64) uint64 {
	s := a + b // < 2^62, no overflow
	if s >= P {
		s -= P
	}
	return s
}

// subMod returns (a - b) mod P for a, b < P.
func subMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// randField draws a uniform field element.
func randField(rng *numeric.Rand) uint64 {
	for {
		v := rng.Uint64() & ((1 << 61) - 1) // 61 uniform bits
		if v < P {
			return v
		}
	}
}

// Encode converts a nonnegative real value into a fixed-point field
// element. Values must fit: v*scale < P.
func Encode(v float64) (uint64, error) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("payproto: cannot encode %g", v)
	}
	x := v * scale
	if x >= P {
		return 0, fmt.Errorf("payproto: value %g too large to encode", v)
	}
	return uint64(math.Round(x)), nil
}

// Decode converts a fixed-point field element back to a real value.
// The element is interpreted as a nonnegative quantity (no wraparound
// handling), which suffices for sums of encoded nonnegative values.
func Decode(x uint64) float64 { return float64(x) / scale }

// Share splits a field element into m additive shares that are
// individually uniform: any m-1 of them reveal nothing about the
// secret. It panics if m < 2 or the secret is out of range.
func Share(secret uint64, m int, rng *numeric.Rand) []uint64 {
	if m < 2 {
		panic("payproto: need at least 2 shares")
	}
	if secret >= P {
		panic("payproto: secret out of field range")
	}
	shares := make([]uint64, m)
	var sum uint64
	for i := 0; i < m-1; i++ {
		shares[i] = randField(rng)
		sum = addMod(sum, shares[i])
	}
	shares[m-1] = subMod(secret, sum)
	return shares
}

// Reconstruct recombines additive shares into the secret.
func Reconstruct(shares []uint64) (uint64, error) {
	if len(shares) == 0 {
		return 0, errors.New("payproto: no shares")
	}
	var sum uint64
	for _, s := range shares {
		if s >= P {
			return 0, errors.New("payproto: share out of field range")
		}
		sum = addMod(sum, s)
	}
	return sum, nil
}
