package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// sampleRequests covers every request op with non-trivial field
// values (including a bid whose float bits exercise all bytes).
func sampleRequests() []Request {
	return []Request{
		{Op: OpAdd, Req: 1, T: 0.1234567891011},
		{Op: OpRebid, Req: 2, ID: 77, T: math.Pi},
		{Op: OpLeave, Req: 3, ID: 1 << 40},
		{Op: OpRate, Req: 4, T: 1e6},
		{Op: OpSeal, Req: 5},
		{Op: OpEpoch, Req: 6},
		{Op: OpLoad, Req: 7, ID: 0},
		{Op: OpPayment, Req: 8, ID: 999},
		{Op: OpPing, Req: 1 << 63},
		{Op: OpSubscribe, Req: 10},
	}
}

// sampleResponses covers every response op and status shape.
func sampleResponses() []Response {
	return []Response{
		{Op: OpAdd, Req: 1, Status: StatusOK, ID: 42},
		{Op: OpAdd, Req: 2, Status: StatusBadValue},
		{Op: OpRebid, Req: 3, Status: StatusOK},
		{Op: OpRebid, Req: 4, Status: StatusUnknownID},
		{Op: OpLeave, Req: 5, Status: StatusOK},
		{Op: OpRate, Req: 6, Status: StatusOK},
		{Op: OpSeal, Req: 7, Status: StatusOK, Epoch: 12, N: 3, Rate: 20, Sum: 1.5, Value: 266.6666},
		{Op: OpEpoch, Req: 8, Status: StatusOK, Epoch: 1, N: 0, Rate: 0, Sum: 0, Value: 0},
		{Op: OpSealNotify, Req: 0, Status: StatusOK, Epoch: 99, N: 7, Rate: 5, Sum: 2, Value: 12.5},
		{Op: OpLoad, Req: 9, Status: StatusOK, Epoch: 12, Value: 0.25},
		{Op: OpLoad, Req: 10, Status: StatusUnknownID},
		{Op: OpPayment, Req: 11, Status: StatusOK, Value: 13.3, Value2: 44.4},
		{Op: OpPing, Req: 12, Status: StatusOK},
		{Op: OpSubscribe, Req: 13, Status: StatusOK},
		{Op: OpRebid, Req: 14, Status: StatusOverloaded},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, q := range sampleRequests() {
		buf, err := AppendRequest(nil, &q)
		if err != nil {
			t.Fatalf("AppendRequest(%+v): %v", q, err)
		}
		payload, n, err := Frame(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("Frame: n=%d err=%v (want %d, nil)", n, err, len(buf))
		}
		var got Request
		if err := DecodeRequest(payload, &got); err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip: got %+v want %+v", got, q)
		}
		// Re-encoding the decoded request must reproduce the exact
		// frame bytes (the canonical-encoding property the fuzzer
		// also pins).
		re, err := AppendRequest(nil, &got)
		if err != nil || !bytes.Equal(re, buf) {
			t.Fatalf("re-encode diverged: %x vs %x (err %v)", re, buf, err)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, p := range sampleResponses() {
		buf, err := AppendResponse(nil, &p)
		if err != nil {
			t.Fatalf("AppendResponse(%+v): %v", p, err)
		}
		payload, n, err := Frame(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("Frame: n=%d err=%v", n, err)
		}
		var got Response
		if err := DecodeResponse(payload, &got); err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", p, err)
		}
		want := p
		if p.Status != StatusOK {
			// Non-OK responses carry no body: field values are not
			// round-tripped.
			want = Response{Op: p.Op, Req: p.Req, Status: p.Status}
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		re, err := AppendResponse(nil, &got)
		if err != nil || !bytes.Equal(re, buf) {
			t.Fatalf("re-encode diverged: %x vs %x (err %v)", re, buf, err)
		}
	}
}

func TestFrameErrors(t *testing.T) {
	good, _ := AppendRequest(nil, &Request{Op: OpPing, Req: 1})

	// Incomplete prefixes: need more bytes, no error.
	for cut := 0; cut < len(good); cut++ {
		payload, n, err := Frame(good[:cut])
		if payload != nil || n != 0 || err != nil {
			t.Fatalf("cut=%d: got (%v,%d,%v), want incomplete", cut, payload, n, err)
		}
	}

	// Zero-length payload.
	var zero [FrameLen]byte
	if _, _, err := Frame(zero[:]); err != ErrFrameEmpty {
		t.Fatalf("zero-length: err=%v", err)
	}

	// Oversized length prefix rejected before buffering.
	big := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(big, MaxPayload+1)
	if _, _, err := Frame(big); err != ErrFrameTooBig {
		t.Fatalf("oversized: err=%v", err)
	}

	// Flipped payload bit fails the CRC.
	bad := append([]byte(nil), good...)
	bad[FrameLen] ^= 0x40
	if _, _, err := Frame(bad); err != ErrFrameCRC {
		t.Fatalf("corrupt: err=%v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	var q Request
	var p Response

	// Response-only op in a request.
	notify, _ := AppendResponse(nil, &Response{Op: OpSealNotify, Status: StatusOK, Epoch: 1})
	payload, _, err := Frame(notify)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequest(payload, &q); err != ErrUnknownOp {
		t.Fatalf("OpSealNotify as request: err=%v", err)
	}

	// Wrong body size for the op.
	add, _ := AppendRequest(nil, &Request{Op: OpAdd, Req: 1, T: 1})
	payload, _, _ = Frame(add)
	if err := DecodeRequest(payload[:len(payload)-1], &q); err != ErrPayloadSize {
		t.Fatalf("truncated add: err=%v", err)
	}
	if err := DecodeRequest(append(append([]byte(nil), payload...), 0), &q); err != ErrPayloadSize {
		t.Fatalf("trailing byte: err=%v", err)
	}
	if err := DecodeRequest(nil, &q); err != ErrPayloadSize {
		t.Fatalf("empty: err=%v", err)
	}

	if err := DecodeResponse([]byte{OpAdd}, &p); err != ErrPayloadSize {
		t.Fatalf("short response: err=%v", err)
	}
	if err := DecodeResponse([]byte{200, 0, 0, 0, 0, 0, 0, 0, 0, 0}, &p); err != ErrUnknownOp {
		t.Fatalf("unknown response op: err=%v", err)
	}
	// AppendRequest refuses non-request ops.
	if _, err := AppendRequest(nil, &Request{Op: OpSealNotify}); err != ErrUnknownOp {
		t.Fatalf("append response-only op: err=%v", err)
	}
}

// TestReaderStream feeds a concatenated stream through a Reader in
// adversarially small chunks and checks every frame comes out intact
// and in order.
func TestReaderStream(t *testing.T) {
	var stream []byte
	reqs := sampleRequests()
	for i := range reqs {
		var err error
		stream, err = AppendRequest(stream, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, chunk := range []int{1, 2, 3, 7, 16, len(stream)} {
		rd := NewReader(0)
		src := &chunkReader{data: stream, chunk: chunk}
		var got []Request
		for {
			payload, err := rd.Next()
			if err != nil {
				t.Fatalf("chunk %d: Next: %v", chunk, err)
			}
			if payload == nil {
				n, err := rd.Fill(src)
				if n == 0 && err != nil {
					break // EOF
				}
				continue
			}
			var q Request
			if err := DecodeRequest(payload, &q); err != nil {
				t.Fatalf("chunk %d: decode: %v", chunk, err)
			}
			got = append(got, q)
		}
		if len(got) != len(reqs) {
			t.Fatalf("chunk %d: got %d frames, want %d", chunk, len(got), len(reqs))
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				t.Fatalf("chunk %d: frame %d: got %+v want %+v", chunk, i, got[i], reqs[i])
			}
		}
	}
}

type chunkReader struct {
	data  []byte
	chunk int
	off   int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.off >= len(c.data) {
		return 0, errEOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data)-c.off {
		n = len(c.data) - c.off
	}
	copy(p, c.data[c.off:c.off+n])
	c.off += n
	return n, nil
}

var errEOF = &ProtocolError{"test EOF"}

// TestWireEncodeAllocFree pins the encode hot path at zero
// allocations once the destination buffer has capacity.
func TestWireEncodeAllocFree(t *testing.T) {
	q := Request{Op: OpRebid, Req: 9, ID: 3, T: 1.25}
	p := Response{Op: OpRebid, Req: 9, Status: StatusOK}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		var err error
		if buf, err = AppendRequest(buf, &q); err != nil {
			t.Fatal(err)
		}
		if buf, err = AppendResponse(buf, &p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("encode allocates %.1f/op, want 0", n)
	}
}

// TestWireDecodeAllocFree pins the frame-scan + decode hot path at
// zero allocations.
func TestWireDecodeAllocFree(t *testing.T) {
	var stream []byte
	var err error
	stream, err = AppendRequest(stream, &Request{Op: OpRebid, Req: 1, ID: 4, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream, err = AppendResponse(stream, &Response{Op: OpSeal, Req: 2, Status: StatusOK, Epoch: 3, N: 4, Rate: 5, Sum: 6, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	var q Request
	var p Response
	if n := testing.AllocsPerRun(200, func() {
		payload, n1, err := Frame(stream)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeRequest(payload, &q); err != nil {
			t.Fatal(err)
		}
		payload, _, err = Frame(stream[n1:])
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeResponse(payload, &p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("decode allocates %.1f/op, want 0", n)
	}
}
