package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame scanner and both
// payload decoders. Invariants pinned:
//
//   - no panic, and no read outside the handed slice (the fuzzer's
//     address sanitizer would catch one);
//   - every structural failure is one of the typed *ProtocolError
//     sentinels;
//   - the scanner's progress claim is consistent: n > 0 only with a
//     non-nil payload that lies inside the consumed frame;
//   - any payload that decodes successfully re-encodes to the exact
//     frame bytes just consumed (canonical encoding, both directions).
func FuzzWireDecode(f *testing.F) {
	// Well-formed frames of every op/status shape, plus structural
	// mutants, seed the corpus.
	var seed []byte
	for _, q := range sampleRequests() {
		seed, _ = AppendRequest(seed, &q)
	}
	f.Add(seed)
	var stream []byte
	for _, p := range sampleResponses() {
		stream, _ = AppendResponse(stream, &p)
	}
	f.Add(stream)
	one, _ := AppendRequest(nil, &Request{Op: OpRebid, Req: 7, ID: 3, T: 2.5})
	f.Add(one)
	f.Add(one[:len(one)-1])                  // truncated tail
	f.Add(append([]byte(nil), one[1:]...))   // shifted start
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})    // zero-length payload
	f.Add([]byte{255, 255, 0, 0, 1, 2, 3, 4}) // oversized length prefix
	corrupt := append([]byte(nil), one...)
	corrupt[FrameLen] ^= 0x01
	f.Add(corrupt) // CRC mismatch
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b := data
		for len(b) > 0 {
			payload, n, err := Frame(b)
			if err != nil {
				if _, ok := err.(*ProtocolError); !ok {
					t.Fatalf("Frame returned untyped error %T: %v", err, err)
				}
				if payload != nil || n != 0 {
					t.Fatalf("Frame error with progress: payload=%v n=%d", payload, n)
				}
				return
			}
			if n == 0 {
				if payload != nil {
					t.Fatalf("incomplete frame with non-nil payload")
				}
				return // need more bytes
			}
			if n < FrameLen+1 || n > len(b) || len(payload) != n-FrameLen {
				t.Fatalf("inconsistent scan: n=%d len(payload)=%d len(b)=%d", n, len(payload), len(b))
			}
			frame := b[:n]

			var q Request
			if derr := DecodeRequest(payload, &q); derr == nil {
				re, rerr := AppendRequest(nil, &q)
				if rerr != nil || !bytes.Equal(re, frame) {
					t.Fatalf("request re-encode diverged: %x vs %x (err %v)", re, frame, rerr)
				}
			} else if _, ok := derr.(*ProtocolError); !ok {
				t.Fatalf("DecodeRequest returned untyped error %T: %v", derr, derr)
			}

			var p Response
			if derr := DecodeResponse(payload, &p); derr == nil {
				re, rerr := AppendResponse(nil, &p)
				if rerr != nil || !bytes.Equal(re, frame) {
					t.Fatalf("response re-encode diverged: %x vs %x (err %v)", re, frame, rerr)
				}
			} else if _, ok := derr.(*ProtocolError); !ok {
				t.Fatalf("DecodeResponse returned untyped error %T: %v", derr, derr)
			}

			b = b[n:]
		}
	})
}
