package wire

import "testing"

// BenchmarkWireEncode measures the framed-request encode hot path
// (append into a reused buffer) — must be 0 allocs/op.
func BenchmarkWireEncode(b *testing.B) {
	q := Request{Op: OpRebid, Req: 1, ID: 42, T: 2.5}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		q.Req = uint64(i)
		buf, _ = AppendRequest(buf, &q)
	}
	if len(buf) == 0 {
		b.Fatal("encoded nothing")
	}
}

// BenchmarkWireDecode measures the frame-scan + decode hot path — must
// be 0 allocs/op.
func BenchmarkWireDecode(b *testing.B) {
	frame, err := AppendRequest(nil, &Request{Op: OpRebid, Req: 1, ID: 42, T: 2.5})
	if err != nil {
		b.Fatal(err)
	}
	var q Request
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, _, err := Frame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeRequest(payload, &q); err != nil {
			b.Fatal(err)
		}
	}
	if q.ID != 42 {
		b.Fatal("decode corrupted")
	}
}
