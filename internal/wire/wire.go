// Package wire is the framed binary protocol between the networked
// serving front end (internal/server) and its clients
// (internal/lbclient): bid admission (add/rebid/leave), arrival-rate
// changes, epoch seals, sealed-epoch queries (dispatch decisions,
// payment settlement) and epoch-seal notifications, over any byte
// stream — in practice a TCP connection.
//
// Framing reuses the WAL's idiom. Every message is
//
//	[u32 payload length][u32 CRC32C(payload)][payload]
//
// with little-endian integers throughout and payload length in
// (0, MaxPayload]. The payload starts with a one-byte op, then the
// u64 request id, then op-specific fields:
//
//	request            payload after [op][req u64]
//	OpAdd              f64 bid t
//	OpRebid            u64 id, f64 bid t
//	OpLeave            u64 id
//	OpRate             f64 rate
//	OpSeal             —
//	OpEpoch            —
//	OpLoad             u64 id
//	OpPayment          u64 id
//	OpPing             —
//	OpSubscribe        —
//
//	response           payload after [op][req u64][status]
//	OpAdd              u64 id                      (StatusOK only)
//	OpRebid/OpLeave    —
//	OpRate/OpPing      —
//	OpSubscribe        —
//	OpSeal/OpEpoch     u64 epoch, u64 n, f64 rate, f64 S, f64 L*
//	OpSealNotify       u64 epoch, u64 n, f64 rate, f64 S, f64 L*
//	OpLoad             u64 epoch, f64 x
//	OpPayment          f64 compensation, f64 bonus
//
// A response with Status != StatusOK carries no body regardless of
// op. OpSealNotify is the one server-initiated message: a subscribed
// connection receives it with request id 0 when an epoch sealed since
// the connection's previous wakeup; every other response echoes the
// request id it answers, and responses on one connection arrive in
// request order (the pipelining contract).
//
// Encode appends to a caller-provided buffer and decode parses into a
// caller-provided flat struct, so both directions are allocation-free
// in steady state (pinned by AllocsPerRun guards). The decoder is
// fuzzed against truncated, corrupt and oversized frames: it returns
// typed *ProtocolError values and never panics or reads outside the
// frame it was handed.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// FrameLen is the per-message framing overhead: u32 payload length
	// plus u32 CRC32C of the payload.
	FrameLen = 8
	// MaxPayload bounds a payload: every defined message fits well
	// under it, so a larger length prefix is a corrupt or hostile
	// stream, rejected before any allocation or over-read.
	MaxPayload = 64
	// MaxFrame is the largest whole message on the wire.
	MaxFrame = FrameLen + MaxPayload
)

// Request ops. The wire values are frozen: a client and server from
// different builds must agree on them.
const (
	OpAdd       = byte(1)  // admit an agent bidding t
	OpRebid     = byte(2)  // change a live agent's bid
	OpLeave     = byte(3)  // deregister an agent
	OpRate      = byte(4)  // change the total arrival rate R
	OpSeal      = byte(5)  // seal an epoch and return its aggregates
	OpEpoch     = byte(6)  // read the current sealed epoch's aggregates
	OpLoad      = byte(7)  // sealed PR allocation x_i for one agent
	OpPayment   = byte(8)  // sealed compensation-and-bonus payment
	OpPing      = byte(9)  // round trip, no effect
	OpSubscribe = byte(10) // request OpSealNotify pushes on this conn

	// OpSealNotify is response-only: the server pushes it (request id
	// 0) to subscribed connections after an epoch seals. A request
	// carrying this op is rejected by DecodeRequest.
	OpSealNotify = byte(11)
)

// Response statuses.
const (
	StatusOK         = byte(0)
	StatusBadValue   = byte(1) // bid/rate rejected (non-positive or non-finite)
	StatusUnknownID  = byte(2) // id never assigned or no longer live
	StatusOverloaded = byte(3) // per-connection inflight bound exceeded; retry
	StatusBadRequest = byte(4) // op not servable in this context
)

// crcTable is the Castagnoli polynomial (CRC32C), hardware-accelerated
// on amd64/arm64 — the same checksum the WAL frames with.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Request is one decoded request. T doubles as the rate for OpRate.
type Request struct {
	Op  byte
	Req uint64
	ID  uint64
	T   float64
}

// Response is one decoded response; which fields are meaningful
// depends on Op and Status (see the package comment). Value carries
// L* for seal/epoch ops, x for OpLoad and the compensation for
// OpPayment; Value2 carries the OpPayment bonus.
type Response struct {
	Op     byte
	Req    uint64
	Status byte
	ID     uint64
	Epoch  uint64
	N      uint64
	Rate   float64
	Sum    float64
	Value  float64
	Value2 float64
}

// ProtocolError is the typed decode/framing error: every malformed
// input the decoder can see maps to one of the predeclared instances
// below, so the hot path never formats or allocates an error.
type ProtocolError struct{ reason string }

func (e *ProtocolError) Error() string { return "wire: " + e.reason }

var (
	// ErrFrameEmpty rejects a zero-length payload frame.
	ErrFrameEmpty = &ProtocolError{"zero-length frame payload"}
	// ErrFrameTooBig rejects a length prefix over MaxPayload —
	// corruption (or hostility), not a message to buffer for.
	ErrFrameTooBig = &ProtocolError{"frame payload length exceeds MaxPayload"}
	// ErrFrameCRC rejects a payload whose CRC32C does not match.
	ErrFrameCRC = &ProtocolError{"frame CRC mismatch"}
	// ErrPayloadSize rejects a payload whose length does not match its
	// op (truncated or trailing bytes).
	ErrPayloadSize = &ProtocolError{"payload size does not match its op"}
	// ErrUnknownOp rejects an op byte neither side defines (including
	// OpSealNotify in a request, which is response-only).
	ErrUnknownOp = &ProtocolError{"unknown op"}
	// ErrBufferFull reports a Reader whose buffer is full without
	// containing one whole frame — impossible for a well-formed peer
	// when the buffer is at least MaxFrame bytes.
	ErrBufferFull = &ProtocolError{"read buffer full without a whole frame"}
)

// StatusError is a non-OK response surfaced as an error by the client
// library.
type StatusError struct {
	Op     byte
	Status byte
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("wire: op %d failed: %s", e.Op, StatusString(e.Status))
}

// IsOverloaded reports whether err is a StatusOverloaded response —
// the server's typed backpressure signal; the request was not applied
// and can be retried after draining.
func IsOverloaded(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Status == StatusOverloaded
}

// StatusString names a status byte.
func StatusString(s byte) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadValue:
		return "bad value"
	case StatusUnknownID:
		return "unknown id"
	case StatusOverloaded:
		return "overloaded"
	case StatusBadRequest:
		return "bad request"
	}
	return fmt.Sprintf("status %d", s)
}

// requestBody returns the op-specific byte count after [op][req u64],
// or -1 for an op that is not a request.
func requestBody(op byte) int {
	switch op {
	case OpAdd, OpRate, OpLeave, OpLoad, OpPayment:
		return 8
	case OpRebid:
		return 16
	case OpSeal, OpEpoch, OpPing, OpSubscribe:
		return 0
	}
	return -1
}

// responseBody returns the op-specific byte count after
// [op][req u64][status], or -1 for an unknown op. A non-OK status
// always has an empty body.
func responseBody(op, status byte) int {
	if status != StatusOK {
		switch op {
		case OpAdd, OpRebid, OpLeave, OpRate, OpSeal, OpEpoch, OpLoad,
			OpPayment, OpPing, OpSubscribe, OpSealNotify:
			return 0
		}
		return -1
	}
	switch op {
	case OpAdd:
		return 8
	case OpRebid, OpLeave, OpRate, OpPing, OpSubscribe:
		return 0
	case OpSeal, OpEpoch, OpSealNotify:
		return 40
	case OpLoad, OpPayment:
		return 16
	}
	return -1
}

// AppendRequest encodes q as one framed message appended to dst. It
// allocates only when dst lacks capacity; an op that is not a request
// returns dst unchanged with ErrUnknownOp.
func AppendRequest(dst []byte, q *Request) ([]byte, error) {
	if requestBody(q.Op) < 0 {
		return dst, ErrUnknownOp
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, q.Op)
	dst = binary.LittleEndian.AppendUint64(dst, q.Req)
	switch q.Op {
	case OpAdd, OpRate:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.T))
	case OpRebid:
		dst = binary.LittleEndian.AppendUint64(dst, q.ID)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.T))
	case OpLeave, OpLoad, OpPayment:
		dst = binary.LittleEndian.AppendUint64(dst, q.ID)
	}
	return sealFrame(dst, start), nil
}

// AppendResponse encodes p as one framed message appended to dst. It
// allocates only when dst lacks capacity.
func AppendResponse(dst []byte, p *Response) ([]byte, error) {
	if responseBody(p.Op, p.Status) < 0 {
		return dst, ErrUnknownOp
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, p.Op)
	dst = binary.LittleEndian.AppendUint64(dst, p.Req)
	dst = append(dst, p.Status)
	if p.Status == StatusOK {
		switch p.Op {
		case OpAdd:
			dst = binary.LittleEndian.AppendUint64(dst, p.ID)
		case OpSeal, OpEpoch, OpSealNotify:
			dst = binary.LittleEndian.AppendUint64(dst, p.Epoch)
			dst = binary.LittleEndian.AppendUint64(dst, p.N)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Rate))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Sum))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Value))
		case OpLoad:
			dst = binary.LittleEndian.AppendUint64(dst, p.Epoch)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Value))
		case OpPayment:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Value))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Value2))
		}
	}
	return sealFrame(dst, start), nil
}

// sealFrame fills the reserved 8-byte header for the frame that
// starts at start: payload length and CRC32C.
func sealFrame(dst []byte, start int) []byte {
	payload := dst[start+FrameLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// Frame scans one message from the front of b. It returns the
// CRC-verified payload (a subslice of b — zero copy, valid while b
// is) and the whole frame's byte count. n == 0 with a nil error means
// b holds no complete frame yet: read more bytes. A structural error
// (zero or oversized length, CRC mismatch) is a *ProtocolError; the
// scan never reads past len(b).
func Frame(b []byte) (payload []byte, n int, err error) {
	if len(b) < FrameLen {
		return nil, 0, nil
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen == 0 {
		return nil, 0, ErrFrameEmpty
	}
	if plen > MaxPayload {
		return nil, 0, ErrFrameTooBig
	}
	if len(b) < FrameLen+plen {
		return nil, 0, nil
	}
	payload = b[FrameLen : FrameLen+plen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, ErrFrameCRC
	}
	return payload, FrameLen + plen, nil
}

// DecodeRequest parses a CRC-verified payload into q. Malformed
// payloads (wrong size for the op, unknown or response-only op) are
// typed *ProtocolError values; the parse never reads outside p.
func DecodeRequest(p []byte, q *Request) error {
	if len(p) < 9 {
		return ErrPayloadSize
	}
	op := p[0]
	body := requestBody(op)
	if body < 0 {
		return ErrUnknownOp
	}
	if len(p) != 9+body {
		return ErrPayloadSize
	}
	q.Op = op
	q.Req = binary.LittleEndian.Uint64(p[1:])
	q.ID, q.T = 0, 0
	rest := p[9:]
	switch op {
	case OpAdd, OpRate:
		q.T = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	case OpRebid:
		q.ID = binary.LittleEndian.Uint64(rest)
		q.T = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	case OpLeave, OpLoad, OpPayment:
		q.ID = binary.LittleEndian.Uint64(rest)
	}
	return nil
}

// DecodeResponse parses a CRC-verified payload into r. Malformed
// payloads are typed *ProtocolError values; the parse never reads
// outside p.
func DecodeResponse(p []byte, r *Response) error {
	if len(p) < 10 {
		return ErrPayloadSize
	}
	op, status := p[0], p[9]
	body := responseBody(op, status)
	if body < 0 {
		return ErrUnknownOp
	}
	if len(p) != 10+body {
		return ErrPayloadSize
	}
	*r = Response{Op: op, Req: binary.LittleEndian.Uint64(p[1:]), Status: status}
	if status != StatusOK {
		return nil
	}
	rest := p[10:]
	switch op {
	case OpAdd:
		r.ID = binary.LittleEndian.Uint64(rest)
	case OpSeal, OpEpoch, OpSealNotify:
		r.Epoch = binary.LittleEndian.Uint64(rest)
		r.N = binary.LittleEndian.Uint64(rest[8:])
		r.Rate = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
		r.Sum = math.Float64frombits(binary.LittleEndian.Uint64(rest[24:]))
		r.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest[32:]))
	case OpLoad:
		r.Epoch = binary.LittleEndian.Uint64(rest)
		r.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	case OpPayment:
		r.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		r.Value2 = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	}
	return nil
}

// Reader scans whole frames out of a byte stream through a fixed
// sliding window: Fill reads more bytes from the source, Next returns
// the next CRC-verified payload as a zero-copy subslice of the window
// (valid until the following Fill). The two-call shape lets a server
// drain every complete frame a wakeup delivered before paying the
// next read syscall.
type Reader struct {
	buf  []byte
	r, w int
}

// NewReader returns a Reader with an n-byte window (minimum MaxFrame,
// so one whole frame always fits).
func NewReader(n int) *Reader {
	if n < MaxFrame {
		n = MaxFrame
	}
	return &Reader{buf: make([]byte, n)}
}

// Fill compacts the unconsumed tail to the front of the window and
// reads once from src into the free space. It returns src.Read's
// count and error verbatim: n may be positive alongside an error, in
// which case the bytes are valid and the error repeats on the next
// Fill.
func (rd *Reader) Fill(src io.Reader) (int, error) {
	if rd.r > 0 {
		rd.w = copy(rd.buf, rd.buf[rd.r:rd.w])
		rd.r = 0
	}
	if rd.w == len(rd.buf) {
		// A full window without a whole frame means the peer sent a
		// frame larger than the window; Next would have rejected any
		// length over MaxPayload, so this needs window < MaxFrame,
		// which NewReader prevents.
		return 0, ErrBufferFull
	}
	n, err := src.Read(rd.buf[rd.w:])
	rd.w += n
	return n, err
}

// Next returns the next complete payload, or (nil, nil) when the
// window holds no whole frame (call Fill). The payload is valid only
// until the next Fill.
func (rd *Reader) Next() ([]byte, error) {
	payload, n, err := Frame(rd.buf[rd.r:rd.w])
	if err != nil || n == 0 {
		return nil, err
	}
	rd.r += n
	return payload, nil
}

// Buffered reports the unconsumed bytes in the window.
func (rd *Reader) Buffered() int { return rd.w - rd.r }
