package parallel

// CacheLine is the assumed cache-line size in bytes. 64 is correct
// for every amd64 and most arm64 parts; on machines with 128-byte
// lines the padding below halves the protection but never breaks
// correctness.
const CacheLine = 64

// PadInt64 is an int64 padded out to a full cache line. Per-worker
// accumulators that live in one contiguous slice — migration
// counters, per-worker tallies, histogram cells — must not share a
// line: a plain []int64 puts eight workers' hot counters on one line
// and every write invalidates the other seven cores' copies (false
// sharing), which BenchmarkForEachBlock makes visible as a multi-x
// slowdown on multicore hosts. A []PadInt64 gives each slot its own
// line at the cost of 56 wasted bytes per slot.
//
// The field is a plain int64, not an atomic: the intended use is
// owner-per-slot accumulation (each worker writes only its slot, a
// single thread merges after the fan-out joins). For cross-thread
// counters use an atomic wrapper such as dispatch's padded in-flight
// counters.
type PadInt64 struct {
	// V is the counter.
	V int64

	_ [CacheLine - 8]byte
}
