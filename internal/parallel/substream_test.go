package parallel

// The per-block-substream pattern: partition work into fixed-size
// blocks, serially derive one numeric.Rand substream per block, then
// fan the blocks out with ForEachBlock. Every random draw is then a
// pure function of (seed, block layout) and never of scheduling, so
// results are byte-identical for any worker count. The swarm engine
// is built on this; rounds' replication harness uses the per-index
// variant. This test pins the composed pattern directly — including
// under -race via make race — at the worker counts the differential
// suites use.

import (
	"testing"

	"repro/internal/numeric"
)

func TestForEachBlockSubstreamWorkerInvariance(t *testing.T) {
	const (
		n     = 1 << 16
		block = 1024
		seed  = 0x5eed
	)
	blocks := (n + block - 1) / block

	run := func(workers int) ([]uint64, []float64) {
		// Serial derivation in block order fixes every block's stream
		// before any worker runs.
		root := numeric.NewRand(seed)
		streams := make([]numeric.Rand, blocks)
		for b := range streams {
			root.SplitInto(&streams[b])
		}
		ints := make([]uint64, n)
		floats := make([]float64, n)
		ForEachBlock(n, block, workers, func(lo, hi int) {
			r := &streams[lo/block]
			for i := lo; i < hi; i++ {
				ints[i] = r.Uint64()
				floats[i] = r.Float64()
			}
		})
		return ints, floats
	}

	wantInts, wantFloats := run(1)
	for _, w := range []int{4, 32} {
		ints, floats := run(w)
		for i := range wantInts {
			if ints[i] != wantInts[i] {
				t.Fatalf("workers=%d: ints[%d] = %#x, workers=1 drew %#x", w, i, ints[i], wantInts[i])
			}
			if floats[i] != wantFloats[i] {
				t.Fatalf("workers=%d: floats[%d] = %v, workers=1 drew %v", w, i, floats[i], wantFloats[i])
			}
		}
	}
}
