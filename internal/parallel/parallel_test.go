package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestForEachSingleWorkerSequential(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker out of order: %v", order)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn called for non-positive n")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Errorf("count = %d", count)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic value %v", r)
		}
	}()
	ForEach(50, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestMapOrder(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	e7 := errors.New("seven")
	e3 := errors.New("three")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, e7
		case 3:
			return 0, e3
		}
		return i, nil
	})
	if err != e3 {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
	// All-success path.
	out, err := MapErr(4, 2, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit worker count ignored")
	}
	if Workers(0) < 1 {
		t.Error("default workers < 1")
	}
}
