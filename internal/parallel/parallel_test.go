package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestForEachSingleWorkerSequential(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker out of order: %v", order)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn called for non-positive n")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Errorf("count = %d", count)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic value %v", r)
		}
	}()
	ForEach(50, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestMapOrder(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	e7 := errors.New("seven")
	e3 := errors.New("three")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, e7
		case 3:
			return 0, e3
		}
		return i, nil
	})
	if err != e3 {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
	// All-success path.
	out, err := MapErr(4, 2, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit worker count ignored")
	}
	if Workers(0) < 1 {
		t.Error("default workers < 1")
	}
}

func TestMapErrFastFailAbandonsUnclaimedWork(t *testing.T) {
	const n = 100000
	var calls atomic.Int64
	_, err := MapErr(n, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got == n {
		t.Errorf("all %d calls ran despite an error at index 0; fast fail did not stop the fan-out", n)
	}
}

func TestMapErrFastFailSerial(t *testing.T) {
	var calls int
	_, err := MapErr(1000, 1, func(i int) (int, error) {
		calls++
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 6 {
		t.Errorf("serial fast fail ran %d calls, want 6", calls)
	}
}

func TestForEachFastFailOnPanic(t *testing.T) {
	const n = 100000
	var calls atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected re-panic")
			}
		}()
		ForEach(n, 4, func(i int) {
			calls.Add(1)
			if i == 0 {
				panic("boom")
			}
		})
	}()
	if got := calls.Load(); got == n {
		t.Errorf("all %d calls ran despite a panic at index 0", n)
	}
}

func TestForEachBlockCoversAllIndicesOnce(t *testing.T) {
	for _, block := range []int{1, 3, 64, 1000, 5000} {
		const n = 1003
		var hits [n]int32
		ForEachBlock(n, block, 8, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("block=%d: bad range [%d, %d)", block, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("block=%d: index %d executed %d times", block, i, h)
			}
		}
	}
}

func TestForEachBlockDefaultBlockAndEmpty(t *testing.T) {
	var total atomic.Int64
	ForEachBlock(10, 0, 2, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 10 {
		t.Errorf("default block covered %d indices, want 10", total.Load())
	}
	called := false
	ForEachBlock(0, 8, 2, func(lo, hi int) { called = true })
	ForEachBlock(-4, 8, 2, func(lo, hi int) { called = true })
	if called {
		t.Error("fn called for non-positive n")
	}
}

func TestForEachBlockPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected re-panic")
		}
		if !strings.Contains(fmt.Sprint(r), "block boom") {
			t.Errorf("panic value %v does not carry the worker panic", r)
		}
	}()
	ForEachBlock(100, 10, 4, func(lo, hi int) { panic("block boom") })
}
