package parallel

import (
	"fmt"
	"sync"
	"testing"
)

// mutexForEach is the previous work-distribution strategy, kept here as
// the benchmark baseline: one mutex round-trip per index.
func mutexForEach(n, workers int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// spin gives each index a small, fixed amount of CPU work so the
// benchmark measures distribution overhead against a realistic cheap
// body rather than an empty closure.
func spin(i int) float64 {
	x := float64(i%97) + 1
	for k := 0; k < 32; k++ {
		x = x*1.0000001 + 1/x
	}
	return x
}

var benchSink float64

// BenchmarkForEach compares the chunked atomic-cursor distribution
// against the mutex-per-index baseline across grain sizes.
func BenchmarkForEach(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		out := make([]float64, n)
		b.Run(fmt.Sprintf("chunked/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ForEach(n, 0, func(j int) { out[j] = spin(j) })
			}
			benchSink = out[n-1]
		})
		b.Run(fmt.Sprintf("mutex/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mutexForEach(n, 0, func(j int) { out[j] = spin(j) })
			}
			benchSink = out[n-1]
		})
	}
}
