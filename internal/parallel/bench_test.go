package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// mutexForEach is the previous work-distribution strategy, kept here as
// the benchmark baseline: one mutex round-trip per index.
func mutexForEach(n, workers int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// spin gives each index a small, fixed amount of CPU work so the
// benchmark measures distribution overhead against a realistic cheap
// body rather than an empty closure.
func spin(i int) float64 {
	x := float64(i%97) + 1
	for k := 0; k < 32; k++ {
		x = x*1.0000001 + 1/x
	}
	return x
}

var benchSink float64
var benchSinkInt int64

// BenchmarkForEach compares the chunked atomic-cursor distribution
// against the mutex-per-index baseline across grain sizes.
func BenchmarkForEach(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		out := make([]float64, n)
		b.Run(fmt.Sprintf("chunked/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ForEach(n, 0, func(j int) { out[j] = spin(j) })
			}
			benchSink = out[n-1]
		})
		b.Run(fmt.Sprintf("mutex/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mutexForEach(n, 0, func(j int) { out[j] = spin(j) })
			}
			benchSink = out[n-1]
		})
	}
}

// BenchmarkForEachBlock measures the block fan-out against per-worker
// accumulator layouts: each block claims a worker slot from a channel
// pool and hammers that slot's counter once per element — the swarm's
// delta-merge access pattern. The "unpadded" variant packs all slots
// into adjacent int64s, so on a multicore host every write
// invalidates the other workers' cache lines (false sharing) and the
// padded variant pulls measurably ahead; on a single core the two
// coincide and the benchmark only shows the dispatch overhead. The
// padded layout (PadInt64) is the false-sharing guard the swarm and
// any future per-worker accumulator should use.
func BenchmarkForEachBlock(b *testing.B) {
	const n, block = 1 << 20, DefaultBlock
	w := Workers(0)
	newSlots := func() chan int {
		slots := make(chan int, w)
		for k := 0; k < w; k++ {
			slots <- k
		}
		return slots
	}
	b.Run(fmt.Sprintf("padded/n=%d", n), func(b *testing.B) {
		acc := make([]PadInt64, w)
		slots := newSlots()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ForEachBlock(n, block, w, func(lo, hi int) {
				s := <-slots
				c := &acc[s]
				for j := lo; j < hi; j++ {
					c.V += int64(j & 7)
				}
				slots <- s
			})
		}
		benchSinkInt = acc[0].V
	})
	b.Run(fmt.Sprintf("unpadded/n=%d", n), func(b *testing.B) {
		acc := make([]int64, w)
		slots := newSlots()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ForEachBlock(n, block, w, func(lo, hi int) {
				s := <-slots
				for j := lo; j < hi; j++ {
					acc[s] += int64(j & 7)
				}
				slots <- s
			})
		}
		benchSinkInt = acc[0]
	})
	b.Run(fmt.Sprintf("dispatch-only/n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		var total atomic.Int64
		for i := 0; i < b.N; i++ {
			ForEachBlock(n, block, w, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}
		benchSinkInt = total.Load()
	})
}
