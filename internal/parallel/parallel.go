// Package parallel provides small, deterministic fan-out helpers for
// the embarrassingly parallel workloads in this repository —
// truthfulness grid searches, collusion scans, parameter sweeps and
// Monte Carlo replications. Results land in their input slots, so
// output order is deterministic regardless of scheduling; panics in
// workers are captured and re-raised in the caller.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker count to use: w if positive, otherwise
// GOMAXPROCS.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across the given number of
// workers (<= 0 means GOMAXPROCS). It blocks until every call
// finishes. If any call panics, ForEach re-panics in the caller with
// the first captured panic value; remaining work that no worker has
// claimed yet is abandoned (fast fail), though chunks already being
// processed run to completion.
func ForEach(n, workers int, fn func(i int)) {
	var stop atomic.Bool
	forEach(n, workers, &stop, fn)
}

// forEach is ForEach with a caller-visible stop flag: once stop is
// set — by a panicking worker or by the caller's fn (MapErr sets it
// on the first error) — no new chunk is claimed from the cursor.
func forEach(n, workers int, stop *atomic.Bool, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n && !stop.Load(); i++ {
			fn(i)
		}
		return
	}
	// Workers claim contiguous blocks of indices from an atomic cursor
	// instead of taking a mutex round-trip per index: with cheap fn
	// bodies the old one-index-at-a-time mutex serialized the whole
	// loop. Blocks of ~1/16th of a fair share keep the tail balanced
	// when per-index cost is skewed while amortizing the atomic op.
	chunk := n / (w * 16)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup

		panicOnce sync.Once
		panicked  any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					stop.Store(true)
				}
			}()
			for {
				if stop.Load() {
					return
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: worker panic: %v", panicked))
	}
}

// ForEachBlock partitions [0, n) into contiguous blocks of the given
// size and runs fn(lo, hi) for every block across workers. It is the
// cache-blocked variant of ForEach for sweeps whose per-index work is
// tiny (gathering a dense registry shard into an agent vector, filling
// an allocation vector): handing each worker a contiguous range keeps
// the accesses sequential and amortizes the dispatch overhead over the
// whole block instead of paying it per index. A non-positive block
// size uses DefaultBlock. Panic propagation and fast-fail follow
// ForEach.
func ForEachBlock(n, block, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if block <= 0 {
		block = DefaultBlock
	}
	blocks := (n + block - 1) / block
	ForEach(blocks, workers, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// DefaultBlock is the block size ForEachBlock uses when the caller
// passes a non-positive one: 4096 float64-sized elements per block is
// a few pages of sequential work, enough to hide the per-block
// dispatch cost without starving the tail of parallelism.
const DefaultBlock = 4096

// Map applies fn to every index in [0, n) across workers and returns
// the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr applies fn to every index and returns the results in index
// order along with the lowest-index error encountered. The first
// error stops the fan-out (fast fail): chunks already claimed run to
// completion — so every index below the failing one is evaluated and
// the lowest-index error is well-defined — but unclaimed work is
// abandoned, and out slots that never ran hold zero values.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var stop atomic.Bool
	forEach(n, workers, &stop, func(i int) {
		out[i], errs[i] = fn(i)
		if errs[i] != nil {
			stop.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
