// Package parallel provides small, deterministic fan-out helpers for
// the embarrassingly parallel workloads in this repository —
// truthfulness grid searches, collusion scans, parameter sweeps and
// Monte Carlo replications. Results land in their input slots, so
// output order is deterministic regardless of scheduling; panics in
// workers are captured and re-raised in the caller.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers returns the worker count to use: w if positive, otherwise
// GOMAXPROCS.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across the given number of
// workers (<= 0 means GOMAXPROCS). It blocks until every call
// finishes. If any call panics, ForEach re-panics in the caller with
// the first captured panic value.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup

		panicOnce sync.Once
		panicked  any
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: worker panic: %v", panicked))
	}
}

// Map applies fn to every index in [0, n) across workers and returns
// the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr applies fn to every index and returns the results in index
// order along with the first (lowest-index) error encountered. All
// calls run to completion even when some fail.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
