package latency

import (
	"fmt"
	"math"
)

// Piecewise is a convex piecewise-linear latency function: l(0) =
// Intercept, and on the k-th segment (between Breaks[k] and
// Breaks[k+1], the last segment extending to +Inf) the latency grows
// with slope Slopes[k]. Slopes must be nonnegative and nondecreasing,
// which keeps the total latency convex. It models computers whose
// congestion response steepens at utilization knees — e.g. flat until
// a cache or memory-bandwidth cliff, then steep.
//
// Construct values with NewPiecewise, which validates the shape.
type Piecewise struct {
	// Intercept is l(0) >= 0.
	Intercept float64
	// Breaks are the segment start points; Breaks[0] must be 0 and
	// the sequence strictly increasing.
	Breaks []float64
	// Slopes holds one slope per segment, nonnegative and
	// nondecreasing, with Slopes[len-1] > 0 so the latency eventually
	// grows.
	Slopes []float64
}

// NewPiecewise validates and returns a piecewise-linear latency model.
func NewPiecewise(intercept float64, breaks, slopes []float64) (Piecewise, error) {
	p := Piecewise{Intercept: intercept, Breaks: breaks, Slopes: slopes}
	if intercept < 0 || math.IsNaN(intercept) {
		return p, fmt.Errorf("latency: invalid intercept %g", intercept)
	}
	if len(breaks) == 0 || len(breaks) != len(slopes) {
		return p, fmt.Errorf("latency: %d breaks for %d slopes", len(breaks), len(slopes))
	}
	if breaks[0] != 0 {
		return p, fmt.Errorf("latency: first break must be 0, got %g", breaks[0])
	}
	prevB := math.Inf(-1)
	prevS := 0.0
	for i := range breaks {
		if breaks[i] <= prevB {
			return p, fmt.Errorf("latency: breaks not strictly increasing at %d", i)
		}
		if slopes[i] < prevS || math.IsNaN(slopes[i]) {
			return p, fmt.Errorf("latency: slopes must be nonnegative and nondecreasing at %d", i)
		}
		prevB, prevS = breaks[i], slopes[i]
	}
	if slopes[len(slopes)-1] <= 0 {
		return p, fmt.Errorf("latency: final slope must be positive")
	}
	return p, nil
}

// segment returns the index of the segment containing x.
func (p Piecewise) segment(x float64) int {
	k := 0
	for k+1 < len(p.Breaks) && x >= p.Breaks[k+1] {
		k++
	}
	return k
}

// Latency implements Function.
func (p Piecewise) Latency(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	l := p.Intercept
	for k := 0; k < len(p.Breaks); k++ {
		hi := math.Inf(1)
		if k+1 < len(p.Breaks) {
			hi = p.Breaks[k+1]
		}
		span := math.Min(x, hi) - p.Breaks[k]
		if span <= 0 {
			break
		}
		l += p.Slopes[k] * span
	}
	return l
}

// Total implements Function.
func (p Piecewise) Total(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return x * p.Latency(x)
}

// MarginalTotal implements Function: d/dx [x*l(x)] = l(x) + x*l'(x).
func (p Piecewise) MarginalTotal(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return p.Latency(x) + x*p.Slopes[p.segment(x)]
}

// MaxRate implements Function.
func (p Piecewise) MaxRate() float64 { return math.Inf(1) }

func (p Piecewise) String() string {
	return fmt.Sprintf("piecewise(l0=%g, %d segments)", p.Intercept, len(p.Breaks))
}
