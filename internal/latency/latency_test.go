package latency

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestLinearValues(t *testing.T) {
	f := Linear{T: 2}
	if got := f.Latency(3); got != 6 {
		t.Errorf("Latency(3) = %v, want 6", got)
	}
	if got := f.Total(3); got != 18 {
		t.Errorf("Total(3) = %v, want 18", got)
	}
	if got := f.MarginalTotal(3); got != 12 {
		t.Errorf("MarginalTotal(3) = %v, want 12", got)
	}
	if !math.IsInf(f.MaxRate(), 1) {
		t.Error("linear MaxRate should be +Inf")
	}
}

func TestLinearNegativeLoad(t *testing.T) {
	f := Linear{T: 1}
	if !math.IsInf(f.Latency(-1), 1) || !math.IsInf(f.Total(-0.5), 1) {
		t.Error("negative load should yield +Inf")
	}
}

func TestMM1Values(t *testing.T) {
	f := MM1{Mu: 5}
	if got, want := f.Latency(3), 0.5; got != want {
		t.Errorf("Latency(3) = %v, want %v", got, want)
	}
	if got, want := f.Total(3), 1.5; got != want {
		t.Errorf("Total(3) = %v, want %v", got, want)
	}
	if got, want := f.MarginalTotal(3), 5.0/4; got != want {
		t.Errorf("MarginalTotal(3) = %v, want %v", got, want)
	}
	if !math.IsInf(f.Latency(5), 1) || !math.IsInf(f.Latency(6), 1) {
		t.Error("latency at or beyond capacity should be +Inf")
	}
	if f.MaxRate() != 5 {
		t.Errorf("MaxRate = %v, want 5", f.MaxRate())
	}
}

func TestMG1ReducesToMM1SojournWhenCS2Is1(t *testing.T) {
	mm1 := MM1{Mu: 4}
	mg1 := MG1{Mu: 4, CS2: 1}
	for _, x := range []float64{0, 0.5, 1, 2, 3, 3.9} {
		// M/M/1 sojourn time is 1/(mu-x); PK with cs2=1 must agree.
		if got, want := mg1.Latency(x), mm1.Latency(x); !numeric.AlmostEqual(got, want, 1e-12, 0) {
			t.Errorf("x=%v: MG1 latency %v != MM1 %v", x, got, want)
		}
	}
}

func TestMG1MD1BelowMM1(t *testing.T) {
	// Deterministic service (cs2=0) has less queueing than exponential.
	md1 := MG1{Mu: 4, CS2: 0}
	mm1 := MG1{Mu: 4, CS2: 1}
	for _, x := range []float64{0.5, 1, 2, 3} {
		if md1.Latency(x) >= mm1.Latency(x) {
			t.Errorf("x=%v: M/D/1 latency %v not below M/M/1 %v",
				x, md1.Latency(x), mm1.Latency(x))
		}
	}
}

func TestMonomialReducesToLinear(t *testing.T) {
	mono := Monomial{C: 3, K: 1}
	lin := Linear{T: 3}
	for _, x := range []float64{0, 0.5, 1, 2, 7} {
		if !numeric.AlmostEqual(mono.Latency(x), lin.Latency(x), 1e-12, 0) {
			t.Errorf("x=%v: monomial K=1 disagrees with linear", x)
		}
		if !numeric.AlmostEqual(mono.MarginalTotal(x), lin.MarginalTotal(x), 1e-12, 0) {
			t.Errorf("x=%v: monomial marginal disagrees with linear", x)
		}
	}
}

func TestAffineReducesToLinearWhenAIsZero(t *testing.T) {
	aff := Affine{A: 0, B: 2}
	lin := Linear{T: 2}
	for _, x := range []float64{0, 1, 3.5} {
		if aff.Total(x) != lin.Total(x) {
			t.Errorf("x=%v: affine(0,b) disagrees with linear", x)
		}
	}
}

// numericalMarginal estimates d/dx Total(x) by central differences.
func numericalMarginal(f Function, x float64) float64 {
	h := 1e-6 * (1 + math.Abs(x))
	return (f.Total(x+h) - f.Total(x-h)) / (2 * h)
}

func TestMarginalTotalMatchesNumericalDerivative(t *testing.T) {
	fns := []Function{
		Linear{T: 2.5},
		Affine{A: 1, B: 0.7},
		MM1{Mu: 6},
		MG1{Mu: 6, CS2: 2.3},
		Monomial{C: 0.9, K: 3},
	}
	for _, f := range fns {
		hi := f.MaxRate()
		if math.IsInf(hi, 1) {
			hi = 10
		} else {
			hi *= 0.8
		}
		for i := 1; i <= 5; i++ {
			x := hi * float64(i) / 5
			got := f.MarginalTotal(x)
			want := numericalMarginal(f, x)
			if !numeric.AlmostEqual(got, want, 1e-4, 1e-6) {
				t.Errorf("%v at x=%v: MarginalTotal=%v, numeric=%v", f, x, got, want)
			}
		}
	}
}

// Property: for random linear models, total latency is convex
// (midpoint inequality) and marginal is increasing.
func TestLinearConvexityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		f := Linear{T: 0.1 + 10*r.Float64()}
		a := 10 * r.Float64()
		b := 10 * r.Float64()
		mid := (a + b) / 2
		return f.Total(mid) <= (f.Total(a)+f.Total(b))/2+1e-9 &&
			f.MarginalTotal(a) <= f.MarginalTotal(a+1)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateAcceptsStandardModels(t *testing.T) {
	for _, f := range []Function{
		Linear{T: 1}, Affine{A: 0.5, B: 1}, MM1{Mu: 3},
		MG1{Mu: 3, CS2: 0.5}, Monomial{C: 2, K: 2},
	} {
		if err := Validate(f); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", f, err)
		}
	}
}

type bogus struct{}

func (bogus) Latency(x float64) float64       { return -1 }
func (bogus) Total(x float64) float64         { return -x }
func (bogus) MarginalTotal(x float64) float64 { return -1 }
func (bogus) MaxRate() float64                { return math.Inf(1) }
func (bogus) String() string                  { return "bogus" }

func TestValidateRejectsBogus(t *testing.T) {
	if err := Validate(bogus{}); err == nil {
		t.Error("Validate accepted an invalid model")
	}
}

func TestStringers(t *testing.T) {
	for _, f := range []Function{
		Linear{T: 1}, Affine{A: 1, B: 2}, MM1{Mu: 3},
		MG1{Mu: 3, CS2: 1}, Monomial{C: 1, K: 2},
	} {
		if f.String() == "" {
			t.Errorf("%T has empty String()", f)
		}
	}
}
