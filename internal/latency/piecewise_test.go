package latency

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func knee(t *testing.T) Piecewise {
	t.Helper()
	// Flat-ish until x=2, steep afterwards.
	p, err := NewPiecewise(0.1, []float64{0, 2}, []float64{0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPiecewiseValues(t *testing.T) {
	p := knee(t)
	if got := p.Latency(0); got != 0.1 {
		t.Errorf("l(0) = %v", got)
	}
	if got, want := p.Latency(1), 0.1+0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("l(1) = %v, want %v", got, want)
	}
	if got, want := p.Latency(2), 0.1+1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("l(2) = %v, want %v", got, want)
	}
	if got, want := p.Latency(3), 0.1+1.0+4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("l(3) = %v, want %v", got, want)
	}
	if !math.IsInf(p.Latency(-1), 1) {
		t.Error("negative load should be +Inf")
	}
}

func TestPiecewiseContinuity(t *testing.T) {
	p := knee(t)
	for _, b := range []float64{2} {
		lo := p.Latency(b - 1e-9)
		hi := p.Latency(b + 1e-9)
		if math.Abs(hi-lo) > 1e-6 {
			t.Errorf("discontinuity at %v: %v vs %v", b, lo, hi)
		}
	}
}

func TestPiecewiseMarginalMatchesNumeric(t *testing.T) {
	p := knee(t)
	for _, x := range []float64{0.5, 1.5, 2.5, 5} { // away from the knee
		h := 1e-7
		want := (p.Total(x+h) - p.Total(x-h)) / (2 * h)
		if got := p.MarginalTotal(x); !numeric.AlmostEqual(got, want, 1e-4, 1e-6) {
			t.Errorf("marginal at %v = %v, numeric %v", x, got, want)
		}
	}
}

func TestPiecewiseMarginalNondecreasing(t *testing.T) {
	p := knee(t)
	prev := p.MarginalTotal(0)
	for x := 0.1; x <= 6; x += 0.1 {
		m := p.MarginalTotal(x)
		if m < prev-1e-12 {
			t.Fatalf("marginal decreased at %v", x)
		}
		prev = m
	}
}

func TestPiecewiseValidate(t *testing.T) {
	if err := Validate(knee(t)); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewPiecewiseRejectsBadShapes(t *testing.T) {
	cases := []struct {
		intercept float64
		breaks    []float64
		slopes    []float64
	}{
		{-1, []float64{0}, []float64{1}},
		{0, nil, nil},
		{0, []float64{0, 1}, []float64{1}},
		{0, []float64{1}, []float64{1}},             // first break not 0
		{0, []float64{0, 1, 1}, []float64{1, 2, 3}}, // not strictly increasing
		{0, []float64{0, 1}, []float64{2, 1}},       // decreasing slopes
		{0, []float64{0}, []float64{0}},             // final slope zero
		{0, []float64{0}, []float64{-1}},
	}
	for i, c := range cases {
		if _, err := NewPiecewise(c.intercept, c.breaks, c.slopes); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPiecewiseSingleSegmentEqualsAffine(t *testing.T) {
	p, err := NewPiecewise(0.3, []float64{0}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	aff := Affine{A: 0.3, B: 2}
	for _, x := range []float64{0, 0.5, 1, 4} {
		if !numeric.AlmostEqual(p.Latency(x), aff.Latency(x), 1e-12, 0) {
			t.Errorf("x=%v: piecewise %v != affine %v", x, p.Latency(x), aff.Latency(x))
		}
		if !numeric.AlmostEqual(p.MarginalTotal(x), aff.MarginalTotal(x), 1e-12, 0) {
			t.Errorf("x=%v: marginals differ", x)
		}
	}
}
