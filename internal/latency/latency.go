// Package latency defines load-dependent latency function models for
// heterogeneous computers.
//
// A latency function l(x) gives the expected time to complete one job
// at a computer receiving jobs at rate x. The paper reproduced by this
// repository (Grosu & Chronopoulos, "A Load Balancing Mechanism with
// Verification", IPDPS 2003) models computers with linear functions
// l(x) = t*x; the companion CLUSTER 2002 paper models them as M/M/1
// queues with l(x) = 1/(mu-x). Both, plus affine, monomial and M/G/1
// generalizations, are provided behind one interface so the allocation
// and mechanism layers are model-agnostic.
package latency

import (
	"fmt"
	"math"
)

// Function is a load-dependent latency function. Implementations must
// be convex in x on [0, MaxRate()) with nondecreasing latency, which
// makes total latency minimization a convex program.
type Function interface {
	// Latency returns l(x), the expected per-job latency at arrival
	// rate x. Behaviour outside [0, MaxRate()) is +Inf.
	Latency(x float64) float64
	// Total returns x*l(x), the latency accumulated per unit time.
	Total(x float64) float64
	// MarginalTotal returns d/dx [x*l(x)], the marginal total latency.
	// It is strictly increasing on (0, MaxRate()) for valid models.
	MarginalTotal(x float64) float64
	// MaxRate returns the supremum of feasible arrival rates
	// (capacity), or +Inf if the function is defined for all x >= 0.
	MaxRate() float64
	// String describes the model and its parameters.
	String() string
}

// Linear is the paper's model: l(x) = T*x with T > 0 inversely
// proportional to the computer's processing rate. A small T is a fast
// computer. It can represent the expected waiting time of an M/G/1
// queue under light load, with T the variance of the service time.
type Linear struct {
	T float64
}

// Latency implements Function.
func (f Linear) Latency(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return f.T * x
}

// Total implements Function.
func (f Linear) Total(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return f.T * x * x
}

// MarginalTotal implements Function.
func (f Linear) MarginalTotal(x float64) float64 { return 2 * f.T * x }

// MaxRate implements Function.
func (f Linear) MaxRate() float64 { return math.Inf(1) }

func (f Linear) String() string { return fmt.Sprintf("linear(t=%g)", f.T) }

// Affine models a fixed per-job overhead on top of a linear congestion
// term: l(x) = A + B*x, A >= 0, B > 0.
type Affine struct {
	A, B float64
}

// Latency implements Function.
func (f Affine) Latency(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return f.A + f.B*x
}

// Total implements Function.
func (f Affine) Total(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return x * (f.A + f.B*x)
}

// MarginalTotal implements Function.
func (f Affine) MarginalTotal(x float64) float64 { return f.A + 2*f.B*x }

// MaxRate implements Function.
func (f Affine) MaxRate() float64 { return math.Inf(1) }

func (f Affine) String() string { return fmt.Sprintf("affine(a=%g, b=%g)", f.A, f.B) }

// MM1 models the computer as an M/M/1 queue with service rate Mu:
// l(x) = 1/(Mu - x) for x < Mu. This is the model of the companion
// paper, Grosu & Chronopoulos, CLUSTER 2002.
type MM1 struct {
	Mu float64
}

// Latency implements Function.
func (f MM1) Latency(x float64) float64 {
	if x < 0 || x >= f.Mu {
		return math.Inf(1)
	}
	return 1 / (f.Mu - x)
}

// Total implements Function.
func (f MM1) Total(x float64) float64 {
	if x < 0 || x >= f.Mu {
		return math.Inf(1)
	}
	return x / (f.Mu - x)
}

// MarginalTotal implements Function.
func (f MM1) MarginalTotal(x float64) float64 {
	if x < 0 || x >= f.Mu {
		return math.Inf(1)
	}
	d := f.Mu - x
	return f.Mu / (d * d)
}

// MaxRate implements Function.
func (f MM1) MaxRate() float64 { return f.Mu }

func (f MM1) String() string { return fmt.Sprintf("mm1(mu=%g)", f.Mu) }

// MG1 models the computer as an M/G/1 queue with service rate Mu and
// squared coefficient of variation CS2 of the service time, using the
// Pollaczek-Khinchine mean sojourn time:
//
//	l(x) = 1/Mu + x*(1+CS2) / (2*Mu*(Mu-x))
//
// CS2 = 1 recovers M/M/1 sojourn; CS2 = 0 is M/D/1.
type MG1 struct {
	Mu  float64
	CS2 float64
}

// Latency implements Function.
func (f MG1) Latency(x float64) float64 {
	if x < 0 || x >= f.Mu {
		return math.Inf(1)
	}
	return 1/f.Mu + x*(1+f.CS2)/(2*f.Mu*(f.Mu-x))
}

// Total implements Function.
func (f MG1) Total(x float64) float64 {
	if x < 0 || x >= f.Mu {
		return math.Inf(1)
	}
	return x * f.Latency(x)
}

// MarginalTotal implements Function.
func (f MG1) MarginalTotal(x float64) float64 {
	if x < 0 || x >= f.Mu {
		return math.Inf(1)
	}
	d := f.Mu - x
	return 1/f.Mu + (1+f.CS2)*(2*x*f.Mu-x*x)/(2*f.Mu*d*d)
}

// MaxRate implements Function.
func (f MG1) MaxRate() float64 { return f.Mu }

func (f MG1) String() string { return fmt.Sprintf("mg1(mu=%g, cs2=%g)", f.Mu, f.CS2) }

// Monomial is a polynomial congestion model l(x) = C*x^K with C > 0
// and degree K >= 1 (K = 1 recovers Linear).
type Monomial struct {
	C float64
	K float64
}

// Latency implements Function.
func (f Monomial) Latency(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return f.C * math.Pow(x, f.K)
}

// Total implements Function.
func (f Monomial) Total(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return f.C * math.Pow(x, f.K+1)
}

// MarginalTotal implements Function.
func (f Monomial) MarginalTotal(x float64) float64 {
	if x < 0 {
		return math.Inf(1)
	}
	return f.C * (f.K + 1) * math.Pow(x, f.K)
}

// MaxRate implements Function.
func (f Monomial) MaxRate() float64 { return math.Inf(1) }

func (f Monomial) String() string { return fmt.Sprintf("monomial(c=%g, k=%g)", f.C, f.K) }

// Validate reports whether f is a usable model: finite nonnegative
// latency at 0 and strictly increasing marginal total latency on a
// probe grid within its domain. It is a guard for user-supplied
// parameters, not a proof of convexity.
func Validate(f Function) error {
	if l := f.Latency(0); math.IsNaN(l) || l < 0 || math.IsInf(l, 1) {
		return fmt.Errorf("latency: %v has invalid l(0) = %v", f, l)
	}
	hi := f.MaxRate()
	if math.IsInf(hi, 1) {
		hi = 1e6
	} else {
		hi *= 0.999
	}
	prev := f.MarginalTotal(0)
	for i := 1; i <= 8; i++ {
		x := hi * float64(i) / 8
		m := f.MarginalTotal(x)
		if math.IsNaN(m) || m < prev-1e-12 {
			return fmt.Errorf("latency: %v has non-increasing marginal total at x=%g", f, x)
		}
		prev = m
	}
	return nil
}
