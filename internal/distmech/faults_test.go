package distmech

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/mech"
	"repro/internal/numeric"
)

func TestConfigValidateTypedErrors(t *testing.T) {
	agents := mech.Truthful([]float64{1, 2, 4})
	base := Config{Tree: Star(3), Agents: agents, Rate: 3}

	var ve *ValueError
	var ie *IndexError

	cfg := base
	cfg.HopDelay = -0.5
	if _, err := Run(cfg); !errors.As(err, &ve) || ve.Field != "hop delay" {
		t.Errorf("negative hop delay: %v", err)
	}
	cfg = base
	cfg.Timeout = -1
	if _, err := Run(cfg); !errors.As(err, &ve) || ve.Field != "timeout" {
		t.Errorf("negative timeout: %v", err)
	}
	cfg = base
	cfg.Deadline = math.NaN()
	if _, err := Run(cfg); !errors.As(err, &ve) || ve.Field != "deadline" {
		t.Errorf("NaN deadline: %v", err)
	}
	cfg = base
	cfg.Rate = 0
	if _, err := Run(cfg); !errors.As(err, &ve) || ve.Field != "rate" {
		t.Errorf("zero rate: %v", err)
	}
	cfg = base
	cfg.Crashed = []int{7}
	if _, err := Run(cfg); !errors.As(err, &ie) || ie.Field != "Crashed" || ie.Index != 7 {
		t.Errorf("out-of-range crash: %v", err)
	}
	cfg = base
	cfg.Crashed = []int{-1}
	if _, err := Run(cfg); !errors.As(err, &ie) {
		t.Errorf("negative crash index: %v", err)
	}
	cfg = base
	cfg.CheatPayments = []int{3}
	if _, err := Run(cfg); !errors.As(err, &ie) || ie.Field != "CheatPayments" {
		t.Errorf("out-of-range cheater: %v", err)
	}
	cfg = base
	cfg.Crashed = []int{0}
	if _, err := Run(cfg); !errors.Is(err, ErrRootCrashed) {
		t.Errorf("root crash: %v", err)
	}
	// A root marked dead by a fault plan is the same typed error.
	cfg = base
	cfg.Faults = faults.New(1, faults.Silent(0))
	if _, err := Run(cfg); !errors.Is(err, ErrRootCrashed) {
		t.Errorf("silent root via plan: %v", err)
	}
}

// Timeout-budget cascades: the default depth-aware budgets must keep
// healthy deep subtrees alive while cutting exactly the faulty ones.

func TestCascadeBudgetDeepChainCrashedLeaf(t *testing.T) {
	n := 16
	agents := mech.Truthful(ladder(n))
	res, err := Run(Config{
		Tree: Chain(n), Agents: agents, Rate: 8,
		Faults: faults.New(1, faults.Crash(n-1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != n-1 {
		t.Fatalf("missing = %v, want just the leaf", res.Missing)
	}
	var sum float64
	for _, x := range res.Alloc {
		sum += x
	}
	if math.Abs(sum-8) > 1e-6 {
		t.Errorf("allocation sums to %v", sum)
	}
}

func TestCascadeBudgetDeepChainCrashedMiddle(t *testing.T) {
	n := 16
	agents := mech.Truthful(ladder(n))
	res, err := Run(Config{
		Tree: Chain(n), Agents: agents, Rate: 8,
		Crashed: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != n-8 {
		t.Fatalf("missing = %v, want the whole tail 8..15", res.Missing)
	}
	for _, m := range res.Missing {
		if m < 8 {
			t.Errorf("healthy node %d cut off", m)
		}
	}
}

func TestCascadeBudgetSingleNodeSubtree(t *testing.T) {
	// Tree: 0 -> {1, 2}, 1 -> {3}. Node 3 is a single-node subtree
	// hanging off node 1; crashing it must cut exactly node 3 even
	// though node 1's timeout budget is the smallest possible (4 hops).
	tree := Topology{Parent: []int{-1, 0, 0, 1}}
	agents := mech.Truthful([]float64{1, 2, 4, 8})
	res, err := Run(Config{Tree: tree, Agents: agents, Rate: 4, Crashed: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 3 {
		t.Fatalf("missing = %v, want [3]", res.Missing)
	}
	central, err := mech.CompensationBonus{}.Run(agents[:3], 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !numeric.AlmostEqual(res.Payments[i], central.Payment[i], 1e-9, 1e-9) {
			t.Errorf("payment[%d] = %v, central %v", i, res.Payments[i], central.Payment[i])
		}
	}
}

func TestExplicitTimeoutShorterThanCascadeCutsDeepChain(t *testing.T) {
	// A uniform 2.5-hop timeout is shorter than the computed cascade
	// budget on a deep chain: every level times out before its healthy
	// subtree can answer, the whole tail is cut and the round fails
	// with the typed quorum error.
	const hop = 0.01
	agents := mech.Truthful(ladder(8))
	_, err := Run(Config{
		Tree: Chain(8), Agents: agents, Rate: 8,
		HopDelay: hop, Timeout: 2.5 * hop,
	})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
}

func TestExplicitTimeoutLongEnoughCompletes(t *testing.T) {
	const hop = 0.01
	agents := mech.Truthful(ladder(8))
	res, err := Run(Config{
		Tree: Chain(8), Agents: agents, Rate: 8,
		HopDelay: hop, Timeout: 20 * hop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 || res.Messages != 4*7 {
		t.Errorf("missing=%v messages=%d", res.Missing, res.Messages)
	}
}

// Fault-plan integration.

func TestPlanCrashAndByzantineMatchLegacyKnobs(t *testing.T) {
	agents := mech.Truthful(ladder(8))
	legacy, err := Run(Config{
		Tree: Binary(8), Agents: agents, Rate: 8,
		Crashed: []int{7}, CheatPayments: []int{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Run(Config{
		Tree: Binary(8), Agents: agents, Rate: 8,
		Faults: faults.New(0, faults.Crash(7), faults.Byzantine(0, 3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", legacy) != fmt.Sprintf("%+v", plan) {
		t.Errorf("legacy knobs and fault plan diverged:\nlegacy: %+v\nplan:   %+v", legacy, plan)
	}
	if len(plan.Flagged) != 1 || plan.Flagged[0] != 3 {
		t.Errorf("flagged = %v", plan.Flagged)
	}
}

// Regression: composing the deprecated Crashed/CheatPayments knobs
// with an explicit Faults plan targeting the same nodes must not
// double-inject. Merge applies one fault per node, with the explicit
// plan (listed first in FaultInjector) supplying the parameters.
func TestLegacyKnobsComposeWithPlanWithoutDoubleInjection(t *testing.T) {
	agents := mech.Truthful(ladder(8))
	base := Config{Tree: Binary(8), Agents: agents, Rate: 8}

	// A crash declared through both knobs is the same single crash.
	alone := base
	alone.Crashed = []int{7}
	want, err := Run(alone)
	if err != nil {
		t.Fatal(err)
	}
	both := alone
	both.Faults = faults.New(0, faults.Crash(7))
	got, err := Run(both)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Errorf("crash declared twice diverged from once:\nboth: %+v\nonce: %+v", got, want)
	}

	// A cheater declared through both knobs is flagged exactly once,
	// and the explicit plan's claim factor beats the legacy default.
	cheat := base
	cheat.CheatPayments = []int{5}
	cheat.Faults = faults.New(0, faults.Byzantine(1.2, 5))
	if f := cheat.FaultInjector().ClaimFactor(5); f != 1.2 {
		t.Errorf("claim factor = %v, want the explicit plan's 1.2", f)
	}
	res, err := Run(cheat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flagged) != 1 || res.Flagged[0] != 5 {
		t.Errorf("flagged = %v, want exactly [5]", res.Flagged)
	}
}

func TestDuplicatedMessagesAreHarmless(t *testing.T) {
	// Duplicate every message: the receivers are idempotent, so the
	// outcome must be identical to the fault-free round.
	agents := mech.Truthful(paperTs())
	clean, err := Run(Config{Tree: Binary(16), Agents: agents, Rate: 20})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := Run(Config{
		Tree: Binary(16), Agents: agents, Rate: 20,
		Faults: faults.New(3, faults.Duplicate(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dup.Duplicated == 0 {
		t.Fatal("no duplicates injected")
	}
	if dup.Messages != clean.Messages {
		t.Errorf("logical messages %d != %d", dup.Messages, clean.Messages)
	}
	for i := range agents {
		if !numeric.AlmostEqual(dup.Alloc[i], clean.Alloc[i], 1e-12, 1e-12) ||
			!numeric.AlmostEqual(dup.Payments[i], clean.Payments[i], 1e-12, 1e-12) {
			t.Fatalf("node %d diverged under duplication", i)
		}
	}
	if len(dup.Flagged) != 0 || len(dup.Missing) != 0 {
		t.Errorf("flagged=%v missing=%v", dup.Flagged, dup.Missing)
	}
}

func TestJitterKeepsRoundExact(t *testing.T) {
	// Sub-hop jitter reorders same-instant events but stays well
	// inside the timeout budgets: the round must still be exact.
	agents := mech.Truthful(paperTs())
	res, err := Run(Config{
		Tree: Binary(16), Agents: agents, Rate: 20,
		Faults: faults.New(11, faults.Jitter(0.0004)),
	})
	if err != nil {
		t.Fatal(err)
	}
	central, err := mech.CompensationBonus{}.Run(agents, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range agents {
		if !numeric.AlmostEqual(res.Payments[i], central.Payment[i], 1e-9, 1e-9) {
			t.Errorf("payment[%d] diverged under jitter", i)
		}
	}
	if len(res.Missing) != 0 {
		t.Errorf("missing = %v", res.Missing)
	}
}

func TestSilentNodeViaPlanIsCutOff(t *testing.T) {
	agents := mech.Truthful(ladder(8))
	res, err := Run(Config{
		Tree: Star(8), Agents: agents, Rate: 8,
		Faults: faults.New(1, faults.Silent(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 3 {
		t.Fatalf("missing = %v, want [3]", res.Missing)
	}
	if res.Alloc[3] != 0 {
		t.Errorf("silent node allocated %v", res.Alloc[3])
	}
}

func TestDeadlineExceededIsTyped(t *testing.T) {
	agents := mech.Truthful(ladder(8))
	_, err := Run(Config{
		Tree: Star(8), Agents: agents, Rate: 8,
		HopDelay: 0.01, Deadline: 0.015, // the round needs 4 hops
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// kindDropper drops every message of one kind and nothing else.
type kindDropper struct {
	faults.Injector
	kind string
}

func (k kindDropper) Deliver(m faults.Message) faults.Decision {
	return faults.Decision{Drop: m.Kind == k.kind}
}

func TestDroppedDisseminationIsTyped(t *testing.T) {
	agents := mech.Truthful(ladder(4))
	_, err := Run(Config{
		Tree: Star(4), Agents: agents, Rate: 4,
		Faults: kindDropper{Injector: faults.None, kind: "disseminate"},
	})
	if !errors.Is(err, ErrDisseminationIncomplete) {
		t.Fatalf("err = %v, want ErrDisseminationIncomplete", err)
	}
}

func TestDroppedClaimsLeaveAuditOutstanding(t *testing.T) {
	agents := mech.Truthful(ladder(4))
	res, err := Run(Config{
		Tree: Star(4), Agents: agents, Rate: 4,
		Faults: kindDropper{Injector: faults.None, kind: "claim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClaimsOutstanding != 3 {
		t.Errorf("claims outstanding = %d, want 3", res.ClaimsOutstanding)
	}
	var sum float64
	for _, x := range res.Alloc {
		sum += x
	}
	if math.Abs(sum-4) > 1e-9 {
		t.Errorf("allocation sums to %v despite complete dissemination", sum)
	}
}

func TestDroppedAggregatesLoseQuorum(t *testing.T) {
	agents := mech.Truthful(ladder(4))
	_, err := Run(Config{
		Tree: Star(4), Agents: agents, Rate: 4,
		Faults: kindDropper{Injector: faults.None, kind: "aggregate"},
	})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
}

func TestFaultScheduleIsDeterministic(t *testing.T) {
	agents := mech.Truthful(paperTs())
	run := func(seed uint64) string {
		res, err := Run(Config{
			Tree: Binary(16), Agents: agents, Rate: 20,
			Faults: faults.New(seed,
				faults.Drop(0.1), faults.Duplicate(0.1), faults.Jitter(0.0003)),
		})
		return fmt.Sprintf("%+v %v", res, err)
	}
	if run(7) != run(7) {
		t.Error("same seed produced different rounds")
	}
	if run(7) == run(8) {
		t.Error("different seeds produced identical rounds (suspicious)")
	}
}
