package distmech

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/mech"
)

// Typed round-outcome errors. Supervisors classify failures by
// matching these with errors.Is, so every way a round can fail has
// exactly one sentinel.
var (
	// ErrRootCrashed means the fault plan marks the coordinator
	// (node 0) crashed or silent; the round cannot even start.
	ErrRootCrashed = errors.New("distmech: the coordinator (node 0) cannot crash")
	// ErrQuorumLost means fewer than two nodes stayed reachable — the
	// minimum the PR allocation needs.
	ErrQuorumLost = errors.New("distmech: fewer than two reachable nodes")
	// ErrAggregationIncomplete means the convergecast never delivered
	// an aggregate S to the coordinator.
	ErrAggregationIncomplete = errors.New("distmech: aggregation did not complete")
	// ErrDeadlineExceeded means the round was cut off by
	// Config.Deadline with work still pending.
	ErrDeadlineExceeded = errors.New("distmech: round deadline exceeded")
	// ErrDisseminationIncomplete means some nodes contributed to the
	// aggregate but never received it back, so their allocations are
	// unassigned and the round under-serves the rate.
	ErrDisseminationIncomplete = errors.New("distmech: aggregate never reached some contributors")
	// ErrConservation means the assembled allocation does not conserve
	// the arrival rate.
	ErrConservation = errors.New("distmech: allocation failed conservation")
)

// IndexError reports a node index outside [0, n) in a Config field.
type IndexError struct {
	// Field names the offending Config field.
	Field string
	// Index is the bad value; N is the node count.
	Index, N int
}

// Error implements error.
func (e *IndexError) Error() string {
	return fmt.Sprintf("distmech: %s index %d out of range [0, %d)", e.Field, e.Index, e.N)
}

// ValueError reports an out-of-domain numeric Config field.
type ValueError struct {
	// Field names the offending Config field.
	Field string
	// Value is the rejected value.
	Value float64
}

// Error implements error.
func (e *ValueError) Error() string {
	return fmt.Sprintf("distmech: invalid %s %g", e.Field, e.Value)
}

// Validate checks a Config before any simulation work: tree shape,
// agent count and parameters, numeric field domains, and the legacy
// fault knobs. It returns typed errors (IndexError, ValueError,
// ErrRootCrashed, mech.ErrNeedTwoAgents or a topology error) rather
// than panicking or silently ignoring bad entries.
func (cfg Config) Validate() error {
	if err := cfg.Tree.Validate(); err != nil {
		return err
	}
	n := cfg.Tree.N()
	if len(cfg.Agents) != n {
		return fmt.Errorf("distmech: %d agents for %d tree nodes", len(cfg.Agents), n)
	}
	if n < 2 {
		return mech.ErrNeedTwoAgents
	}
	if cfg.Rate <= 0 || math.IsNaN(cfg.Rate) {
		return &ValueError{Field: "rate", Value: cfg.Rate}
	}
	for i, a := range cfg.Agents {
		if a.Bid <= 0 || math.IsNaN(a.Bid) {
			return &ValueError{Field: fmt.Sprintf("agent %d bid", i), Value: a.Bid}
		}
		if a.Exec <= 0 || math.IsNaN(a.Exec) {
			return &ValueError{Field: fmt.Sprintf("agent %d exec", i), Value: a.Exec}
		}
	}
	if cfg.HopDelay < 0 || math.IsNaN(cfg.HopDelay) {
		return &ValueError{Field: "hop delay", Value: cfg.HopDelay}
	}
	if cfg.Timeout < 0 || math.IsNaN(cfg.Timeout) {
		return &ValueError{Field: "timeout", Value: cfg.Timeout}
	}
	if cfg.Deadline < 0 || math.IsNaN(cfg.Deadline) {
		return &ValueError{Field: "deadline", Value: cfg.Deadline}
	}
	for _, i := range cfg.CheatPayments {
		if i < 0 || i >= n {
			return &IndexError{Field: "CheatPayments", Index: i, N: n}
		}
	}
	for _, i := range cfg.Crashed {
		if i < 0 || i >= n {
			return &IndexError{Field: "Crashed", Index: i, N: n}
		}
		if i == 0 {
			return ErrRootCrashed
		}
	}
	return nil
}

// FaultInjector returns the effective injector a Run of cfg uses: the
// explicit Faults field merged with adapters for the deprecated
// Crashed and CheatPayments knobs, which keep working but now share
// the faults layer as the single source of truth.
func (cfg Config) FaultInjector() faults.Injector {
	var opts []faults.Option
	if len(cfg.Crashed) > 0 {
		opts = append(opts, faults.Crash(cfg.Crashed...))
	}
	if len(cfg.CheatPayments) > 0 {
		opts = append(opts, faults.Byzantine(0, cfg.CheatPayments...))
	}
	if len(opts) == 0 {
		return faults.Merge(cfg.Faults)
	}
	return faults.Merge(cfg.Faults, faults.New(0, opts...))
}
