package distmech

import (
	"math"
	"testing"

	"repro/internal/mech"
	"repro/internal/numeric"
)

func paperTs() []float64 {
	return []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}
}

func TestTopologies(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		for _, tr := range []Topology{Star(n), Chain(n), Binary(n)} {
			if err := tr.Validate(); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
			if tr.N() != n {
				t.Errorf("N = %d, want %d", tr.N(), n)
			}
		}
	}
	if Star(5).Depth() != 1 {
		t.Errorf("star depth = %d", Star(5).Depth())
	}
	if Chain(5).Depth() != 4 {
		t.Errorf("chain depth = %d", Chain(5).Depth())
	}
	if d := Binary(7).Depth(); d != 2 {
		t.Errorf("binary(7) depth = %d", d)
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{Parent: nil},
		{Parent: []int{0}},        // root must have parent -1
		{Parent: []int{-1, 5}},    // out of range
		{Parent: []int{-1, 1}},    // self-parent
		{Parent: []int{-1, 2, 1}}, // cycle 1<->2
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	// The distributed round must produce exactly the centralized
	// mechanism's allocations and payments, on every topology.
	agents := mech.Truthful(paperTs())
	agents[0].Bid, agents[0].Exec = 0.5, 2 // Low2 deviation at the root
	central, err := mech.CompensationBonus{}.Run(agents, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []Topology{Star(16), Chain(16), Binary(16)} {
		res, err := Run(Config{Tree: tr, Agents: agents, Rate: 20})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.S-6.1) > 1e-9 {
			t.Errorf("S = %v, want 6.1", res.S)
		}
		for i := range agents {
			if !numeric.AlmostEqual(res.Alloc[i], central.Alloc[i], 1e-9, 1e-12) {
				t.Errorf("alloc[%d] = %v, central %v", i, res.Alloc[i], central.Alloc[i])
			}
			if !numeric.AlmostEqual(res.Payments[i], central.Payment[i], 1e-9, 1e-9) {
				t.Errorf("payment[%d] = %v, central %v", i, res.Payments[i], central.Payment[i])
			}
			if !numeric.AlmostEqual(res.Utilities[i], central.Utility[i], 1e-9, 1e-9) {
				t.Errorf("utility[%d] = %v, central %v", i, res.Utilities[i], central.Utility[i])
			}
		}
		if len(res.Flagged) != 0 {
			t.Errorf("honest round flagged %v", res.Flagged)
		}
	}
}

func TestDistributedMatchesCentralizedOnRandomTrees(t *testing.T) {
	// Property: on arbitrary random trees with arbitrary (legal)
	// agent plays, the distributed round reproduces the centralized
	// mechanism exactly.
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		n := 2 + r.Intn(20)
		parent := make([]int, n)
		parent[0] = -1
		for i := 1; i < n; i++ {
			parent[i] = r.Intn(i) // guarantees a tree rooted at 0
		}
		tree := Topology{Parent: parent}
		if err := tree.Validate(); err != nil {
			return false
		}
		agents := make([]mech.Agent, n)
		for i := range agents {
			tv := 0.2 + 5*r.Float64()
			agents[i] = mech.Agent{
				True: tv,
				Bid:  0.2 + 5*r.Float64(),
				Exec: tv * (1 + r.Float64()),
			}
		}
		rate := 1 + 10*r.Float64()
		dist, err := Run(Config{Tree: tree, Agents: agents, Rate: rate})
		if err != nil {
			return false
		}
		central, err := mech.CompensationBonus{}.Run(agents, rate)
		if err != nil {
			return false
		}
		for i := range agents {
			if !numeric.AlmostEqual(dist.Payments[i], central.Payment[i], 1e-9, 1e-9) {
				return false
			}
			if !numeric.AlmostEqual(dist.Alloc[i], central.Alloc[i], 1e-9, 1e-12) {
				return false
			}
		}
		return dist.Messages == 4*(n-1)
	}
	for seed := uint64(1); seed <= 60; seed++ {
		if !prop(seed) {
			t.Fatalf("property failed at seed %d", seed)
		}
	}
}

func TestMessageComplexity(t *testing.T) {
	for _, n := range []int{2, 8, 16, 64} {
		agents := mech.Truthful(ladder(n))
		res, err := Run(Config{Tree: Binary(n), Agents: agents, Rate: float64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != 4*(n-1) {
			t.Errorf("n=%d: %d messages, want %d", n, res.Messages, 4*(n-1))
		}
	}
}

func ladder(n int) []float64 {
	l := []float64{1, 2, 5, 10}
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = l[i%4]
	}
	return ts
}

func TestCompletionTimeScalesWithDepth(t *testing.T) {
	const n, hop = 32, 0.01
	agents := mech.Truthful(ladder(n))
	star, err := Run(Config{Tree: Star(n), Agents: agents, Rate: 32, HopDelay: hop})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := Run(Config{Tree: Chain(n), Agents: agents, Rate: 32, HopDelay: hop})
	if err != nil {
		t.Fatal(err)
	}
	// Star: 4 sequential phases of 1 hop each. Chain: 4 phases of
	// (n-1) hops.
	if math.Abs(star.CompletionTime-4*hop) > 1e-9 {
		t.Errorf("star completion = %v, want %v", star.CompletionTime, 4*hop)
	}
	if math.Abs(chain.CompletionTime-4*float64(n-1)*hop) > 1e-9 {
		t.Errorf("chain completion = %v, want %v", chain.CompletionTime, 4*float64(n-1)*hop)
	}
	if chain.CompletionTime <= star.CompletionTime {
		t.Error("chain should be slower than star")
	}
}

func TestPaymentCheatIsFlagged(t *testing.T) {
	agents := mech.Truthful(ladder(8))
	res, err := Run(Config{
		Tree: Binary(8), Agents: agents, Rate: 8,
		CheatPayments: []int{3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{3: true, 5: true}
	if len(res.Flagged) != 2 {
		t.Fatalf("flagged = %v, want nodes 3 and 5", res.Flagged)
	}
	for _, f := range res.Flagged {
		if !want[f] {
			t.Errorf("unexpected flag %d", f)
		}
	}
	// The *audited* payments are the correct ones regardless.
	central, err := mech.CompensationBonus{}.Run(agents, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range agents {
		if !numeric.AlmostEqual(res.Payments[i], central.Payment[i], 1e-9, 1e-9) {
			t.Errorf("payment[%d] diverged under cheating", i)
		}
	}
}

func TestRootCheatFlagged(t *testing.T) {
	agents := mech.Truthful(ladder(4))
	res, err := Run(Config{Tree: Star(4), Agents: agents, Rate: 4, CheatPayments: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flagged) != 1 || res.Flagged[0] != 0 {
		t.Errorf("flagged = %v, want [0]", res.Flagged)
	}
}

func TestCrashedLeafIsCutOff(t *testing.T) {
	agents := mech.Truthful(ladder(8))
	res, err := Run(Config{
		Tree:    Binary(8),
		Agents:  agents,
		Rate:    8,
		Crashed: []int{7}, // a leaf
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 7 {
		t.Fatalf("missing = %v, want [7]", res.Missing)
	}
	if res.Alloc[7] != 0 || res.Payments[7] != 0 {
		t.Errorf("crashed node got alloc %v payment %v", res.Alloc[7], res.Payments[7])
	}
	// The round is consistent over the survivors: S excludes node 7
	// and the allocation still conserves the rate.
	var wantS, sum float64
	for i := 0; i < 7; i++ {
		wantS += 1 / agents[i].Bid
		sum += res.Alloc[i]
	}
	if math.Abs(res.S-wantS) > 1e-9 {
		t.Errorf("S = %v, want %v", res.S, wantS)
	}
	if math.Abs(sum-8) > 1e-6 {
		t.Errorf("surviving allocation sums to %v", sum)
	}
	// Survivors' payments match a centralized run over the survivors.
	central, err := mech.CompensationBonus{}.Run(agents[:7], 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if !numeric.AlmostEqual(res.Payments[i], central.Payment[i], 1e-9, 1e-9) {
			t.Errorf("payment[%d] = %v, central %v", i, res.Payments[i], central.Payment[i])
		}
	}
}

func TestCrashedInternalNodeCutsSubtree(t *testing.T) {
	// Binary(8): node 1's subtree is {1, 3, 4, 7}; crashing node 1
	// orphans all of it while {0, 2, 5, 6} complete the round.
	agents := mech.Truthful(ladder(8))
	res, err := Run(Config{
		Tree:    Binary(8),
		Agents:  agents,
		Rate:    4,
		Crashed: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMissing := map[int]bool{1: true, 3: true, 4: true, 7: true}
	if len(res.Missing) != len(wantMissing) {
		t.Fatalf("missing = %v, want subtree of node 1", res.Missing)
	}
	for _, m := range res.Missing {
		if !wantMissing[m] {
			t.Errorf("unexpected missing node %d", m)
		}
	}
	var sum float64
	for _, i := range []int{0, 2, 5, 6} {
		sum += res.Alloc[i]
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("survivors carry %v, want the full rate 4", sum)
	}
}

func TestCrashLeavingOneSurvivorErrors(t *testing.T) {
	// Chain 0-1-2-3: crashing node 1 leaves only the root reachable.
	agents := mech.Truthful([]float64{1, 2, 4, 8})
	if _, err := Run(Config{
		Tree:    Chain(4),
		Agents:  agents,
		Rate:    2,
		Crashed: []int{1},
	}); err == nil {
		t.Error("expected error with a single reachable node")
	}
}

func TestCrashCompletionIncludesTimeout(t *testing.T) {
	const hop = 0.01
	agents := mech.Truthful(ladder(8))
	healthy, err := Run(Config{Tree: Star(8), Agents: agents, Rate: 8, HopDelay: hop})
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := Run(Config{
		Tree: Star(8), Agents: agents, Rate: 8, HopDelay: hop, Crashed: []int{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if crashed.CompletionTime <= healthy.CompletionTime {
		t.Errorf("crash round (%v) should take longer than healthy (%v) due to the timeout",
			crashed.CompletionTime, healthy.CompletionTime)
	}
	if len(crashed.Missing) != 1 || crashed.Missing[0] != 3 {
		t.Errorf("missing = %v", crashed.Missing)
	}
}

func TestCrashValidation(t *testing.T) {
	agents := mech.Truthful([]float64{1, 2})
	if _, err := Run(Config{Tree: Star(2), Agents: agents, Rate: 1, Crashed: []int{0}}); err == nil {
		t.Error("root crash accepted")
	}
	if _, err := Run(Config{Tree: Star(2), Agents: agents, Rate: 1, Crashed: []int{5}}); err == nil {
		t.Error("out-of-range crash accepted")
	}
}

func TestRunValidation(t *testing.T) {
	agents := mech.Truthful([]float64{1, 2})
	if _, err := Run(Config{Tree: Topology{Parent: []int{0}}, Agents: agents[:1], Rate: 1}); err == nil {
		t.Error("expected topology error")
	}
	if _, err := Run(Config{Tree: Star(2), Agents: agents[:1], Rate: 1}); err == nil {
		t.Error("expected agent count error")
	}
	if _, err := Run(Config{Tree: Star(2), Agents: agents, Rate: -1}); err == nil {
		t.Error("expected rate error")
	}
	bad := mech.Truthful([]float64{1, 2})
	bad[1].Bid = -1
	if _, err := Run(Config{Tree: Star(2), Agents: bad, Rate: 1}); err == nil {
		t.Error("expected bid error")
	}
	if _, err := Run(Config{Tree: Star(2), Agents: agents, Rate: 1, CheatPayments: []int{9}}); err == nil {
		t.Error("expected cheater index error")
	}
}
