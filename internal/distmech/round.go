package distmech

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/mech"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterizes a distributed mechanism round.
type Config struct {
	// Tree is the spanning tree used for aggregation. Node 0 is the
	// coordinator.
	Tree Topology
	// Agents are the computers, one per tree node (node 0 included:
	// the coordinator is itself a computer, as in a peer-to-peer
	// deployment).
	Agents []mech.Agent
	// Rate is the total job arrival rate R.
	Rate float64
	// HopDelay is the per-message network latency in simulated
	// seconds (default 0.001).
	HopDelay float64
	// Faults injects message- and node-level faults into the round
	// (see package faults). Nil injects nothing.
	Faults faults.Injector
	// CheatPayments marks nodes that over-claim their self-computed
	// payment by 10% — the fault the parent audit must catch.
	//
	// Deprecated: a thin adapter over faults.Byzantine; prefer
	// composing a fault plan in Faults.
	CheatPayments []int
	// Crashed marks fail-stop nodes: they never respond, cutting off
	// their whole subtree. Parents time out waiting for them and
	// proceed with partial aggregates; the coordinator learns the
	// missing set from the convergecast and the round completes over
	// the reachable nodes. The root (node 0) cannot crash.
	//
	// Deprecated: a thin adapter over faults.Crash; prefer composing
	// a fault plan in Faults.
	Crashed []int
	// Timeout is how long a parent waits for a child's aggregate
	// before giving up, in simulated seconds. The default is a
	// cascading depth-aware budget (4 hops beyond the largest child
	// budget), long enough for a healthy subtree of any shape to
	// respond even when timeouts fire further down.
	Timeout float64
	// Deadline cuts the whole round off at this simulated time; work
	// still pending then surfaces as ErrDeadlineExceeded. Zero means
	// no deadline.
	Deadline float64
	// Obs receives round counters, fault-injection counts and trace
	// events (see package obs). Nil disables all instrumentation at
	// zero cost.
	Obs *obs.Observer
}

// Result is the outcome of a distributed round.
type Result struct {
	// S is the aggregated sum of inverse bids.
	S float64
	// Alloc is the locally computed allocation (assembled here for
	// inspection; in the field each node knows only its own entry).
	Alloc []float64
	// Payments are the audited per-node payments.
	Payments []float64
	// Utilities are the per-node utilities.
	Utilities []float64
	// Flagged lists nodes whose claimed payment failed the parent
	// audit.
	Flagged []int
	// Missing lists nodes cut off by crashes or lost messages (the
	// unreachable nodes and their subtrees); their allocations and
	// payments are zero.
	Missing []int
	// ClaimsOutstanding counts payment claims the audit convergecast
	// never received (lost or stalled messages): the round's
	// allocation is complete but its audit coverage is not.
	ClaimsOutstanding int
	// Messages is the total number of logical tree messages sent.
	Messages int
	// Lost counts messages the fault layer dropped.
	Lost int
	// Duplicated counts messages the fault layer delivered twice.
	Duplicated int
	// CompletionTime is the simulated time at which the round ended.
	CompletionTime float64
}

// Run executes one distributed round on the discrete-event engine:
//
//  1. the coordinator broadcasts a request down the tree;
//  2. a convergecast aggregates partial sums of 1/b_i upward;
//  3. the coordinator broadcasts (S, R) downward;
//  4. every node locally derives its allocation x_i = R/(b_i*S) and —
//     after execution, when its own ť_i is local knowledge — its own
//     payment from (S, R, b_i, ť_i) alone;
//  5. payment claims convergecast upward, with each parent recomputing
//     its child's payment from the child's disclosed (b, ť) and
//     flagging mismatches.
//
// All messages travel through the fault layer (Config.Faults plus the
// deprecated knob adapters): drops, duplicates, jitter, reordering,
// sender stalls, fail-stop crashes and Byzantine payment claims all
// act on this one path, and the receivers are duplicate- and
// late-message-safe. In a fault-free round the message count is
// exactly 4(n-1) and the completion time ~ (4*depth)*HopDelay, both
// properties the tests pin down.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Tree.N()
	inj := cfg.FaultInjector()
	dead := func(i int) bool {
		c := inj.Class(i)
		return c == faults.NodeCrashed || c == faults.NodeSilent
	}
	if dead(0) {
		return nil, ErrRootCrashed
	}
	hop := cfg.HopDelay
	if hop == 0 {
		hop = 0.001
	}
	// A parent must wait long enough for a request to reach its
	// deepest descendant and the aggregate to travel back — and, under
	// faults, for its children's own timeouts to expire first, so the
	// budgets must cascade: timeout(i) > max_c timeout(c) + round trip.
	// The topology is public, so each node computes its own budget.
	timeoutBudget := make([]float64, n)
	timeoutFor := func(i int) float64 {
		if cfg.Timeout > 0 {
			return cfg.Timeout
		}
		return timeoutBudget[i]
	}

	eng := sim.New()
	met := cfg.Obs.RoundMetrics()
	tr := &faults.Transport{Eng: eng, Inj: inj, Hop: hop, Obs: cfg.Obs.FaultMetrics()}
	children := cfg.Tree.Children()
	// timeoutBudget[i] = 4 hops (request + reply round trip with
	// slack) beyond the largest child budget.
	var computeBudget func(i int) float64
	computeBudget = func(i int) float64 {
		worst := 0.0
		for _, c := range children[i] {
			if b := computeBudget(c); b > worst {
				worst = b
			}
		}
		if len(children[i]) == 0 {
			timeoutBudget[i] = 0
			return 0
		}
		timeoutBudget[i] = worst + 4*hop
		return timeoutBudget[i]
	}
	res := &Result{
		Alloc:     make([]float64, n),
		Payments:  make([]float64, n),
		Utilities: make([]float64, n),
	}

	// Per-node aggregation state for the convergecast.
	partial := make([]float64, n)  // accumulated sum of 1/b over own subtree
	awaiting := make([]int, n)     // children not yet reported
	requested := make([]bool, n)   // node already processed the request
	reportedUp := make([]bool, n)  // node already sent its aggregate
	claimsLeft := make([]int, n)   // children whose payment claim is pending
	claimed := make([]float64, n)  // payment each node claims for itself
	ready := make([]bool, n)       // node has computed its own claim
	childDone := make([][]bool, n) // which children reported, by child position
	claimDone := make([][]bool, n) // which children's claims were audited
	missing := make([]bool, n)     // cut off during aggregation
	timeouts := make([]*sim.Event, n)
	flagged := make([]bool, n)
	var S float64

	childPos := func(p, c int) int {
		for k, cc := range children[p] {
			if cc == c {
				return k
			}
		}
		return -1
	}

	// selfPayment computes node i's payment from purely local data
	// plus the aggregate S: compensation ť*x plus bonus
	// L_{-i} - L_real where L_{-i} = R^2/(S - 1/b) and
	// L_real = R^2/S - b*x^2 + ť*x^2.
	selfPayment := func(i int, s float64) (payment, utility float64) {
		a := cfg.Agents[i]
		x := cfg.Rate / (a.Bid * s)
		lExcl := cfg.Rate * cfg.Rate / (s - 1/a.Bid)
		lReal := cfg.Rate*cfg.Rate/s - a.Bid*x*x + a.Exec*x*x
		bonus := lExcl - lReal
		comp := a.Exec * x
		return comp + bonus, bonus
	}

	var disseminate func(i int, s float64)
	var sendClaim func(i int)

	// Phase 5: claims travel upward; parents audit. Duplicate claims
	// and claims arriving after the parent closed its audit are
	// ignored.
	sendClaim = func(i int) {
		claim := claimed[i]
		p := cfg.Tree.Parent[i]
		if p == -1 {
			return // the root's own claim is audited by convention (publicly recomputable)
		}
		pos := childPos(p, i)
		tr.Send(i, p, "claim", func() {
			if claimDone[p] == nil || claimDone[p][pos] {
				return // duplicate or parent never initialized
			}
			claimDone[p][pos] = true
			// Parent p recomputes i's payment from i's disclosed
			// (bid, exec) and the public S.
			want, _ := selfPayment(i, S)
			if math.Abs(want-claim) > 1e-9*(1+math.Abs(want)) {
				flagged[i] = true
				met.AuditFlagged(1)
				cfg.Obs.Emit(obs.Event{
					Time: eng.Now(), Layer: "distmech", Kind: "audit-flag",
					Node: i, Value: claim - want,
				})
			}
			claimsLeft[p]--
			if claimsLeft[p] == 0 && ready[p] {
				sendClaim(p)
			}
		})
	}

	// markMissing cuts off a whole subtree (rooted at a child that
	// never reported — crashed itself or behind a crash or a lost
	// message).
	var markMissing func(i int)
	markMissing = func(i int) {
		missing[i] = true
		for _, c := range children[i] {
			markMissing(c)
		}
	}

	// Phase 3/4: S travels downward over the reachable tree; nodes
	// compute allocations and payments, then leaves of the reachable
	// tree start the claim convergecast. Duplicate deliveries of the
	// aggregate are ignored.
	disseminate = func(i int, s float64) {
		if ready[i] {
			return
		}
		res.Alloc[i] = cfg.Rate / (cfg.Agents[i].Bid * s)
		pay, util := selfPayment(i, s)
		res.Payments[i] = pay
		res.Utilities[i] = util
		claimed[i] = pay
		if f := inj.ClaimFactor(i); f != 1 {
			claimed[i] = pay*f + 0.01
		}
		ready[i] = true
		reachable := 0
		for pos, c := range children[i] {
			if !childDone[i][pos] {
				continue // subtree cut off during aggregation
			}
			reachable++
			c := c
			tr.Send(i, c, "disseminate", func() { disseminate(c, s) })
		}
		claimsLeft[i] = reachable
		if reachable == 0 {
			sendClaim(i)
		}
	}

	// Phase 2: convergecast of partial sums, with parent timeouts for
	// children that never report. Duplicate aggregates and aggregates
	// arriving after the parent already reported up are ignored.
	var reportUp func(i int)
	reportUp = func(i int) {
		if reportedUp[i] {
			return
		}
		reportedUp[i] = true
		p := cfg.Tree.Parent[i]
		value := partial[i]
		if p == -1 {
			S = value
			cfg.Obs.Emit(obs.Event{
				Time: eng.Now(), Layer: "distmech", Kind: "aggregate-complete",
				Node: 0, Value: S,
			})
			disseminate(0, S)
			return
		}
		pos := childPos(p, i)
		tr.Send(i, p, "aggregate", func() {
			if reportedUp[p] || childDone[p][pos] {
				return // late (parent moved on) or duplicate
			}
			partial[p] += value
			childDone[p][pos] = true
			awaiting[p]--
			if awaiting[p] == 0 {
				if timeouts[p] != nil {
					timeouts[p].Cancel()
				}
				reportUp(p)
			}
		})
	}

	// Phase 1: request broadcast; initializes per-node state. Crashed
	// and silent nodes swallow the request (the message is still sent
	// and counted) and their parent's timeout eventually cuts the
	// subtree.
	var request func(i int)
	request = func(i int) {
		if requested[i] || dead(i) {
			return
		}
		requested[i] = true
		partial[i] = 1 / cfg.Agents[i].Bid
		awaiting[i] = len(children[i])
		childDone[i] = make([]bool, len(children[i]))
		claimDone[i] = make([]bool, len(children[i]))
		for _, c := range children[i] {
			c := c
			tr.Send(i, c, "request", func() { request(c) })
		}
		if len(children[i]) == 0 {
			reportUp(i)
			return
		}
		timeouts[i] = eng.Schedule(timeoutFor(i), func() {
			if reportedUp[i] || awaiting[i] == 0 {
				return
			}
			met.TimeoutFired()
			cfg.Obs.Emit(obs.Event{
				Time: eng.Now(), Layer: "distmech", Kind: "timeout",
				Node: i, Value: timeoutFor(i),
			})
			for pos, c := range children[i] {
				if !childDone[i][pos] {
					markMissing(c)
					met.SubtreeCut(1)
					cfg.Obs.Emit(obs.Event{
						Time: eng.Now(), Layer: "distmech", Kind: "subtree-cut",
						Node: c,
					})
				}
			}
			awaiting[i] = 0
			reportUp(i)
		})
	}
	computeBudget(0)
	request(0)
	if cfg.Deadline > 0 {
		eng.RunUntil(cfg.Deadline)
	} else {
		eng.Run()
	}

	res.Messages = tr.Sent
	res.Lost = tr.Lost
	res.Duplicated = tr.Duplicated
	res.CompletionTime = eng.Now()
	met.AddMessages(tr.Sent, tr.Lost, tr.Duplicated)
	fail := func(outcome string) {
		met.RoundDone(outcome, res.CompletionTime)
		cfg.Obs.Emit(obs.Event{
			Time: res.CompletionTime, Layer: "distmech", Kind: "round-failed",
			Node: -1, Detail: outcome,
		})
	}

	for i := range missing {
		if missing[i] {
			res.Missing = append(res.Missing, i)
		}
	}
	if n-len(res.Missing) < 2 {
		fail("quorum-lost")
		return nil, fmt.Errorf("%w (%d of %d)", ErrQuorumLost, n-len(res.Missing), n)
	}

	if S == 0 {
		if cfg.Deadline > 0 && eng.Pending() > 0 {
			fail("deadline")
			return nil, fmt.Errorf("%w: aggregation still pending at t=%g",
				ErrDeadlineExceeded, cfg.Deadline)
		}
		fail("partial-aggregate")
		return nil, ErrAggregationIncomplete
	}
	// Nodes that contributed to S but never received it back have no
	// allocation; the round under-serves the rate and must be redone.
	unserved := 0
	for i := 0; i < n; i++ {
		if !missing[i] && !ready[i] {
			unserved++
		}
	}
	if unserved > 0 {
		if cfg.Deadline > 0 && eng.Pending() > 0 {
			fail("deadline")
			return nil, fmt.Errorf("%w: dissemination still pending at t=%g",
				ErrDeadlineExceeded, cfg.Deadline)
		}
		fail("partial-dissemination")
		return nil, fmt.Errorf("%w (%d nodes)", ErrDisseminationIncomplete, unserved)
	}
	// Audit coverage: claims that never arrived (lost or still in
	// flight at the deadline) leave their subtree unaudited.
	for i := 0; i < n; i++ {
		if !missing[i] && ready[i] {
			res.ClaimsOutstanding += claimsLeft[i]
		}
	}
	// Root claims are checked directly here (the root's payment is
	// recomputable by everyone from S).
	for i := range flagged {
		if flagged[i] {
			res.Flagged = append(res.Flagged, i)
		}
	}
	if inj.ClaimFactor(0) != 1 {
		res.Flagged = append([]int{0}, res.Flagged...)
		met.AuditFlagged(1)
		cfg.Obs.Emit(obs.Event{
			Time: res.CompletionTime, Layer: "distmech", Kind: "audit-flag", Node: 0,
		})
	}
	res.S = S
	// Safety: allocation conserves the rate.
	if !feasible(res.Alloc, cfg.Rate) {
		fail("conservation")
		return nil, ErrConservation
	}
	met.ClaimsPending(res.ClaimsOutstanding)
	met.RoundDone("ok", res.CompletionTime)
	cfg.Obs.Emit(obs.Event{
		Time: res.CompletionTime, Layer: "distmech", Kind: "round-ok",
		Node: -1, Value: S,
	})
	return res, nil
}

func feasible(x []float64, rate float64) bool {
	var k numeric.KahanSum
	for _, v := range x {
		if v < 0 || math.IsNaN(v) {
			return false
		}
		k.Add(v)
	}
	return math.Abs(k.Value()-rate) <= 1e-6*(1+rate)
}
