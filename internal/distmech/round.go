package distmech

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mech"
	"repro/internal/numeric"
	"repro/internal/sim"
)

// Config parameterizes a distributed mechanism round.
type Config struct {
	// Tree is the spanning tree used for aggregation. Node 0 is the
	// coordinator.
	Tree Topology
	// Agents are the computers, one per tree node (node 0 included:
	// the coordinator is itself a computer, as in a peer-to-peer
	// deployment).
	Agents []mech.Agent
	// Rate is the total job arrival rate R.
	Rate float64
	// HopDelay is the per-message network latency in simulated
	// seconds (default 0.001).
	HopDelay float64
	// CheatPayments marks nodes that over-claim their self-computed
	// payment by 10% — the fault the parent audit must catch.
	CheatPayments []int
	// Crashed marks fail-stop nodes: they never respond, cutting off
	// their whole subtree. Parents time out waiting for them and
	// proceed with partial aggregates; the coordinator learns the
	// missing set from the convergecast and the round completes over
	// the reachable nodes. The root (node 0) cannot crash.
	Crashed []int
	// Timeout is how long a parent waits for a child's aggregate
	// before giving up, in simulated seconds. The default is a
	// cascading depth-aware budget (4 hops beyond the largest child
	// budget), long enough for a healthy subtree of any shape to
	// respond even when timeouts fire further down.
	Timeout float64
}

// Result is the outcome of a distributed round.
type Result struct {
	// S is the aggregated sum of inverse bids.
	S float64
	// Alloc is the locally computed allocation (assembled here for
	// inspection; in the field each node knows only its own entry).
	Alloc []float64
	// Payments are the audited per-node payments.
	Payments []float64
	// Utilities are the per-node utilities.
	Utilities []float64
	// Flagged lists nodes whose claimed payment failed the parent
	// audit.
	Flagged []int
	// Missing lists nodes cut off by crashes (the crashed nodes and
	// their subtrees); their allocations and payments are zero.
	Missing []int
	// Messages is the total number of tree messages.
	Messages int
	// CompletionTime is the simulated time at which the round ended.
	CompletionTime float64
}

// message kinds on the tree
type msgKind int

const (
	msgRequest msgKind = iota
	msgAggregate
	msgDisseminate
	msgClaim
)

// Run executes one distributed round on the discrete-event engine:
//
//  1. the coordinator broadcasts a request down the tree;
//  2. a convergecast aggregates partial sums of 1/b_i upward;
//  3. the coordinator broadcasts (S, R) downward;
//  4. every node locally derives its allocation x_i = R/(b_i*S) and —
//     after execution, when its own ť_i is local knowledge — its own
//     payment from (S, R, b_i, ť_i) alone;
//  5. payment claims convergecast upward, with each parent recomputing
//     its child's payment from the child's disclosed (b, ť) and
//     flagging mismatches.
//
// The returned message count is exactly 4(n-1) and the completion time
// ~ (4*depth)*HopDelay, both properties the tests pin down.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Tree.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Tree.N()
	if len(cfg.Agents) != n {
		return nil, fmt.Errorf("distmech: %d agents for %d tree nodes", len(cfg.Agents), n)
	}
	if n < 2 {
		return nil, mech.ErrNeedTwoAgents
	}
	if cfg.Rate <= 0 || math.IsNaN(cfg.Rate) {
		return nil, fmt.Errorf("distmech: invalid rate %g", cfg.Rate)
	}
	for i, a := range cfg.Agents {
		if a.Bid <= 0 || a.Exec <= 0 {
			return nil, fmt.Errorf("distmech: agent %d has invalid parameters", i)
		}
	}
	hop := cfg.HopDelay
	if hop <= 0 {
		hop = 0.001
	}
	cheat := map[int]bool{}
	for _, i := range cfg.CheatPayments {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("distmech: cheater index %d out of range", i)
		}
		cheat[i] = true
	}
	crashed := map[int]bool{}
	for _, i := range cfg.Crashed {
		if i <= 0 || i >= n {
			return nil, fmt.Errorf("distmech: invalid crashed node %d (root cannot crash)", i)
		}
		crashed[i] = true
	}
	// A parent must wait long enough for a request to reach its
	// deepest descendant and the aggregate to travel back — and, under
	// faults, for its children's own timeouts to expire first, so the
	// budgets must cascade: timeout(i) > max_c timeout(c) + round trip.
	// The topology is public, so each node computes its own budget.
	timeoutBudget := make([]float64, n)
	timeoutFor := func(i int) float64 {
		if cfg.Timeout > 0 {
			return cfg.Timeout
		}
		return timeoutBudget[i]
	}

	eng := sim.New()
	children := cfg.Tree.Children()
	// timeoutBudget[i] = 4 hops (request + reply round trip with
	// slack) beyond the largest child budget.
	var computeBudget func(i int) float64
	computeBudget = func(i int) float64 {
		worst := 0.0
		for _, c := range children[i] {
			if b := computeBudget(c); b > worst {
				worst = b
			}
		}
		if len(children[i]) == 0 {
			timeoutBudget[i] = 0
			return 0
		}
		timeoutBudget[i] = worst + 4*hop
		return timeoutBudget[i]
	}
	res := &Result{
		Alloc:     make([]float64, n),
		Payments:  make([]float64, n),
		Utilities: make([]float64, n),
	}

	// Per-node aggregation state for the convergecast.
	partial := make([]float64, n)  // accumulated sum of 1/b over own subtree
	awaiting := make([]int, n)     // children not yet reported
	reportedUp := make([]bool, n)  // node already sent its aggregate
	claimsLeft := make([]int, n)   // children whose payment claim is pending
	claimed := make([]float64, n)  // payment each node claims for itself
	ready := make([]bool, n)       // node has computed its own claim
	childDone := make([][]bool, n) // which children reported, by child position
	missing := make([]bool, n)     // cut off by a crash
	timeouts := make([]*sim.Event, n)
	flagged := make([]bool, n)
	var S float64

	send := func(delay float64, _ msgKind, action func()) {
		res.Messages++
		eng.Schedule(delay+hop, func() { action() })
	}

	// selfPayment computes node i's payment from purely local data
	// plus the aggregate S: compensation ť*x plus bonus
	// L_{-i} - L_real where L_{-i} = R^2/(S - 1/b) and
	// L_real = R^2/S - b*x^2 + ť*x^2.
	selfPayment := func(i int, s float64) (payment, utility float64) {
		a := cfg.Agents[i]
		x := cfg.Rate / (a.Bid * s)
		lExcl := cfg.Rate * cfg.Rate / (s - 1/a.Bid)
		lReal := cfg.Rate*cfg.Rate/s - a.Bid*x*x + a.Exec*x*x
		bonus := lExcl - lReal
		comp := a.Exec * x
		return comp + bonus, bonus
	}

	var disseminate func(i int, s float64)
	var sendClaim func(i int)

	// Phase 5: claims travel upward; parents audit.
	sendClaim = func(i int) {
		claim := claimed[i]
		p := cfg.Tree.Parent[i]
		if p == -1 {
			return // the root's own claim is audited by convention (publicly recomputable)
		}
		send(0, msgClaim, func() {
			// Parent p recomputes i's payment from i's disclosed
			// (bid, exec) and the public S.
			want, _ := selfPayment(i, S)
			if math.Abs(want-claim) > 1e-9*(1+math.Abs(want)) {
				flagged[i] = true
			}
			claimsLeft[p]--
			if claimsLeft[p] == 0 && ready[p] {
				sendClaim(p)
			}
		})
	}

	// markMissing cuts off a whole subtree (rooted at a child that
	// never reported — crashed itself or behind a crash).
	var markMissing func(i int)
	markMissing = func(i int) {
		missing[i] = true
		for _, c := range children[i] {
			markMissing(c)
		}
	}

	// Phase 3/4: S travels downward over the reachable tree; nodes
	// compute allocations and payments, then leaves of the reachable
	// tree start the claim convergecast.
	disseminate = func(i int, s float64) {
		res.Alloc[i] = cfg.Rate / (cfg.Agents[i].Bid * s)
		pay, util := selfPayment(i, s)
		res.Payments[i] = pay
		res.Utilities[i] = util
		claimed[i] = pay
		if cheat[i] {
			claimed[i] = pay*1.1 + 0.01
		}
		ready[i] = true
		reachable := 0
		for pos, c := range children[i] {
			if !childDone[i][pos] {
				continue // subtree cut off during aggregation
			}
			reachable++
			c := c
			send(0, msgDisseminate, func() { disseminate(c, s) })
		}
		claimsLeft[i] = reachable
		if reachable == 0 {
			sendClaim(i)
		}
	}

	// Phase 2: convergecast of partial sums, with parent timeouts for
	// children that never report.
	var reportUp func(i int)
	reportUp = func(i int) {
		if reportedUp[i] {
			return
		}
		reportedUp[i] = true
		p := cfg.Tree.Parent[i]
		value := partial[i]
		if p == -1 {
			S = value
			disseminate(0, S)
			return
		}
		pos := -1
		for k, c := range children[p] {
			if c == i {
				pos = k
			}
		}
		send(0, msgAggregate, func() {
			partial[p] += value
			childDone[p][pos] = true
			awaiting[p]--
			if awaiting[p] == 0 {
				if timeouts[p] != nil {
					timeouts[p].Cancel()
				}
				reportUp(p)
			}
		})
	}

	// Phase 1: request broadcast; initializes per-node state. Crashed
	// nodes swallow the request (the message is still sent and
	// counted) and their parent's timeout eventually cuts the subtree.
	var request func(i int)
	request = func(i int) {
		partial[i] = 1 / cfg.Agents[i].Bid
		awaiting[i] = len(children[i])
		childDone[i] = make([]bool, len(children[i]))
		for _, c := range children[i] {
			c := c
			if crashed[c] {
				send(0, msgRequest, func() {}) // dropped on the floor
				continue
			}
			send(0, msgRequest, func() { request(c) })
		}
		if len(children[i]) == 0 {
			reportUp(i)
			return
		}
		timeouts[i] = eng.Schedule(timeoutFor(i), func() {
			if reportedUp[i] || awaiting[i] == 0 {
				return
			}
			for pos, c := range children[i] {
				if !childDone[i][pos] {
					markMissing(c)
				}
			}
			awaiting[i] = 0
			reportUp(i)
		})
	}
	computeBudget(0)
	request(0)
	eng.Run()

	for i := range missing {
		if missing[i] {
			res.Missing = append(res.Missing, i)
		}
	}
	if n-len(res.Missing) < 2 {
		return nil, errors.New("distmech: fewer than two reachable nodes")
	}

	if S == 0 {
		return nil, errors.New("distmech: aggregation did not complete")
	}
	// Root claims are checked directly here (the root's payment is
	// recomputable by everyone from S).
	for i := range flagged {
		if flagged[i] {
			res.Flagged = append(res.Flagged, i)
		}
	}
	if cheat[0] {
		res.Flagged = append([]int{0}, res.Flagged...)
	}
	res.S = S
	res.CompletionTime = eng.Now()
	// Safety: allocation conserves the rate.
	if !feasible(res.Alloc, cfg.Rate) {
		return nil, errors.New("distmech: allocation failed conservation")
	}
	return res, nil
}

func feasible(x []float64, rate float64) bool {
	var k numeric.KahanSum
	for _, v := range x {
		if v < 0 || math.IsNaN(v) {
			return false
		}
		k.Add(v)
	}
	return math.Abs(k.Value()-rate) <= 1e-6*(1+rate)
}
