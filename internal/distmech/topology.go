// Package distmech implements a distributed version of the load
// balancing mechanism with verification — the paper's stated future
// direction ("distributed handling of payments"), in the spirit of
// distributed algorithmic mechanism design (Feigenbaum & Shenker).
//
// The linear latency model decentralizes remarkably well: the PR
// allocation, the bid-implied total latency R^2/S and every exclusion
// optimum R^2/(S - 1/b_i) depend on the bids only through the single
// scalar S = sum_j 1/b_j. One convergecast up a spanning tree
// aggregates S, one broadcast disseminates it, and every computer can
// then derive its own allocation *and its own payment* from purely
// local data. Parents audit their children's self-computed payments,
// so a lying payment claim is flagged by its own subtree root. The
// message complexity is O(n) and the completion time O(depth * hop
// delay), both measured by the simulation rather than asserted.
package distmech

import (
	"errors"
	"fmt"
)

// Topology is a rooted spanning tree over n nodes given by parent
// pointers; the root (the coordinator) has parent -1 and index 0.
type Topology struct {
	// Parent[i] is the tree parent of node i; Parent[0] must be -1.
	Parent []int
}

// Star returns the one-level tree: every node reports directly to the
// root (the paper's centralized protocol shape).
func Star(n int) Topology {
	p := make([]int, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = 0
	}
	return Topology{Parent: p}
}

// Chain returns the deepest tree: node i reports to node i-1.
func Chain(n int) Topology {
	p := make([]int, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = i - 1
	}
	return Topology{Parent: p}
}

// Binary returns a balanced binary tree: node i reports to (i-1)/2.
func Binary(n int) Topology {
	p := make([]int, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = (i - 1) / 2
	}
	return Topology{Parent: p}
}

// N returns the number of nodes.
func (t Topology) N() int { return len(t.Parent) }

// Validate checks the parent array describes a tree rooted at 0.
func (t Topology) Validate() error {
	n := len(t.Parent)
	if n == 0 {
		return errors.New("distmech: empty topology")
	}
	if t.Parent[0] != -1 {
		return errors.New("distmech: node 0 must be the root (parent -1)")
	}
	for i := 1; i < n; i++ {
		p := t.Parent[i]
		if p < 0 || p >= n || p == i {
			return fmt.Errorf("distmech: node %d has invalid parent %d", i, p)
		}
	}
	// Reachability: walking parents from every node must reach the
	// root without cycles.
	for i := 1; i < n; i++ {
		seen := 0
		for j := i; j != 0; j = t.Parent[j] {
			seen++
			if seen > n {
				return fmt.Errorf("distmech: cycle through node %d", i)
			}
		}
	}
	return nil
}

// Children returns the child lists of every node.
func (t Topology) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i := 1; i < len(t.Parent); i++ {
		p := t.Parent[i]
		ch[p] = append(ch[p], i)
	}
	return ch
}

// Depth returns the maximum root-to-leaf distance in edges.
func (t Topology) Depth() int {
	depth := 0
	for i := range t.Parent {
		d := 0
		for j := i; t.Parent[j] != -1; j = t.Parent[j] {
			d++
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}
