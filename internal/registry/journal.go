package registry

import "fmt"

// Journal is the write-ahead hook on the registry's mutation and seal
// paths: a durability layer (internal/wal) implements it to persist
// every state change in an order that replays to the identical sealed
// state. The contract the registry guarantees — and recovery depends
// on — is:
//
//   - Added/Updated/Removed are invoked while the mutated shard's lock
//     is held, immediately after the mutation is applied. Calls for
//     the same id therefore arrive in application order (same id ⇒
//     same shard ⇒ same lock); calls for distinct ids may interleave
//     arbitrarily across shards, which is harmless because mutations
//     of distinct ids commute under the canonical seal reduction.
//
//   - Sealed is invoked while EVERY shard lock is held, after the
//     population copy. It is therefore a barrier in the journal
//     stream: every mutation journaled before it was observed by the
//     sealed epoch, and every mutation journaled after it was not.
//     Implementations must be fast — they stall all writers — and
//     must not call back into the registry (the locks are held).
//
//   - Published is invoked after the sealed snapshot is visible to
//     readers, with the shard locks released (the seal mutex is still
//     held, so Published calls are serialized in epoch order). This is
//     where an implementation does deferred I/O: group-commit fsync,
//     snapshot capture hand-off.
//
//   - RateChanged is serialized against seals (SetRate holds the seal
//     mutex while journaling), so rate records interleave with seal
//     records in application order.
//
// All methods must be safe for concurrent use.
type Journal interface {
	// Added records an admitted agent: id was assigned to bid t.
	Added(id int, t float64)
	// Updated records a rebid of a live agent.
	Updated(id int, t float64)
	// Removed records a departure.
	Removed(id int)
	// RateChanged records a change of the total arrival rate.
	RateChanged(rate float64)
	// Sealed records an epoch seal. See SealEvent for the view it
	// carries; the event's slices are valid only during the call.
	Sealed(ev SealEvent)
	// Published delivers the sealed snapshot after publication.
	Published(snap *Snapshot)
}

// SealEvent is the journal's view of one epoch seal, captured at the
// barrier point (all shard locks held, before any correction is
// applied to the sealed copy).
type SealEvent struct {
	// Epoch is the sealed epoch number.
	Epoch uint64
	// Rate is the total arrival rate frozen into the epoch.
	Rate float64
	// Next is the id counter floor: every id ever assigned is < Next.
	Next int
	// Live is the number of live agents at the barrier.
	Live int
	// Correction is the health correction the seal will apply to the
	// sealed copy (nil for a plain Seal). The maps are owned by the
	// sealer's caller: read them only during the call.
	Correction *Correction
	// T is the uncorrected live population, id-indexed (T[id] is the
	// bid; 0 marks an absent id). The slice is the seal's working copy:
	// it is valid only during the call and is mutated afterwards.
	T []float64
}

// AttachJournal wires a journal into the registry after construction —
// the recovery path: a WAL replays into an unjournaled registry, then
// attaches its writer before serving resumes. The attach takes every
// shard lock plus the seal mutex, so it linearizes against all
// concurrent mutations and seals; mutations applied before the attach
// are not journaled. A nil journal detaches.
func (r *Registry) AttachJournal(j Journal) {
	r.sealMu.Lock()
	for i := range r.shards {
		r.shards[i].mu.Lock()
	}
	r.journal = j
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}
	r.sealMu.Unlock()
}

// RestoreAgent installs a live agent at an explicit id — the crash-
// recovery replay path for journaled add records, which carry the ids
// the original registry assigned. It raises the id counter past id, so
// ids stay monotone and never recycled across restarts. A non-positive
// or non-finite t is a *alloc.ValueError; restoring an id that is
// already live is an error. Restore must finish before a Journal is
// attached and concurrent traffic starts.
func (r *Registry) RestoreAgent(id int, t float64) error {
	if err := checkT(t); err != nil {
		return err
	}
	if id < 0 {
		return unknownID(id)
	}
	for {
		cur := r.nextID.Load()
		if int64(id) < cur {
			break
		}
		if r.nextID.CompareAndSwap(cur, int64(id)+1) {
			break
		}
	}
	sh := &r.shards[id&r.mask]
	local := id >> r.bits
	v := 1 / t

	sh.mu.Lock()
	for len(sh.slotOf) <= local {
		sh.slotOf = append(sh.slotOf, -1)
	}
	if sh.slotOf[local] >= 0 {
		sh.mu.Unlock()
		return fmt.Errorf("registry: restore of already-live id %d", id)
	}
	var slot int32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.ts[slot] = t
		sh.inv[slot] = v
		sh.stamp[slot] = r.epoch.Load()
	} else {
		slot = int32(len(sh.ts))
		sh.ts = append(sh.ts, t)
		sh.inv = append(sh.inv, v)
		sh.stamp = append(sh.stamp, r.epoch.Load())
	}
	sh.slotOf[local] = slot
	sh.padd(v)
	sh.live++
	sh.bump(r.met)
	sh.mu.Unlock()
	return nil
}

// RestoreNext raises the id counter floor to next (never lowers it) —
// recovery replays it from a snapshot so that ids assigned before the
// crash but removed before the snapshot stay retired forever.
func (r *Registry) RestoreNext(next int) {
	for {
		cur := r.nextID.Load()
		if int64(next) <= cur {
			return
		}
		if r.nextID.CompareAndSwap(cur, int64(next)) {
			return
		}
	}
}

// RestoreEpoch sets the seal counter so that the NEXT seal publishes
// epoch+1 — recovery calls it immediately before replaying each
// journaled seal record, pinning replayed epoch numbers to the
// originals. Recovery-only: resetting the counter under live readers
// would publish duplicate epoch numbers.
func (r *Registry) RestoreEpoch(epoch uint64) {
	r.epoch.Store(epoch)
}
