package registry

import (
	"math"
	"math/rand"
	"testing"
)

// genBatch produces a random op mix over the population tracked in
// live (ids known to both registries), including deliberately invalid
// ops (bad bids, dead ids, bad kinds) so the differential covers the
// failure codes too.
func genBatch(rng *rand.Rand, live *[]int, nextDead int, size int) []BatchOp {
	ops := make([]BatchOp, 0, size)
	for len(ops) < size {
		switch k := rng.Intn(10); {
		case k < 4 || len(*live) == 0: // add
			if rng.Intn(12) == 0 {
				ops = append(ops, BatchOp{Kind: BatchAdd, T: -1}) // invalid
				continue
			}
			ops = append(ops, BatchOp{Kind: BatchAdd, T: 0.5 + rng.Float64()*9.5})
		case k < 7: // rebid
			id := (*live)[rng.Intn(len(*live))]
			switch rng.Intn(12) {
			case 0:
				ops = append(ops, BatchOp{Kind: BatchRebid, ID: id, T: math.NaN()})
			case 1:
				ops = append(ops, BatchOp{Kind: BatchRebid, ID: nextDead, T: 1}) // unknown
			default:
				ops = append(ops, BatchOp{Kind: BatchRebid, ID: id, T: 0.5 + rng.Float64()*9.5})
			}
		case k < 9: // leave
			i := rng.Intn(len(*live))
			id := (*live)[i]
			if rng.Intn(12) == 0 {
				ops = append(ops, BatchOp{Kind: BatchLeave, ID: -1}) // unknown
				continue
			}
			(*live)[i] = (*live)[len(*live)-1]
			*live = (*live)[:len(*live)-1]
			ops = append(ops, BatchOp{Kind: BatchLeave, ID: id})
		default:
			ops = append(ops, BatchOp{Kind: BatchKind(99), ID: 0, T: 1}) // bad kind
		}
	}
	return ops
}

// applySerial replays a batch through the one-at-a-time methods and
// returns the per-op results ApplyBatch should reproduce.
func applySerial(r *Registry, ops []BatchOp) []BatchResult {
	res := make([]BatchResult, 0, len(ops))
	for _, op := range ops {
		rr := BatchResult{ID: op.ID}
		switch op.Kind {
		case BatchAdd:
			id, err := r.Add(op.T)
			if err != nil {
				rr.Code = BatchBadValue
			} else {
				rr.ID = id
			}
		case BatchRebid:
			switch err := r.Update(op.ID, op.T); {
			case err == nil:
			case checkT(op.T) != nil:
				rr.Code = BatchBadValue
			default:
				rr.Code = BatchUnknownID
			}
		case BatchLeave:
			if err := r.Remove(op.ID); err != nil {
				rr.Code = BatchUnknownID
			}
		default:
			rr.Code = BatchBadKind
		}
		res = append(res, rr)
	}
	return res
}

// TestApplyBatchDifferential pins the batched entry point to the
// serial methods: identical per-op results (codes and assigned ids)
// and bitwise-identical sealed epochs, across seeds and shard counts.
func TestApplyBatchDifferential(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		for seed := int64(0); seed < 8; seed++ {
			batched, err := New(Config{Rate: 100, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := New(Config{Rate: 100, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			var live []int
			var res []BatchResult
			sc := &BatchScratch{}
			for round := 0; round < 6; round++ {
				ops := genBatch(rng, &live, 1<<30, 1+rng.Intn(400))
				want := applySerial(serial, ops)
				res = batched.ApplyBatch(ops, res[:0], sc)
				if len(res) != len(want) {
					t.Fatalf("shards=%d seed=%d round=%d: %d results, want %d", shards, seed, round, len(res), len(want))
				}
				for i := range want {
					if res[i] != want[i] {
						t.Fatalf("shards=%d seed=%d round=%d op=%d (%+v): got %+v want %+v",
							shards, seed, round, i, ops[i], res[i], want[i])
					}
				}
				sb, ss := batched.Seal(), serial.Seal()
				if sb.Epoch() != ss.Epoch() || sb.N() != ss.N() ||
					math.Float64bits(sb.Sum()) != math.Float64bits(ss.Sum()) {
					t.Fatalf("shards=%d seed=%d round=%d: seal diverged: epoch %d/%d n %d/%d S %x/%x",
						shards, seed, round, sb.Epoch(), ss.Epoch(), sb.N(), ss.N(),
						math.Float64bits(sb.Sum()), math.Float64bits(ss.Sum()))
				}
				for _, id := range ss.IDs() {
					vb, okb := sb.Value(id)
					vs, _ := ss.Value(id)
					if !okb || math.Float64bits(vb) != math.Float64bits(vs) {
						t.Fatalf("shards=%d seed=%d round=%d id=%d: value %x want %x (ok=%v)",
							shards, seed, round, id, math.Float64bits(vb), math.Float64bits(vs), okb)
					}
				}
			}
		}
	}
}

// TestApplyBatchIntraBatchDependency checks an op may target an id
// admitted earlier in the same batch, and that per-id order holds.
func TestApplyBatchIntraBatchDependency(t *testing.T) {
	r, err := New(Config{Rate: 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// id0 := add(2); rebid(id0, 4); id1 := add(8); leave(id1); then a
	// rebid of the not-yet-assigned id1+1 must fail.
	res := r.ApplyBatch([]BatchOp{
		{Kind: BatchAdd, T: 2},
		{Kind: BatchRebid, ID: 0, T: 4},
		{Kind: BatchAdd, T: 8},
		{Kind: BatchLeave, ID: 1},
		{Kind: BatchRebid, ID: 2, T: 1},
	}, nil, nil)
	want := []BatchResult{{ID: 0}, {ID: 0}, {ID: 1}, {ID: 1}, {ID: 2, Code: BatchUnknownID}}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("op %d: got %+v want %+v", i, res[i], want[i])
		}
	}
	snap := r.Seal()
	if snap.N() != 1 {
		t.Fatalf("N=%d, want 1", snap.N())
	}
	if v, ok := snap.Value(0); !ok || v != 4 {
		t.Fatalf("Value(0)=%v,%v, want 4", v, ok)
	}
}

// TestApplyBatchAllocFree pins the batch hot path at zero allocations
// once results and scratch are reused (steady state of the server's
// drain loop). Slot-array growth allocates, so the population is
// admitted first and the measured batches only rebid.
func TestApplyBatchAllocFree(t *testing.T) {
	r, err := New(Config{Rate: 100, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchAdd, T: float64(i + 1)}
	}
	res := make([]BatchResult, 0, n)
	sc := &BatchScratch{}
	res = r.ApplyBatch(ops, res, sc)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchRebid, ID: res[i].ID, T: float64(i + 2)}
	}
	if a := testing.AllocsPerRun(100, func() {
		res = r.ApplyBatch(ops, res[:0], sc)
	}); a != 0 {
		t.Fatalf("ApplyBatch allocates %.1f/op, want 0", a)
	}
}
