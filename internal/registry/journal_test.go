package registry

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/alloc"
)

// recJournal records every journal callback for inspection.
type recJournal struct {
	mu      sync.Mutex
	adds    map[int]float64
	updates map[int]float64
	removes []int
	rates   []float64
	seals   []SealEvent
	pubs    []uint64
}

func newRecJournal() *recJournal {
	return &recJournal{adds: map[int]float64{}, updates: map[int]float64{}}
}

func (j *recJournal) Added(id int, t float64) {
	j.mu.Lock()
	j.adds[id] = t
	j.mu.Unlock()
}

func (j *recJournal) Updated(id int, t float64) {
	j.mu.Lock()
	j.updates[id] = t
	j.mu.Unlock()
}

func (j *recJournal) Removed(id int) {
	j.mu.Lock()
	j.removes = append(j.removes, id)
	j.mu.Unlock()
}

func (j *recJournal) RateChanged(rate float64) {
	j.mu.Lock()
	j.rates = append(j.rates, rate)
	j.mu.Unlock()
}

func (j *recJournal) Sealed(ev SealEvent) {
	j.mu.Lock()
	// Copy the live set out: ev.T is valid only during the call.
	cp := ev
	cp.T = append([]float64(nil), ev.T...)
	j.seals = append(j.seals, cp)
	j.mu.Unlock()
}

func (j *recJournal) Published(snap *Snapshot) {
	j.mu.Lock()
	j.pubs = append(j.pubs, snap.Epoch())
	j.mu.Unlock()
}

func TestJournalObservesMutationsAndSeals(t *testing.T) {
	j := newRecJournal()
	r, err := New(Config{Rate: 10, Shards: 4, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Add(2)
	b, _ := r.Add(4)
	if err := r.Update(a, 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(b); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRate(20); err != nil {
		t.Fatal(err)
	}
	snap := r.Seal()

	if j.adds[a] != 2 || j.adds[b] != 4 {
		t.Fatalf("adds not journaled: %v", j.adds)
	}
	if j.updates[a] != 3 {
		t.Fatalf("update not journaled: %v", j.updates)
	}
	if len(j.removes) != 1 || j.removes[0] != b {
		t.Fatalf("remove not journaled: %v", j.removes)
	}
	if len(j.rates) != 1 || j.rates[0] != 20 {
		t.Fatalf("rate change not journaled: %v", j.rates)
	}
	// New seals epoch 1 internally, so the explicit seal is epoch 2.
	last := j.seals[len(j.seals)-1]
	if last.Epoch != snap.Epoch() || last.Rate != 20 || last.Live != 1 || last.Next != 2 {
		t.Fatalf("seal event %+v does not match snapshot (epoch %d)", last, snap.Epoch())
	}
	if last.T[a] != 3 || last.T[b] != 0 {
		t.Fatalf("seal event population %v, want id %d at 3 and id %d absent", last.T, a, b)
	}
	if j.pubs[len(j.pubs)-1] != snap.Epoch() {
		t.Fatalf("published epochs %v missing %d", j.pubs, snap.Epoch())
	}
}

func TestAttachJournalDetach(t *testing.T) {
	r, err := New(Config{Rate: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(1); err != nil { // unjournaled
		t.Fatal(err)
	}
	j := newRecJournal()
	r.AttachJournal(j)
	id, _ := r.Add(2)
	if j.adds[id] != 2 || len(j.adds) != 1 {
		t.Fatalf("attached journal saw %v, want only id %d", j.adds, id)
	}
	r.AttachJournal(nil)
	if _, err := r.Add(3); err != nil {
		t.Fatal(err)
	}
	if len(j.adds) != 1 {
		t.Fatalf("detached journal still receiving mutations: %v", j.adds)
	}
}

func TestRestoreAgent(t *testing.T) {
	r, err := New(Config{Rate: 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreAgent(5, 2.5); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Value(5); !ok || v != 2.5 {
		t.Fatalf("restored agent: %v %v", v, ok)
	}
	if err := r.RestoreAgent(5, 1); err == nil {
		t.Fatalf("double restore of a live id succeeded")
	}
	var ve *alloc.ValueError
	if err := r.RestoreAgent(6, math.Inf(1)); !errors.As(err, &ve) {
		t.Fatalf("non-finite bid restored: %v", err)
	}
	if err := r.RestoreAgent(-1, 1); err == nil {
		t.Fatalf("negative id restored")
	}
	// The id counter is raised past every restored id.
	if id, _ := r.Add(1); id != 6 {
		t.Fatalf("Add assigned %d after restoring id 5, want 6", id)
	}
	r.RestoreNext(100)
	r.RestoreNext(50) // never lowers
	if id, _ := r.Add(1); id != 100 {
		t.Fatalf("Add assigned %d after RestoreNext(100)", id)
	}
}
