package registry

import (
	"repro/internal/mech"
	"repro/internal/parallel"
)

// Sweep holds the reusable buffers of full-population operations over
// sealed snapshots: the bid vector, the allocation vector and the
// truthful agent population, all in ascending id order. A Sweep is
// not safe for concurrent use — give each sweeping goroutine its own
// (snapshots themselves may be shared freely).
type Sweep struct {
	vals   []float64
	x      []float64
	agents []mech.Agent
}

// Values gathers the sealed bids in ascending id order into the
// sweep's reused buffer, fanning the gather out cache-blocked over
// the given workers (<= 0 means GOMAXPROCS). The returned slice is
// valid until the next call on this sweep.
func (w *Sweep) Values(snap *Snapshot, workers int) []float64 {
	n := snap.N()
	if cap(w.vals) < n {
		w.vals = make([]float64, n)
	}
	w.vals = w.vals[:n]
	parallel.ForEachBlock(n, 0, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			w.vals[j] = snap.t[snap.ids[j]]
		}
	})
	return w.vals
}

// Alloc fills the full PR allocation vector x_j = R/(b_j·S) for the
// sealed population in ascending id order, cache-blocked across
// workers. Because the sealed S is the canonical ascending-id
// reduction, the result is bitwise-identical to
// alloc.ProportionalInto over the id-ordered bid vector — and to a
// serial alloc.Stream.SnapshotInto of the same population. The
// returned slice is valid until the next call on this sweep.
func (w *Sweep) Alloc(snap *Snapshot, workers int) []float64 {
	n := snap.N()
	if cap(w.x) < n {
		w.x = make([]float64, n)
	}
	w.x = w.x[:n]
	parallel.ForEachBlock(n, 0, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			w.x[j] = snap.rate / (snap.t[snap.ids[j]] * snap.s)
		}
	})
	return w.x
}

// Payments runs a full compensation-and-bonus payment pass over the
// sealed population, assuming truthful execution: the bids are
// gathered cache-blocked into a truthful agent vector and handed to
// the engine's O(n) leave-one-out machinery. The Outcome is owned by
// the engine and invalidated by its next run, exactly as with a
// direct engine call; errors (e.g. mech.ErrNeedTwoAgents for a
// population under two) pass through.
func (w *Sweep) Payments(snap *Snapshot, eng *mech.Engine, workers int) (*mech.Outcome, error) {
	vals := w.Values(snap, workers)
	if cap(w.agents) < len(vals) {
		w.agents = make([]mech.Agent, len(vals))
	}
	w.agents = w.agents[:len(vals)]
	parallel.ForEachBlock(len(vals), 0, workers, func(lo, hi int) {
		mech.TruthfulInto(w.agents[lo:hi:hi], vals[lo:hi])
	})
	return eng.Run(w.agents, snap.rate)
}
