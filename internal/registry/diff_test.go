package registry

// Differential tests: W goroutines hammer the registry with adds,
// rebids and removes while recording what they did; the recorded log
// is then replayed serially through alloc.Stream, and the sealed
// epoch must match the serial replay EXACTLY — same canonical S, same
// allocation vector, same payment vector, bitwise — for every shard
// and worker count. Run under -race (make check does) this doubles as
// the registry's race test.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mech"
	"repro/internal/numeric"
)

// op is one recorded registry mutation.
type op struct {
	kind byte // 'a', 'u', 'r'
	id   int
	t    float64
}

// hammer runs workers concurrent goroutines of mixed traffic against
// r, each owning the agents it added (so per-id histories are total
// orders regardless of scheduling), and returns every worker's log.
// When seals is true, an extra goroutine seals epochs throughout to
// exercise the publish path under contention.
func hammer(tb testing.TB, r *Registry, workers, opsPerWorker int, seals bool) [][]op {
	tb.Helper()
	logs := make([][]op, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0x9e3779b97f4a7c15))
			var mine []int // ids this worker owns and has not removed
			log := make([]op, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				p := rng.Float64()
				switch {
				case p < 0.4 || len(mine) == 0:
					t := 0.1 + 10*rng.Float64()
					id, err := r.Add(t)
					if err != nil {
						tb.Errorf("worker %d: Add: %v", w, err)
						return
					}
					mine = append(mine, id)
					log = append(log, op{'a', id, t})
				case p < 0.85:
					id := mine[rng.IntN(len(mine))]
					t := 0.1 + 10*rng.Float64()
					if err := r.Update(id, t); err != nil {
						tb.Errorf("worker %d: Update(%d): %v", w, id, err)
						return
					}
					log = append(log, op{'u', id, t})
				default:
					j := rng.IntN(len(mine))
					id := mine[j]
					if err := r.Remove(id); err != nil {
						tb.Errorf("worker %d: Remove(%d): %v", w, id, err)
						return
					}
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					log = append(log, op{'r', id, 0})
				}
				// Interleave lock-free reads with the writes, and have
				// one worker seal periodically so publishes race the
				// other workers' mutations.
				if seals && w == 0 && i%200 == 199 {
					r.Seal()
				}
				if snap := r.Snapshot(); snap.N() > 0 {
					ids := snap.IDs()
					if _, ok := snap.Load(ids[rng.IntN(len(ids))]); !ok {
						tb.Errorf("worker %d: sealed id missing from its own snapshot", w)
						return
					}
				}
			}
			logs[w] = log
		}(w)
	}
	wg.Wait()
	return logs
}

// replay feeds the merged logs serially through a fresh alloc.Stream,
// applying each agent's history in ascending registry-id order (every
// id is owned by one worker, so its per-worker order is its total
// order; distinct ids commute). It returns the stream plus the
// registry-id list in the ascending order the stream saw them.
func replay(tb testing.TB, rate float64, logs [][]op) *alloc.Stream {
	tb.Helper()
	maxID := -1
	for _, log := range logs {
		for _, o := range log {
			if o.id > maxID {
				maxID = o.id
			}
		}
	}
	byID := make([][]op, maxID+1)
	for _, log := range logs {
		for _, o := range log {
			byID[o.id] = append(byID[o.id], o)
		}
	}
	st, err := alloc.NewStream(rate)
	if err != nil {
		tb.Fatal(err)
	}
	for id, ops := range byID {
		if len(ops) == 0 {
			continue // id assigned by a worker that errored out
		}
		var sid int
		for _, o := range ops {
			switch o.kind {
			case 'a':
				sid, err = st.Add(o.t)
			case 'u':
				err = st.Update(sid, o.t)
			case 'r':
				err = st.Remove(sid)
			}
			if err != nil {
				tb.Fatalf("replay of id %d: %v", id, err)
			}
		}
	}
	return st
}

func TestRegistryMatchesSerialStreamReplayExactly(t *testing.T) {
	const rate = 20.0
	for _, shards := range []int{1, 4, 32} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				r, err := New(Config{Rate: rate, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				logs := hammer(t, r, workers, 1500, true)
				if t.Failed() {
					return
				}
				snap := r.Seal()
				st := replay(t, rate, logs)

				// Sealed aggregate: bitwise equal to the serial
				// canonical sum.
				if got, want := snap.Sum(), st.Sealed(); got != want {
					t.Errorf("sealed S = %v, want serial %v (diff %g)", got, want, got-want)
				}
				if snap.N() != st.N() {
					t.Fatalf("sealed N = %d, want serial %d", snap.N(), st.N())
				}
				// And within drift tolerance of the delta-maintained
				// running partials on both sides.
				if !numeric.AlmostEqual(r.ApproxSum(), snap.Sum(), 1e-9, 1e-12) {
					t.Errorf("registry running partial %g drifted from sealed %g", r.ApproxSum(), snap.Sum())
				}

				// Full allocation sweep: bitwise equal to the serial
				// stream snapshot, element by element.
				sids, sx := st.SnapshotInto(nil, nil)
				var sw Sweep
				x := sw.Alloc(snap, workers)
				if len(x) != len(sx) {
					t.Fatalf("allocation sweep length %d, want %d", len(x), len(sx))
				}
				vals := sw.Values(snap, workers)
				for j := range x {
					if x[j] != sx[j] {
						t.Fatalf("x[%d] = %v, want serial %v", j, x[j], sx[j])
					}
					sv, _ := st.Value(sids[j])
					if vals[j] != sv {
						t.Fatalf("bid[%d] = %v, want serial %v", j, vals[j], sv)
					}
					// Per-agent O(1) snapshot loads agree bitwise with
					// the sweep (same S, same expression).
					if lx, ok := snap.Load(snap.IDs()[j]); !ok || lx != x[j] {
						t.Fatalf("Load(%d) = %v/%v, want %v", snap.IDs()[j], lx, ok, x[j])
					}
				}

				// Payment sweep: bitwise equal to the serial engine
				// run over the stream's population.
				if snap.N() < 2 {
					return
				}
				regEng := mech.NewEngine(mech.CompensationBonus{})
				o, err := sw.Payments(snap, regEng, workers)
				if err != nil {
					t.Fatal(err)
				}
				serialEng := mech.NewEngine(mech.CompensationBonus{})
				serialVals := make([]float64, len(sids))
				for j, id := range sids {
					serialVals[j], _ = st.Value(id)
				}
				so, err := serialEng.Run(mech.TruthfulInto(nil, serialVals), rate)
				if err != nil {
					t.Fatal(err)
				}
				for j := range o.Payment {
					if o.Payment[j] != so.Payment[j] || o.Compensation[j] != so.Compensation[j] || o.Bonus[j] != so.Bonus[j] {
						t.Fatalf("payment[%d] = (%v, %v, %v), want serial (%v, %v, %v)",
							j, o.Compensation[j], o.Bonus[j], o.Payment[j],
							so.Compensation[j], so.Bonus[j], so.Payment[j])
					}
				}
			})
		}
	}
}

func TestConcurrentReadersSeeConsistentEpochs(t *testing.T) {
	// Readers racing a sealer must always observe internally
	// consistent snapshots: every id a snapshot lists resolves, and
	// the listed population reproduces the sealed S exactly.
	r, err := New(Config{Rate: 10, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mustAdd(t, r, 1+float64(i%7))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				var k numeric.KahanSum
				for _, id := range snap.IDs() {
					v, ok := snap.Value(id)
					if !ok {
						t.Errorf("snapshot id %d does not resolve", id)
						return
					}
					k.Add(1 / v)
				}
				if k.Value() != snap.Sum() {
					t.Errorf("snapshot S %v does not match its own population sum %v", snap.Sum(), k.Value())
					return
				}
				_ = rng
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if err := r.Update(i%64, 0.5+float64(i%13)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			r.Seal()
		}
	}
	close(stop)
	wg.Wait()
}

// TestCorrectedSealMatchesSerialReplayExactly pins the corrected-epoch
// protocol: a SealCorrected over a concurrently-built population must
// be bitwise identical to a serial alloc.Stream replay in which the
// dropped ids were removed and the weighted ids rebid at t/weight —
// for every shard and worker count. Run under -race (make check does)
// this also races corrected seals against writers.
func TestCorrectedSealMatchesSerialReplayExactly(t *testing.T) {
	const rate = 20.0
	for _, shards := range []int{1, 4, 32} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				r, err := New(Config{Rate: rate, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				logs := hammer(t, r, workers, 1200, true)
				if t.Failed() {
					return
				}

				// Build a deterministic correction over the live ids:
				// every 5th live id is dropped, every 3rd discounted.
				live := r.Seal().IDs()
				corr := &Correction{Weights: map[int]float64{}, Drop: map[int]bool{}}
				for j, id := range live {
					switch {
					case j%5 == 0:
						corr.Drop[id] = true
					case j%3 == 0:
						corr.Weights[id] = 0.5
					}
				}
				// Dropping or weighting dead ids must be ignored, and a
				// dropped id must win over its weight.
				corr.Drop[1<<30] = true
				corr.Weights[1<<30] = 0.25
				if len(live) > 0 {
					corr.Weights[live[0]] = 0.25 // live[0] is also dropped
				}

				snap, err := r.SealCorrected(corr)
				if err != nil {
					t.Fatal(err)
				}
				dropped, discounted := snap.Correction()
				wantDiscount := 0
				for j, id := range live {
					if j%5 != 0 && j%3 == 0 && !corr.Drop[id] {
						wantDiscount++
					}
				}
				if dropped != len(corr.Drop)-1 || discounted != wantDiscount {
					t.Fatalf("Correction() = %d dropped, %d discounted; want %d, %d",
						dropped, discounted, len(corr.Drop)-1, wantDiscount)
				}

				// Serial replay with the same adjustments appended.
				st := replay(t, rate, logs)
				sids, _ := st.SnapshotInto(nil, nil)
				regToStream := map[int]int{}
				for j, id := range live {
					regToStream[id] = sids[j]
				}
				for j, id := range live {
					if j%5 == 0 {
						if err := st.Remove(regToStream[id]); err != nil {
							t.Fatal(err)
						}
						continue
					}
					if w, ok := corr.Weights[id]; ok {
						v, _ := st.Value(regToStream[id])
						if err := st.Update(regToStream[id], v/w); err != nil {
							t.Fatal(err)
						}
					}
				}

				if got, want := snap.Sum(), st.Sealed(); got != want {
					t.Errorf("corrected S = %v, want serial %v (diff %g)", got, want, got-want)
				}
				if snap.N() != st.N() {
					t.Fatalf("corrected N = %d, want serial %d", snap.N(), st.N())
				}
				_, sx := st.SnapshotInto(nil, nil)
				var sw Sweep
				x := sw.Alloc(snap, workers)
				for j := range x {
					if x[j] != sx[j] {
						t.Fatalf("corrected x[%d] = %v, want serial %v", j, x[j], sx[j])
					}
				}

				// Dropped ids are gone from the corrected epoch but the
				// registry itself is untouched: the next plain seal
				// restores them at their original bids.
				for j, id := range live {
					if j%5 == 0 && snap.Contains(id) {
						t.Fatalf("dropped id %d still in corrected epoch", id)
					}
				}
				plain := r.Seal()
				if dropped, discounted := plain.Correction(); dropped != 0 || discounted != 0 {
					t.Fatalf("plain seal reports a correction (%d, %d)", dropped, discounted)
				}
				if plain.N() != len(live) {
					t.Fatalf("plain reseal N = %d, want %d", plain.N(), len(live))
				}
				for j, id := range live {
					v, ok := plain.Value(id)
					sv, _ := st.Value(regToStream[id])
					if j%5 == 0 {
						if !ok {
							t.Fatalf("id %d lost by corrected seal", id)
						}
						continue
					}
					if corr.Weights[id] != 0 && ok && v == sv {
						t.Fatalf("corrected seal mutated the registry bid of id %d", id)
					}
				}
			})
		}
	}
}

// TestRemovedIDsAreNeverReused pins the no-id-reuse contract the
// health controller's eject path depends on: removing an agent frees
// its slot but never its id, so a corrected epoch that drops id k can
// never accidentally drop a later joiner, even when the later Add
// recycles the same dense slot.
func TestRemovedIDsAreNeverReused(t *testing.T) {
	r, err := New(Config{Rate: 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var removed []int
	for i := 0; i < 500; i++ {
		id, err := r.Add(1 + float64(i%9))
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		seen[id] = true
		if i%2 == 1 { // free every other slot to force slot recycling
			if err := r.Remove(id); err != nil {
				t.Fatal(err)
			}
			removed = append(removed, id)
		}
	}
	snap := r.Seal()
	for _, id := range removed {
		if snap.Contains(id) {
			t.Fatalf("removed id %d resurfaced in a sealed epoch", id)
		}
		if err := r.Update(id, 2); err == nil {
			t.Fatalf("Update(%d) on a removed id succeeded", id)
		}
	}
	// A correction naming a removed id is a no-op, not a resurrection.
	snap2, err := r.SealCorrected(&Correction{Drop: map[int]bool{removed[0]: true}})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := snap2.Correction(); d != 0 {
		t.Fatalf("dropping a removed id counted as a correction")
	}
	if snap2.Sum() != snap.Sum() {
		t.Fatalf("no-op correction changed S: %v vs %v", snap2.Sum(), snap.Sum())
	}

	// Malformed weights are rejected before any lock is taken.
	for _, w := range []float64{0, -1, 1.5, math.NaN(), math.Inf(1)} {
		if _, err := r.SealCorrected(&Correction{Weights: map[int]float64{0: w}}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}
