package registry

// Throughput benchmarks behind BENCH_registry.json (make
// bench-registry):
//
//	RegistrySnapshotRead          — one lock-free O(1) query bundle
//	RegistryMixed/workers=W       — W goroutines of 90/10 read/rebid
//	                                traffic with periodic seals; ns/op
//	                                is per operation ACROSS workers,
//	                                so scaling shows as ns/op shrinking
//	                                with W
//	RegistrySeal/n=N              — sealing an N-agent population
//
// The committed baseline was recorded on a single-core container
// (GOMAXPROCS=1), where worker counts cannot buy wall-clock
// parallelism — the flat workers sweep there demonstrates that the
// concurrency machinery costs nothing, not what it gains; on a
// multi-core host the same sweep shows the near-linear scaling the
// lock-free read path and 1/shards write contention are built for.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

const benchPop = 8192

func benchRegistry(b *testing.B, shards int) *Registry {
	b.Helper()
	r, err := New(Config{Rate: 20, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchPop; i++ {
		if _, err := r.Add(0.5 + float64(i%31)); err != nil {
			b.Fatal(err)
		}
	}
	r.Seal()
	return r
}

func BenchmarkRegistrySnapshotRead(b *testing.B) {
	r := benchRegistry(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		snap := r.Snapshot()
		id := (i * 2654435761) % benchPop
		x, _ := snap.Load(id)
		e, _ := snap.ExclusionLatency(id)
		sink += x + e
	}
	_ = sink
}

func BenchmarkRegistryMixed(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := benchRegistry(b, 32)
			// Worker 0 seals on a cadence scaled by the worker count so
			// the sweep points carry the same seal load per total
			// operation — otherwise higher worker counts would look
			// faster just by sealing less.
			sealEvery := 4096 / workers
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				ops := b.N / workers
				if w == 0 {
					ops += b.N % workers
				}
				wg.Add(1)
				go func(w, ops int) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(uint64(w), 42))
					// Each worker rebids only its own id stripe, the
					// usual serving pattern (agents rebid themselves,
					// everyone reads everyone).
					lo := w * benchPop / workers
					hi := (w + 1) * benchPop / workers
					var sink float64
					for i := 0; i < ops; i++ {
						if rng.Float64() < 0.9 {
							snap := r.Snapshot()
							id := rng.IntN(benchPop)
							x, _ := snap.Load(id)
							e, _ := snap.ExclusionLatency(id)
							sink += x + e
						} else {
							id := lo + rng.IntN(hi-lo)
							if err := r.Update(id, 0.1+10*rng.Float64()); err != nil {
								b.Error(err)
								return
							}
						}
						if w == 0 && i%sealEvery == sealEvery-1 {
							r.Seal()
						}
					}
					_ = sink
				}(w, ops)
			}
			wg.Wait()
		})
	}
}

func BenchmarkRegistrySeal(b *testing.B) {
	for _, n := range []int{1024, 16384, 131072} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r, err := New(Config{Rate: 20, Shards: 32})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := r.Add(0.5 + float64(i%31)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Seal()
			}
		})
	}
}
