package registry

import (
	"errors"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mech"
	"repro/internal/numeric"
	"repro/internal/obs"
)

func mustAdd(t *testing.T, r *Registry, v float64) int {
	t.Helper()
	id, err := r.Add(v)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRegistryBasicLifecycle(t *testing.T) {
	r, err := New(Config{Rate: 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot(); got == nil || got.N() != 0 || got.Epoch() != 1 {
		t.Fatalf("fresh registry snapshot = %+v, want sealed empty epoch 1", got)
	}
	ids := make([]int, 0, 4)
	for _, v := range []float64{1, 2, 5, 10} {
		ids = append(ids, mustAdd(t, r, v))
	}
	for i, id := range ids {
		if id != i {
			t.Errorf("id %d assigned as %d, want monotone from 0", i, id)
		}
	}
	if err := r.Update(ids[1], 4); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(ids[2]); err != nil {
		t.Fatal(err)
	}
	if got := r.Live(); got != 3 {
		t.Errorf("Live = %d, want 3", got)
	}

	snap := r.Seal()
	if snap.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", snap.Epoch())
	}
	if snap.N() != 3 {
		t.Fatalf("sealed N = %d, want 3", snap.N())
	}
	// Canonical S must be exactly the ascending-id compensated sum.
	var k numeric.KahanSum
	for _, v := range []float64{1, 4, 10} {
		k.Add(1 / v)
	}
	if snap.Sum() != k.Value() {
		t.Errorf("sealed S = %g, want %g", snap.Sum(), k.Value())
	}
	if v, ok := snap.Value(ids[1]); !ok || v != 4 {
		t.Errorf("sealed bid of %d = %g/%v, want 4", ids[1], v, ok)
	}
	if _, ok := snap.Value(ids[2]); ok {
		t.Error("removed agent still visible in sealed epoch")
	}
	x, ok := snap.Load(ids[0])
	if !ok || x != snap.Rate()/(1*snap.Sum()) {
		t.Errorf("Load = %g/%v, want R/(t*S)", x, ok)
	}
	if got, want := snap.OptimalLatency(), snap.Rate()*snap.Rate()/snap.Sum(); got != want {
		t.Errorf("OptimalLatency = %g, want %g", got, want)
	}
	excl, ok := snap.ExclusionLatency(ids[0])
	if want := snap.Rate() * snap.Rate() / (snap.Sum() - 1); !ok || excl != want {
		t.Errorf("ExclusionLatency = %g/%v, want %g", excl, ok, want)
	}

	// Mutations after a seal do not disturb the published snapshot.
	if err := r.Update(ids[0], 100); err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Value(ids[0]); v != 1 {
		t.Errorf("sealed bid mutated to %g after post-seal update", v)
	}
}

func TestRegistryErrorsMatchStreamContract(t *testing.T) {
	r, err := New(Config{Rate: 5})
	if err != nil {
		t.Fatal(err)
	}
	var ve *alloc.ValueError
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := r.Add(bad); !errors.As(err, &ve) {
			t.Errorf("Add(%g) error = %v, want *alloc.ValueError", bad, err)
		}
	}
	id := mustAdd(t, r, 2)
	if err := r.Update(id, math.NaN()); !errors.As(err, &ve) {
		t.Errorf("Update NaN error = %v, want *alloc.ValueError", err)
	}
	if err := r.Update(id+7, 1); err == nil {
		t.Error("Update of unassigned id succeeded")
	}
	if err := r.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(id); err == nil {
		t.Error("double Remove succeeded")
	}
	if err := r.SetRate(math.Inf(1)); !errors.As(err, &ve) {
		t.Errorf("SetRate Inf error = %v, want *alloc.ValueError", err)
	}
	if _, err := New(Config{Rate: -3}); !errors.As(err, &ve) {
		t.Errorf("New with negative rate error = %v, want *alloc.ValueError", err)
	}
}

func TestRegistryEmptyAndRateEdgeCases(t *testing.T) {
	r, err := New(Config{Rate: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Seal()
	if got := snap.OptimalLatency(); !math.IsInf(got, 1) {
		t.Errorf("empty optimum under positive rate = %g, want +Inf", got)
	}
	if err := r.SetRate(0); err != nil {
		t.Fatal(err)
	}
	snap = r.Seal()
	if got := snap.OptimalLatency(); got != 0 {
		t.Errorf("empty optimum at rate 0 = %g, want 0", got)
	}
	if _, ok := snap.Load(0); ok {
		t.Error("Load of absent id reported ok")
	}
	if _, _, ok := snap.Payment(0); ok {
		t.Error("Payment of absent id reported ok")
	}
}

func TestSealedAggregateIndependentOfShardCount(t *testing.T) {
	// The same serial event sequence must seal to bitwise-identical
	// aggregates and allocations for every shard count: the canonical
	// reduction is over ascending ids, which sharding does not touch.
	apply := func(shards int) *Snapshot {
		r, err := New(Config{Rate: 20, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			mustAdd(t, r, 0.5+float64(i%17))
		}
		for i := 0; i < 300; i += 3 {
			if err := r.Remove(i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < 300; i += 3 {
			if err := r.Update(i, 1+float64(i%11)); err != nil {
				t.Fatal(err)
			}
		}
		return r.Seal()
	}
	ref := apply(1)
	var refSweep Sweep
	refX := append([]float64(nil), refSweep.Alloc(ref, 1)...)
	for _, shards := range []int{2, 8, 64} {
		snap := apply(shards)
		if snap.Sum() != ref.Sum() {
			t.Errorf("shards=%d: S = %g, want %g", shards, snap.Sum(), ref.Sum())
		}
		if snap.N() != ref.N() {
			t.Fatalf("shards=%d: N = %d, want %d", shards, snap.N(), ref.N())
		}
		var sw Sweep
		x := sw.Alloc(snap, 1)
		for j := range x {
			if x[j] != refX[j] {
				t.Fatalf("shards=%d: x[%d] = %g, want %g", shards, j, x[j], refX[j])
			}
		}
	}
}

func TestSweepAllocMatchesProportionalExactly(t *testing.T) {
	r, err := New(Config{Rate: 20, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 97; i++ {
		mustAdd(t, r, 0.25+float64(i%13))
	}
	snap := r.Seal()
	var sw Sweep
	vals := append([]float64(nil), sw.Values(snap, 2)...)
	x := sw.Alloc(snap, 2)
	want, err := alloc.Proportional(vals, snap.Rate())
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if x[j] != want[j] {
			t.Fatalf("x[%d] = %g, want exactly %g", j, x[j], want[j])
		}
	}
}

func TestSnapshotPaymentMatchesEngine(t *testing.T) {
	r, err := New(Config{Rate: 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10} {
		mustAdd(t, r, v)
	}
	snap := r.Seal()
	var sw Sweep
	eng := mech.NewEngine(mech.CompensationBonus{})
	o, err := sw.Payments(snap, eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j, id := range snap.IDs() {
		comp, bonus, ok := snap.Payment(id)
		if !ok {
			t.Fatalf("Payment(%d) not ok", id)
		}
		if !numeric.AlmostEqual(comp, o.Compensation[j], 1e-9, 1e-12) {
			t.Errorf("agent %d compensation: O(1) query %g vs engine %g", id, comp, o.Compensation[j])
		}
		if !numeric.AlmostEqual(bonus, o.Bonus[j], 1e-9, 1e-12) {
			t.Errorf("agent %d bonus: O(1) query %g vs engine %g", id, bonus, o.Bonus[j])
		}
	}
}

func TestCoalescedRebidAccounting(t *testing.T) {
	met := obs.NewRegistryMetrics(obs.NewRegistry())
	r, err := New(Config{Rate: 5, Shards: 2, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	id := mustAdd(t, r, 2)
	// First rebid after the add, same epoch: the added bid was never
	// sealed, so the rebid coalesces with it.
	if err := r.Update(id, 3); err != nil {
		t.Fatal(err)
	}
	if got := met.Coalesced.Value(); got != 1 {
		t.Errorf("coalesced after same-epoch rebid = %d, want 1", got)
	}
	r.Seal()
	// Post-seal rebid overwrites a sealed bid: not coalesced.
	if err := r.Update(id, 4); err != nil {
		t.Fatal(err)
	}
	if got := met.Coalesced.Value(); got != 1 {
		t.Errorf("coalesced after post-seal rebid = %d, want still 1", got)
	}
	// And a second rebid in the same open epoch coalesces again.
	if err := r.Update(id, 5); err != nil {
		t.Fatal(err)
	}
	if got := met.Coalesced.Value(); got != 2 {
		t.Errorf("coalesced after second same-epoch rebid = %d, want 2", got)
	}
	if got := met.Updates.Value(); got != 3 {
		t.Errorf("updates = %d, want 3", got)
	}
	if got := met.Epochs.Value(); got != 2 { // New's seal + explicit
		t.Errorf("epochs = %d, want 2", got)
	}
}

func TestPartialRebuildCancelsDrift(t *testing.T) {
	met := obs.NewRegistryMetrics(obs.NewRegistry())
	r, err := New(Config{Rate: 5, Shards: 1, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	id := mustAdd(t, r, 3)
	for i := 0; i < 3*rebuildEvery; i++ {
		if err := r.Update(id, 0.1+float64(i%97)/7); err != nil {
			t.Fatal(err)
		}
	}
	if met.Rebuilds.Value() == 0 {
		t.Error("no partial rebuild after 3*rebuildEvery mutations")
	}
	snap := r.Seal()
	if got := r.ApproxSum(); !numeric.AlmostEqual(got, snap.Sum(), 1e-9, 1e-12) {
		t.Errorf("running partial %g drifted from canonical %g", got, snap.Sum())
	}
}

func TestSnapshotReadsZeroAllocs(t *testing.T) {
	r, err := New(Config{Rate: 20, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		mustAdd(t, r, 1+float64(i%9))
	}
	r.Seal()
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		snap := r.Snapshot()
		x, _ := snap.Load(421)
		e, _ := snap.ExclusionLatency(421)
		c, b, _ := snap.Payment(421)
		sink += x + e + c + b + snap.OptimalLatency()
	})
	if allocs != 0 {
		t.Errorf("snapshot read path allocated %.1f/op, want 0", allocs)
	}
	_ = sink
}
