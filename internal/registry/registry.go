// Package registry is the concurrent, sharded bid registry behind the
// coordinator's serving path. The paper's PR allocation and its
// compensation-and-bonus payments all price agents off one aggregate
// S = Σ 1/b_i; internal/alloc.Stream maintains that aggregate online
// but is single-goroutine, so a coordinator built on it serializes
// every bid, rebid and query. This package scales the same state
// across cores:
//
//   - Writes are lock-striped. Agents live in power-of-two many
//     shards (shard = id mod nShards); each shard keeps a dense slot
//     array of bids with a free list — id-to-slot resolution is two
//     array reads, no map on the hot path — plus a compensated
//     partial sum of 1/b_i maintained as a delta on every mutation
//     and periodically rebuilt per shard to cancel drift. Concurrent
//     mutations contend only when they hash to the same shard.
//
//   - Reads are lock-free. Seal freezes the current population into
//     an immutable Snapshot — {S, R, epoch} plus the id-indexed bid
//     arrays — and publishes it through an atomic pointer. Readers
//     answer x_i, L*, L_{-i} and per-agent payment queries against
//     the snapshot in O(1) with zero allocations and no lock, while
//     writers keep mutating the shards underneath.
//
// Determinism. The sealed aggregate is NOT the sum of the per-shard
// running partials (their value depends on the interleaving of
// mutations): Seal recomputes S as a single Neumaier summation over
// the live bids in ascending id order. That reduction depends only on
// the live (id, bid) set, so it is independent of the shard count,
// the worker count and the mutation history — and it is exactly what
// alloc.Stream.Sealed and alloc.ProportionalInto compute, which makes
// sealed-epoch aggregates, allocation vectors and payment sweeps
// bitwise-identical to a serial replay of the same events through
// alloc.Stream. The differential tests pin this down.
//
// Ids are assigned by a global monotonic counter and never recycled,
// matching alloc.Stream; the id-indexed structures therefore grow
// with the total number of agents ever admitted (4-16 bytes per id),
// which a long-lived coordinator bounds by recreating the registry at
// natural epochs (e.g. a mechanism round boundary).
package registry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// DefaultShards is the shard count used when Config.Shards is not
// positive: wide enough that a few dozen writer goroutines rarely
// collide, small enough that sealing's fixed per-shard work is noise.
const DefaultShards = 32

// rebuildEvery bounds the drift of a shard's running partial sum:
// after this many mutations the partial is recomputed from the live
// slots with compensated summation, mirroring alloc.Stream.
const rebuildEvery = 4096

// Config configures a Registry.
type Config struct {
	// Rate is the total job arrival rate R. Like alloc.NewStream, a
	// negative or non-finite rate is rejected.
	Rate float64
	// Shards is the shard count, rounded up to a power of two;
	// non-positive means DefaultShards.
	Shards int
	// Metrics is the optional instrumentation bundle (nil disables).
	Metrics *obs.RegistryMetrics
	// Journal is the optional write-ahead hook on the mutation and
	// seal paths (nil disables; see Journal). internal/wal implements
	// it to make the registry crash-recoverable.
	Journal Journal
}

// Registry is the concurrent sharded bid registry. All methods are
// safe for concurrent use.
type Registry struct {
	shards  []shard
	mask    int // nShards - 1 (shard count is a power of two)
	bits    int // log2(shard count): id = local<<bits | shard
	nextID  atomic.Int64
	rateBit atomic.Uint64
	epoch   atomic.Uint64 // sealed epochs so far
	snap    atomic.Pointer[Snapshot]
	sealMu  sync.Mutex
	met     *obs.RegistryMetrics
	journal Journal // read under a shard lock or sealMu; see AttachJournal
}

// shard is one lock stripe: a dense slot array of bids with a free
// list, an id-to-slot index, and the shard's compensated running
// partial of Σ 1/b over its live slots.
type shard struct {
	mu sync.Mutex

	// slotOf maps the local id (id / nShards) to its slot, -1 when
	// absent. Walking it in index order visits the shard's live ids
	// in ascending global-id order.
	slotOf []int32
	// Dense slot arrays; a free slot has inv == 0 (a live bid always
	// has inv > 0). stamp records the epoch counter at the slot's
	// last write, for coalesced-rebid accounting.
	ts    []float64
	inv   []float64
	stamp []uint64
	free  []int32

	// Neumaier running partial of inv over live slots, maintained as
	// a delta per mutation and rebuilt every rebuildEvery mutations.
	psum, pcomp float64
	muts        int
	live        int

	_ [32]byte // keep hot shard fields off shared cache lines
}

// New returns an empty registry. The zero-agent state is sealed
// immediately, so Snapshot never returns nil.
func New(cfg Config) (*Registry, error) {
	if err := checkRate(cfg.Rate); err != nil {
		return nil, err
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	r := &Registry{shards: make([]shard, pow), mask: pow - 1, bits: shardBits(pow - 1), met: cfg.Metrics, journal: cfg.Journal}
	r.rateBit.Store(math.Float64bits(cfg.Rate))
	r.Seal()
	return r, nil
}

// Shards returns the shard count.
func (r *Registry) Shards() int { return r.mask + 1 }

// Rate returns the current total arrival rate.
func (r *Registry) Rate() float64 { return math.Float64frombits(r.rateBit.Load()) }

// SetRate changes the total arrival rate; it takes effect at the next
// Seal. A negative or non-finite rate is a *alloc.ValueError, the
// same contract as alloc.Stream. Rate changes serialize against seals
// (they share the seal mutex) so a journal sees them in the order the
// epochs observed them.
func (r *Registry) SetRate(rate float64) error {
	if err := checkRate(rate); err != nil {
		return err
	}
	r.sealMu.Lock()
	r.rateBit.Store(math.Float64bits(rate))
	if j := r.journal; j != nil {
		j.RateChanged(rate)
	}
	r.sealMu.Unlock()
	return nil
}

// Add registers an agent bidding t and returns its id. A non-positive
// or non-finite t is a *alloc.ValueError, the same contract as
// alloc.Stream.Add. Ids are globally monotone: an Add never reuses
// the id of a removed agent.
func (r *Registry) Add(t float64) (int, error) {
	if err := checkT(t); err != nil {
		return 0, err
	}
	id := int(r.nextID.Add(1) - 1)
	sh := &r.shards[id&r.mask]
	local := id >> r.bits
	v := 1 / t

	sh.mu.Lock()
	for len(sh.slotOf) <= local {
		sh.slotOf = append(sh.slotOf, -1)
	}
	var slot int32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.ts[slot] = t
		sh.inv[slot] = v
		sh.stamp[slot] = r.epoch.Load()
	} else {
		slot = int32(len(sh.ts))
		sh.ts = append(sh.ts, t)
		sh.inv = append(sh.inv, v)
		sh.stamp = append(sh.stamp, r.epoch.Load())
	}
	sh.slotOf[local] = slot
	sh.padd(v)
	sh.live++
	sh.bump(r.met)
	if j := r.journal; j != nil {
		j.Added(id, t)
	}
	sh.mu.Unlock()

	r.met.Mutated("add", false)
	return id, nil
}

// Remove deregisters an agent.
func (r *Registry) Remove(id int) error {
	sh, local, err := r.locate(id)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	slot := sh.slot(local)
	if slot < 0 {
		sh.mu.Unlock()
		return unknownID(id)
	}
	sh.padd(-sh.inv[slot])
	sh.slotOf[local] = -1
	sh.ts[slot] = 0
	sh.inv[slot] = 0
	sh.free = append(sh.free, slot)
	sh.live--
	sh.bump(r.met)
	if j := r.journal; j != nil {
		j.Removed(id)
	}
	sh.mu.Unlock()

	r.met.Mutated("remove", false)
	return nil
}

// Update changes an agent's bid. A non-positive or non-finite t is a
// *alloc.ValueError, the same contract as alloc.Stream.Update.
func (r *Registry) Update(id int, t float64) error {
	if err := checkT(t); err != nil {
		return err
	}
	sh, local, err := r.locate(id)
	if err != nil {
		return err
	}
	v := 1 / t

	sh.mu.Lock()
	slot := sh.slot(local)
	if slot < 0 {
		sh.mu.Unlock()
		return unknownID(id)
	}
	// A rebid whose predecessor was written after the last seal
	// overwrites a value no epoch ever observed: the epoch protocol
	// coalesced the two updates into one from every reader's point of
	// view.
	now := r.epoch.Load()
	coalesced := sh.stamp[slot] == now
	sh.stamp[slot] = now
	sh.padd(v)
	sh.padd(-sh.inv[slot])
	sh.ts[slot] = t
	sh.inv[slot] = v
	sh.bump(r.met)
	if j := r.journal; j != nil {
		j.Updated(id, t)
	}
	sh.mu.Unlock()

	r.met.Mutated("update", coalesced)
	return nil
}

// Value returns the agent's current bid (not the sealed one; use
// Snapshot().Value for epoch-consistent reads).
func (r *Registry) Value(id int) (float64, bool) {
	sh, local, err := r.locate(id)
	if err != nil {
		return 0, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot := sh.slot(local)
	if slot < 0 {
		return 0, false
	}
	return sh.ts[slot], true
}

// Live returns the current live agent count (summing shard counters
// under their locks; prefer Snapshot().N for the sealed view).
func (r *Registry) Live() int {
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		total += sh.live
		sh.mu.Unlock()
	}
	return total
}

// ApproxSum returns the delta-maintained aggregate: the per-shard
// running partials combined in shard order. Its last bits depend on
// the mutation interleaving — it is a monitoring value and a drift
// cross-check for the canonical sealed S, not a pricing input.
func (r *Registry) ApproxSum() float64 {
	var k numeric.KahanSum
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		k.Add(sh.psum + sh.pcomp)
		sh.mu.Unlock()
	}
	return k.Value()
}

// Snapshot returns the last sealed snapshot. The load is a single
// atomic pointer read: it never blocks, never allocates, and is safe
// to call from any number of goroutines while writers mutate and
// sealers publish.
func (r *Registry) Snapshot() *Snapshot {
	return r.snap.Load()
}

// Correction is the health adjustment a corrected seal applies on top
// of the live population — the registry-side half of the paper's
// verification loop run continuously (see internal/health). It never
// mutates the registry: the underlying bids stay whatever the agents
// bid, and a later uncorrected Seal sees them untouched.
type Correction struct {
	// Weights maps agent ids to capacity factors in (0, 1]: the sealed
	// epoch prices id as if it had bid t/weight, so a half-weight
	// (degraded or slow-starting) computer draws half the allocation
	// share its bid would earn. Weights outside (0, 1] or non-finite
	// are rejected; ids that are not live are ignored.
	Weights map[int]float64
	// Drop is the set of agent ids excluded from the sealed epoch
	// entirely (ejected computers). Ids that are not live are ignored;
	// an id that is both dropped and weighted is dropped.
	Drop map[int]bool
}

// empty reports whether the correction adjusts nothing.
func (c *Correction) empty() bool {
	return c == nil || (len(c.Weights) == 0 && len(c.Drop) == 0)
}

// validate rejects malformed weights up front, before any lock is
// taken.
func (c *Correction) validate() error {
	if c == nil {
		return nil
	}
	for _, w := range c.Weights {
		if !(w > 0 && w <= 1) || math.IsNaN(w) {
			return &alloc.ValueError{Field: "weight", Value: w}
		}
	}
	return nil
}

// Seal freezes the current population into a new immutable Snapshot,
// publishes it, and returns it. The shard locks are all held for the
// copy — writers queue behind a seal for O(population/shards) each —
// and the canonical aggregate is computed after they are released:
// one Neumaier pass over the live bids in ascending id order, the
// shard-count- and schedule-independent reduction shared with
// alloc.Stream.Sealed. Concurrent Seal calls serialize.
func (r *Registry) Seal() *Snapshot {
	snap, _ := r.SealCorrected(nil) // a nil correction cannot fail
	return snap
}

// SealCorrected seals an epoch with health corrections applied:
// dropped agents are absent from the snapshot (as if removed) and
// weighted agents are priced at bid t/weight (as if they had rebid),
// while the registry's own state is untouched. The canonical S is the
// same ascending-id Neumaier reduction as Seal, computed over the
// corrected bids — so the corrected epoch is bitwise identical to a
// serial alloc.Stream replay in which the dropped agents were removed
// and the weighted agents updated to t/weight, for any shard count,
// worker count and mutation history. It depends only on the live
// (id, bid) set and the correction, never on map iteration order.
func (r *Registry) SealCorrected(c *Correction) (*Snapshot, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	r.sealMu.Lock()
	defer r.sealMu.Unlock()
	start := time.Now()

	nShards := len(r.shards)
	for i := range r.shards {
		r.shards[i].mu.Lock()
	}
	maxID := int(r.nextID.Load())
	t := make([]float64, maxID)
	inv := make([]float64, maxID)
	live := 0
	bits := r.bits
	// With every shard lock held the copies are independent, so they
	// can fan out; on a single-core host ForEach degrades to the
	// plain loop.
	parallel.ForEach(nShards, 0, func(k int) {
		sh := &r.shards[k]
		for local, slot := range sh.slotOf {
			if slot < 0 {
				continue
			}
			id := local<<bits | k
			t[id] = sh.ts[slot]
			inv[id] = sh.inv[slot]
		}
	})
	for i := range r.shards {
		live += r.shards[i].live
	}
	rate := r.Rate()
	epoch := r.epoch.Add(1)
	// The journal barrier: with every shard lock still held, mutations
	// journaled before this record are exactly those the copy above
	// observed (see Journal). The t slice handed over is the seal's
	// uncorrected working copy, valid only during the call.
	if j := r.journal; j != nil {
		j.Sealed(SealEvent{Epoch: epoch, Rate: rate, Next: maxID, Live: live, Correction: c, T: t})
	}
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}

	// Apply the correction to the sealed copy (never to the shards):
	// drops zero the slot, discounts reprice it at t/weight with the
	// inverse recomputed from the corrected bid — exactly what an
	// alloc.Stream replay of the same adjustments produces. Map
	// iteration order is irrelevant: each entry pokes an independent
	// array slot, and the aggregate below is a single ascending-id
	// pass.
	dropped, discounted := 0, 0
	if !c.empty() {
		for id := range c.Drop {
			if id >= 0 && id < len(inv) && inv[id] != 0 {
				t[id], inv[id] = 0, 0
				dropped++
			}
		}
		for id, w := range c.Weights {
			if id >= 0 && id < len(inv) && inv[id] != 0 && w != 1 {
				tw := t[id] / w
				t[id], inv[id] = tw, 1/tw
				discounted++
			}
		}
	}

	ids := make([]int, 0, live)
	var k numeric.KahanSum
	for id, v := range inv {
		if v != 0 {
			k.Add(v)
			ids = append(ids, id)
		}
	}
	snap := &Snapshot{
		epoch: epoch, rate: rate, s: k.Value(), ids: ids, t: t, inv: inv,
		dropped: dropped, discounted: discounted,
	}
	r.snap.Store(snap)
	r.met.Sealed(len(ids), time.Since(start).Seconds())
	// Deferred journal I/O happens here, outside the shard locks but
	// still serialized by the seal mutex.
	if j := r.journal; j != nil {
		j.Published(snap)
	}
	return snap, nil
}

// locate resolves an id to its shard and local index, rejecting ids
// that were never assigned.
func (r *Registry) locate(id int) (*shard, int, error) {
	if id < 0 || id >= int(r.nextID.Load()) {
		return nil, 0, unknownID(id)
	}
	return &r.shards[id&r.mask], id >> r.bits, nil
}

// slot returns the local id's slot, or -1 when absent (including
// local ids beyond the shard's index).
func (sh *shard) slot(local int) int32 {
	if local >= len(sh.slotOf) {
		return -1
	}
	return sh.slotOf[local]
}

// padd accumulates v into the shard's Neumaier partial.
func (sh *shard) padd(v float64) {
	t := sh.psum + v
	if abs(sh.psum) >= abs(v) {
		sh.pcomp += (sh.psum - t) + v
	} else {
		sh.pcomp += (v - t) + sh.psum
	}
	sh.psum = t
}

// bump counts a mutation and rebuilds the running partial from the
// live slots when the drift budget is spent. Called with the shard
// lock held.
func (sh *shard) bump(met *obs.RegistryMetrics) {
	sh.muts++
	if sh.muts < rebuildEvery {
		return
	}
	sh.muts = 0
	var k numeric.KahanSum
	for _, v := range sh.inv {
		if v != 0 {
			k.Add(v)
		}
	}
	sh.psum, sh.pcomp = k.Value(), 0
	met.Rebuilt()
}

// shardBits returns log2 of the shard count for the given mask.
func shardBits(mask int) int {
	bits := 0
	for m := mask; m > 0; m >>= 1 {
		bits++
	}
	return bits
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func unknownID(id int) error {
	return fmt.Errorf("registry: unknown agent id %d", id)
}

// checkT validates a bid with alloc.Stream's contract.
func checkT(t float64) error {
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return &alloc.ValueError{Field: "t", Value: t}
	}
	return nil
}

// checkRate validates a rate with alloc.Stream's contract.
func checkRate(rate float64) error {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return &alloc.ValueError{Field: "rate", Value: rate}
	}
	return nil
}
