package registry

import "math"

// Batched mutation. A networked front end that decodes thousands of
// bid ops per wakeup would pay one lock acquisition, one metrics
// round-trip and one journal interaction per op if it replayed them
// through Add/Update/Remove. ApplyBatch amortizes all three: the ops
// are grouped by shard up front, each touched shard's lock is taken
// exactly once, and the instrumentation is reported once per batch.
//
// Semantics are exactly those of applying the ops one at a time in
// slice order on a single goroutine: ids are assigned in op order by
// the same global counter, an op may reference an id admitted earlier
// in the same batch, per-id operation order is preserved (ops on one
// id always share a shard), and validation failures map to the same
// conditions as the serial methods — so a sealed epoch after a batch
// is bitwise identical to one sealed after the serial replay, which
// the differential test pins. Ops on *different* ids may reach the
// journal in a different relative order than the slice, the same
// freedom concurrent writers already have; the seal barrier and
// recovery are order-independent across ids.
//
// Failures are reported as per-op result codes rather than errors so
// the hot path never allocates: with res and sc capacity reused across
// calls, ApplyBatch is allocation-free (AllocsPerRun-pinned).
//
// A batch is not transactional: a concurrent Seal may observe a prefix
// of it (never a torn single op), and later ops still apply after an
// earlier op fails. This matches a pipelined connection's semantics —
// each op is acknowledged independently.

// BatchKind selects the mutation a BatchOp applies.
type BatchKind uint8

const (
	// BatchAdd admits an agent bidding T; the assigned id comes back in
	// the op's BatchResult.
	BatchAdd BatchKind = 1
	// BatchRebid changes live agent ID's bid to T.
	BatchRebid BatchKind = 2
	// BatchLeave deregisters live agent ID.
	BatchLeave BatchKind = 3
)

// BatchCode is a per-op outcome. Codes mirror the serial methods'
// error conditions without allocating an error value.
type BatchCode uint8

const (
	// BatchOK: the op applied.
	BatchOK BatchCode = 0
	// BatchBadValue: the bid was non-positive or non-finite (the
	// *alloc.ValueError condition of Add/Update).
	BatchBadValue BatchCode = 1
	// BatchUnknownID: the id was never assigned or is no longer live.
	BatchUnknownID BatchCode = 2
	// BatchBadKind: the op's Kind is not a BatchKind.
	BatchBadKind BatchCode = 3
)

// BatchOp is one mutation in a batch. ID is ignored for BatchAdd; T is
// ignored for BatchLeave.
type BatchOp struct {
	Kind BatchKind
	ID   int
	T    float64
}

// BatchResult is one op's outcome, in op order. ID echoes the op's id
// — for BatchAdd it carries the newly assigned id (valid only when
// Code is BatchOK).
type BatchResult struct {
	ID   int
	Code BatchCode
}

// BatchScratch holds ApplyBatch's reusable grouping state. The zero
// value is ready; reusing one across calls (one per writer goroutine —
// it is not safe for concurrent use) keeps the batch path
// allocation-free.
type BatchScratch struct {
	head, tail []int32 // per shard: first/last op index, -1 when empty
	next       []int32 // per op: next op index on the same shard, -1 at tail
	touched    []int32 // shard indices in first-touch order
}

// ApplyBatch applies ops in slice order with one lock acquisition per
// touched shard, appends one BatchResult per op to res, and returns
// the extended slice. See the package-level comment above BatchKind
// for the exact semantics; sc may be nil (a scratch is then allocated
// per call).
func (r *Registry) ApplyBatch(ops []BatchOp, res []BatchResult, sc *BatchScratch) []BatchResult {
	if sc == nil {
		sc = &BatchScratch{}
	}
	nShards := len(r.shards)
	if len(sc.head) != nShards {
		sc.head = make([]int32, nShards)
		sc.tail = make([]int32, nShards)
		for i := range sc.head {
			sc.head[i] = -1
		}
		sc.touched = sc.touched[:0]
	} else {
		for _, s := range sc.touched {
			sc.head[s] = -1
		}
		sc.touched = sc.touched[:0]
	}
	if cap(sc.next) < len(ops) {
		sc.next = make([]int32, len(ops))
	}
	sc.next = sc.next[:len(ops)]

	// Pass 1, in op order: validate, assign add ids from the global
	// counter (so id assignment matches the serial replay exactly), and
	// thread each admissible op onto its shard's list. Ops that fail
	// validation get their code here and never reach a shard.
	base := res
	for i := range ops {
		op := &ops[i]
		rr := BatchResult{ID: op.ID}
		switch op.Kind {
		case BatchAdd:
			if !(op.T > 0) || math.IsInf(op.T, 0) {
				rr.Code = BatchBadValue
				res = append(res, rr)
				continue
			}
			rr.ID = int(r.nextID.Add(1) - 1)
		case BatchRebid:
			if !(op.T > 0) || math.IsInf(op.T, 0) {
				rr.Code = BatchBadValue
				res = append(res, rr)
				continue
			}
			if op.ID < 0 || op.ID >= int(r.nextID.Load()) {
				rr.Code = BatchUnknownID
				res = append(res, rr)
				continue
			}
		case BatchLeave:
			if op.ID < 0 || op.ID >= int(r.nextID.Load()) {
				rr.Code = BatchUnknownID
				res = append(res, rr)
				continue
			}
		default:
			rr.Code = BatchBadKind
			res = append(res, rr)
			continue
		}
		s := int32(rr.ID & r.mask)
		if sc.head[s] < 0 {
			sc.head[s] = int32(i)
			sc.touched = append(sc.touched, s)
		} else {
			sc.next[sc.tail[s]] = int32(i)
		}
		sc.tail[s] = int32(i)
		sc.next[i] = -1
		res = append(res, rr)
	}
	out := res[len(base):]

	// Pass 2: per touched shard, lock once and apply that shard's ops
	// in op order. The bodies mirror Add/Update/Remove exactly —
	// including the journal calls under the shard lock and the
	// coalesced-rebid stamp protocol — minus the per-op lock, metrics
	// and error traffic.
	var adds, updates, removes, coalesced int64
	for _, s := range sc.touched {
		sh := &r.shards[s]
		sh.mu.Lock()
		j := r.journal
		for i := sc.head[s]; i >= 0; i = sc.next[i] {
			op := &ops[i]
			rr := &out[i]
			switch op.Kind {
			case BatchAdd:
				id := rr.ID
				local := id >> r.bits
				v := 1 / op.T
				for len(sh.slotOf) <= local {
					sh.slotOf = append(sh.slotOf, -1)
				}
				var slot int32
				if n := len(sh.free); n > 0 {
					slot = sh.free[n-1]
					sh.free = sh.free[:n-1]
					sh.ts[slot] = op.T
					sh.inv[slot] = v
					sh.stamp[slot] = r.epoch.Load()
				} else {
					slot = int32(len(sh.ts))
					sh.ts = append(sh.ts, op.T)
					sh.inv = append(sh.inv, v)
					sh.stamp = append(sh.stamp, r.epoch.Load())
				}
				sh.slotOf[local] = slot
				sh.padd(v)
				sh.live++
				sh.bump(r.met)
				if j != nil {
					j.Added(id, op.T)
				}
				adds++
			case BatchRebid:
				slot := sh.slot(op.ID >> r.bits)
				if slot < 0 {
					rr.Code = BatchUnknownID
					continue
				}
				v := 1 / op.T
				now := r.epoch.Load()
				if sh.stamp[slot] == now {
					coalesced++
				}
				sh.stamp[slot] = now
				sh.padd(v)
				sh.padd(-sh.inv[slot])
				sh.ts[slot] = op.T
				sh.inv[slot] = v
				sh.bump(r.met)
				if j != nil {
					j.Updated(op.ID, op.T)
				}
				updates++
			case BatchLeave:
				slot := sh.slot(op.ID >> r.bits)
				if slot < 0 {
					rr.Code = BatchUnknownID
					continue
				}
				sh.padd(-sh.inv[slot])
				sh.slotOf[op.ID>>r.bits] = -1
				sh.ts[slot] = 0
				sh.inv[slot] = 0
				sh.free = append(sh.free, slot)
				sh.live--
				sh.bump(r.met)
				if j != nil {
					j.Removed(op.ID)
				}
				removes++
			}
		}
		sh.mu.Unlock()
	}
	r.met.AppliedBatch(adds, updates, removes, coalesced)
	return res
}
