package registry

import "math"

// Snapshot is one sealed epoch: the immutable live population, its
// canonical aggregate S = Σ 1/b_i and the rate R frozen at seal time.
// Every query below is O(1), lock-free and allocation-free — a
// snapshot is never mutated after publication, so readers touch it
// without coordination, and a reader holding an old snapshot keeps a
// consistent (if stale) view for as long as it likes.
type Snapshot struct {
	epoch uint64
	rate  float64
	s     float64
	ids   []int     // live ids, ascending
	t     []float64 // id-indexed bid; 0 = absent
	inv   []float64 // id-indexed 1/bid; 0 = absent

	// Health correction applied at seal time (see SealCorrected).
	dropped    int
	discounted int
}

// Epoch returns the seal sequence number. New seals the empty
// population as epoch 1, so published epochs are strictly positive
// and increase by one per seal.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Rate returns the total arrival rate R frozen at seal time.
func (s *Snapshot) Rate() float64 { return s.rate }

// Sum returns the canonical sealed aggregate S = Σ 1/b_i (the
// ascending-id Neumaier reduction; see the package comment).
func (s *Snapshot) Sum() float64 { return s.s }

// N returns the number of live agents in the sealed epoch.
func (s *Snapshot) N() int { return len(s.ids) }

// IDs returns the live ids in ascending order. The slice is owned by
// the snapshot and must not be modified.
func (s *Snapshot) IDs() []int { return s.ids }

// Correction reports the health adjustment applied at seal time: how
// many live agents the corrected epoch dropped (ejected) and how many
// it discounted (degraded or slow-starting). Both are zero for an
// uncorrected epoch.
func (s *Snapshot) Correction() (dropped, discounted int) {
	return s.dropped, s.discounted
}

// Contains reports whether the agent was live in the sealed epoch.
func (s *Snapshot) Contains(id int) bool {
	return id >= 0 && id < len(s.inv) && s.inv[id] != 0
}

// Value returns the agent's sealed bid.
func (s *Snapshot) Value(id int) (float64, bool) {
	if !s.Contains(id) {
		return 0, false
	}
	return s.t[id], true
}

// Load returns the agent's PR allocation x_i = R/(b_i·S) under the
// sealed epoch — the same expression, against the same canonical S,
// that alloc.ProportionalInto evaluates for the id-ordered bid
// vector, so per-agent loads agree bitwise with a full serial
// allocation.
func (s *Snapshot) Load(id int) (float64, bool) {
	if !s.Contains(id) {
		return 0, false
	}
	return s.rate / (s.t[id] * s.s), true
}

// OptimalLatency returns the sealed system optimum L* = R²/S, +Inf
// for an empty epoch under positive rate (0 at rate 0), matching
// alloc.Stream.OptimalLatency.
func (s *Snapshot) OptimalLatency() float64 {
	if s.s == 0 {
		if s.rate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.rate * s.rate / s.s
}

// ExclusionLatency returns the sealed optimum of the system without
// the agent — the L_{-i} term of the mechanism's bonus — in O(1),
// matching alloc.Stream.ExclusionLatency evaluated at the canonical
// aggregate.
func (s *Snapshot) ExclusionLatency(id int) (float64, bool) {
	if !s.Contains(id) {
		return 0, false
	}
	rest := s.s - s.inv[id]
	if rest <= 0 {
		if s.rate == 0 {
			return 0, true
		}
		return math.Inf(1), true
	}
	return s.rate * s.rate / rest, true
}

// Payment returns the agent's compensation-and-bonus payment under
// the sealed epoch assuming truthful execution, in O(1): for the
// linear model a truthful agent's compensation is l_i(x_i) = R/S and
// its bonus is L*_{-i} − L* = R²/(S − 1/b_i) − R²/S. These closed
// forms are algebraically equal to the mech.Engine payment run over
// the sealed population, differing only in floating-point association
// (the differential tests bound the gap); full sweeps that must match
// the engine bitwise use Sweep.Payments instead.
func (s *Snapshot) Payment(id int) (compensation, bonus float64, ok bool) {
	if !s.Contains(id) {
		return 0, 0, false
	}
	compensation = s.rate / s.s
	lStar := s.rate * s.rate / s.s
	rest := s.s - s.inv[id]
	if rest <= 0 {
		if s.rate == 0 {
			return compensation, 0, true
		}
		return compensation, math.Inf(1), true
	}
	bonus = s.rate*s.rate/rest - lStar
	return compensation, bonus, true
}
