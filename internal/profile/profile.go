// Package profile wires the standard -cpuprofile/-memprofile flags
// into the command-line drivers.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and arranges a heap profile, returning a
// stop function that flushes both. Either path may be empty. Profiles
// are only written on a clean exit: error paths that os.Exit skip the
// flush, exactly like go test's -cpuprofile.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
