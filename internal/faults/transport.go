package faults

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Transport delivers messages over a discrete-event engine while
// consulting an Injector about each message's fate. It is the
// integration point between the fault layer and the simulation
// engine: callers express "send this, then run that on receipt" and
// the transport applies hop latency, drops, duplicates, jitter and
// sender stalls.
//
// Counters distinguish logical sends (Sent — what a protocol's
// message-complexity bound counts) from physical deliveries.
type Transport struct {
	// Eng is the discrete-event engine driving the simulation.
	Eng *sim.Engine
	// Inj decides message fates; nil injects nothing.
	Inj Injector
	// Hop is the base per-message latency in simulated seconds.
	Hop float64
	// DupLag is the extra delay of a duplicate copy beyond the first
	// delivery (default Hop/2).
	DupLag float64
	// Obs counts injected faults by kind; nil disables (free).
	Obs *obs.FaultMetrics

	// Sent counts logical sends (one per Send call).
	Sent int
	// Delivered counts physical deliveries (duplicates included).
	Delivered int
	// Lost counts dropped messages.
	Lost int
	// Duplicated counts messages delivered twice.
	Duplicated int

	sendsBy map[int]int // per-sender send count, for stall schedules
}

// Send performs one logical send from node `from` to node `to` and
// schedules deliver() at the fault-adjusted latency. A dropped
// message is counted as sent but deliver never runs.
func (t *Transport) Send(from, to int, kind string, deliver func()) {
	inj := t.Inj
	if inj == nil {
		inj = None
	}
	m := Message{Seq: t.Sent, From: from, To: to, Kind: kind}
	t.Sent++
	d := inj.Deliver(m)
	delay := t.Hop + d.ExtraDelay
	if inj.Class(from) == NodeStalled {
		if t.sendsBy == nil {
			t.sendsBy = map[int]int{}
		}
		cnt := t.sendsBy[from]
		t.sendsBy[from]++
		if stall, every := inj.Stall(from); every > 0 && cnt%every == 0 {
			delay += stall
			t.Obs.Injected("stall")
		}
	}
	if d.ExtraDelay > 0 {
		t.Obs.Injected("delay")
	}
	if d.Drop {
		t.Lost++
		t.Obs.Injected("drop")
		return
	}
	t.Eng.Schedule(delay, deliver)
	t.Delivered++
	if d.Duplicate {
		t.Obs.Injected("duplicate")
		lag := t.DupLag
		if lag <= 0 {
			lag = t.Hop / 2
		}
		t.Eng.Schedule(delay+lag, deliver)
		t.Delivered++
		t.Duplicated++
	}
}
