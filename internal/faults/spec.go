package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a Plan from a compact CLI spec: comma-separated
// key=value tokens. Supported keys:
//
//	seed=N              decision seed (default 1)
//	drop=P              drop each message with probability P
//	dup=P               duplicate each message with probability P
//	jitter=D            uniform extra delay in [0, D) seconds
//	reorder=P[@LAG]     delay-past-later-traffic with probability P
//	crash=I+J+...       fail-stop nodes
//	silent=I+J+...      nodes that never respond (strategic)
//	stall=I+J[@D[:K]]   stalled nodes: +D seconds every K-th send
//	byz=I+J[@F]         nodes over-claiming payments by factor F
//	flap=I+J[@P[:D]]    flapping nodes: stalled for the first D·P
//	                    ticks of every P-tick period (see FlapPhase)
//
// Example: "seed=42,drop=0.05,crash=3+7,byz=5@1.2". The empty string
// and "none" parse to a plan that injects nothing.
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return New(1), nil
	}
	var opts []Option
	seed := uint64(1)
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("faults: token %q is not key=value", tok)
		}
		switch key {
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			seed = s
		case "drop", "dup":
			p, err := parseProb(key, val)
			if err != nil {
				return nil, err
			}
			if key == "drop" {
				opts = append(opts, Drop(p))
			} else {
				opts = append(opts, Duplicate(p))
			}
		case "jitter":
			d, err := strconv.ParseFloat(val, 64)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: bad jitter value %q", val)
			}
			opts = append(opts, Jitter(d))
		case "reorder":
			probStr, lagStr, hasLag := strings.Cut(val, "@")
			p, err := parseProb(key, probStr)
			if err != nil {
				return nil, err
			}
			lag := 0.0
			if hasLag {
				lag, err = strconv.ParseFloat(lagStr, 64)
				if err != nil || lag <= 0 {
					return nil, fmt.Errorf("faults: bad reorder lag %q", lagStr)
				}
			}
			opts = append(opts, Reorder(p, lag))
		case "crash", "silent":
			nodes, err := parseNodes(key, val)
			if err != nil {
				return nil, err
			}
			if key == "crash" {
				opts = append(opts, Crash(nodes...))
			} else {
				opts = append(opts, Silent(nodes...))
			}
		case "stall":
			nodesStr, rest, hasRest := strings.Cut(val, "@")
			nodes, err := parseNodes(key, nodesStr)
			if err != nil {
				return nil, err
			}
			delay, every := 0.0, 0
			if hasRest {
				delayStr, everyStr, hasEvery := strings.Cut(rest, ":")
				delay, err = strconv.ParseFloat(delayStr, 64)
				if err != nil || delay <= 0 {
					return nil, fmt.Errorf("faults: bad stall delay %q", delayStr)
				}
				if hasEvery {
					every, err = strconv.Atoi(everyStr)
					if err != nil || every <= 0 {
						return nil, fmt.Errorf("faults: bad stall period %q", everyStr)
					}
				}
			}
			opts = append(opts, Stall(delay, every, nodes...))
		case "flap":
			nodesStr, rest, hasRest := strings.Cut(val, "@")
			nodes, err := parseNodes(key, nodesStr)
			if err != nil {
				return nil, err
			}
			period, duty := 0, 0.0
			if hasRest {
				periodStr, dutyStr, hasDuty := strings.Cut(rest, ":")
				period, err = strconv.Atoi(periodStr)
				if err != nil || period <= 0 {
					return nil, fmt.Errorf("faults: bad flap period %q", periodStr)
				}
				if hasDuty {
					duty, err = strconv.ParseFloat(dutyStr, 64)
					if err != nil || duty <= 0 || duty >= 1 {
						return nil, fmt.Errorf("faults: bad flap duty %q (want 0<duty<1)", dutyStr)
					}
				}
			}
			opts = append(opts, Flap(period, duty, nodes...))
		case "byz":
			nodesStr, factorStr, hasFactor := strings.Cut(val, "@")
			nodes, err := parseNodes(key, nodesStr)
			if err != nil {
				return nil, err
			}
			factor := 0.0
			if hasFactor {
				factor, err = strconv.ParseFloat(factorStr, 64)
				if err != nil || factor <= 0 {
					return nil, fmt.Errorf("faults: bad byzantine factor %q", factorStr)
				}
			}
			opts = append(opts, Byzantine(factor, nodes...))
		default:
			return nil, fmt.Errorf("faults: unknown spec key %q", key)
		}
	}
	return New(seed, opts...), nil
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("faults: bad %s probability %q (want 0..1)", key, val)
	}
	return p, nil
}

func parseNodes(key, val string) ([]int, error) {
	var nodes []int
	for _, part := range strings.Split(val, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faults: bad %s node %q", key, part)
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("faults: %s needs at least one node", key)
	}
	return nodes, nil
}
