package faults

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	for _, inj := range []Injector{None, (*Plan)(nil), New(7)} {
		d := inj.Deliver(Message{Seq: 3})
		if d.Drop || d.Duplicate || d.ExtraDelay != 0 {
			t.Errorf("empty injector produced %+v", d)
		}
		if inj.Class(0) != NodeHealthy {
			t.Error("empty injector has unhealthy node")
		}
		if f := inj.ClaimFactor(2); f != 1 {
			t.Errorf("claim factor = %v", f)
		}
		if _, k := inj.Stall(1); k != 0 {
			t.Error("unexpected stall")
		}
	}
}

func TestDecisionsAreDeterministicAndSeedSensitive(t *testing.T) {
	a := New(42, Drop(0.3), Duplicate(0.3), Jitter(0.01))
	b := New(42, Drop(0.3), Duplicate(0.3), Jitter(0.01))
	c := New(43, Drop(0.3), Duplicate(0.3), Jitter(0.01))
	same, diff := 0, 0
	for seq := 0; seq < 500; seq++ {
		m := Message{Seq: seq}
		da, db, dc := a.Deliver(m), b.Deliver(m), c.Deliver(m)
		if da != db {
			t.Fatalf("seq %d: same seed diverged: %+v vs %+v", seq, da, db)
		}
		if da == dc {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical schedules")
	}
	_ = same
}

func TestDropRateIsRoughlyCalibrated(t *testing.T) {
	p := New(9, Drop(0.2))
	dropped := 0
	const trials = 20000
	for seq := 0; seq < trials; seq++ {
		if p.Deliver(Message{Seq: seq}).Drop {
			dropped++
		}
	}
	got := float64(dropped) / trials
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("drop rate %v, want ~0.2", got)
	}
}

func TestNodeFaultClasses(t *testing.T) {
	p := New(1,
		Crash(2), Silent(3), Stall(500, 50, 4), Byzantine(1.25, 5))
	wants := map[int]NodeClass{
		0: NodeHealthy, 2: NodeCrashed, 3: NodeSilent, 4: NodeStalled, 5: NodeByzantine,
	}
	for n, want := range wants {
		if got := p.Class(n); got != want {
			t.Errorf("class(%d) = %v, want %v", n, got, want)
		}
	}
	if d, k := p.Stall(4); d != 500 || k != 50 {
		t.Errorf("stall(4) = %v,%d", d, k)
	}
	if f := p.ClaimFactor(5); f != 1.25 {
		t.Errorf("claim factor = %v", f)
	}
	if f := p.ClaimFactor(4); f != 1 {
		t.Errorf("stalled node claim factor = %v", f)
	}
}

func TestReseedChangesScheduleNotNodes(t *testing.T) {
	p := New(5, Drop(0.5), Crash(1))
	q := Reseed(p, 99)
	if q.Class(1) != NodeCrashed {
		t.Error("reseed lost node fault")
	}
	diff := 0
	for seq := 0; seq < 200; seq++ {
		if p.Deliver(Message{Seq: seq}).Drop != q.Deliver(Message{Seq: seq}).Drop {
			diff++
		}
	}
	if diff == 0 {
		t.Error("reseed did not change the schedule")
	}
	if Reseed(p, 0) != Injector(p) {
		t.Error("salt 0 should be the identity")
	}
}

func TestRemapTranslatesNodeIDs(t *testing.T) {
	p := New(1, Crash(7), Byzantine(1.5, 3))
	// local view: [0, 3, 7] -> locals 0,1,2
	r := Remap(p, []int{0, 3, 7})
	if r.Class(2) != NodeCrashed {
		t.Error("local 2 should map to crashed original 7")
	}
	if f := r.ClaimFactor(1); f != 1.5 {
		t.Errorf("local 1 claim factor = %v", f)
	}
	if r.Class(0) != NodeHealthy {
		t.Error("local 0 should be healthy")
	}
	// Reseed passes through the remap.
	if Reseed(r, 3).Class(2) != NodeCrashed {
		t.Error("reseed through remap lost node fault")
	}
}

func TestMergeCombines(t *testing.T) {
	a := New(1, Crash(1))
	b := New(2, Byzantine(1.1, 2), Drop(1))
	m := Merge(nil, a, New(9), b)
	if m.Class(1) != NodeCrashed || m.Class(2) != NodeByzantine {
		t.Error("merge lost node faults")
	}
	if !m.Deliver(Message{Seq: 0}).Drop {
		t.Error("merge lost the drop-all plan")
	}
	if Merge() != None {
		t.Error("empty merge should be None")
	}
	if Merge(a) != Injector(a) {
		t.Error("single merge should be the injector itself")
	}
}

func TestTransportCountsAndDelivers(t *testing.T) {
	eng := sim.New()
	tr := &Transport{Eng: eng, Inj: None, Hop: 0.001}
	got := 0
	for i := 0; i < 10; i++ {
		tr.Send(0, 1, "x", func() { got++ })
	}
	eng.Run()
	if got != 10 || tr.Sent != 10 || tr.Delivered != 10 || tr.Lost != 0 {
		t.Errorf("got=%d sent=%d delivered=%d lost=%d", got, tr.Sent, tr.Delivered, tr.Lost)
	}
	if now := eng.Now(); math.Abs(now-0.001) > 1e-12 {
		t.Errorf("completion at %v, want one hop", now)
	}
}

func TestTransportDropsAndDuplicates(t *testing.T) {
	eng := sim.New()
	tr := &Transport{Eng: eng, Inj: New(3, Drop(0.5), Duplicate(0.5)), Hop: 0.001}
	deliveries := 0
	const sends = 400
	for i := 0; i < sends; i++ {
		tr.Send(0, 1, "x", func() { deliveries++ })
	}
	eng.Run()
	if tr.Lost == 0 || tr.Duplicated == 0 {
		t.Fatalf("expected drops and duplicates, lost=%d dup=%d", tr.Lost, tr.Duplicated)
	}
	if deliveries != tr.Delivered {
		t.Errorf("deliveries %d != counter %d", deliveries, tr.Delivered)
	}
	if tr.Sent != sends {
		t.Errorf("sent = %d", tr.Sent)
	}
	if tr.Delivered != sends-tr.Lost+tr.Duplicated {
		t.Errorf("delivered=%d lost=%d dup=%d inconsistent", tr.Delivered, tr.Lost, tr.Duplicated)
	}
}

func TestTransportStallsSender(t *testing.T) {
	eng := sim.New()
	tr := &Transport{Eng: eng, Inj: New(1, Stall(10, 2, 0)), Hop: 0.001}
	var times []float64
	for i := 0; i < 4; i++ {
		tr.Send(0, 1, "x", func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// sends 0 and 2 stalled (+10s), sends 1 and 3 on time.
	if len(times) != 4 {
		t.Fatalf("deliveries = %d", len(times))
	}
	if times[0] != 0.001 || times[1] != 0.001 {
		t.Errorf("on-time deliveries at %v", times[:2])
	}
	if math.Abs(times[2]-10.001) > 1e-9 || math.Abs(times[3]-10.001) > 1e-9 {
		t.Errorf("stalled deliveries at %v, want 10.001", times[2:])
	}
}

func TestSpecRoundTrip(t *testing.T) {
	p, err := ParseSpec("seed=42,drop=0.05,dup=0.02,jitter=0.003,reorder=0.1@0.004,crash=3+7,silent=2,stall=4@500:50,byz=5@1.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Class(3) != NodeCrashed || p.Class(7) != NodeCrashed {
		t.Error("crash nodes missing")
	}
	if p.Class(2) != NodeSilent {
		t.Error("silent node missing")
	}
	if d, k := p.Stall(4); d != 500 || k != 50 {
		t.Errorf("stall = %v,%d", d, k)
	}
	if f := p.ClaimFactor(5); f != 1.2 {
		t.Errorf("factor = %v", f)
	}
	q, err := ParseSpec(p.String())
	if err != nil {
		t.Fatalf("canonical spec %q did not parse: %v", p.String(), err)
	}
	if q.String() != p.String() {
		t.Errorf("round trip %q -> %q", p.String(), q.String())
	}
}

func TestSpecErrorsAndDefaults(t *testing.T) {
	for _, bad := range []string{
		"drop", "drop=x", "drop=-1", "wat=1", "crash=", "crash=a",
		"stall=1@0", "byz=1@-2", "seed=zz", "reorder=0.1@-1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	for _, ok := range []string{"", "none", " drop=0.1 , seed=3 "} {
		if _, err := ParseSpec(ok); err != nil {
			t.Errorf("spec %q rejected: %v", ok, err)
		}
	}
}

func TestFlapSpecAndPhase(t *testing.T) {
	p := New(1, Flap(6, 0.5, 3), Crash(1))
	if p.Class(3) != NodeFlapping {
		t.Fatalf("Class(3) = %v, want flapping", p.Class(3))
	}
	if period, duty, delay := p.FlapSpec(3); period != 6 || duty != 0.5 || delay != 1000 {
		t.Fatalf("FlapSpec(3) = %d,%g,%g", period, duty, delay)
	}
	if period, _, _ := p.FlapSpec(1); period != 0 {
		t.Fatalf("crashed node reports a flap spec")
	}
	// Duty 0.5 over period 6: stalled at phases 0,1,2 and healthy at
	// 3,4,5 of every period, deterministically.
	for tick := 0; tick < 24; tick++ {
		want := tick%6 < 3
		if got := FlapStalled(p, 3, tick); got != want {
			t.Fatalf("FlapStalled(3, %d) = %v, want %v", tick, got, want)
		}
		view := FlapPhase(p, tick)
		wantClass := NodeHealthy
		if want {
			wantClass = NodeStalled
		}
		if got := view.Class(3); got != wantClass {
			t.Fatalf("FlapPhase(%d).Class(3) = %v, want %v", tick, got, wantClass)
		}
		delay, every := view.Stall(3)
		if want && (delay != 1000 || every != 1) {
			t.Fatalf("FlapPhase(%d).Stall(3) = %g,%d, want 1000,1", tick, delay, every)
		}
		if !want && every != 0 {
			t.Fatalf("FlapPhase(%d).Stall(3) active in healthy phase", tick)
		}
		// Non-flapping nodes pass through unchanged.
		if view.Class(1) != NodeCrashed {
			t.Fatalf("FlapPhase changed the class of a crashed node")
		}
	}
}

func TestFlapSurvivesMergeRemapReseed(t *testing.T) {
	p := New(1, Flap(4, 0.25, 7))
	m := Merge(p, New(2, Drop(0.1)))
	if period, duty, _ := FlapSpec(m, 7); period != 4 || duty != 0.25 {
		t.Fatalf("merged FlapSpec = %d,%g", period, duty)
	}
	// Remap: local node 0 is original node 7.
	r := Remap(m, []int{7})
	if period, _, _ := FlapSpec(r, 0); period != 4 {
		t.Fatalf("remapped FlapSpec lost the schedule")
	}
	if FlapStalled(r, 0, 0) != true || FlapStalled(r, 0, 1) != false {
		t.Fatalf("remapped flap phase wrong")
	}
	rs := Reseed(r, 9)
	if period, _, _ := FlapSpec(rs, 0); period != 4 {
		t.Fatalf("reseeded FlapSpec lost the schedule")
	}
	// FlapPhase resolves the class, so the view must not re-report a
	// flap spec: double resolution would double-stall.
	view := FlapPhase(p, 0)
	if period, _, _ := FlapSpec(view, 7); period != 0 {
		t.Fatalf("FlapPhase view still reports a flap spec")
	}
	if reseeded := view.(Reseeder).Reseed(3); reseeded.Class(7) != NodeStalled {
		t.Fatalf("reseeded FlapPhase view lost the resolved phase")
	}
}

func TestFlapSpecStringRoundTrip(t *testing.T) {
	p, err := ParseSpec("seed=5,flap=2+9@8:0.25,crash=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 9} {
		if period, duty, _ := p.FlapSpec(n); period != 8 || duty != 0.25 {
			t.Fatalf("FlapSpec(%d) = %d,%g, want 8,0.25", n, period, duty)
		}
	}
	q, err := ParseSpec(p.String())
	if err != nil {
		t.Fatalf("canonical spec %q did not parse: %v", p.String(), err)
	}
	if q.String() != p.String() {
		t.Errorf("round trip %q -> %q", p.String(), q.String())
	}
	for _, bad := range []string{"flap=", "flap=1@0", "flap=1@4:1.5", "flap=1@4:0"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
