// Package faults is the repository's unified fault-injection layer: a
// deterministic, seedable description of what can go wrong on the
// message path of a distributed round, shared by the simulation
// engine wrapper (Transport), the tree mechanism (distmech), the
// centralized protocol (protocol) and the execution cluster (cluster).
//
// A fault plan is built by composing options:
//
//	plan := faults.New(42,
//	    faults.Drop(0.05),          // 5% of messages vanish
//	    faults.Duplicate(0.02),     // 2% are delivered twice
//	    faults.Jitter(0.003),       // up to 3ms of extra delay
//	    faults.Crash(3, 7),         // fail-stop nodes
//	    faults.Byzantine(1.1, 5),   // node 5 over-claims its payment
//	)
//
// Every decision is a pure function of (seed, message sequence
// number), never of wall-clock time or call order, so the same seed
// and plan reproduce the exact same fault schedule — the property the
// supervisor's retry traces and the chaos-matrix tests pin down.
package faults

import (
	"fmt"
	"sort"
	"strings"
)

// NodeClass is the static fault class of a node.
type NodeClass int

const (
	// NodeHealthy is a node with no injected fault.
	NodeHealthy NodeClass = iota
	// NodeCrashed is fail-stop: the node never responds to anything.
	NodeCrashed
	// NodeSilent models strategic non-response: the node receives
	// messages but never sends any (refuses to bid / to aggregate).
	NodeSilent
	// NodeStalled responds, but its outbound messages (or served
	// jobs) suffer an extra stall delay every k-th time.
	NodeStalled
	// NodeByzantine over-claims its self-computed payment by the
	// plan's claim factor — the fault the parent audit must catch.
	NodeByzantine
	// NodeFlapping alternates deterministically between healthy and
	// stalled: within every period of `period` ticks the node is
	// stalled for the first duty·period ticks. Consumers with a tick
	// notion (round index, control interval, attempt number) resolve
	// the phase through FlapPhase; consumers without one see the class
	// and treat it as healthy. This is the fault that exercises
	// hysteresis in health controllers — a flapping node trips and
	// recovers forever unless the trip/recover thresholds differ.
	NodeFlapping
)

// String names the class.
func (c NodeClass) String() string {
	switch c {
	case NodeHealthy:
		return "healthy"
	case NodeCrashed:
		return "crashed"
	case NodeSilent:
		return "silent"
	case NodeStalled:
		return "stalled"
	case NodeByzantine:
		return "byzantine"
	case NodeFlapping:
		return "flapping"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Message identifies one message (or job hand-off) on a transport, in
// transport-neutral form. Seq is the logical send sequence number
// assigned by the transport; it is the sole source of per-message
// randomness, which keeps fault schedules reproducible.
type Message struct {
	// Seq is the transport's send counter for this message.
	Seq int
	// From and To are node indices; -1 means the infrastructure
	// (coordinator, dispatcher) rather than an agent node.
	From, To int
	// Kind is a transport-specific label ("aggregate", "bid", "job").
	Kind string
}

// Decision is the fate an injector assigns to one message.
type Decision struct {
	// Drop loses the message entirely.
	Drop bool
	// Duplicate delivers one extra copy shortly after the first.
	Duplicate bool
	// ExtraDelay is added to the delivery latency, in simulated
	// seconds. Reordering faults are realized as extra delay large
	// enough to push the message behind later sends.
	ExtraDelay float64
}

// Injector is the consumer-facing interface of a fault plan. The nil
// Plan is a valid injector that injects nothing.
type Injector interface {
	// Deliver decides the fate of one message.
	Deliver(m Message) Decision
	// Class reports node i's static fault class.
	Class(node int) NodeClass
	// Stall returns the stall schedule of a NodeStalled node: an
	// extra delay applied every k-th send/observation. every == 0
	// means no stall.
	Stall(node int) (delay float64, every int)
	// ClaimFactor is the payment over-claim multiplier of a
	// NodeByzantine node (1 for honest nodes).
	ClaimFactor(node int) float64
}

// Reseeder is implemented by injectors whose message-level decisions
// can be re-keyed, so a supervisor can retry a failed round under a
// fresh — but still deterministic — fault schedule.
type Reseeder interface {
	// Reseed returns a copy of the injector with its message-decision
	// seed mixed with salt. Node classes are static and unaffected.
	Reseed(salt uint64) Injector
}

// nodeFault is one node's static fault configuration.
type nodeFault struct {
	class       NodeClass
	stallDelay  float64
	stallEvery  int
	claimFactor float64
	flapPeriod  int
	flapDuty    float64
}

// Plan is the concrete, composable Injector. The zero value and the
// nil pointer both inject nothing.
type Plan struct {
	seed       uint64
	drop       float64
	dup        float64
	jitter     float64
	reorder    float64
	reorderLag float64
	nodes      map[int]nodeFault
}

// Option configures a Plan.
type Option func(*Plan)

// New composes a fault plan from options. The seed keys every
// probabilistic decision; distinct seeds give decorrelated schedules.
func New(seed uint64, opts ...Option) *Plan {
	p := &Plan{seed: seed, reorderLag: 0.005}
	for _, o := range opts {
		if o != nil {
			o(p)
		}
	}
	return p
}

// Drop loses each message independently with probability prob.
func Drop(prob float64) Option {
	return func(p *Plan) { p.drop = clamp01(prob) }
}

// Duplicate delivers an extra copy of each message with probability
// prob.
func Duplicate(prob float64) Option {
	return func(p *Plan) { p.dup = clamp01(prob) }
}

// Jitter adds a uniform extra delay in [0, max) seconds to every
// delivery.
func Jitter(max float64) Option {
	return func(p *Plan) {
		if max > 0 {
			p.jitter = max
		}
	}
}

// Reorder pushes each message behind later traffic with probability
// prob by delaying it lag seconds (default 5ms when lag <= 0).
func Reorder(prob, lag float64) Option {
	return func(p *Plan) {
		p.reorder = clamp01(prob)
		if lag > 0 {
			p.reorderLag = lag
		}
	}
}

// Crash marks nodes fail-stop.
func Crash(nodes ...int) Option {
	return setClass(NodeCrashed, nodes)
}

// Silent marks nodes as strategic non-responders.
func Silent(nodes ...int) Option {
	return setClass(NodeSilent, nodes)
}

// Stall marks nodes as transiently stalled: every k-th outbound
// message (or observed job) suffers delay extra seconds. every <= 0
// defaults to 1 (every message); delay <= 0 defaults to 1000s, the
// legacy monitoring-stall magnitude.
func Stall(delay float64, every int, nodes ...int) Option {
	if delay <= 0 {
		delay = 1000
	}
	if every <= 0 {
		every = 1
	}
	return func(p *Plan) {
		for _, n := range nodes {
			f := p.node(n)
			f.class = NodeStalled
			f.stallDelay = delay
			f.stallEvery = every
			p.nodes[n] = f
		}
	}
}

// Flap marks nodes that alternate healthy/stalled deterministically:
// within each period of `period` ticks the node is stalled — with the
// legacy stall magnitude every send — for the first duty·period
// ticks. period <= 0 defaults to 4 ticks; duty is clamped to (0, 1)
// and defaults to 0.5. The phase is resolved against a consumer-
// supplied tick via FlapPhase.
func Flap(period int, duty float64, nodes ...int) Option {
	if period <= 0 {
		period = 4
	}
	if duty <= 0 || duty >= 1 || duty != duty {
		duty = 0.5
	}
	return func(p *Plan) {
		for _, n := range nodes {
			f := p.node(n)
			f.class = NodeFlapping
			f.flapPeriod = period
			f.flapDuty = duty
			f.stallDelay = 1000
			f.stallEvery = 1
			p.nodes[n] = f
		}
	}
}

// Byzantine marks nodes that over-claim their self-computed payment
// by the given factor (<= 0 or 1 defaults to the legacy 1.1).
func Byzantine(factor float64, nodes ...int) Option {
	if factor <= 0 || factor == 1 {
		factor = 1.1
	}
	return func(p *Plan) {
		for _, n := range nodes {
			f := p.node(n)
			f.class = NodeByzantine
			f.claimFactor = factor
			p.nodes[n] = f
		}
	}
}

func setClass(c NodeClass, nodes []int) Option {
	return func(p *Plan) {
		for _, n := range nodes {
			f := p.node(n)
			f.class = c
			p.nodes[n] = f
		}
	}
}

func (p *Plan) node(n int) nodeFault {
	if p.nodes == nil {
		p.nodes = map[int]nodeFault{}
	}
	return p.nodes[n]
}

func clamp01(v float64) float64 {
	if v < 0 || v != v {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil ||
		(p.drop == 0 && p.dup == 0 && p.jitter == 0 && p.reorder == 0 && len(p.nodes) == 0)
}

// decision salts, one per fault dimension, so the dimensions roll
// independent pseudo-random streams off the same seed.
const (
	saltDrop    = 0xd6e8feb86659fd93
	saltDup     = 0xa0761d6478bd642f
	saltJitter  = 0xe7037ed1a0b428db
	saltReorder = 0x8ebc6af09c88c6e3
)

// hash01 maps (seed, salt, seq) to a uniform float64 in [0, 1) with a
// SplitMix64-style finalizer. Pure and allocation-free.
func hash01(seed, salt uint64, seq int) float64 {
	z := seed ^ salt ^ (uint64(seq)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) * 0x1p-53
}

// Deliver implements Injector.
func (p *Plan) Deliver(m Message) Decision {
	var d Decision
	if p == nil {
		return d
	}
	if p.drop > 0 && hash01(p.seed, saltDrop, m.Seq) < p.drop {
		d.Drop = true
		return d
	}
	if p.dup > 0 && hash01(p.seed, saltDup, m.Seq) < p.dup {
		d.Duplicate = true
	}
	if p.jitter > 0 {
		d.ExtraDelay += p.jitter * hash01(p.seed, saltJitter, m.Seq)
	}
	if p.reorder > 0 && hash01(p.seed, saltReorder, m.Seq) < p.reorder {
		d.ExtraDelay += p.reorderLag
	}
	return d
}

// Class implements Injector.
func (p *Plan) Class(node int) NodeClass {
	if p == nil {
		return NodeHealthy
	}
	return p.nodes[node].class
}

// Stall implements Injector.
func (p *Plan) Stall(node int) (float64, int) {
	if p == nil {
		return 0, 0
	}
	f := p.nodes[node]
	if f.class != NodeStalled {
		return 0, 0
	}
	return f.stallDelay, f.stallEvery
}

// ClaimFactor implements Injector.
func (p *Plan) ClaimFactor(node int) float64 {
	if p == nil {
		return 1
	}
	f := p.nodes[node]
	if f.class != NodeByzantine || f.claimFactor == 0 {
		return 1
	}
	return f.claimFactor
}

// Flapper is the optional interface of injectors that carry flapping
// nodes. It is separate from Injector so existing implementations
// (including test doubles) keep compiling; consumers go through the
// package-level FlapSpec and FlapPhase helpers, which degrade to
// "no flapping" on injectors without it.
type Flapper interface {
	// FlapSpec reports node's flap schedule: the period in ticks, the
	// stalled duty fraction, and the stall delay applied per send
	// during the stalled phase. period == 0 means the node does not
	// flap.
	FlapSpec(node int) (period int, duty, delay float64)
}

// FlapSpec implements Flapper.
func (p *Plan) FlapSpec(node int) (int, float64, float64) {
	if p == nil {
		return 0, 0, 0
	}
	f := p.nodes[node]
	if f.class != NodeFlapping {
		return 0, 0, 0
	}
	return f.flapPeriod, f.flapDuty, f.stallDelay
}

// FlapSpec queries inj's flap schedule for node, returning period 0
// when the injector carries none (or does not implement Flapper).
func FlapSpec(inj Injector, node int) (period int, duty, delay float64) {
	if fl, ok := inj.(Flapper); ok {
		return fl.FlapSpec(node)
	}
	return 0, 0, 0
}

// FlapStalled reports whether a flapping node is in its stalled phase
// at the given tick: tick mod period falls inside the first
// duty·period ticks of the period. Non-flapping nodes are never
// stalled. Negative ticks are treated as 0.
func FlapStalled(inj Injector, node, tick int) bool {
	period, duty, _ := FlapSpec(inj, node)
	if period <= 0 {
		return false
	}
	if tick < 0 {
		tick = 0
	}
	return float64(tick%period) < duty*float64(period)
}

// FlapPhase resolves flapping nodes at one tick into the static
// vocabulary every transport already understands: the returned
// injector reports a flapping node as NodeStalled (with its stall
// schedule) during its stalled phase and as NodeHealthy otherwise.
// All other behaviour delegates to inj. Wrapping per round / attempt /
// control interval is how rounds, supervise and health make flapping
// nodes actually flap.
func FlapPhase(inj Injector, tick int) Injector {
	if inj == nil {
		return None
	}
	if fl, ok := inj.(Flapper); !ok || fl == nil {
		return inj
	}
	return &flapPhase{inner: inj, tick: tick}
}

// flapPhase is the FlapPhase view: one tick's resolution of flapping
// nodes.
type flapPhase struct {
	inner Injector
	tick  int
}

func (f *flapPhase) Deliver(m Message) Decision { return f.inner.Deliver(m) }

func (f *flapPhase) Class(node int) NodeClass {
	c := f.inner.Class(node)
	if c != NodeFlapping {
		return c
	}
	if FlapStalled(f.inner, node, f.tick) {
		return NodeStalled
	}
	return NodeHealthy
}

func (f *flapPhase) Stall(node int) (float64, int) {
	if f.inner.Class(node) == NodeFlapping {
		if FlapStalled(f.inner, node, f.tick) {
			_, _, delay := FlapSpec(f.inner, node)
			return delay, 1
		}
		return 0, 0
	}
	return f.inner.Stall(node)
}

func (f *flapPhase) ClaimFactor(node int) float64 { return f.inner.ClaimFactor(node) }

func (f *flapPhase) Reseed(salt uint64) Injector {
	return &flapPhase{inner: Reseed(f.inner, salt), tick: f.tick}
}

// Reseed implements Reseeder: same node faults, re-keyed message
// decisions.
func (p *Plan) Reseed(salt uint64) Injector {
	if p == nil {
		return (*Plan)(nil)
	}
	q := *p
	q.seed = mix(p.seed, salt)
	return &q
}

func mix(seed, salt uint64) uint64 {
	z := seed ^ salt*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 27)
}

// String renders the plan as a canonical spec string (parsable by
// ParseSpec), with node lists sorted for determinism.
func (p *Plan) String() string {
	if p.Empty() {
		return "none"
	}
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	add("seed=%d", p.seed)
	if p.drop > 0 {
		add("drop=%g", p.drop)
	}
	if p.dup > 0 {
		add("dup=%g", p.dup)
	}
	if p.jitter > 0 {
		add("jitter=%g", p.jitter)
	}
	if p.reorder > 0 {
		add("reorder=%g@%g", p.reorder, p.reorderLag)
	}
	byClass := map[NodeClass][]int{}
	for n, f := range p.nodes {
		if f.class != NodeHealthy {
			byClass[f.class] = append(byClass[f.class], n)
		}
	}
	for _, c := range []NodeClass{NodeCrashed, NodeSilent, NodeStalled, NodeByzantine, NodeFlapping} {
		ns := byClass[c]
		if len(ns) == 0 {
			continue
		}
		sort.Ints(ns)
		switch c {
		case NodeCrashed:
			add("crash=%s", joinNodes(ns))
		case NodeSilent:
			add("silent=%s", joinNodes(ns))
		case NodeStalled:
			f := p.nodes[ns[0]]
			add("stall=%s@%g:%d", joinNodes(ns), f.stallDelay, f.stallEvery)
		case NodeByzantine:
			f := p.nodes[ns[0]]
			add("byz=%s@%g", joinNodes(ns), f.claimFactor)
		case NodeFlapping:
			f := p.nodes[ns[0]]
			add("flap=%s@%d:%g", joinNodes(ns), f.flapPeriod, f.flapDuty)
		}
	}
	return strings.Join(parts, ",")
}

func joinNodes(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, "+")
}

// None is the injector that injects nothing.
var None Injector = (*Plan)(nil)

// Merge combines injectors: a message is dropped/duplicated/delayed
// if any constituent says so (delays add), and node faults come from
// the first constituent that reports a non-healthy class. Nil
// constituents are skipped; Merge of nothing returns None.
func Merge(injs ...Injector) Injector {
	var live []Injector
	for _, in := range injs {
		if in == nil || in == Injector(nil) {
			continue
		}
		if p, ok := in.(*Plan); ok && p.Empty() {
			continue
		}
		live = append(live, in)
	}
	switch len(live) {
	case 0:
		return None
	case 1:
		return live[0]
	}
	return merged(live)
}

type merged []Injector

func (m merged) Deliver(msg Message) Decision {
	var d Decision
	for _, in := range m {
		di := in.Deliver(msg)
		d.Drop = d.Drop || di.Drop
		d.Duplicate = d.Duplicate || di.Duplicate
		d.ExtraDelay += di.ExtraDelay
	}
	return d
}

func (m merged) Class(node int) NodeClass {
	for _, in := range m {
		if c := in.Class(node); c != NodeHealthy {
			return c
		}
	}
	return NodeHealthy
}

func (m merged) Stall(node int) (float64, int) {
	for _, in := range m {
		if d, k := in.Stall(node); k > 0 {
			return d, k
		}
	}
	return 0, 0
}

func (m merged) ClaimFactor(node int) float64 {
	for _, in := range m {
		if f := in.ClaimFactor(node); f != 1 {
			return f
		}
	}
	return 1
}

func (m merged) FlapSpec(node int) (int, float64, float64) {
	for _, in := range m {
		if p, d, s := FlapSpec(in, node); p > 0 {
			return p, d, s
		}
	}
	return 0, 0, 0
}

func (m merged) Reseed(salt uint64) Injector {
	out := make(merged, len(m))
	for i, in := range m {
		out[i] = Reseed(in, salt)
	}
	return out
}

// Reseed re-keys an injector's message decisions when it supports it
// (see Reseeder) and returns it unchanged otherwise. Salt 0 is the
// identity by convention.
func Reseed(inj Injector, salt uint64) Injector {
	if inj == nil {
		return None
	}
	if salt == 0 {
		return inj
	}
	if r, ok := inj.(Reseeder); ok {
		return r.Reseed(salt)
	}
	return inj
}

// Remap views an injector through an index translation: local node i
// of the returned injector is original node orig[i] of inj. Message
// sequence numbers pass through untouched (they are transport-local).
// Supervisors use this to run a retry over a surviving subset while
// the plan keeps speaking original node ids.
func Remap(inj Injector, orig []int) Injector {
	if inj == nil {
		return None
	}
	idx := append([]int(nil), orig...)
	return &remapped{inner: inj, orig: idx}
}

type remapped struct {
	inner Injector
	orig  []int
}

func (r *remapped) translate(local int) int {
	if local < 0 || local >= len(r.orig) {
		return local
	}
	return r.orig[local]
}

func (r *remapped) Deliver(m Message) Decision {
	m.From = r.translate(m.From)
	m.To = r.translate(m.To)
	return r.inner.Deliver(m)
}

func (r *remapped) Class(node int) NodeClass { return r.inner.Class(r.translate(node)) }

func (r *remapped) Stall(node int) (float64, int) { return r.inner.Stall(r.translate(node)) }

func (r *remapped) ClaimFactor(node int) float64 { return r.inner.ClaimFactor(r.translate(node)) }

func (r *remapped) FlapSpec(node int) (int, float64, float64) {
	return FlapSpec(r.inner, r.translate(node))
}

func (r *remapped) Reseed(salt uint64) Injector {
	return &remapped{inner: Reseed(r.inner, salt), orig: r.orig}
}
