// Package core is the high-level entry point to the paper's primary
// contribution: the load balancing mechanism with verification. It
// wires the substrates together — latency models, the PR allocation,
// the compensation-and-bonus payment rule, the simulated execution and
// the execution-value estimation — behind one System type that
// downstream users configure and run.
//
// Typical use:
//
//	sys, err := core.NewSystem([]float64{1, 2, 5, 10}, 8)
//	sys.SetBid(0, 2)        // computer 1 lies
//	out, err := sys.Run()   // allocation, payments, utilities
package core

import (
	"errors"
	"fmt"

	"repro/internal/game"
	"repro/internal/mech"
	"repro/internal/protocol"
)

// System is a heterogeneous distributed system of self-interested
// computers governed by a load balancing mechanism.
type System struct {
	agents    []mech.Agent
	rate      float64
	model     mech.Model
	mechanism mech.Mechanism
}

// Option configures a System.
type Option func(*System) error

// WithModel selects the latency model (LinearModel by default).
func WithModel(m mech.Model) Option {
	return func(s *System) error {
		if m == nil {
			return errors.New("core: nil model")
		}
		s.model = m
		s.mechanism = mech.CompensationBonus{Model: m}
		return nil
	}
}

// WithMechanism overrides the mechanism (the paper's verification
// mechanism by default). The mechanism must be consistent with the
// chosen model — prefer constructing it with the same Model value.
func WithMechanism(m mech.Mechanism) Option {
	return func(s *System) error {
		if m == nil {
			return errors.New("core: nil mechanism")
		}
		s.mechanism = m
		return nil
	}
}

// WithCaps applies public per-computer rate caps (linear model only):
// computer i is assigned at most caps[i] jobs/s. Must be passed after
// any WithModel option it is meant to cap.
func WithCaps(caps []float64) Option {
	return func(s *System) error {
		if _, ok := s.model.(mech.LinearModel); !ok {
			return errors.New("core: caps require the linear model")
		}
		if len(caps) != len(s.agents) {
			return fmt.Errorf("core: %d caps for %d computers", len(caps), len(s.agents))
		}
		m := mech.CappedLinearModel{Caps: append([]float64(nil), caps...)}
		s.model = m
		s.mechanism = mech.CompensationBonus{Model: m}
		return nil
	}
}

// NewSystem creates a system of computers with the given true latency
// parameters, all initially truthful, facing total job arrival rate.
func NewSystem(trueValues []float64, rate float64, opts ...Option) (*System, error) {
	if len(trueValues) < 2 {
		return nil, mech.ErrNeedTwoAgents
	}
	if rate < 0 {
		return nil, fmt.Errorf("core: negative rate %g", rate)
	}
	for i, t := range trueValues {
		if t <= 0 {
			return nil, fmt.Errorf("core: invalid true value trueValues[%d] = %g", i, t)
		}
	}
	s := &System{
		agents:    mech.Truthful(trueValues),
		rate:      rate,
		model:     mech.LinearModel{},
		mechanism: mech.CompensationBonus{},
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// N returns the number of computers.
func (s *System) N() int { return len(s.agents) }

// Rate returns the total job arrival rate.
func (s *System) Rate() float64 { return s.rate }

// Agents returns a copy of the current agent population.
func (s *System) Agents() []mech.Agent {
	return append([]mech.Agent(nil), s.agents...)
}

// SetBid sets computer i's reported value.
func (s *System) SetBid(i int, bid float64) error {
	if i < 0 || i >= len(s.agents) {
		return fmt.Errorf("core: computer index %d out of range", i)
	}
	if bid <= 0 {
		return fmt.Errorf("core: invalid bid %g", bid)
	}
	s.agents[i].Bid = bid
	return nil
}

// SetExec sets computer i's execution value. The paper's model allows
// only ť >= t (a computer cannot run faster than its capacity).
func (s *System) SetExec(i int, exec float64) error {
	if i < 0 || i >= len(s.agents) {
		return fmt.Errorf("core: computer index %d out of range", i)
	}
	if exec < s.agents[i].True {
		return fmt.Errorf("core: execution value %g below true value %g", exec, s.agents[i].True)
	}
	s.agents[i].Exec = exec
	return nil
}

// Reset returns every computer to truthful play.
func (s *System) Reset() {
	for i := range s.agents {
		s.agents[i].Bid = s.agents[i].True
		s.agents[i].Exec = s.agents[i].True
	}
}

// Allocation returns the load each computer receives under the
// current bids (the PR algorithm for the linear model).
func (s *System) Allocation() ([]float64, error) {
	return s.model.Alloc(mech.Bids(s.agents), s.rate)
}

// OptimalLatency returns the minimum total latency achievable if every
// computer were truthful.
func (s *System) OptimalLatency() (float64, error) {
	return s.model.OptimalTotal(mech.Trues(s.agents), s.rate)
}

// Run executes the mechanism on the current plays: allocation,
// verified payments and utilities.
func (s *System) Run() (*mech.Outcome, error) {
	return s.mechanism.Run(s.agents, s.rate)
}

// VerifyTruthfulness grid-searches deviations for computer i and
// reports whether any beats truth-telling (none should, for the
// paper's mechanism).
func (s *System) VerifyTruthfulness(i int) (*game.Report, error) {
	return game.VerifyTruthfulness(s.mechanism, s.agents, s.rate, i, game.DefaultGrid(), 0)
}

// RunProtocol executes the full message-level protocol round —
// bid collection, PR allocation, simulated execution, execution-value
// estimation (the verification step) and payment delivery — with jobs
// simulated jobs and the given seed. It is only available for the
// linear model.
func (s *System) RunProtocol(jobs int, seed uint64) (*protocol.Result, error) {
	if _, ok := s.model.(mech.LinearModel); !ok {
		return nil, errors.New("core: protocol rounds require the linear model")
	}
	strategies := make([]protocol.Strategy, len(s.agents))
	for i, a := range s.agents {
		strategies[i] = protocol.FactorStrategy{
			BidFactor:  a.Bid / a.True,
			ExecFactor: a.Exec / a.True,
		}
	}
	return protocol.Run(protocol.Config{
		Trues:      mech.Trues(s.agents),
		Strategies: strategies,
		Rate:       s.rate,
		Jobs:       jobs,
		Seed:       seed,
	})
}
