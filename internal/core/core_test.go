package core

import (
	"math"
	"testing"

	"repro/internal/mech"
)

func TestNewSystemDefaults(t *testing.T) {
	s, err := NewSystem([]float64{1, 2, 5, 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 || s.Rate() != 8 {
		t.Errorf("N=%d Rate=%v", s.N(), s.Rate())
	}
	agents := s.Agents()
	for _, a := range agents {
		if a.Bid != a.True || a.Exec != a.True {
			t.Errorf("agent %+v not truthful", a)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem([]float64{1}, 5); err == nil {
		t.Error("expected error for single computer")
	}
	if _, err := NewSystem([]float64{1, -2}, 5); err == nil {
		t.Error("expected error for invalid true value")
	}
	if _, err := NewSystem([]float64{1, 2}, -1); err == nil {
		t.Error("expected error for negative rate")
	}
	if _, err := NewSystem([]float64{1, 2}, 5, WithModel(nil)); err == nil {
		t.Error("expected error for nil model")
	}
	if _, err := NewSystem([]float64{1, 2}, 5, WithMechanism(nil)); err == nil {
		t.Error("expected error for nil mechanism")
	}
}

func TestSystemRunTruthful(t *testing.T) {
	s, err := NewSystem([]float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.RealLatency-78.4313725) > 1e-4 {
		t.Errorf("latency = %v", out.RealLatency)
	}
	opt, err := s.OptimalLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-out.RealLatency) > 1e-9 {
		t.Errorf("optimal %v != truthful realized %v", opt, out.RealLatency)
	}
}

func TestSetBidAndExec(t *testing.T) {
	s, err := NewSystem([]float64{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetBid(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetExec(0, 2); err != nil {
		t.Fatal(err)
	}
	agents := s.Agents()
	if agents[0].Bid != 3 || agents[0].Exec != 2 {
		t.Errorf("agent = %+v", agents[0])
	}
	// Errors.
	if err := s.SetBid(5, 1); err == nil {
		t.Error("expected index error")
	}
	if err := s.SetBid(0, -1); err == nil {
		t.Error("expected bid error")
	}
	if err := s.SetExec(0, 0.5); err == nil {
		t.Error("expected error: exec below true value")
	}
	s.Reset()
	agents = s.Agents()
	if agents[0].Bid != 1 || agents[0].Exec != 1 {
		t.Errorf("Reset failed: %+v", agents[0])
	}
}

func TestAllocationMatchesPR(t *testing.T) {
	s, err := NewSystem([]float64{1, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	// 1/t: 1 and 1/3; shares 3/4 and 1/4 of 8.
	if math.Abs(x[0]-6) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("allocation = %v, want [6 2]", x)
	}
}

func TestVerifyTruthfulnessFacade(t *testing.T) {
	s, err := NewSystem([]float64{1, 2, 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyTruthfulness(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truthful() {
		t.Errorf("default mechanism manipulable: %+v", rep.Best)
	}
}

func TestWithMechanismClassical(t *testing.T) {
	s, err := NewSystem([]float64{1, 2, 5}, 6, WithMechanism(mech.Classical{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyTruthfulness(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truthful() {
		t.Error("classical mechanism should be manipulable")
	}
}

func TestWithModelMM1(t *testing.T) {
	s, err := NewSystem([]float64{0.1, 0.2, 0.5}, 4, WithModel(mech.MM1Model{}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Model != "mm1" {
		t.Errorf("model = %q", out.Model)
	}
	if _, err := s.RunProtocol(100, 1); err == nil {
		t.Error("protocol should require the linear model")
	}
}

func TestWithCaps(t *testing.T) {
	s, err := NewSystem([]float64{1, 2, 5}, 6, WithCaps([]float64{2, 10, 10}))
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	if x[0] > 2+1e-9 {
		t.Errorf("capped computer got %v, cap 2", x[0])
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range out.Utility {
		if u < -1e-9 {
			t.Errorf("truthful capped agent %d utility %v", i, u)
		}
	}
	// Errors.
	if _, err := NewSystem([]float64{1, 2}, 4, WithCaps([]float64{1})); err == nil {
		t.Error("expected error for cap count mismatch")
	}
	if _, err := NewSystem([]float64{0.1, 0.2}, 2,
		WithModel(mech.MM1Model{}), WithCaps([]float64{1, 1})); err == nil {
		t.Error("expected error for caps on a non-linear model")
	}
}

func TestRunProtocolFacade(t *testing.T) {
	s, err := NewSystem([]float64{1, 2, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetBid(0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunProtocol(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 5*3 {
		t.Errorf("messages = %d, want 15", res.Messages)
	}
	// Estimates close to true execution values.
	for i, est := range res.Estimates {
		want := s.Agents()[i].Exec
		if math.Abs(est.Value-want)/want > 0.15 {
			t.Errorf("agent %d estimate %v, want ~%v", i, est.Value, want)
		}
	}
}
