package dispatch

import (
	"math"
	"sync"
	"testing"

	"repro/internal/numeric"
	"repro/internal/registry"
)

// diffDraws is the sample size of the empirical-frequency differential
// test; -short trims it for quick local runs, CI runs the full 10^7.
func diffDraws(t *testing.T) int {
	if testing.Short() {
		return 1_000_000
	}
	return 10_000_000
}

// checkFrequencies draws from the dispatcher's table with a seeded
// numeric.Rand and compares every instance's empirical frequency to
// the sealed allocation share x_i*/R = (1/b_i)/S, within a 6-sigma
// binomial band. It returns the counts so callers can pin determinism.
func checkFrequencies(t *testing.T, d *Alias, snap *registry.Snapshot, seed uint64, draws int) []int64 {
	t.Helper()
	tab := d.Table()
	if tab.N() != snap.N() {
		t.Fatalf("table over %d instances, epoch has %d", tab.N(), snap.N())
	}
	counts := make([]int64, tab.N())
	rng := numeric.NewRand(seed)
	for i := 0; i < draws; i++ {
		counts[tab.Sample(rng.Uint64())]++
	}
	for i, id := range snap.IDs() {
		x, ok := snap.Load(id)
		if !ok {
			t.Fatalf("sealed id %d unreadable", id)
		}
		p := x / snap.Rate() // x_i*/R = (1/b_i)/S
		freq := float64(counts[i]) / float64(draws)
		sigma := math.Sqrt(p * (1 - p) / float64(draws))
		if math.Abs(freq-p) > 6*sigma+1e-9 {
			t.Errorf("epoch %d instance %d (id %d): freq %.6f vs sealed share %.6f (|Δ| = %.2g > 6σ = %.2g)",
				snap.Epoch(), i, id, freq, p, math.Abs(freq-p), 6*sigma)
		}
	}
	return counts
}

// TestAliasDifferentialFrequencies is the differential acceptance
// test: empirical alias-sample frequencies converge to the sealed
// PR shares for a fresh epoch, stay converged after rebids reseal,
// and track a SealCorrected epoch's drops and weight discounts. The
// draw stream is a seeded numeric.Rand, so the counts themselves are
// deterministic — pinned by a replay.
func TestAliasDifferentialFrequencies(t *testing.T) {
	draws := diffDraws(t)
	reg, err := registry.New(registry.Config{Rate: 24})
	if err != nil {
		t.Fatal(err)
	}
	bids := []float64{0.2, 0.33, 0.5, 0.8, 1, 1.25, 2, 2.5, 3.5, 5, 8, 13}
	ids := make([]int, len(bids))
	for i, b := range bids {
		if ids[i], err = reg.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Seal()
	d := NewAlias(77)
	if err := d.Rebuild(snap); err != nil {
		t.Fatal(err)
	}
	counts := checkFrequencies(t, d, snap, 1, draws)
	replay := checkFrequencies(t, d, snap, 1, draws)
	for i := range counts {
		if counts[i] != replay[i] {
			t.Fatalf("instance %d: %d then %d draws from the same seed", i, counts[i], replay[i])
		}
	}

	// Rebid a few agents and reseal: the fresh epoch's distribution
	// follows the new bids.
	if err := reg.Update(ids[0], 6); err != nil {
		t.Fatal(err)
	}
	if err := reg.Update(ids[7], 0.4); err != nil {
		t.Fatal(err)
	}
	snap = reg.Seal()
	if err := d.Rebuild(snap); err != nil {
		t.Fatal(err)
	}
	checkFrequencies(t, d, snap, 2, draws)

	// A corrected epoch: eject two instances, discount a third to
	// half weight. The sampler must track the corrected shares —
	// ejected instances draw nothing at all.
	snap, err = reg.SealCorrected(&registry.Correction{
		Drop:    map[int]bool{ids[2]: true, ids[9]: true},
		Weights: map[int]float64{ids[4]: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rebuild(snap); err != nil {
		t.Fatal(err)
	}
	if d.N() != len(bids)-2 {
		t.Fatalf("corrected epoch: N = %d, want %d", d.N(), len(bids)-2)
	}
	checkFrequencies(t, d, snap, 3, draws)
}

// TestAccountingWorkerInvariance pins the byte-identical claim: for
// policies whose routing is a pure function of the job (alias,
// ip-hash, greedy), partitioning one job stream across any number of
// workers yields bit-for-bit the same tallies and the same
// realized-latency accounting.
func TestAccountingWorkerInvariance(t *testing.T) {
	reg := testRegistry(t, []float64{0.5, 0.7, 1, 1.5, 2.2, 3, 4.5, 7}, 12)
	snap := reg.Snapshot()
	n := snap.N()
	mus := make([]float64, n)
	ts := make([]float64, n)
	for i, id := range snap.IDs() {
		v, _ := snap.Value(id)
		ts[i] = v
		mus[i] = 4 / v
	}
	const jobs = 1 << 16
	horizon := float64(jobs) / snap.Rate()

	for _, policy := range []string{"alias", "ip-hash", "greedy"} {
		var ref *Account
		for _, workers := range []int{1, 3, 8} {
			d, err := New(policy, 123)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Rebuild(snap); err != nil {
				t.Fatal(err)
			}
			tallies := make([]*Tally, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				tallies[w] = NewTally(n)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lo := w * jobs / workers
					hi := (w + 1) * jobs / workers
					for id := lo; id < hi; id++ {
						j := Job{ID: int64(id), Key: mix64(uint64(id % 512))}
						tallies[w].Observe(d.Pick(j), 1)
					}
				}(w)
			}
			wg.Wait()
			merged := NewTally(n)
			for _, tal := range tallies {
				if err := merged.Merge(tal); err != nil {
					t.Fatal(err)
				}
			}
			acc, err := AccountMM1(merged, mus, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = acc
				continue
			}
			if math.Float64bits(acc.Mean) != math.Float64bits(ref.Mean) ||
				math.Float64bits(acc.P99) != math.Float64bits(ref.P99) {
				t.Errorf("%s: %d workers: mean/p99 %v/%v differ from 1-worker %v/%v",
					policy, workers, acc.Mean, acc.P99, ref.Mean, ref.P99)
			}
			for i := range acc.Rates {
				if math.Float64bits(acc.Rates[i]) != math.Float64bits(ref.Rates[i]) {
					t.Fatalf("%s: %d workers: instance %d rate %v differs from %v",
						policy, workers, i, acc.Rates[i], ref.Rates[i])
				}
			}
		}
	}
}

// TestAliasRebuildRaceClean hammers Pick/Done from several goroutines
// while epochs — fresh and corrected — are sealed and swapped in.
// Run under -race this pins the no-reader-locks protocol: an atomic
// pointer swap with immutable tables on both sides.
func TestAliasRebuildRaceClean(t *testing.T) {
	reg, err := registry.New(registry.Config{Rate: 16})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 16)
	for i := range ids {
		if ids[i], err = reg.Add(0.5 + float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	reg.Seal()
	ds := make([]Dispatcher, 0, len(Policies()))
	for _, p := range Policies() {
		d, err := New(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Rebuild(reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
	}

	const picksPerWorker = 20_000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < picksPerWorker; i++ {
				j := Job{ID: int64(w*picksPerWorker + i), Key: uint64(i) * 2654435761}
				for _, d := range ds {
					idx := d.Pick(j)
					if idx < 0 || idx >= len(ids) {
						t.Errorf("pick out of range: %d", idx)
						return
					}
					d.Done(j, idx)
				}
			}
		}(w)
	}
	// The sealer: rebids, alternating fresh and corrected epochs
	// (which shrink the population), rebuilding every dispatcher
	// after each seal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := numeric.NewRand(99)
		for k := 0; k < 200; k++ {
			id := ids[rng.Intn(len(ids))]
			if err := reg.Update(id, 0.25+4*rng.Float64()); err != nil {
				t.Error(err)
				return
			}
			var snap *registry.Snapshot
			if k%2 == 1 {
				var err error
				snap, err = reg.SealCorrected(&registry.Correction{
					Drop:    map[int]bool{ids[rng.Intn(len(ids))]: true},
					Weights: map[int]float64{ids[rng.Intn(len(ids))]: 0.5},
				})
				if err != nil {
					t.Error(err)
					return
				}
			} else {
				snap = reg.Seal()
			}
			for _, d := range ds {
				if err := d.Rebuild(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
}
