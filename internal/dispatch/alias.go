package dispatch

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/numeric"
	"repro/internal/registry"
)

// Table is a Walker alias table: an O(n)-built, O(1)-sampled discrete
// distribution. Sampling costs two array reads and one branch —
// independent of the instance count — which is what lets the alias
// dispatcher track the mechanism's allocation at the same per-job
// cost as round-robin.
//
// Construction squares with the internal/alloc validation contract:
// a negative, NaN or Inf weight, or a weight vector with no positive
// mass, is a typed *alloc.ValueError rather than a silently broken
// table. Individual zero weights are legal — a zero-rate instance is
// simply never sampled — and a single-instance table degenerates to
// the constant 0.
type Table struct {
	n     int
	prob  []float64 // acceptance threshold of each slot, in [0, 1]
	alias []int32   // donor index taken when the threshold rejects
}

// NewTable builds an alias table over the given (unnormalized,
// nonnegative) weights using Vose's two-worklist construction. The
// weights slice is not retained.
func NewTable(w []float64) (*Table, error) {
	n := len(w)
	if n == 0 {
		return nil, ErrNoInstances
	}
	if n > math.MaxInt32 {
		return nil, &alloc.ValueError{Field: "len(w)", Value: float64(n)}
	}
	var sum numeric.KahanSum
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, &alloc.ValueError{Field: fmt.Sprintf("w[%d]", i), Value: x}
		}
		sum.Add(x)
	}
	total := sum.Value()
	if !(total > 0) || math.IsInf(total, 0) {
		return nil, &alloc.ValueError{Field: "sum(w)", Value: total}
	}

	t := &Table{n: n, prob: make([]float64, n), alias: make([]int32, n)}
	// Scale each weight to mean 1 (p_i·n); entries below 1 need a
	// donor, entries above 1 have mass to donate. Normalizing each
	// entry as (x/total)·n keeps the intermediate in [0, n] — the
	// one-shot scale factor n/total overflows to +Inf for subnormal
	// totals and turns zero weights into NaN slots.
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	donor := int32(0)
	for i, x := range w {
		t.prob[i] = x / total * float64(n)
		if t.prob[i] > t.prob[donor] {
			donor = int32(i)
		}
		if t.prob[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		// s keeps prob[s] of its own mass; the rest of its slot is
		// donated by l.
		t.alias[s] = l
		t.prob[l] -= 1 - t.prob[s]
		if t.prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Whatever remains on either worklist is there only through
	// floating-point drift: those slots own their full probability.
	// Exception: a slot whose scaled weight is exactly zero (a
	// zero-rate instance stranded by drift elsewhere) must stay
	// unreachable — it aliases to the heaviest slot instead of being
	// promoted to probability one.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		if t.prob[i] == 0 {
			t.alias[i] = donor
			continue
		}
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// N returns the number of outcomes.
func (t *Table) N() int { return t.n }

// Sample maps 64 uniform bits to an outcome: the high 32 bits pick
// the slot (multiply-shift, no divide), the low 32 form the
// acceptance fraction against the slot's threshold. Two array reads
// and one branch; zero allocations; safe for any number of
// concurrent callers since the table is immutable.
func (t *Table) Sample(u uint64) int {
	slot := indexOf(u, t.n)
	if float64(uint32(u))*0x1p-32 < t.prob[slot] {
		return slot
	}
	return int(t.alias[slot])
}

// Alias is the mechanism-optimal dispatcher: jobs are routed by
// alias-table sampling over the sealed epoch's weights 1/b_i, so the
// realized per-instance arrival rates track the PR allocation
// x_i* = R·(1/b_i)/S without coordination between callers. The draw
// for each job is derived by hashing the job against the dispatcher
// seed, which makes the assignment a pure function of (seed, epoch,
// job): concurrent workers produce the same routing as a serial
// replay of the same jobs.
type Alias struct {
	seed uint64
	st   atomic.Pointer[aliasEpoch]
}

type aliasEpoch struct {
	view *view
	tab  *Table
}

// NewAlias returns an alias dispatcher with the given hash seed.
func NewAlias(seed uint64) *Alias { return &Alias{seed: seed} }

// Name implements Dispatcher.
func (d *Alias) Name() string { return "alias" }

// Rebuild implements Dispatcher: it builds a fresh table from the
// sealed epoch and publishes it with one atomic store. Readers
// continue sampling the previous table until the store lands, so
// epoch swaps (including SealCorrected health corrections) cost the
// hot path nothing.
func (d *Alias) Rebuild(snap *registry.Snapshot) error {
	v, err := viewFromSnapshot(snap)
	if err != nil {
		return err
	}
	tab, err := NewTable(v.w)
	if err != nil {
		return err
	}
	d.st.Store(&aliasEpoch{view: v, tab: tab})
	return nil
}

// Pick implements Dispatcher.
func (d *Alias) Pick(j Job) int {
	return d.st.Load().tab.Sample(jobBits(d.seed, j))
}

// Done implements Dispatcher (no per-connection state).
func (d *Alias) Done(Job, int) {}

// N implements Dispatcher.
func (d *Alias) N() int {
	if st := d.st.Load(); st != nil {
		return st.tab.n
	}
	return 0
}

// Epoch returns the sealed epoch number the dispatcher currently
// routes against (0 before the first Rebuild).
func (d *Alias) Epoch() uint64 {
	if st := d.st.Load(); st != nil {
		return st.view.epoch
	}
	return 0
}

// Table returns the active alias table (nil before the first
// Rebuild); tests sample it directly with a seeded numeric.Rand.
func (d *Alias) Table() *Table {
	if st := d.st.Load(); st != nil {
		return st.tab
	}
	return nil
}
