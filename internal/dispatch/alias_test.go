package dispatch

import (
	"errors"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/numeric"
)

// TestNewTableDegenerate pins the construction contract: invalid
// weights are typed *alloc.ValueError, an empty vector is
// ErrNoInstances, and the legal degenerate shapes (single instance,
// zero-weight entries) build working tables instead of broken ones.
func TestNewTableDegenerate(t *testing.T) {
	bad := [][]float64{
		{math.NaN()},
		{1, math.NaN(), 2},
		{math.Inf(1)},
		{1, math.Inf(-1)},
		{-1, 2},
		{0, 0, 0}, // zero-rate everywhere: no positive mass
		{},
	}
	for _, w := range bad {
		tab, err := NewTable(w)
		if err == nil {
			t.Fatalf("NewTable(%v) built a table from invalid weights", w)
		}
		if tab != nil {
			t.Fatalf("NewTable(%v) returned a table alongside error %v", w, err)
		}
		if len(w) == 0 {
			if !errors.Is(err, ErrNoInstances) {
				t.Fatalf("NewTable(empty): err = %v, want ErrNoInstances", err)
			}
			continue
		}
		var ve *alloc.ValueError
		if !errors.As(err, &ve) {
			t.Fatalf("NewTable(%v): err = %v, want *alloc.ValueError", w, err)
		}
	}
}

// TestNewTableSingle checks the single-instance table is the constant
// distribution.
func TestNewTableSingle(t *testing.T) {
	tab, err := NewTable([]float64{3.7})
	if err != nil {
		t.Fatal(err)
	}
	rng := numeric.NewRand(7)
	for i := 0; i < 1000; i++ {
		if got := tab.Sample(rng.Uint64()); got != 0 {
			t.Fatalf("single-instance sample = %d, want 0", got)
		}
	}
}

// TestNewTableZeroWeightNeverSampled checks that a zero-rate instance
// draws exactly nothing.
func TestNewTableZeroWeightNeverSampled(t *testing.T) {
	w := []float64{1, 0, 2, 0, 4}
	tab, err := NewTable(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := numeric.NewRand(11)
	for i := 0; i < 200_000; i++ {
		idx := tab.Sample(rng.Uint64())
		if idx < 0 || idx >= len(w) {
			t.Fatalf("sample %d out of range [0, %d)", idx, len(w))
		}
		if w[idx] == 0 {
			t.Fatalf("sampled zero-weight instance %d", idx)
		}
	}
}

// TestTableMassConservation checks the alias construction preserves
// every slot's probability exactly: summing each slot's kept and
// donated mass reconstructs the normalized input weights.
func TestTableMassConservation(t *testing.T) {
	w := []float64{5, 0.25, 1, 1, 9, 0.01, 3, 0.5}
	tab, err := NewTable(w)
	if err != nil {
		t.Fatal(err)
	}
	var total numeric.KahanSum
	for _, x := range w {
		total.Add(x)
	}
	mass := make([]float64, len(w))
	for slot := 0; slot < tab.n; slot++ {
		mass[slot] += tab.prob[slot] / float64(tab.n)
		mass[tab.alias[slot]] += (1 - tab.prob[slot]) / float64(tab.n)
	}
	for i, x := range w {
		want := x / total.Value()
		if math.Abs(mass[i]-want) > 1e-12 {
			t.Errorf("instance %d: table mass %.15g, want %.15g", i, mass[i], want)
		}
	}
}

// TestAliasEpochAccessors checks the dispatcher exposes the sealed
// epoch it routes against and a nil table before the first rebuild.
func TestAliasEpochAccessors(t *testing.T) {
	d := NewAlias(1)
	if d.N() != 0 || d.Epoch() != 0 || d.Table() != nil {
		t.Fatal("fresh alias dispatcher should have no epoch")
	}
	reg := testRegistry(t, []float64{1, 2, 4}, 10)
	snap := reg.Snapshot()
	if err := d.Rebuild(snap); err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.Epoch() != snap.Epoch() || d.Table() == nil {
		t.Fatalf("after rebuild: N=%d epoch=%d, want 3, %d", d.N(), d.Epoch(), snap.Epoch())
	}
}
