// Package dispatch routes individual jobs against sealed registry
// epochs. The mechanism computes an optimal rate allocation x_i* and
// internal/registry serves it as immutable O(1) snapshots; this
// package closes the remaining gap between "mechanism" and "load
// balancer": given a stream of online job arrivals, which instance
// does each job go to?
//
// The mechanism-faithful answer is the Alias dispatcher: a Walker
// alias table built from the sealed epoch's weights 1/b_i, so each
// job lands on instance i with probability x_i*/R — the sampled
// stream realizes the PR optimum without any instance coordination.
// Its hot path is two array reads and one branch (O(1) regardless of
// the instance count), the table is rebuilt per epoch (including
// health-corrected SealCorrected epochs, so ejections and weight
// discounts take effect at the next seal) and swapped through an
// atomic pointer: readers never take a lock and never observe a
// half-built table.
//
// The classic baselines every production balancer ships — round-robin,
// least-connections (plus its power-of-two-choices variant),
// smooth static-weighted, and ip-hash stickiness — live behind the
// same Dispatcher interface, so the lbdispatch load generator can
// drive millions of jobs per second through each policy and measure
// realized latency against the sealed optimum. All policies are
// allocation-free in steady state and safe for concurrent callers:
// shared state is either an atomic cursor, padded per-instance
// atomic counters, or an immutable view behind an atomic pointer.
//
// Policies whose per-job decision is a pure function of the job and
// the sealed epoch (alias, ip-hash, greedy) assign every job the same
// instance no matter how many goroutines drive them or how the job
// stream is partitioned — per-instance tallies, and therefore the
// realized-latency accounting in Account, are byte-identical for any
// worker count. Policies with shared mutable state (round-robin
// cursor, connection counters, smooth-weighted state) are fair in
// aggregate but schedule-dependent per job.
package dispatch

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/registry"
)

// Job is the routing context for one arriving request.
type Job struct {
	// ID is the job's sequence number in its stream; stateless
	// randomized policies hash it so every job gets a fresh draw.
	ID int64
	// Key identifies the client (an ip-hash input): sticky policies
	// route equal keys to the same instance within an epoch.
	Key uint64
}

// Dispatcher routes jobs to instances of the current sealed epoch.
// Instances are dense indices in [0, N()) ordering the epoch's live
// agents by ascending registry id. All methods are safe for
// concurrent use. Pick must not be called before the first
// successful Rebuild — a dispatcher with no epoch has nothing to
// route against and panics.
type Dispatcher interface {
	// Name returns the policy name (see Policies).
	Name() string
	// Pick routes one job, returning its instance index in [0, N()).
	Pick(j Job) int
	// Done reports completion of a job previously routed to target.
	// Connection-counting policies decrement their in-flight state;
	// the rest ignore it.
	Done(j Job, target int)
	// Rebuild swaps the dispatcher onto a newly sealed epoch. The
	// swap is atomic: concurrent Picks observe either the old or the
	// new epoch, never a mix. On error the previous epoch stays
	// active.
	Rebuild(snap *registry.Snapshot) error
	// N returns the instance count of the active epoch (0 before the
	// first successful Rebuild).
	N() int
}

// ErrNoInstances is returned by Rebuild (and the alias-table
// constructor) for an epoch with no live instances — a dispatcher
// cannot route against an empty population, mirroring the
// no-computers error of the allocation layer.
var ErrNoInstances = errors.New("dispatch: no live instances in epoch")

// view is the immutable per-epoch instance set shared by the simple
// policies: the sealed epoch number, the live registry ids in
// ascending order, and each instance's sampling weight 1/b_i (the
// sealed PR allocation is x_i* = R·w_i/Σw).
type view struct {
	epoch uint64
	ids   []int
	w     []float64
}

// viewFromSnapshot extracts the dense instance view of a sealed
// epoch. The weights are the snapshot's inverse bids, so a
// SealCorrected epoch's drops (absent ids) and weight discounts
// (re-priced bids) flow straight into the dispatch distribution.
func viewFromSnapshot(snap *registry.Snapshot) (*view, error) {
	if snap == nil || snap.N() == 0 {
		return nil, ErrNoInstances
	}
	ids := snap.IDs()
	w := make([]float64, len(ids))
	for i, id := range ids {
		t, ok := snap.Value(id)
		if !ok {
			return nil, fmt.Errorf("dispatch: sealed id %d vanished from its own epoch", id)
		}
		w[i] = 1 / t
	}
	return &view{epoch: snap.Epoch(), ids: ids, w: w}, nil
}

// mix64 is the SplitMix64 finalizer: a cheap invertible mix with full
// avalanche, used to turn job identity into uniform bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jobBits maps a (seed, job) pair to 64 uniform bits, deterministically:
// the same job always draws the same bits, so hash-randomized policies
// are schedule- and worker-count-independent.
func jobBits(seed uint64, j Job) uint64 {
	return mix64(seed ^ uint64(j.ID)*0x9e3779b97f4a7c15 ^ j.Key*0xd1b54a32d192ed03)
}

// indexOf maps 32 uniform bits (the high word of u) onto [0, n) by
// multiply-shift — the bias is < 2^-32, far below every tolerance in
// this package — without a divide on the hot path.
func indexOf(u uint64, n int) int {
	return int((u >> 32) * uint64(n) >> 32)
}

// Policies lists the built-in policy names in presentation order.
func Policies() []string {
	return []string{"alias", "rr", "least-conn", "p2c", "weighted", "ip-hash", "greedy"}
}

// New constructs a dispatcher by policy name. The seed drives the
// hash-randomized policies (alias, p2c, ip-hash); deterministic
// policies ignore it. The dispatcher routes nothing until its first
// successful Rebuild.
func New(policy string, seed uint64) (Dispatcher, error) {
	switch policy {
	case "alias":
		return NewAlias(seed), nil
	case "rr":
		return NewRoundRobin(), nil
	case "least-conn":
		return NewLeastConn(), nil
	case "p2c":
		return NewPowerOfTwo(seed), nil
	case "weighted":
		return NewStaticWeighted(), nil
	case "ip-hash":
		return NewIPHash(seed), nil
	case "greedy":
		return NewGreedy(), nil
	}
	return nil, fmt.Errorf("dispatch: unknown policy %q", policy)
}

// atomicView is the shared swap cell: policies that need nothing
// beyond the instance view embed it.
type atomicView struct {
	v atomic.Pointer[view]
}

func (a *atomicView) rebuild(snap *registry.Snapshot) error {
	nv, err := viewFromSnapshot(snap)
	if err != nil {
		return err
	}
	a.v.Store(nv)
	return nil
}

func (a *atomicView) N() int {
	if v := a.v.Load(); v != nil {
		return len(v.ids)
	}
	return 0
}
