package dispatch

import (
	"errors"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/registry"
)

// testRegistry seals a registry over the given bids and returns it.
func testRegistry(t testing.TB, bids []float64, rate float64) *registry.Registry {
	t.Helper()
	reg, err := registry.New(registry.Config{Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bids {
		if _, err := reg.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	reg.Seal()
	return reg
}

// rebuilt returns the named dispatcher rebuilt onto the registry's
// current snapshot.
func rebuilt(t testing.TB, policy string, reg *registry.Registry, seed uint64) Dispatcher {
	t.Helper()
	d, err := New(policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rebuild(reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("fastest-finger", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, p := range Policies() {
		d, err := New(p, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", p, err)
		}
		if d.Name() != p {
			t.Fatalf("New(%q).Name() = %q", p, d.Name())
		}
	}
}

// TestRoundRobinExactFairness: counts are perfectly level when jobs
// divide evenly.
func TestRoundRobinExactFairness(t *testing.T) {
	reg := testRegistry(t, []float64{1, 2, 3, 4, 5}, 10)
	d := rebuilt(t, "rr", reg, 0)
	counts := make([]int, 5)
	for i := 0; i < 1000; i++ {
		counts[d.Pick(Job{ID: int64(i)})]++
	}
	for i, c := range counts {
		if c != 200 {
			t.Errorf("instance %d: %d picks, want 200", i, c)
		}
	}
}

// TestLeastConnSpreadsWithoutDone: every pick raises the chosen
// instance's in-flight count, so with no completions the counts stay
// within one of each other.
func TestLeastConnSpreadsWithoutDone(t *testing.T) {
	reg := testRegistry(t, []float64{1, 1, 1, 1}, 10)
	d := rebuilt(t, "least-conn", reg, 0)
	counts := make([]int, 4)
	for i := 0; i < 101; i++ {
		counts[d.Pick(Job{ID: int64(i)})]++
	}
	for i, c := range counts {
		if c < 25 || c > 26 {
			t.Errorf("instance %d: %d picks, want 25-26", i, c)
		}
	}
}

// TestLeastConnDoneFreesInstance: with immediate completion the
// lowest index always has the fewest (zero) connections.
func TestLeastConnDoneFreesInstance(t *testing.T) {
	reg := testRegistry(t, []float64{1, 1, 1}, 10)
	d := rebuilt(t, "least-conn", reg, 0)
	for i := 0; i < 50; i++ {
		j := Job{ID: int64(i)}
		got := d.Pick(j)
		if got != 0 {
			t.Fatalf("pick %d: instance %d, want 0 (all idle, lowest-index tie-break)", i, got)
		}
		d.Done(j, got)
	}
}

// TestPowerOfTwoBalances: p2c with held connections keeps the load
// within the classic near-level band, and never picks out of range.
func TestPowerOfTwoBalances(t *testing.T) {
	reg := testRegistry(t, []float64{1, 1, 1, 1, 1, 1, 1, 1}, 10)
	d := rebuilt(t, "p2c", reg, 42)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		idx := d.Pick(Job{ID: int64(i), Key: uint64(i) * 977})
		if idx < 0 || idx >= 8 {
			t.Fatalf("pick out of range: %d", idx)
		}
		counts[idx]++
	}
	// 8000 held connections over 8 instances: two-choices keeps the
	// imbalance logarithmic; allow a generous band around 1000.
	for i, c := range counts {
		if c < 900 || c > 1100 {
			t.Errorf("instance %d: %d picks, want ~1000", i, c)
		}
	}
}

// TestStaticWeightedExactRatio: smooth WRR delivers weight-exact
// counts over full cycles and the canonical interleaving.
func TestStaticWeightedExactRatio(t *testing.T) {
	// Bids 0.25 and 1 give exact weights 4 and 1.
	reg := testRegistry(t, []float64{0.25, 1}, 10)
	d := rebuilt(t, "weighted", reg, 0)
	want := []int{0, 0, 1, 0, 0} // smooth WRR pattern for weights 4:1
	counts := make([]int, 2)
	for i := 0; i < 500; i++ {
		got := d.Pick(Job{})
		if got != want[i%5] {
			t.Fatalf("pick %d: instance %d, want %d", i, got, want[i%5])
		}
		counts[got]++
	}
	if counts[0] != 400 || counts[1] != 100 {
		t.Fatalf("counts = %v, want [400 100]", counts)
	}
}

// TestIPHashSticky: one key, one instance — across jobs and across
// same-size rebuilds.
func TestIPHashSticky(t *testing.T) {
	reg := testRegistry(t, []float64{1, 2, 3, 4, 5, 6, 7}, 10)
	d := rebuilt(t, "ip-hash", reg, 9)
	hit := make(map[int]bool)
	for key := uint64(0); key < 64; key++ {
		first := d.Pick(Job{ID: 0, Key: key})
		for i := 1; i < 20; i++ {
			if got := d.Pick(Job{ID: int64(i), Key: key}); got != first {
				t.Fatalf("key %d moved from %d to %d", key, first, got)
			}
		}
		hit[first] = true
	}
	if len(hit) < 4 {
		t.Fatalf("64 keys landed on only %d of 7 instances", len(hit))
	}
	// Rebuilding onto an epoch with the same instance count keeps
	// every key pinned.
	before := d.Pick(Job{Key: 17})
	reg.Seal()
	if err := d.Rebuild(reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := d.Pick(Job{Key: 17}); got != before {
		t.Fatalf("same-size rebuild moved key 17 from %d to %d", before, got)
	}
}

// TestGreedyHerdsOnFastest: greedy always routes to the
// maximum-weight (minimum-bid) instance.
func TestGreedyHerdsOnFastest(t *testing.T) {
	reg := testRegistry(t, []float64{4, 2, 0.5, 8}, 10)
	d := rebuilt(t, "greedy", reg, 0)
	for i := 0; i < 100; i++ {
		if got := d.Pick(Job{ID: int64(i)}); got != 2 {
			t.Fatalf("greedy picked %d, want 2 (bid 0.5 is fastest)", got)
		}
	}
}

// TestRebuildEmptyEpochKeepsOld: an empty epoch is rejected with
// ErrNoInstances and the previous epoch keeps serving.
func TestRebuildEmptyEpochKeepsOld(t *testing.T) {
	reg, err := registry.New(registry.Config{Rate: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Policies() {
		d, err := New(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Rebuild(reg.Snapshot()); !errors.Is(err, ErrNoInstances) {
			t.Fatalf("%s: rebuild on empty epoch: err = %v, want ErrNoInstances", p, err)
		}
	}
	id, err := reg.Add(2)
	if err != nil {
		t.Fatal(err)
	}
	reg.Seal()
	d := rebuilt(t, "alias", reg, 3)
	if d.N() != 1 {
		t.Fatalf("N = %d, want 1", d.N())
	}
	// Drain the registry; the corrected-empty epoch must be rejected
	// and the old table keep routing.
	if err := reg.Remove(id); err != nil {
		t.Fatal(err)
	}
	reg.Seal()
	if err := d.Rebuild(reg.Snapshot()); !errors.Is(err, ErrNoInstances) {
		t.Fatalf("rebuild on drained epoch: err = %v, want ErrNoInstances", err)
	}
	if d.N() != 1 || d.Pick(Job{ID: 1}) != 0 {
		t.Fatal("failed rebuild disturbed the active epoch")
	}
}

// TestSealCorrectedDropShrinksDispatcher: a corrected epoch ejecting
// an instance shrinks the dense index space at the next rebuild.
func TestSealCorrectedDropShrinksDispatcher(t *testing.T) {
	reg := testRegistry(t, []float64{1, 2, 3, 4}, 10)
	d := rebuilt(t, "alias", reg, 5)
	if d.N() != 4 {
		t.Fatalf("N = %d, want 4", d.N())
	}
	snap, err := reg.SealCorrected(&registry.Correction{Drop: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rebuild(snap); err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("after corrected rebuild: N = %d, want 3", d.N())
	}
}

// TestPickAllocFree pins the zero-allocation steady state of every
// policy's hot path.
func TestPickAllocFree(t *testing.T) {
	reg := testRegistry(t, []float64{1, 2, 3, 4, 5, 6, 7, 8}, 10)
	for _, p := range Policies() {
		d := rebuilt(t, p, reg, 11)
		id := int64(0)
		allocs := testing.AllocsPerRun(2000, func() {
			j := Job{ID: id, Key: uint64(id) * 31}
			target := d.Pick(j)
			d.Done(j, target)
			id++
		})
		if allocs != 0 {
			t.Errorf("%s: Pick+Done allocates %.1f/op, want 0", p, allocs)
		}
	}
}

// TestAccountLinearKnownValues checks the model accounting against a
// hand computation.
func TestAccountLinearKnownValues(t *testing.T) {
	tal := NewTally(2)
	for i := 0; i < 30; i++ {
		tal.Observe(0, 1)
	}
	for i := 0; i < 10; i++ {
		tal.Observe(1, 1)
	}
	// horizon 4s: rates 7.5 and 2.5; ts {0.2, 0.6} → per-job 1.5 and 1.5.
	acc, err := AccountLinear(tal, []float64{0.2, 0.6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Jobs != 40 || acc.Unstable != 0 {
		t.Fatalf("jobs=%d unstable=%d", acc.Jobs, acc.Unstable)
	}
	if math.Abs(acc.Mean-1.5) > 1e-12 || math.Abs(acc.P99-1.5) > 1e-12 {
		t.Fatalf("mean=%g p99=%g, want 1.5", acc.Mean, acc.P99)
	}
	if share, inst := acc.MaxShare(); inst != 0 || math.Abs(share-0.75) > 1e-12 {
		t.Fatalf("max share %g at %d, want 0.75 at 0", share, inst)
	}
}

// TestAccountMM1Overload checks an overloaded instance is flagged
// unstable and drags mean and p99 to +Inf.
func TestAccountMM1Overload(t *testing.T) {
	tal := NewTally(2)
	for i := 0; i < 100; i++ {
		tal.Observe(0, 1)
	}
	tal.Observe(1, 1)
	// horizon 10s: rates 10 and 0.1 vs capacities 5 and 5.
	acc, err := AccountMM1(tal, []float64{5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Unstable != 1 {
		t.Fatalf("unstable = %d, want 1", acc.Unstable)
	}
	if !math.IsInf(acc.Mean, 1) || !math.IsInf(acc.P99, 1) {
		t.Fatalf("mean=%g p99=%g, want +Inf", acc.Mean, acc.P99)
	}
	if math.IsInf(acc.PerJob[1], 1) {
		t.Fatal("stable instance priced at +Inf")
	}
}

// TestAccountP99Boundary checks the p99 walk lands on the instance
// covering the 99th percentile job.
func TestAccountP99Boundary(t *testing.T) {
	tal := NewTally(2)
	for i := 0; i < 990; i++ {
		tal.Observe(0, 1)
	}
	for i := 0; i < 10; i++ {
		tal.Observe(1, 1)
	}
	// ts chosen so instance 1 is slower: rates 99 and 1 over 10s.
	acc, err := AccountLinear(tal, []float64{0.01, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 99% of 1000 = 990 jobs: exactly covered by instance 0.
	if math.Abs(acc.P99-acc.PerJob[0]) > 1e-12 {
		t.Fatalf("p99 = %g, want instance 0's %g", acc.P99, acc.PerJob[0])
	}
	// 20 more slow jobs: 990 of 1020 fast no longer covers the 99th
	// percentile, which crosses into instance 1.
	for i := 0; i < 20; i++ {
		tal.Observe(1, 1)
	}
	acc, err = AccountLinear(tal, []float64{0.01, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.P99-acc.PerJob[1]) > 1e-12 {
		t.Fatalf("p99 = %g, want instance 1's %g", acc.P99, acc.PerJob[1])
	}
}

// TestAccountValidation pins the typed error contract.
func TestAccountValidation(t *testing.T) {
	tal := NewTally(2)
	var ve *alloc.ValueError
	if _, err := AccountLinear(tal, []float64{1}, 1); !errors.As(err, &ve) {
		t.Fatalf("length mismatch: err = %v, want *alloc.ValueError", err)
	}
	for _, h := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := AccountLinear(tal, []float64{1, 1}, h); !errors.As(err, &ve) {
			t.Fatalf("horizon %v: err = %v, want *alloc.ValueError", h, err)
		}
	}
}
