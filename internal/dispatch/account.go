package dispatch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/alloc"
)

// Tally accumulates per-instance dispatch counts. The load generator
// gives each worker its own Tally — the hot loop touches no shared
// memory — and merges them when the run ends.
type Tally struct {
	// Jobs counts jobs routed to each instance.
	Jobs []int64
	// Work sums the routed jobs' sizes per instance (service demand
	// in mean-job units); with unit mean sizes Work ≈ Jobs.
	Work []float64
}

// NewTally returns a zeroed tally over n instances.
func NewTally(n int) *Tally {
	return &Tally{Jobs: make([]int64, n), Work: make([]float64, n)}
}

// Observe records one job of the given size routed to target.
func (t *Tally) Observe(target int, size float64) {
	t.Jobs[target]++
	t.Work[target] += size
}

// Merge folds another tally into t. Job counts are integers, so the
// merged counts are independent of merge order and worker
// partitioning; Work is floating point and merge-order dependent in
// its last bits. The tallies must cover the same instance set: a
// length mismatch is a *alloc.ValueError (a shorter from used to
// panic, a longer one silently dropped its excess instances).
func (t *Tally) Merge(from *Tally) error {
	if len(from.Jobs) != len(t.Jobs) || len(from.Work) != len(t.Work) {
		return &alloc.ValueError{Field: "len(from)", Value: float64(len(from.Jobs))}
	}
	for i := range t.Jobs {
		t.Jobs[i] += from.Jobs[i]
		t.Work[i] += from.Work[i]
	}
	return nil
}

// Total returns the merged job count.
func (t *Tally) Total() int64 {
	var n int64
	for _, c := range t.Jobs {
		n += c
	}
	return n
}

// Account is the model-based realized-latency accounting of one
// dispatch run: the per-instance arrival rates a policy actually
// produced, pushed through the epoch's latency model. It is computed
// from the merged integer job counts and the nominal horizon only, in
// ascending instance order — so for policies whose routing is a pure
// function of the job (alias, ip-hash, greedy) the accounting is
// byte-identical for any worker count.
type Account struct {
	// Jobs is the total job count.
	Jobs int64
	// Rates[i] is instance i's realized arrival rate Jobs_i/horizon.
	Rates []float64
	// Shares[i] is instance i's fraction of all jobs.
	Shares []float64
	// PerJob[i] is the modeled per-job latency at instance i under
	// its realized rate (+Inf for an overloaded M/M/1 instance).
	PerJob []float64
	// Mean and P99 summarize latency over jobs: each job's latency is
	// its instance's PerJob value.
	Mean, P99 float64
	// Unstable counts instances whose realized rate meets or exceeds
	// their service capacity (M/M/1 model only): their queues grow
	// without bound and their latency is +Inf.
	Unstable int
}

// MaxShare returns the largest per-instance job share and its
// instance — the herding indicator (1/n is perfectly level, 1.0 is
// total collapse onto one instance).
func (a *Account) MaxShare() (share float64, instance int) {
	for i, s := range a.Shares {
		if s > share {
			share, instance = s, i
		}
	}
	return share, instance
}

// AccountLinear prices a tally under the paper's linear model: a job
// routed to instance i experiences latency t_i·x̂_i at the realized
// rate x̂_i = Jobs_i/horizon. ts are the instances' latency
// parameters (the sealed bids) and horizon is the nominal arrival
// span jobs/R. The mechanism optimum to compare against is
// snapshot.OptimalLatency()/R per job (mean R/S).
func AccountLinear(tal *Tally, ts []float64, horizon float64) (*Account, error) {
	for i, t := range ts {
		if !(t > 0) || math.IsInf(t, 0) {
			return nil, &alloc.ValueError{Field: fmt.Sprintf("t[%d]", i), Value: t}
		}
	}
	return account(tal, horizon, func(i int, rate float64) float64 {
		return ts[i] * rate
	}, len(ts))
}

// AccountMM1 prices a tally as M/M/1 queues: instance i serves at
// rate mu_i with exponential service times, so a job routed there
// sees mean sojourn 1/(mu_i − x̂_i) — or an unbounded queue when the
// realized arrival rate x̂_i reaches capacity, the signature of
// herding collapse.
func AccountMM1(tal *Tally, mus []float64, horizon float64) (*Account, error) {
	for i, mu := range mus {
		if !(mu > 0) || math.IsInf(mu, 0) {
			return nil, &alloc.ValueError{Field: fmt.Sprintf("mu[%d]", i), Value: mu}
		}
	}
	return account(tal, horizon, func(i int, rate float64) float64 {
		if rate >= mus[i] {
			return math.Inf(1)
		}
		return 1 / (mus[i] - rate)
	}, len(mus))
}

// account runs the shared reduction. perJob maps (instance, realized
// rate) to modeled per-job latency.
func account(tal *Tally, horizon float64, perJob func(int, float64) float64, n int) (*Account, error) {
	if n != len(tal.Jobs) {
		return nil, &alloc.ValueError{Field: "len(model)", Value: float64(n)}
	}
	if !(horizon > 0) || math.IsInf(horizon, 0) {
		return nil, &alloc.ValueError{Field: "horizon", Value: horizon}
	}
	a := &Account{
		Rates:  make([]float64, n),
		Shares: make([]float64, n),
		PerJob: make([]float64, n),
	}
	a.Jobs = tal.Total()
	for i, c := range tal.Jobs {
		a.Rates[i] = float64(c) / horizon
		if a.Jobs > 0 {
			a.Shares[i] = float64(c) / float64(a.Jobs)
		}
		a.PerJob[i] = perJob(i, a.Rates[i])
		if math.IsInf(a.PerJob[i], 1) && c > 0 {
			a.Unstable++
		}
	}
	if a.Jobs == 0 {
		return a, nil
	}
	// Mean over jobs: every job routed to i sees PerJob[i]. An
	// unstable instance drags the mean to +Inf — correctly.
	var sum float64
	for i, c := range tal.Jobs {
		if c > 0 {
			sum += float64(c) * a.PerJob[i]
		}
	}
	a.Mean = sum / float64(a.Jobs)
	// p99 over jobs: walk instances by ascending per-job latency
	// (index-stable) until 99% of jobs are covered.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ix, iy := order[x], order[y]
		if a.PerJob[ix] != a.PerJob[iy] {
			return a.PerJob[ix] < a.PerJob[iy]
		}
		return ix < iy
	})
	need := int64(math.Ceil(0.99 * float64(a.Jobs)))
	var covered int64
	for _, i := range order {
		covered += tal.Jobs[i]
		if covered >= need {
			a.P99 = a.PerJob[i]
			break
		}
	}
	return a, nil
}
