package dispatch

import (
	"sync"
	"sync/atomic"

	"repro/internal/registry"
)

// This file implements the classic production-balancer baselines
// behind the Dispatcher interface: round-robin, least-connections
// (full-scan and power-of-two-choices), smooth static-weighted,
// ip-hash stickiness, and the deliberately naive greedy policy used
// to quantify the herding failure story. The alias sampler is in
// alias.go.

// RoundRobin cycles instances with a single atomic cursor: perfectly
// fair in counts, blind to capacity. The cursor survives rebuilds, so
// the rotation continues rather than restarting (a restart is exactly
// the "every client begins at index 0" herding bug).
type RoundRobin struct {
	cur atomic.Uint64
	atomicView
}

// NewRoundRobin returns a round-robin dispatcher.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Dispatcher.
func (d *RoundRobin) Name() string { return "rr" }

// Rebuild implements Dispatcher.
func (d *RoundRobin) Rebuild(snap *registry.Snapshot) error { return d.rebuild(snap) }

// Pick implements Dispatcher.
func (d *RoundRobin) Pick(Job) int {
	v := d.v.Load()
	return int((d.cur.Add(1) - 1) % uint64(len(v.ids)))
}

// Done implements Dispatcher.
func (d *RoundRobin) Done(Job, int) {}

// pcount is a cache-line-padded in-flight counter: least-connection
// scans read all of them, so neighbouring instances must not share a
// line with the counters being hammered by Pick/Done.
type pcount struct {
	v atomic.Int64
	_ [56]byte
}

// connState is the epoch view plus per-instance in-flight counters,
// shared by LeastConn and PowerOfTwo.
type connState struct {
	view  *view
	conns []pcount
}

// connTracker manages the counters across rebuilds: when the instance
// count is unchanged the counters are carried over (jobs in flight
// across an epoch seal keep their accounting), otherwise they reset.
type connTracker struct {
	st atomic.Pointer[connState]
}

func (c *connTracker) rebuild(snap *registry.Snapshot) error {
	v, err := viewFromSnapshot(snap)
	if err != nil {
		return err
	}
	old := c.st.Load()
	conns := make([]pcount, len(v.ids))
	if old != nil && len(old.conns) == len(conns) {
		conns = old.conns
	}
	c.st.Store(&connState{view: v, conns: conns})
	return nil
}

func (c *connTracker) N() int {
	if st := c.st.Load(); st != nil {
		return len(st.view.ids)
	}
	return 0
}

// done decrements the target's in-flight count, guarding against a
// completion that races a shrinking rebuild.
func (c *connTracker) done(target int) {
	st := c.st.Load()
	if st != nil && target >= 0 && target < len(st.conns) {
		st.conns[target].v.Add(-1)
	}
}

// LeastConn routes each job to the instance with the fewest in-flight
// jobs (lowest index on ties), tracking flight with padded atomic
// counters. The O(n) scan is the price of the exact minimum; the scan
// races concurrent Picks benignly — the chosen instance may be off by
// the handful of jobs dispatched mid-scan, the standard relaxation
// every production least-connections balancer makes.
type LeastConn struct {
	connTracker
}

// NewLeastConn returns a least-connections dispatcher.
func NewLeastConn() *LeastConn { return &LeastConn{} }

// Name implements Dispatcher.
func (d *LeastConn) Name() string { return "least-conn" }

// Rebuild implements Dispatcher.
func (d *LeastConn) Rebuild(snap *registry.Snapshot) error { return d.rebuild(snap) }

// Pick implements Dispatcher.
func (d *LeastConn) Pick(Job) int {
	st := d.st.Load()
	best, min := 0, st.conns[0].v.Load()
	for i := 1; i < len(st.conns); i++ {
		if c := st.conns[i].v.Load(); c < min {
			best, min = i, c
		}
	}
	st.conns[best].v.Add(1)
	return best
}

// Done implements Dispatcher.
func (d *LeastConn) Done(_ Job, target int) { d.done(target) }

// PowerOfTwo is the power-of-two-choices variant of least-connections:
// hash the job to two distinct candidate instances and route to the
// less loaded (lower index on ties). O(1) per pick with near-optimal
// balance — the classic two-choices result — and, unlike LeastConn,
// no full scan to contend on.
type PowerOfTwo struct {
	seed uint64
	connTracker
}

// NewPowerOfTwo returns a power-of-two-choices dispatcher with the
// given candidate-hash seed.
func NewPowerOfTwo(seed uint64) *PowerOfTwo { return &PowerOfTwo{seed: seed} }

// Name implements Dispatcher.
func (d *PowerOfTwo) Name() string { return "p2c" }

// Rebuild implements Dispatcher.
func (d *PowerOfTwo) Rebuild(snap *registry.Snapshot) error { return d.rebuild(snap) }

// Pick implements Dispatcher.
func (d *PowerOfTwo) Pick(j Job) int {
	st := d.st.Load()
	n := len(st.conns)
	u := jobBits(d.seed, j)
	a := indexOf(u, n)
	b := indexOf(u<<32, n)
	if a == b {
		if b++; b == n {
			b = 0
		}
	}
	ca, cb := st.conns[a].v.Load(), st.conns[b].v.Load()
	if cb < ca || (cb == ca && b < a) {
		a = b
	}
	st.conns[a].v.Add(1)
	return a
}

// Done implements Dispatcher.
func (d *PowerOfTwo) Done(_ Job, target int) { d.done(target) }

// StaticWeighted is nginx's smooth weighted round-robin over the
// sealed weights 1/b_i: deterministic, maximally interleaved, and in
// expectation identical to the alias distribution — but every pick
// mutates the full current-weight vector under a mutex, which is
// exactly the serialization the lock-free alias sampler exists to
// avoid. It is the contended baseline in the benchmarks.
type StaticWeighted struct {
	mu    sync.Mutex
	view  *view
	cur   []float64
	total float64
}

// NewStaticWeighted returns a smooth weighted round-robin dispatcher.
func NewStaticWeighted() *StaticWeighted { return &StaticWeighted{} }

// Name implements Dispatcher.
func (d *StaticWeighted) Name() string { return "weighted" }

// Rebuild implements Dispatcher.
func (d *StaticWeighted) Rebuild(snap *registry.Snapshot) error {
	v, err := viewFromSnapshot(snap)
	if err != nil {
		return err
	}
	total := 0.0
	for _, w := range v.w {
		total += w
	}
	d.mu.Lock()
	d.view = v
	d.cur = make([]float64, len(v.w))
	d.total = total
	d.mu.Unlock()
	return nil
}

// Pick implements Dispatcher: each instance's current weight grows by
// its static weight; the leader wins and pays the total back, which
// interleaves picks as evenly as the weights allow.
func (d *StaticWeighted) Pick(Job) int {
	d.mu.Lock()
	best := 0
	for i, w := range d.view.w {
		d.cur[i] += w
		if d.cur[i] > d.cur[best] {
			best = i
		}
	}
	d.cur[best] -= d.total
	d.mu.Unlock()
	return best
}

// Done implements Dispatcher.
func (d *StaticWeighted) Done(Job, int) {}

// N implements Dispatcher.
func (d *StaticWeighted) N() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.view == nil {
		return 0
	}
	return len(d.view.ids)
}

// IPHash pins each client key to one instance by hashing the key over
// the epoch's instance count — classic sticky sessions. Jobs carry no
// per-pick state, so the mapping is a pure function of (seed, epoch
// size, key): deterministic for any worker count. Like nginx's
// ip_hash it remaps almost everything when the instance count
// changes, and it is as unbalanced as its key distribution.
type IPHash struct {
	seed uint64
	atomicView
}

// NewIPHash returns a sticky ip-hash dispatcher.
func NewIPHash(seed uint64) *IPHash { return &IPHash{seed: seed} }

// Name implements Dispatcher.
func (d *IPHash) Name() string { return "ip-hash" }

// Rebuild implements Dispatcher.
func (d *IPHash) Rebuild(snap *registry.Snapshot) error { return d.rebuild(snap) }

// Pick implements Dispatcher.
func (d *IPHash) Pick(j Job) int {
	v := d.v.Load()
	return indexOf(mix64(d.seed^j.Key*0x9e3779b97f4a7c15), len(v.ids))
}

// Done implements Dispatcher.
func (d *IPHash) Done(Job, int) {}

// Greedy is the herding failure story from every client-side
// balancing postmortem: each job independently picks the "best"
// (fastest, maximum-weight) instance, because that is where one job
// in isolation finishes soonest. Every client reasoning the same way
// sends the entire arrival stream to instance 1, overloading it while
// the rest of the fleet idles. It exists to be measured against, not
// used; cmd/lbdispatch quantifies the collapse.
type Greedy struct {
	atomicView
	best atomic.Int64
}

// NewGreedy returns the naive everyone-picks-the-fastest dispatcher.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Dispatcher.
func (d *Greedy) Name() string { return "greedy" }

// Rebuild implements Dispatcher.
func (d *Greedy) Rebuild(snap *registry.Snapshot) error {
	v, err := viewFromSnapshot(snap)
	if err != nil {
		return err
	}
	best := 0
	for i, w := range v.w {
		if w > v.w[best] {
			best = i
		}
	}
	d.v.Store(v)
	d.best.Store(int64(best))
	return nil
}

// Pick implements Dispatcher.
func (d *Greedy) Pick(Job) int { return int(d.best.Load()) }

// Done implements Dispatcher.
func (d *Greedy) Done(Job, int) {}
