package dispatch

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/numeric"
)

// FuzzAliasTable feeds arbitrary weight vectors to the alias-table
// constructor: every input either fails with the typed validation
// contract or builds a table whose samples are in range, never land
// on a zero-weight slot, and whose slot mass reconstructs the
// normalized weights.
func FuzzAliasTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f})                            // +Inf
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xf8, 0x7f})                            // NaN
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})          // two zeros
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 0, 0, 0, 0, 0, 0, 8, 0x40}) // {1, 3}
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 512 {
			n = 512
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		tab, err := NewTable(w)
		if err != nil {
			var ve *alloc.ValueError
			if !errors.As(err, &ve) && !errors.Is(err, ErrNoInstances) {
				t.Fatalf("NewTable(%v): untyped error %v", w, err)
			}
			if tab != nil {
				t.Fatal("table returned alongside error")
			}
			return
		}
		// A built table must route: samples in range, zero-weight
		// slots unreachable.
		rng := numeric.NewRand(1)
		for i := 0; i < 2048; i++ {
			idx := tab.Sample(rng.Uint64())
			if idx < 0 || idx >= n {
				t.Fatalf("sample %d out of range [0, %d)", idx, n)
			}
			if w[idx] == 0 {
				t.Fatalf("sampled zero-weight slot %d of %v", idx, w)
			}
		}
	})
}
