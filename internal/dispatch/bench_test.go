package dispatch

// Hot-path benchmarks behind BENCH_dispatch.json (make bench-dispatch):
//
//	DispatchAlias/workers=W      — alias-table Pick from W goroutines;
//	                               the per-op target is ≤ 20ns and 0
//	                               allocs at workers=1 (two array reads
//	                               and one branch, no shared writes)
//	DispatchRR/workers=W         — atomic-cursor round-robin (one
//	                               contended fetch-add per job)
//	DispatchLeastConn/workers=W  — O(n) scan over padded in-flight
//	                               counters plus Pick/Done increments
//	DispatchP2C/workers=W        — two hashed probes, one comparison
//	DispatchHash/workers=W       — ip-hash (one mix, one multiply-shift)
//	DispatchRebuild/n=N          — alias-table build + atomic swap from
//	                               a sealed N-instance snapshot
//
// ns/op is per job ACROSS workers. The committed baseline was recorded
// on a single-core container (GOMAXPROCS=1): worker counts there show
// contention cost, not parallel speedup — on a multi-core host the
// stateless policies (alias, hash) scale near-linearly while the
// shared-cursor and shared-counter baselines flatten.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/registry"
)

const benchInstances = 64

func benchSnapshot(b *testing.B, n int) *registry.Snapshot {
	b.Helper()
	r, err := registry.New(registry.Config{Rate: 100})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.Add(0.5 + float64(i%31)); err != nil {
			b.Fatal(err)
		}
	}
	return r.Seal()
}

// benchPick drives one policy's Pick (and, when track is set, a
// Pick/Done pair — the steady-state shape of connection-counting
// policies) from a sweep of worker counts.
func benchPick(b *testing.B, policy string, track bool) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d, err := New(policy, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Rebuild(benchSnapshot(b, benchInstances)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				ops := b.N / workers
				if w == 0 {
					ops += b.N % workers
				}
				wg.Add(1)
				go func(w, ops int) {
					defer wg.Done()
					base := int64(w) << 32
					var sink int
					for i := 0; i < ops; i++ {
						j := Job{ID: base + int64(i), Key: uint64(i) & 4095}
						tgt := d.Pick(j)
						if track {
							d.Done(j, tgt)
						}
						sink += tgt
					}
					_ = sink
				}(w, ops)
			}
			wg.Wait()
		})
	}
}

func BenchmarkDispatchAlias(b *testing.B)     { benchPick(b, "alias", false) }
func BenchmarkDispatchRR(b *testing.B)        { benchPick(b, "rr", false) }
func BenchmarkDispatchLeastConn(b *testing.B) { benchPick(b, "least-conn", true) }
func BenchmarkDispatchP2C(b *testing.B)       { benchPick(b, "p2c", true) }
func BenchmarkDispatchHash(b *testing.B)      { benchPick(b, "ip-hash", false) }

func BenchmarkDispatchRebuild(b *testing.B) {
	for _, n := range []int{16, 1024, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			snap := benchSnapshot(b, n)
			d := NewAlias(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Rebuild(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
