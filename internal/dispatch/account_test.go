package dispatch

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/alloc"
)

// Regression tests for the validation gaps in the accounting layer: a
// NaN or infinite model parameter used to flow straight into the
// latency arithmetic and surface as NaN/garbage means, and Tally.Merge
// used to panic on a shorter tally and silently drop the excess of a
// longer one.

func TestAccountRejectsNonFiniteModelParams(t *testing.T) {
	tal := NewTally(3)
	tal.Observe(0, 1)
	tal.Observe(1, 1)
	tal.Observe(2, 1)

	cases := []struct {
		name  string
		run   func(params []float64) (*Account, error)
		field string
	}{
		{"linear", func(p []float64) (*Account, error) { return AccountLinear(tal, p, 10) }, "t[1]"},
		{"mm1", func(p []float64) (*Account, error) { return AccountMM1(tal, p, 10) }, "mu[1]"},
	}
	for _, tc := range cases {
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -2} {
			params := []float64{1, bad, 3}
			_, err := tc.run(params)
			var ve *alloc.ValueError
			if !errors.As(err, &ve) {
				t.Fatalf("%s(%v): got %v, want *alloc.ValueError", tc.name, bad, err)
			}
			if ve.Field != tc.field {
				t.Fatalf("%s(%v): field %q, want %q", tc.name, bad, ve.Field, tc.field)
			}
		}
		// Valid params still account cleanly.
		acc, err := tc.run([]float64{1, 2, 3})
		if err != nil {
			t.Fatalf("%s valid: %v", tc.name, err)
		}
		if math.IsNaN(acc.Mean) || math.IsInf(acc.Mean, 0) {
			t.Fatalf("%s valid: mean %v", tc.name, acc.Mean)
		}
	}
}

func TestTallyMergeLengthMismatch(t *testing.T) {
	base := NewTally(4)
	base.Observe(0, 1)
	base.Observe(3, 2)

	// Shorter from: used to panic with an index error.
	short := NewTally(2)
	short.Observe(1, 1)
	if err := base.Merge(short); err == nil {
		t.Fatalf("merging a shorter tally succeeded")
	}

	// Longer from: used to silently drop the excess instances.
	long := NewTally(6)
	long.Observe(5, 1)
	var ve *alloc.ValueError
	if err := base.Merge(long); !errors.As(err, &ve) {
		t.Fatalf("merging a longer tally: got %v, want *alloc.ValueError", err)
	} else if !strings.Contains(ve.Field, "len") {
		t.Fatalf("unexpected field %q", ve.Field)
	}

	// The failed merges must not have corrupted the receiver.
	if base.Total() != 2 || base.Jobs[0] != 1 || base.Jobs[3] != 1 {
		t.Fatalf("receiver mutated by rejected merge: %+v", base)
	}

	// A matching merge still works.
	ok := NewTally(4)
	ok.Observe(0, 1)
	if err := base.Merge(ok); err != nil {
		t.Fatal(err)
	}
	if base.Jobs[0] != 2 {
		t.Fatalf("valid merge lost counts: %+v", base)
	}
}
