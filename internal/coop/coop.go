// Package coop analyzes load balancing as a cooperative cost game,
// the companion perspective to the paper's noncooperative mechanism
// (its reference [7] is the same authors' cooperative-game approach).
//
// The characteristic function assigns every coalition S of computers
// the minimum total latency it achieves carrying the whole job stream:
// c(S) = R^2 / sum_{i in S} 1/t_i for the linear model. The cost game
// is concave (adding a computer helps more when the coalition is
// small), so the Shapley value — each computer's average marginal
// contribution over all join orders — is a principled way to split
// the system's latency cost, and the package computes it exactly for
// small systems and by parallel permutation sampling for large ones.
package coop

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// CostGame is the cooperative latency-cost game on a set of computers.
type CostGame struct {
	// Ts are the computers' latency parameters.
	Ts []float64
	// Rate is the job arrival rate every coalition must carry.
	Rate float64
}

// NewCostGame validates and builds a game.
func NewCostGame(ts []float64, rate float64) (*CostGame, error) {
	if len(ts) == 0 {
		return nil, errors.New("coop: empty player set")
	}
	if rate < 0 || math.IsNaN(rate) {
		return nil, fmt.Errorf("coop: invalid rate %g", rate)
	}
	for i, t := range ts {
		if t <= 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("coop: invalid latency parameter ts[%d] = %g", i, t)
		}
	}
	return &CostGame{Ts: append([]float64(nil), ts...), Rate: rate}, nil
}

// Cost returns c(S) for the coalition given as player indices; the
// empty coalition has infinite cost (it cannot carry the stream).
func (g *CostGame) Cost(coalition []int) float64 {
	var inv numeric.KahanSum
	for _, i := range coalition {
		inv.Add(1 / g.Ts[i])
	}
	s := inv.Value()
	if s <= 0 {
		if g.Rate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return g.Rate * g.Rate / s
}

// costOfInv returns the coalition cost from a running sum of inverse
// speeds, the incremental form used by the Shapley computations.
func (g *CostGame) costOfInv(sumInv float64) float64 {
	if sumInv <= 0 {
		if g.Rate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return g.Rate * g.Rate / sumInv
}

// ShapleyExact computes the Shapley cost shares by enumerating all
// join orders' marginal contributions via the subset formulation.
// Exponential in n; it refuses n > 20. Because the empty coalition has
// infinite cost, the first joiner's marginal contribution is defined
// as its standalone cost c({i}) (the standard convention for cost
// games with essential grand coalitions).
func (g *CostGame) ShapleyExact() ([]float64, error) {
	n := len(g.Ts)
	if n > 20 {
		return nil, fmt.Errorf("coop: exact Shapley infeasible for n=%d (>20)", n)
	}
	// Precompute factorials.
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	shares := make([]float64, n)
	// Enumerate subsets S not containing i; weight |S|!(n-|S|-1)!/n!.
	for i := 0; i < n; i++ {
		var acc numeric.KahanSum
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<i) != 0 {
				continue
			}
			size := 0
			var inv numeric.KahanSum
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					size++
					inv.Add(1 / g.Ts[j])
				}
			}
			var marginal float64
			if size == 0 {
				marginal = g.costOfInv(1 / g.Ts[i])
			} else {
				before := g.costOfInv(inv.Value())
				after := g.costOfInv(inv.Value() + 1/g.Ts[i])
				marginal = after - before
			}
			weight := fact[size] * fact[n-size-1] / fact[n]
			acc.Add(weight * marginal)
		}
		shares[i] = acc.Value()
	}
	return shares, nil
}

// ShapleyMonteCarlo estimates the Shapley cost shares by sampling
// random join orders in parallel; samples is the number of
// permutations (default 20000). The standard error of each share
// shrinks as 1/sqrt(samples).
func (g *CostGame) ShapleyMonteCarlo(samples int, seed uint64) ([]float64, error) {
	n := len(g.Ts)
	if samples <= 0 {
		samples = 20000
	}
	workers := parallel.Workers(0)
	perWorker := (samples + workers - 1) / workers
	root := numeric.NewRand(seed)
	rngs := make([]*numeric.Rand, workers)
	for w := range rngs {
		rngs[w] = root.Split()
	}
	sums := parallel.Map(workers, workers, func(w int) []float64 {
		rng := rngs[w]
		local := make([]float64, n)
		for s := 0; s < perWorker; s++ {
			perm := rng.Perm(n)
			sumInv := 0.0
			for pos, i := range perm {
				var marginal float64
				if pos == 0 {
					marginal = g.costOfInv(1 / g.Ts[i])
				} else {
					before := g.costOfInv(sumInv)
					after := g.costOfInv(sumInv + 1/g.Ts[i])
					marginal = after - before
				}
				local[i] += marginal
				sumInv += 1 / g.Ts[i]
			}
		}
		return local
	})
	total := float64(workers * perWorker)
	shares := make([]float64, n)
	for _, local := range sums {
		for i, v := range local {
			shares[i] += v
		}
	}
	for i := range shares {
		shares[i] /= total
	}
	return shares, nil
}

// Efficiency reports the grand-coalition cost, which the Shapley
// shares must sum to.
func (g *CostGame) Efficiency() float64 {
	all := make([]int, len(g.Ts))
	for i := range all {
		all[i] = i
	}
	return g.Cost(all)
}

// CompareWithMechanism relates the cooperative and noncooperative
// views: the Shapley share averages computer i's marginal cost
// contribution over all join positions, while the mechanism's bonus
// L*(t_{-i}) - L* is exactly its (negated) *last-position* marginal
// contribution. The returned slice holds lastMarginal/share ratios for
// inspection; the test suite records how the two attributions relate
// on the paper system.
func (g *CostGame) CompareWithMechanism(shapley []float64) ([]float64, error) {
	n := len(g.Ts)
	if len(shapley) != n {
		return nil, fmt.Errorf("coop: %d shares for %d players", len(shapley), n)
	}
	grand := g.Efficiency()
	out := make([]float64, n)
	for i := range g.Ts {
		rest := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				rest = append(rest, j)
			}
		}
		lastMarginal := grand - g.Cost(rest) // negative: joining last reduces cost
		if shapley[i] == 0 {
			return nil, errors.New("coop: zero Shapley share")
		}
		out[i] = lastMarginal / shapley[i]
	}
	return out, nil
}

// RelErrMax returns the largest relative disagreement between two
// share vectors (test helper for exact-vs-sampled comparisons).
func RelErrMax(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if e := stats.RelErr(a[i], b[i]); e > worst {
			worst = e
		}
	}
	return worst
}
