package coop

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func paperGame(t *testing.T) *CostGame {
	t.Helper()
	g, err := NewCostGame(
		[]float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCostFunction(t *testing.T) {
	g, err := NewCostGame([]float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Cost([]int{0}); math.Abs(got-100) > 1e-12 {
		t.Errorf("c({0}) = %v, want 100", got)
	}
	if got := g.Cost([]int{0, 1}); math.Abs(got-100/1.5) > 1e-9 {
		t.Errorf("c(N) = %v, want %v", got, 100/1.5)
	}
	if !math.IsInf(g.Cost(nil), 1) {
		t.Error("empty coalition should cost +Inf")
	}
}

func TestCostGameSubadditive(t *testing.T) {
	// Adding computers never hurts: c(S u {i}) <= c(S).
	g := paperGame(t)
	coalition := []int{3}
	prev := g.Cost(coalition)
	for _, next := range []int{7, 11, 0, 15} {
		coalition = append(coalition, next)
		cur := g.Cost(coalition)
		if cur > prev+1e-12 {
			t.Fatalf("cost rose when %d joined: %v -> %v", next, prev, cur)
		}
		prev = cur
	}
}

func TestShapleyExactAxioms(t *testing.T) {
	g, err := NewCostGame([]float64{1, 1, 2, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := g.ShapleyExact()
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency: shares sum to the grand-coalition cost.
	if got, want := numeric.Sum(shares), g.Efficiency(); !numeric.AlmostEqual(got, want, 1e-9, 1e-9) {
		t.Errorf("shares sum to %v, want %v", got, want)
	}
	// Symmetry: the two identical computers get identical shares.
	if !numeric.AlmostEqual(shares[0], shares[1], 1e-9, 1e-9) {
		t.Errorf("symmetric players got %v and %v", shares[0], shares[1])
	}
	// Monotone attribution: the slow computer contributes more cost
	// per unit of service than the fast one in this concave game.
	if shares[3] <= shares[0] {
		t.Errorf("slow computer share %v not above fast %v", shares[3], shares[0])
	}
}

func TestShapleyExactTwoPlayerClosedForm(t *testing.T) {
	// For two players the Shapley share is
	// (c({i}) + c(N) - c({j}))/2.
	g, err := NewCostGame([]float64{1, 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := g.ShapleyExact()
	if err != nil {
		t.Fatal(err)
	}
	c0 := g.Cost([]int{0})
	c1 := g.Cost([]int{1})
	cN := g.Efficiency()
	want0 := (c0 + cN - c1) / 2
	want1 := (c1 + cN - c0) / 2
	if !numeric.AlmostEqual(shares[0], want0, 1e-9, 1e-9) {
		t.Errorf("share0 = %v, want %v", shares[0], want0)
	}
	if !numeric.AlmostEqual(shares[1], want1, 1e-9, 1e-9) {
		t.Errorf("share1 = %v, want %v", shares[1], want1)
	}
}

func TestShapleyMonteCarloMatchesExact(t *testing.T) {
	g, err := NewCostGame([]float64{1, 2, 5, 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ShapleyExact()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := g.ShapleyMonteCarlo(200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency holds exactly for the sampled estimator too (every
	// permutation telescopes to c(N)).
	if got, want := numeric.Sum(mc), g.Efficiency(); !numeric.AlmostEqual(got, want, 1e-9, 1e-9) {
		t.Errorf("MC shares sum to %v, want %v", got, want)
	}
	if e := RelErrMax(exact, mc); e > 0.02 {
		t.Errorf("MC vs exact max rel err = %v", e)
	}
}

func TestShapleyPaperSystemMonteCarlo(t *testing.T) {
	g := paperGame(t)
	shares, err := g.ShapleyMonteCarlo(50000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := numeric.Sum(shares), 400.0/5.1; !numeric.AlmostEqual(got, want, 1e-9, 1e-6) {
		t.Errorf("paper shares sum to %v, want %v", got, want)
	}
	// Identical computers get near-identical shares.
	if math.Abs(shares[0]-shares[1]) > 0.05*math.Abs(shares[0]) {
		t.Errorf("t=1 twins got %v and %v", shares[0], shares[1])
	}
}

func TestShapleyExactRefusesLargeN(t *testing.T) {
	ts := make([]float64, 21)
	for i := range ts {
		ts[i] = 1
	}
	g, err := NewCostGame(ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShapleyExact(); err == nil {
		t.Error("expected refusal for n=21")
	}
}

func TestCompareWithMechanism(t *testing.T) {
	g, err := NewCostGame([]float64{1, 2, 5, 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := g.ShapleyExact()
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := g.CompareWithMechanism(shares)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 4 {
		t.Fatalf("ratios = %v", ratios)
	}
	// The last-position marginal (the mechanism's negated bonus) is
	// negative for every computer — joining a working system always
	// helps it.
	grand := g.Efficiency()
	for i := range ratios {
		rest := []int{}
		for j := 0; j < 4; j++ {
			if j != i {
				rest = append(rest, j)
			}
		}
		if grand-g.Cost(rest) >= 0 {
			t.Errorf("computer %d last-position marginal not negative", i)
		}
	}
	// Mismatched lengths error.
	if _, err := g.CompareWithMechanism(shares[:2]); err == nil {
		t.Error("expected length error")
	}
}

func TestNewCostGameValidation(t *testing.T) {
	if _, err := NewCostGame(nil, 5); err == nil {
		t.Error("expected error for empty set")
	}
	if _, err := NewCostGame([]float64{1, -1}, 5); err == nil {
		t.Error("expected error for bad t")
	}
	if _, err := NewCostGame([]float64{1}, -5); err == nil {
		t.Error("expected error for bad rate")
	}
}
