package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	// Re-registering a name returns the same metric.
	if r.Counter("c_total", "again") != c {
		t.Error("re-registration did not return the existing counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5 (NaN dropped)", got)
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	// Cumulative: <=1: 2, <=2: 3, <=4: 4, +Inf: 5.
	wantCum := []int64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cum = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if s.Sum != 0.5+1+1.5+3+100 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestCounterVecSortedExport(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("f_total", "faults", "kind")
	v.With("drop").Add(3)
	v.With("stall").Inc()
	v.With("delay").Add(2)
	snaps := r.Snapshot()
	var kinds []string
	for _, s := range snaps {
		kinds = append(kinds, s.Labels["kind"])
	}
	want := []string{"delay", "drop", "stall"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("label order = %v, want %v", kinds, want)
		}
	}
	if v.Value("drop") != 3 {
		t.Errorf("drop = %d, want 3", v.Value("drop"))
	}
}

func TestNilSafety(t *testing.T) {
	// Every operation on nil metrics, bundles, traces and observers
	// must be a silent no-op.
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "", nil).Observe(1)
	r.CounterVec("x", "", "l").With("v").Inc()
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}

	var o *Observer
	o.RoundMetrics().AddMessages(1, 2, 3)
	o.RoundMetrics().TimeoutFired()
	o.RoundMetrics().RoundDone("ok", 1)
	o.SuperviseMetrics().AttemptDone("deadline")
	o.SuperviseMetrics().RetryScheduled(0.1)
	o.SuperviseMetrics().Excluded("audit", 2)
	o.EngineMetrics().RunDone(true, 10)
	o.FaultMetrics().Injected("drop")
	o.RegistryMetrics().Mutated("update", true)
	o.RegistryMetrics().Rebuilt()
	o.RegistryMetrics().Sealed(5, 0.01)
	o.RegistryMetrics().ReadSampled(0.001)
	o.Emit(Event{Kind: "x"})

	var tr *Trace
	tr.Emit(Event{})
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil trace misbehaved")
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("a_total", "A").Add(2)
		r.CounterVec("b_total", "B", "k").With("z").Inc()
		r.CounterVec("b_total", "B", "k").With("a").Inc()
		r.Histogram("c_seconds", "C", []float64{1}).Observe(0.5)
		var sb strings.Builder
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("JSON export not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{`"a_total"`, `"kind": "counter"`, `"le": "+Inf"`, `"metrics"`} {
		if !strings.Contains(a, want) {
			t.Errorf("JSON export missing %s:\n%s", want, a)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lb_x_total", "X things").Add(3)
	r.Gauge("lb_g", "G").Set(1.5)
	v := r.CounterVec("lb_v_total", "V", "kind")
	v.With("drop").Inc()
	v.With("delay").Add(2)
	r.Histogram("lb_h_seconds", "H", []float64{1, 2}).Observe(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP lb_x_total X things",
		"# TYPE lb_x_total counter",
		"lb_x_total 3",
		"lb_g 1.5",
		`lb_v_total{kind="delay"} 2`,
		`lb_v_total{kind="drop"} 1`,
		`lb_h_seconds_bucket{le="1"} 0`,
		`lb_h_seconds_bucket{le="2"} 1`,
		`lb_h_seconds_bucket{le="+Inf"} 1`,
		"lb_h_seconds_sum 1.5",
		"lb_h_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: "k", Node: i})
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("len = %d, want 3", len(ev))
	}
	// The last three emissions survive, in order, with global seqs.
	for i, e := range ev {
		if e.Node != i+2 || e.Seq != i+2 {
			t.Errorf("event %d = %+v, want node/seq %d", i, e, i+2)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}

	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(2 earlier events dropped by the ring)") {
		t.Errorf("text trace missing drop note:\n%s", sb.String())
	}
	sb.Reset()
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"dropped": 2`) {
		t.Errorf("json trace missing dropped count:\n%s", sb.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Metrics and the trace must be safe under concurrent writers
	// (the CI workflow runs this under -race).
	o := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Round.AddMessages(1, 0, 0)
				o.Supervise.RetryScheduled(0.01)
				o.Engine.RunDone(w%2 == 0, 3)
				o.Faults.Injected("drop")
				o.Emit(Event{Layer: "test", Kind: "tick", Node: w})
			}
		}(w)
	}
	wg.Wait()
	if got := o.Round.MessagesSent.Value(); got != 1600 {
		t.Errorf("messages sent = %d, want 1600", got)
	}
	if got := o.Engine.Payments.Value(); got != 4800 {
		t.Errorf("payments = %d, want 4800", got)
	}
	if got := o.Faults.Injections.Value("drop"); got != 1600 {
		t.Errorf("drops = %d, want 1600", got)
	}
}

func TestObserverSchemaComplete(t *testing.T) {
	// A fresh observer's snapshot already contains every registered
	// metric at zero, so exported snapshots always have the full
	// schema even before anything happens.
	o := New(0)
	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"lb_round_messages_sent_total",
		"lb_round_timeouts_total",
		"lb_round_audit_flags_total",
		"lb_supervise_retries_total",
		"lb_mech_engine_runs_total",
		"lb_fault_injections_total",
		"lb_registry_epochs_sealed_total",
		"lb_registry_coalesced_rebids_total",
		"lb_registry_seal_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fresh observer export missing %s", want)
		}
	}
}
