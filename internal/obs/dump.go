package obs

import (
	"fmt"
	"io"
)

// Dump writes the post-run snapshot the CLIs print: the metrics
// registry as indented JSON followed by the Prometheus text exposition
// when metrics is true, and the event trace as text when trace is
// true. A nil observer writes nothing. Both exports are deterministic
// for a fixed run (registration-ordered metrics, no timestamps), so
// dumps diff cleanly between runs.
func (o *Observer) Dump(w io.Writer, metrics, trace bool) error {
	if o == nil {
		return nil
	}
	if metrics {
		if err := o.Registry.WriteJSON(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := o.Registry.WritePrometheus(w); err != nil {
			return err
		}
	}
	if trace {
		if metrics {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := o.Trace.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}
