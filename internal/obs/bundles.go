package obs

import "math"

// This file defines the per-layer instrumentation bundles: one struct
// of metrics per instrumented subsystem, registered under stable
// Prometheus-style names, with nil-safe recording methods so a layer
// holding a nil bundle pays only a branch per record call.

// RoundMetrics instruments round execution — the distmech tree round
// and the centralized protocol round share this vocabulary (messages,
// timeouts, subtree cuts, audit verdicts, outcomes).
type RoundMetrics struct {
	// MessagesSent/Lost/Duplicated mirror the transport counters.
	MessagesSent, MessagesLost, MessagesDuplicated *Counter
	// Timeouts counts parent timeouts that fired and cut children off.
	Timeouts *Counter
	// SubtreesCut counts subtrees severed by timeouts or crashes.
	SubtreesCut *Counter
	// AuditFlags counts nodes flagged by the payment audit or the
	// verification step.
	AuditFlags *Counter
	// InvalidVerdicts counts verification verdicts rejected as invalid
	// (non-finite estimate or declaration).
	InvalidVerdicts *Counter
	// ClaimsOutstanding counts payment claims that never arrived.
	ClaimsOutstanding *Counter
	// Rounds counts finished rounds by outcome (ok, quorum-lost, ...).
	Rounds *CounterVec
	// Completion observes round completion times in simulated seconds.
	Completion *Histogram
}

// NewRoundMetrics registers the round bundle on r (nil r — or nil
// receiver use later — disables it).
func NewRoundMetrics(r *Registry) *RoundMetrics {
	if r == nil {
		return nil
	}
	return &RoundMetrics{
		MessagesSent:       r.Counter("lb_round_messages_sent_total", "logical messages sent during rounds"),
		MessagesLost:       r.Counter("lb_round_messages_lost_total", "messages dropped by the fault layer"),
		MessagesDuplicated: r.Counter("lb_round_messages_duplicated_total", "messages delivered twice by the fault layer"),
		Timeouts:           r.Counter("lb_round_timeouts_total", "parent timeouts fired waiting for child aggregates"),
		SubtreesCut:        r.Counter("lb_round_subtrees_cut_total", "subtrees severed by timeouts or crashes"),
		AuditFlags:         r.Counter("lb_round_audit_flags_total", "nodes flagged by the payment audit or verification"),
		InvalidVerdicts:    r.Counter("lb_round_invalid_verdicts_total", "verification verdicts rejected as invalid"),
		ClaimsOutstanding:  r.Counter("lb_round_claims_outstanding_total", "payment claims that never arrived"),
		Rounds:             r.CounterVec("lb_rounds_total", "finished rounds by outcome", "outcome"),
		Completion:         r.Histogram("lb_round_completion_seconds", "round completion time in simulated seconds", nil),
	}
}

// AddMessages records one round's transport totals.
func (m *RoundMetrics) AddMessages(sent, lost, duplicated int) {
	if m == nil {
		return
	}
	m.MessagesSent.Add(int64(sent))
	m.MessagesLost.Add(int64(lost))
	m.MessagesDuplicated.Add(int64(duplicated))
}

// TimeoutFired records one parent timeout expiry.
func (m *RoundMetrics) TimeoutFired() {
	if m == nil {
		return
	}
	m.Timeouts.Inc()
}

// SubtreeCut records n subtrees severed from the round.
func (m *RoundMetrics) SubtreeCut(n int) {
	if m == nil {
		return
	}
	m.SubtreesCut.Add(int64(n))
}

// AuditFlagged records n nodes flagged by the audit.
func (m *RoundMetrics) AuditFlagged(n int) {
	if m == nil {
		return
	}
	m.AuditFlags.Add(int64(n))
}

// VerdictInvalid records one invalid verification verdict.
func (m *RoundMetrics) VerdictInvalid() {
	if m == nil {
		return
	}
	m.InvalidVerdicts.Inc()
}

// ClaimsPending records n payment claims the audit never received.
func (m *RoundMetrics) ClaimsPending(n int) {
	if m == nil {
		return
	}
	m.ClaimsOutstanding.Add(int64(n))
}

// RoundDone records a finished round: its outcome label and, when
// completion >= 0, its simulated completion time.
func (m *RoundMetrics) RoundDone(outcome string, completion float64) {
	if m == nil {
		return
	}
	m.Rounds.With(outcome).Inc()
	if completion >= 0 {
		m.Completion.Observe(completion)
	}
}

// SuperviseMetrics instruments the supervisor's retry-classify-
// exclude loop.
type SuperviseMetrics struct {
	// Attempts counts round attempts; Retries those that scheduled a
	// further attempt.
	Attempts, Retries *Counter
	// Failures counts non-accepted attempts by failure class.
	Failures *CounterVec
	// Exclusions counts excluded nodes by reason (audit, unreachable,
	// static, suspended, dropout).
	Exclusions *CounterVec
	// Backoff observes individual retry delays; BackoffTotal sums them.
	Backoff      *Histogram
	BackoffTotal *Gauge
	// Accepted and Degraded count supervised rounds that completed,
	// and the subset that served fewer agents than the population.
	Accepted, Degraded *Counter
}

// NewSuperviseMetrics registers the supervisor bundle on r.
func NewSuperviseMetrics(r *Registry) *SuperviseMetrics {
	if r == nil {
		return nil
	}
	return &SuperviseMetrics{
		Attempts:     r.Counter("lb_supervise_attempts_total", "supervised round attempts"),
		Retries:      r.Counter("lb_supervise_retries_total", "attempts that scheduled a retry"),
		Failures:     r.CounterVec("lb_supervise_failures_total", "failed attempts by class", "class"),
		Exclusions:   r.CounterVec("lb_supervise_exclusions_total", "excluded nodes by reason", "reason"),
		Backoff:      r.Histogram("lb_supervise_backoff_seconds", "retry backoff delays", nil),
		BackoffTotal: r.Gauge("lb_supervise_backoff_seconds_total", "summed retry backoff"),
		Accepted:     r.Counter("lb_supervise_accepted_total", "supervised rounds accepted"),
		Degraded:     r.Counter("lb_supervise_degraded_total", "accepted rounds serving fewer agents than the population"),
	}
}

// AttemptDone records one attempt and its failure class ("ok" for an
// accepted attempt; anything else also counts into Failures).
func (m *SuperviseMetrics) AttemptDone(class string) {
	if m == nil {
		return
	}
	m.Attempts.Inc()
	if class != "ok" {
		m.Failures.With(class).Inc()
	}
}

// RetryScheduled records a scheduled retry and its backoff delay.
func (m *SuperviseMetrics) RetryScheduled(delay float64) {
	if m == nil {
		return
	}
	m.Retries.Inc()
	if delay > 0 {
		m.Backoff.Observe(delay)
		m.BackoffTotal.Add(delay)
	}
}

// Excluded records n nodes excluded for the given reason.
func (m *SuperviseMetrics) Excluded(reason string, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.Exclusions.With(reason).Add(int64(n))
}

// AcceptedRound records an accepted supervised round.
func (m *SuperviseMetrics) AcceptedRound(degraded bool) {
	if m == nil {
		return
	}
	m.Accepted.Inc()
	if degraded {
		m.Degraded.Inc()
	}
}

// EngineMetrics instruments the mech payment engine's hot path. Its
// record method is called per evaluation with zero allocations, so
// the engine's AllocsPerRun guarantee holds with metrics on or off.
type EngineMetrics struct {
	// Runs counts engine evaluations; FastPath those served by the
	// scratch-buffer runner, Fallback those by the mechanism's plain
	// Run.
	Runs, FastPath, Fallback *Counter
	// Payments counts per-agent payments computed.
	Payments *Counter
}

// NewEngineMetrics registers the engine bundle on r.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	if r == nil {
		return nil
	}
	return &EngineMetrics{
		Runs:     r.Counter("lb_mech_engine_runs_total", "payment engine evaluations"),
		FastPath: r.Counter("lb_mech_engine_fastpath_total", "evaluations on the zero-allocation scratch path"),
		Fallback: r.Counter("lb_mech_engine_fallback_total", "evaluations falling back to the mechanism's plain Run"),
		Payments: r.Counter("lb_mech_payments_total", "per-agent payments computed"),
	}
}

// RunDone records one successful engine evaluation over n agents.
func (m *EngineMetrics) RunDone(fast bool, agents int) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	if fast {
		m.FastPath.Inc()
	} else {
		m.Fallback.Inc()
	}
	m.Payments.Add(int64(agents))
}

// FaultMetrics instruments the fault-injection layer: every injected
// fault, by kind, wherever a transport consults an injector.
type FaultMetrics struct {
	// Injections counts injected faults by kind (drop, duplicate,
	// delay, stall).
	Injections *CounterVec
}

// NewFaultMetrics registers the fault bundle on r.
func NewFaultMetrics(r *Registry) *FaultMetrics {
	if r == nil {
		return nil
	}
	return &FaultMetrics{
		Injections: r.CounterVec("lb_fault_injections_total", "injected faults by kind", "kind"),
	}
}

// Injected records one injected fault of the given kind.
func (m *FaultMetrics) Injected(kind string) {
	if m == nil {
		return
	}
	m.Injections.With(kind).Inc()
}

// RegistryMetrics instruments the sharded bid registry: mutation
// traffic, epoch sealing and the latency of both sides of the
// snapshot protocol. Every record method is a plain atomic add, so the
// registry's lock-free read path and O(1) mutation path stay
// allocation-free with metrics on or off.
type RegistryMetrics struct {
	// Adds, Removes, Updates count applied mutations by kind.
	Adds, Removes, Updates *Counter
	// Coalesced counts rebids that overwrote a bid no epoch had sealed
	// yet — traffic the epoch protocol absorbed without any reader
	// ever observing the intermediate value.
	Coalesced *Counter
	// Rebuilds counts per-shard partial-sum rebuilds (drift control).
	Rebuilds *Counter
	// Batches counts ApplyBatch calls (the grouped-mutation entry
	// point); the ops inside a batch land in Adds/Updates/Removes.
	Batches *Counter
	// Epochs counts sealed epochs.
	Epochs *Counter
	// Live gauges the live agent count as of the last seal.
	Live *Gauge
	// SealSeconds observes wall-clock seal latencies; ReadSeconds
	// observes sampled snapshot-read latencies (load drivers sample a
	// subset of reads — timing every lock-free read would cost more
	// than the read).
	SealSeconds, ReadSeconds *Histogram
}

// NewRegistryMetrics registers the bid-registry bundle on r.
func NewRegistryMetrics(r *Registry) *RegistryMetrics {
	if r == nil {
		return nil
	}
	return &RegistryMetrics{
		Adds:        r.Counter("lb_registry_adds_total", "agents added to the bid registry"),
		Removes:     r.Counter("lb_registry_removes_total", "agents removed from the bid registry"),
		Updates:     r.Counter("lb_registry_updates_total", "bid updates applied"),
		Coalesced:   r.Counter("lb_registry_coalesced_rebids_total", "rebids overwriting a bid no epoch had sealed"),
		Rebuilds:    r.Counter("lb_registry_partial_rebuilds_total", "per-shard compensated partial-sum rebuilds"),
		Batches:     r.Counter("lb_registry_batches_total", "grouped mutation batches applied"),
		Epochs:      r.Counter("lb_registry_epochs_sealed_total", "epochs sealed"),
		Live:        r.Gauge("lb_registry_live_agents", "live agents as of the last sealed epoch"),
		SealSeconds: r.Histogram("lb_registry_seal_seconds", "epoch seal wall-clock latency", nil),
		ReadSeconds: r.Histogram("lb_registry_read_seconds", "sampled snapshot-read wall-clock latency", nil),
	}
}

// Mutated records one applied mutation; coalesced marks an update
// that overwrote a not-yet-sealed bid.
func (m *RegistryMetrics) Mutated(kind string, coalesced bool) {
	if m == nil {
		return
	}
	switch kind {
	case "add":
		m.Adds.Inc()
	case "remove":
		m.Removes.Inc()
	case "update":
		m.Updates.Inc()
	}
	if coalesced {
		m.Coalesced.Inc()
	}
}

// AppliedBatch records one grouped mutation batch: per-kind applied
// counts and the coalesced-rebid count, in one call per batch instead
// of one per op.
func (m *RegistryMetrics) AppliedBatch(adds, updates, removes, coalesced int64) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.Adds.Add(adds)
	m.Updates.Add(updates)
	m.Removes.Add(removes)
	m.Coalesced.Add(coalesced)
}

// Rebuilt records one per-shard partial-sum rebuild.
func (m *RegistryMetrics) Rebuilt() {
	if m == nil {
		return
	}
	m.Rebuilds.Inc()
}

// Sealed records one sealed epoch over n live agents and its
// wall-clock latency (negative seconds are not observed).
func (m *RegistryMetrics) Sealed(n int, seconds float64) {
	if m == nil {
		return
	}
	m.Epochs.Inc()
	m.Live.Set(float64(n))
	if seconds >= 0 {
		m.SealSeconds.Observe(seconds)
	}
}

// ReadSampled records one sampled snapshot-read latency.
func (m *RegistryMetrics) ReadSampled(seconds float64) {
	if m == nil {
		return
	}
	m.ReadSeconds.Observe(seconds)
}

// HealthMetrics instruments the health controller's serving control
// loop: per-state population gauges, state-transition counters by
// reason, verify-verdict counters and z-score histograms, and the
// corrected-epoch seal stream.
type HealthMetrics struct {
	// Healthy..Probing gauge the tracked population by state as of the
	// last control tick.
	Healthy, Suspect, Degraded, Ejected, Probing *Gauge
	// Capacity gauges the aggregate effective capacity fraction: the
	// weight-discounted live share of the tracked population's full
	// capacity (1 when everyone is healthy at full weight).
	Capacity *Gauge
	// Transitions counts state transitions by reason (verify-fail,
	// max-fails, two-strike, audit-two-strike, recovered, fail-timeout,
	// probe-fail, probe-timeout, reinstated).
	Transitions *CounterVec
	// Verdicts counts per-observation verify outcomes (pass, dead-band,
	// fail, invalid, silent).
	Verdicts *CounterVec
	// ZScores observes every finite verification z-score, so the
	// distance between the trip and recover thresholds is visible in
	// the exported distribution.
	ZScores *Histogram
	// CorrectedEpochs counts health-corrected epochs sealed;
	// Ejections and Reinstatements count the loop's terminal actions.
	CorrectedEpochs, Ejections, Reinstatements *Counter
}

// zScoreBuckets spans the hysteresis band: recover thresholds sit
// around 1, trip thresholds around 3-4, runaway deviations beyond.
var zScoreBuckets = []float64{-4, -3, -2, -1, 0, 0.5, 1, 2, 3, 4, 6, 8, 12, 20}

// NewHealthMetrics registers the health-controller bundle on r.
func NewHealthMetrics(r *Registry) *HealthMetrics {
	if r == nil {
		return nil
	}
	return &HealthMetrics{
		Healthy:         r.Gauge("lb_health_state_healthy", "tracked computers in state healthy"),
		Suspect:         r.Gauge("lb_health_state_suspect", "tracked computers in state suspect"),
		Degraded:        r.Gauge("lb_health_state_degraded", "tracked computers in state degraded"),
		Ejected:         r.Gauge("lb_health_state_ejected", "tracked computers in state ejected"),
		Probing:         r.Gauge("lb_health_state_probing", "tracked computers in state probing"),
		Capacity:        r.Gauge("lb_health_capacity_fraction", "weight-discounted live capacity fraction"),
		Transitions:     r.CounterVec("lb_health_transitions_total", "state transitions by reason", "reason"),
		Verdicts:        r.CounterVec("lb_health_verdicts_total", "verification verdicts by outcome", "verdict"),
		ZScores:         r.Histogram("lb_health_zscore", "verification z-scores", zScoreBuckets),
		CorrectedEpochs: r.Counter("lb_health_corrected_epochs_total", "health-corrected registry epochs sealed"),
		Ejections:       r.Counter("lb_health_ejections_total", "computers ejected from serving"),
		Reinstatements:  r.Counter("lb_health_reinstatements_total", "computers reinstated via slow-start"),
	}
}

// States records the per-state population and the aggregate effective
// capacity fraction after one control tick.
func (m *HealthMetrics) States(healthy, suspect, degraded, ejected, probing int, capacity float64) {
	if m == nil {
		return
	}
	m.Healthy.Set(float64(healthy))
	m.Suspect.Set(float64(suspect))
	m.Degraded.Set(float64(degraded))
	m.Ejected.Set(float64(ejected))
	m.Probing.Set(float64(probing))
	m.Capacity.Set(capacity)
}

// Transitioned records one state transition and its terminal action.
func (m *HealthMetrics) Transitioned(reason string, ejected, reinstated bool) {
	if m == nil {
		return
	}
	m.Transitions.With(reason).Inc()
	if ejected {
		m.Ejections.Inc()
	}
	if reinstated {
		m.Reinstatements.Inc()
	}
}

// VerdictObserved records one per-observation verify outcome and, for
// finite z, the z-score itself.
func (m *HealthMetrics) VerdictObserved(verdict string, z float64) {
	if m == nil {
		return
	}
	m.Verdicts.With(verdict).Inc()
	if !math.IsNaN(z) && !math.IsInf(z, 0) {
		m.ZScores.Observe(z)
	}
}

// CorrectedSealed records one health-corrected epoch seal.
func (m *HealthMetrics) CorrectedSealed() {
	if m == nil {
		return
	}
	m.CorrectedEpochs.Inc()
}

// DispatchMetrics instruments the per-job dispatcher layer: routed
// jobs and epoch rebuilds by policy, rebuild failures, and the
// herding indicator of the last accounted run. Load generators record
// jobs in batches (one atomic add per worker block), keeping the
// sub-20ns Pick hot path entirely metric-free.
type DispatchMetrics struct {
	// Jobs counts jobs routed, by policy.
	Jobs *CounterVec
	// Rebuilds counts successful epoch rebuilds, by policy.
	Rebuilds *CounterVec
	// RebuildErrors counts rebuilds rejected (empty epoch, invalid
	// weights) — the dispatcher kept serving its previous epoch.
	RebuildErrors *Counter
	// Epoch gauges the sealed epoch the alias dispatcher last rebuilt
	// onto.
	Epoch *Gauge
	// MaxShare gauges the largest per-instance job share of the last
	// accounted run (1/n is level, 1.0 is herding collapse).
	MaxShare *Gauge
	// Unstable gauges how many instances the last accounted run drove
	// past capacity.
	Unstable *Gauge
}

// NewDispatchMetrics registers the dispatcher bundle on r.
func NewDispatchMetrics(r *Registry) *DispatchMetrics {
	if r == nil {
		return nil
	}
	return &DispatchMetrics{
		Jobs:          r.CounterVec("lb_dispatch_jobs_total", "jobs routed by policy", "policy"),
		Rebuilds:      r.CounterVec("lb_dispatch_rebuilds_total", "dispatcher epoch rebuilds by policy", "policy"),
		RebuildErrors: r.Counter("lb_dispatch_rebuild_errors_total", "dispatcher rebuilds rejected"),
		Epoch:         r.Gauge("lb_dispatch_epoch", "sealed epoch the dispatcher last rebuilt onto"),
		MaxShare:      r.Gauge("lb_dispatch_max_share", "largest per-instance job share of the last accounted run"),
		Unstable:      r.Gauge("lb_dispatch_unstable_instances", "instances past capacity in the last accounted run"),
	}
}

// Dispatched records n jobs routed by the named policy.
func (m *DispatchMetrics) Dispatched(policy string, n int64) {
	if m == nil {
		return
	}
	m.Jobs.With(policy).Add(n)
}

// Rebuilt records one epoch rebuild outcome for the named policy.
func (m *DispatchMetrics) Rebuilt(policy string, epoch uint64, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.RebuildErrors.Inc()
		return
	}
	m.Rebuilds.With(policy).Inc()
	m.Epoch.Set(float64(epoch))
}

// Accounted records the herding indicators of one accounted run.
func (m *DispatchMetrics) Accounted(maxShare float64, unstable int) {
	if m == nil {
		return
	}
	m.MaxShare.Set(maxShare)
	m.Unstable.Set(float64(unstable))
}

// WALMetrics instruments the write-ahead log: append and group-commit
// traffic, fsync policy behavior, snapshot compaction and crash
// recovery. Append-path records are plain atomic adds and appends are
// timed on a sample (every 1024th), so the WAL's zero-allocation
// append guarantee holds with metrics on or off.
type WALMetrics struct {
	// Appends counts journaled records; AppendedBytes the encoded
	// bytes they contributed.
	Appends, AppendedBytes *Counter
	// Batches counts group-commit flushes (buffer writes to the
	// segment file); Fsyncs the flushes that were made durable;
	// FlushedBytes the bytes handed to the kernel.
	Batches, Fsyncs, FlushedBytes *Counter
	// Segments counts log segment files created; Compacted counts
	// segment files deleted by snapshot compaction.
	Segments, Compacted *Counter
	// Snapshots counts snapshot sidecar files made durable.
	Snapshots *Counter
	// Recoveries counts crash recoveries run; ReplayedRecords and
	// ReplayedBytes size the log tails they replayed.
	Recoveries, ReplayedRecords, ReplayedBytes *Counter
	// AppendSeconds observes sampled append latencies (encode plus any
	// flush the append triggered); CommitSeconds observes flush+fsync
	// latencies.
	AppendSeconds, CommitSeconds *Histogram
}

// walLatencyBuckets resolve the sub-microsecond encode path and the
// millisecond fsync path in one layout.
var walLatencyBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1,
}

// NewWALMetrics registers the write-ahead-log bundle on r.
func NewWALMetrics(r *Registry) *WALMetrics {
	if r == nil {
		return nil
	}
	return &WALMetrics{
		Appends:         r.Counter("lb_wal_appends_total", "records appended to the write-ahead log"),
		AppendedBytes:   r.Counter("lb_wal_appended_bytes_total", "encoded record bytes appended"),
		Batches:         r.Counter("lb_wal_batches_total", "group-commit batches flushed to the segment file"),
		Fsyncs:          r.Counter("lb_wal_fsyncs_total", "segment fsyncs issued"),
		FlushedBytes:    r.Counter("lb_wal_flushed_bytes_total", "bytes written to segment files"),
		Segments:        r.Counter("lb_wal_segments_created_total", "log segment files created"),
		Compacted:       r.Counter("lb_wal_segments_compacted_total", "log segment files deleted by snapshot compaction"),
		Snapshots:       r.Counter("lb_wal_snapshots_total", "snapshot sidecar files made durable"),
		Recoveries:      r.Counter("lb_wal_recoveries_total", "crash recoveries run"),
		ReplayedRecords: r.Counter("lb_wal_replayed_records_total", "log records replayed during recovery"),
		ReplayedBytes:   r.Counter("lb_wal_replayed_bytes_total", "log bytes replayed during recovery"),
		AppendSeconds:   r.Histogram("lb_wal_append_seconds", "sampled append latency", walLatencyBuckets),
		CommitSeconds:   r.Histogram("lb_wal_commit_seconds", "flush+fsync latency", walLatencyBuckets),
	}
}

// Appended records one journaled record of n encoded bytes.
func (m *WALMetrics) Appended(n int) {
	if m == nil {
		return
	}
	m.Appends.Inc()
	m.AppendedBytes.Add(int64(n))
}

// AppendSampled records one sampled append latency.
func (m *WALMetrics) AppendSampled(seconds float64) {
	if m == nil {
		return
	}
	m.AppendSeconds.Observe(seconds)
}

// Flushed records one group-commit batch of n bytes and whether it was
// fsynced; seconds is the flush(+fsync) latency (negative = untimed).
func (m *WALMetrics) Flushed(n int, synced bool, seconds float64) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.FlushedBytes.Add(int64(n))
	if synced {
		m.Fsyncs.Inc()
	}
	if seconds >= 0 {
		m.CommitSeconds.Observe(seconds)
	}
}

// SegmentCreated records one new log segment file.
func (m *WALMetrics) SegmentCreated() {
	if m == nil {
		return
	}
	m.Segments.Inc()
}

// Compacted records one durable snapshot and the n whole segment files
// it retired.
func (m *WALMetrics) CompactedSegments(n int) {
	if m == nil {
		return
	}
	m.Snapshots.Inc()
	m.Compacted.Add(int64(n))
}

// Recovered records one crash recovery that replayed records totalling
// bytes from the log tail.
func (m *WALMetrics) Recovered(records int, bytes int64) {
	if m == nil {
		return
	}
	m.Recoveries.Inc()
	m.ReplayedRecords.Add(int64(records))
	m.ReplayedBytes.Add(bytes)
}

// SwarmMetrics instruments the selfish-rebalancing swarm: per-round
// task, migration and churn totals plus the two convergence gauges
// (relative imbalance and total-variation distance to the mechanism
// optimum x*). Every record method is a plain atomic store or add, so
// the swarm's allocation-free steady-state round holds with metrics
// on or off; the per-task migration hot path is entirely metric-free
// (one RoundDone call per round, not per task).
type SwarmMetrics struct {
	// Rounds counts completed migration rounds; Migrations the tasks
	// that moved; Joined and Left the online churn applied.
	Rounds, Migrations, Joined, Left *Counter
	// Balanced counts RunUntil convergences to the ε target.
	Balanced *Counter
	// Tasks gauges the live task count after the last round.
	Tasks *Gauge
	// Imbalance gauges max_i |ℓ_i − ℓ*|/ℓ* after the last round;
	// TVOptimum gauges the total-variation distance between the
	// empirical task shares and the mechanism optimum's shares.
	Imbalance, TVOptimum *Gauge
	// RoundSeconds observes wall-clock round latencies when a driver
	// times them (the engine itself never reads the clock).
	RoundSeconds *Histogram
}

// NewSwarmMetrics registers the swarm bundle on r.
func NewSwarmMetrics(r *Registry) *SwarmMetrics {
	if r == nil {
		return nil
	}
	return &SwarmMetrics{
		Rounds:       r.Counter("lb_swarm_rounds_total", "selfish migration rounds completed"),
		Migrations:   r.Counter("lb_swarm_migrations_total", "tasks that migrated between machines"),
		Joined:       r.Counter("lb_swarm_tasks_joined_total", "tasks joined by online churn"),
		Left:         r.Counter("lb_swarm_tasks_left_total", "tasks removed by online churn"),
		Balanced:     r.Counter("lb_swarm_balanced_total", "runs converged to the ε-balance target"),
		Tasks:        r.Gauge("lb_swarm_tasks", "live tasks after the last round"),
		Imbalance:    r.Gauge("lb_swarm_imbalance", "relative load imbalance after the last round"),
		TVOptimum:    r.Gauge("lb_swarm_tv_to_optimum", "total-variation distance to the mechanism optimum"),
		RoundSeconds: r.Histogram("lb_swarm_round_seconds", "wall-clock migration round latency", nil),
	}
}

// RoundDone records one completed round's totals.
func (m *SwarmMetrics) RoundDone(tasks, migrations, joined, left int64, imbalance, tv float64) {
	if m == nil {
		return
	}
	m.Rounds.Inc()
	m.Migrations.Add(migrations)
	if joined > 0 {
		m.Joined.Add(joined)
	}
	if left > 0 {
		m.Left.Add(left)
	}
	m.Tasks.Set(float64(tasks))
	m.Imbalance.Set(imbalance)
	m.TVOptimum.Set(tv)
}

// BalancedRun records one convergence to the ε-balance target.
func (m *SwarmMetrics) BalancedRun() {
	if m == nil {
		return
	}
	m.Balanced.Inc()
}

// RoundTimed records one wall-clock round latency.
func (m *SwarmMetrics) RoundTimed(seconds float64) {
	if m == nil {
		return
	}
	m.RoundSeconds.Observe(seconds)
}

// ServerMetrics instruments the networked serving front end
// (internal/server): connection lifecycle, request traffic by op,
// admission batch sizes, per-wakeup inflight depth and backpressure.
// The hot admission path reports once per batch, not once per op, and
// per-op counters are resolved at construction so recording is a plain
// atomic add.
type ServerMetrics struct {
	// Conns gauges currently open connections; ConnsTotal counts every
	// connection ever accepted.
	Conns      *Gauge
	ConnsTotal *Counter
	// Ops counts served requests by op name (add, rebid, leave, rate,
	// seal, epoch, load, payment, ping, subscribe) plus pushed
	// seal-notify messages under "notify".
	Ops *CounterVec
	// BatchSize observes admission batch sizes (bid ops per
	// registry.ApplyBatch call).
	BatchSize *Histogram
	// Inflight gauges the most recent wakeup's decoded request count —
	// the depth the pipelining actually reached.
	Inflight *Gauge
	// Overloads counts requests rejected with StatusOverloaded.
	Overloads *Counter
	// ProtocolErrors counts connections dropped for malformed frames.
	ProtocolErrors *Counter

	ops [12]*Counter // indexed by wire op byte; resolved in NewServerMetrics
}

// serverOpNames maps wire op bytes (1..11) to their label values; the
// names are part of the metric schema, not the wire format.
var serverOpNames = [12]string{
	"", "add", "rebid", "leave", "rate", "seal", "epoch", "load",
	"payment", "ping", "subscribe", "notify",
}

// NewServerMetrics registers the serving-front-end bundle on r.
func NewServerMetrics(r *Registry) *ServerMetrics {
	if r == nil {
		return nil
	}
	m := &ServerMetrics{
		Conns:          r.Gauge("lb_server_open_conns", "currently open client connections"),
		ConnsTotal:     r.Counter("lb_server_conns_total", "client connections accepted"),
		Ops:            r.CounterVec("lb_server_ops_total", "requests served by op", "op"),
		BatchSize:      r.Histogram("lb_server_batch_ops", "bid ops per admission batch", []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}),
		Inflight:       r.Gauge("lb_server_inflight_reqs", "decoded requests in the last wakeup"),
		Overloads:      r.Counter("lb_server_overload_rejections_total", "requests rejected with the overload status"),
		ProtocolErrors: r.Counter("lb_server_protocol_errors_total", "connections dropped for malformed frames"),
	}
	for op, name := range serverOpNames {
		if name != "" {
			m.ops[op] = m.Ops.With(name)
		}
	}
	return m
}

// ConnOpened / ConnClosed track the connection lifecycle.
func (m *ServerMetrics) ConnOpened() {
	if m == nil {
		return
	}
	m.Conns.Add(1)
	m.ConnsTotal.Inc()
}

// ConnClosed records a connection teardown; protocolErr marks one
// dropped for a malformed frame.
func (m *ServerMetrics) ConnClosed(protocolErr bool) {
	if m == nil {
		return
	}
	m.Conns.Add(-1)
	if protocolErr {
		m.ProtocolErrors.Inc()
	}
}

// Served records n served requests of the given wire op (out-of-range
// ops are dropped). The admission path calls it once per drained batch
// with that batch's per-op counts.
func (m *ServerMetrics) Served(op byte, n int64) {
	if m == nil || int(op) >= len(m.ops) {
		return
	}
	m.ops[op].Add(n)
}

// Batched records one admission batch of n bid ops.
func (m *ServerMetrics) Batched(n int) {
	if m == nil {
		return
	}
	m.BatchSize.Observe(float64(n))
}

// Wakeup records one connection wakeup that decoded n requests.
func (m *ServerMetrics) Wakeup(n int) {
	if m == nil {
		return
	}
	m.Inflight.Set(float64(n))
}

// Overloaded records one StatusOverloaded rejection.
func (m *ServerMetrics) Overloaded() {
	if m == nil {
		return
	}
	m.Overloads.Inc()
}

// Observer bundles a registry, a trace ring and every layer bundle,
// so a CLI can enable full observability with one value and each
// layer can pull its slice. A nil *Observer disables everything.
type Observer struct {
	// Registry collects the metrics below.
	Registry *Registry
	// Trace is the shared event ring.
	Trace *Trace
	// Round, Supervise, Engine, Faults, BidRegistry, Health, Dispatch,
	// WAL and Swarm are the layer bundles.
	Round       *RoundMetrics
	Supervise   *SuperviseMetrics
	Engine      *EngineMetrics
	Faults      *FaultMetrics
	BidRegistry *RegistryMetrics
	Health      *HealthMetrics
	Dispatch    *DispatchMetrics
	WAL         *WALMetrics
	Swarm       *SwarmMetrics
	Server      *ServerMetrics
}

// New returns an Observer with every bundle registered and a trace
// ring of the given capacity (<= 0 uses DefaultTraceCap). All
// counters exist — at zero — from the start, so exported snapshots
// always contain the full schema.
func New(traceCap int) *Observer {
	r := NewRegistry()
	return &Observer{
		Registry:    r,
		Trace:       NewTrace(traceCap),
		Round:       NewRoundMetrics(r),
		Supervise:   NewSuperviseMetrics(r),
		Engine:      NewEngineMetrics(r),
		Faults:      NewFaultMetrics(r),
		BidRegistry: NewRegistryMetrics(r),
		Health:      NewHealthMetrics(r),
		Dispatch:    NewDispatchMetrics(r),
		WAL:         NewWALMetrics(r),
		Swarm:       NewSwarmMetrics(r),
		Server:      NewServerMetrics(r),
	}
}

// RoundMetrics returns the round bundle (nil on a nil observer).
func (o *Observer) RoundMetrics() *RoundMetrics {
	if o == nil {
		return nil
	}
	return o.Round
}

// SuperviseMetrics returns the supervisor bundle (nil on a nil
// observer).
func (o *Observer) SuperviseMetrics() *SuperviseMetrics {
	if o == nil {
		return nil
	}
	return o.Supervise
}

// EngineMetrics returns the engine bundle (nil on a nil observer).
func (o *Observer) EngineMetrics() *EngineMetrics {
	if o == nil {
		return nil
	}
	return o.Engine
}

// FaultMetrics returns the fault bundle (nil on a nil observer).
func (o *Observer) FaultMetrics() *FaultMetrics {
	if o == nil {
		return nil
	}
	return o.Faults
}

// RegistryMetrics returns the bid-registry bundle (nil on a nil
// observer).
func (o *Observer) RegistryMetrics() *RegistryMetrics {
	if o == nil {
		return nil
	}
	return o.BidRegistry
}

// HealthMetrics returns the health-controller bundle (nil on a nil
// observer).
func (o *Observer) HealthMetrics() *HealthMetrics {
	if o == nil {
		return nil
	}
	return o.Health
}

// DispatchMetrics returns the per-job dispatcher bundle (nil on a nil
// observer).
func (o *Observer) DispatchMetrics() *DispatchMetrics {
	if o == nil {
		return nil
	}
	return o.Dispatch
}

// WALMetrics returns the write-ahead-log bundle (nil on a nil
// observer).
func (o *Observer) WALMetrics() *WALMetrics {
	if o == nil {
		return nil
	}
	return o.WAL
}

// SwarmMetrics returns the selfish-rebalancing bundle (nil on a nil
// observer).
func (o *Observer) SwarmMetrics() *SwarmMetrics {
	if o == nil {
		return nil
	}
	return o.Swarm
}

// ServerMetrics returns the serving-front-end bundle (nil on a nil
// observer).
func (o *Observer) ServerMetrics() *ServerMetrics {
	if o == nil {
		return nil
	}
	return o.Server
}

// Emit forwards an event to the trace ring (no-op on a nil observer).
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	o.Trace.Emit(e)
}
