// Package obs is the repository's zero-dependency observability
// layer: counters, gauges and histograms collected in a Registry and
// exportable as deterministic JSON (the cmd/benchjson conventions: no
// timestamps, stable ordering) or Prometheus text format, plus a
// bounded structured Event trace ring.
//
// Every metric type is nil-receiver-safe and allocation-free on the
// record path, so instrumented hot paths (the mech payment engine,
// the fault transport) cost nothing when observability is disabled: a
// nil *Counter, nil bundle or nil *Observer turns every record call
// into a branch and a return. The allocation guards in internal/mech
// pin this property down with testing.AllocsPerRun.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero
// value is ready to use; a nil *Counter discards all writes.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value
// is ready to use; a nil *Gauge discards all writes.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by v (lock-free CAS loop).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-exportable buckets
// with fixed upper bounds, tracking count and sum alongside. A nil
// *Histogram discards all writes.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf is implicit

	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last bucket is the +Inf overflow
	count  int64
	sum    float64
}

// DefaultBuckets is the bucket layout used when a histogram is
// registered with nil bounds: sub-millisecond through minutes, wide
// enough for both simulated round times and backoff delays.
var DefaultBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Observe records one sample. NaN samples are dropped (they would
// poison the sum without landing in any bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]int64(nil), h.counts...), h.count, h.sum
}

// CounterVec is a family of counters split by one label. Children are
// created on first use; a nil *CounterVec hands out nil counters, so
// the whole chain v.With("drop").Inc() is safe and free when
// observability is off.
type CounterVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating
// it on first use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[value]
	if c == nil {
		c = &Counter{name: v.name, help: v.help}
		v.children[value] = c
	}
	return c
}

// Value returns the child's current count without creating it.
func (v *CounterVec) Value(value string) int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	c := v.children[value]
	v.mu.Unlock()
	return c.Value()
}
