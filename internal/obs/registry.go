package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics and exports them in deterministic
// order: metrics in registration order, vector children sorted by
// label value. A nil *Registry hands out nil metrics, so a caller can
// build an entire instrumentation bundle against a disabled registry
// and every record call becomes a no-op.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// entry is one registered metric of any kind.
type entry struct {
	name, help, kind string
	counter          *Counter
	gauge            *Gauge
	hist             *Histogram
	vec              *CounterVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*entry{}}
}

// lookup returns the entry for name, creating it with mk when absent.
// Re-registering a name returns the existing entry (names are unique;
// the first registration's kind wins).
func (r *Registry) lookup(name, help, kind string, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		return e
	}
	e := mk()
	e.name, e.help, e.kind = name, help, kind
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter registers (or fetches) a counter. Nil registries return nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, help, "counter", func() *entry {
		return &entry{counter: &Counter{name: name, help: help}}
	})
	return e.counter
}

// Gauge registers (or fetches) a gauge. Nil registries return nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, help, "gauge", func() *entry {
		return &entry{gauge: &Gauge{name: name, help: help}}
	})
	return e.gauge
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (nil = DefaultBuckets). Nil registries return nil.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, help, "histogram", func() *entry {
		if bounds == nil {
			bounds = DefaultBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &entry{hist: &Histogram{
			name: name, help: help,
			bounds: b,
			counts: make([]int64, len(b)+1),
		}}
	})
	return e.hist
}

// CounterVec registers (or fetches) a counter family split by one
// label. Nil registries return nil.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	e := r.lookup(name, help, "countervec", func() *entry {
		return &entry{vec: &CounterVec{
			name: name, help: help, label: label,
			children: map[string]*Counter{},
		}}
	})
	return e.vec
}

// MetricSnapshot is one exported metric sample.
type MetricSnapshot struct {
	// Name is the metric name; Kind one of counter, gauge, histogram.
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Help is the registration help string.
	Help string `json:"help,omitempty"`
	// Labels holds the label pair of vector children.
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value (histograms use Count/Sum).
	Value float64 `json:"value"`
	// Count, Sum and Buckets are histogram-only.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound; +Inf is rendered as
	// the string "+Inf" in JSON via MarshalJSON below.
	LE float64 `json:"le"`
	// Count is the cumulative count of samples <= LE.
	Count int64 `json:"count"`
}

// MarshalJSON renders +Inf bounds as the string "+Inf" (JSON has no
// infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := any(b.LE)
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		LE    any   `json:"le"`
		Count int64 `json:"count"`
	}{le, b.Count})
}

// Snapshot returns every registered metric in deterministic order.
// Nil registries return nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	var out []MetricSnapshot
	for _, e := range entries {
		switch e.kind {
		case "counter":
			out = append(out, MetricSnapshot{
				Name: e.name, Kind: "counter", Help: e.help,
				Value: float64(e.counter.Value()),
			})
		case "gauge":
			out = append(out, MetricSnapshot{
				Name: e.name, Kind: "gauge", Help: e.help,
				Value: e.gauge.Value(),
			})
		case "histogram":
			bounds, counts, count, sum := e.hist.snapshot()
			var cum int64
			buckets := make([]BucketSnapshot, 0, len(counts))
			for i, c := range counts {
				cum += c
				le := math.Inf(1)
				if i < len(bounds) {
					le = bounds[i]
				}
				buckets = append(buckets, BucketSnapshot{LE: le, Count: cum})
			}
			out = append(out, MetricSnapshot{
				Name: e.name, Kind: "histogram", Help: e.help,
				Count: count, Sum: sum, Buckets: buckets,
			})
		case "countervec":
			e.vec.mu.Lock()
			if len(e.vec.children) == 0 {
				// Keep the metric visible in exports before any label
				// value exists, so snapshots always carry the schema.
				out = append(out, MetricSnapshot{
					Name: e.name, Kind: "counter", Help: e.help,
				})
				e.vec.mu.Unlock()
				continue
			}
			values := make([]string, 0, len(e.vec.children))
			for v := range e.vec.children {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				out = append(out, MetricSnapshot{
					Name: e.name, Kind: "counter", Help: e.help,
					Labels: map[string]string{e.vec.label: v},
					Value:  float64(e.vec.children[v].Value()),
				})
			}
			e.vec.mu.Unlock()
		}
	}
	return out
}

// jsonDocument is the WriteJSON envelope.
type jsonDocument struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// WriteJSON writes the snapshot as indented JSON, deterministic for a
// given metric state (no timestamps, stable ordering) so snapshots
// can be committed and diffed like BENCH_mech.json.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDocument{Metrics: r.Snapshot()})
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format (# HELP / # TYPE headers, histogram _bucket/_sum/
// _count expansion).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	lastHeader := ""
	for _, s := range snaps {
		if s.Name != lastHeader {
			lastHeader = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		switch s.Kind {
		case "histogram":
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.LE, 1) {
					le = formatFloat(b.LE)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				s.Name, formatFloat(s.Sum), s.Name, s.Count); err != nil {
				return err
			}
		default:
			name := s.Name
			if len(s.Labels) > 0 {
				var pairs []string
				for k, v := range s.Labels {
					pairs = append(pairs, fmt.Sprintf("%s=%q", k, v))
				}
				sort.Strings(pairs)
				name = fmt.Sprintf("%s{%s}", s.Name, strings.Join(pairs, ","))
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders floats the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
