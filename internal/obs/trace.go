package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured trace record: something a layer did at a
// simulated time, tied to a node when one is involved.
type Event struct {
	// Seq is the emission order, assigned by the trace ring.
	Seq int `json:"seq"`
	// Time is the simulated time of the event in seconds (0 when the
	// emitting layer has no clock, e.g. between attempts).
	Time float64 `json:"t"`
	// Layer names the emitting layer: distmech, supervise, protocol,
	// rounds.
	Layer string `json:"layer"`
	// Kind is the event type within the layer (timeout, audit-flag,
	// retry, ...).
	Kind string `json:"kind"`
	// Node is the involved node index, -1 when not node-specific.
	Node int `json:"node"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
	// Value carries the event's number when it has one (a delay, an
	// aggregate, a count).
	Value float64 `json:"value,omitempty"`
}

// Trace is a bounded ring of Events: the last Cap emissions survive,
// older ones are dropped (and counted). A nil *Trace discards all
// emissions, so instrumented code needs no enabled-check.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // events currently buffered
	seq     int
	dropped int
}

// DefaultTraceCap is the ring capacity used when NewTrace is given a
// non-positive one.
const DefaultTraceCap = 4096

// NewTrace returns a trace ring keeping the last capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Emit appends one event, assigning its Seq. The oldest event is
// dropped when the ring is full.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	if t.n == len(t.buf) {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	}
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Dropped reports how many events were evicted by ring overflow.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON writes the buffered events as an indented JSON document
// {"dropped": n, "events": [...]}.
func (t *Trace) WriteJSON(w io.Writer) error {
	doc := struct {
		Dropped int     `json:"dropped"`
		Events  []Event `json:"events"`
	}{t.Dropped(), t.Events()}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText writes the buffered events as a line-oriented trace,
// deterministic for a given event sequence.
func (t *Trace) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		node := "-"
		if e.Node >= 0 {
			node = fmt.Sprintf("%d", e.Node)
		}
		line := fmt.Sprintf("%6d t=%-10.6g %-10s %-22s node=%-4s", e.Seq, e.Time, e.Layer, e.Kind, node)
		if e.Value != 0 {
			line += fmt.Sprintf(" value=%g", e.Value)
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier events dropped by the ring)\n", d); err != nil {
			return err
		}
	}
	return nil
}
