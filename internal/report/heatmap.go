package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap renders a matrix of values over labeled axes, as ASCII
// shading or as an SVG grid. It backs the deviation-utility surface
// artifact: bid factor on one axis, execution factor on the other,
// utility loss as color.
type Heatmap struct {
	// Title is printed above the map.
	Title string
	// XLabels and YLabels name the columns and rows.
	XLabels, YLabels []string
	// Values is indexed [row][col] and must be rectangular with
	// len(YLabels) rows of len(XLabels) values.
	Values [][]float64
}

func (h *Heatmap) validate() error {
	if len(h.XLabels) == 0 || len(h.YLabels) == 0 {
		return fmt.Errorf("report: heatmap %q has empty axes", h.Title)
	}
	if len(h.Values) != len(h.YLabels) {
		return fmt.Errorf("report: heatmap %q has %d rows for %d y labels",
			h.Title, len(h.Values), len(h.YLabels))
	}
	for r, row := range h.Values {
		if len(row) != len(h.XLabels) {
			return fmt.Errorf("report: heatmap %q row %d has %d values for %d x labels",
				h.Title, r, len(row), len(h.XLabels))
		}
	}
	return nil
}

func (h *Heatmap) valueRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range h.Values {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// asciiShades maps normalized intensity to characters, light to dark.
var asciiShades = []byte(" .:-=+*#%@")

// Render writes the heatmap as ASCII shading with a legend.
func (h *Heatmap) Render(w io.Writer) error {
	if err := h.validate(); err != nil {
		return err
	}
	lo, hi := h.valueRange()
	labW := 0
	for _, l := range h.YLabels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	if h.Title != "" {
		fmt.Fprintln(w, h.Title)
	}
	for r, row := range h.Values {
		var b strings.Builder
		for _, v := range row {
			idx := int(float64(len(asciiShades)-1) * (v - lo) / (hi - lo))
			b.WriteByte(asciiShades[idx])
			b.WriteByte(asciiShades[idx]) // double width for aspect ratio
		}
		fmt.Fprintf(w, "%-*s |%s|\n", labW, h.YLabels[r], b.String())
	}
	fmt.Fprintf(w, "%-*s  cols: %s\n", labW, "", strings.Join(h.XLabels, " "))
	fmt.Fprintf(w, "%-*s  scale: ' '=%s '@'=%s\n", labW, "",
		FormatFloat(lo), FormatFloat(hi))
	return nil
}

// String renders the heatmap to a string, ignoring errors.
func (h *Heatmap) String() string {
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		return "heatmap error: " + err.Error()
	}
	return b.String()
}

// WriteSVG writes the heatmap as a standalone SVG with a white-to-blue
// ramp and cell value annotations.
func (h *Heatmap) WriteSVG(w io.Writer) error {
	if err := h.validate(); err != nil {
		return err
	}
	lo, hi := h.valueRange()
	const (
		cellW, cellH = 64.0, 36.0
		marginL      = 80.0
		marginT      = 50.0
		marginB      = 40.0
		marginR      = 20.0
	)
	cols, rowsN := len(h.XLabels), len(h.YLabels)
	chartW := marginL + cellW*float64(cols) + marginR
	chartH := marginT + cellH*float64(rowsN) + marginB
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(w, `<rect width="%g" height="%g" fill="white"/>`+"\n", chartW, chartH)
	if h.Title != "" {
		fmt.Fprintf(w, `<text x="%g" y="24" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
			chartW/2, escapeXML(h.Title))
	}
	for r := 0; r < rowsN; r++ {
		y := marginT + cellH*float64(r)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+cellH/2+4, escapeXML(h.YLabels[r]))
		for c := 0; c < cols; c++ {
			x := marginL + cellW*float64(c)
			t := (h.Values[r][c] - lo) / (hi - lo)
			// White (low) to deep blue (high).
			red := int(255 - 183*t)
			green := int(255 - 135*t)
			fmt.Fprintf(w, `<rect x="%g" y="%g" width="%g" height="%g" fill="rgb(%d,%d,255)" stroke="#ccc"/>`+"\n",
				x, y, cellW, cellH, red, green)
			textColor := "#000"
			if t > 0.6 {
				textColor = "#fff"
			}
			fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle" fill="%s">%s</text>`+"\n",
				x+cellW/2, y+cellH/2+4, textColor, FormatFloat(h.Values[r][c]))
		}
	}
	for c := 0; c < cols; c++ {
		x := marginL + cellW*float64(c)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x+cellW/2, marginT+cellH*float64(rowsN)+18, escapeXML(h.XLabels[c]))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}
