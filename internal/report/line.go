package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LineChart is a multi-series XY chart rendered to SVG, used for the
// extension parameter sweeps (latency vs arrival rate, error vs
// observation budget, ...).
type LineChart struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// X holds the shared x coordinates, strictly increasing.
	X []float64
	// Series holds the y values; each must have len(X) values.
	Series []Series
	// LogY plots the y axis logarithmically (all values must be > 0).
	LogY bool
}

func (c *LineChart) validate() error {
	if len(c.X) < 2 {
		return fmt.Errorf("report: line chart %q needs at least 2 points", c.Title)
	}
	for i := 1; i < len(c.X); i++ {
		if c.X[i] <= c.X[i-1] {
			return fmt.Errorf("report: line chart %q x values not increasing", c.Title)
		}
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("report: line chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.X) {
			return fmt.Errorf("report: line chart %q series %q has %d values for %d points",
				c.Title, s.Name, len(s.Values), len(c.X))
		}
		if c.LogY {
			for _, v := range s.Values {
				if v <= 0 {
					return fmt.Errorf("report: line chart %q: log scale needs positive values", c.Title)
				}
			}
		}
	}
	return nil
}

// WriteSVG writes the chart as a standalone SVG document.
func (c *LineChart) WriteSVG(w io.Writer) error {
	if err := c.validate(); err != nil {
		return err
	}
	const (
		chartW  = 640.0
		chartH  = 400.0
		marginL = 70.0
		marginR = 20.0
		marginT = 40.0
		marginB = 80.0
	)
	plotW := chartW - marginL - marginR
	plotH := chartH - marginT - marginB

	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			tv := ty(v)
			if tv < yLo {
				yLo = tv
			}
			if tv > yHi {
				yHi = tv
			}
		}
	}
	if !c.LogY && yLo > 0 {
		yLo = 0
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	xLo, xHi := c.X[0], c.X[len(c.X)-1]
	xOf := func(x float64) float64 { return marginL + plotW*(x-xLo)/(xHi-xLo) }
	yOf := func(v float64) float64 { return marginT + plotH*(yHi-ty(v))/(yHi-yLo) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(w, `<rect width="%g" height="%g" fill="white"/>`+"\n", chartW, chartH)
	if c.Title != "" {
		fmt.Fprintf(w, `<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			chartW/2, escapeXML(c.Title))
	}
	// Axes.
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Ticks.
	for i := 0; i <= 4; i++ {
		fy := yLo + (yHi-yLo)*float64(i)/4
		label := fy
		if c.LogY {
			label = math.Pow(10, fy)
		}
		y := marginT + plotH*(yHi-fy)/(yHi-yLo)
		fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-7, y+4, FormatFloat(label))

		fx := xLo + (xHi-xLo)*float64(i)/4
		x := xOf(fx)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginT+plotH+16, FormatFloat(fx))
	}
	if c.XLabel != "" {
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, marginT+plotH+36, escapeXML(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(w, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escapeXML(c.YLabel))
	}
	// Polylines.
	for si, s := range c.Series {
		var pts strings.Builder
		for i, v := range s.Values {
			fmt.Fprintf(&pts, "%g,%g ", xOf(c.X[i]), yOf(v))
		}
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			svgPalette[si%len(svgPalette)], strings.TrimSpace(pts.String()))
		for i, v := range s.Values {
			fmt.Fprintf(w, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n",
				xOf(c.X[i]), yOf(v), svgPalette[si%len(svgPalette)])
		}
	}
	// Legend.
	lx := marginL
	ly := chartH - 20
	for si, s := range c.Series {
		fmt.Fprintf(w, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n",
			lx, ly, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+16, ly+10, escapeXML(s.Name))
		lx += 16 + 8*float64(len(s.Name)) + 24
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}
