package report

import (
	"bytes"
	"strings"
	"testing"
)

func heat() *Heatmap {
	return &Heatmap{
		Title:   "Utility loss",
		XLabels: []string{"b=0.5", "b=1", "b=2"},
		YLabels: []string{"e=1", "e=2"},
		Values: [][]float64{
			{8.6, 0, 7.3},
			{27.1, 15.4, 21.9},
		},
	}
}

func TestHeatmapASCII(t *testing.T) {
	out := heat().String()
	for _, want := range []string{"Utility loss", "e=1", "e=2", "b=0.5", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
	// The minimum cell (0) renders as the lightest shade (space) and
	// the maximum (27.1) as the darkest (@).
	if !strings.Contains(out, "@") {
		t.Error("no dark cell rendered")
	}
}

func TestHeatmapSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := heat().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "rgb(", "27.1", "b=2"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One rect per cell plus background.
	if got := strings.Count(svg, "<rect"); got != 7 {
		t.Errorf("%d rects, want 7", got)
	}
}

func TestHeatmapValidation(t *testing.T) {
	bad := []*Heatmap{
		{XLabels: nil, YLabels: []string{"a"}, Values: [][]float64{{1}}},
		{XLabels: []string{"a"}, YLabels: []string{"a"}, Values: nil},
		{XLabels: []string{"a"}, YLabels: []string{"a", "b"}, Values: [][]float64{{1}}},
		{XLabels: []string{"a", "b"}, YLabels: []string{"a"}, Values: [][]float64{{1}}},
	}
	for i, h := range bad {
		if err := h.Render(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d render accepted", i)
		}
		if err := h.WriteSVG(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d svg accepted", i)
		}
	}
}

func TestHeatmapConstant(t *testing.T) {
	h := &Heatmap{
		XLabels: []string{"a"},
		YLabels: []string{"b"},
		Values:  [][]float64{{5}},
	}
	if err := h.Render(&bytes.Buffer{}); err != nil {
		t.Errorf("constant heatmap: %v", err)
	}
}
