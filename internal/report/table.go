// Package report renders experiment results as ASCII tables, CSV
// files, and bar charts (ASCII and SVG). It is the presentation layer
// for the tables and figures the repository reproduces from the paper.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	// Title is printed above the table.
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long
// rows panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddFloats appends a row with a string label followed by formatted
// floating-point values.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, FormatFloat(v))
	}
	t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// FormatFloat renders a float compactly with 4 significant decimals.
func FormatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line(t.headers)
	total := len(t.headers) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table (headers then rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
