package report

import (
	"bytes"
	"strings"
	"testing"
)

func lineChart() *LineChart {
	return &LineChart{
		Title:  "Latency vs rate",
		XLabel: "R (jobs/s)",
		YLabel: "total latency",
		X:      []float64{1, 2, 5, 10, 20},
		Series: []Series{
			{Name: "optimal", Values: []float64{0.2, 0.8, 4.9, 19.6, 78.4}},
			{Name: "Low2", Values: []float64{0.3, 1.3, 8.1, 32.5, 130.1}},
		},
	}
}

func TestLineChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := lineChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<polyline", "optimal", "Low2",
		"Latency vs rate", "R (jobs/s)", "total latency"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	// One circle per point.
	if got := strings.Count(svg, "<circle"); got != 10 {
		t.Errorf("%d markers, want 10", got)
	}
}

func TestLineChartLogScale(t *testing.T) {
	c := lineChart()
	c.LogY = true
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Log scale rejects non-positive values.
	c.Series[0].Values[0] = 0
	if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("expected error for log scale with zero value")
	}
}

func TestLineChartValidation(t *testing.T) {
	bad := []*LineChart{
		{X: []float64{1}, Series: []Series{{Name: "s", Values: []float64{1}}}},
		{X: []float64{1, 1}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}},
		{X: []float64{1, 2}, Series: nil},
		{X: []float64{1, 2}, Series: []Series{{Name: "s", Values: []float64{1}}}},
	}
	for i, c := range bad {
		if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	c := &LineChart{
		X:      []float64{0, 1},
		Series: []Series{{Name: "flat", Values: []float64{3, 3}}},
	}
	if err := c.WriteSVG(&bytes.Buffer{}); err != nil {
		t.Errorf("constant series failed: %v", err)
	}
}
