package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Config", "computer", "t")
	tb.AddRow("C1", "1")
	tb.AddRow("C2", "10")
	out := tb.String()
	for _, want := range []string{"Config", "computer", "C1", "C2", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableAddFloats(t *testing.T) {
	tb := NewTable("", "label", "a", "b")
	tb.AddFloats("row", 1.5, -2.25)
	out := tb.String()
	if !strings.Contains(out, "1.5") || !strings.Contains(out, "-2.25") {
		t.Errorf("floats not rendered:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if tb.Rows() != 1 {
		t.Error("short row rejected")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.AddRow("1", "2")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("1", "2")
	tb.AddRow("a,b", `q"t`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "x,y\n") {
		t.Errorf("csv = %q", got)
	}
	if !strings.Contains(got, `"a,b"`) {
		t.Errorf("csv quoting broken: %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:        "1",
		1.5:      "1.5",
		78.43137: "78.4314",
		-0.25:    "-0.25",
		0:        "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func chart() *BarChart {
	return &BarChart{
		Title:  "Payment and utility",
		Labels: []string{"True1", "Low2"},
		Series: []Series{
			{Name: "payment", Values: []float64{23, -19.4}},
			{Name: "utility", Values: []float64{19.1, -32.5}},
		},
	}
}

func TestBarChartASCII(t *testing.T) {
	out := chart().String()
	for _, want := range []string{"True1", "Low2", "payment", "utility", "#", "|", "-32.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestBarChartNegativeBarsLeftOfAxis(t *testing.T) {
	c := &BarChart{
		Labels: []string{"x"},
		Series: []Series{{Name: "v", Values: []float64{-5}}},
	}
	out := c.String()
	// The hash marks must appear before the zero axis character.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "#") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no bar drawn:\n%s", out)
	}
	if strings.Index(line, "#") > strings.Index(line, "|") {
		t.Errorf("negative bar drawn right of axis: %q", line)
	}
}

func TestBarChartValidation(t *testing.T) {
	bad := []*BarChart{
		{Labels: nil, Series: []Series{{Name: "v", Values: nil}}},
		{Labels: []string{"a"}, Series: nil},
		{Labels: []string{"a"}, Series: []Series{{Name: "v", Values: []float64{1, 2}}}},
	}
	for i, c := range bad {
		if err := c.Render(&bytes.Buffer{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBarChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "Payment and utility", "True1"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One rect per bar (4) plus background and legend swatches (2).
	if got := strings.Count(svg, "<rect"); got < 7 {
		t.Errorf("svg has %d rects, want >= 7", got)
	}
}

func TestBarChartSVGEscapes(t *testing.T) {
	c := &BarChart{
		Title:  `a<b & "c"`,
		Labels: []string{"l"},
		Series: []Series{{Name: "s", Values: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `a<b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(buf.String(), "a&lt;b &amp;") {
		t.Error("escaped title missing")
	}
}

func TestBarChartConstantZero(t *testing.T) {
	c := &BarChart{
		Labels: []string{"a"},
		Series: []Series{{Name: "v", Values: []float64{0}}},
	}
	if err := c.Render(&bytes.Buffer{}); err != nil {
		t.Errorf("zero-only chart failed: %v", err)
	}
}
