package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named sequence of values in a grouped bar chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Values are the series values, one per chart label.
	Values []float64
}

// BarChart is a grouped horizontal bar chart: for every label, one bar
// per series. Negative values extend left of a zero axis, which the
// paper's Figure 2 (Low2) needs.
type BarChart struct {
	// Title is printed above the chart.
	Title string
	// Labels are the category names (one group per label).
	Labels []string
	// Series hold the grouped values; each must have len(Labels)
	// values.
	Series []Series
	// Width is the bar area width in characters (default 50).
	Width int
}

// Render writes the chart as ASCII art.
func (c *BarChart) Render(w io.Writer) error {
	if err := c.validate(); err != nil {
		return err
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	lo, hi := c.valueRange()
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	zero := int(math.Round(float64(width) * (0 - lo) / span))

	labW, serW := 0, 0
	for _, l := range c.Labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for _, s := range c.Series {
		if len(s.Name) > serW {
			serW = len(s.Name)
		}
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	fmt.Fprintf(w, "%*s  %*s  range [%s, %s]\n", labW, "", serW, "",
		FormatFloat(lo), FormatFloat(hi))
	for li, label := range c.Labels {
		for si, s := range c.Series {
			v := s.Values[li]
			pos := int(math.Round(float64(width) * (v - lo) / span))
			var bar strings.Builder
			for x := 0; x <= width; x++ {
				switch {
				case x == zero:
					bar.WriteByte('|')
				case v >= 0 && x > zero && x <= pos:
					bar.WriteByte('#')
				case v < 0 && x < zero && x >= pos:
					bar.WriteByte('#')
				default:
					bar.WriteByte(' ')
				}
			}
			name := ""
			lab := ""
			if si == 0 {
				lab = label
			}
			name = s.Name
			fmt.Fprintf(w, "%-*s  %-*s  %s %s\n", labW, lab, serW, name,
				bar.String(), FormatFloat(v))
		}
	}
	return nil
}

// String renders the chart to a string, ignoring errors.
func (c *BarChart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return "chart error: " + err.Error()
	}
	return b.String()
}

func (c *BarChart) validate() error {
	if len(c.Labels) == 0 {
		return fmt.Errorf("report: chart %q has no labels", c.Title)
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("report: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Labels) {
			return fmt.Errorf("report: chart %q series %q has %d values for %d labels",
				c.Title, s.Name, len(s.Values), len(c.Labels))
		}
	}
	return nil
}

func (c *BarChart) valueRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// svgPalette are the fill colors cycled across series.
var svgPalette = []string{"#4878a8", "#e49444", "#5bab6e", "#d1605e", "#857aab"}

// WriteSVG writes the chart as a standalone grouped-bar SVG document.
func (c *BarChart) WriteSVG(w io.Writer) error {
	if err := c.validate(); err != nil {
		return err
	}
	const (
		chartW  = 640.0
		chartH  = 360.0
		marginL = 60.0
		marginR = 20.0
		marginT = 40.0
		marginB = 70.0
	)
	plotW := chartW - marginL - marginR
	plotH := chartH - marginT - marginB
	lo, hi := c.valueRange()
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	yOf := func(v float64) float64 { return marginT + plotH*(hi-v)/span }

	nGroups := len(c.Labels)
	nSeries := len(c.Series)
	groupW := plotW / float64(nGroups)
	barW := groupW * 0.8 / float64(nSeries)

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(w, `<rect width="%g" height="%g" fill="white"/>`+"\n", chartW, chartH)
	if c.Title != "" {
		fmt.Fprintf(w, `<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			chartW/2, escapeXML(c.Title))
	}
	// Axis lines: zero line and left axis.
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginL, yOf(0), chartW-marginR, yOf(0))
	fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := lo + span*float64(i)/4
		y := yOf(v)
		fmt.Fprintf(w, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#999"/>`+"\n",
			marginL-4, y, marginL, y)
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-7, y+4, FormatFloat(v))
	}
	// Bars.
	for li, label := range c.Labels {
		gx := marginL + groupW*float64(li) + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[li]
			x := gx + barW*float64(si)
			y0, y1 := yOf(0), yOf(v)
			top, h := y1, y0-y1
			if v < 0 {
				top, h = y0, y1-y0
			}
			fmt.Fprintf(w, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"/>`+"\n",
				x, top, barW*0.95, h, svgPalette[si%len(svgPalette)])
		}
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			gx+groupW*0.4, marginT+plotH+16, escapeXML(label))
	}
	// Legend.
	lx := marginL
	ly := chartH - 24
	for si, s := range c.Series {
		fmt.Fprintf(w, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n",
			lx, ly, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(w, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+16, ly+10, escapeXML(s.Name))
		lx += 16 + 8*float64(len(s.Name)) + 24
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
