package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("writes the full report; skipped in -short mode")
	}
	dir := t.TempDir()
	files, err := WriteReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every paper and extension artifact has a .txt and a .csv; fig1-6
	// have .svg; ext-rate/-estimator have line SVGs; ext-surface a
	// heatmap SVG; plus the checks pair.
	byName := map[string]bool{}
	for _, f := range files {
		byName[filepath.Base(f)] = true
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	for _, want := range []string{
		"table1.txt", "table2.csv", "fig1.svg", "fig6.csv",
		"des.txt", "ext-rate-line.svg", "ext-surface-heat.svg",
		"ext-collusion.txt", "ext-poa.csv", "checks.txt",
	} {
		if !byName[want] {
			t.Errorf("report missing %s (have %d files)", want, len(files))
		}
	}
	// The checks file records a full pass.
	data, err := os.ReadFile(filepath.Join(dir, "checks.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "FAIL") {
		t.Errorf("checks report contains failures:\n%s", data)
	}
}
