// Package experiments encodes the evaluation section of the paper:
// the 16-computer system of Table 1, the eight deviation scenarios of
// Table 2, and generators for the data behind Figures 1-6, plus a
// discrete-event cross-check and a machine-checkable list of the
// paper's quantitative claims.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mech"
	"repro/internal/numeric"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PaperRate is the job arrival rate R = 20 jobs/s used throughout the
// paper's evaluation.
const PaperRate = 20.0

// OptimalLatency is the paper's headline truthful optimum
// L* = R^2 / sum(1/t) = 400/5.1.
const OptimalLatency = 400.0 / 5.1

// PaperTrueValues returns the Table 1 configuration: two computers
// with t=1, three with t=2, five with t=5 and six with t=10. (The
// numeric column of the supplied text was corrupted; these values are
// pinned by the paper's reported optimum L=78.43 — see DESIGN.md.)
func PaperTrueValues() []float64 {
	return []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}
}

// Experiment is one Table 2 scenario: computer C1 bids
// BidFactor*t1 and executes at ExecFactor*t1 while everyone else is
// truthful.
type Experiment struct {
	// Name is the paper's experiment label (True1, ..., Low2).
	Name string
	// BidFactor scales C1's bid.
	BidFactor float64
	// ExecFactor scales C1's execution value.
	ExecFactor float64
	// Note describes the scenario in the paper's terms.
	Note string
}

// Table2Experiments returns the paper's eight experiments. True2's
// execution factor is reconstructed as 2 (the factor every other
// "slower" scenario uses); High4's as 4 (one step slower than its
// bid); see DESIGN.md for the derivation.
func Table2Experiments() []Experiment {
	return []Experiment{
		{Name: "True1", BidFactor: 1, ExecFactor: 1, Note: "truthful bid, full capacity"},
		{Name: "True2", BidFactor: 1, ExecFactor: 2, Note: "truthful bid, slower execution"},
		{Name: "High1", BidFactor: 3, ExecFactor: 3, Note: "high bid, executes at bid"},
		{Name: "High2", BidFactor: 3, ExecFactor: 1, Note: "high bid, full capacity"},
		{Name: "High3", BidFactor: 3, ExecFactor: 2, Note: "high bid, faster than bid"},
		{Name: "High4", BidFactor: 3, ExecFactor: 4, Note: "high bid, slower than bid"},
		{Name: "Low1", BidFactor: 0.5, ExecFactor: 1, Note: "low bid, full capacity"},
		{Name: "Low2", BidFactor: 0.5, ExecFactor: 2, Note: "low bid, slower execution"},
	}
}

// ExperimentByName looks up a Table 2 experiment.
func ExperimentByName(name string) (Experiment, error) {
	for _, e := range Table2Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// Agents returns the paper population with C1 playing the experiment's
// deviation.
func (e Experiment) Agents() []mech.Agent {
	agents := mech.Truthful(PaperTrueValues())
	agents[0].Bid = e.BidFactor * agents[0].True
	agents[0].Exec = e.ExecFactor * agents[0].True
	return agents
}

// Run executes the paper's verification mechanism on the experiment.
func (e Experiment) Run() (*mech.Outcome, error) {
	return mech.CompensationBonus{}.Run(e.Agents(), PaperRate)
}

// Fig1Row is one bar of Figure 1 (performance degradation).
type Fig1Row struct {
	// Experiment is the scenario name.
	Experiment string
	// Latency is the realized total latency.
	Latency float64
	// PctIncrease is the increase over the truthful optimum, percent.
	PctIncrease float64
}

// Figure1 computes the realized total latency of every experiment.
func Figure1() ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, e := range Table2Experiments() {
		o, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		rows = append(rows, Fig1Row{
			Experiment:  e.Name,
			Latency:     o.RealLatency,
			PctIncrease: 100 * (o.RealLatency/OptimalLatency - 1),
		})
	}
	return rows, nil
}

// Fig2Row is one group of Figure 2 (payment and utility of C1).
type Fig2Row struct {
	// Experiment is the scenario name.
	Experiment string
	// Payment and Utility are C1's payment and utility.
	Payment, Utility float64
}

// Figure2 computes C1's payment and utility in every experiment.
func Figure2() ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, e := range Table2Experiments() {
		o, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		rows = append(rows, Fig2Row{Experiment: e.Name, Payment: o.Payment[0], Utility: o.Utility[0]})
	}
	return rows, nil
}

// PerAgentRow is one group of Figures 3-5 (payment and utility per
// computer in a fixed experiment).
type PerAgentRow struct {
	// Computer is the agent name (C1..C16).
	Computer string
	// Payment and Utility are the agent's payment and utility.
	Payment, Utility float64
}

// perAgent computes Figures 3-5 data for the named experiment.
func perAgent(name string) ([]PerAgentRow, error) {
	e, err := ExperimentByName(name)
	if err != nil {
		return nil, err
	}
	o, err := e.Run()
	if err != nil {
		return nil, err
	}
	agents := e.Agents()
	rows := make([]PerAgentRow, len(agents))
	for i, a := range agents {
		rows[i] = PerAgentRow{Computer: a.Name, Payment: o.Payment[i], Utility: o.Utility[i]}
	}
	return rows, nil
}

// Figure3 is the per-computer payment structure in True1.
func Figure3() ([]PerAgentRow, error) { return perAgent("True1") }

// Figure4 is the per-computer payment structure in High1.
func Figure4() ([]PerAgentRow, error) { return perAgent("High1") }

// Figure5 is the per-computer payment structure in Low1.
func Figure5() ([]PerAgentRow, error) { return perAgent("Low1") }

// Fig6Row is one group of Figure 6 (payment structure / frugality).
type Fig6Row struct {
	// Experiment is the scenario name.
	Experiment string
	// TotalValuation is sum_i |V_i|.
	TotalValuation float64
	// TotalCompensation and TotalBonus decompose the total payment.
	TotalCompensation, TotalBonus float64
	// TotalPayment is the mechanism's total outlay.
	TotalPayment float64
	// Ratio is TotalPayment / TotalValuation, the frugality measure.
	Ratio float64
}

// Figure6 computes the payment structure of every experiment.
func Figure6() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, e := range Table2Experiments() {
		o, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		row := Fig6Row{
			Experiment:     e.Name,
			TotalValuation: o.TotalValuation(),
			TotalPayment:   o.TotalPayment(),
			Ratio:          o.FrugalityRatio(),
		}
		row.TotalCompensation = numeric.Sum(o.Compensation)
		row.TotalBonus = numeric.Sum(o.Bonus)
		rows = append(rows, row)
	}
	return rows, nil
}

// DESRow compares the analytic realized latency of one experiment with
// a discrete-event simulation of the same scenario.
type DESRow struct {
	// Experiment is the scenario name.
	Experiment string
	// Analytic is the flow-model total latency (what the paper
	// computes).
	Analytic float64
	// Simulated is the DES measurement.
	Simulated float64
	// RelErr is |Simulated-Analytic|/Analytic.
	RelErr float64
}

// DESCrossCheck simulates every Table 2 experiment on the
// discrete-event cluster with the given number of jobs and compares
// against the analytic latencies of Figure 1. The eight simulations
// are independent and run in parallel, each on its own deterministic
// stream derived from (seed, experiment index), so results do not
// depend on scheduling.
func DESCrossCheck(jobs int, seed uint64) ([]DESRow, error) {
	if jobs <= 0 {
		jobs = 100000
	}
	exps := Table2Experiments()
	return parallel.MapErr(len(exps), 0, func(k int) (DESRow, error) {
		e := exps[k]
		rng := numeric.NewRand(seed ^ (0x9e3779b97f4a7c15 * uint64(k+1)))
		o, err := e.Run()
		if err != nil {
			return DESRow{}, err
		}
		agents := e.Agents()
		nodes, err := cluster.FlowNodes(mech.Execs(agents), o.Alloc, rng.Split())
		if err != nil {
			return DESRow{}, err
		}
		res, err := cluster.Run(cluster.Config{
			Nodes:  nodes,
			Probs:  cluster.Probs(o.Alloc, PaperRate),
			Source: workload.NewPoisson(PaperRate, jobs, nil, rng.Split()),
			RNG:    rng.Split(),
		})
		if err != nil {
			return DESRow{}, fmt.Errorf("experiments: DES %s: %w", e.Name, err)
		}
		return DESRow{
			Experiment: e.Name,
			Analytic:   o.RealLatency,
			Simulated:  res.TotalLatencyRate,
			RelErr:     stats.RelErr(res.TotalLatencyRate, o.RealLatency),
		}, nil
	})
}
