package experiments

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestRateSweepScaling(t *testing.T) {
	rows, err := RateSweep([]float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Latency scales as R^2: doubling R quadruples L.
	if e := stats.RelErr(rows[1].OptLatency, 4*rows[0].OptLatency); e > 1e-9 {
		t.Errorf("R^2 scaling broken: %v vs %v", rows[1].OptLatency, 4*rows[0].OptLatency)
	}
	if e := stats.RelErr(rows[2].OptLatency, 4*rows[1].OptLatency); e > 1e-9 {
		t.Errorf("R^2 scaling broken at 40")
	}
	// Frugality is NOT scale-free under the paper's per-job valuation
	// convention: compensation scales as R while bonuses scale as R^2,
	// so (ratio - 1) grows linearly in R. Doubling R doubles it.
	if e := stats.RelErr(rows[1].Frugality-1, 2*(rows[0].Frugality-1)); e > 1e-9 {
		t.Errorf("frugality scaling law broken: ratio-1 at R=20 is %v, want 2x %v",
			rows[1].Frugality-1, rows[0].Frugality-1)
	}
	if e := stats.RelErr(rows[2].Frugality-1, 2*(rows[1].Frugality-1)); e > 1e-9 {
		t.Errorf("frugality scaling law broken at R=40")
	}
	// Low2 stays unprofitable at every rate.
	for _, r := range rows {
		if r.C1Low2Utility >= r.C1TruthUtility {
			t.Errorf("R=%v: Low2 profitable", r.Rate)
		}
		if r.Low2Latency <= r.OptLatency {
			t.Errorf("R=%v: Low2 did not degrade the system", r.Rate)
		}
	}
}

func TestRateSweepValidation(t *testing.T) {
	if _, err := RateSweep([]float64{-1}); err == nil {
		t.Error("expected error for negative rate")
	}
}

func TestSizeSweep(t *testing.T) {
	rows, err := SizeSweep([]int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Voluntary participation at every size.
		if r.MinUtility < 0 {
			t.Errorf("n=%d: min utility %v negative", r.N, r.MinUtility)
		}
		// Frugality stays in a sane band.
		if r.Frugality < 1 || r.Frugality > 5 {
			t.Errorf("n=%d: frugality %v out of band", r.N, r.Frugality)
		}
	}
	// The n=16 row matches the paper configuration's ratio order of
	// magnitude.
	if math.Abs(rows[1].Frugality-2.42) > 0.2 {
		t.Errorf("n=16 frugality = %v, expected ~2.42", rows[1].Frugality)
	}
	if _, err := SizeSweep([]int{1}); err == nil {
		t.Error("expected error for n=1")
	}
}

func TestEstimatorConvergenceImproves(t *testing.T) {
	rows, err := EstimatorConvergence([]int{2000, 50000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].MaxEstErr >= rows[0].MaxEstErr {
		t.Errorf("estimation error did not shrink: %v -> %v",
			rows[0].MaxEstErr, rows[1].MaxEstErr)
	}
	if rows[1].MaxEstErr > 0.1 {
		t.Errorf("estimate error at 50k jobs = %v, want < 0.1", rows[1].MaxEstErr)
	}
	if rows[1].FalseFlags != 0 {
		t.Errorf("%d false flags at 50k jobs", rows[1].FalseFlags)
	}
}

func TestDeviationSurfaceNonPositiveGains(t *testing.T) {
	rows, err := DeviationSurface(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 32 {
		t.Fatalf("rows = %d, want 8*4", len(rows))
	}
	for _, r := range rows {
		if r.Loss < -1e-9 {
			t.Errorf("profitable deviation at bid %v exec %v: loss %v",
				r.BidFactor, r.ExecFactor, r.Loss)
		}
		// The truthful cell has zero loss.
		if r.BidFactor == 1 && r.ExecFactor == 1 && math.Abs(r.Loss) > 1e-9 {
			t.Errorf("truthful cell loss %v", r.Loss)
		}
	}
}

func TestExtendedArtifactsRender(t *testing.T) {
	for _, a := range ExtendedArtifacts() {
		tab, err := a.Table()
		if err != nil {
			t.Errorf("%s: %v", a.ID, err)
			continue
		}
		if tab.Rows() == 0 {
			t.Errorf("%s empty", a.ID)
		}
		if a.Line != nil {
			lc, err := a.Line()
			if err != nil {
				t.Errorf("%s line: %v", a.ID, err)
				continue
			}
			var buf bytes.Buffer
			if err := lc.WriteSVG(&buf); err != nil {
				t.Errorf("%s line svg: %v", a.ID, err)
			}
		}
	}
}
