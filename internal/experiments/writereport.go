package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteReport regenerates every artifact — the paper's tables and
// figures, the DES cross-check, the extension experiments and the
// claim checklist — and writes them under dir as .txt, .csv and (where
// a chart exists) .svg files. It returns the list of files written.
func WriteReport(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	save := func(name string, write func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("experiments: writing %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	all := append(Artifacts(), ExtendedArtifacts()...)
	for _, a := range all {
		tab, err := a.Table()
		if err != nil {
			return written, fmt.Errorf("experiments: %s: %w", a.ID, err)
		}
		if err := save(a.ID+".txt", func(f io.Writer) error {
			tab.Render(f)
			return nil
		}); err != nil {
			return written, err
		}
		if err := save(a.ID+".csv", tab.WriteCSV); err != nil {
			return written, err
		}
		if a.Chart != nil {
			ch, err := a.Chart()
			if err != nil {
				return written, fmt.Errorf("experiments: %s chart: %w", a.ID, err)
			}
			if err := save(a.ID+".svg", ch.WriteSVG); err != nil {
				return written, err
			}
		}
		if a.Line != nil {
			lc, err := a.Line()
			if err != nil {
				return written, fmt.Errorf("experiments: %s line: %w", a.ID, err)
			}
			if err := save(a.ID+"-line.svg", lc.WriteSVG); err != nil {
				return written, err
			}
		}
		if a.Heat != nil {
			hm, err := a.Heat()
			if err != nil {
				return written, fmt.Errorf("experiments: %s heat: %w", a.ID, err)
			}
			if err := save(a.ID+"-heat.svg", hm.WriteSVG); err != nil {
				return written, err
			}
		}
	}

	checksTab, err := ChecksTable()
	if err != nil {
		return written, err
	}
	if err := save("checks.txt", func(f io.Writer) error {
		checksTab.Render(f)
		return nil
	}); err != nil {
		return written, err
	}
	if err := save("checks.csv", checksTab.WriteCSV); err != nil {
		return written, err
	}
	return written, nil
}
