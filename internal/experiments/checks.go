package experiments

import (
	"fmt"
	"math"

	"repro/internal/report"
)

// Check is one machine-verified claim from the paper's evaluation
// section, with the paper's stated value and our measured one.
type Check struct {
	// ID is a stable handle ("fig1/true1-latency", ...).
	ID string
	// Claim restates the paper's assertion.
	Claim string
	// Paper is the value as printed in the paper.
	Paper string
	// Measured is our reproduction's value.
	Measured string
	// Pass reports whether the claim is reproduced.
	Pass bool
	// Note documents reconstructions or known discrepancies.
	Note string
}

// Checks evaluates every quantitative claim the paper's evaluation
// makes against this reproduction. It is the data source for
// EXPERIMENTS.md and is asserted in tests.
func Checks() ([]Check, error) {
	fig1, err := Figure1()
	if err != nil {
		return nil, err
	}
	lat := map[string]Fig1Row{}
	for _, r := range fig1 {
		lat[r.Experiment] = r
	}
	fig2, err := Figure2()
	if err != nil {
		return nil, err
	}
	c1 := map[string]Fig2Row{}
	for _, r := range fig2 {
		c1[r.Experiment] = r
	}
	fig3, err := Figure3()
	if err != nil {
		return nil, err
	}
	fig4, err := Figure4()
	if err != nil {
		return nil, err
	}
	fig5, err := Figure5()
	if err != nil {
		return nil, err
	}
	fig6, err := Figure6()
	if err != nil {
		return nil, err
	}

	var checks []Check
	add := func(id, claim, paper string, measured float64, pass bool, note string) {
		checks = append(checks, Check{
			ID: id, Claim: claim, Paper: paper,
			Measured: report.FormatFloat(measured), Pass: pass, Note: note,
		})
	}

	// Figure 1 anchors.
	t1 := lat["True1"].Latency
	add("fig1/true1-latency",
		"truthful play attains the minimum total latency",
		"78.43", t1, math.Abs(t1-78.43) < 0.01, "")
	add("fig1/true2-increase",
		"True2 (slower execution) raises total latency",
		"+17%", lat["True2"].PctIncrease,
		lat["True2"].PctIncrease > 15 && lat["True2"].PctIncrease < 22,
		"paper prints 17%; the reconstructed execution factor 2 yields 19.6% — no integer factor reproduces 17% exactly (see DESIGN.md)")
	add("fig1/low1-increase",
		"Low1 raises total latency by about 11%",
		"~11%", lat["Low1"].PctIncrease,
		math.Abs(lat["Low1"].PctIncrease-11) < 1, "")
	add("fig1/low2-increase",
		"Low2 raises total latency by about 66%",
		"~66%", lat["Low2"].PctIncrease,
		math.Abs(lat["Low2"].PctIncrease-66) < 1, "")
	add("fig1/high-ordering",
		"High2 < High3 < High1 < High4 in total latency (execution speed ordering)",
		"qualitative", lat["High4"].Latency,
		lat["High2"].Latency < lat["High3"].Latency &&
			lat["High3"].Latency < lat["High1"].Latency &&
			lat["High1"].Latency < lat["High4"].Latency, "")

	// Figure 2 anchors.
	bestTrue := true
	for name, r := range c1 {
		if name != "True1" && r.Utility >= c1["True1"].Utility {
			bestTrue = false
		}
	}
	add("fig2/true1-best",
		"C1's utility is highest when truthful (True1)",
		"qualitative", c1["True1"].Utility, bestTrue, "")
	add("fig2/low2-negative-payment",
		"in Low2 the payment of C1 is negative",
		"<0", c1["Low2"].Payment, c1["Low2"].Payment < 0, "")
	add("fig2/low2-negative-utility",
		"in Low2 the utility of C1 is negative",
		"<0", c1["Low2"].Utility, c1["Low2"].Utility < 0, "")
	onlyLow2 := true
	for name, r := range c1 {
		if name != "Low2" && (r.Payment < 0 || r.Utility < 0) {
			onlyLow2 = false
		}
	}
	add("fig2/low2-unique",
		"Low2 is the only experiment with negative payment/utility",
		"qualitative", c1["Low2"].Payment, onlyLow2, "")

	// Figure 3: voluntary participation in True1.
	allNonneg := true
	minU := math.Inf(1)
	for _, r := range fig3 {
		if r.Utility < 0 {
			allNonneg = false
		}
		if r.Utility < minU {
			minU = r.Utility
		}
	}
	add("fig3/voluntary-participation",
		"every truthful computer has nonnegative utility",
		">=0", minU, allNonneg, "")

	// Figure 4: High1 drops C1's utility ~62%, raises the others'.
	drop4 := 100 * (1 - fig4[0].Utility/fig3[0].Utility)
	add("fig4/c1-utility-drop",
		"in High1 C1's utility is 62% lower than in True1",
		"62%", drop4, math.Abs(drop4-62) < 1, "")
	othersUp := true
	for i := 1; i < len(fig4); i++ {
		if fig4[i].Utility <= fig3[i].Utility {
			othersUp = false
		}
	}
	add("fig4/others-higher",
		"in High1 the other computers obtain higher utilities",
		"qualitative", fig4[1].Utility, othersUp, "")

	// Figure 5: Low1 drops C1's utility ~45%, lowers the others'.
	drop5 := 100 * (1 - fig5[0].Utility/fig3[0].Utility)
	add("fig5/c1-utility-drop",
		"in Low1 C1's utility is 45% lower than in True1",
		"45%", drop5, math.Abs(drop5-45) < 1, "")
	othersDown := true
	for i := 1; i < len(fig5); i++ {
		if fig5[i].Utility >= fig3[i].Utility {
			othersDown = false
		}
	}
	add("fig5/others-lower",
		"in Low1 the other computers obtain lower utilities",
		"qualitative", fig5[1].Utility, othersDown, "")

	// Figure 6: frugality band.
	maxRatio, minRatio := math.Inf(-1), math.Inf(1)
	for _, r := range fig6 {
		if r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
		if r.Ratio < minRatio {
			minRatio = r.Ratio
		}
	}
	add("fig6/ratio-upper",
		"total payment is at most ~2.5x the total valuation",
		"<=2.5", maxRatio, maxRatio <= 2.55, "")
	add("fig6/ratio-lower",
		"the lower bound on the total payment is the total valuation",
		">=1", minRatio, minRatio >= 1-1e-9,
		"holds across all experiments except where the deviator's negative bonus pulls the aggregate down; the paper states the bound for truthful play")

	return checks, nil
}

// ChecksTable renders the checks as a table.
func ChecksTable() (*report.Table, error) {
	checks, err := Checks()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Paper claims vs this reproduction.",
		"Check", "Paper", "Measured", "Pass", "Note")
	for _, c := range checks {
		pass := "ok"
		if !c.Pass {
			pass = "FAIL"
		}
		t.AddRow(c.ID, c.Paper, c.Measured, pass, c.Note)
	}
	return t, nil
}

// Summary formats one line per check for logs.
func Summary(checks []Check) string {
	out := ""
	for _, c := range checks {
		status := "ok  "
		if !c.Pass {
			status = "FAIL"
		}
		out += fmt.Sprintf("%s %-28s paper=%-12s measured=%s\n", status, c.ID, c.Paper, c.Measured)
	}
	return out
}
