package experiments

import (
	"reflect"
	"testing"
)

func TestReplicationSweep(t *testing.T) {
	rows, err := ReplicationSweep(4, 6, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.MeanLatency < r.MeanOpt {
			t.Errorf("rep %d: mean latency %g below optimum %g", r.Rep, r.MeanLatency, r.MeanOpt)
		}
		if r.MeanPayment <= 0 {
			t.Errorf("rep %d: non-positive mean payment %g", r.Rep, r.MeanPayment)
		}
	}
	// Replications see independent observation noise: the estimated
	// payments must not all coincide.
	allSame := true
	for _, r := range rows[1:] {
		if r.MeanPayment != rows[0].MeanPayment {
			allSame = false
		}
	}
	if allSame {
		t.Error("all replications produced identical mean payments; seeds are not being derived")
	}
	// And the sweep itself is deterministic.
	again, err := ReplicationSweep(4, 6, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Error("sweep is not reproducible for a fixed seed")
	}
}

func TestReplicationSweepRejectsBadCounts(t *testing.T) {
	if _, err := ReplicationSweep(0, 6, 1); err == nil {
		t.Error("zero replications accepted")
	}
	if _, err := ReplicationSweep(2, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
}
