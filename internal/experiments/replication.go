package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/rounds"
)

// ReplicationRow is one replication of the Monte Carlo round sweep.
type ReplicationRow struct {
	// Rep is the replication index.
	Rep int
	// MeanLatency and MeanOpt are per-round means of the realized
	// total latency and the active-set optimum.
	MeanLatency, MeanOpt float64
	// RegretPct is the mean percentage gap between them.
	RegretPct float64
	// MeanPayment is the per-round mean of the total estimated
	// payment (the seed-sensitive column: it depends on the sampled
	// execution observations).
	MeanPayment float64
	// Flags counts verification flags across the replication;
	// Suspensions counts suspension events.
	Flags, Suspensions int
	// DropoutRounds counts rounds degraded by unresponsive computers.
	DropoutRounds int
}

// ReplicationSweep fans reps independent replications of a faulty
// multi-round system — the paper population plus a persistent deviator,
// message drops and a reputation policy — over the parallel round
// harness and summarizes each replication. Seeds are derived from seed,
// and the result is deterministic for any worker count.
func ReplicationSweep(reps, roundsPerRep int, seed uint64) ([]ReplicationRow, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: invalid replication count %d", reps)
	}
	if roundsPerRep <= 0 {
		return nil, fmt.Errorf("experiments: invalid round count %d", roundsPerRep)
	}
	pop := make([]rounds.ComputerSpec, 16)
	for i, tv := range PaperTrueValues() {
		pop[i] = rounds.ComputerSpec{True: tv}
	}
	pop[0].Strategy = protocol.FactorStrategy{BidFactor: 1, ExecFactor: 2}
	results, err := rounds.RunReplications(rounds.Replications{
		Base: rounds.Config{
			Computers:    pop,
			Rate:         PaperRate,
			Rounds:       roundsPerRep,
			JobsPerRound: 2000,
			Seed:         seed,
			Policy:       rounds.Policy{Strikes: 2, BanRounds: 3, ForgiveAfter: 10},
			Faults:       faults.New(seed, faults.Drop(0.03)),
			MaxRetries:   1,
		},
		Count: reps,
		// Seeds drive the estimation sampling; the fault plan carries
		// its own seed, so each replication also reseeds the plan or
		// every replication would see the same drop schedule.
		Vary: func(rep int, cfg *rounds.Config) {
			cfg.Faults = faults.Reseed(cfg.Faults, uint64(rep)*0xbf58476d1ce4e5b9)
		},
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ReplicationRow, len(results))
	for rep, res := range results {
		row := ReplicationRow{Rep: rep}
		for _, rec := range res.Records {
			row.MeanLatency += rec.Latency
			row.MeanOpt += rec.OptLatency
			row.MeanPayment += rec.TotalPayment
			row.Flags += len(rec.Flagged)
			if len(rec.Dropouts) > 0 {
				row.DropoutRounds++
			}
		}
		n := float64(len(res.Records))
		row.MeanLatency /= n
		row.MeanOpt /= n
		row.MeanPayment /= n
		row.RegretPct = 100 * (row.MeanLatency - row.MeanOpt) / row.MeanOpt
		for _, s := range res.Suspensions {
			row.Suspensions += s
		}
		rows[rep] = row
	}
	return rows, nil
}

func replicationTable() (*report.Table, error) {
	rows, err := ReplicationSweep(8, 12, 2026)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Monte Carlo replication sweep (deviator + 3% message drop, 8 replications x 12 rounds).",
		"Replication", "Mean latency", "Mean optimum", "Regret %", "Mean payment",
		"Flags", "Suspensions", "Dropout rounds")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Rep),
			report.FormatFloat(r.MeanLatency),
			report.FormatFloat(r.MeanOpt),
			fmt.Sprintf("%.2f", r.RegretPct),
			report.FormatFloat(r.MeanPayment),
			fmt.Sprintf("%d", r.Flags),
			fmt.Sprintf("%d", r.Suspensions),
			fmt.Sprintf("%d", r.DropoutRounds),
		)
	}
	return t, nil
}
