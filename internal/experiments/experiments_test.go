package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPaperConfiguration(t *testing.T) {
	ts := PaperTrueValues()
	if len(ts) != 16 {
		t.Fatalf("n = %d, want 16", len(ts))
	}
	counts := map[float64]int{}
	for _, v := range ts {
		counts[v]++
	}
	want := map[float64]int{1: 2, 2: 3, 5: 5, 10: 6}
	for v, c := range want {
		if counts[v] != c {
			t.Errorf("%d computers with t=%v, want %d", counts[v], v, c)
		}
	}
	// The pinning identity: L* = 400/5.1 = 78.43.
	if math.Abs(OptimalLatency-78.431372549) > 1e-6 {
		t.Errorf("OptimalLatency = %v", OptimalLatency)
	}
}

func TestTable2HasEightExperiments(t *testing.T) {
	exps := Table2Experiments()
	if len(exps) != 8 {
		t.Fatalf("got %d experiments", len(exps))
	}
	names := []string{"True1", "True2", "High1", "High2", "High3", "High4", "Low1", "Low2"}
	for i, e := range exps {
		if e.Name != names[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.Name, names[i])
		}
	}
}

func TestExperimentByName(t *testing.T) {
	e, err := ExperimentByName("Low2")
	if err != nil {
		t.Fatal(err)
	}
	if e.BidFactor != 0.5 || e.ExecFactor != 2 {
		t.Errorf("Low2 = %+v", e)
	}
	if _, err := ExperimentByName("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestFigure1Anchors(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig1Row{}
	for _, r := range rows {
		byName[r.Experiment] = r
	}
	if math.Abs(byName["True1"].Latency-78.4313725) > 1e-4 {
		t.Errorf("True1 latency = %v", byName["True1"].Latency)
	}
	if math.Abs(byName["Low1"].PctIncrease-11) > 1 {
		t.Errorf("Low1 increase = %v%%, want ~11%%", byName["Low1"].PctIncrease)
	}
	if math.Abs(byName["Low2"].PctIncrease-66) > 1 {
		t.Errorf("Low2 increase = %v%%, want ~66%%", byName["Low2"].PctIncrease)
	}
	// Every deviation degrades the system.
	for name, r := range byName {
		if name != "True1" && r.Latency <= byName["True1"].Latency {
			t.Errorf("%s latency %v not above optimum", name, r.Latency)
		}
	}
}

func TestFigure2Anchors(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Experiment] = r
	}
	if byName["Low2"].Payment >= 0 || byName["Low2"].Utility >= 0 {
		t.Errorf("Low2 payment/utility = %v/%v, want both negative",
			byName["Low2"].Payment, byName["Low2"].Utility)
	}
	for name, r := range byName {
		if name != "True1" && r.Utility >= byName["True1"].Utility {
			t.Errorf("%s utility %v not below True1", name, r.Utility)
		}
	}
}

func TestFigures3to5Shapes(t *testing.T) {
	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) != 16 || len(f4) != 16 || len(f5) != 16 {
		t.Fatal("wrong row counts")
	}
	// The paper's percentages.
	drop4 := 1 - f4[0].Utility/f3[0].Utility
	if math.Abs(drop4-0.62) > 0.01 {
		t.Errorf("High1 C1 utility drop = %v, want ~0.62", drop4)
	}
	drop5 := 1 - f5[0].Utility/f3[0].Utility
	if math.Abs(drop5-0.45) > 0.01 {
		t.Errorf("Low1 C1 utility drop = %v, want ~0.45", drop5)
	}
}

func TestFigure6Frugality(t *testing.T) {
	rows, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio > 2.55 {
			t.Errorf("%s frugality ratio %v exceeds 2.5", r.Experiment, r.Ratio)
		}
		if r.Ratio < 1-1e-9 {
			t.Errorf("%s frugality ratio %v below 1", r.Experiment, r.Ratio)
		}
		if math.Abs(r.TotalPayment-(r.TotalCompensation+r.TotalBonus)) > 1e-6 {
			t.Errorf("%s payment decomposition broken", r.Experiment)
		}
	}
	// The bound is nearly attained in True1 (ratio ~2.42).
	if rows[0].Ratio < 2.3 {
		t.Errorf("True1 ratio = %v, expected ~2.42", rows[0].Ratio)
	}
}

func TestDESCrossCheck(t *testing.T) {
	rows, err := DESCrossCheck(60000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RelErr > 0.05 {
			t.Errorf("%s: simulated %v vs analytic %v (rel err %v)",
				r.Experiment, r.Simulated, r.Analytic, r.RelErr)
		}
	}
}

func TestAllChecksPass(t *testing.T) {
	checks, err := Checks()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 12 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("claim not reproduced: %s (paper %s, measured %s) %s",
				c.ID, c.Paper, c.Measured, c.Note)
		}
	}
}

func TestArtifactsRender(t *testing.T) {
	for _, a := range Artifacts() {
		tab, err := a.Table()
		if err != nil {
			t.Errorf("%s table: %v", a.ID, err)
			continue
		}
		if tab.Rows() == 0 {
			t.Errorf("%s table empty", a.ID)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s renders empty", a.ID)
		}
		if err := tab.WriteCSV(&bytes.Buffer{}); err != nil {
			t.Errorf("%s csv: %v", a.ID, err)
		}
		if a.Chart != nil {
			ch, err := a.Chart()
			if err != nil {
				t.Errorf("%s chart: %v", a.ID, err)
				continue
			}
			if err := ch.Render(&bytes.Buffer{}); err != nil {
				t.Errorf("%s chart render: %v", a.ID, err)
			}
			if err := ch.WriteSVG(&bytes.Buffer{}); err != nil {
				t.Errorf("%s chart svg: %v", a.ID, err)
			}
		}
	}
}

func TestArtifactByID(t *testing.T) {
	if _, err := ArtifactByID("fig1"); err != nil {
		t.Error(err)
	}
	if _, err := ArtifactByID("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestChecksTableAndSummary(t *testing.T) {
	tab, err := ChecksTable()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "fig1/true1-latency") {
		t.Errorf("checks table missing entries:\n%s", out)
	}
	checks, err := Checks()
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(checks)
	if !strings.Contains(s, "ok") {
		t.Errorf("summary: %s", s)
	}
}
