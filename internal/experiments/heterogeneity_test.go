package experiments

import (
	"math"
	"testing"
)

func TestHeterogeneitySweepShapes(t *testing.T) {
	rows, err := HeterogeneitySweep([]float64{1, 4, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Homogeneous system: even shares, equal utilities.
	if math.Abs(rows[0].FastShare-1.0/8) > 1e-9 {
		t.Errorf("homogeneous fast share = %v, want 1/8", rows[0].FastShare)
	}
	if math.Abs(rows[0].UtilitySpread-1) > 1e-9 {
		t.Errorf("homogeneous utility spread = %v, want 1", rows[0].UtilitySpread)
	}
	// More heterogeneity concentrates load on the fastest computer and
	// spreads utilities.
	for i := 1; i < len(rows); i++ {
		if rows[i].FastShare <= rows[i-1].FastShare {
			t.Errorf("fast share did not grow with spread: %v", rows)
		}
		if rows[i].UtilitySpread <= rows[i-1].UtilitySpread {
			t.Errorf("utility spread did not grow with spread: %v", rows)
		}
	}
	// The ladder anchors the fastest computer at t=1 and stretches the
	// tail slower as the spread grows, so total latency rises.
	if rows[2].OptLatency <= rows[0].OptLatency {
		t.Errorf("latency should rise as the tail gets slower: %v vs %v",
			rows[2].OptLatency, rows[0].OptLatency)
	}
}

func TestHeterogeneitySweepValidation(t *testing.T) {
	if _, err := HeterogeneitySweep([]float64{0.5}); err == nil {
		t.Error("expected error for spread < 1")
	}
}

func TestPoATableData(t *testing.T) {
	rows, err := PoATableData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PoARow{}
	for _, r := range rows {
		if r.PoA < 1-1e-9 {
			t.Errorf("%s: PoA %v below 1", r.System, r.PoA)
		}
		byName[r.System] = r
	}
	if math.Abs(byName["homogeneous x8 (t=2)"].PoA-1) > 0.01 {
		t.Errorf("homogeneous PoA = %v", byName["homogeneous x8 (t=2)"].PoA)
	}
	// The extreme pair has PoA = (1+100)(1+0.01)/4 = 25.5.
	if math.Abs(byName["extreme pair {1,100}"].PoA-25.5) > 0.5 {
		t.Errorf("extreme pair PoA = %v, want ~25.5", byName["extreme pair {1,100}"].PoA)
	}
}

func TestShapleyTableData(t *testing.T) {
	rows, err := ShapleyTableData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	var shareSum float64
	for _, r := range rows {
		shareSum += r.Shapley
		if r.Bonus <= 0 {
			t.Errorf("%s: bonus %v not positive", r.Computer, r.Bonus)
		}
	}
	// Efficiency: Shapley shares sum to the optimal latency.
	if math.Abs(shareSum-OptimalLatency) > 1e-6 {
		t.Errorf("shares sum to %v, want %v", shareSum, OptimalLatency)
	}
	// Identical computers get near-identical shares (MC noise aside).
	if math.Abs(rows[0].Shapley-rows[1].Shapley) > 0.05*math.Abs(rows[0].Shapley)+0.5 {
		t.Errorf("t=1 twins got %v and %v", rows[0].Shapley, rows[1].Shapley)
	}
}

func TestCollusionTableData(t *testing.T) {
	rows, err := CollusionTableData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The fast-pair gain is the largest; every gain is nonnegative.
	for _, r := range rows {
		if r.Gain < -1e-9 {
			t.Errorf("%s: negative gain %v", r.PairDesc, r.Gain)
		}
		if r.Gain > rows[0].Gain+1e-9 {
			t.Errorf("%s gain %v exceeds fast-pair gain %v", r.PairDesc, r.Gain, rows[0].Gain)
		}
	}
	if rows[0].Gain < 1 {
		t.Errorf("fast-pair gain = %v, expected > 1", rows[0].Gain)
	}
}
