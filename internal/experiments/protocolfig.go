package experiments

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/stats"
)

// ProtocolFigRow is Figure 2 regenerated end-to-end: C1's payment and
// utility computed from *estimated* execution values (what a real
// deployment can do), next to the analytic oracle values the paper
// assumes.
type ProtocolFigRow struct {
	// Experiment is the scenario name.
	Experiment string
	// MeasuredPayment and MeasuredUtility come from the protocol round
	// with estimation.
	MeasuredPayment, MeasuredUtility float64
	// OraclePayment and OracleUtility use the exact execution values.
	OraclePayment, OracleUtility float64
	// PaymentRelErr is the measured-vs-oracle payment error.
	PaymentRelErr float64
	// Flagged reports whether the verification step flagged C1.
	Flagged bool
}

// ProtocolFigure2 runs every Table 2 experiment through the full
// protocol (simulated execution, execution-value estimation, margin
// verification) and compares the resulting C1 payments against the
// oracle. It operationalizes the paper's verification assumption: the
// shape of Figure 2 — truth pays best, Low2 goes negative — must
// survive estimation noise.
func ProtocolFigure2(jobs int, seed uint64) ([]ProtocolFigRow, error) {
	if jobs <= 0 {
		jobs = 60000
	}
	exps := Table2Experiments()
	return parallel.MapErr(len(exps), 0, func(k int) (ProtocolFigRow, error) {
		e := exps[k]
		strategies := make([]protocol.Strategy, 16)
		strategies[0] = protocol.FactorStrategy{BidFactor: e.BidFactor, ExecFactor: e.ExecFactor}
		res, err := protocol.Run(protocol.Config{
			Trues:      PaperTrueValues(),
			Strategies: strategies,
			Rate:       PaperRate,
			Jobs:       jobs,
			Seed:       seed ^ (0xd1b54a32d192ed03 * uint64(k+1)),
		})
		if err != nil {
			return ProtocolFigRow{}, fmt.Errorf("experiments: protocol %s: %w", e.Name, err)
		}
		return ProtocolFigRow{
			Experiment:      e.Name,
			MeasuredPayment: res.Outcome.Payment[0],
			MeasuredUtility: res.Outcome.Utility[0],
			OraclePayment:   res.Oracle.Payment[0],
			OracleUtility:   res.Oracle.Utility[0],
			PaymentRelErr:   stats.RelErr(res.Outcome.Payment[0], res.Oracle.Payment[0]),
			Flagged:         res.Verdicts[0].Deviating,
		}, nil
	})
}

func protocolFigTable() (*report.Table, error) {
	rows, err := ProtocolFigure2(60000, 2026)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Figure 2 regenerated end-to-end (payments from estimated execution values, 60k jobs).",
		"Experiment", "Measured payment", "Oracle payment", "Rel err",
		"Measured utility", "Oracle utility", "C1 flagged")
	for _, r := range rows {
		flagged := ""
		if r.Flagged {
			flagged = "yes"
		}
		t.AddRow(r.Experiment,
			report.FormatFloat(r.MeasuredPayment),
			report.FormatFloat(r.OraclePayment),
			report.FormatFloat(r.PaymentRelErr),
			report.FormatFloat(r.MeasuredUtility),
			report.FormatFloat(r.OracleUtility),
			flagged)
	}
	return t, nil
}
