package experiments

import (
	"fmt"

	"repro/internal/coop"
	"repro/internal/mech"
	"repro/internal/report"
)

// ShapleyRow compares cooperative and noncooperative attributions for
// one computer of the paper system.
type ShapleyRow struct {
	// Computer is the agent label.
	Computer string
	// True is its latency parameter.
	True float64
	// Shapley is its Shapley cost share in the latency cost game.
	Shapley float64
	// Bonus is the mechanism's bonus (its last-position marginal
	// latency reduction).
	Bonus float64
}

// ShapleyTableData computes the cooperative-game attribution of the
// paper system's optimal latency and sets it against the mechanism's
// bonuses. The two answer different questions — "what does computer
// i's presence cost on average over join orders" vs "what does it
// contribute joining last" — and the table shows how far apart they
// land.
func ShapleyTableData() ([]ShapleyRow, error) {
	ts := PaperTrueValues()
	g, err := coop.NewCostGame(ts, PaperRate)
	if err != nil {
		return nil, err
	}
	shares, err := g.ShapleyMonteCarlo(100000, 2026)
	if err != nil {
		return nil, err
	}
	o, err := mech.CompensationBonus{}.Run(mech.Truthful(ts), PaperRate)
	if err != nil {
		return nil, err
	}
	rows := make([]ShapleyRow, len(ts))
	for i := range ts {
		rows[i] = ShapleyRow{
			Computer: fmt.Sprintf("C%d", i+1),
			True:     ts[i],
			Shapley:  shares[i],
			Bonus:    o.Bonus[i],
		}
	}
	return rows, nil
}

func shapleyTable() (*report.Table, error) {
	rows, err := ShapleyTableData()
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Cooperative vs noncooperative attribution (paper system; Shapley by 100k-permutation sampling).",
		"Computer", "t", "Shapley cost share", "Mechanism bonus")
	for _, r := range rows {
		t.AddFloats(r.Computer, r.True, r.Shapley, r.Bonus)
	}
	return t, nil
}
