package experiments

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/mech"
	"repro/internal/parallel"
	"repro/internal/report"
)

// HeterogeneityRow is one point of the speed-spread sweep.
type HeterogeneityRow struct {
	// Spread is the ratio t_max/t_min of the configuration.
	Spread float64
	// OptLatency is the truthful optimum.
	OptLatency float64
	// Frugality is the payment/valuation ratio.
	Frugality float64
	// FastShare is the fraction of load carried by the fastest
	// computer.
	FastShare float64
	// UtilitySpread is the ratio of the largest to the smallest
	// truthful utility.
	UtilitySpread float64
}

// HeterogeneitySweep evaluates 8-computer systems whose speeds form a
// geometric ladder from 1 to the given spread, at a fixed rate chosen
// so total work per computer stays comparable. It probes how speed
// diversity shapes the payment structure: more heterogeneous systems
// concentrate both load and bonus on the fast computers.
func HeterogeneitySweep(spreads []float64) ([]HeterogeneityRow, error) {
	if len(spreads) == 0 {
		spreads = []float64{1, 2, 4, 10, 25, 100}
	}
	const n = 8
	const rate = 10.0
	eng := mech.NewEngine(mech.CompensationBonus{})
	var rows []HeterogeneityRow
	for _, spread := range spreads {
		if spread < 1 {
			return nil, fmt.Errorf("experiments: invalid spread %g", spread)
		}
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = math.Pow(spread, float64(i)/float64(n-1))
		}
		o, err := eng.Run(mech.Truthful(ts), rate)
		if err != nil {
			return nil, err
		}
		row := HeterogeneityRow{
			Spread:     spread,
			OptLatency: o.RealLatency,
			Frugality:  o.FrugalityRatio(),
			FastShare:  o.Alloc[0] / rate,
		}
		minU, maxU := math.Inf(1), math.Inf(-1)
		for _, u := range o.Utility {
			if u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
		if minU > 0 {
			row.UtilitySpread = maxU / minU
		} else {
			row.UtilitySpread = math.Inf(1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CollusionRow is one entry of the pairwise-collusion table.
type CollusionRow struct {
	// PairDesc names the colluding pair.
	PairDesc string
	// TruthJoint and BestJoint are the combined utilities.
	TruthJoint, BestJoint float64
	// Gain is the collusion gain.
	Gain float64
}

// CollusionTableData measures pairwise collusion gains on the paper
// system for representative pairs — the extension experiment behind
// the "not collusion-proof" finding in DESIGN.md.
func CollusionTableData() ([]CollusionRow, error) {
	pairs := []struct {
		i, j int
		desc string
	}{
		{0, 1, "C1+C2 (both t=1)"},
		{0, 2, "C1+C3 (t=1, t=2)"},
		{0, 5, "C1+C6 (t=1, t=5)"},
		{0, 15, "C1+C16 (t=1, t=10)"},
		{5, 6, "C6+C7 (both t=5)"},
		{10, 11, "C11+C12 (both t=10)"},
	}
	rows, err := parallel.MapErr(len(pairs), 0, func(k int) (CollusionRow, error) {
		p := pairs[k]
		rep, err := game.Collusion(mech.CompensationBonus{}, PaperTrueValues(), PaperRate,
			p.i, p.j, game.DefaultGrid())
		if err != nil {
			return CollusionRow{}, err
		}
		return CollusionRow{
			PairDesc:   p.desc,
			TruthJoint: rep.TruthJointUtility,
			BestJoint:  rep.BestJointUtility,
			Gain:       rep.Gain,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PoARow is one entry of the price-of-anarchy table.
type PoARow struct {
	// System describes the configuration.
	System string
	// OptLatency and NashLatency compare coordination vs anarchy.
	OptLatency, NashLatency float64
	// PoA is their ratio.
	PoA float64
}

// PoATableData computes the price of anarchy of the unpriced bidding
// game for several configurations — quantifying the "performance
// degradation" the paper's introduction warns about, as an efficiency
// ratio rather than single scenarios.
func PoATableData() ([]PoARow, error) {
	systems := []struct {
		name string
		ts   []float64
	}{
		{"paper 16-computer system", PaperTrueValues()},
		{"homogeneous x8 (t=2)", []float64{2, 2, 2, 2, 2, 2, 2, 2}},
		{"mild ladder {1,2,3,4}", []float64{1, 2, 3, 4}},
		{"extreme pair {1,100}", []float64{1, 100}},
	}
	var rows []PoARow
	for _, s := range systems {
		capBid := 0.0
		for _, t := range s.ts {
			if t > capBid {
				capBid = t
			}
		}
		rep, err := game.PriceOfAnarchy(s.ts, 2*float64(len(s.ts)), 10*capBid)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PoARow{
			System:      s.name,
			OptLatency:  rep.OptLatency,
			NashLatency: rep.NashLatency,
			PoA:         rep.PoA,
		})
	}
	return rows, nil
}

func poaTable() (*report.Table, error) {
	rows, err := PoATableData()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Price of anarchy of the unpriced bidding game (bid cap = 10*t_max).",
		"System", "Optimal L", "Nash L", "PoA")
	for _, r := range rows {
		t.AddFloats(r.System, r.OptLatency, r.NashLatency, r.PoA)
	}
	return t, nil
}

func heterogeneityTable() (*report.Table, error) {
	rows, err := HeterogeneitySweep(nil)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Heterogeneity sweep (8 computers, geometric speed ladder, R=10).",
		"Spread (tmax/tmin)", "Optimal L", "Frugality", "Fastest share", "Utility spread")
	for _, r := range rows {
		t.AddFloats(report.FormatFloat(r.Spread), r.OptLatency, r.Frugality,
			r.FastShare, r.UtilitySpread)
	}
	return t, nil
}

func collusionTable() (*report.Table, error) {
	rows, err := CollusionTableData()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Pairwise collusion gains under the verification mechanism (paper system).",
		"Pair", "Truthful joint U", "Best joint U", "Collusion gain")
	for _, r := range rows {
		t.AddFloats(r.PairDesc, r.TruthJoint, r.BestJoint, r.Gain)
	}
	return t, nil
}
