package experiments

import (
	"fmt"

	"repro/internal/report"
)

// Artifact is one reproducible output of the paper: a table or figure
// with renderers for ASCII/CSV (Table) and ASCII/SVG (Chart).
type Artifact struct {
	// ID is the short handle ("table1", "fig2", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Table produces the tabular form of the artifact.
	Table func() (*report.Table, error)
	// Chart produces the bar-chart form, or nil for table-only
	// artifacts.
	Chart func() (*report.BarChart, error)
	// Line produces a line-chart form, or nil (used by the sweep
	// extensions).
	Line func() (*report.LineChart, error)
	// Heat produces a heatmap form, or nil (used by the deviation
	// surface).
	Heat func() (*report.Heatmap, error)
}

// Artifacts returns every table and figure of the paper plus the DES
// cross-check, in paper order.
func Artifacts() []Artifact {
	return []Artifact{
		{ID: "table1", Title: "Table 1: system configuration", Table: Table1},
		{ID: "table2", Title: "Table 2: types of experiments", Table: Table2},
		{ID: "fig1", Title: "Figure 1: performance degradation", Table: figure1Table, Chart: Figure1Chart},
		{ID: "fig2", Title: "Figure 2: payment and utility for computer C1", Table: figure2Table, Chart: Figure2Chart},
		{ID: "fig3", Title: "Figure 3: payment and utility for each computer (True1)", Table: figure3Table, Chart: Figure3Chart},
		{ID: "fig4", Title: "Figure 4: payment and utility for each computer (High1)", Table: figure4Table, Chart: Figure4Chart},
		{ID: "fig5", Title: "Figure 5: payment and utility for each computer (Low1)", Table: figure5Table, Chart: Figure5Chart},
		{ID: "fig6", Title: "Figure 6: payment structure", Table: figure6Table, Chart: Figure6Chart},
		{ID: "des", Title: "DES cross-check: analytic vs simulated total latency", Table: desTable},
	}
}

// ArtifactByID looks up an artifact among the paper artifacts and the
// extension artifacts.
func ArtifactByID(id string) (Artifact, error) {
	for _, a := range Artifacts() {
		if a.ID == id {
			return a, nil
		}
	}
	for _, a := range ExtendedArtifacts() {
		if a.ID == id {
			return a, nil
		}
	}
	return Artifact{}, fmt.Errorf("experiments: unknown artifact %q", id)
}

// Table1 renders the system configuration.
func Table1() (*report.Table, error) {
	t := report.NewTable("Table 1. System configuration.", "Computers", "True value (t)")
	t.AddRow("C1 - C2", "1")
	t.AddRow("C3 - C5", "2")
	t.AddRow("C6 - C10", "5")
	t.AddRow("C11 - C16", "10")
	return t, nil
}

// Table2 renders the experiment definitions.
func Table2() (*report.Table, error) {
	t := report.NewTable("Table 2. Types of experiments.",
		"Experiment", "Bid b1", "Execution t1~", "Characterization")
	for _, e := range Table2Experiments() {
		t.AddRow(e.Name,
			report.FormatFloat(e.BidFactor)+"*t1",
			report.FormatFloat(e.ExecFactor)+"*t1",
			e.Note)
	}
	return t, nil
}

func figure1Table() (*report.Table, error) {
	rows, err := Figure1()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 1. Performance degradation.",
		"Experiment", "Total latency", "Increase vs optimum (%)")
	for _, r := range rows {
		t.AddFloats(r.Experiment, r.Latency, r.PctIncrease)
	}
	return t, nil
}

// Figure1Chart renders Figure 1 as a bar chart.
func Figure1Chart() (*report.BarChart, error) {
	rows, err := Figure1()
	if err != nil {
		return nil, err
	}
	c := &report.BarChart{Title: "Figure 1. Performance degradation (total latency)"}
	var vals []float64
	for _, r := range rows {
		c.Labels = append(c.Labels, r.Experiment)
		vals = append(vals, r.Latency)
	}
	c.Series = []report.Series{{Name: "total latency", Values: vals}}
	return c, nil
}

func figure2Table() (*report.Table, error) {
	rows, err := Figure2()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 2. Payment and utility for computer C1.",
		"Experiment", "Payment", "Utility")
	for _, r := range rows {
		t.AddFloats(r.Experiment, r.Payment, r.Utility)
	}
	return t, nil
}

// Figure2Chart renders Figure 2 as a grouped bar chart.
func Figure2Chart() (*report.BarChart, error) {
	rows, err := Figure2()
	if err != nil {
		return nil, err
	}
	c := &report.BarChart{Title: "Figure 2. Payment and utility for computer C1"}
	var pay, util []float64
	for _, r := range rows {
		c.Labels = append(c.Labels, r.Experiment)
		pay = append(pay, r.Payment)
		util = append(util, r.Utility)
	}
	c.Series = []report.Series{
		{Name: "payment", Values: pay},
		{Name: "utility", Values: util},
	}
	return c, nil
}

func perAgentTable(title string, rows []PerAgentRow) *report.Table {
	t := report.NewTable(title, "Computer", "Payment", "Utility")
	for _, r := range rows {
		t.AddFloats(r.Computer, r.Payment, r.Utility)
	}
	return t
}

func perAgentChart(title string, rows []PerAgentRow) *report.BarChart {
	c := &report.BarChart{Title: title}
	var pay, util []float64
	for _, r := range rows {
		c.Labels = append(c.Labels, r.Computer)
		pay = append(pay, r.Payment)
		util = append(util, r.Utility)
	}
	c.Series = []report.Series{
		{Name: "payment", Values: pay},
		{Name: "utility", Values: util},
	}
	return c
}

func figure3Table() (*report.Table, error) {
	rows, err := Figure3()
	if err != nil {
		return nil, err
	}
	return perAgentTable("Figure 3. Payment and utility for each computer (True1).", rows), nil
}

// Figure3Chart renders Figure 3 as a grouped bar chart.
func Figure3Chart() (*report.BarChart, error) {
	rows, err := Figure3()
	if err != nil {
		return nil, err
	}
	return perAgentChart("Figure 3. Payment and utility for each computer (True1)", rows), nil
}

func figure4Table() (*report.Table, error) {
	rows, err := Figure4()
	if err != nil {
		return nil, err
	}
	return perAgentTable("Figure 4. Payment and utility for each computer (High1).", rows), nil
}

// Figure4Chart renders Figure 4 as a grouped bar chart.
func Figure4Chart() (*report.BarChart, error) {
	rows, err := Figure4()
	if err != nil {
		return nil, err
	}
	return perAgentChart("Figure 4. Payment and utility for each computer (High1)", rows), nil
}

func figure5Table() (*report.Table, error) {
	rows, err := Figure5()
	if err != nil {
		return nil, err
	}
	return perAgentTable("Figure 5. Payment and utility for each computer (Low1).", rows), nil
}

// Figure5Chart renders Figure 5 as a grouped bar chart.
func Figure5Chart() (*report.BarChart, error) {
	rows, err := Figure5()
	if err != nil {
		return nil, err
	}
	return perAgentChart("Figure 5. Payment and utility for each computer (Low1)", rows), nil
}

func figure6Table() (*report.Table, error) {
	rows, err := Figure6()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 6. Payment structure.",
		"Experiment", "Total valuation", "Total compensation", "Total bonus",
		"Total payment", "Payment/valuation")
	for _, r := range rows {
		t.AddFloats(r.Experiment, r.TotalValuation, r.TotalCompensation,
			r.TotalBonus, r.TotalPayment, r.Ratio)
	}
	return t, nil
}

// Figure6Chart renders Figure 6 as a grouped bar chart of total
// valuation vs total payment.
func Figure6Chart() (*report.BarChart, error) {
	rows, err := Figure6()
	if err != nil {
		return nil, err
	}
	c := &report.BarChart{Title: "Figure 6. Payment structure"}
	var val, pay []float64
	for _, r := range rows {
		c.Labels = append(c.Labels, r.Experiment)
		val = append(val, r.TotalValuation)
		pay = append(pay, r.TotalPayment)
	}
	c.Series = []report.Series{
		{Name: "total valuation", Values: val},
		{Name: "total payment", Values: pay},
	}
	return c, nil
}

func desTable() (*report.Table, error) {
	rows, err := DESCrossCheck(100000, 2026)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("DES cross-check (100k jobs).",
		"Experiment", "Analytic latency", "Simulated latency", "Relative error")
	for _, r := range rows {
		t.AddFloats(r.Experiment, r.Analytic, r.Simulated, r.RelErr)
	}
	return t, nil
}
