package experiments

import (
	"fmt"

	"repro/internal/mech"
	"repro/internal/protocol"
	"repro/internal/report"
	"repro/internal/stats"
)

// Extended experiments beyond the paper's figures: parameter sweeps
// that probe how the mechanism behaves as the arrival rate, system
// size and observation budget change. They back the "ext-*" artifacts
// and the extension benchmarks.

// RateSweepRow is one point of the arrival-rate sweep.
type RateSweepRow struct {
	// Rate is the total arrival rate R.
	Rate float64
	// OptLatency is the truthful optimum at this rate.
	OptLatency float64
	// Low2Latency is the realized latency under the Low2 deviation.
	Low2Latency float64
	// C1TruthUtility and C1Low2Utility are C1's utilities under
	// truthful play and under Low2.
	C1TruthUtility, C1Low2Utility float64
	// Frugality is the truthful payment/valuation ratio.
	Frugality float64
}

// RateSweep evaluates the paper system across arrival rates. Latencies
// scale as R^2 and the frugality ratio is scale-free, which the tests
// assert — the sweep demonstrates it rather than assumes it.
func RateSweep(rates []float64) ([]RateSweepRow, error) {
	if len(rates) == 0 {
		rates = []float64{1, 2, 5, 10, 20, 30, 40}
	}
	low2, err := ExperimentByName("Low2")
	if err != nil {
		return nil, err
	}
	// Both outcomes of each rate are read together, so the truthful and
	// deviating runs keep separate engine buffers.
	truthEng := mech.NewEngine(mech.CompensationBonus{})
	devEng := mech.NewEngine(mech.CompensationBonus{})
	var rows []RateSweepRow
	for _, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("experiments: invalid rate %g", r)
		}
		truth, err := truthEng.Run(mech.Truthful(PaperTrueValues()), r)
		if err != nil {
			return nil, err
		}
		dev, err := devEng.Run(low2.Agents(), r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RateSweepRow{
			Rate:           r,
			OptLatency:     truth.RealLatency,
			Low2Latency:    dev.RealLatency,
			C1TruthUtility: truth.Utility[0],
			C1Low2Utility:  dev.Utility[0],
			Frugality:      truth.FrugalityRatio(),
		})
	}
	return rows, nil
}

// SizeSweepRow is one point of the system-size sweep.
type SizeSweepRow struct {
	// N is the number of computers.
	N int
	// OptLatency is the truthful optimum.
	OptLatency float64
	// Frugality is the truthful payment/valuation ratio.
	Frugality float64
	// MinUtility is the smallest truthful utility (voluntary
	// participation margin).
	MinUtility float64
}

// SizeSweep evaluates the mechanism on growing systems built by
// repeating the paper's {1,2,5,10} speed ladder, at a rate that scales
// with n to keep per-computer load comparable.
func SizeSweep(sizes []int) ([]SizeSweepRow, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16, 32, 64, 128}
	}
	ladder := []float64{1, 2, 5, 10}
	eng := mech.NewEngine(mech.CompensationBonus{})
	var rows []SizeSweepRow
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: invalid size %d", n)
		}
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = ladder[i%len(ladder)]
		}
		rate := 1.25 * float64(n) // paper density: R=20 for n=16
		o, err := eng.Run(mech.Truthful(ts), rate)
		if err != nil {
			return nil, err
		}
		row := SizeSweepRow{N: n, OptLatency: o.RealLatency, Frugality: o.FrugalityRatio()}
		row.MinUtility = o.Utility[0]
		for _, u := range o.Utility {
			if u < row.MinUtility {
				row.MinUtility = u
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EstimatorRow is one point of the verification-accuracy sweep.
type EstimatorRow struct {
	// Jobs is the number of simulated jobs in the round.
	Jobs int
	// MaxEstErr is the largest relative error of the 16 execution-
	// value estimates.
	MaxEstErr float64
	// MaxPayErr is the largest relative payment error vs the oracle
	// (exact execution values).
	MaxPayErr float64
	// FalseFlags counts honest computers flagged as deviating.
	FalseFlags int
}

// EstimatorConvergence runs truthful protocol rounds with growing
// observation budgets and reports how the verification estimates and
// the resulting payments converge to the oracle.
func EstimatorConvergence(jobCounts []int, seed uint64) ([]EstimatorRow, error) {
	if len(jobCounts) == 0 {
		jobCounts = []int{1000, 5000, 20000, 100000}
	}
	var rows []EstimatorRow
	for _, jobs := range jobCounts {
		res, err := protocol.Run(protocol.Config{
			Trues: PaperTrueValues(),
			Rate:  PaperRate,
			Jobs:  jobs,
			Seed:  seed,
		})
		if err != nil {
			return nil, err
		}
		row := EstimatorRow{Jobs: jobs}
		trues := PaperTrueValues()
		for i := range trues {
			if e := stats.RelErr(res.Estimates[i].Value, trues[i]); e > row.MaxEstErr {
				row.MaxEstErr = e
			}
			if e := stats.RelErr(res.Outcome.Payment[i], res.Oracle.Payment[i]); e > row.MaxPayErr {
				row.MaxPayErr = e
			}
			if res.Verdicts[i].Deviating {
				row.FalseFlags++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SurfaceRow is one point of the deviation utility surface for C1.
type SurfaceRow struct {
	// BidFactor and ExecFactor are the deviation multipliers.
	BidFactor, ExecFactor float64
	// Utility is C1's resulting utility.
	Utility float64
	// Loss is the utility shortfall vs truthful play (>= 0 for a
	// truthful mechanism).
	Loss float64
}

// DeviationSurface maps C1's utility across a bid x execution grid
// under the verification mechanism — the empirical content of
// Theorem 3.1 as a dataset.
func DeviationSurface(bidFactors, execFactors []float64) ([]SurfaceRow, error) {
	if len(bidFactors) == 0 {
		bidFactors = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 5}
	}
	if len(execFactors) == 0 {
		execFactors = []float64{1, 1.5, 2, 3}
	}
	eng := mech.NewEngine(mech.CompensationBonus{})
	truth, err := eng.Run(mech.Truthful(PaperTrueValues()), PaperRate)
	if err != nil {
		return nil, err
	}
	// Only this scalar outlives the truthful run; the deviation runs
	// below reuse the same engine buffers.
	truthU := truth.Utility[0]
	var rows []SurfaceRow
	for _, bf := range bidFactors {
		for _, ef := range execFactors {
			agents := mech.Truthful(PaperTrueValues())
			agents[0].Bid = bf * agents[0].True
			agents[0].Exec = ef * agents[0].True
			o, err := eng.Run(agents, PaperRate)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SurfaceRow{
				BidFactor:  bf,
				ExecFactor: ef,
				Utility:    o.Utility[0],
				Loss:       truthU - o.Utility[0],
			})
		}
	}
	return rows, nil
}

// ExtendedArtifacts returns the extension tables (not in the paper).
func ExtendedArtifacts() []Artifact {
	return []Artifact{
		{ID: "ext-rate", Title: "Extension: arrival-rate sweep", Table: rateSweepTable, Line: RateSweepChart},
		{ID: "ext-size", Title: "Extension: system-size sweep", Table: sizeSweepTable},
		{ID: "ext-estimator", Title: "Extension: verification accuracy vs observation budget", Table: estimatorTable, Line: EstimatorChart},
		{ID: "ext-surface", Title: "Extension: deviation utility surface for C1", Table: surfaceTable, Heat: SurfaceHeatmap},
		{ID: "ext-hetero", Title: "Extension: heterogeneity sweep", Table: heterogeneityTable},
		{ID: "ext-collusion", Title: "Extension: pairwise collusion gains", Table: collusionTable},
		{ID: "ext-poa", Title: "Extension: price of anarchy of the unpriced game", Table: poaTable},
		{ID: "ext-shapley", Title: "Extension: cooperative (Shapley) vs mechanism attribution", Table: shapleyTable},
		{ID: "ext-protocol", Title: "Extension: Figure 2 end-to-end with estimated execution values", Table: protocolFigTable},
		{ID: "ext-replication", Title: "Extension: Monte Carlo replication sweep of the faulty multi-round system", Table: replicationTable},
	}
}

// RateSweepChart renders the rate sweep as a line chart.
func RateSweepChart() (*report.LineChart, error) {
	rows, err := RateSweep(nil)
	if err != nil {
		return nil, err
	}
	c := &report.LineChart{
		Title:  "Total latency vs arrival rate",
		XLabel: "R (jobs/s)",
		YLabel: "total latency",
	}
	var opt, low2 []float64
	for _, r := range rows {
		c.X = append(c.X, r.Rate)
		opt = append(opt, r.OptLatency)
		low2 = append(low2, r.Low2Latency)
	}
	c.Series = []report.Series{
		{Name: "truthful optimum", Values: opt},
		{Name: "Low2 deviation", Values: low2},
	}
	return c, nil
}

// EstimatorChart renders the verification-accuracy sweep as a
// log-scale line chart.
func EstimatorChart() (*report.LineChart, error) {
	rows, err := EstimatorConvergence(nil, 2026)
	if err != nil {
		return nil, err
	}
	c := &report.LineChart{
		Title:  "Verification accuracy vs observation budget",
		XLabel: "simulated jobs",
		YLabel: "max relative error",
		LogY:   true,
	}
	var est, pay []float64
	for _, r := range rows {
		c.X = append(c.X, float64(r.Jobs))
		est = append(est, r.MaxEstErr)
		pay = append(pay, r.MaxPayErr)
	}
	c.Series = []report.Series{
		{Name: "execution-value estimate", Values: est},
		{Name: "payment", Values: pay},
	}
	return c, nil
}

func rateSweepTable() (*report.Table, error) {
	rows, err := RateSweep(nil)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Arrival-rate sweep (truthful vs Low2).",
		"R", "Optimal L", "Low2 L", "C1 truthful U", "C1 Low2 U", "Frugality")
	for _, r := range rows {
		t.AddFloats(report.FormatFloat(r.Rate), r.OptLatency, r.Low2Latency,
			r.C1TruthUtility, r.C1Low2Utility, r.Frugality)
	}
	return t, nil
}

func sizeSweepTable() (*report.Table, error) {
	rows, err := SizeSweep(nil)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("System-size sweep (repeated {1,2,5,10} ladder, R = 1.25n).",
		"n", "Optimal L", "Frugality", "Min truthful utility")
	for _, r := range rows {
		t.AddFloats(fmt.Sprintf("%d", r.N), r.OptLatency, r.Frugality, r.MinUtility)
	}
	return t, nil
}

func estimatorTable() (*report.Table, error) {
	rows, err := EstimatorConvergence(nil, 2026)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Verification accuracy vs observation budget (truthful rounds).",
		"Jobs", "Max estimate rel err", "Max payment rel err", "False flags")
	for _, r := range rows {
		t.AddFloats(fmt.Sprintf("%d", r.Jobs), r.MaxEstErr, r.MaxPayErr, float64(r.FalseFlags))
	}
	return t, nil
}

// SurfaceHeatmap renders the deviation-loss surface (Theorem 3.1 as a
// picture): rows are execution factors, columns bid factors, color is
// the utility loss relative to truth. The zero cell sits exactly at
// (bid 1x, exec 1x).
func SurfaceHeatmap() (*report.Heatmap, error) {
	bidFactors := []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 5}
	execFactors := []float64{1, 1.5, 2, 3}
	rows, err := DeviationSurface(bidFactors, execFactors)
	if err != nil {
		return nil, err
	}
	h := &report.Heatmap{Title: "C1 utility loss vs truthful play"}
	for _, b := range bidFactors {
		h.XLabels = append(h.XLabels, "b="+report.FormatFloat(b))
	}
	for _, e := range execFactors {
		h.YLabels = append(h.YLabels, "e="+report.FormatFloat(e))
	}
	h.Values = make([][]float64, len(execFactors))
	for r := range h.Values {
		h.Values[r] = make([]float64, len(bidFactors))
	}
	// DeviationSurface iterates bid-major.
	k := 0
	for c := range bidFactors {
		for r := range execFactors {
			h.Values[r][c] = rows[k].Loss
			k++
		}
	}
	return h, nil
}

func surfaceTable() (*report.Table, error) {
	rows, err := DeviationSurface(nil, nil)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Deviation utility surface for C1 (verification mechanism).",
		"Bid factor", "Exec factor", "Utility", "Loss vs truth")
	for _, r := range rows {
		t.AddFloats(report.FormatFloat(r.BidFactor), r.ExecFactor, r.Utility, r.Loss)
	}
	return t, nil
}
