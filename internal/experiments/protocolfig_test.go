package experiments

import "testing"

func TestProtocolFigure2ShapeSurvivesEstimation(t *testing.T) {
	rows, err := ProtocolFigure2(60000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ProtocolFigRow{}
	for _, r := range rows {
		byName[r.Experiment] = r
	}
	// The paper's qualitative shape with estimated values:
	// truth pays best...
	for name, r := range byName {
		if name != "True1" && r.MeasuredUtility >= byName["True1"].MeasuredUtility {
			t.Errorf("%s measured utility %v not below True1 %v",
				name, r.MeasuredUtility, byName["True1"].MeasuredUtility)
		}
	}
	// ... Low2's payment and utility stay negative ...
	if byName["Low2"].MeasuredPayment >= 0 || byName["Low2"].MeasuredUtility >= 0 {
		t.Errorf("Low2 measured payment/utility = %v/%v, want negative",
			byName["Low2"].MeasuredPayment, byName["Low2"].MeasuredUtility)
	}
	// ... and estimation errors stay moderate.
	for name, r := range byName {
		if r.PaymentRelErr > 0.2 {
			t.Errorf("%s payment rel err %v too large", name, r.PaymentRelErr)
		}
	}
	// Verification flags exactly the slow executors (True2, High1,
	// High3 relative to bid? — flags fire when estimate exceeds the
	// *bid* by the margin: True2 (exec 2 vs bid 1), High4 (4 vs 3),
	// Low2 (2 vs 0.5) and Low1 (1 vs 0.5) qualify; High1 executes at
	// its bid and High2/High3 run at or below it).
	wantFlag := map[string]bool{
		"True1": false, "True2": true, "High1": false, "High2": false,
		"High3": false, "High4": true, "Low1": true, "Low2": true,
	}
	for name, want := range wantFlag {
		if byName[name].Flagged != want {
			t.Errorf("%s flagged = %v, want %v", name, byName[name].Flagged, want)
		}
	}
	// True1 is not flagged and its payment tracks the oracle tightly.
	if byName["True1"].PaymentRelErr > 0.05 {
		t.Errorf("True1 payment rel err %v", byName["True1"].PaymentRelErr)
	}
}
