// Package protocol implements the paper's centralized load balancing
// protocol as explicit message passing between a coordinator (the
// mechanism) and the agents (the computers):
//
//  1. the coordinator requests bids,
//  2. each agent reports its (possibly false) bid,
//  3. the coordinator computes the PR allocation and assigns loads,
//  4. the allocated jobs are executed on a simulated cluster while
//     the coordinator observes per-job latencies and estimates each
//     agent's actual execution value ť (the verification step), and
//  5. the coordinator computes compensation-and-bonus payments from
//     the estimates and delivers them.
//
// The message complexity is exactly 5n = O(n), matching the paper's
// bound, and the package asserts it in tests. Fault injection (agents
// that refuse to bid) exercises the error paths a deployment would
// face.
package protocol

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/mech"
	"repro/internal/obs"
)

// MessageKind enumerates the protocol message types.
type MessageKind int

// Protocol message kinds, in phase order.
const (
	MsgRequestBid MessageKind = iota
	MsgBid
	MsgAssign
	MsgCompleted
	MsgPayment
)

// String names the message kind.
func (k MessageKind) String() string {
	switch k {
	case MsgRequestBid:
		return "request-bid"
	case MsgBid:
		return "bid"
	case MsgAssign:
		return "assign"
	case MsgCompleted:
		return "completed"
	case MsgPayment:
		return "payment"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// Message is one protocol message.
type Message struct {
	// From and To identify the endpoints ("coordinator" or an agent
	// name).
	From, To string
	// Kind is the message type.
	Kind MessageKind
	// Value carries the payload: the bid, assigned rate, completed
	// job count or payment, depending on Kind.
	Value float64
}

// Network is the in-memory transport. It counts every message and can
// keep a full log. When Faults is set, the unreliable protocol phases
// (bid request, bid, completion report) pass through the fault layer
// and may be lost; allocation and payment messages are modeled as
// riding a reliable (acknowledged, retransmitting) channel, so faults
// never silently corrupt an allocation an agent acts on.
type Network struct {
	// Count is the number of messages sent (lost ones included: they
	// crossed the wire and cost bandwidth, they just never arrived).
	Count int
	// Lost counts messages the fault layer dropped.
	Lost int
	// Log holds every message when Record is true.
	Log []Message
	// Record enables message logging.
	Record bool
	// Faults filters deliveries (nil = reliable network).
	Faults faults.Injector
	// Obs counts injected faults by kind; nil disables (free).
	Obs *obs.FaultMetrics

	seq int
}

// unreliableKinds are the message kinds subject to fault injection.
func unreliable(k MessageKind) bool {
	return k == MsgRequestBid || k == MsgBid || k == MsgCompleted
}

// endpointIndex maps a protocol endpoint name to a fault-layer node
// index: the coordinator is -1, agent "Ck" is k-1. Parsed by hand —
// this runs for every message on a faulty network, and strconv.Atoi
// allocates an error for the coordinator's name on each call.
func endpointIndex(name string) int {
	if len(name) < 2 || name[0] != 'C' {
		return -1
	}
	k := 0
	for i := 1; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return -1
		}
		k = k*10 + int(c-'0')
	}
	return k - 1
}

// Send delivers (counts, optionally logs) a message and reports
// whether it arrived.
func (n *Network) Send(m Message) bool {
	seq := n.seq
	n.seq++
	n.Count++
	if n.Record {
		n.Log = append(n.Log, m)
	}
	if n.Faults == nil || !unreliable(m.Kind) {
		return true
	}
	d := n.Faults.Deliver(faults.Message{
		Seq:  seq,
		From: endpointIndex(m.From),
		To:   endpointIndex(m.To),
		Kind: m.Kind.String(),
	})
	if d.Drop {
		n.Lost++
		n.Obs.Injected("drop")
		return false
	}
	if d.Duplicate {
		n.Count++ // the duplicate copy also crosses the wire
		n.Obs.Injected("duplicate")
	}
	return true
}

// Strategy decides how an agent plays given its private true value.
type Strategy interface {
	// Bid returns the value the agent reports.
	Bid(trueValue float64) float64
	// Exec returns the execution value the agent actually runs at
	// (>= trueValue for legal plays).
	Exec(trueValue, bid float64) float64
}

// TruthfulStrategy bids the true value and executes at full capacity.
type TruthfulStrategy struct{}

// Bid implements Strategy.
func (TruthfulStrategy) Bid(trueValue float64) float64 { return trueValue }

// Exec implements Strategy.
func (TruthfulStrategy) Exec(trueValue, _ float64) float64 { return trueValue }

// FactorStrategy scales the truth by fixed factors — the shape of
// every deviation in the paper's Table 2.
type FactorStrategy struct {
	// BidFactor scales the reported value.
	BidFactor float64
	// ExecFactor scales the execution value.
	ExecFactor float64
}

// Bid implements Strategy.
func (s FactorStrategy) Bid(trueValue float64) float64 { return s.BidFactor * trueValue }

// Exec implements Strategy.
func (s FactorStrategy) Exec(trueValue, _ float64) float64 { return s.ExecFactor * trueValue }

// SilentStrategy refuses to bid (fault injection); the coordinator
// aborts the round with an error.
type SilentStrategy struct{}

// Bid implements Strategy by returning a non-positive sentinel.
func (SilentStrategy) Bid(float64) float64 { return 0 }

// Exec implements Strategy.
func (SilentStrategy) Exec(trueValue, _ float64) float64 { return trueValue }

// Config parameterizes a protocol round.
type Config struct {
	// Trues are the agents' private values.
	Trues []float64
	// Strategies decide each agent's play; nil entries (or a nil
	// slice) default to TruthfulStrategy.
	Strategies []Strategy
	// Rate is the total job arrival rate R.
	Rate float64
	// Jobs is the number of jobs simulated for the execution phase
	// (default 20000).
	Jobs int
	// Seed drives all randomness in the round.
	Seed uint64
	// ZThreshold is the verification z-score above which an agent is
	// flagged as deviating (default 3).
	ZThreshold float64
	// RecordMessages keeps the full message log.
	RecordMessages bool
	// AllowDropouts makes the coordinator tolerate agents that fail
	// to bid: they are excluded from the round and the allocation is
	// recomputed over the responsive agents. Without it a silent
	// agent aborts the round with an error.
	AllowDropouts bool
	// RobustEstimator switches the verification step from the
	// mean-based estimator to the median-based one, which resists
	// contaminated observations (e.g. nodes that occasionally stall)
	// at ~25% statistical efficiency cost.
	RobustEstimator bool
	// MarginFrac is the practical-significance margin of the
	// verification test: an agent is flagged only when its estimated
	// execution value exceeds its bid by this fraction at the z
	// threshold (default 0.05). Without a margin, very large samples
	// flag operationally meaningless excesses such as the small bias
	// robust estimators carry under contamination.
	MarginFrac float64
	// StallEvery injects a measurement fault at node i (0-indexed) of
	// the map: every k-th observed delay is replaced by a stall of
	// StallDelay seconds before the coordinator sees it. It models
	// monitoring glitches rather than agent behaviour.
	//
	// Deprecated: a thin adapter over faults.Stall; prefer composing a
	// fault plan in Faults.
	StallEvery map[int]int
	// StallDelay is the injected stall duration (default 1000s).
	//
	// Deprecated: rides along with StallEvery; prefer faults.Stall.
	StallDelay float64
	// Faults injects faults into the round (see package faults): nodes
	// marked crashed or silent never bid, stalled nodes corrupt the
	// coordinator's latency observations, and the unreliable message
	// phases (bid request, bid, completion report) may lose messages —
	// a lost bid looks exactly like a silent agent, a lost completion
	// report forces the coordinator to trust that agent's bid
	// unaudited. Nil injects nothing. The deprecated SilentStrategy and
	// StallEvery knobs are folded into this injector, which is the one
	// source of truth during the round.
	Faults faults.Injector
	// Obs receives metrics and trace events from the round; nil
	// disables instrumentation at no cost.
	Obs *obs.Observer
}

// Result is the outcome of a protocol round.
type Result struct {
	// Outcome holds allocations, payments and utilities computed from
	// the *estimated* execution values — what a real deployment can
	// do.
	Outcome *mech.Outcome
	// Oracle holds the same computed from the exact execution values —
	// the paper's idealized assumption — for comparison.
	Oracle *mech.Outcome
	// Estimates are the per-agent execution-value estimates.
	Estimates []estimate.Estimate
	// Verdicts flag agents whose estimated execution value exceeds
	// their bid.
	Verdicts []estimate.Verdict
	// Messages is the number of protocol messages exchanged (5n for a
	// fully responsive round).
	Messages int
	// Lost counts messages the fault layer dropped.
	Lost int
	// Active maps the round's agent positions back to indices in
	// Config.Trues (identical when nobody dropped out).
	Active []int
	// Dropped names the agents excluded for failing to bid.
	Dropped []string
	// Net is the transport used (carries the log when recording).
	Net *Network
	// Sim is the cluster simulation result for the execution phase.
	Sim *cluster.Result
}

const coordinator = "coordinator"

// Run executes one full protocol round. It is the one-shot form of
// Engine.Run: a fresh engine is created per call, so the Result is
// caller-owned. Loops that run many rounds should hold an Engine and
// reuse it.
func Run(cfg Config) (*Result, error) {
	return NewEngine().Run(cfg)
}
