package protocol

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func paperTs() []float64 {
	return []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}
}

func TestMessageComplexityIsLinear(t *testing.T) {
	// The paper: "The total number of messages sent by the above
	// protocol is O(n)". Ours is exactly 5n.
	for _, n := range []int{2, 4, 16} {
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = float64(i + 1)
		}
		res, err := Run(Config{Trues: ts, Rate: 10, Jobs: 2000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != 5*n {
			t.Errorf("n=%d: %d messages, want %d", n, res.Messages, 5*n)
		}
	}
}

func TestMessagePhaseOrder(t *testing.T) {
	res, err := Run(Config{Trues: []float64{1, 2}, Rate: 4, Jobs: 1000, Seed: 2, RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Net.Log) != res.Messages {
		t.Fatalf("log has %d entries for %d messages", len(res.Net.Log), res.Messages)
	}
	phaseOf := map[MessageKind]int{
		MsgRequestBid: 0, MsgBid: 0, // interleaved per agent
		MsgAssign: 1, MsgCompleted: 2, MsgPayment: 3,
	}
	last := 0
	for _, m := range res.Net.Log {
		p := phaseOf[m.Kind]
		if p < last {
			t.Fatalf("message %v out of phase order", m)
		}
		last = p
	}
}

func TestTruthfulRoundEstimatesConvergeToOracle(t *testing.T) {
	res, err := Run(Config{Trues: paperTs(), Rate: 20, Jobs: 200000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Execution-value estimates near the truth.
	for i, est := range res.Estimates {
		want := paperTs()[i]
		if math.Abs(est.Value-want)/want > 0.1 {
			t.Errorf("agent %d: estimate %v, want ~%v", i, est.Value, want)
		}
	}
	// Payments computed from estimates approach the oracle payments.
	for i := range res.Outcome.Payment {
		if stats.RelErr(res.Outcome.Payment[i], res.Oracle.Payment[i]) > 0.15 {
			t.Errorf("agent %d: payment %v vs oracle %v",
				i, res.Outcome.Payment[i], res.Oracle.Payment[i])
		}
	}
	// No truthful agent flagged as deviating.
	for i, v := range res.Verdicts {
		if v.Deviating {
			t.Errorf("truthful agent %d flagged: %+v", i, v)
		}
	}
}

func TestSlowExecutorIsCaughtAndPunished(t *testing.T) {
	strategies := make([]Strategy, 16)
	strategies[0] = FactorStrategy{BidFactor: 1, ExecFactor: 2} // True2 play
	res, err := Run(Config{
		Trues: paperTs(), Strategies: strategies,
		Rate: 20, Jobs: 100000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts[0].Deviating {
		t.Errorf("2x slowdown not detected: %+v", res.Verdicts[0])
	}
	for i := 1; i < 16; i++ {
		if res.Verdicts[i].Deviating {
			t.Errorf("honest agent %d flagged: %+v", i, res.Verdicts[i])
		}
	}
	// The deviator's utility (from estimated values) is below every
	// truthful counterfactual: compare to the truthful oracle round.
	truthRes, err := Run(Config{Trues: paperTs(), Rate: 20, Jobs: 100000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Utility[0] >= truthRes.Outcome.Utility[0] {
		t.Errorf("slow executor utility %v not below truthful %v",
			res.Outcome.Utility[0], truthRes.Outcome.Utility[0])
	}
}

func TestLow2RoundGoesNegative(t *testing.T) {
	strategies := make([]Strategy, 16)
	strategies[0] = FactorStrategy{BidFactor: 0.5, ExecFactor: 2}
	res, err := Run(Config{
		Trues: paperTs(), Strategies: strategies,
		Rate: 20, Jobs: 150000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Payment[0] >= 0 {
		t.Errorf("Low2 protocol payment = %v, want negative", res.Outcome.Payment[0])
	}
	if res.Outcome.Utility[0] >= 0 {
		t.Errorf("Low2 protocol utility = %v, want negative", res.Outcome.Utility[0])
	}
	if !res.Verdicts[0].Deviating {
		t.Error("Low2 deviator not flagged")
	}
}

func TestSilentAgentAborts(t *testing.T) {
	strategies := make([]Strategy, 3)
	strategies[1] = SilentStrategy{}
	_, err := Run(Config{Trues: []float64{1, 2, 3}, Strategies: strategies, Rate: 5, Seed: 6})
	if err == nil {
		t.Fatal("expected error for silent agent")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Trues: []float64{1}, Rate: 5}); err == nil {
		t.Error("expected error for a single agent")
	}
	if _, err := Run(Config{Trues: []float64{1, 2}, Rate: 0}); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, err := Run(Config{Trues: []float64{1, 2}, Rate: 5, Strategies: make([]Strategy, 1)}); err == nil {
		t.Error("expected error for strategy count mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		res, err := Run(Config{Trues: []float64{1, 2, 4}, Rate: 6, Jobs: 5000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcome.Payment[0]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic protocol: %v vs %v", a, b)
	}
}

func TestMessageKindString(t *testing.T) {
	kinds := []MessageKind{MsgRequestBid, MsgBid, MsgAssign, MsgCompleted, MsgPayment, MessageKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty String", int(k))
		}
	}
}
