package protocol

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/mech"
	"repro/internal/numeric"
	"repro/internal/workload"
)

// RunMM1 executes a protocol round in the M/M/1 model: agents'
// private values are mean service times t = 1/mu, execution happens on
// real FCFS queues with exponential service, and verification inverts
// the observed sojourn times (mean sojourn = 1/(mu - x)) to estimate
// each agent's actual service rate. Payments use the verification
// mechanism instantiated with MM1Model.
//
// This is the strongest end-to-end validation in the repository: the
// queueing behaviour is simulated, not assumed, so the estimator sees
// genuine queueing noise including correlated waiting times.
func RunMM1(cfg Config) (*Result, error) {
	n := len(cfg.Trues)
	if n < 2 {
		return nil, errors.New("protocol: need at least two agents")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("protocol: invalid rate %g", cfg.Rate)
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 50000
	}
	zth := cfg.ZThreshold
	if zth <= 0 {
		zth = 3
	}
	strategies := cfg.Strategies
	if strategies == nil {
		strategies = make([]Strategy, n)
	}
	if len(strategies) != n {
		return nil, fmt.Errorf("protocol: %d strategies for %d agents", len(strategies), n)
	}

	met := cfg.Obs.RoundMetrics()
	net := &Network{Record: cfg.RecordMessages, Obs: cfg.Obs.FaultMetrics()}
	rng := numeric.NewRand(cfg.Seed)
	names := make([]string, n)
	agents := make([]mech.Agent, n)
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for i, tv := range cfg.Trues {
		names[i] = fmt.Sprintf("C%d", i+1)
		net.Send(Message{From: coordinator, To: names[i], Kind: MsgRequestBid})
		s := strategies[i]
		if s == nil {
			s = TruthfulStrategy{}
		}
		bid := s.Bid(tv)
		if bid <= 0 {
			return nil, fmt.Errorf("protocol: agent %s failed to bid", names[i])
		}
		net.Send(Message{From: names[i], To: coordinator, Kind: MsgBid, Value: bid})
		agents[i] = mech.Agent{Name: names[i], True: tv, Bid: bid, Exec: s.Exec(tv, bid)}
	}

	model := mech.MM1Model{}
	x, err := model.Alloc(mech.Bids(agents), cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("protocol: allocation: %w", err)
	}
	for i := range agents {
		net.Send(Message{From: coordinator, To: names[i], Kind: MsgAssign, Value: x[i]})
	}

	// Execution on real FCFS queues with the agents' actual (exec)
	// service rates mu = 1/exec; sizes are exponential so each node is
	// an M/M/1 queue.
	mus := make([]float64, n)
	for i, a := range agents {
		mus[i] = 1 / a.Exec
	}
	simRes, err := cluster.Run(cluster.Config{
		Nodes:       cluster.QueueNodes(mus),
		Probs:       cluster.Probs(x, cfg.Rate),
		Source:      workload.NewPoisson(cfg.Rate, jobs, workload.ExpSize{}, rng.Split()),
		RNG:         rng.Split(),
		KeepSamples: true,
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: execution simulation: %w", err)
	}

	estimates := make([]estimate.Estimate, n)
	verdicts := make([]estimate.Verdict, n)
	estimated := append([]mech.Agent(nil), agents...)
	for i := range agents {
		net.Send(Message{
			From: names[i], To: coordinator, Kind: MsgCompleted,
			Value: float64(simRes.PerNode[i].Jobs),
		})
		obs := simRes.PerNode[i].Latencies
		if len(obs) == 0 {
			estimates[i] = estimate.Estimate{Value: agents[i].Bid, N: 0}
		} else {
			est, err := estimate.FromMM1Sojourns(obs, x[i])
			if err != nil {
				return nil, fmt.Errorf("protocol: estimating agent %s: %w", names[i], err)
			}
			estimates[i] = est
		}
		verdicts[i] = estimate.VerifyWithMargin(estimates[i], agents[i].Bid, zth, 0.05)
		if verdicts[i].Invalid {
			met.VerdictInvalid()
		} else if verdicts[i].Deviating {
			met.AuditFlagged(1)
		}
		estimated[i].Exec = estimates[i].Value
	}

	mechanism := mech.CompensationBonus{Model: model}
	outcome, err := mechanism.Run(estimated, cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("protocol: payment computation: %w", err)
	}
	oracle, err := mechanism.Run(agents, cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("protocol: oracle payment computation: %w", err)
	}
	for i := range agents {
		net.Send(Message{From: coordinator, To: names[i], Kind: MsgPayment, Value: outcome.Payment[i]})
	}
	met.AddMessages(net.Count, net.Lost, 0)
	met.RoundDone("ok", simRes.Duration)
	return &Result{
		Outcome:   outcome,
		Oracle:    oracle,
		Estimates: estimates,
		Verdicts:  verdicts,
		Messages:  net.Count,
		Active:    active,
		Net:       net,
		Sim:       simRes,
	}, nil
}
