package protocol

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// mm1Trues are mean service times for four M/M/1 computers with
// service rates 10, 5, 2.5 and 2 (total capacity 19.5 jobs/s). At
// rate 6 every exclusion subsystem is feasible.
func mm1Trues() []float64 { return []float64{0.1, 0.2, 0.4, 0.5} }

func TestRunMM1TruthfulRound(t *testing.T) {
	res, err := RunMM1(Config{Trues: mm1Trues(), Rate: 6, Jobs: 200000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 5*4 {
		t.Errorf("messages = %d, want 20", res.Messages)
	}
	// Estimated mean service times converge to the truth. Computers
	// left unused by the KKT optimum observe no jobs and fall back to
	// the bid, which for a truthful agent is also correct.
	for i, est := range res.Estimates {
		want := mm1Trues()[i]
		if stats.RelErr(est.Value, want) > 0.1 {
			t.Errorf("agent %d: estimate %v, want ~%v (n=%d)", i, est.Value, want, est.N)
		}
	}
	// No false deviation flags.
	for i, v := range res.Verdicts {
		if v.Deviating {
			t.Errorf("truthful agent %d flagged: %+v", i, v)
		}
	}
	// Payments converge to the oracle.
	for i := range res.Outcome.Payment {
		if stats.RelErr(res.Outcome.Payment[i], res.Oracle.Payment[i]) > 0.1 {
			t.Errorf("agent %d payment %v vs oracle %v",
				i, res.Outcome.Payment[i], res.Oracle.Payment[i])
		}
	}
}

func TestRunMM1SlowServerCaught(t *testing.T) {
	strategies := make([]Strategy, 4)
	// C1 claims service time 0.1 but actually serves at 0.15 (i.e. it
	// runs at 2/3 of its declared rate).
	strategies[0] = FactorStrategy{BidFactor: 1, ExecFactor: 1.5}
	res, err := RunMM1(Config{
		Trues: mm1Trues(), Strategies: strategies,
		Rate: 6, Jobs: 200000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts[0].Deviating {
		t.Errorf("slow M/M/1 server not flagged: %+v", res.Verdicts[0])
	}
	// And the verification payments punish it relative to truthful play.
	truth, err := RunMM1(Config{Trues: mm1Trues(), Rate: 6, Jobs: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Utility[0] >= truth.Outcome.Utility[0] {
		t.Errorf("slow server utility %v not below truthful %v",
			res.Outcome.Utility[0], truth.Outcome.Utility[0])
	}
}

func TestRunMM1Validation(t *testing.T) {
	if _, err := RunMM1(Config{Trues: []float64{0.1}, Rate: 1}); err == nil {
		t.Error("expected error for single agent")
	}
	if _, err := RunMM1(Config{Trues: mm1Trues(), Rate: 0}); err == nil {
		t.Error("expected error for zero rate")
	}
	// Infeasible rate (capacity 19.5).
	if _, err := RunMM1(Config{Trues: mm1Trues(), Rate: 25, Jobs: 100}); err == nil {
		t.Error("expected error for infeasible rate")
	}
}

func TestRunMM1QueueingNoiseWiderThanFlow(t *testing.T) {
	// Sanity on the estimator: sojourn-inversion has finite standard
	// errors and the reported CI covers the truth for most agents.
	res, err := RunMM1(Config{Trues: mm1Trues(), Rate: 6, Jobs: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for i, est := range res.Estimates {
		if est.N == 0 {
			covered++ // bid fallback is exact for truthful agents
			continue
		}
		if math.IsNaN(est.StdErr) || est.StdErr <= 0 {
			t.Errorf("agent %d: bad stderr %v", i, est.StdErr)
		}
		if est.Lo <= mm1Trues()[i] && mm1Trues()[i] <= est.Hi {
			covered++
		}
	}
	if covered < 3 {
		t.Errorf("only %d/4 CIs cover the truth", covered)
	}
}
