package protocol

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/faults"
	"repro/internal/mech"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Engine amortizes a protocol round's working state across many runs:
// the transport, the agent and estimate buffers, the simulated flow
// nodes with their RNG streams, the job source and the cluster
// scratch (whose discrete-event engine pools its events), plus the
// two payment engines (estimated and oracle). A long-running
// coordinator that executes a round per epoch reuses one Engine so
// that a steady-state round does near-zero heap allocation.
//
// The Result returned by Run is owned by the engine and is valid only
// until the next Run call; Run produces byte-identical results to the
// package-level Run for the same Config. An Engine is not safe for
// concurrent use — create one per goroutine.
type Engine struct {
	net        Network
	root       numeric.Rand
	nodeParent numeric.Rand
	srcRNG     numeric.Rand
	clRNG      numeric.Rand
	src        workload.Poisson
	cl         cluster.Scratch
	payEng     *mech.Engine
	oracleEng  *mech.Engine

	names      []string // cached "C%d" labels, by index
	stratBuf   []Strategy
	agentNames []string
	agents     []mech.Agent
	estimated  []mech.Agent
	active     []int
	dropped    []string
	bids       []float64
	probs      []float64
	x          []float64
	estimates  []estimate.Estimate
	verdicts   []estimate.Verdict
	flow       []cluster.FlowNode
	nodeRNG    []numeric.Rand
	nodes      []cluster.Node
	samples    []float64
	res        Result
}

var errNeedTwoAgents = errors.New("protocol: need at least two agents")

// NewEngine returns a reusable protocol round engine.
func NewEngine() *Engine {
	return &Engine{
		payEng:    mech.NewEngine(mech.CompensationBonus{}),
		oracleEng: mech.NewEngine(mech.CompensationBonus{}),
	}
}

// nameOf returns the cached label "C<i+1>".
func (e *Engine) nameOf(i int) string {
	for len(e.names) <= i {
		e.names = append(e.names, fmt.Sprintf("C%d", len(e.names)+1))
	}
	return e.names[i]
}

// Run executes one full protocol round, reusing the engine's buffers.
// The returned Result is invalidated by the next Run.
func (e *Engine) Run(cfg Config) (*Result, error) {
	n := len(cfg.Trues)
	if n < 2 {
		return nil, errNeedTwoAgents
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("protocol: invalid rate %g", cfg.Rate)
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 20000
	}
	zth := cfg.ZThreshold
	if zth <= 0 {
		zth = 3
	}
	margin := cfg.MarginFrac
	if margin <= 0 {
		margin = 0.05
	}
	strategies := cfg.Strategies
	if strategies == nil {
		e.stratBuf = resizeStrategies(e.stratBuf, n)
		strategies = e.stratBuf
	}
	if len(strategies) != n {
		return nil, fmt.Errorf("protocol: %d strategies for %d agents", len(strategies), n)
	}

	// Fold the deprecated fault knobs (SilentStrategy, StallEvery)
	// into the unified injector: the round consults only inj.
	var legacy []faults.Option
	for i, s := range strategies {
		if _, ok := s.(SilentStrategy); ok {
			legacy = append(legacy, faults.Silent(i))
		}
	}
	for i, k := range cfg.StallEvery {
		legacy = append(legacy, faults.Stall(cfg.StallDelay, k, i))
	}
	var inj faults.Injector = faults.None
	if len(legacy) > 0 {
		inj = faults.Merge(cfg.Faults, faults.New(0, legacy...))
	} else if cfg.Faults != nil {
		inj = faults.Merge(cfg.Faults)
	}

	met := cfg.Obs.RoundMetrics()
	fm := cfg.Obs.FaultMetrics()
	e.net = Network{Record: cfg.RecordMessages, Faults: inj, Obs: fm, Log: e.net.Log[:0]}
	net := &e.net
	e.root.Reset(cfg.Seed)
	names := e.agentNames[:0]
	agents := e.agents[:0]
	active := e.active[:0]
	dropped := e.dropped[:0]

	// Phases 1-2: bid collection. A crashed or silent node, a lost bid
	// request and a lost bid all look the same to the coordinator: no
	// bid arrives.
	for i, tv := range cfg.Trues {
		name := e.nameOf(i)
		reqArrived := net.Send(Message{From: coordinator, To: name, Kind: MsgRequestBid})
		s := strategies[i]
		if s == nil {
			s = TruthfulStrategy{}
		}
		bid := 0.0
		if cls := inj.Class(i); reqArrived && cls != faults.NodeCrashed && cls != faults.NodeSilent {
			bid = s.Bid(tv)
		}
		if bid <= 0 {
			if cfg.AllowDropouts {
				dropped = append(dropped, name)
				continue
			}
			e.stash(names, agents, active, dropped)
			return nil, fmt.Errorf("protocol: agent %s failed to bid", name)
		}
		if !net.Send(Message{From: name, To: coordinator, Kind: MsgBid, Value: bid}) {
			if cfg.AllowDropouts {
				dropped = append(dropped, name)
				continue
			}
			e.stash(names, agents, active, dropped)
			return nil, fmt.Errorf("protocol: agent %s failed to bid", name)
		}
		names = append(names, name)
		active = append(active, i)
		agents = append(agents, mech.Agent{
			Name: name,
			True: tv,
			Bid:  bid,
			Exec: s.Exec(tv, bid),
		})
	}
	e.stash(names, agents, active, dropped)
	if len(agents) < 2 {
		return nil, fmt.Errorf("protocol: only %d responsive agents", len(agents))
	}
	n = len(agents)

	// Phase 3: allocation.
	model := mech.LinearModel{}
	e.bids = numeric.Resize(e.bids, n)
	for i := range agents {
		e.bids[i] = agents[i].Bid
	}
	x, err := model.AllocInto(e.bids, cfg.Rate, e.x)
	if err != nil {
		return nil, fmt.Errorf("protocol: allocation: %w", err)
	}
	e.x = x
	for i := range agents {
		net.Send(Message{From: coordinator, To: names[i], Kind: MsgAssign, Value: x[i]})
	}

	// Phase 4: execution on the simulated cluster, with observation.
	// The RNG split order (nodes, then source, then routing) matches
	// the historical one-shot path draw for draw.
	e.flow = resizeFlow(e.flow, n)
	e.nodeRNG = resizeRands(e.nodeRNG, n)
	e.nodes = resizeNodes(e.nodes, n)
	e.root.SplitInto(&e.nodeParent)
	for i := range e.flow {
		e.nodeParent.SplitInto(&e.nodeRNG[i])
		e.flow[i] = cluster.FlowNode{
			ID:   e.nameOf(i),
			T:    agents[i].Exec,
			Rate: x[i],
			RNG:  &e.nodeRNG[i],
		}
		e.nodes[i] = &e.flow[i]
	}
	e.root.SplitInto(&e.srcRNG)
	e.src.Reset(cfg.Rate, jobs, nil, &e.srcRNG)
	e.root.SplitInto(&e.clRNG)
	e.probs = numeric.Resize(e.probs, n)
	for i, v := range x {
		e.probs[i] = v / cfg.Rate
	}
	simRes, err := e.cl.Run(cluster.Config{
		Nodes:       e.nodes,
		Probs:       e.probs,
		Source:      &e.src,
		RNG:         &e.clRNG,
		KeepSamples: true,
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: execution simulation: %w", err)
	}

	e.estimates = resizeEstimates(e.estimates, n)
	e.verdicts = resizeVerdicts(e.verdicts, n)
	estimates, verdicts := e.estimates, e.verdicts
	estimated := append(e.estimated[:0], agents...)
	e.estimated = estimated
	for i := range agents {
		reported := net.Send(Message{
			From: names[i], To: coordinator, Kind: MsgCompleted,
			Value: float64(simRes.PerNode[i].Jobs),
		})
		// Estimate against the rate the coordinator assigned: the
		// coordinator is itself the dispatcher, so x_i is known
		// exactly, and using the (noisy) observed arrival rate would
		// understate the estimator's uncertainty.
		samples := simRes.PerNode[i].Latencies
		if !reported {
			// The completion report was lost: the coordinator cannot
			// match its observations to the agent's accounting, so it
			// falls back to trusting the bid, unaudited.
			samples = nil
		}
		if stall, k := inj.Stall(active[i]); k > 0 {
			e.samples = append(e.samples[:0], samples...)
			samples = e.samples
			for j := 0; j < len(samples); j += k {
				samples[j] = stall
				fm.Injected("stall")
			}
		}
		if len(samples) == 0 || x[i] <= 0 {
			// No jobs observed (possible only under extreme
			// allocations): fall back to trusting the bid.
			estimates[i] = estimate.Estimate{Value: agents[i].Bid, N: 0}
		} else {
			estFn := estimate.FromFlowDelays
			if cfg.RobustEstimator {
				estFn = estimate.FromFlowDelaysRobust
			}
			est, err := estFn(samples, x[i])
			if err != nil {
				return nil, fmt.Errorf("protocol: estimating agent %s: %w", names[i], err)
			}
			estimates[i] = est
		}
		verdicts[i] = estimate.VerifyWithMargin(estimates[i], agents[i].Bid, zth, margin)
		if verdicts[i].Invalid {
			met.VerdictInvalid()
			cfg.Obs.Emit(obs.Event{
				Layer: "protocol", Kind: "verdict-invalid", Node: active[i],
				Detail: names[i], Value: estimates[i].Value,
			})
		} else if verdicts[i].Deviating {
			met.AuditFlagged(1)
			cfg.Obs.Emit(obs.Event{
				Layer: "protocol", Kind: "audit-flag", Node: active[i],
				Detail: names[i], Value: verdicts[i].ZScore,
			})
		}
		estimated[i].Exec = estimates[i].Value
	}

	outcome, err := e.payEng.Run(estimated, cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("protocol: payment computation: %w", err)
	}
	oracle, err := e.oracleEng.Run(agents, cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("protocol: oracle payment computation: %w", err)
	}

	// Phase 5: payments.
	for i := range agents {
		net.Send(Message{From: coordinator, To: names[i], Kind: MsgPayment, Value: outcome.Payment[i]})
	}

	met.AddMessages(net.Count, net.Lost, 0)
	met.RoundDone("ok", simRes.Duration)
	if cfg.Obs != nil {
		// Guarded so the Sprintf is not paid when nobody listens.
		cfg.Obs.Emit(obs.Event{
			Layer: "protocol", Kind: "round-ok",
			Detail: fmt.Sprintf("agents=%d dropped=%d messages=%d", n, len(dropped), net.Count),
			Value:  simRes.Duration,
		})
	}

	e.res = Result{
		Outcome:   outcome,
		Oracle:    oracle,
		Estimates: estimates,
		Verdicts:  verdicts,
		Messages:  net.Count,
		Lost:      net.Lost,
		Active:    active,
		Dropped:   dropped,
		Net:       net,
		Sim:       simRes,
	}
	return &e.res, nil
}

// stash writes the bid-phase append targets back onto the engine so
// their grown capacity is kept for the next round even on error paths.
func (e *Engine) stash(names []string, agents []mech.Agent, active []int, dropped []string) {
	e.agentNames, e.agents, e.active, e.dropped = names, agents, active, dropped
}

// resizeStrategies returns s with length n and every element nil.
func resizeStrategies(s []Strategy, n int) []Strategy {
	if cap(s) < n {
		return make([]Strategy, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeFlow returns s with length n, reusing capacity.
func resizeFlow(s []cluster.FlowNode, n int) []cluster.FlowNode {
	if cap(s) < n {
		return make([]cluster.FlowNode, n)
	}
	return s[:n]
}

// resizeRands returns s with length n, reusing capacity.
func resizeRands(s []numeric.Rand, n int) []numeric.Rand {
	if cap(s) < n {
		return make([]numeric.Rand, n)
	}
	return s[:n]
}

// resizeNodes returns s with length n, reusing capacity.
func resizeNodes(s []cluster.Node, n int) []cluster.Node {
	if cap(s) < n {
		return make([]cluster.Node, n)
	}
	return s[:n]
}

// resizeEstimates returns s with length n, reusing capacity.
func resizeEstimates(s []estimate.Estimate, n int) []estimate.Estimate {
	if cap(s) < n {
		return make([]estimate.Estimate, n)
	}
	return s[:n]
}

// resizeVerdicts returns s with length n, reusing capacity.
func resizeVerdicts(s []estimate.Verdict, n int) []estimate.Verdict {
	if cap(s) < n {
		return make([]estimate.Verdict, n)
	}
	return s[:n]
}
