package protocol

import "testing"

func TestDropoutsExcludedAndRoundProceeds(t *testing.T) {
	strategies := make([]Strategy, 4)
	strategies[2] = SilentStrategy{}
	res, err := Run(Config{
		Trues:         []float64{1, 2, 4, 8},
		Strategies:    strategies,
		Rate:          6,
		Jobs:          5000,
		Seed:          4,
		AllowDropouts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != "C3" {
		t.Errorf("dropped = %v, want [C3]", res.Dropped)
	}
	if len(res.Active) != 3 {
		t.Fatalf("active = %v", res.Active)
	}
	want := []int{0, 1, 3}
	for i, a := range res.Active {
		if a != want[i] {
			t.Errorf("active[%d] = %d, want %d", i, a, want[i])
		}
	}
	// The allocation was recomputed over the three responders and
	// conserves the full rate.
	var sum float64
	for _, x := range res.Outcome.Alloc {
		sum += x
	}
	if sum < 5.999 || sum > 6.001 {
		t.Errorf("allocation sums to %v, want 6", sum)
	}
	// Message count: 4 requests, then 4 messages for each of the 3
	// responders (bid, assign, completed, payment).
	if res.Messages != 4+4*3 {
		t.Errorf("messages = %d, want 16", res.Messages)
	}
}

func TestDropoutsDisabledStillAborts(t *testing.T) {
	strategies := make([]Strategy, 3)
	strategies[0] = SilentStrategy{}
	_, err := Run(Config{
		Trues:      []float64{1, 2, 4},
		Strategies: strategies,
		Rate:       5,
	})
	if err == nil {
		t.Fatal("expected abort without AllowDropouts")
	}
}

func TestTooManyDropouts(t *testing.T) {
	strategies := []Strategy{SilentStrategy{}, SilentStrategy{}, nil}
	_, err := Run(Config{
		Trues:         []float64{1, 2, 4},
		Strategies:    strategies,
		Rate:          5,
		AllowDropouts: true,
	})
	if err == nil {
		t.Fatal("expected error with fewer than two responders")
	}
}

func TestNoDropoutsIdentityMapping(t *testing.T) {
	res, err := Run(Config{Trues: []float64{1, 2}, Rate: 4, Jobs: 1000, Seed: 5, AllowDropouts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 0 {
		t.Errorf("dropped = %v", res.Dropped)
	}
	if len(res.Active) != 2 || res.Active[0] != 0 || res.Active[1] != 1 {
		t.Errorf("active = %v", res.Active)
	}
}
