package protocol

import (
	"math"
	"testing"

	"repro/internal/faults"
)

// TestEngineReuseMatchesFreshRuns drives one Engine through several
// heterogeneous rounds (different populations, strategies, faults) and
// checks every observable against a fresh one-shot Run: scratch reuse
// must never leak state across rounds.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	configs := []Config{
		{
			Trues: []float64{1, 2, 5, 10},
			Rate:  3, Jobs: 2000, Seed: 11,
		},
		{
			Trues:      []float64{2, 2, 2},
			Strategies: []Strategy{FactorStrategy{BidFactor: 1.5, ExecFactor: 1}, nil, nil},
			Rate:       2, Jobs: 1500, Seed: 22, RobustEstimator: true,
		},
		{
			Trues:         []float64{1, 1, 4, 4, 6},
			Rate:          4, Jobs: 1800, Seed: 33,
			AllowDropouts: true,
			Faults:        faults.New(7, faults.Drop(0.02), faults.Stall(500, 9, 2)),
		},
		{ // shrink back down: stale capacity from round 3 must not show
			Trues: []float64{3, 9},
			Rate:  1, Jobs: 1000, Seed: 44, RecordMessages: true,
		},
	}
	eng := NewEngine()
	for ci, cfg := range configs {
		got, err := eng.Run(cfg)
		if err != nil {
			t.Fatalf("config %d: engine run: %v", ci, err)
		}
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: fresh run: %v", ci, err)
		}
		if got.Messages != want.Messages || got.Lost != want.Lost {
			t.Errorf("config %d: messages %d/%d, want %d/%d",
				ci, got.Messages, got.Lost, want.Messages, want.Lost)
		}
		if len(got.Active) != len(want.Active) || len(got.Dropped) != len(want.Dropped) {
			t.Fatalf("config %d: membership mismatch: %v/%v vs %v/%v",
				ci, got.Active, got.Dropped, want.Active, want.Dropped)
		}
		for i := range want.Active {
			if got.Active[i] != want.Active[i] {
				t.Errorf("config %d: active[%d] = %d, want %d", ci, i, got.Active[i], want.Active[i])
			}
		}
		for i := range want.Estimates {
			if got.Estimates[i] != want.Estimates[i] {
				t.Errorf("config %d: estimate[%d] = %+v, want %+v",
					ci, i, got.Estimates[i], want.Estimates[i])
			}
			if got.Verdicts[i] != want.Verdicts[i] {
				t.Errorf("config %d: verdict[%d] = %+v, want %+v",
					ci, i, got.Verdicts[i], want.Verdicts[i])
			}
			if got.Outcome.Payment[i] != want.Outcome.Payment[i] {
				t.Errorf("config %d: payment[%d] = %v, want %v",
					ci, i, got.Outcome.Payment[i], want.Outcome.Payment[i])
			}
			if got.Oracle.Payment[i] != want.Oracle.Payment[i] {
				t.Errorf("config %d: oracle payment[%d] = %v, want %v",
					ci, i, got.Oracle.Payment[i], want.Oracle.Payment[i])
			}
		}
		if got.Sim.MeanResponse != want.Sim.MeanResponse ||
			math.Abs(got.Sim.TotalLatencyRate-want.Sim.TotalLatencyRate) != 0 {
			t.Errorf("config %d: sim %v/%v, want %v/%v", ci,
				got.Sim.MeanResponse, got.Sim.TotalLatencyRate,
				want.Sim.MeanResponse, want.Sim.TotalLatencyRate)
		}
		if len(got.Net.Log) != len(want.Net.Log) {
			t.Errorf("config %d: log length %d, want %d", ci, len(got.Net.Log), len(want.Net.Log))
		}
	}
}
