package protocol

import (
	"testing"

	"repro/internal/stats"
)

func TestRobustEstimatorSurvivesStalls(t *testing.T) {
	// Node 0's monitoring stalls on 2% of observations. The mean
	// estimator inflates its execution-value estimate (wrongly flags
	// an honest agent and mis-pays it); the median estimator shrugs.
	base := Config{
		Trues:      []float64{1, 2, 4, 8},
		Rate:       8,
		Jobs:       80000,
		Seed:       21,
		StallEvery: map[int]int{0: 50},
		StallDelay: 500,
	}

	meanCfg := base
	meanRes, err := Run(meanCfg)
	if err != nil {
		t.Fatal(err)
	}
	robustCfg := base
	robustCfg.RobustEstimator = true
	robustRes, err := Run(robustCfg)
	if err != nil {
		t.Fatal(err)
	}

	meanErr := stats.RelErr(meanRes.Estimates[0].Value, 1)
	robustErr := stats.RelErr(robustRes.Estimates[0].Value, 1)
	if robustErr >= meanErr {
		t.Errorf("robust estimate error %v should beat mean %v under stalls",
			robustErr, meanErr)
	}
	if robustErr > 0.05 {
		t.Errorf("robust estimate error %v too large", robustErr)
	}
	// The contaminated mean estimator flags the honest node; the
	// robust one does not.
	if !meanRes.Verdicts[0].Deviating {
		t.Error("expected the contaminated mean estimator to wrongly flag node 0")
	}
	if robustRes.Verdicts[0].Deviating {
		t.Errorf("robust estimator wrongly flagged node 0: %+v", robustRes.Verdicts[0])
	}
	// And the robust payments track the oracle.
	if e := stats.RelErr(robustRes.Outcome.Payment[0], robustRes.Oracle.Payment[0]); e > 0.1 {
		t.Errorf("robust payment error %v", e)
	}
}

func TestRobustEstimatorStillCatchesRealDeviators(t *testing.T) {
	strategies := make([]Strategy, 4)
	strategies[0] = FactorStrategy{BidFactor: 1, ExecFactor: 2}
	res, err := Run(Config{
		Trues:           []float64{1, 2, 4, 8},
		Strategies:      strategies,
		Rate:            8,
		Jobs:            80000,
		Seed:            22,
		RobustEstimator: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts[0].Deviating {
		t.Errorf("robust estimator missed a 2x slowdown: %+v", res.Verdicts[0])
	}
	for i := 1; i < 4; i++ {
		if res.Verdicts[i].Deviating {
			t.Errorf("honest node %d flagged: %+v", i, res.Verdicts[i])
		}
	}
}
