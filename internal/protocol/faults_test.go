package protocol

import (
	"fmt"
	"testing"

	"repro/internal/faults"
)

// TestSilentPlanMatchesSilentStrategy pins the satellite requirement
// that the legacy SilentStrategy knob and a faults.Silent plan are
// the same fault: both must produce identical rounds.
func TestSilentPlanMatchesSilentStrategy(t *testing.T) {
	trues := []float64{1, 2, 3, 4}
	legacy := Config{
		Trues:         trues,
		Strategies:    []Strategy{nil, nil, SilentStrategy{}, nil},
		Rate:          8,
		Jobs:          2000,
		Seed:          11,
		AllowDropouts: true,
	}
	plan := legacy
	plan.Strategies = nil
	plan.Faults = faults.New(1, faults.Silent(2))

	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Dropped) != fmt.Sprint(b.Dropped) {
		t.Fatalf("dropped: legacy %v vs plan %v", a.Dropped, b.Dropped)
	}
	if fmt.Sprint(a.Active) != fmt.Sprint(b.Active) {
		t.Fatalf("active: legacy %v vs plan %v", a.Active, b.Active)
	}
	if a.Messages != b.Messages {
		t.Fatalf("messages: legacy %d vs plan %d", a.Messages, b.Messages)
	}
	for i := range a.Outcome.Payment {
		if a.Outcome.Payment[i] != b.Outcome.Payment[i] {
			t.Fatalf("payment %d: legacy %v vs plan %v", i, a.Outcome.Payment[i], b.Outcome.Payment[i])
		}
	}
}

// TestStallPlanMatchesStallEvery pins the same for the StallEvery
// measurement-fault knob.
func TestStallPlanMatchesStallEvery(t *testing.T) {
	trues := []float64{1, 1.5, 2}
	legacy := Config{
		Trues:           trues,
		Rate:            6,
		Jobs:            4000,
		Seed:            7,
		RobustEstimator: true,
		StallEvery:      map[int]int{0: 50},
	}
	plan := legacy
	plan.StallEvery = nil
	plan.Faults = faults.New(1, faults.Stall(0, 50, 0))

	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("estimate %d: legacy %+v vs plan %+v", i, a.Estimates[i], b.Estimates[i])
		}
		if a.Verdicts[i].Deviating != b.Verdicts[i].Deviating {
			t.Fatalf("verdict %d differs", i)
		}
	}
}

func TestLostBidsBecomeDropouts(t *testing.T) {
	cfg := Config{
		Trues:         []float64{1, 2, 3, 4, 5, 6},
		Rate:          10,
		Jobs:          1000,
		Seed:          3,
		AllowDropouts: true,
		Faults:        faults.New(5, faults.Drop(0.15)),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("drop plan lost nothing")
	}
	if len(res.Dropped)+len(res.Active) != 6 {
		t.Fatalf("dropped %v + active %v != 6", res.Dropped, res.Active)
	}
	if len(res.Dropped) == 0 {
		t.Skip("seed lost no bid-phase messages; nothing to assert")
	}
	// A second run is byte-identical: the fault schedule is a pure
	// function of (seed, seq).
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Dropped) != fmt.Sprint(res2.Dropped) || res.Lost != res2.Lost {
		t.Fatalf("non-deterministic faults: %v/%d vs %v/%d",
			res.Dropped, res.Lost, res2.Dropped, res2.Lost)
	}
}

func TestLostBidWithoutDropoutsAborts(t *testing.T) {
	cfg := Config{
		Trues:  []float64{1, 2, 3},
		Rate:   6,
		Jobs:   500,
		Seed:   3,
		Faults: faults.New(1, faults.Drop(1)),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("total message loss should abort the round")
	}
}

// TestLostCompletionReportTrustsBid: when an agent's completion
// report is lost the coordinator cannot audit it and falls back to
// the bid (estimate with zero samples).
func TestLostCompletionReportTrustsBid(t *testing.T) {
	cfg := Config{
		Trues:  []float64{1, 2, 3},
		Rate:   6,
		Jobs:   1000,
		Seed:   9,
		Faults: faults.New(2, faults.Drop(0)), // base plan; drops come from the wrapper below
	}
	// Drop exactly the completed messages via a targeted injector.
	cfg.Faults = completedDropper{faults.None}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 3 {
		t.Fatalf("lost = %d, want 3 completion reports", res.Lost)
	}
	for i, est := range res.Estimates {
		if est.N != 0 {
			t.Fatalf("agent %d estimate has %d samples despite lost report", i, est.N)
		}
		if est.Value != cfg.Trues[i] { // truthful round: bid == true value
			t.Fatalf("agent %d estimate %v != bid %v", i, est.Value, cfg.Trues[i])
		}
		if res.Verdicts[i].Deviating {
			t.Fatalf("agent %d flagged with no evidence", i)
		}
	}
}

// completedDropper drops every completion report and nothing else.
type completedDropper struct{ faults.Injector }

func (d completedDropper) Deliver(m faults.Message) faults.Decision {
	if m.Kind == MsgCompleted.String() {
		return faults.Decision{Drop: true}
	}
	return d.Injector.Deliver(m)
}
