package health

import (
	"math"
	"testing"
)

// allowedEdges is the complete transition relation of the state
// machine. Anything outside it is a bug.
var allowedEdges = map[[2]State]bool{
	{Healthy, Suspect}:  true, // verify-fail
	{Healthy, Ejected}:  true, // audit-two-strike
	{Suspect, Degraded}: true, // max-fails
	{Suspect, Healthy}:  true, // recovered
	{Suspect, Ejected}:  true, // audit-two-strike
	{Degraded, Ejected}: true, // two-strike or audit
	{Degraded, Healthy}: true, // recovered
	{Ejected, Probing}:  true, // fail-timeout
	{Probing, Ejected}:  true, // probe-fail / probe-timeout
	{Probing, Healthy}:  true, // reinstated
}

// FuzzControllerInvariants drives a controller with arbitrary
// observation / silence / audit sequences and checks the structural
// invariants ISSUE.md pins: no invalid state is ever reachable, the
// serving weight stays in (0, 1], every transition follows an allowed
// edge, ejection holds for at least FailTimeout ticks, and
// reinstatement needs at least RecoverStreak probe ticks (the
// hysteresis floor — no instant flap back to serving).
func FuzzControllerInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{9, 9, 9, 0, 0, 0, 9, 9, 9, 0, 0, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte("degrade me, probe me, bring me back"))

	f.Fuzz(func(t *testing.T, events []byte) {
		if len(events) > 512 {
			events = events[:512]
		}
		cfg := Config{
			MaxFails: 2, FailWindow: 4, FailTimeout: 3, RecoverStreak: 2,
			SlowStartTicks: 3,
		}
		c := New(cfg, nil, nil)
		eff := c.Config()
		const id = 5
		if err := c.Track(id, 10); err != nil {
			t.Fatal(err)
		}

		ejectedAt, probingAt := -1, -1
		for tick, b := range events {
			var obs []Observation
			switch b % 6 {
			case 0: // clean pass
				obs = []Observation{obsAt(id, 10, -2)}
			case 1: // hard fail
				obs = []Observation{obsAt(id, 10, 6)}
			case 2: // dead band
				obs = []Observation{obsAt(id, 10, 2)}
			case 3: // silent tick
			case 4: // audit strike plus a pass
				_ = c.Audit(id)
				obs = []Observation{obsAt(id, 10, -2)}
			case 5: // invalid measurement
				obs = []Observation{{ID: id, Est: obsAt(id, 10, 0).Est}}
				obs[0].Est.StdErr = -1
			}

			rep := c.Tick(obs)

			state, weight, ok := c.State(id)
			if !ok {
				t.Fatal("tracked computer vanished")
			}
			if int(state) >= NumStates {
				t.Fatalf("tick %d: invalid state %d", tick, state)
			}
			if !(weight > 0 && weight <= 1) || math.IsNaN(weight) {
				t.Fatalf("tick %d: weight %g outside (0, 1]", tick, weight)
			}

			for _, tr := range rep.Transitions {
				if !allowedEdges[[2]State{tr.From, tr.To}] {
					t.Fatalf("tick %d: illegal transition %v -> %v (%s)", tick, tr.From, tr.To, tr.Reason)
				}
				switch {
				case tr.To == Ejected:
					ejectedAt, probingAt = tr.Tick, -1
				case tr.From == Ejected && tr.To == Probing:
					if ejectedAt >= 0 && tr.Tick-ejectedAt < eff.FailTimeout {
						t.Fatalf("hold-down violated: ejected at %d, probing at %d, fail_timeout %d",
							ejectedAt, tr.Tick, eff.FailTimeout)
					}
					probingAt = tr.Tick
				case tr.From == Probing && tr.To == Healthy:
					if probingAt >= 0 && tr.Tick-probingAt < eff.RecoverStreak {
						t.Fatalf("hysteresis violated: probing at %d, reinstated at %d, streak %d",
							probingAt, tr.Tick, eff.RecoverStreak)
					}
					if weight > eff.SlowStartWeight {
						t.Fatalf("reinstated at weight %g > slow-start cap %g", weight, eff.SlowStartWeight)
					}
				}
			}
		}
	})
}
