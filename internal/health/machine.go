package health

// This file is the per-computer state machine: step advances one
// machine by one control tick. Everything here is deterministic —
// decisions depend only on the machine's state, the configuration and
// the tick's observations, never on wall-clock time or map order —
// and allocation-free in steady state (the fail-tick window reuses
// its backing array; transitions go through the controller's pending
// scratch).

import (
	"math"

	"repro/internal/estimate"
	"repro/internal/obs"
)

// step advances machine m by one control tick, using the tick's
// shared observation slice (m's observations are found via the seen
// index). Transitions are appended to c.pending.
func (c *Controller) step(m *machine, observations []Observation) {
	// The audit two-strike path preempts everything: an audit flag is
	// definitive (payment over-claim caught by the round audit), so
	// two of them eject from any serving state immediately.
	if m.auditStrikes >= c.cfg.AuditStrikes && m.state != Ejected && m.state != Probing {
		c.eject(m, "audit-two-strike", math.NaN())
		return
	}

	switch m.state {
	case Ejected:
		// Hold-down: sit out FailTimeout ticks, then start probing.
		if c.tick-m.ejectedAt >= c.cfg.FailTimeout {
			c.transition(m, Probing, "fail-timeout", math.NaN())
			m.streak = 0
		}
	case Probing:
		c.stepProbing(m, observations)
	default:
		c.stepServing(m, observations)
	}
}

// stepServing handles the Healthy / Suspect / Degraded states: verify
// the tick's observations, slide the fail window, and apply the
// max_fails / recover-streak rules.
func (c *Controller) stepServing(m *machine, observations []Observation) {
	failed, recovered, z := c.verifyTick(m, observations, false)

	if failed {
		m.failTicks = append(m.failTicks, c.tick)
		m.streak = 0
	} else if recovered {
		m.streak++
	}
	// Slide the window: fails older than FailWindow ticks expire.
	cut := 0
	for cut < len(m.failTicks) && m.failTicks[cut] <= c.tick-c.cfg.FailWindow {
		cut++
	}
	if cut > 0 {
		m.failTicks = m.failTicks[:copy(m.failTicks, m.failTicks[cut:])]
	}

	switch m.state {
	case Healthy:
		if failed {
			c.transition(m, Suspect, "verify-fail", z)
		} else {
			c.rampSlowStart(m)
		}
	case Suspect:
		switch {
		case len(m.failTicks) >= c.cfg.MaxFails:
			c.transition(m, Degraded, "max-fails", z)
			m.weight = c.cfg.DegradedWeight
			m.streak = 0
			// The fails that tripped the window are spent: the second
			// strike must be a fresh failing window.
			m.failTicks = m.failTicks[:0]
		case m.streak >= c.cfg.RecoverStreak:
			c.heal(m, z)
		}
	case Degraded:
		switch {
		case len(m.failTicks) >= c.cfg.MaxFails:
			// Second failing window: the two-strike ejection.
			c.eject(m, "two-strike", z)
		case m.streak >= c.cfg.RecoverStreak:
			c.heal(m, z)
		}
	}
}

// stepProbing handles the Probing state: a probe failure or timeout
// sends the computer back to ejected hold-down; RecoverStreak clean
// probes reinstate it with slow-start.
func (c *Controller) stepProbing(m *machine, observations []Observation) {
	failed, recovered, z := c.verifyTick(m, observations, true)
	switch {
	case failed:
		reason := "probe-fail"
		if math.IsNaN(z) {
			reason = "probe-timeout"
		}
		c.transition(m, Ejected, reason, z)
		m.ejectedAt = c.tick
		m.streak = 0
	case recovered:
		m.streak++
		if m.streak >= c.cfg.RecoverStreak {
			c.transition(m, Healthy, "reinstated", z)
			m.weight = c.cfg.SlowStartWeight
			m.reinstatedAt = c.tick
			m.streak = 0
			m.failTicks = m.failTicks[:0]
			m.auditStrikes = 0
			c.met.Transitioned("reinstated-slow-start", false, true)
		}
	}
	// Dead-band probes neither strike nor heal: the streak holds.
}

// verifyTick verifies m's observations for this tick. It returns
// whether the tick counts as a fail, whether it counts as a recovery
// credit, and the deciding z-score (NaN for a silent tick or an
// invalid verdict). probing selects the probe-timeout semantics for a
// silent tick; either way a serving computer that answers nothing is
// failing (a timeout is a fail, as in nginx max_fails).
func (c *Controller) verifyTick(m *machine, observations []Observation, probing bool) (failed, recovered bool, z float64) {
	start, ok := c.seen[m.id]
	if !ok {
		c.met.VerdictObserved("silent", math.NaN())
		return true, false, math.NaN()
	}
	// A tick may carry several estimates for one computer (several
	// traffic slices); one failing verdict fails the tick, and the
	// tick is a recovery credit only if every verdict clears the
	// recover threshold.
	recovered = true
	z = math.NaN()
	for i := start; i < len(observations); i++ {
		o := &observations[i]
		if o.ID != m.id {
			continue
		}
		v := estimate.VerifyWithMargin(o.Est, m.declared, c.cfg.ZTrip, c.cfg.Margin)
		switch {
		case v.Invalid:
			// A measurement the controller cannot verify is a strike,
			// not a pass — same contract as Verdict.Flagged.
			c.met.VerdictObserved("invalid", math.NaN())
			return true, false, math.NaN()
		case v.Deviating:
			c.met.VerdictObserved("fail", v.ZScore)
			return true, false, v.ZScore
		case v.ZScore < c.cfg.ZRecover:
			c.met.VerdictObserved("pass", v.ZScore)
		default:
			// Dead band: between recover and trip thresholds.
			c.met.VerdictObserved("dead-band", v.ZScore)
			recovered = false
		}
		z = v.ZScore
	}
	_ = probing
	return false, recovered, z
}

// rampSlowStart advances a reinstated machine's weight toward 1.
func (c *Controller) rampSlowStart(m *machine) {
	if m.reinstatedAt < 0 || m.weight >= 1 {
		return
	}
	k := c.tick - m.reinstatedAt
	if k >= c.cfg.SlowStartTicks {
		m.weight = 1
		m.reinstatedAt = -1
		return
	}
	w0 := c.cfg.SlowStartWeight
	m.weight = w0 + (1-w0)*float64(k)/float64(c.cfg.SlowStartTicks)
}

// heal returns a suspect or degraded machine to Healthy at full
// weight.
func (c *Controller) heal(m *machine, z float64) {
	c.transition(m, Healthy, "recovered", z)
	m.weight = 1
	m.reinstatedAt = -1
	m.streak = 0
	m.failTicks = m.failTicks[:0]
}

// eject moves a machine to Ejected and starts its hold-down clock.
func (c *Controller) eject(m *machine, reason string, z float64) {
	c.transition(m, Ejected, reason, z)
	m.ejectedAt = c.tick
	m.streak = 0
	m.failTicks = m.failTicks[:0]
	m.auditStrikes = 0
	m.weight = 1 // weight is meaningless while out; reset for re-entry bookkeeping
	m.reinstatedAt = -1
	c.met.Transitioned("ejection", true, false)
}

// transition records a state change.
func (c *Controller) transition(m *machine, to State, reason string, z float64) {
	from := m.state
	m.state = to
	c.pending = append(c.pending, Transition{
		ID: m.id, Tick: c.tick, From: from, To: to, Reason: reason, Z: z,
	})
	c.met.Transitioned(reason, false, false)
	c.tr.Emit(obs.Event{
		Layer: "health", Kind: reason, Node: m.id,
		Detail: from.String() + "->" + to.String(),
		Value:  float64(c.tick),
	})
}

// resetMachine returns a machine to the initial Healthy state.
func (c *Controller) resetMachine(m *machine) {
	m.state = Healthy
	m.weight = 1
	m.failTicks = m.failTicks[:0]
	m.streak = 0
	m.auditStrikes = 0
	m.reinstatedAt = -1
}

// insertSorted inserts v into ascending-sorted xs.
func insertSorted(xs []int, v int) []int {
	xs = append(xs, v)
	i := len(xs) - 1
	for i > 0 && xs[i-1] > v {
		xs[i] = xs[i-1]
		i--
	}
	xs[i] = v
	return xs
}

// removeSorted removes v from ascending-sorted xs, preserving order.
func removeSorted(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			copy(xs[i:], xs[i+1:])
			return xs[:len(xs)-1]
		}
	}
	return xs
}
