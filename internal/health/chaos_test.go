package health

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/registry"
)

// chaosFaulty maps the fault roles of the chaos population: 12
// computers, ids 0..11 from serial registry adds, with one crashed,
// one stalled, one Byzantine and one flapping. Everyone else is
// honest.
var chaosFaulty = map[int]string{
	1: "crash", 4: "stall", 7: "byzantine", 10: "flap",
}

func chaosPlan(seed uint64) *faults.Plan {
	return faults.New(seed,
		faults.Crash(1),
		faults.Stall(40, 1, 4),
		faults.Byzantine(1.6, 7),
		faults.Flap(6, 0.5, 10),
	)
}

// chaosRun is one seeded replication: a 12-computer population under
// the chaos plan with a fault window [5, 60) and 120 control ticks,
// so the run exercises injection, detection, ejection, repair,
// probing and slow-start reinstatement. It returns the bitwise
// serializations of the transition log and the corrected-epoch
// stream, plus the final controller for state assertions.
func chaosRun(t *testing.T, seed uint64, shards int) (transcript, epochs string, c *Controller) {
	t.Helper()
	reg, err := registry.New(registry.Config{Rate: 10, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(seed, chaosPlan(seed), SourceConfig{FaultFrom: 5, FaultUntil: 60})
	// RecoverStreak must exceed the flapping computer's healthy
	// half-phase (period 6, duty 0.5 → 3 clean ticks per cycle), or the
	// flapper heals from suspect/degraded every cycle and oscillates
	// forever instead of being ejected — exactly the situation the
	// hysteresis knobs exist for.
	c = New(Config{
		MaxFails: 3, FailWindow: 6, FailTimeout: 8, RecoverStreak: 4,
		SlowStartTicks: 6,
	}, reg, nil)

	for i := 0; i < 12; i++ {
		declared := 2 + 0.5*float64(i)
		id, err := reg.Add(declared)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("serial add id = %d, want %d", id, i)
		}
		src.Add(id, declared)
		if err := c.Track(id, declared); err != nil {
			t.Fatal(err)
		}
	}

	var tlog, elog strings.Builder
	for tick := 1; tick <= 120; tick++ {
		rep := c.Tick(src.Tick(tick))
		for _, tr := range rep.Transitions {
			fmt.Fprintf(&tlog, "%d:%d:%v>%v:%s:%016x\n",
				tr.Tick, tr.ID, tr.From, tr.To, tr.Reason, math.Float64bits(tr.Z))
		}
		if rep.Sealed == nil {
			continue
		}
		s := rep.Sealed
		d, w := s.Correction()
		fmt.Fprintf(&elog, "%d:%d:%016x:%d:%d:%d", rep.Tick, s.Epoch(), math.Float64bits(s.Sum()), s.N(), d, w)
		for _, id := range s.IDs() {
			v, _ := s.Value(id)
			l, _ := s.Load(id)
			fmt.Fprintf(&elog, "|%d:%016x:%016x", id, math.Float64bits(v), math.Float64bits(l))
		}
		elog.WriteByte('\n')
	}
	return tlog.String(), elog.String(), c
}

// TestChaosReplications is the acceptance gate: across 32 seeded
// replications the controller ejects every faulty computer within the
// detection budget, never degrades or ejects an honest one, and
// reinstates every repaired computer through the slow-start ramp back
// to full weight.
func TestChaosReplications(t *testing.T) {
	for seed := uint64(1); seed <= 32; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			transcript, _, c := chaosRun(t, seed, 4)

			// Parse ejection and reinstatement ticks per computer out of
			// the transition transcript.
			ejectedAt := map[int]int{}
			reinstatedAt := map[int]int{}
			touched := map[int]bool{}
			for _, line := range strings.Split(strings.TrimSpace(transcript), "\n") {
				var tick, id int
				var edge, reason, zbits string
				if _, err := fmt.Sscanf(line, "%d:%d:%s", &tick, &id, &edge); err != nil {
					t.Fatalf("bad transcript line %q: %v", line, err)
				}
				parts := strings.Split(line, ":")
				edge, reason, zbits = parts[2], parts[3], parts[4]
				_ = zbits
				touched[id] = true
				if strings.HasSuffix(edge, ">ejected") && reason != "probe-timeout" && reason != "probe-fail" {
					if _, ok := ejectedAt[id]; !ok {
						ejectedAt[id] = tick
					}
				}
				if reason == "reinstated" {
					reinstatedAt[id] = tick
				}
			}

			// Zero false positives: honest computers end healthy at full
			// weight and never transitioned at all.
			for id := 0; id < 12; id++ {
				if chaosFaulty[id] != "" {
					continue
				}
				if touched[id] {
					t.Errorf("honest computer %d transitioned (false positive)", id)
				}
				st, w, _ := c.State(id)
				if st != Healthy || w != 1 {
					t.Errorf("honest computer %d ended %v at weight %g", id, st, w)
				}
			}

			// Every faulty computer is ejected within the detection
			// budget: faults start at tick 5; two failing max_fails
			// windows back to back bound the two-strike path, with the
			// flapping computer allowed its healthy half-phases.
			budget := map[string]int{"crash": 5 + 2*6, "stall": 5 + 2*6, "byzantine": 5 + 2*6, "flap": 5 + 4*6}
			for id, role := range chaosFaulty {
				at, ok := ejectedAt[id]
				if !ok {
					t.Errorf("%s computer %d never ejected", role, id)
					continue
				}
				if at > budget[role] {
					t.Errorf("%s computer %d ejected at tick %d, budget %d", role, id, at, budget[role])
				}
			}

			// Every faulty computer is repaired at tick 60 and must come
			// back through probing + slow-start to full weight by the end.
			for id, role := range chaosFaulty {
				at, ok := reinstatedAt[id]
				if !ok {
					t.Errorf("%s computer %d never reinstated after repair", role, id)
					continue
				}
				if at < 60 {
					t.Errorf("%s computer %d reinstated at tick %d, before repair at 60", role, id, at)
				}
				st, w, _ := c.State(id)
				if st != Healthy || w != 1 {
					t.Errorf("%s computer %d ended %v at weight %g, want healthy at 1", role, id, st, w)
				}
			}
		})
	}
}

// TestChaosReplayIdentical pins determinism: the transition log and
// the corrected-epoch stream are byte-identical across repeated runs
// and across registry shard counts.
func TestChaosReplayIdentical(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		baseT, baseE, _ := chaosRun(t, seed, 1)
		if baseT == "" || baseE == "" {
			t.Fatalf("seed %d: empty transcript or epoch stream", seed)
		}
		for _, shards := range []int{1, 4, 32} {
			for rep := 0; rep < 2; rep++ {
				gotT, gotE, _ := chaosRun(t, seed, shards)
				if gotT != baseT {
					t.Fatalf("seed %d shards %d rep %d: transition log diverged", seed, shards, rep)
				}
				if gotE != baseE {
					t.Fatalf("seed %d shards %d rep %d: corrected-epoch stream diverged", seed, shards, rep)
				}
			}
		}
	}
}
