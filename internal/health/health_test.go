package health

import (
	"math"
	"testing"

	"repro/internal/estimate"
	"repro/internal/registry"
	"repro/internal/supervise"
)

// testConfig keeps the thresholds small so lifecycle tests stay short.
func testConfig() Config {
	return Config{
		ZTrip: 3, ZRecover: 1, Margin: 0.05,
		MaxFails: 3, FailWindow: 8, AuditStrikes: 2,
		FailTimeout: 5, RecoverStreak: 2,
		DegradedWeight: 0.5, SlowStartWeight: 0.25, SlowStartTicks: 4,
	}
}

// obsAt builds an observation whose verification z-score against the
// declared value (under testConfig's margin) is exactly z.
func obsAt(id int, declared, z float64) Observation {
	se := 0.01 * declared
	v := declared*1.05 + z*se
	return Observation{ID: id, Est: estimate.Estimate{Value: v, StdErr: se, N: 64}}
}

func mustTrack(t *testing.T, c *Controller, id int, declared float64) {
	t.Helper()
	if err := c.Track(id, declared); err != nil {
		t.Fatalf("Track(%d, %g): %v", id, declared, err)
	}
}

func wantState(t *testing.T, c *Controller, id int, s State) {
	t.Helper()
	got, _, ok := c.State(id)
	if !ok {
		t.Fatalf("computer %d untracked", id)
	}
	if got != s {
		t.Fatalf("computer %d: state = %v, want %v (tick context above)", id, got, s)
	}
}

// TestLifecycleTransitions drives one computer through the full arc:
// healthy → suspect → degraded → ejected → probing → healthy with
// slow-start, checking state, weight and transition reasons at every
// stage.
func TestLifecycleTransitions(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 7, 10)

	fail := []Observation{obsAt(7, 10, 5)}
	pass := []Observation{obsAt(7, 10, -2)}

	var reasons []string
	tick := func(o []Observation) TickReport {
		rep := c.Tick(o)
		for _, tr := range rep.Transitions {
			reasons = append(reasons, tr.Reason)
		}
		return rep
	}

	// Three fails inside the window: healthy → suspect → degraded.
	tick(fail)
	wantState(t, c, 7, Suspect)
	tick(fail)
	wantState(t, c, 7, Suspect)
	tick(fail)
	wantState(t, c, 7, Degraded)
	if _, w, _ := c.State(7); w != 0.5 {
		t.Fatalf("degraded weight = %g, want 0.5", w)
	}

	// A second failing window: degraded → ejected.
	tick(fail)
	tick(fail)
	tick(fail)
	wantState(t, c, 7, Ejected)

	// Hold-down: FailTimeout=5 ticks out (observations ignored), then
	// probing starts.
	for i := 0; i < 4; i++ {
		tick(pass)
		wantState(t, c, 7, Ejected)
	}
	tick(pass)
	wantState(t, c, 7, Probing)

	// RecoverStreak=2 clean probes: probing → healthy at slow-start
	// weight.
	tick(pass)
	wantState(t, c, 7, Probing)
	tick(pass)
	wantState(t, c, 7, Healthy)
	if _, w, _ := c.State(7); w != 0.25 {
		t.Fatalf("slow-start weight = %g, want 0.25", w)
	}

	// The weight ramps back to 1 over SlowStartTicks=4.
	want := []float64{0.25 + 0.75*1.0/4, 0.25 + 0.75*2.0/4, 0.25 + 0.75*3.0/4, 1, 1}
	for i, ww := range want {
		tick(pass)
		if _, w, _ := c.State(7); w != ww {
			t.Fatalf("slow-start tick %d: weight = %g, want %g", i+1, w, ww)
		}
	}

	wantReasons := []string{"verify-fail", "max-fails", "two-strike", "fail-timeout", "reinstated"}
	if len(reasons) != len(wantReasons) {
		t.Fatalf("transition reasons = %v, want %v", reasons, wantReasons)
	}
	for i := range reasons {
		if reasons[i] != wantReasons[i] {
			t.Fatalf("transition %d: reason = %q, want %q (all: %v)", i, reasons[i], wantReasons[i], reasons)
		}
	}
}

// TestSuspectHeals pins the short arc: one fail, then a recovery
// streak returns the computer to healthy at full weight without ever
// degrading.
func TestSuspectHeals(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 0, 4)

	c.Tick([]Observation{obsAt(0, 4, 9)})
	wantState(t, c, 0, Suspect)
	c.Tick([]Observation{obsAt(0, 4, -1)})
	wantState(t, c, 0, Suspect)
	rep := c.Tick([]Observation{obsAt(0, 4, -1)})
	wantState(t, c, 0, Healthy)
	if _, w, _ := c.State(0); w != 1 {
		t.Fatalf("healed weight = %g, want 1", w)
	}
	if len(rep.Transitions) != 1 || rep.Transitions[0].Reason != "recovered" {
		t.Fatalf("heal transitions = %+v, want one 'recovered'", rep.Transitions)
	}
}

// TestDeadBandHolds pins the hysteresis: observations between ZRecover
// and ZTrip neither strike nor heal, so a boundary-hovering computer
// stays put indefinitely.
func TestDeadBandHolds(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 3, 2)

	c.Tick([]Observation{obsAt(3, 2, 5)})
	wantState(t, c, 3, Suspect)
	for i := 0; i < 20; i++ {
		rep := c.Tick([]Observation{obsAt(3, 2, 2)}) // between 1 and 3
		if len(rep.Transitions) != 0 {
			t.Fatalf("dead-band tick %d produced transitions: %+v", i, rep.Transitions)
		}
	}
	wantState(t, c, 3, Suspect)
}

// TestFailWindowSlides pins the sliding window: fails spaced wider
// than FailWindow never accumulate to max_fails.
func TestFailWindowSlides(t *testing.T) {
	cfg := testConfig()
	cfg.FailWindow = 3
	c := New(cfg, nil, nil)
	mustTrack(t, c, 1, 1)

	for i := 0; i < 5; i++ {
		c.Tick([]Observation{obsAt(1, 1, 5)}) // fail
		for j := 0; j < 3; j++ {
			c.Tick([]Observation{obsAt(1, 1, 2)}) // dead band, window slides
		}
		wantState(t, c, 1, Suspect)
	}
}

// TestSilentTickIsAFail pins the timeout semantics: a serving computer
// with no observation counts a fail (nginx max_fails counts timeouts).
func TestSilentTickIsAFail(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 2, 5)

	c.Tick(nil)
	wantState(t, c, 2, Suspect)
	c.Tick(nil)
	c.Tick(nil)
	wantState(t, c, 2, Degraded)
	for i := 0; i < 3; i++ {
		c.Tick(nil)
	}
	wantState(t, c, 2, Ejected)
}

// TestInvalidEstimateIsAFail pins the Verdict.Flagged contract: an
// unverifiable measurement is a strike, not a pass.
func TestInvalidEstimateIsAFail(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 0, 5)
	bad := Observation{ID: 0, Est: estimate.Estimate{Value: math.NaN(), StdErr: 1, N: 8}}
	c.Tick([]Observation{bad})
	wantState(t, c, 0, Suspect)
}

// TestProbeFailRestartsHoldDown pins probing → ejected: a failing
// probe sends the computer back to a full hold-down period.
func TestProbeFailRestartsHoldDown(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 4, 8)

	// Eject via audit strikes (fast path), then walk to probing.
	if err := c.Audit(4); err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(4); err != nil {
		t.Fatal(err)
	}
	rep := c.Tick(nil)
	wantState(t, c, 4, Ejected)
	if len(rep.Transitions) != 1 || rep.Transitions[0].Reason != "audit-two-strike" {
		t.Fatalf("audit transitions = %+v, want one 'audit-two-strike'", rep.Transitions)
	}
	for i := 0; i < 5; i++ {
		c.Tick(nil)
	}
	wantState(t, c, 4, Probing)

	// One failing probe: straight back to ejected, full hold-down.
	c.Tick([]Observation{obsAt(4, 8, 6)})
	wantState(t, c, 4, Ejected)
	for i := 0; i < 4; i++ {
		c.Tick(nil)
		wantState(t, c, 4, Ejected)
	}
	c.Tick(nil)
	wantState(t, c, 4, Probing)

	// A silent probe is a probe-timeout, same consequence.
	rep = c.Tick(nil)
	wantState(t, c, 4, Ejected)
	if len(rep.Transitions) != 1 || rep.Transitions[0].Reason != "probe-timeout" {
		t.Fatalf("probe-timeout transitions = %+v", rep.Transitions)
	}
}

// TestApplyVerdict pins the supervise bridge: roster-local exclusion
// indices translate through the id roster into audit strikes.
func TestApplyVerdict(t *testing.T) {
	c := New(testConfig(), nil, nil)
	roster := []int{10, 20, 30}
	for _, id := range roster {
		mustTrack(t, c, id, 5)
	}
	v := supervise.Verdict{ExcludeAudit: []int{1, 99, -1}} // only index 1 is sane
	c.ApplyVerdict(v, roster)
	c.ApplyVerdict(v, roster)
	c.Tick([]Observation{obsAt(10, 5, -2), obsAt(20, 5, -2), obsAt(30, 5, -2)})
	wantState(t, c, 10, Healthy)
	wantState(t, c, 20, Ejected)
	wantState(t, c, 30, Healthy)
}

// TestCorrectedSealing pins the registry integration: state changes
// seal corrected epochs with ejected computers dropped and degraded /
// slow-starting ones discounted, while quiet ticks seal nothing.
func TestCorrectedSealing(t *testing.T) {
	reg, err := registry.New(registry.Config{Rate: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	for i := range ids {
		id, err := reg.Add(4)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	c := New(testConfig(), reg, nil)
	for _, id := range ids {
		mustTrack(t, c, id, 4)
	}

	allPass := func() []Observation {
		var o []Observation
		for _, id := range ids {
			o = append(o, obsAt(id, 4, -2))
		}
		return o
	}
	failOne := func(bad int) []Observation {
		var o []Observation
		for _, id := range ids {
			z := -2.0
			if id == bad {
				z = 6
			}
			o = append(o, obsAt(id, 4, z))
		}
		return o
	}

	// Track marked the controller dirty, so the first tick seals.
	rep := c.Tick(allPass())
	if rep.Sealed == nil {
		t.Fatal("first tick sealed nothing")
	}
	if d, w := rep.Sealed.Correction(); d != 0 || w != 0 {
		t.Fatalf("clean epoch correction = (%d, %d), want (0, 0)", d, w)
	}
	base := rep.Sealed.Sum()

	// A quiet tick seals nothing new.
	if rep = c.Tick(allPass()); rep.Sealed != nil {
		t.Fatalf("quiet tick sealed epoch %d", rep.Sealed.Epoch())
	}

	// Degrade ids[1]: three fails. The degraded epoch discounts it.
	for i := 0; i < 3; i++ {
		rep = c.Tick(failOne(ids[1]))
	}
	wantState(t, c, ids[1], Degraded)
	if rep.Sealed == nil {
		t.Fatal("degradation sealed nothing")
	}
	if d, w := rep.Sealed.Correction(); d != 0 || w != 1 {
		t.Fatalf("degraded epoch correction = (%d, %d), want (0, 1)", d, w)
	}
	// Discounting a bid to weight 0.5 halves its 1/b contribution.
	wantSum := base - 0.5*(1.0/4)
	if math.Abs(rep.Sealed.Sum()-wantSum) > 1e-12 {
		t.Fatalf("degraded epoch sum = %g, want %g", rep.Sealed.Sum(), wantSum)
	}

	// Eject it: the epoch drops it entirely and its load goes to 0.
	for i := 0; i < 3; i++ {
		rep = c.Tick(failOne(ids[1]))
	}
	wantState(t, c, ids[1], Ejected)
	if rep.Sealed == nil {
		t.Fatal("ejection sealed nothing")
	}
	if rep.Sealed.Contains(ids[1]) {
		t.Fatalf("ejected computer %d still in corrected epoch", ids[1])
	}
	if d, _ := rep.Sealed.Correction(); d != 1 {
		t.Fatalf("ejected epoch dropped = %d, want 1", d)
	}
	if got := rep.Sealed.N(); got != 2 {
		t.Fatalf("ejected epoch N = %d, want 2", got)
	}

	// The registry itself is untouched: a plain seal still has all 3.
	if snap := reg.Seal(); snap.N() != 3 {
		t.Fatalf("registry mutated: plain seal N = %d, want 3", snap.N())
	}
}

// TestTrackValidation pins input sanitization.
func TestTrackValidation(t *testing.T) {
	c := New(Config{}, nil, nil)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := c.Track(1, bad); err == nil {
			t.Fatalf("Track accepted declared = %g", bad)
		}
	}
	if err := c.Track(-1, 5); err == nil {
		t.Fatal("Track accepted negative id")
	}
	if err := c.Audit(99); err != ErrUntracked {
		t.Fatalf("Audit(untracked) = %v, want ErrUntracked", err)
	}
}

// TestForget pins roster removal: a forgotten computer disappears from
// the census and its corrections are lifted.
func TestForget(t *testing.T) {
	c := New(testConfig(), nil, nil)
	mustTrack(t, c, 1, 2)
	mustTrack(t, c, 2, 2)
	c.Forget(1)
	if _, _, ok := c.State(1); ok {
		t.Fatal("forgotten computer still tracked")
	}
	if got := c.Tracked(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Tracked() = %v, want [2]", got)
	}
	c.Forget(1) // idempotent
}

// TestConfigDefaults pins the zero-value defaulting, including the
// hysteresis clamp ZRecover < ZTrip.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ZTrip != 3 || cfg.ZRecover != 1 || cfg.Margin != 0.05 {
		t.Fatalf("thresholds = (%g, %g, %g)", cfg.ZTrip, cfg.ZRecover, cfg.Margin)
	}
	if cfg.MaxFails != 3 || cfg.FailWindow != 8 || cfg.FailTimeout != 10 {
		t.Fatalf("windows = (%d, %d, %d)", cfg.MaxFails, cfg.FailWindow, cfg.FailTimeout)
	}
	inverted := Config{ZTrip: 2, ZRecover: 5}.withDefaults()
	if inverted.ZRecover >= inverted.ZTrip {
		t.Fatalf("hysteresis clamp failed: recover %g >= trip %g", inverted.ZRecover, inverted.ZTrip)
	}
}

// TestStateString covers the census labels.
func TestStateString(t *testing.T) {
	want := map[State]string{
		Healthy: "healthy", Suspect: "suspect", Degraded: "degraded",
		Ejected: "ejected", Probing: "probing", State(99): "state(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), got, w)
		}
	}
}
