package health

// Source is the deterministic synthetic observation generator: it
// turns a faults.Plan into the estimate streams the Controller would
// see from live traffic, so every state transition — degradation,
// ejection, probing, slow-start recovery — can be replayed bitwise
// from (seed, plan, declared values) alone. The chaos tests and the
// lbserve -health demo are built on it.

import (
	"math"
	"sort"

	"repro/internal/estimate"
	"repro/internal/faults"
)

// SourceConfig tunes the synthetic observation stream. The zero value
// gets defaults.
type SourceConfig struct {
	// Noise is the relative sampling noise of a healthy observation
	// (default 0.01: estimates land within ~1% of truth).
	Noise float64
	// Samples is the pseudo sample count behind each estimate
	// (default 64); the standard error shrinks as 1/sqrt(Samples).
	Samples int
	// Slowdown is the realized-latency multiplier of a stalled or
	// flapping-in-stalled-phase computer (default 1.5: it executes 50%
	// slower than declared).
	Slowdown float64
	// FaultFrom is the first control tick (1-based) at which the fault
	// plan is active (default 1: faulty from the start). Before it,
	// every computer behaves honestly — use it to let the controller
	// settle, or a mid-run kill.
	FaultFrom int
	// FaultUntil is the first tick at which faults stop (the computer
	// is repaired); <= 0 means the faults persist forever. A window
	// [FaultFrom, FaultUntil) plus a long run exercises the full
	// eject → probe → slow-start recovery arc.
	FaultUntil int
}

func (c SourceConfig) withDefaults() SourceConfig {
	if c.Noise <= 0 || math.IsNaN(c.Noise) {
		c.Noise = 0.01
	}
	if c.Samples <= 1 {
		c.Samples = 64
	}
	if c.Slowdown <= 1 || math.IsNaN(c.Slowdown) {
		c.Slowdown = 1.5
	}
	if c.FaultFrom <= 0 {
		c.FaultFrom = 1
	}
	return c
}

// Source generates per-tick Observation batches. It is deterministic:
// Tick(k) is a pure function of (seed, plan, declared values, k).
type Source struct {
	seed     uint64
	inj      faults.Injector
	cfg      SourceConfig
	ids      []int
	declared map[int]float64
	buf      []Observation
}

// NewSource returns a source over the fault plan (nil for an all-honest
// population).
func NewSource(seed uint64, inj faults.Injector, cfg SourceConfig) *Source {
	return &Source{
		seed:     seed,
		inj:      inj,
		cfg:      cfg.withDefaults(),
		declared: map[int]float64{},
	}
}

// Add registers a computer and its declared (truthful) execution
// value. Re-adding an id updates the declaration.
func (s *Source) Add(id int, declared float64) {
	if _, ok := s.declared[id]; !ok {
		s.ids = append(s.ids, id)
		sort.Ints(s.ids)
	}
	s.declared[id] = declared
}

// IDs returns the registered ids in ascending order.
func (s *Source) IDs() []int { return s.ids }

// Active reports whether the fault plan applies at the given tick.
func (s *Source) Active(tick int) bool {
	if s.inj == nil {
		return false
	}
	return tick >= s.cfg.FaultFrom && (s.cfg.FaultUntil <= 0 || tick < s.cfg.FaultUntil)
}

// Tick produces the tick's observations in ascending-id order. Crashed
// and silent computers produce none (the controller counts the silent
// tick as a timeout); stalled and flapping-in-phase computers report
// Slowdown-inflated latency; Byzantine computers report latency
// inflated by their claim factor. The returned slice is reused across
// calls.
func (s *Source) Tick(tick int) []Observation {
	s.buf = s.buf[:0]
	active := s.Active(tick)
	for _, id := range s.ids {
		factor := 1.0
		if active {
			switch s.inj.Class(id) {
			case faults.NodeCrashed, faults.NodeSilent:
				continue // no response: the controller sees a timeout
			case faults.NodeStalled:
				factor = s.cfg.Slowdown
			case faults.NodeByzantine:
				if cf := s.inj.ClaimFactor(id); cf > 1 {
					factor = cf
				} else {
					factor = s.cfg.Slowdown
				}
			case faults.NodeFlapping:
				if faults.FlapStalled(s.inj, id, tick) {
					factor = s.cfg.Slowdown
				}
			}
		}
		truth := s.declared[id] * factor
		g := gauss(s.seed, uint64(id), uint64(tick))
		value := truth * (1 + s.cfg.Noise*g)
		se := truth * s.cfg.Noise / math.Sqrt(float64(s.cfg.Samples))
		s.buf = append(s.buf, Observation{
			ID: id,
			Est: estimate.Estimate{
				Value:  value,
				StdErr: se,
				N:      s.cfg.Samples,
				Lo:     value - 1.959963984540054*se,
				Hi:     value + 1.959963984540054*se,
			},
		})
	}
	return s.buf
}

// h01 maps (seed, a, b) to a uniform in [0, 1) via a splitmix64-style
// finalizer — the same stateless-hash discipline as package faults, so
// streams replay identically regardless of call order.
func h01(seed, a, b uint64) float64 {
	x := seed ^ a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// gauss draws a standard normal deterministically from (seed, a, b)
// via Box-Muller over two hash lanes.
func gauss(seed, a, b uint64) float64 {
	u1 := h01(seed, a, b*2+1)
	u2 := h01(seed, a, b*2+2)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
