// Package health closes the loop between observation and allocation:
// the paper's verification step — "the processing rate with which the
// jobs were actually executed is known to the mechanism" — run
// continuously against live traffic instead of once per round, driving
// serving decisions the way an SRE control loop does.
//
// A Controller consumes per-computer realized-latency estimates
// (estimate.Estimate streams, fed from live traffic or a synthetic
// probe Source), verifies each against the computer's declared value
// with estimate.VerifyWithMargin, and runs a per-computer state
// machine:
//
//	healthy → suspect → degraded → ejected → probing → healthy
//
// with nginx-style max_fails / fail_timeout semantics: a computer that
// fails verification MaxFails times inside a FailWindow-tick sliding
// window is degraded (its capacity discounted), a second failing
// window — or two audit strikes fed from supervise.Classify verdicts —
// ejects it, an ejected computer sits out FailTimeout ticks before
// being probed, and a probed computer that passes RecoverStreak
// consecutive checks is reinstated at a capped weight that ramps back
// to full over SlowStartTicks control intervals.
//
// Trip and recovery are deliberately asymmetric (hysteresis): a fail
// requires the estimate to exceed declared·(1+Margin) at z > ZTrip,
// while a recovery credit requires z < ZRecover with ZRecover < ZTrip.
// Observations landing between the two thresholds are a dead band that
// neither strikes nor heals, so a computer hovering at the boundary —
// or flapping deterministically, see faults.Flap — cannot oscillate
// the control loop at observation frequency.
//
// On every tick whose state or weights changed, the controller seals a
// corrected registry epoch (registry.SealCorrected) with degraded and
// slow-starting computers' rates discounted and ejected computers
// removed, so lock-free snapshot readers always see a health-adjusted
// allocation. The controller is deterministic: decisions are pure
// functions of the observation sequence, machines are visited in
// ascending id order, and the sealed corrected epochs are bitwise
// reproducible for any registry shard count (the chaos tests pin
// this).
//
// The controller is not safe for concurrent use; it is a single
// control loop. Registry readers and writers stay fully concurrent —
// only Tick itself must be serialized.
package health

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/estimate"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/supervise"
)

// State is one computer's position in the serving state machine.
type State uint8

const (
	// Healthy computers serve at full (or slow-start) weight.
	Healthy State = iota
	// Suspect computers failed verification recently but below the
	// max_fails trip; they serve at full weight under scrutiny.
	Suspect
	// Degraded computers tripped max_fails; they serve at
	// DegradedWeight while the controller watches for a second strike.
	Degraded
	// Ejected computers are removed from corrected epochs entirely.
	Ejected
	// Probing computers are still out of serving but receiving
	// synthetic probes; a recovery streak reinstates them.
	Probing
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Degraded:
		return "degraded"
	case Ejected:
		return "ejected"
	case Probing:
		return "probing"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// NumStates is the size of the state space (for table-driven tests).
const NumStates = 5

// Config tunes the control loop. The zero value gets production-ish
// defaults; see each field.
type Config struct {
	// ZTrip is the one-sided z threshold a verification failure must
	// exceed (default 3, ~0.1% per-observation false positives).
	ZTrip float64
	// ZRecover is the z threshold a recovery credit must stay under
	// (default 1). Values >= ZTrip are clamped to ZTrip/2: recovery
	// must be strictly harder than not-failing or hysteresis is lost.
	ZRecover float64
	// Margin is the practical-significance margin passed to
	// estimate.VerifyWithMargin (default 0.05: slowdowns under 5% are
	// not worth punishing).
	Margin float64
	// MaxFails is the nginx max_fails analog: verification failures
	// inside one FailWindow before the computer is degraded
	// (default 3).
	MaxFails int
	// FailWindow is the sliding window, in control ticks, over which
	// fails accumulate (default 8).
	FailWindow int
	// AuditStrikes is the two-strike audit policy: supervised-round
	// audit flags (supervise.Classify verdicts) before immediate
	// ejection from any state (default 2).
	AuditStrikes int
	// FailTimeout is the nginx fail_timeout analog: ticks an ejected
	// computer sits out before the controller starts probing it
	// (default 10).
	FailTimeout int
	// RecoverStreak is how many consecutive recovery credits — probes
	// under z < ZRecover — reinstate a probing computer, or heal a
	// suspect/degraded one (default 3).
	RecoverStreak int
	// DegradedWeight is the capacity factor of a degraded computer
	// (default 0.5).
	DegradedWeight float64
	// SlowStartWeight is the capped weight a reinstated computer
	// re-enters at (default 0.25).
	SlowStartWeight float64
	// SlowStartTicks is how many control ticks the weight takes to
	// ramp from SlowStartWeight back to 1 (default 8).
	SlowStartTicks int
}

func (c Config) withDefaults() Config {
	if c.ZTrip <= 0 {
		c.ZTrip = 3
	}
	if c.ZRecover <= 0 {
		c.ZRecover = 1
	}
	if c.ZRecover >= c.ZTrip {
		c.ZRecover = c.ZTrip / 2
	}
	if c.Margin < 0 || math.IsNaN(c.Margin) {
		c.Margin = 0
	} else if c.Margin == 0 {
		c.Margin = 0.05
	}
	if c.MaxFails <= 0 {
		c.MaxFails = 3
	}
	if c.FailWindow <= 0 {
		c.FailWindow = 8
	}
	if c.AuditStrikes <= 0 {
		c.AuditStrikes = 2
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 10
	}
	if c.RecoverStreak <= 0 {
		c.RecoverStreak = 3
	}
	if c.DegradedWeight <= 0 || c.DegradedWeight > 1 || math.IsNaN(c.DegradedWeight) {
		c.DegradedWeight = 0.5
	}
	if c.SlowStartWeight <= 0 || c.SlowStartWeight > 1 || math.IsNaN(c.SlowStartWeight) {
		c.SlowStartWeight = 0.25
	}
	if c.SlowStartTicks <= 0 {
		c.SlowStartTicks = 8
	}
	return c
}

// Observation is one realized-latency estimate for one computer,
// delivered to the controller at a control tick. Estimates for
// computers in Probing state are the recovery probes; estimates for
// ejected computers are ignored (no traffic is routed to them, so
// anything arriving is stale).
type Observation struct {
	// ID is the registry id of the observed computer.
	ID int
	// Est is the realized execution-value estimate ť̂ (see package
	// estimate).
	Est estimate.Estimate
}

// Transition records one state change.
type Transition struct {
	// ID is the computer; Tick the control tick of the change.
	ID, Tick int
	// From and To are the states.
	From, To State
	// Reason is the canonical cause: verify-fail, max-fails,
	// two-strike, audit-two-strike, recovered, fail-timeout,
	// probe-fail, probe-timeout, reinstated.
	Reason string
	// Z is the z-score of the deciding observation (NaN when the
	// transition was not observation-driven).
	Z float64
}

// TickReport is the outcome of one control tick.
type TickReport struct {
	// Tick is the control tick just processed (1-based).
	Tick int
	// Transitions lists state changes in ascending computer-id order.
	Transitions []Transition
	// Sealed is the corrected epoch sealed this tick, nil when nothing
	// changed and the previous epoch still describes the population.
	Sealed *registry.Snapshot
}

// machine is one computer's state-machine instance.
type machine struct {
	id       int
	declared float64
	state    State
	weight   float64

	failTicks    []int // ticks of recent verification fails (pruned to the window)
	streak       int   // consecutive recovery credits
	auditStrikes int
	ejectedAt    int // tick of the last ejection
	reinstatedAt int // tick of the last slow-start reinstatement, -1 when none
}

// Controller is the health control loop. See the package comment.
type Controller struct {
	cfg  Config
	reg  *registry.Registry
	met  *obs.HealthMetrics
	tr   *obs.Observer
	ids  []int // tracked ids, ascending
	byID map[int]*machine
	tick int

	dirty   bool // state/weight changed since the last corrected seal
	corr    registry.Correction
	seen    map[int]int  // scratch: id -> first observation index this tick
	pending []Transition // scratch: transitions of the machine being stepped
}

// New returns a controller over reg (which may be nil for a pure
// state-machine use, e.g. tests or sources that manage their own
// allocation). met receives the HealthMetrics bundle; ob the trace
// events. Both may be nil.
func New(cfg Config, reg *registry.Registry, ob *obs.Observer) *Controller {
	return &Controller{
		cfg:  cfg.withDefaults(),
		reg:  reg,
		met:  ob.HealthMetrics(),
		tr:   ob,
		byID: map[int]*machine{},
		corr: registry.Correction{Weights: map[int]float64{}, Drop: map[int]bool{}},
		seen: map[int]int{},
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Track registers a computer with the controller: its registry id and
// the execution value it declared (the bid its verification is tested
// against). Tracking an already-tracked id updates the declaration
// and resets the machine to Healthy.
func (c *Controller) Track(id int, declared float64) error {
	if declared <= 0 || math.IsNaN(declared) || math.IsInf(declared, 0) {
		return fmt.Errorf("health: invalid declared value %g for computer %d", declared, id)
	}
	if id < 0 {
		return fmt.Errorf("health: invalid computer id %d", id)
	}
	if m, ok := c.byID[id]; ok {
		m.declared = declared
		c.resetMachine(m)
		c.dirty = true
		return nil
	}
	c.byID[id] = &machine{id: id, declared: declared, state: Healthy, weight: 1, reinstatedAt: -1}
	c.ids = insertSorted(c.ids, id)
	c.dirty = true
	return nil
}

// Forget stops tracking a computer (it left the population). Its
// pending corrections are lifted.
func (c *Controller) Forget(id int) {
	if _, ok := c.byID[id]; !ok {
		return
	}
	delete(c.byID, id)
	c.ids = removeSorted(c.ids, id)
	c.dirty = true
}

// State returns a computer's current state and effective weight.
func (c *Controller) State(id int) (State, float64, bool) {
	m, ok := c.byID[id]
	if !ok {
		return 0, 0, false
	}
	return m.state, m.weight, true
}

// Tracked returns the tracked ids in ascending order. The slice is
// owned by the controller.
func (c *Controller) Tracked() []int { return c.ids }

// ErrUntracked reports audit feedback for an untracked computer.
var ErrUntracked = errors.New("health: untracked computer")

// Audit feeds one supervised-round audit strike for a computer — the
// two-strike policy of the tentpole, sharing supervise.Classify's
// verdict semantics: an audit flag is definitive evidence (a payment
// over-claim caught red-handed), so AuditStrikes of them eject
// immediately from any state at the next Tick, bypassing the
// statistical max_fails path.
func (c *Controller) Audit(id int) error {
	m, ok := c.byID[id]
	if !ok {
		return ErrUntracked
	}
	m.auditStrikes++
	return nil
}

// ApplyVerdict feeds a supervise.Classify verdict into the audit
// path: every roster-local index in v.ExcludeAudit is translated
// through ids (the roster's registry ids) and counted as an audit
// strike. Unknown or out-of-range indices are skipped, mirroring the
// classifier's own sanitization.
func (c *Controller) ApplyVerdict(v supervise.Verdict, ids []int) {
	for _, local := range v.ExcludeAudit {
		if local >= 0 && local < len(ids) {
			_ = c.Audit(ids[local]) // untracked roster members are not ours to judge
		}
	}
}

// Tick runs one control interval: verifies the tick's observations,
// steps every machine (ascending id order), and — when any state or
// weight changed — seals a corrected registry epoch. Computers with no
// observation this tick are treated per state: serving computers count
// a silent fail (a timeout is a fail, as in nginx), probing computers
// count a probe timeout, ejected computers are simply waiting.
func (c *Controller) Tick(observations []Observation) TickReport {
	c.tick++
	rep := TickReport{Tick: c.tick}

	// Index the tick's observations without allocating per machine:
	// each machine walks the shared slice from its first index.
	clear(c.seen)
	for i := range observations {
		id := observations[i].ID
		if _, ok := c.seen[id]; !ok {
			c.seen[id] = i
		}
	}

	for _, id := range c.ids {
		m := c.byID[id]
		before := m.state
		weightBefore := m.weight
		c.step(m, observations)
		if m.state != before || m.weight != weightBefore {
			c.dirty = true
		}
		rep.Transitions = append(rep.Transitions, c.pending...)
		c.pending = c.pending[:0]
	}

	// Seal a corrected epoch when anything changed. The correction is
	// rebuilt from scratch off the machines (ascending ids), so it can
	// never leak a stale entry.
	if c.dirty && c.reg != nil {
		clear(c.corr.Weights)
		clear(c.corr.Drop)
		for _, id := range c.ids {
			m := c.byID[id]
			switch {
			case m.state == Ejected || m.state == Probing:
				c.corr.Drop[id] = true
			case m.weight < 1:
				c.corr.Weights[id] = m.weight
			}
		}
		snap, err := c.reg.SealCorrected(&c.corr)
		if err == nil {
			rep.Sealed = snap
			c.met.CorrectedSealed()
		}
		// err is impossible: machine weights are always in (0, 1].
		c.dirty = false
	}

	// Export the tick's state census.
	var counts [NumStates]int
	var capacity float64
	for _, id := range c.ids {
		m := c.byID[id]
		counts[m.state]++
		if m.state != Ejected && m.state != Probing {
			capacity += m.weight
		}
	}
	if n := len(c.ids); n > 0 {
		capacity /= float64(n)
	}
	c.met.States(counts[Healthy], counts[Suspect], counts[Degraded], counts[Ejected], counts[Probing], capacity)
	return rep
}
