package mech

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestBidCompensationBonusIsManipulable(t *testing.T) {
	// The no-verification variant is manipulable: an agent that bids
	// *below* its true value is under-reimbursed on the compensation,
	// but the bid-based bonus credits it with a latency reduction that
	// never materializes, and the net effect is a strict gain. This is
	// exactly the paper's Low1 play, profitable once verification is
	// removed.
	truth := mustRun(t, BidCompensationBonus{}, Truthful(paperTs()), paperRate)
	lie := mustRun(t, BidCompensationBonus{}, deviate(0.5, 1), paperRate)
	if lie.Utility[0] <= truth.Utility[0] {
		t.Errorf("no-verification mechanism: underbid utility %v should exceed truthful %v",
			lie.Utility[0], truth.Utility[0])
	}
	// The same play loses under the verification mechanism.
	vTruth := mustRun(t, CompensationBonus{}, Truthful(paperTs()), paperRate)
	vLie := mustRun(t, CompensationBonus{}, deviate(0.5, 1), paperRate)
	if vLie.Utility[0] >= vTruth.Utility[0] {
		t.Errorf("verification mechanism should make the underbid unprofitable: %v vs %v",
			vLie.Utility[0], vTruth.Utility[0])
	}
}

func TestBidCompensationBonusPaymentIgnoresExecution(t *testing.T) {
	fast := mustRun(t, BidCompensationBonus{}, deviate(1, 1), paperRate)
	slow := mustRun(t, BidCompensationBonus{}, deviate(1, 3), paperRate)
	if !numeric.AlmostEqual(fast.Payment[0], slow.Payment[0], 1e-12, 1e-12) {
		t.Errorf("payment should not depend on execution: %v vs %v",
			fast.Payment[0], slow.Payment[0])
	}
	// ... while the verification mechanism reacts.
	vFast := mustRun(t, CompensationBonus{}, deviate(1, 1), paperRate)
	vSlow := mustRun(t, CompensationBonus{}, deviate(1, 3), paperRate)
	if vSlow.Payment[0] >= vFast.Payment[0] {
		t.Errorf("verification mechanism should cut the slow executor's payment: %v vs %v",
			vSlow.Payment[0], vFast.Payment[0])
	}
}

func TestVCGTruthfulInBids(t *testing.T) {
	// With truthful execution, no unilateral misreport beats truth.
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		n := 2 + r.Intn(6)
		agents := make([]Agent, n)
		for i := range agents {
			tv := 0.2 + 5*r.Float64()
			agents[i] = Agent{True: tv, Bid: tv, Exec: tv}
		}
		rate := 0.5 + 20*r.Float64()
		truthO, err := VCG{}.Run(agents, rate)
		if err != nil {
			return false
		}
		agents[0].Bid = 0.2 + 5*r.Float64()
		// Execution stays at capacity; VCG says nothing about ť.
		devO, err := VCG{}.Run(agents, rate)
		if err != nil {
			return false
		}
		return devO.Utility[0] <= truthO.Utility[0]+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestVCGUtilityCoincidesButPaymentDoesNot(t *testing.T) {
	// A structural fact of the linear flow model, documented in
	// DESIGN.md: because the objective is the sum of agent costs and a
	// slow executor's latency increase lands entirely in its own cost
	// term, VCG deviation *utilities* coincide exactly with the
	// verification mechanism's bonus. What verification changes is the
	// *payment*: it compensates the realized cost instead of the
	// declared one, reacts to slow execution, and can go negative
	// (Low2), while VCG's payment is frozen at bid time.
	for _, d := range [][2]float64{{1, 1}, {1, 2}, {3, 3}, {0.5, 2}, {0.5, 1}} {
		v := mustRun(t, VCG{}, deviate(d[0], d[1]), paperRate)
		c := mustRun(t, CompensationBonus{}, deviate(d[0], d[1]), paperRate)
		if !numeric.AlmostEqual(v.Utility[0], c.Utility[0], 1e-9, 1e-9) {
			t.Errorf("deviation %v: VCG utility %v != verification utility %v",
				d, v.Utility[0], c.Utility[0])
		}
	}
	// Payment response to slow execution: verification cuts, VCG not.
	vFast := mustRun(t, VCG{}, deviate(1, 1), paperRate)
	vSlow := mustRun(t, VCG{}, deviate(1, 2), paperRate)
	if !numeric.AlmostEqual(vFast.Payment[0], vSlow.Payment[0], 1e-12, 1e-12) {
		t.Error("VCG payment should ignore execution value")
	}
	cFast := mustRun(t, CompensationBonus{}, deviate(1, 1), paperRate)
	cSlow := mustRun(t, CompensationBonus{}, deviate(1, 2), paperRate)
	if cSlow.Payment[0] >= cFast.Payment[0] {
		t.Errorf("verification payment should fall under slow execution: %v vs %v",
			cSlow.Payment[0], cFast.Payment[0])
	}
}

func TestVCGPaymentFixedBeforeExecution(t *testing.T) {
	a := mustRun(t, VCG{}, deviate(1, 1), paperRate)
	b := mustRun(t, VCG{}, deviate(1, 4), paperRate)
	for i := range a.Payment {
		if !numeric.AlmostEqual(a.Payment[i], b.Payment[i], 1e-12, 1e-12) {
			t.Errorf("VCG payment %d changed with execution: %v vs %v", i, a.Payment[i], b.Payment[i])
		}
	}
}

func TestVCGIndividualRationalityTruthful(t *testing.T) {
	o := mustRun(t, VCG{}, Truthful(paperTs()), paperRate)
	for i, u := range o.Utility {
		if u < -1e-9 {
			t.Errorf("truthful VCG agent %d has negative utility %v", i, u)
		}
	}
}

func TestArcherTardosMatchesClosedForm(t *testing.T) {
	agents := Truthful(paperTs())
	o := mustRun(t, ArcherTardos{}, agents, paperRate)
	bids := Bids(agents)
	for i := range agents {
		want := LinearATPayment(bids, i, paperRate)
		if !numeric.AlmostEqual(o.Payment[i], want, 1e-6, 1e-9) {
			t.Errorf("AT payment[%d] = %v, closed form %v", i, o.Payment[i], want)
		}
	}
}

func TestArcherTardosTruthfulInBids(t *testing.T) {
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		n := 2 + r.Intn(4)
		agents := make([]Agent, n)
		for i := range agents {
			tv := 0.3 + 4*r.Float64()
			bid := 0.3 + 4*r.Float64()
			agents[i] = Agent{True: tv, Bid: bid, Exec: bid}
		}
		rate := 1 + 10*r.Float64()
		agents[0].Bid, agents[0].Exec = agents[0].True, agents[0].True
		truthO, err := ArcherTardos{Tol: 1e-9}.Run(agents, rate)
		if err != nil {
			return false
		}
		agents[0].Bid = 0.3 + 4*r.Float64()
		agents[0].Exec = agents[0].True // executes at capacity regardless
		devO, err := ArcherTardos{Tol: 1e-9}.Run(agents, rate)
		if err != nil {
			return false
		}
		return devO.Utility[0] <= truthO.Utility[0]+1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestArcherTardosVoluntaryParticipation(t *testing.T) {
	o := mustRun(t, ArcherTardos{}, Truthful(paperTs()), paperRate)
	for i, u := range o.Utility {
		if u < -1e-9 {
			t.Errorf("truthful AT agent %d has negative utility %v", i, u)
		}
	}
}

func TestClassicalNoPayments(t *testing.T) {
	o := mustRun(t, Classical{}, Truthful(paperTs()), paperRate)
	for i := range o.Payment {
		if o.Payment[i] != 0 {
			t.Errorf("classical payment[%d] = %v, want 0", i, o.Payment[i])
		}
		if o.Utility[i] != o.Valuation[i] {
			t.Errorf("classical utility[%d] != valuation", i)
		}
	}
}

func TestClassicalRewardsLiars(t *testing.T) {
	// Without payments a selfish agent gains by over-bidding (less
	// work, lower own latency) — the failure that motivates the paper.
	truth := mustRun(t, Classical{}, Truthful(paperTs()), paperRate)
	lie := mustRun(t, Classical{}, deviate(3, 1), paperRate)
	if lie.Utility[0] <= truth.Utility[0] {
		t.Errorf("classical: overbid utility %v should exceed truthful %v",
			lie.Utility[0], truth.Utility[0])
	}
	// And the system as a whole suffers.
	if lie.RealLatency <= truth.RealLatency {
		t.Errorf("classical: lying should increase total latency (%v vs %v)",
			lie.RealLatency, truth.RealLatency)
	}
}

func TestMM1ModelMechanism(t *testing.T) {
	// Four M/M/1 computers with service rates 10, 5, 2, 1 (values are
	// mean service times).
	// Rate 5 keeps every exclusion subsystem strictly under capacity
	// (the slowest exclusion, dropping the mu=10 computer, leaves
	// capacity 8).
	ts := []float64{0.1, 0.2, 0.5, 1}
	agents := Truthful(ts)
	o := mustRun(t, CompensationBonus{Model: MM1Model{}}, agents, 5)
	if o.Model != "mm1" {
		t.Errorf("model = %q", o.Model)
	}
	// Voluntary participation.
	for i, u := range o.Utility {
		if u < -1e-6 {
			t.Errorf("truthful MM1 agent %d has negative utility %v", i, u)
		}
	}
	// Truthfulness spot checks with ť >= t.
	for _, d := range [][2]float64{{1.5, 1}, {0.8, 1}, {1, 1.5}, {1.3, 1.3}} {
		dev := Truthful(ts)
		dev[0].Bid = ts[0] * d[0]
		dev[0].Exec = ts[0] * d[1]
		devO, err := CompensationBonus{Model: MM1Model{}}.Run(dev, 5)
		if err != nil {
			t.Fatalf("deviation %v: %v", d, err)
		}
		if devO.Utility[0] > o.Utility[0]+1e-6 {
			t.Errorf("MM1 deviation %v beats truth: %v > %v", d, devO.Utility[0], o.Utility[0])
		}
	}
}

func TestMM1ModelInfeasibleRate(t *testing.T) {
	agents := Truthful([]float64{1, 1}) // total capacity 2 jobs/s
	if _, err := (CompensationBonus{Model: MM1Model{}}).Run(agents, 5); err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestValuationKinds(t *testing.T) {
	agents := Truthful(paperTs())
	perJob := []Mechanism{CompensationBonus{}, BidCompensationBonus{}, Classical{}}
	for _, m := range perJob {
		o := mustRun(t, m, agents, paperRate)
		if o.Kind != ValuationPerJob {
			t.Errorf("%s kind = %q, want per-job", m.Name(), o.Kind)
		}
	}
	utilitarian := []Mechanism{VCG{}, ArcherTardos{}}
	for _, m := range utilitarian {
		o := mustRun(t, m, agents, paperRate)
		if o.Kind != ValuationTotalLatency {
			t.Errorf("%s kind = %q, want total-latency", m.Name(), o.Kind)
		}
	}
}

func TestVCGEqualsCompBonusOnTruthfulBidsUpToConvention(t *testing.T) {
	// On fully truthful play the bonus parts coincide: both award
	// L_{-i} - L. Only the compensation part differs by convention.
	agents := Truthful(paperTs())
	v := mustRun(t, VCG{}, agents, paperRate)
	c := mustRun(t, CompensationBonus{}, agents, paperRate)
	for i := range agents {
		if !numeric.AlmostEqual(v.Bonus[i], c.Bonus[i], 1e-9, 1e-9) {
			t.Errorf("bonus[%d]: VCG %v vs CB %v", i, v.Bonus[i], c.Bonus[i])
		}
	}
}

func TestArcherTardosEqualsVCGOnLinearModel(t *testing.T) {
	// An exact identity on the linear model, derivable in closed form:
	// the AT information-rent integral int_b^inf x_i(u)^2 du equals
	// R^2/(t*S_{-i}*S), which is precisely the Clarke marginal term
	// L_{-i} - L. So AT and VCG payments coincide for every bid
	// profile, not just truthful ones.
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		n := 2 + r.Intn(5)
		agents := make([]Agent, n)
		for i := range agents {
			v := 0.3 + 5*r.Float64()
			b := 0.3 + 5*r.Float64()
			agents[i] = Agent{True: v, Bid: b, Exec: b}
		}
		rate := 1 + 20*r.Float64()
		at, err := ArcherTardos{Tol: 1e-10}.Run(agents, rate)
		if err != nil {
			return false
		}
		vcg, err := VCG{}.Run(agents, rate)
		if err != nil {
			return false
		}
		for i := range agents {
			if !numeric.AlmostEqual(at.Payment[i], vcg.Payment[i], 1e-5, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinearATPaymentSymmetry(t *testing.T) {
	bids := []float64{2, 2, 2}
	p0 := LinearATPayment(bids, 0, 9)
	p1 := LinearATPayment(bids, 1, 9)
	if math.Abs(p0-p1) > 1e-12 {
		t.Errorf("symmetric agents got AT payments %v, %v", p0, p1)
	}
}
