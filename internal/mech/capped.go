package mech

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/numeric"
)

// CappedLinearModel is the linear model with public per-computer rate
// caps: computer i may be assigned at most Caps[i] jobs/s regardless
// of its reported speed (administrative limits, bandwidth quotas,
// colocation policies). The allocation is the cap-constrained
// total-latency minimizer; the Groves argument behind the paper's
// mechanism carries over unchanged because the allocation still
// minimizes the reported total latency over the (now constrained)
// feasible set, so the compensation-and-bonus mechanism remains
// truthful — which the conformance-style tests verify numerically.
//
// Caps are public infrastructure facts, not reports; only the speed
// is private.
type CappedLinearModel struct {
	// Caps are the per-computer rate limits; +Inf entries mean
	// uncapped.
	Caps []float64
}

// Name implements Model.
func (m CappedLinearModel) Name() string { return "linear-capped" }

// Alloc implements Model via the cap-constrained KKT solver.
func (m CappedLinearModel) Alloc(values []float64, rate float64) ([]float64, error) {
	if len(values) != len(m.Caps) {
		return nil, fmt.Errorf("mech: %d values for %d caps", len(values), len(m.Caps))
	}
	return alloc.OptimalCapped(alloc.LinearFunctions(values), rate, m.Caps)
}

// Latency implements Model: l(x) = t*x.
func (CappedLinearModel) Latency(value, x float64) float64 { return value * x }

// TotalCost implements Model: t*x^2.
func (CappedLinearModel) TotalCost(value, x float64) float64 { return value * x * x }

// OptimalTotal implements Model. Exclusion subsystems inherit the
// remaining computers' caps; if they cannot carry the rate, the
// excluded computer is critical and the optimum is +Inf (the
// mechanism then reports the agent as unpriceable).
func (m CappedLinearModel) OptimalTotal(values []float64, rate float64) (float64, error) {
	if len(values) == 0 {
		if rate == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	// OptimalTotal is called both for the full system (len == caps)
	// and for exclusion subsystems (len == caps-1). For exclusions the
	// mechanism passes the sub-vector of caps via excludeCaps.
	caps := m.Caps
	if len(values) != len(caps) {
		return 0, errors.New("mech: capped model needs matching cap vector; use SubModel for exclusions")
	}
	x, err := alloc.OptimalCapped(alloc.LinearFunctions(values), rate, caps)
	if err != nil {
		if errors.Is(err, alloc.ErrInfeasible) {
			return math.Inf(1), nil
		}
		return 0, err
	}
	return numeric.SumFunc(len(values), func(i int) float64 {
		return values[i] * x[i] * x[i]
	}), nil
}

// SubModel returns the capped model for the subsystem without
// computer i.
func (m CappedLinearModel) SubModel(i int) CappedLinearModel {
	return CappedLinearModel{Caps: alloc.Exclude(m.Caps, i)}
}

// ExclusionModeler lets a mechanism derive the correct model for the
// "system without agent i" when the model carries per-agent structure
// (like caps). Models without such structure are their own exclusion
// model.
type ExclusionModeler interface {
	// ExclusionModel returns the model describing the system with
	// agent i removed.
	ExclusionModel(i int) Model
}

// ExclusionModel implements ExclusionModeler.
func (m CappedLinearModel) ExclusionModel(i int) Model { return m.SubModel(i) }

// exclusionModel returns the model to use for the subsystem without
// agent i.
func exclusionModel(m Model, i int) Model {
	if em, ok := m.(ExclusionModeler); ok {
		return em.ExclusionModel(i)
	}
	return m
}
