package mech

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/numeric"
)

// benchAgents builds a deterministic heterogeneous population with
// speeds spread over several orders of magnitude.
func benchAgents(n int) []Agent {
	rng := numeric.NewRand(0xb5)
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Pow(10, 4*rng.Float64()-2)
	}
	return Truthful(ts)
}

// BenchmarkMechPayments measures the verification mechanism's payment
// computation across population sizes on the linear model:
//
//	engine/n=N — zero-allocation steady state through a reused Engine
//	run/n=N    — plain CompensationBonus.Run (fresh Outcome per call)
//	naive/n=N  — the O(n^2) per-exclusion reference path
//
// The recorded baseline lives in BENCH_mech.json (make bench).
func BenchmarkMechPayments(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		agents := benchAgents(n)
		rate := float64(n)

		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			eng := NewEngine(CompensationBonus{})
			if _, err := eng.Run(agents, rate); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(agents, rate); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("run/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (CompensationBonus{}).Run(agents, rate); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (NaiveCompensationBonus{}).Run(agents, rate); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
