package mech

// Classical is the traditional load balancing setting: computers are
// assumed obedient, the optimal allocation is computed on the reports,
// and no payments are made. It is the paper's implicit baseline — the
// regime whose failure under self-interest (Figure 1's degradations)
// motivates the mechanism. Outcomes use the paper's per-job valuation
// convention.
type Classical struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

func (m Classical) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m Classical) Name() string { return "classical-obedient" }

// Run implements Mechanism. Payments are identically zero, so each
// agent's utility is just its (negated) realized per-job latency —
// which is why a selfish agent prefers to bid high and receive less
// work.
func (m Classical) Run(agents []Agent, rate float64) (*Outcome, error) {
	if len(agents) < 2 {
		return nil, ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return nil, err
	}
	mdl := m.model()
	x, err := mdl.Alloc(Bids(agents), rate)
	if err != nil {
		return nil, err
	}
	o := newOutcome(m.Name(), mdl, ValuationPerJob, agents, rate, x)
	for i, a := range agents {
		o.Valuation[i] = -mdl.Latency(a.Exec, x[i])
		o.Utility[i] = o.Valuation[i]
	}
	return o, nil
}
