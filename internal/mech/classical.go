package mech

// Classical is the traditional load balancing setting: computers are
// assumed obedient, the optimal allocation is computed on the reports,
// and no payments are made. It is the paper's implicit baseline — the
// regime whose failure under self-interest (Figure 1's degradations)
// motivates the mechanism. Outcomes use the paper's per-job valuation
// convention.
type Classical struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

func (m Classical) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m Classical) Name() string { return "classical-obedient" }

// Run implements Mechanism. Payments are identically zero, so each
// agent's utility is just its (negated) realized per-job latency —
// which is why a selfish agent prefers to bid high and receive less
// work.
func (m Classical) Run(agents []Agent, rate float64) (*Outcome, error) {
	return runFresh(m, agents, rate)
}

// runInto implements intoRunner.
func (m Classical) runInto(o *Outcome, s *scratch, agents []Agent, rate float64) error {
	if len(agents) < 2 {
		return ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return err
	}
	mdl := m.model()
	bids := s.gatherBids(agents)
	o.reset(m.Name(), mdl, ValuationPerJob, rate, len(agents))
	x, err := modelAllocInto(mdl, bids, rate, o.Alloc)
	if err != nil {
		return err
	}
	o.Alloc = x
	o.BidLatency = s.bidCosts(mdl, bids, x)
	o.RealLatency = realTotal(mdl, agents, x)
	for i, a := range agents {
		o.Valuation[i] = -mdl.Latency(a.Exec, x[i])
		o.Utility[i] = o.Valuation[i]
	}
	return nil
}
