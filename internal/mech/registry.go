package mech

import (
	"fmt"
	"sort"
)

// registry maps short mechanism names to constructors over a model
// (nil model = linear default).
var registry = map[string]func(Model) (Mechanism, error){
	"verification": func(m Model) (Mechanism, error) {
		return CompensationBonus{Model: m}, nil
	},
	"noverification": func(m Model) (Mechanism, error) {
		return BidCompensationBonus{Model: m}, nil
	},
	"vcg": func(m Model) (Mechanism, error) {
		return VCG{Model: m}, nil
	},
	"archertardos": func(m Model) (Mechanism, error) {
		if m == nil {
			return ArcherTardos{}, nil
		}
		opm, ok := m.(OneParameterModel)
		if !ok {
			return nil, fmt.Errorf("mech: archer-tardos requires a one-parameter model, got %s", m.Name())
		}
		return ArcherTardos{Model: opm}, nil
	},
	"classical": func(m Model) (Mechanism, error) {
		return Classical{Model: m}, nil
	},
}

// Names returns the registered mechanism names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName constructs a registered mechanism over the given model (nil
// model = the linear default).
func ByName(name string, m Model) (Mechanism, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mech: unknown mechanism %q (known: %v)", name, Names())
	}
	return ctor(m)
}
