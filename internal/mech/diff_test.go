package mech

// Differential tests for the O(n) leave-one-out payment engine: every
// payment, bonus and aggregate must match the O(n^2) per-exclusion
// reference (NaiveCompensationBonus, and fast models stripped to the
// base interface) up to floating-point roundoff. The two paths sum the
// same positive terms in different orders, so each aggregate agrees to
// a few ulps of its own magnitude; the bonus subtracts two such
// aggregates, so its absolute error is bounded by ulps of the
// aggregate scale, not of the (possibly tiny) bonus itself — hence the
// scaled tolerance below (see DESIGN.md section 10).

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// diffTol returns the comparison tolerance for outcomes of the given
// reference run: relative to the aggregate magnitudes whose rounding
// dominates both paths.
func diffTol(ref *Outcome) float64 {
	return 1e-10 * (1 + math.Abs(ref.BidLatency) + math.Abs(ref.RealLatency))
}

// compareOutcomes asserts that every per-agent field of got matches
// want within tol.
func compareOutcomes(t *testing.T, got, want *Outcome, tol float64) {
	t.Helper()
	if len(got.Payment) != len(want.Payment) {
		t.Fatalf("length mismatch: %d vs %d", len(got.Payment), len(want.Payment))
	}
	check := func(field string, g, w []float64) {
		t.Helper()
		for i := range w {
			if diff := math.Abs(g[i] - w[i]); !(diff <= tol) {
				t.Errorf("%s[%d] = %.17g, want %.17g (diff %g, tol %g)", field, i, g[i], w[i], diff, tol)
			}
		}
	}
	check("Alloc", got.Alloc, want.Alloc)
	check("Compensation", got.Compensation, want.Compensation)
	check("Bonus", got.Bonus, want.Bonus)
	check("Payment", got.Payment, want.Payment)
	check("Valuation", got.Valuation, want.Valuation)
	check("Utility", got.Utility, want.Utility)
	if diff := math.Abs(got.BidLatency - want.BidLatency); !(diff <= tol) {
		t.Errorf("BidLatency = %v, want %v", got.BidLatency, want.BidLatency)
	}
	if diff := math.Abs(got.RealLatency - want.RealLatency); !(diff <= tol) {
		t.Errorf("RealLatency = %v, want %v", got.RealLatency, want.RealLatency)
	}
}

// diffPopulation builds a deterministic adversarial population: speeds
// log-uniform over six orders of magnitude, some deviant bids and
// execution slowdowns, optionally one dominant fast machine.
func diffPopulation(rng *numeric.Rand, n int, dominant bool) []Agent {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = math.Pow(10, 6*rng.Float64()-3)
	}
	if dominant {
		ts[0] = 1e-6
	}
	agents := Truthful(ts)
	for i := range agents {
		switch rng.Intn(4) {
		case 0:
			agents[i].Bid = ts[i] * (0.5 + rng.Float64())
		case 1:
			agents[i].Exec = ts[i] * (1 + 2*rng.Float64())
		case 2:
			agents[i].Bid = ts[i] * (0.5 + rng.Float64())
			agents[i].Exec = ts[i] * (1 + 2*rng.Float64())
		}
	}
	return agents
}

func TestFastMatchesNaiveLinear(t *testing.T) {
	rng := numeric.NewRand(101)
	for trial := 0; trial < 120; trial++ {
		n := 2 + int(rng.Uint64()%50)
		agents := diffPopulation(rng, n, trial%4 == 0)
		rate := (0.5 + 10*rng.Float64()) * float64(n)
		fast, err := CompensationBonus{}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		naive, err := NaiveCompensationBonus{}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		compareOutcomes(t, fast, naive, diffTol(naive))
	}
}

func TestFallbackMatchesNaiveLinear(t *testing.T) {
	// A stripped model forces the engine's per-exclusion fallback; it
	// must agree with the reference too.
	rng := numeric.NewRand(202)
	for trial := 0; trial < 30; trial++ {
		n := 2 + int(rng.Uint64()%20)
		agents := diffPopulation(rng, n, trial%4 == 0)
		rate := float64(n)
		fallback, err := CompensationBonus{Model: StripFastPaths(LinearModel{})}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: fallback: %v", trial, err)
		}
		naive, err := NaiveCompensationBonus{}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		compareOutcomes(t, fallback, naive, diffTol(naive))
	}
}

// naiveVCGAndBid recomputes the VCG and no-verification payments the
// O(n^2) way, directly from their definitions.
func naiveVCGPayment(bids []float64, x []float64, i int, lExcl float64) float64 {
	var others numeric.KahanSum
	for j := range bids {
		if j != i {
			others.Add(bids[j] * x[j] * x[j])
		}
	}
	return lExcl - others.Value()
}

func TestFastMatchesNaiveVCGAndBidVariant(t *testing.T) {
	rng := numeric.NewRand(303)
	for trial := 0; trial < 40; trial++ {
		n := 2 + int(rng.Uint64()%30)
		agents := diffPopulation(rng, n, trial%5 == 0)
		rate := float64(n)

		vcgFast, err := VCG{}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: vcg fast: %v", trial, err)
		}
		vcgRef, err := VCG{Model: StripFastPaths(LinearModel{})}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: vcg ref: %v", trial, err)
		}
		compareOutcomes(t, vcgFast, vcgRef, diffTol(vcgRef))
		// Cross-check the Clarke payment against its textbook form.
		bids := Bids(agents)
		tol := diffTol(vcgRef)
		for i := range agents {
			lExcl, err := LinearModel{}.OptimalTotal(excludeCopy(bids, i), rate)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveVCGPayment(bids, vcgRef.Alloc, i, lExcl)
			if diff := math.Abs(vcgFast.Payment[i] - want); !(diff <= tol) {
				t.Errorf("trial %d: VCG payment[%d] = %v, want %v", trial, i, vcgFast.Payment[i], want)
			}
		}

		bidFast, err := BidCompensationBonus{}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: bid fast: %v", trial, err)
		}
		bidRef, err := BidCompensationBonus{Model: StripFastPaths(LinearModel{})}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: bid ref: %v", trial, err)
		}
		compareOutcomes(t, bidFast, bidRef, diffTol(bidRef))
	}
}

// excludeCopy is a test-local allocation-happy exclusion.
func excludeCopy(v []float64, i int) []float64 {
	out := append([]float64(nil), v[:i]...)
	return append(out, v[i+1:]...)
}

func TestFastMatchesNaiveMM1(t *testing.T) {
	rng := numeric.NewRand(404)
	for trial := 0; trial < 25; trial++ {
		n := 2 + int(rng.Uint64()%10)
		ts := make([]float64, n)
		capacity := 0.0
		slowest := math.Inf(1)
		for i := range ts {
			ts[i] = math.Pow(10, 2*rng.Float64()-1) // service times 0.1 .. 10
			capacity += 1 / ts[i]
			if 1/ts[i] < slowest {
				slowest = 1 / ts[i]
			}
		}
		// Keep every exclusion feasible; every third trial lightly
		// loaded so slow queues idle.
		frac := 0.5
		if trial%3 == 0 {
			frac = 0.05
		}
		rate := frac * (capacity - (capacity - slowest)) // conservative: below min exclusion capacity
		rate = frac * slowest
		if rate <= 0 {
			continue
		}
		agents := Truthful(ts)
		for i := range agents {
			if rng.Intn(3) == 0 {
				agents[i].Exec = ts[i] * (1 + rng.Float64())
			}
		}
		fast, err := CompensationBonus{Model: MM1Model{}}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		ref, err := CompensationBonus{Model: StripFastPaths(MM1Model{})}.Run(agents, rate)
		if err != nil {
			t.Fatalf("trial %d: ref: %v", trial, err)
		}
		// The reference exclusion optima come from a bisection solver
		// with ~1e-13 relative multiplier tolerance, so the comparison
		// is looser than the linear case.
		tol := 1e-6 * (1 + math.Abs(ref.BidLatency) + math.Abs(ref.RealLatency))
		compareOutcomes(t, fast, ref, tol)
	}
}

func TestFastMatchesNaiveMM1InfeasibleExclusion(t *testing.T) {
	// Capacity 12 total but only 2 without the fast queue: both paths
	// must reject rate 3.
	ts := []float64{0.1, 1, 1}
	if _, err := (CompensationBonus{Model: MM1Model{}}).Run(Truthful(ts), 3); err == nil {
		t.Error("fast path accepted an infeasible exclusion")
	}
	if _, err := (CompensationBonus{Model: StripFastPaths(MM1Model{})}).Run(Truthful(ts), 3); err == nil {
		t.Error("reference path accepted an infeasible exclusion")
	}
}

// FuzzPaymentsFastVsNaive fuzzes the linear fast path against the
// reference on small populations derived from the fuzz input.
func FuzzPaymentsFastVsNaive(f *testing.F) {
	f.Add(uint64(1), 4, 1.0, 8.0)
	f.Add(uint64(99), 2, 1e-5, 1.0)
	f.Add(uint64(7), 16, 100.0, 20.0)
	f.Fuzz(func(t *testing.T, seed uint64, n int, scale, rate float64) {
		if n < 2 || n > 64 || !(scale > 1e-9) || scale > 1e9 || !(rate > 0) || rate > 1e9 {
			t.Skip()
		}
		rng := numeric.NewRand(seed)
		agents := diffPopulation(rng, n, seed%3 == 0)
		for i := range agents {
			agents[i].True *= scale
			agents[i].Bid *= scale
			agents[i].Exec *= scale
		}
		fast, err1 := CompensationBonus{}.Run(agents, rate)
		naive, err2 := NaiveCompensationBonus{}.Run(agents, rate)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence: fast %v, naive %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		compareOutcomes(t, fast, naive, diffTol(naive))
	})
}

func TestEngineMatchesRunAndReusesOutcome(t *testing.T) {
	agents := Truthful([]float64{1, 2, 5, 10})
	eng := NewEngine(CompensationBonus{})
	var first *Outcome
	for k := 0; k < 3; k++ {
		o, err := eng.Run(agents, 8)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = o
		} else if o != first {
			t.Error("engine did not reuse its outcome")
		}
		want, err := CompensationBonus{}.Run(agents, 8)
		if err != nil {
			t.Fatal(err)
		}
		compareOutcomes(t, o, want, 0) // identical code path: bitwise equal
	}
	// Clone detaches from the engine buffers.
	o, err := eng.Run(agents, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := o.Clone()
	pay := c.Payment[0]
	if _, err := eng.Run(Truthful([]float64{3, 3}), 4); err != nil {
		t.Fatal(err)
	}
	if c.Payment[0] != pay {
		t.Error("Clone shares engine buffers")
	}
	// Engines fall back to plain Run for mechanisms without scratch
	// support.
	at := NewEngine(ArcherTardos{})
	o1, err := at.Run(agents, 8)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := at.Run(agents, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Error("fallback engine unexpectedly reused an outcome")
	}
}

func TestEngineSizeChanges(t *testing.T) {
	// Growing and shrinking populations through one engine must match
	// fresh runs exactly.
	eng := NewEngine(CompensationBonus{})
	for _, n := range []int{2, 16, 3, 40, 2} {
		ts := make([]float64, n)
		for i := range ts {
			ts[i] = 1 + float64(i%7)
		}
		agents := Truthful(ts)
		o, err := eng.Run(agents, float64(n))
		if err != nil {
			t.Fatal(err)
		}
		want, err := CompensationBonus{}.Run(agents, float64(n))
		if err != nil {
			t.Fatal(err)
		}
		compareOutcomes(t, o, want, 0)
	}
}
