package mech

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Agent is one self-interested computer participating in the
// mechanism.
type Agent struct {
	// Name labels the agent in reports ("C1", "C2", ...).
	Name string
	// True is the private true value t (inverse processing rate).
	True float64
	// Bid is the reported value b submitted to the mechanism.
	Bid float64
	// Exec is the execution value ť the agent actually runs at. The
	// paper restricts ť >= t (a computer cannot beat its capacity);
	// Run enforces only positivity so that hypothetical deviations can
	// be explored, and the game layer applies the ť >= t restriction.
	Exec float64
}

// Truthful returns an agent population with Bid = Exec = True for the
// given latency parameters, named C1..Cn as in the paper.
func Truthful(ts []float64) []Agent {
	agents := make([]Agent, len(ts))
	for i, t := range ts {
		agents[i] = Agent{Name: fmt.Sprintf("C%d", i+1), True: t, Bid: t, Exec: t}
	}
	return agents
}

// TruthfulInto is Truthful writing into dst (reused when its capacity
// suffices), for full-sweep callers that rebuild same-sized truthful
// populations every epoch and must not allocate in steady state. The
// agents are unnamed (Name ""): names exist for human-facing reports,
// and formatting them would put a Sprintf on the sweep hot path.
func TruthfulInto(dst []Agent, ts []float64) []Agent {
	if cap(dst) < len(ts) {
		dst = make([]Agent, len(ts))
	}
	dst = dst[:len(ts)]
	for i, t := range ts {
		dst[i] = Agent{True: t, Bid: t, Exec: t}
	}
	return dst
}

// Values extracts one field from an agent population.
func Values(agents []Agent, field func(Agent) float64) []float64 {
	out := make([]float64, len(agents))
	for i, a := range agents {
		out[i] = field(a)
	}
	return out
}

// Bids returns the bid vector.
func Bids(agents []Agent) []float64 { return Values(agents, func(a Agent) float64 { return a.Bid }) }

// Execs returns the execution-value vector.
func Execs(agents []Agent) []float64 { return Values(agents, func(a Agent) float64 { return a.Exec }) }

// Trues returns the true-value vector.
func Trues(agents []Agent) []float64 { return Values(agents, func(a Agent) float64 { return a.True }) }

// ValuationKind records which valuation convention an Outcome's
// Valuation, Utility and frugality numbers are expressed in.
type ValuationKind string

const (
	// ValuationPerJob is the paper's convention: V_i = -l_i(x_i), the
	// negated per-job latency.
	ValuationPerJob ValuationKind = "per-job-latency"
	// ValuationTotalLatency is the utilitarian convention:
	// V_i = -x_i*l_i(x_i), the negated total-latency share, under
	// which the system objective is the sum of valuations.
	ValuationTotalLatency ValuationKind = "total-latency-share"
)

// Outcome is the full result of one mechanism execution.
type Outcome struct {
	// Mechanism names the mechanism that produced this outcome.
	Mechanism string
	// Model names the latency model.
	Model string
	// Kind records the valuation convention of this outcome.
	Kind ValuationKind
	// Rate is the total job arrival rate R.
	Rate float64
	// Alloc is the load x_i assigned to each agent.
	Alloc []float64
	// BidLatency is the total latency the mechanism expects given the
	// bids (all agents executing at their bid).
	BidLatency float64
	// RealLatency is the realized total latency with every agent
	// executing at its execution value.
	RealLatency float64
	// Compensation, Bonus, Payment are the per-agent payment parts;
	// Payment[i] = Compensation[i] + Bonus[i] for compensation-and-
	// bonus mechanisms. Mechanisms without that structure fill the
	// closest analogues they define.
	Compensation []float64
	Bonus        []float64
	Payment      []float64
	// Valuation is the agent's valuation in the convention named by
	// Kind, evaluated at its execution value.
	Valuation []float64
	// Utility is Payment + Valuation.
	Utility []float64
}

// TotalPayment returns the sum of payments handed out.
func (o *Outcome) TotalPayment() float64 { return numeric.Sum(o.Payment) }

// TotalValuation returns sum_i |V_i|, the aggregate cost incurred by
// the agents (paper Figure 6 calls this the total valuation).
func (o *Outcome) TotalValuation() float64 {
	return numeric.SumFunc(len(o.Valuation), func(i int) float64 {
		return math.Abs(o.Valuation[i])
	})
}

// FrugalityRatio returns TotalPayment / TotalValuation, the measure
// the paper uses in Figure 6 (bounded by ~2.5 in its experiments and
// below by 1 for voluntary-participation mechanisms).
func (o *Outcome) FrugalityRatio() float64 {
	tv := o.TotalValuation()
	if tv == 0 {
		return math.NaN()
	}
	return o.TotalPayment() / tv
}

// Mechanism computes an allocation and payments from agent reports.
type Mechanism interface {
	// Name identifies the mechanism.
	Name() string
	// Run executes the mechanism on the agents at total rate R.
	Run(agents []Agent, rate float64) (*Outcome, error)
}

// validateAgents rejects non-positive or non-finite parameters.
func validateAgents(agents []Agent, rate float64) error {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("mech: invalid rate %g", rate)
	}
	for i, a := range agents {
		for _, v := range []float64{a.True, a.Bid, a.Exec} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mech: agent %d (%s) has invalid parameter %g", i, a.Name, v)
			}
		}
	}
	return nil
}

// newOutcome allocates an Outcome with the shared per-agent slices and
// latency aggregates filled in.
func newOutcome(name string, mdl Model, kind ValuationKind, agents []Agent, rate float64, x []float64) *Outcome {
	n := len(agents)
	return &Outcome{
		Mechanism:    name,
		Model:        mdl.Name(),
		Kind:         kind,
		Rate:         rate,
		Alloc:        x,
		BidLatency:   totalMixedCost(mdl, Bids(agents), x),
		RealLatency:  totalMixedCost(mdl, Execs(agents), x),
		Compensation: make([]float64, n),
		Bonus:        make([]float64, n),
		Payment:      make([]float64, n),
		Valuation:    make([]float64, n),
		Utility:      make([]float64, n),
	}
}

// CompensationBonus is the paper's load balancing mechanism with
// verification (Definition 3.3). The allocation is the model-optimal
// allocation on the bids (the PR algorithm for the linear model); the
// payment to agent i, handed out after execution when the execution
// values ť are known, is
//
//	P_i = C_i + B_i
//	C_i = l_i(ť_i, x_i)                                 (compensation)
//	B_i = L*(b_{-i}) - L(x(b); ť_i, b_{-i})             (bonus)
//
// where l_i is agent i's verified per-job latency, L*(b_{-i}) is the
// optimal total latency of the system without agent i, and the bonus's
// second term is the realized total latency with agent i's own share
// valued at its verified execution value and the others at their bids.
// The bonus is each agent's contribution to reducing total latency, so
// utility U_i = P_i + V_i = B_i is maximized by truth-telling
// (Theorem 3.1) and is nonnegative for truthful agents (Theorem 3.2).
type CompensationBonus struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

// model returns the configured model or the paper default.
func (m CompensationBonus) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m CompensationBonus) Name() string { return "compensation-bonus-verification" }

// Run implements Mechanism. The payment vector is computed by the
// leave-one-out engine: for models with the LeaveOneOutModel
// capability every exclusion optimum L*(b_{-i}) comes from one shared
// pass, and the "everyone but i" realized sums come from compensated
// prefix/suffix sums, so the whole run is O(n) for the linear model
// instead of the O(n^2) of the per-exclusion reference path (kept as
// NaiveCompensationBonus for differential testing).
func (m CompensationBonus) Run(agents []Agent, rate float64) (*Outcome, error) {
	return runFresh(m, agents, rate)
}

// runInto implements intoRunner.
func (m CompensationBonus) runInto(o *Outcome, s *scratch, agents []Agent, rate float64) error {
	if len(agents) < 2 {
		return ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return err
	}
	mdl := m.model()
	bids := s.gatherBids(agents)
	o.reset(m.Name(), mdl, ValuationPerJob, rate, len(agents))
	x, err := modelAllocInto(mdl, bids, rate, o.Alloc)
	if err != nil {
		return err
	}
	o.Alloc = x
	if err := s.leaveOneOutOptima(mdl, bids, rate); err != nil {
		return err
	}
	o.BidLatency = s.bidCosts(mdl, bids, x)
	o.RealLatency = realTotal(mdl, agents, x)
	for i, a := range agents {
		// realized = L(x(b); ť_i, b_{-i}): everyone priced at its bid
		// except agent i, priced at its verified execution value.
		realized := s.looCost[i] + mdl.TotalCost(a.Exec, x[i])
		o.Compensation[i] = mdl.Latency(a.Exec, x[i])
		o.Bonus[i] = s.loo[i] - realized
		o.Payment[i] = o.Compensation[i] + o.Bonus[i]
		o.Valuation[i] = -mdl.Latency(a.Exec, x[i])
		o.Utility[i] = o.Payment[i] + o.Valuation[i]
	}
	return nil
}

// BidCompensationBonus is the same compensation-and-bonus construction
// *without* verification: every occurrence of the execution value in
// the payment is replaced by the bid, because an unverified mechanism
// can observe nothing else. The payment is therefore fixed before
// execution:
//
//	P_i = l_i(b_i, x_i) + [L*(b_{-i}) - L(x(b); b)]
//
// This mechanism is NOT truthful: compensating the *declared* per-job
// cost hands an over-bidder a first-order gain (b_i - t_i)*x_i that
// the second-order allocative loss in the bonus cannot offset, and a
// slow executor keeps its payment unchanged. The game-layer tests and
// the ablation benchmark quantify both manipulation channels; this is
// the baseline that motivates verification.
type BidCompensationBonus struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

func (m BidCompensationBonus) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m BidCompensationBonus) Name() string { return "compensation-bonus-noverification" }

// Run implements Mechanism, on the same leave-one-out engine as
// CompensationBonus.
func (m BidCompensationBonus) Run(agents []Agent, rate float64) (*Outcome, error) {
	return runFresh(m, agents, rate)
}

// runInto implements intoRunner.
func (m BidCompensationBonus) runInto(o *Outcome, s *scratch, agents []Agent, rate float64) error {
	if len(agents) < 2 {
		return ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return err
	}
	mdl := m.model()
	bids := s.gatherBids(agents)
	o.reset(m.Name(), mdl, ValuationPerJob, rate, len(agents))
	x, err := modelAllocInto(mdl, bids, rate, o.Alloc)
	if err != nil {
		return err
	}
	o.Alloc = x
	if err := s.leaveOneOutOptima(mdl, bids, rate); err != nil {
		return err
	}
	o.BidLatency = s.bidCosts(mdl, bids, x)
	o.RealLatency = realTotal(mdl, agents, x)
	for i, a := range agents {
		o.Compensation[i] = mdl.Latency(a.Bid, x[i])
		o.Bonus[i] = s.loo[i] - o.BidLatency
		o.Payment[i] = o.Compensation[i] + o.Bonus[i]
		o.Valuation[i] = -mdl.Latency(a.Exec, x[i])
		o.Utility[i] = o.Payment[i] + o.Valuation[i]
	}
	return nil
}
