package mech

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// ArcherTardos is the truthful payment scheme of Archer & Tardos
// (FOCS 2001) for one-parameter agents, a second no-verification
// baseline, stated in the utilitarian convention
// (ValuationTotalLatency). For a model whose cost factors as
// TotalCost(t, x) = t*w(x) and whose work curve
// w_i(b_i) = w(x_i(b_i, b_{-i})) is decreasing in the agent's own bid,
// the normalized truthful payment is
//
//	P_i(b) = b_i * w_i(b_i) + integral_{b_i}^{inf} w_i(u) du.
//
// Payments depend only on bids; like VCG it cannot react to slow
// execution. The integral is evaluated with adaptive quadrature on a
// transformed semi-infinite interval; for the linear model it also has
// the closed form R^2 / (S_{-i} * (1 + b_i*S_{-i})) with
// S_{-i} = sum_{j != i} 1/b_j, which the tests check against.
//
// Note the factorization requirement is why this mechanism lives in
// the utilitarian convention: with per-job valuations the work curve
// would be w(x) = x, whose tail integral diverges for the PR
// allocation (x_i(u) ~ 1/u), so no normalized truthful payment exists
// there.
type ArcherTardos struct {
	// Model must factor as TotalCost = t*Work(x); the zero value uses
	// LinearModel.
	Model OneParameterModel
	// Tol is the quadrature tolerance; 0 means 1e-10.
	Tol float64
}

func (m ArcherTardos) model() OneParameterModel {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m ArcherTardos) Name() string { return "archer-tardos" }

// Run implements Mechanism.
func (m ArcherTardos) Run(agents []Agent, rate float64) (*Outcome, error) {
	if len(agents) < 2 {
		return nil, ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return nil, err
	}
	mdl := m.model()
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	bids := Bids(agents)
	x, err := mdl.Alloc(bids, rate)
	if err != nil {
		return nil, err
	}
	o := newOutcome(m.Name(), mdl, ValuationTotalLatency, agents, rate, x)
	for i, a := range agents {
		// Work curve as a function of agent i's hypothetical bid.
		work := func(u float64) float64 {
			trial := append([]float64(nil), bids...)
			trial[i] = u
			xi, err := mdl.Alloc(trial, rate)
			if err != nil {
				return 0
			}
			return mdl.Work(xi[i])
		}
		wi := mdl.Work(x[i])
		tail := numeric.IntegrateToInf(work, a.Bid, tol)
		if math.IsNaN(tail) || math.IsInf(tail, 0) {
			return nil, fmt.Errorf("mech: archer-tardos tail integral diverged for agent %d", i)
		}
		// Presented in compensation-and-bonus shape: the bid-based
		// cost reimbursement plus the information-rent integral.
		o.Compensation[i] = a.Bid * wi
		o.Bonus[i] = tail
		o.Payment[i] = o.Compensation[i] + o.Bonus[i]
		o.Valuation[i] = -mdl.TotalCost(a.Exec, x[i])
		o.Utility[i] = o.Payment[i] + o.Valuation[i]
	}
	return o, nil
}

// LinearATPayment returns the closed-form Archer-Tardos payment for
// the linear model: bid*x^2 + R^2/(S*(1+bid*S)) with S the sum of the
// other agents' inverse bids. Exported for tests and the ablation
// study.
func LinearATPayment(bids []float64, i int, rate float64) float64 {
	var s numeric.KahanSum
	for j, b := range bids {
		if j != i {
			s.Add(1 / b)
		}
	}
	S := s.Value()
	xi := rate / (bids[i] * (1/bids[i] + S))
	return bids[i]*xi*xi + rate*rate/(S*(1+bids[i]*S))
}
