package mech

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/numeric"
)

// NaiveCompensationBonus is the O(n^2) reference implementation of the
// paper's verification mechanism, kept verbatim from before the
// leave-one-out rewrite: per agent it re-solves the exclusion optimum
// on a freshly allocated value vector and re-sums the other n-1
// realized costs. It exists so differential tests and the benchmark
// baseline can compare the O(n) engine against the straightforward
// transcription of Definition 3.3, payment for payment. Production
// callers should use CompensationBonus.
type NaiveCompensationBonus struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

func (m NaiveCompensationBonus) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism. It reports the same name as
// CompensationBonus: the two are the same mechanism, differently
// evaluated.
func (m NaiveCompensationBonus) Name() string { return CompensationBonus{}.Name() }

// Run implements Mechanism with the per-exclusion reference
// computation.
func (m NaiveCompensationBonus) Run(agents []Agent, rate float64) (*Outcome, error) {
	if len(agents) < 2 {
		return nil, ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return nil, err
	}
	mdl := m.model()
	bids := Bids(agents)
	x, err := mdl.Alloc(bids, rate)
	if err != nil {
		return nil, err
	}
	o := newOutcome(m.Name(), mdl, ValuationPerJob, agents, rate, x)
	for i, a := range agents {
		lExcl, err := exclusionModel(mdl, i).OptimalTotal(alloc.Exclude(bids, i), rate)
		if err != nil {
			return nil, fmt.Errorf("mech: exclusion optimum for agent %d: %w", i, err)
		}
		var others numeric.KahanSum
		for j := range agents {
			if j != i {
				others.Add(mdl.TotalCost(bids[j], x[j]))
			}
		}
		realized := mdl.TotalCost(a.Exec, x[i]) + others.Value()
		o.Compensation[i] = mdl.Latency(a.Exec, x[i])
		o.Bonus[i] = lExcl - realized
		o.Payment[i] = o.Compensation[i] + o.Bonus[i]
		o.Valuation[i] = -mdl.Latency(a.Exec, x[i])
		o.Utility[i] = o.Payment[i] + o.Valuation[i]
	}
	return o, nil
}

// StripFastPaths wraps a model so that only the base Model interface
// remains visible: the LeaveOneOutModel and InPlaceAllocator
// capabilities are hidden, forcing mechanisms onto the per-exclusion
// reference path. Differential tests use it to compare the O(n) fast
// path against the naive path on the same model.
func StripFastPaths(m Model) Model { return strippedModel{m} }

// strippedModel forwards the base Model methods only.
type strippedModel struct{ m Model }

func (s strippedModel) Name() string { return s.m.Name() }

func (s strippedModel) Alloc(values []float64, rate float64) ([]float64, error) {
	return s.m.Alloc(values, rate)
}

func (s strippedModel) Latency(value, x float64) float64 { return s.m.Latency(value, x) }

func (s strippedModel) TotalCost(value, x float64) float64 { return s.m.TotalCost(value, x) }

func (s strippedModel) OptimalTotal(values []float64, rate float64) (float64, error) {
	return s.m.OptimalTotal(values, rate)
}

// ExclusionModel forwards per-agent exclusion structure (e.g. cap
// vectors) while keeping the exclusion models stripped too.
func (s strippedModel) ExclusionModel(i int) Model {
	if em, ok := s.m.(ExclusionModeler); ok {
		return strippedModel{em.ExclusionModel(i)}
	}
	return s
}
