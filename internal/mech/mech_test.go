package mech

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// paperTs is the Table 1 configuration of the paper.
func paperTs() []float64 {
	return []float64{1, 1, 2, 2, 2, 5, 5, 5, 5, 5, 10, 10, 10, 10, 10, 10}
}

const paperRate = 20.0

// deviate returns the paper's agent population with C1 playing
// (bidFactor*t1, execFactor*t1) and everyone else truthful.
func deviate(bidFactor, execFactor float64) []Agent {
	agents := Truthful(paperTs())
	agents[0].Bid = bidFactor * agents[0].True
	agents[0].Exec = execFactor * agents[0].True
	return agents
}

func mustRun(t *testing.T, m Mechanism, agents []Agent, rate float64) *Outcome {
	t.Helper()
	o, err := m.Run(agents, rate)
	if err != nil {
		t.Fatalf("%s.Run: %v", m.Name(), err)
	}
	return o
}

func TestCompensationBonusTrue1(t *testing.T) {
	o := mustRun(t, CompensationBonus{}, Truthful(paperTs()), paperRate)
	// Paper headline: minimum total latency 78.43.
	if math.Abs(o.RealLatency-78.431372549) > 1e-6 {
		t.Errorf("RealLatency = %v, want 78.4314", o.RealLatency)
	}
	if math.Abs(o.BidLatency-o.RealLatency) > 1e-9 {
		t.Errorf("truthful run: BidLatency %v != RealLatency %v", o.BidLatency, o.RealLatency)
	}
	// C1's utility = its bonus = L_{-1} - L = 400/4.1 - 400/5.1.
	wantU1 := 400.0/4.1 - 400.0/5.1
	if math.Abs(o.Utility[0]-wantU1) > 1e-9 {
		t.Errorf("U1 = %v, want %v", o.Utility[0], wantU1)
	}
	// Voluntary participation: truthful utilities are nonnegative.
	for i, u := range o.Utility {
		if u < 0 {
			t.Errorf("truthful agent %d has negative utility %v", i, u)
		}
	}
	// Identical computers receive identical treatment.
	if math.Abs(o.Utility[0]-o.Utility[1]) > 1e-9 {
		t.Errorf("identical agents C1, C2 got utilities %v, %v", o.Utility[0], o.Utility[1])
	}
}

func TestCompensationBonusUtilityEqualsBonus(t *testing.T) {
	// U_i = P_i + V_i = B_i because compensation cancels valuation,
	// for any deviation of C1.
	for _, d := range [][2]float64{{1, 1}, {1, 2}, {3, 3}, {3, 1}, {0.5, 1}, {0.5, 2}} {
		o := mustRun(t, CompensationBonus{}, deviate(d[0], d[1]), paperRate)
		for i := range o.Utility {
			if !numeric.AlmostEqual(o.Utility[i], o.Bonus[i], 1e-9, 1e-9) {
				t.Errorf("deviation %v: U[%d]=%v != B[%d]=%v", d, i, o.Utility[i], i, o.Bonus[i])
			}
		}
	}
}

func TestCompensationBonusLow2NegativePaymentAndUtility(t *testing.T) {
	// The paper's most distinctive datapoint: in Low2 (bid t/2,
	// execute 2t) C1's bonus goes negative, its absolute value exceeds
	// the compensation, and both payment and utility are negative.
	o := mustRun(t, CompensationBonus{}, deviate(0.5, 2), paperRate)
	if o.Payment[0] >= 0 {
		t.Errorf("Low2 payment = %v, want negative", o.Payment[0])
	}
	if o.Utility[0] >= 0 {
		t.Errorf("Low2 utility = %v, want negative", o.Utility[0])
	}
	if o.Bonus[0] >= 0 {
		t.Errorf("Low2 bonus = %v, want negative", o.Bonus[0])
	}
	if math.Abs(o.Bonus[0]) <= o.Compensation[0] {
		t.Errorf("Low2: |bonus| %v should exceed compensation %v",
			math.Abs(o.Bonus[0]), o.Compensation[0])
	}
	// Total latency increase about 66%.
	inc := o.RealLatency/78.431372549 - 1
	if math.Abs(inc-0.66) > 0.01 {
		t.Errorf("Low2 latency increase = %.3f, want ~0.66", inc)
	}
}

func TestCompensationBonusLow1(t *testing.T) {
	o := mustRun(t, CompensationBonus{}, deviate(0.5, 1), paperRate)
	inc := o.RealLatency/78.431372549 - 1
	if math.Abs(inc-0.11) > 0.01 {
		t.Errorf("Low1 latency increase = %.3f, want ~0.11 (paper: about 11%%)", inc)
	}
	// C1's utility is ~45% below True1.
	trueO := mustRun(t, CompensationBonus{}, Truthful(paperTs()), paperRate)
	drop := 1 - o.Utility[0]/trueO.Utility[0]
	if math.Abs(drop-0.45) > 0.01 {
		t.Errorf("Low1 utility drop = %.3f, want ~0.45 (paper: 45%%)", drop)
	}
	// Other computers get lower utilities than in True1 (paper, Fig 5).
	for i := 1; i < 16; i++ {
		if o.Utility[i] >= trueO.Utility[i] {
			t.Errorf("Low1: C%d utility %v not below True1 %v", i+1, o.Utility[i], trueO.Utility[i])
		}
	}
}

func TestCompensationBonusHigh1(t *testing.T) {
	o := mustRun(t, CompensationBonus{}, deviate(3, 3), paperRate)
	trueO := mustRun(t, CompensationBonus{}, Truthful(paperTs()), paperRate)
	// C1's utility is ~62% below True1 (paper, Fig 4).
	drop := 1 - o.Utility[0]/trueO.Utility[0]
	if math.Abs(drop-0.62) > 0.01 {
		t.Errorf("High1 utility drop = %.3f, want ~0.62 (paper: 62%%)", drop)
	}
	// Other computers get higher utilities than in True1.
	for i := 1; i < 16; i++ {
		if o.Utility[i] <= trueO.Utility[i] {
			t.Errorf("High1: C%d utility %v not above True1 %v", i+1, o.Utility[i], trueO.Utility[i])
		}
	}
}

func TestCompensationBonusDeviationsAllWorseThanTruth(t *testing.T) {
	trueO := mustRun(t, CompensationBonus{}, Truthful(paperTs()), paperRate)
	// All eight paper experiments (and then some) leave C1 strictly
	// worse off than truth-telling. Execution factors are >= 1 per the
	// paper's ť >= t restriction.
	for _, d := range [][2]float64{
		{1, 2}, {3, 3}, {3, 1}, {3, 2}, {3, 4}, {0.5, 1}, {0.5, 2},
		{1.1, 1}, {0.9, 1}, {2, 1}, {10, 1}, {0.1, 1}, {1, 1.01},
	} {
		o := mustRun(t, CompensationBonus{}, deviate(d[0], d[1]), paperRate)
		if o.Utility[0] >= trueO.Utility[0]-1e-9 {
			t.Errorf("deviation (bid %vt, exec %vt): utility %v not below truthful %v",
				d[0], d[1], o.Utility[0], trueO.Utility[0])
		}
	}
}

func TestCompensationBonusFrugality(t *testing.T) {
	o := mustRun(t, CompensationBonus{}, Truthful(paperTs()), paperRate)
	r := o.FrugalityRatio()
	// Paper Figure 6: total payment at most ~2.5x total valuation,
	// never below 1 (voluntary participation).
	if r < 1 || r > 2.5 {
		t.Errorf("frugality ratio = %v, want within [1, 2.5]", r)
	}
}

func TestCompensationBonusPaymentDecomposition(t *testing.T) {
	o := mustRun(t, CompensationBonus{}, deviate(3, 4), paperRate)
	for i := range o.Payment {
		if !numeric.AlmostEqual(o.Payment[i], o.Compensation[i]+o.Bonus[i], 1e-12, 1e-12) {
			t.Errorf("P[%d] != C+B", i)
		}
	}
}

// Property: voluntary participation holds for arbitrary truthful
// agents facing arbitrary opponent bids (Theorem 3.2).
func TestVoluntaryParticipationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		n := 2 + r.Intn(8)
		agents := make([]Agent, n)
		for i := range agents {
			tv := 0.2 + 10*r.Float64()
			bid := 0.2 + 10*r.Float64() // others may lie arbitrarily
			agents[i] = Agent{True: tv, Bid: bid, Exec: bid}
		}
		// Agent 0 is truthful.
		agents[0].Bid = agents[0].True
		agents[0].Exec = agents[0].True
		rate := 0.5 + 30*r.Float64()
		o, err := CompensationBonus{}.Run(agents, rate)
		if err != nil {
			return false
		}
		return o.Utility[0] >= -1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: truth-telling is a dominant strategy (Theorem 3.1) —
// random unilateral deviations with ť >= t never beat truth, for
// random opponent bid profiles.
func TestTruthfulnessProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := numeric.NewRand(seed)
		n := 2 + r.Intn(6)
		agents := make([]Agent, n)
		for i := range agents {
			tv := 0.2 + 5*r.Float64()
			bid := 0.2 + 5*r.Float64()
			agents[i] = Agent{True: tv, Bid: bid, Exec: bid}
		}
		rate := 0.5 + 20*r.Float64()
		// Truthful play for agent 0.
		agents[0].Bid, agents[0].Exec = agents[0].True, agents[0].True
		truthO, err := CompensationBonus{}.Run(agents, rate)
		if err != nil {
			return false
		}
		// Random deviation with ť >= t.
		agents[0].Bid = 0.2 + 5*r.Float64()
		agents[0].Exec = agents[0].True * (1 + 2*r.Float64())
		devO, err := CompensationBonus{}.Run(agents, rate)
		if err != nil {
			return false
		}
		return devO.Utility[0] <= truthO.Utility[0]+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMechanismErrors(t *testing.T) {
	mechanisms := []Mechanism{
		CompensationBonus{}, BidCompensationBonus{}, VCG{}, ArcherTardos{}, Classical{},
	}
	for _, m := range mechanisms {
		if _, err := m.Run([]Agent{{True: 1, Bid: 1, Exec: 1}}, 5); err == nil {
			t.Errorf("%s accepted a single agent", m.Name())
		}
		bad := []Agent{{True: 1, Bid: -1, Exec: 1}, {True: 1, Bid: 1, Exec: 1}}
		if _, err := m.Run(bad, 5); err == nil {
			t.Errorf("%s accepted a negative bid", m.Name())
		}
		good := Truthful([]float64{1, 2})
		if _, err := m.Run(good, -5); err == nil {
			t.Errorf("%s accepted a negative rate", m.Name())
		}
		if _, err := m.Run(good, math.NaN()); err == nil {
			t.Errorf("%s accepted a NaN rate", m.Name())
		}
	}
}

func TestTruthfulConstructor(t *testing.T) {
	agents := Truthful([]float64{1, 2, 3})
	if len(agents) != 3 {
		t.Fatalf("len = %d", len(agents))
	}
	if agents[0].Name != "C1" || agents[2].Name != "C3" {
		t.Errorf("names = %v, %v", agents[0].Name, agents[2].Name)
	}
	for _, a := range agents {
		if a.Bid != a.True || a.Exec != a.True {
			t.Errorf("agent %v not truthful", a)
		}
	}
}

func TestOutcomeAggregates(t *testing.T) {
	o := &Outcome{
		Payment:   []float64{3, -1},
		Valuation: []float64{-2, -4},
	}
	if got := o.TotalPayment(); got != 2 {
		t.Errorf("TotalPayment = %v", got)
	}
	if got := o.TotalValuation(); got != 6 {
		t.Errorf("TotalValuation = %v", got)
	}
	if got := o.FrugalityRatio(); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("FrugalityRatio = %v", got)
	}
	empty := &Outcome{}
	if !math.IsNaN(empty.FrugalityRatio()) {
		t.Error("empty FrugalityRatio should be NaN")
	}
}

func TestTruthfulIntoMatchesTruthful(t *testing.T) {
	ts := paperTs()
	named := Truthful(ts)
	buf := TruthfulInto(nil, ts)
	if len(buf) != len(named) {
		t.Fatalf("len = %d, want %d", len(buf), len(named))
	}
	for i := range buf {
		if buf[i].True != named[i].True || buf[i].Bid != named[i].Bid || buf[i].Exec != named[i].Exec {
			t.Errorf("agent %d = %+v, want values of %+v", i, buf[i], named[i])
		}
		if buf[i].Name != "" {
			t.Errorf("agent %d named %q, want unnamed", i, buf[i].Name)
		}
	}
	// Payments are name-independent, so an engine run over the unnamed
	// population reproduces the named one exactly.
	a := mustRun(t, CompensationBonus{}, named, paperRate)
	b := mustRun(t, CompensationBonus{}, buf, paperRate)
	for i := range a.Payment {
		if a.Payment[i] != b.Payment[i] {
			t.Errorf("payment %d: named %g, unnamed %g", i, a.Payment[i], b.Payment[i])
		}
	}
	// Buffer reuse: a same-sized refill hands back the same backing
	// array.
	again := TruthfulInto(buf, ts)
	if &again[0] != &buf[0] {
		t.Error("TruthfulInto reallocated despite sufficient capacity")
	}
}
