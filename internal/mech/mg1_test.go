package mech

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestMG1ModelReducesToMM1WhenCS2Is1(t *testing.T) {
	ts := []float64{0.1, 0.2, 0.4}
	agents := Truthful(ts)
	const rate = 5
	mm1, err := CompensationBonus{Model: MM1Model{}}.Run(agents, rate)
	if err != nil {
		t.Fatal(err)
	}
	mg1, err := CompensationBonus{Model: MG1Model{CS2: 1}}.Run(agents, rate)
	if err != nil {
		t.Fatal(err)
	}
	// M/M/1 sojourn is 1/(mu-x); PK with CS2=1 is the same function,
	// so allocations and payments must coincide.
	for i := range agents {
		if !numeric.AlmostEqual(mg1.Alloc[i], mm1.Alloc[i], 1e-6, 1e-9) {
			t.Errorf("alloc[%d]: mg1 %v vs mm1 %v", i, mg1.Alloc[i], mm1.Alloc[i])
		}
		if !numeric.AlmostEqual(mg1.Payment[i], mm1.Payment[i], 1e-5, 1e-7) {
			t.Errorf("payment[%d]: mg1 %v vs mm1 %v", i, mg1.Payment[i], mm1.Payment[i])
		}
	}
}

func TestMG1ModelDeterministicServiceBeatsExponential(t *testing.T) {
	// M/D/1 (CS2=0) has less queueing, so its optimal total latency is
	// below M/M/1's for the same rates.
	ts := []float64{0.1, 0.2, 0.4}
	const rate = 5
	md1, err := MG1Model{CS2: 0}.OptimalTotal(ts, rate)
	if err != nil {
		t.Fatal(err)
	}
	mm1, err := MM1Model{}.OptimalTotal(ts, rate)
	if err != nil {
		t.Fatal(err)
	}
	if md1 >= mm1 {
		t.Errorf("M/D/1 optimum %v not below M/M/1 %v", md1, mm1)
	}
	// And heavier service variability costs more.
	heavy, err := MG1Model{CS2: 4}.OptimalTotal(ts, rate)
	if err != nil {
		t.Fatal(err)
	}
	if heavy <= mm1 {
		t.Errorf("CS2=4 optimum %v not above M/M/1 %v", heavy, mm1)
	}
}

func TestMG1ModelTruthfulness(t *testing.T) {
	ts := []float64{0.1, 0.2, 0.4}
	const rate = 4
	m := CompensationBonus{Model: MG1Model{CS2: 2}}
	truth, err := m.Run(Truthful(ts), rate)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range truth.Utility {
		if u < -1e-6 {
			t.Errorf("truthful agent %d utility %v", i, u)
		}
	}
	for _, d := range [][2]float64{{1.3, 1}, {0.8, 1}, {1, 1.4}, {1.2, 1.2}} {
		dev := Truthful(ts)
		dev[0].Bid = ts[0] * d[0]
		dev[0].Exec = ts[0] * d[1]
		o, err := m.Run(dev, rate)
		if err != nil {
			t.Fatalf("deviation %v: %v", d, err)
		}
		if o.Utility[0] > truth.Utility[0]+1e-6 {
			t.Errorf("MG1 deviation %v beats truth: %v > %v", d, o.Utility[0], truth.Utility[0])
		}
	}
}

func TestMG1ModelValidation(t *testing.T) {
	if _, err := (MG1Model{CS2: -1}).Alloc([]float64{0.1, 0.2}, 1); err == nil {
		t.Error("expected error for negative CS2")
	}
	if _, err := (MG1Model{CS2: math.NaN()}).Alloc([]float64{0.1, 0.2}, 1); err == nil {
		t.Error("expected error for NaN CS2")
	}
	if _, err := (MG1Model{}).Alloc([]float64{-0.1, 0.2}, 1); err == nil {
		t.Error("expected error for negative value")
	}
	if v, err := (MG1Model{}).OptimalTotal(nil, 0); err != nil || v != 0 {
		t.Errorf("empty zero-rate optimum = %v, %v", v, err)
	}
	if v, err := (MG1Model{}).OptimalTotal(nil, 1); err != nil || !math.IsInf(v, 1) {
		t.Errorf("empty positive-rate optimum = %v, %v", v, err)
	}
}
