package mech

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Engine amortizes allocations across many runs of one mechanism —
// the truthfulness grid searches, collusion scans and Monte Carlo
// replications evaluate the same mechanism thousands of times on
// same-sized populations, and with an Engine the steady-state cost of
// each evaluation is zero heap allocations for the linear model.
//
// The Outcome returned by Run is owned by the engine and is valid only
// until the next Run call; callers that need to retain one across runs
// must Clone it first. An Engine is not safe for concurrent use —
// create one per goroutine.
type Engine struct {
	m   Mechanism
	ir  intoRunner
	o   Outcome
	s   scratch
	met *obs.EngineMetrics
}

// intoRunner is implemented by mechanisms that can write their result
// into a reused Outcome and scratch space.
type intoRunner interface {
	runInto(o *Outcome, s *scratch, agents []Agent, rate float64) error
}

// NewEngine returns an engine evaluating m. Mechanisms without scratch
// support (e.g. ArcherTardos) still work, falling back to their plain
// Run.
func NewEngine(m Mechanism) *Engine {
	e := &Engine{m: m}
	if ir, ok := m.(intoRunner); ok {
		e.ir = ir
	}
	return e
}

// Mechanism returns the mechanism this engine evaluates.
func (e *Engine) Mechanism() Mechanism { return e.m }

// Observe attaches an engine metrics bundle (nil detaches) and
// returns the engine for chaining. Recording is allocation-free, so
// the engine's zero-allocs-per-run steady state holds with metrics on
// or off — a property the allocation guards pin down.
func (e *Engine) Observe(m *obs.EngineMetrics) *Engine {
	e.met = m
	return e
}

// Run evaluates the mechanism, reusing the engine's outcome and
// scratch buffers. The returned Outcome is invalidated by the next Run.
func (e *Engine) Run(agents []Agent, rate float64) (*Outcome, error) {
	if e.ir == nil {
		o, err := e.m.Run(agents, rate)
		if err == nil {
			e.met.RunDone(false, len(agents))
		}
		return o, err
	}
	if err := e.ir.runInto(&e.o, &e.s, agents, rate); err != nil {
		return nil, err
	}
	e.met.RunDone(true, len(agents))
	return &e.o, nil
}

// runFresh executes an intoRunner mechanism into a fresh Outcome; it
// backs the mechanisms' plain Run methods.
func runFresh(r intoRunner, agents []Agent, rate float64) (*Outcome, error) {
	var s scratch
	o := &Outcome{}
	if err := r.runInto(o, &s, agents, rate); err != nil {
		return nil, err
	}
	return o, nil
}

// Clone returns a deep copy of the outcome, detached from any engine
// buffers.
func (o *Outcome) Clone() *Outcome {
	c := *o
	c.Alloc = append([]float64(nil), o.Alloc...)
	c.Compensation = append([]float64(nil), o.Compensation...)
	c.Bonus = append([]float64(nil), o.Bonus...)
	c.Payment = append([]float64(nil), o.Payment...)
	c.Valuation = append([]float64(nil), o.Valuation...)
	c.Utility = append([]float64(nil), o.Utility...)
	return &c
}

// reset prepares the outcome for n agents, reusing slice capacity and
// zeroing every per-agent entry.
func (o *Outcome) reset(name string, mdl Model, kind ValuationKind, rate float64, n int) {
	o.Mechanism, o.Model, o.Kind, o.Rate = name, mdl.Name(), kind, rate
	o.BidLatency, o.RealLatency = 0, 0
	o.Alloc = numeric.Resize(o.Alloc, n)
	o.Compensation = numeric.Resize(o.Compensation, n)
	o.Bonus = numeric.Resize(o.Bonus, n)
	o.Payment = numeric.Resize(o.Payment, n)
	o.Valuation = numeric.Resize(o.Valuation, n)
	o.Utility = numeric.Resize(o.Utility, n)
	clear(o.Alloc)
	clear(o.Compensation)
	clear(o.Bonus)
	clear(o.Payment)
	clear(o.Valuation)
	clear(o.Utility)
}

// scratch holds the reusable working buffers of one mechanism
// evaluation.
type scratch struct {
	bids    []float64 // reported values
	cost    []float64 // per-agent bid-valued total costs
	looCost []float64 // leave-one-out sums of cost
	loo     []float64 // leave-one-out optimal totals
	excl    []float64 // exclusion buffer for the reference fallback
}

// gatherBids fills s.bids from the agent reports.
func (s *scratch) gatherBids(agents []Agent) []float64 {
	s.bids = numeric.Resize(s.bids, len(agents))
	for i, a := range agents {
		s.bids[i] = a.Bid
	}
	return s.bids
}

// leaveOneOutOptima fills s.loo[i] with the optimal total latency of
// the system without agent i: in one pass for LeaveOneOutModel
// implementations, otherwise by the per-exclusion reference path
// against a reused exclusion buffer.
func (s *scratch) leaveOneOutOptima(mdl Model, values []float64, rate float64) error {
	n := len(values)
	s.loo = numeric.Resize(s.loo, n)
	if lm, ok := mdl.(LeaveOneOutModel); ok {
		out, err := lm.LeaveOneOutOptima(values, rate, s.loo)
		s.loo = out
		return err
	}
	if n == 0 {
		return nil
	}
	s.excl = numeric.Resize(s.excl, n-1)
	for i := range values {
		sub := alloc.ExcludeInto(s.excl, values, i)
		v, err := exclusionModel(mdl, i).OptimalTotal(sub, rate)
		if err != nil {
			return fmt.Errorf("mech: exclusion optimum for agent %d: %w", i, err)
		}
		s.loo[i] = v
	}
	return nil
}

// bidCosts fills s.cost[i] = TotalCost(bid_i, x_i) and s.looCost with
// its leave-one-out sums, returning the compensated full sum (the bid
// total latency).
func (s *scratch) bidCosts(mdl Model, bids, x []float64) float64 {
	s.cost = numeric.Resize(s.cost, len(x))
	for i := range x {
		s.cost[i] = mdl.TotalCost(bids[i], x[i])
	}
	s.looCost = numeric.LeaveOneOutSums(s.cost, s.looCost)
	return numeric.Sum(s.cost)
}

// modelAllocInto computes the model allocation into dst when the model
// supports in-place allocation, falling back to a fresh slice.
func modelAllocInto(mdl Model, values []float64, rate float64, dst []float64) ([]float64, error) {
	if ip, ok := mdl.(InPlaceAllocator); ok {
		return ip.AllocInto(values, rate, dst)
	}
	return mdl.Alloc(values, rate)
}

// realTotal returns the realized total latency (every agent executing
// at its execution value).
func realTotal(mdl Model, agents []Agent, x []float64) float64 {
	var k numeric.KahanSum
	for i, a := range agents {
		k.Add(mdl.TotalCost(a.Exec, x[i]))
	}
	return k.Value()
}
