package mech

import (
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/latency"
)

// MG1Model treats each computer as an M/G/1 queue with service-time
// squared coefficient of variation CS2 shared across the system; the
// private value is t = 1/mu (mean service time) and the per-job
// latency is the Pollaczek-Khinchine mean sojourn time. CS2 = 1
// recovers MM1Model; CS2 = 0 models deterministic (M/D/1) service.
// It demonstrates that the mechanism layer is generic over any convex
// latency family the allocation solver can handle.
type MG1Model struct {
	// CS2 is the squared coefficient of variation of service times.
	CS2 float64
}

// Name implements Model.
func (m MG1Model) Name() string { return fmt.Sprintf("mg1(cs2=%g)", m.CS2) }

func (m MG1Model) functions(values []float64) ([]latency.Function, error) {
	if m.CS2 < 0 || math.IsNaN(m.CS2) {
		return nil, fmt.Errorf("mech: invalid CS2 %g", m.CS2)
	}
	fns := make([]latency.Function, len(values))
	for i, v := range values {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mech: invalid value values[%d] = %g", i, v)
		}
		fns[i] = latency.MG1{Mu: 1 / v, CS2: m.CS2}
	}
	return fns, nil
}

// Alloc implements Model via the generic KKT solver.
func (m MG1Model) Alloc(values []float64, rate float64) ([]float64, error) {
	fns, err := m.functions(values)
	if err != nil {
		return nil, err
	}
	return alloc.Optimal(fns, rate)
}

// Latency implements Model: the PK sojourn time.
func (m MG1Model) Latency(value, x float64) float64 {
	return latency.MG1{Mu: 1 / value, CS2: m.CS2}.Latency(x)
}

// TotalCost implements Model.
func (m MG1Model) TotalCost(value, x float64) float64 {
	return latency.MG1{Mu: 1 / value, CS2: m.CS2}.Total(x)
}

// OptimalTotal implements Model.
func (m MG1Model) OptimalTotal(values []float64, rate float64) (float64, error) {
	if len(values) == 0 {
		if rate == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	fns, err := m.functions(values)
	if err != nil {
		return 0, err
	}
	x, err := alloc.Optimal(fns, rate)
	if err != nil {
		return 0, err
	}
	return alloc.TotalLatency(fns, x), nil
}
