//go:build !race

package mech

// Allocation guards for the linear-model hot path. These use
// testing.AllocsPerRun, whose counts shift under the race detector's
// instrumented allocator, so the file is excluded from -race runs (the
// differential tests in diff_test.go cover correctness under -race).

import (
	"testing"

	"repro/internal/obs"
)

func TestCompensationBonusAllocsO1(t *testing.T) {
	agents := benchAgents(1000)
	// CompensationBonus.Run allocates one Outcome, its six per-agent
	// slices and the engine scratch slices — a constant number of
	// allocations regardless of n. The naive path allocates ~n slices
	// (one exclusion copy per agent). Guard the O(1) property with
	// headroom for incidental runtime allocations.
	const maxAllocs = 24
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := (CompensationBonus{}).Run(agents, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxAllocs {
		t.Errorf("CompensationBonus.Run: %.0f allocs/run for n=1000, want <= %d (O(1) slices)", allocs, maxAllocs)
	}
}

func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	agents := benchAgents(1000)
	eng := NewEngine(CompensationBonus{})
	// Warm up so the outcome and scratch buffers reach capacity.
	if _, err := eng.Run(agents, 500); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(agents, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Engine.Run steady state: %.0f allocs/run, want 0", allocs)
	}
}

func TestEngineNilSinkZeroAllocs(t *testing.T) {
	// The ISSUE acceptance gate: with a nil/disabled observability
	// sink, payment computation stays at 0 allocs/op.
	agents := benchAgents(1000)
	eng := NewEngine(CompensationBonus{}).Observe(nil)
	if _, err := eng.Run(agents, 500); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(agents, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Engine.Run with nil sink: %.0f allocs/run, want 0", allocs)
	}
}

func TestEngineObservedZeroAllocs(t *testing.T) {
	// Recording engine metrics is pure atomics: enabling them must not
	// cost the hot path its zero-allocation property either.
	agents := benchAgents(1000)
	met := obs.NewEngineMetrics(obs.NewRegistry())
	eng := NewEngine(CompensationBonus{}).Observe(met)
	if _, err := eng.Run(agents, 500); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(agents, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Engine.Run with metrics: %.0f allocs/run, want 0", allocs)
	}
	if met.Runs.Value() < 11 || met.FastPath.Value() != met.Runs.Value() {
		t.Errorf("engine metrics not recorded: runs=%d fast=%d",
			met.Runs.Value(), met.FastPath.Value())
	}
	if met.Payments.Value() != met.Runs.Value()*1000 {
		t.Errorf("payments = %d, want runs*1000", met.Payments.Value())
	}
}
