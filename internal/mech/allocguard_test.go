//go:build !race

package mech

// Allocation guards for the linear-model hot path. These use
// testing.AllocsPerRun, whose counts shift under the race detector's
// instrumented allocator, so the file is excluded from -race runs (the
// differential tests in diff_test.go cover correctness under -race).

import "testing"

func TestCompensationBonusAllocsO1(t *testing.T) {
	agents := benchAgents(1000)
	// CompensationBonus.Run allocates one Outcome, its six per-agent
	// slices and the engine scratch slices — a constant number of
	// allocations regardless of n. The naive path allocates ~n slices
	// (one exclusion copy per agent). Guard the O(1) property with
	// headroom for incidental runtime allocations.
	const maxAllocs = 24
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := (CompensationBonus{}).Run(agents, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxAllocs {
		t.Errorf("CompensationBonus.Run: %.0f allocs/run for n=1000, want <= %d (O(1) slices)", allocs, maxAllocs)
	}
}

func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	agents := benchAgents(1000)
	eng := NewEngine(CompensationBonus{})
	// Warm up so the outcome and scratch buffers reach capacity.
	if _, err := eng.Run(agents, 500); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(agents, 500); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Engine.Run steady state: %.0f allocs/run, want 0", allocs)
	}
}
