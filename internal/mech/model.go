// Package mech implements the algorithmic mechanism design layer of
// the repository: the paper's load balancing mechanism with
// verification (a compensation-and-bonus mechanism), plus baselines —
// classical obedient allocation, a no-verification compensation-and-
// bonus variant, VCG/Clarke, and the Archer-Tardos one-parameter
// mechanism — all parameterized by a latency Model so they work for
// linear and M/M/1 systems alike.
//
// Conventions. Every agent is a one-parameter agent whose private type
// is the latency parameter t (bigger t = slower computer). An agent
// reports a bid b, receives load x from the allocation algorithm, and
// then executes with an execution value ť (ť >= t in legal plays: a
// computer can run slower than its capacity, never faster).
//
// Following the paper, an agent's valuation is the negation of *its
// latency* — the per-job latency l_i(x_i) = ť_i*x_i for the linear
// model — while the system objective is the *total* latency
// L(x) = sum_i x_i*l_i(x_i). This asymmetry is deliberate and is what
// the paper's own experiment Low2 pins down: only with per-job
// valuations does C1's payment go negative there, as Figure 2 of the
// paper shows. Mechanisms that are instead defined in the utilitarian
// convention (valuations = total-latency shares) say so explicitly and
// mark their outcomes with ValuationTotalLatency.
package mech

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/latency"
	"repro/internal/numeric"
)

// Model abstracts the latency family the mechanism operates on. Values
// are the one-dimensional agent types: for the linear model the value
// is t in l(x) = t*x; for the M/M/1 model the value is t = 1/mu, the
// mean service time.
type Model interface {
	// Name identifies the model ("linear", "mm1", ...).
	Name() string
	// Alloc returns the total-latency-minimizing feasible allocation
	// for the given reported values.
	Alloc(values []float64, rate float64) ([]float64, error)
	// Latency returns the per-job latency l(x) of a computer with the
	// given value carrying load x. The paper's agent valuation is the
	// negation of this quantity.
	Latency(value, x float64) float64
	// TotalCost returns x*l(x), the computer's contribution to the
	// system objective.
	TotalCost(value, x float64) float64
	// OptimalTotal returns the minimum achievable total latency for
	// the given values and rate. An empty system has optimal total 0
	// at rate 0 and +Inf at positive rate.
	OptimalTotal(values []float64, rate float64) (float64, error)
}

// OneParameterModel is a Model whose total cost factors as
// TotalCost(t, x) = t * Work(x) with Work strictly increasing. The
// Archer-Tardos mechanism requires this factorization.
type OneParameterModel interface {
	Model
	// Work returns the work curve w(x) with TotalCost(t, x) = t*w(x).
	Work(x float64) float64
}

// LeaveOneOutModel is a Model that can compute every "system without
// agent i" optimal total in one pass instead of n independent solves.
// Mechanisms that price agents against exclusion optima (the paper's
// compensation-and-bonus mechanism, VCG) use this capability to run in
// O(n) or O(n log n) instead of O(n^2); models without it fall back to
// the per-exclusion reference path.
type LeaveOneOutModel interface {
	Model
	// LeaveOneOutOptima fills out[i] with OptimalTotal of the system
	// with agent i removed, for every i, and returns the filled slice
	// (out is resized as needed). Results must match the per-exclusion
	// OptimalTotal up to floating-point roundoff, including its error
	// behavior for infeasible exclusions.
	LeaveOneOutOptima(values []float64, rate float64, out []float64) ([]float64, error)
}

// InPlaceAllocator is a Model that can write its allocation into a
// caller-provided buffer, keeping the mechanism hot path free of
// steady-state allocations.
type InPlaceAllocator interface {
	Model
	// AllocInto is Alloc writing into dst (resized as needed) and
	// returning the filled slice.
	AllocInto(values []float64, rate float64, dst []float64) ([]float64, error)
}

// LinearModel is the paper's model: per-job latency l(x) = t*x, total
// cost t*x^2.
type LinearModel struct{}

// Name implements Model.
func (LinearModel) Name() string { return "linear" }

// Alloc implements Model using the PR algorithm.
func (LinearModel) Alloc(values []float64, rate float64) ([]float64, error) {
	return alloc.Proportional(values, rate)
}

// Latency implements Model: l(x) = t*x.
func (LinearModel) Latency(value, x float64) float64 { return value * x }

// TotalCost implements Model: t*x^2.
func (LinearModel) TotalCost(value, x float64) float64 { return value * x * x }

// OptimalTotal implements Model with the closed form R^2 / sum(1/t).
func (LinearModel) OptimalTotal(values []float64, rate float64) (float64, error) {
	if len(values) == 0 {
		if rate == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	for i, v := range values {
		if v <= 0 || math.IsNaN(v) {
			return 0, fmt.Errorf("mech: invalid value values[%d] = %g", i, v)
		}
	}
	return alloc.OptimalLatencyLinear(values, rate)
}

// Work implements OneParameterModel: w(x) = x^2.
func (LinearModel) Work(x float64) float64 { return x * x }

// AllocInto implements InPlaceAllocator via the PR algorithm.
func (LinearModel) AllocInto(values []float64, rate float64, dst []float64) ([]float64, error) {
	return alloc.ProportionalInto(dst, values, rate)
}

// LeaveOneOutOptima implements LeaveOneOutModel with the closed form
// L*_{-i} = R^2 / (sum_j 1/t_j - 1/t_i), evaluated without aggregate
// subtraction via compensated prefix/suffix sums.
func (LinearModel) LeaveOneOutOptima(values []float64, rate float64, out []float64) ([]float64, error) {
	for i, v := range values {
		if v <= 0 || math.IsNaN(v) {
			return out, fmt.Errorf("mech: invalid value values[%d] = %g", i, v)
		}
	}
	return alloc.LeaveOneOutOptimalLinear(values, rate, out), nil
}

// MM1Model treats each computer as an M/M/1 queue whose private value
// is t = 1/mu (mean service time); per-job latency is the M/M/1
// sojourn time 1/(mu-x). This is the model of the companion CLUSTER
// 2002 paper.
type MM1Model struct{}

// Name implements Model.
func (MM1Model) Name() string { return "mm1" }

// functions converts values t into MM1 latency functions with mu=1/t.
func (MM1Model) functions(values []float64) ([]latency.Function, error) {
	fns := make([]latency.Function, len(values))
	for i, v := range values {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mech: invalid value values[%d] = %g", i, v)
		}
		fns[i] = latency.MM1{Mu: 1 / v}
	}
	return fns, nil
}

// Alloc implements Model via the generic KKT solver.
func (m MM1Model) Alloc(values []float64, rate float64) ([]float64, error) {
	fns, err := m.functions(values)
	if err != nil {
		return nil, err
	}
	return alloc.Optimal(fns, rate)
}

// Latency implements Model: 1/(mu-x) with mu = 1/value; +Inf at or
// beyond capacity.
func (MM1Model) Latency(value, x float64) float64 {
	mu := 1 / value
	if x < 0 || x >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - x)
}

// TotalCost implements Model: x/(mu-x).
func (m MM1Model) TotalCost(value, x float64) float64 {
	return x * m.Latency(value, x)
}

// OptimalTotal implements Model.
func (m MM1Model) OptimalTotal(values []float64, rate float64) (float64, error) {
	if len(values) == 0 {
		if rate == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	fns, err := m.functions(values)
	if err != nil {
		return 0, err
	}
	x, err := alloc.Optimal(fns, rate)
	if err != nil {
		return 0, err
	}
	return alloc.TotalLatency(fns, x), nil
}

// LeaveOneOutOptima implements LeaveOneOutModel using the closed-form
// water-filling solution shared across all n exclusions (one sort plus
// cumulative sums). Borderline active sets the closed form cannot
// certify fall back to the generic KKT solver for that exclusion.
func (m MM1Model) LeaveOneOutOptima(values []float64, rate float64, out []float64) ([]float64, error) {
	mus := make([]float64, len(values))
	for i, v := range values {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return out, fmt.Errorf("mech: invalid value values[%d] = %g", i, v)
		}
		mus[i] = 1 / v
	}
	out, err := alloc.LeaveOneOutTotalsMM1(mus, rate, out)
	if err != nil {
		return out, fmt.Errorf("mech: exclusion optimum: %w", err)
	}
	for i := range out {
		if math.IsNaN(out[i]) {
			v, err := m.OptimalTotal(alloc.Exclude(values, i), rate)
			if err != nil {
				return out, fmt.Errorf("mech: exclusion optimum for agent %d: %w", i, err)
			}
			out[i] = v
		}
	}
	return out, nil
}

// totalMixedCost returns sum_i TotalCost(values[i], x[i]).
func totalMixedCost(m Model, values, x []float64) float64 {
	return numeric.SumFunc(len(x), func(i int) float64 { return m.TotalCost(values[i], x[i]) })
}

// ErrNeedTwoAgents is returned by mechanisms that compute exclusion
// ("system without agent i") quantities, which are undefined for a
// single computer carrying positive load.
var ErrNeedTwoAgents = errors.New("mech: mechanism requires at least two agents")
