package mech

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func uncapped(n int) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = math.Inf(1)
	}
	return caps
}

func TestCappedModelMatchesLinearWhenLoose(t *testing.T) {
	ts := []float64{1, 2, 5, 10}
	agents := Truthful(ts)
	const rate = 8
	plain, err := CompensationBonus{}.Run(agents, rate)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := CompensationBonus{Model: CappedLinearModel{Caps: uncapped(4)}}.Run(agents, rate)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if !numeric.AlmostEqual(capped.Alloc[i], plain.Alloc[i], 1e-9, 1e-12) {
			t.Errorf("alloc[%d]: capped %v vs plain %v", i, capped.Alloc[i], plain.Alloc[i])
		}
		if !numeric.AlmostEqual(capped.Payment[i], plain.Payment[i], 1e-9, 1e-9) {
			t.Errorf("payment[%d]: capped %v vs plain %v", i, capped.Payment[i], plain.Payment[i])
		}
	}
}

func TestCappedModelBindingCap(t *testing.T) {
	ts := []float64{1, 2, 5, 10}
	caps := []float64{2, math.Inf(1), math.Inf(1), math.Inf(1)}
	agents := Truthful(ts)
	const rate = 8
	o, err := CompensationBonus{Model: CappedLinearModel{Caps: caps}}.Run(agents, rate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Alloc[0]-2) > 1e-9 {
		t.Errorf("capped computer got %v, want its cap 2", o.Alloc[0])
	}
	var sum float64
	for _, x := range o.Alloc {
		sum += x
	}
	if math.Abs(sum-rate) > 1e-6 {
		t.Errorf("allocation sums to %v", sum)
	}
	// Voluntary participation still holds.
	for i, u := range o.Utility {
		if u < -1e-9 {
			t.Errorf("truthful capped agent %d utility %v", i, u)
		}
	}
}

func TestCappedModelStillTruthful(t *testing.T) {
	// The Groves argument survives the constraint set change: no
	// unilateral deviation (including ones that dodge or exploit the
	// cap) beats truth.
	ts := []float64{1, 2, 5, 10}
	caps := []float64{2, 3, math.Inf(1), math.Inf(1)}
	m := CompensationBonus{Model: CappedLinearModel{Caps: caps}}
	const rate = 8
	truth, err := m.Run(Truthful(ts), rate)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range [][2]float64{
		{0.5, 1}, {0.8, 1}, {1.2, 1}, {2, 1}, {5, 1},
		{1, 1.5}, {1, 2}, {0.5, 2}, {3, 3},
	} {
		dev := Truthful(ts)
		dev[0].Bid = d[0] * ts[0]
		dev[0].Exec = d[1] * ts[0]
		o, err := m.Run(dev, rate)
		if err != nil {
			t.Fatalf("deviation %v: %v", d, err)
		}
		if o.Utility[0] > truth.Utility[0]+1e-9 {
			t.Errorf("capped mechanism manipulated by %v: %v > %v",
				d, o.Utility[0], truth.Utility[0])
		}
	}
}

func TestCappedModelCriticalAgentUnpriceable(t *testing.T) {
	// Without computer 0 the others cannot carry the rate, so its
	// exclusion optimum is +Inf: the mechanism reports infinite
	// payment rather than something quietly wrong.
	ts := []float64{1, 2}
	caps := []float64{math.Inf(1), 3}
	o, err := CompensationBonus{Model: CappedLinearModel{Caps: caps}}.Run(Truthful(ts), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(o.Payment[0], 1) {
		t.Errorf("critical agent payment = %v, want +Inf", o.Payment[0])
	}
	if math.IsInf(o.Payment[1], 0) {
		t.Errorf("non-critical agent payment = %v, want finite", o.Payment[1])
	}
}

func TestCappedModelValidation(t *testing.T) {
	m := CappedLinearModel{Caps: []float64{1, 2}}
	if _, err := m.Alloc([]float64{1}, 1); err == nil {
		t.Error("expected error for value/cap count mismatch")
	}
	if _, err := m.OptimalTotal([]float64{1}, 1); err == nil {
		t.Error("expected error for mismatched OptimalTotal")
	}
	if v, err := m.OptimalTotal(nil, 0); err != nil || v != 0 {
		t.Errorf("empty zero-rate = %v, %v", v, err)
	}
	sub := m.SubModel(0)
	if len(sub.Caps) != 1 || sub.Caps[0] != 2 {
		t.Errorf("SubModel caps = %v", sub.Caps)
	}
}
