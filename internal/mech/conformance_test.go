package mech

// Conformance suite: a single invariant harness run against every
// mechanism and model combination. Each case checks the structural
// contracts any outcome must satisfy regardless of mechanism —
// feasible allocation, consistent decompositions, convention-tagged
// valuations — plus the incentive properties the mechanism claims.

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// conformanceCase describes one mechanism under test.
type conformanceCase struct {
	name string
	m    Mechanism
	// truthfulInBids: unilateral misreports with full-capacity
	// execution never beat truth.
	truthfulInBids bool
	// truthfulInExec: unilateral slow execution (with truthful bid)
	// never beats full capacity.
	truthfulInExec bool
	// ir: truthful play yields nonnegative utility.
	ir bool
	// values/rate for the population (model-appropriate).
	values []float64
	rate   float64
}

func conformanceCases() []conformanceCase {
	linear := []float64{1, 2, 5, 10}
	mm1 := []float64{0.1, 0.2, 0.4, 0.5} // capacities 10,5,2.5,2; rate must stay below every exclusion
	return []conformanceCase{
		{"verification/linear", CompensationBonus{}, true, true, true, linear, 8},
		{"verification/mm1", CompensationBonus{Model: MM1Model{}}, true, true, true, mm1, 6},
		{"verification/mg1", CompensationBonus{Model: MG1Model{CS2: 2}}, true, true, true, mm1, 6},
		{"noverification/linear", BidCompensationBonus{}, false, true, true, linear, 8},
		{"vcg/linear", VCG{}, true, true, true, linear, 8},
		{"archertardos/linear", ArcherTardos{}, true, true, true, linear, 8},
		{"classical/linear", Classical{}, false, true, false, linear, 8},
	}
}

func TestConformance(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			agents := Truthful(c.values)
			truth, err := c.m.Run(agents, c.rate)
			if err != nil {
				t.Fatalf("truthful run: %v", err)
			}
			checkStructure(t, truth, c.rate)

			if c.ir {
				for i, u := range truth.Utility {
					if u < -1e-6 {
						t.Errorf("IR violated: truthful agent %d utility %v", i, u)
					}
				}
			}

			// Bid deviations at full capacity.
			bidFactors := []float64{0.7, 0.9, 1.2, 1.6}
			anyBidGain := false
			for _, bf := range bidFactors {
				dev := Truthful(c.values)
				dev[0].Bid = bf * dev[0].True
				o, err := c.m.Run(dev, c.rate)
				if err != nil {
					continue
				}
				checkStructure(t, o, c.rate)
				if o.Utility[0] > truth.Utility[0]+1e-6 {
					anyBidGain = true
				}
			}
			if c.truthfulInBids && anyBidGain {
				t.Error("profitable bid misreport found for a mechanism claiming bid-truthfulness")
			}
			if !c.truthfulInBids && !anyBidGain {
				t.Error("no profitable misreport found for a mechanism known to be manipulable")
			}

			// Execution deviations with truthful bid.
			for _, ef := range []float64{1.3, 2} {
				dev := Truthful(c.values)
				dev[0].Exec = ef * dev[0].True
				o, err := c.m.Run(dev, c.rate)
				if err != nil {
					continue
				}
				checkStructure(t, o, c.rate)
				if c.truthfulInExec && o.Utility[0] > truth.Utility[0]+1e-6 {
					t.Errorf("profitable slow execution (factor %v)", ef)
				}
			}
		})
	}
}

// checkStructure verifies the universal outcome contracts.
func checkStructure(t *testing.T, o *Outcome, rate float64) {
	t.Helper()
	var sum numeric.KahanSum
	for i, x := range o.Alloc {
		if x < 0 || math.IsNaN(x) {
			t.Fatalf("alloc[%d] = %v", i, x)
		}
		sum.Add(x)
	}
	if math.Abs(sum.Value()-rate) > 1e-6*(1+rate) {
		t.Fatalf("allocation sums to %v, want %v", sum.Value(), rate)
	}
	n := len(o.Alloc)
	for _, s := range [][]float64{o.Compensation, o.Bonus, o.Payment, o.Valuation, o.Utility} {
		if len(s) != n {
			t.Fatalf("outcome slices have inconsistent lengths")
		}
	}
	for i := range o.Utility {
		if !numeric.AlmostEqual(o.Utility[i], o.Payment[i]+o.Valuation[i], 1e-9, 1e-9) {
			t.Errorf("utility[%d] != payment + valuation", i)
		}
		if o.Valuation[i] > 0 {
			t.Errorf("valuation[%d] = %v should be nonpositive (a cost)", i, o.Valuation[i])
		}
		if math.IsNaN(o.Payment[i]) || math.IsInf(o.Payment[i], 0) {
			t.Errorf("payment[%d] = %v", i, o.Payment[i])
		}
	}
	if o.Kind != ValuationPerJob && o.Kind != ValuationTotalLatency {
		t.Errorf("outcome kind %q unset", o.Kind)
	}
	if math.IsNaN(o.RealLatency) || math.IsNaN(o.BidLatency) {
		t.Error("latency aggregates are NaN")
	}
}

// Scale covariance properties of the linear model: scaling all values
// by c leaves the allocation unchanged; scaling the rate by a scales
// the allocation by a.
func TestLinearModelScaleProperties(t *testing.T) {
	model := LinearModel{}
	base := []float64{1, 2, 5, 10}
	x1, err := model.Alloc(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(base))
	for i, v := range base {
		scaled[i] = 3 * v
	}
	x2, err := model.Alloc(scaled, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !numeric.AlmostEqual(x1[i], x2[i], 1e-12, 1e-15) {
			t.Errorf("allocation not scale-invariant at %d", i)
		}
	}
	x3, err := model.Alloc(base, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !numeric.AlmostEqual(2*x1[i], x3[i], 1e-12, 1e-15) {
			t.Errorf("allocation not rate-linear at %d", i)
		}
	}
	// Latency scales as c under value scaling and as a^2 under rate
	// scaling.
	l1, err := model.OptimalTotal(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := model.OptimalTotal(scaled, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(l2, 3*l1, 1e-12, 1e-12) {
		t.Errorf("latency not value-homogeneous: %v vs %v", l2, 3*l1)
	}
	l3, err := model.OptimalTotal(base, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(l3, 4*l1, 1e-12, 1e-12) {
		t.Errorf("latency not rate-quadratic: %v vs %v", l3, 4*l1)
	}
}
