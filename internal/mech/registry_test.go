package mech

import "testing"

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"archertardos", "classical", "noverification", "vcg", "verification"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	agents := Truthful([]float64{1, 2, 5})
	for _, name := range Names() {
		m, err := ByName(name, nil)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := m.Run(agents, 6); err != nil {
			t.Errorf("%s run: %v", name, err)
		}
	}
	if _, err := ByName("nope", nil); err == nil {
		t.Error("expected error for unknown mechanism")
	}
	// Model threading.
	m, err := ByName("verification", MM1Model{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := m.Run(Truthful([]float64{0.1, 0.2}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Model != "mm1" {
		t.Errorf("model = %q", o.Model)
	}
	// AT rejects non-one-parameter models.
	if _, err := ByName("archertardos", MM1Model{}); err == nil {
		t.Error("archertardos accepted a non-factoring model")
	}
}
