package mech

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/numeric"
)

// VCG is the Vickrey-Clarke-Groves mechanism with the Clarke pivot
// rule, computed on bids alone — the textbook baseline *without*
// verification. VCG requires the objective to be the sum of the
// agents' valuations, so it is stated in the utilitarian convention
// (ValuationTotalLatency): each agent's cost is its total-latency
// share x_i*l_i(x_i) and
//
//	P_i = L*(b_{-i}) - sum_{j != i} TotalCost(b_j, x_j(b)).
//
// VCG is dominant-strategy truthful in the bids, but because payments
// are fixed before execution, a slow executor keeps its payment; the
// latency increase it causes is punished only through its own
// valuation, never with the amplified penalty the verification
// mechanism imposes. The ablation benchmarks quantify the difference.
type VCG struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

func (m VCG) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m VCG) Name() string { return "vcg-clarke" }

// Run implements Mechanism.
func (m VCG) Run(agents []Agent, rate float64) (*Outcome, error) {
	if len(agents) < 2 {
		return nil, ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return nil, err
	}
	mdl := m.model()
	bids := Bids(agents)
	x, err := mdl.Alloc(bids, rate)
	if err != nil {
		return nil, err
	}
	o := newOutcome(m.Name(), mdl, ValuationTotalLatency, agents, rate, x)
	for i, a := range agents {
		lExcl, err := exclusionModel(mdl, i).OptimalTotal(alloc.Exclude(bids, i), rate)
		if err != nil {
			return nil, fmt.Errorf("mech: exclusion optimum for agent %d: %w", i, err)
		}
		var others numeric.KahanSum
		for j := range agents {
			if j != i {
				others.Add(mdl.TotalCost(bids[j], x[j]))
			}
		}
		// Equivalent compensation-and-bonus presentation of Clarke:
		// declared-cost reimbursement plus bid-based marginal surplus.
		o.Compensation[i] = mdl.TotalCost(a.Bid, x[i])
		o.Bonus[i] = lExcl - o.BidLatency
		o.Payment[i] = lExcl - others.Value()
		o.Valuation[i] = -mdl.TotalCost(a.Exec, x[i])
		o.Utility[i] = o.Payment[i] + o.Valuation[i]
	}
	return o, nil
}
