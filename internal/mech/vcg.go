package mech


// VCG is the Vickrey-Clarke-Groves mechanism with the Clarke pivot
// rule, computed on bids alone — the textbook baseline *without*
// verification. VCG requires the objective to be the sum of the
// agents' valuations, so it is stated in the utilitarian convention
// (ValuationTotalLatency): each agent's cost is its total-latency
// share x_i*l_i(x_i) and
//
//	P_i = L*(b_{-i}) - sum_{j != i} TotalCost(b_j, x_j(b)).
//
// VCG is dominant-strategy truthful in the bids, but because payments
// are fixed before execution, a slow executor keeps its payment; the
// latency increase it causes is punished only through its own
// valuation, never with the amplified penalty the verification
// mechanism imposes. The ablation benchmarks quantify the difference.
type VCG struct {
	// Model is the latency model; the zero value uses LinearModel.
	Model Model
}

func (m VCG) model() Model {
	if m.Model == nil {
		return LinearModel{}
	}
	return m.Model
}

// Name implements Mechanism.
func (m VCG) Name() string { return "vcg-clarke" }

// Run implements Mechanism, on the same leave-one-out engine as the
// compensation-and-bonus mechanisms: the Clarke pivot needs exactly
// the exclusion optima and "everyone but i" cost sums the engine
// produces in one pass.
func (m VCG) Run(agents []Agent, rate float64) (*Outcome, error) {
	return runFresh(m, agents, rate)
}

// runInto implements intoRunner.
func (m VCG) runInto(o *Outcome, s *scratch, agents []Agent, rate float64) error {
	if len(agents) < 2 {
		return ErrNeedTwoAgents
	}
	if err := validateAgents(agents, rate); err != nil {
		return err
	}
	mdl := m.model()
	bids := s.gatherBids(agents)
	o.reset(m.Name(), mdl, ValuationTotalLatency, rate, len(agents))
	x, err := modelAllocInto(mdl, bids, rate, o.Alloc)
	if err != nil {
		return err
	}
	o.Alloc = x
	if err := s.leaveOneOutOptima(mdl, bids, rate); err != nil {
		return err
	}
	o.BidLatency = s.bidCosts(mdl, bids, x)
	o.RealLatency = realTotal(mdl, agents, x)
	for i, a := range agents {
		// Equivalent compensation-and-bonus presentation of Clarke:
		// declared-cost reimbursement plus bid-based marginal surplus.
		o.Compensation[i] = s.cost[i]
		o.Bonus[i] = s.loo[i] - o.BidLatency
		o.Payment[i] = s.loo[i] - s.looCost[i]
		o.Valuation[i] = -mdl.TotalCost(a.Exec, x[i])
		o.Utility[i] = o.Payment[i] + o.Valuation[i]
	}
	return nil
}
