package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into equal-width bins over [Lo, Hi).
// Observations outside the range are tallied in dedicated underflow
// and overflow counters rather than silently dropped.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with n equal-width bins over
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against rounding at the edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations tallied, including under-
// and overflow.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Mode returns the midpoint of the most populated bin, or NaN when the
// histogram is empty.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return math.NaN()
	}
	return h.Lo + (float64(best)+0.5)*h.BinWidth()
}

// String renders the histogram as a compact ASCII bar chart, one line
// per bin, scaled to a 40-character bar.
func (h *Histogram) String() string {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*h.BinWidth()
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n",
			lo, lo+h.BinWidth(), c, strings.Repeat("#", bar))
	}
	if h.Underflow > 0 || h.Overflow > 0 {
		fmt.Fprintf(&b, "underflow %d, overflow %d\n", h.Underflow, h.Overflow)
	}
	return b.String()
}
