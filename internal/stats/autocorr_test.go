package stats

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestAutocorrelationIID(t *testing.T) {
	rng := numeric.NewRand(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf, err := Autocorrelation(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Errorf("rho_0 = %v, want 1", acf[0])
	}
	for lag := 1; lag <= 5; lag++ {
		if math.Abs(acf[lag]) > 0.03 {
			t.Errorf("iid rho_%d = %v, want ~0", lag, acf[lag])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	const rho = 0.7
	rng := numeric.NewRand(3)
	xs := ar1(50000, rho, rng)
	acf, err := Autocorrelation(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for lag := 1; lag <= 3; lag++ {
		want := math.Pow(rho, float64(lag))
		if math.Abs(acf[lag]-want) > 0.05 {
			t.Errorf("rho_%d = %v, want ~%v", lag, acf[lag], want)
		}
	}
}

func TestIntegratedAutocorrTime(t *testing.T) {
	// For AR(1), tau = (1+rho)/(1-rho).
	const rho = 0.6
	rng := numeric.NewRand(5)
	xs := ar1(100000, rho, rng)
	tau, err := IntegratedAutocorrTime(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + rho) / (1 - rho) // 4
	if math.Abs(tau-want)/want > 0.15 {
		t.Errorf("tau = %v, want ~%v", tau, want)
	}
	// IID series has tau ~ 1.
	iid := make([]float64, 50000)
	for i := range iid {
		iid[i] = rng.NormFloat64()
	}
	tau, err = IntegratedAutocorrTime(iid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-1) > 0.2 {
		t.Errorf("iid tau = %v, want ~1", tau)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1}, 1); err == nil {
		t.Error("expected error for tiny series")
	}
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("expected error for negative lag")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3}, 1); err == nil {
		t.Error("expected error for constant series")
	}
	// Lag clamp.
	acf, err := Autocorrelation([]float64{1, 2, 1, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 4 {
		t.Errorf("clamped acf length = %d", len(acf))
	}
}

func TestQueueSojournsAreCorrelated(t *testing.T) {
	// The fact motivating batch means: consecutive M/M/1 sojourns have
	// tau substantially above 1 at moderate utilization.
	// (Generated here via an AR-like queue recursion using Lindley's
	// equation: W_{n+1} = max(0, W_n + S_n - A_n).)
	rng := numeric.NewRand(7)
	const mu, lambda = 1.0, 0.7
	w := 0.0
	sojourns := make([]float64, 60000)
	for i := range sojourns {
		s := rng.ExpFloat64() / mu
		sojourns[i] = w + s
		a := rng.ExpFloat64() / lambda
		w = math.Max(0, w+s-a)
	}
	tau, err := IntegratedAutocorrTime(sojourns)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 3 {
		t.Errorf("queue sojourn tau = %v, expected substantial correlation", tau)
	}
}
