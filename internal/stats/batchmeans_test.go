package stats

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestBatchMeansIIDMatchesNaive(t *testing.T) {
	rng := numeric.NewRand(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 3 + rng.NormFloat64()
	}
	mean, se, err := BatchMeans(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	// For i.i.d. data the batch-means SE agrees with the naive SE
	// (1/sqrt(10000) = 0.01) up to batching noise.
	if se < 0.005 || se > 0.02 {
		t.Errorf("iid batch-means SE = %v, want ~0.01", se)
	}
}

// ar1 generates an AR(1) series with the given autocorrelation.
func ar1(n int, rho float64, rng *numeric.Rand) []float64 {
	xs := make([]float64, n)
	x := 0.0
	scale := math.Sqrt(1 - rho*rho)
	for i := range xs {
		x = rho*x + scale*rng.NormFloat64()
		xs[i] = x
	}
	return xs
}

func TestBatchMeansWidensForCorrelatedSeries(t *testing.T) {
	rng := numeric.NewRand(7)
	xs := ar1(20000, 0.9, rng)
	_, seBatch, err := BatchMeans(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	s.AddAll(xs)
	seNaive := s.StdErr()
	// AR(1) with rho=0.9 has variance inflation (1+rho)/(1-rho) = 19;
	// the batch-means SE must be several times the naive one.
	if seBatch < 2*seNaive {
		t.Errorf("batch SE %v did not widen vs naive %v for correlated data",
			seBatch, seNaive)
	}
}

func TestBatchMeansCoverageOnAR1(t *testing.T) {
	// ~95% of batch-means intervals must cover the true mean 0 of an
	// AR(1) process — the property the naive interval fails.
	covered, naiveCovered := 0, 0
	const trials = 200
	for s := 0; s < trials; s++ {
		rng := numeric.NewRand(uint64(100 + s))
		xs := ar1(4000, 0.8, rng)
		mean, se, err := BatchMeans(xs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean) <= 1.96*se {
			covered++
		}
		var sum Summary
		sum.AddAll(xs)
		if math.Abs(sum.Mean()) <= 1.96*sum.StdErr() {
			naiveCovered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.85 {
		t.Errorf("batch-means coverage = %v, want >= 0.85", frac)
	}
	if naiveCovered >= covered {
		t.Errorf("naive coverage %d should be below batch-means %d on correlated data",
			naiveCovered, covered)
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, _, err := BatchMeans([]float64{1, 2, 3}, 2); err == nil {
		t.Error("expected error for tiny sample")
	}
}

func TestBatchMeansAutoBatching(t *testing.T) {
	rng := numeric.NewRand(3)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	mean, se, err := BatchMeans(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if se <= 0 {
		t.Errorf("se = %v", se)
	}
	if math.Abs(mean-0.5) > 0.1 {
		t.Errorf("mean = %v", mean)
	}
}
