package stats

import (
	"errors"
	"math"
)

// BatchMeans estimates the mean of a correlated stationary series and
// the standard error of that mean by the method of batch means: the
// series is cut into `batches` contiguous batches, and the variance of
// the batch means (which are nearly independent when batches are long
// compared to the autocorrelation time) replaces the naive i.i.d.
// variance. This is the standard tool for steady-state queueing
// simulation output, where successive sojourn times are strongly
// correlated and i.i.d. confidence intervals under-cover.
//
// batches <= 0 selects ceil(sqrt(n)) capped at 64. At least 2 batches
// with at least 2 observations each are required.
func BatchMeans(xs []float64, batches int) (mean, stderr float64, err error) {
	n := len(xs)
	if n < 4 {
		return 0, 0, errors.New("stats: too few observations for batch means")
	}
	if batches <= 0 {
		batches = int(math.Ceil(math.Sqrt(float64(n))))
		if batches > 64 {
			batches = 64
		}
	}
	if batches < 2 {
		batches = 2
	}
	if batches > n/2 {
		batches = n / 2
	}
	size := n / batches // drop the ragged tail
	var overall Summary
	var batchStats Summary
	for b := 0; b < batches; b++ {
		var bm Summary
		for i := b * size; i < (b+1)*size; i++ {
			bm.Add(xs[i])
			overall.Add(xs[i])
		}
		batchStats.Add(bm.Mean())
	}
	// Var of the grand mean = Var(batch means)/batches.
	se := batchStats.Std() / math.Sqrt(float64(batches))
	return overall.Mean(), se, nil
}
