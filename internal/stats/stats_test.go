package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got, want := s.Var(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should report zeros")
	}
	lo, hi := s.CI95()
	if lo != 0 || hi != 0 {
		t.Errorf("empty CI95 = (%v, %v)", lo, hi)
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 {
		t.Errorf("single-point summary: mean %v var %v", s.Mean(), s.Var())
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("single-point min/max wrong")
	}
}

func TestSummaryCI95CoversMean(t *testing.T) {
	var s Summary
	rng := numeric.NewRand(5)
	for i := 0; i < 10000; i++ {
		s.Add(10 + rng.NormFloat64())
	}
	lo, hi := s.CI95()
	if lo > 10 || hi < 10 {
		t.Errorf("CI95 (%v, %v) does not cover true mean 10", lo, hi)
	}
	if hi-lo > 0.1 {
		t.Errorf("CI95 width %v too wide for n=10000", hi-lo)
	}
}

// Property: merging two summaries equals summarizing the concatenation.
func TestSummaryMergeEquivalence(t *testing.T) {
	prop := func(a, b []float64) bool {
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		var s1, s2, all Summary
		s1.AddAll(a)
		s2.AddAll(b)
		all.AddAll(a)
		all.AddAll(b)
		s1.Merge(&s2)
		if s1.N() != all.N() {
			return false
		}
		if s1.N() == 0 {
			return true
		}
		return numeric.AlmostEqual(s1.Mean(), all.Mean(), 1e-9, 1e-9) &&
			numeric.AlmostEqual(s1.Var(), all.Var(), 1e-6, 1e-9) &&
			s1.Min() == all.Min() && s1.Max() == all.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("interpolated q30 = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v, want 0.1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %v, want 0", got)
	}
}
