// Package stats provides streaming summary statistics, quantiles,
// histograms and bootstrap confidence intervals used by the simulation
// and experiment harnesses.
package stats

import (
	"math"
	"sort"
)

// Summary accumulates a stream of observations with Welford's online
// algorithm, tracking count, mean, variance and extrema in O(1) space.
// The zero value is an empty summary ready for use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll incorporates every observation in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations seen.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns a normal-approximation 95% confidence interval for the
// mean. With fewer than two observations it degenerates to the mean.
func (s *Summary) CI95() (lo, hi float64) {
	const z = 1.959963984540054
	h := z * s.StdErr()
	return s.mean - h, s.mean + h
}

// Merge combines another summary into s (parallel Welford merge).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) of xs using
// linear interpolation between order statistics. It panics on an empty
// slice or out-of-range q. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile fraction out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the sample median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// RelErr returns |got-want| / max(|want|, eps): the relative error of
// got against a reference value, guarded against a zero reference.
func RelErr(got, want float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-300 {
		denom = 1e-300
	}
	return math.Abs(got-want) / denom
}
