package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/numeric"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0, 0.5, 1, 5.5, 9.999} {
		h.Add(x)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-1)
	h.Add(2)
	h.Add(1) // hi is exclusive
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("underflow %d overflow %d, want 1 and 2", h.Underflow, h.Overflow)
	}
}

func TestHistogramModeOfNormal(t *testing.T) {
	h := NewHistogram(-5, 5, 50)
	rng := numeric.NewRand(77)
	for i := 0; i < 100000; i++ {
		h.Add(rng.NormFloat64())
	}
	if m := h.Mode(); math.Abs(m) > 0.3 {
		t.Errorf("mode of standard normal = %v, want ~0", m)
	}
}

func TestHistogramModeEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	if m := h.Mode(); !math.IsNaN(m) {
		t.Errorf("empty histogram mode = %v, want NaN", m)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	h.Add(5)
	s := h.String()
	if !strings.Contains(s, "overflow 1") {
		t.Errorf("String missing overflow note:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Errorf("String has no bars:\n%s", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := numeric.NewRand(101)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 50 + 5*rng.NormFloat64()
	}
	lo, hi := Bootstrap(xs, func(s []float64) float64 { return numeric.Mean(s) }, 2000, 0.05, rng)
	if lo > 50 || hi < 50 {
		t.Errorf("bootstrap CI (%v, %v) misses true mean 50", lo, hi)
	}
	if hi-lo > 2 {
		t.Errorf("bootstrap CI width %v implausibly wide", hi-lo)
	}
}

func TestBootstrapPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bootstrap(nil, numeric.Mean, 10, 0.05, numeric.NewRand(1))
}
