package stats

import (
	"sort"

	"repro/internal/numeric"
)

// Bootstrap resamples xs with replacement `resamples` times, applies
// stat to each resample, and returns the (alpha/2, 1-alpha/2)
// percentile interval of the statistic. It is used to attach
// distribution-free confidence intervals to simulation outputs.
func Bootstrap(xs []float64, stat func([]float64) float64, resamples int, alpha float64, rng *numeric.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: Bootstrap of empty sample")
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	sort.Float64s(vals)
	loIdx := int(alpha / 2 * float64(resamples))
	hiIdx := int((1 - alpha/2) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return vals[loIdx], vals[hiIdx]
}
