package stats

import "errors"

// Autocorrelation returns the sample autocorrelation function of xs at
// lags 0..maxLag (inclusive), with the standard biased normalization
// by the lag-0 autocovariance. It is the diagnostic behind the
// batch-means batch-count choice: batches should span several
// integrated autocorrelation times.
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if n < 2 {
		return nil, errors.New("stats: too few observations for autocorrelation")
	}
	if maxLag < 0 {
		return nil, errors.New("stats: negative lag")
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	var m Summary
	m.AddAll(xs)
	mean := m.Mean()
	denom := 0.0
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return nil, errors.New("stats: constant series has undefined autocorrelation")
	}
	acf := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		acf[lag] = num / denom
	}
	return acf, nil
}

// IntegratedAutocorrTime estimates the integrated autocorrelation time
// tau = 1 + 2*sum_{k>=1} rho_k, truncating the sum at the first
// non-positive autocorrelation (the initial positive sequence
// estimator). The effective sample size of a correlated series of
// length n is roughly n/tau.
func IntegratedAutocorrTime(xs []float64) (float64, error) {
	maxLag := len(xs) / 4
	if maxLag < 1 {
		maxLag = 1
	}
	acf, err := Autocorrelation(xs, maxLag)
	if err != nil {
		return 0, err
	}
	tau := 1.0
	for lag := 1; lag < len(acf); lag++ {
		if acf[lag] <= 0 {
			break
		}
		tau += 2 * acf[lag]
	}
	return tau, nil
}
