package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// snapData is a decoded snapshot sidecar: the uncorrected live
// population of one sealed epoch, the correction it was sealed with,
// the canonical S of that epoch (a recovery self-check), and the log
// position just after the covering seal record.
type snapData struct {
	epoch uint64
	next  int
	seg   uint64
	off   int64
	rate  float64
	s     float64
	drops []int
	wts   []weightEntry
	ids   []int
	ts    []float64
}

// encodeSnapshot serializes a captured snapshot:
//
//	magic(8) | epoch u64 | next u64 | seg u64 | off u64 | rate f64 |
//	s f64 | nDrop u32 | nWeight u32 | nLive u64 | drops… | weights… |
//	(id u64, t f64)… | CRC32C u32
//
// little-endian throughout; the CRC covers everything after the magic.
func encodeSnapshot(p *pendingSnap) []byte {
	n := 8 + 48 + 16 + 8*len(p.drops) + 16*len(p.wts) + 16*len(p.ids) + 4
	b := make([]byte, 0, n)
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, p.epoch)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.next))
	b = binary.LittleEndian.AppendUint64(b, p.seg)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.off))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.rate))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.s))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.drops)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.wts)))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(p.ids)))
	for _, id := range p.drops {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	for _, e := range p.wts {
		b = binary.LittleEndian.AppendUint64(b, uint64(e.id))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.w))
	}
	for i, id := range p.ids {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.ts[i]))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[8:], crcTable))
}

// decodeSnapshot parses and verifies a snapshot sidecar.
func decodeSnapshot(b []byte) (*snapData, error) {
	if len(b) < 8+48+16+4 {
		return nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(b))
	}
	if string(b[:8]) != snapMagic {
		return nil, fmt.Errorf("wal: bad snapshot magic")
	}
	body, tail := b[8:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	sd := &snapData{
		epoch: binary.LittleEndian.Uint64(body),
		next:  int(binary.LittleEndian.Uint64(body[8:])),
		seg:   binary.LittleEndian.Uint64(body[16:]),
		off:   int64(binary.LittleEndian.Uint64(body[24:])),
		rate:  math.Float64frombits(binary.LittleEndian.Uint64(body[32:])),
		s:     math.Float64frombits(binary.LittleEndian.Uint64(body[40:])),
	}
	nDrop := int(binary.LittleEndian.Uint32(body[48:]))
	nWeight := int(binary.LittleEndian.Uint32(body[52:]))
	nLive := int(binary.LittleEndian.Uint64(body[56:]))
	want := 64 + 8*nDrop + 16*nWeight + 16*nLive
	if len(body) != want {
		return nil, fmt.Errorf("wal: snapshot body has %d bytes, want %d", len(body), want)
	}
	off := 64
	sd.drops = make([]int, nDrop)
	for i := range sd.drops {
		sd.drops[i] = int(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	sd.wts = make([]weightEntry, nWeight)
	for i := range sd.wts {
		sd.wts[i].id = int(binary.LittleEndian.Uint64(body[off:]))
		sd.wts[i].w = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:]))
		off += 16
	}
	sd.ids = make([]int, nLive)
	sd.ts = make([]float64, nLive)
	for i := range sd.ids {
		sd.ids[i] = int(binary.LittleEndian.Uint64(body[off:]))
		sd.ts[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:]))
		off += 16
	}
	return sd, nil
}

// readSnapshot loads and verifies one sidecar file.
func readSnapshot(path string) (*snapData, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sd, err := decodeSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	return sd, nil
}
