package wal

// Go-fuzz harness for the segment reader: arbitrary bytes are written
// as the single segment of a log and recovered. Recovery may refuse
// (corruption) or succeed on a durable prefix; it must never panic,
// hang, or allocate absurdly. The committed corpus under
// testdata/fuzz/FuzzRecoverSegment pins the interesting shapes: a real
// log, a truncated one, a bit-flipped one, and degenerate headers.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/registry"
)

// fuzzSeedLog builds a small real log and returns its segment bytes.
func fuzzSeedLog(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	w, err := Create(dir, Options{Sync: SyncNone})
	if err != nil {
		tb.Fatal(err)
	}
	r, err := registry.New(registry.Config{Rate: 5, Shards: 2, Journal: w})
	if err != nil {
		tb.Fatal(err)
	}
	ids := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		id, err := r.Add(float64(i + 1))
		if err != nil {
			tb.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := r.Update(ids[1], 2.5); err != nil {
		tb.Fatal(err)
	}
	if err := r.Remove(ids[2]); err != nil {
		tb.Fatal(err)
	}
	if err := r.SetRate(9); err != nil {
		tb.Fatal(err)
	}
	r.Seal()
	if _, err := r.SealCorrected(&registry.Correction{
		Drop:    map[int]bool{ids[0]: true},
		Weights: map[int]float64{ids[3]: 0.5},
	}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzRecoverSegment(f *testing.F) {
	seed := fuzzSeedLog(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-7]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(seed[:segHeaderLen]) // header only
	f.Add([]byte{})
	f.Add([]byte("LBWAL001garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, info, err := Recover(dir, registry.Config{Rate: 1, Shards: 4})
		if err != nil {
			return // refusing damaged input is a valid outcome
		}
		if r == nil || info == nil {
			t.Fatalf("nil registry or info without error")
		}
		// Whatever was recovered must be internally consistent: the
		// published snapshot reseal-stable and the id space sane.
		snap := r.Snapshot()
		if snap == nil {
			t.Fatalf("recovered registry has no sealed snapshot")
		}
		if got := r.Seal(); got.N() != r.Live() {
			t.Fatalf("reseal live count %d != registry live %d", got.N(), r.Live())
		}
	})
}
