// Package wal makes the concurrent bid registry crash-recoverable: an
// append-only binary write-ahead log that internal/registry writes
// through (via the registry.Journal hook), periodic snapshot
// compaction, and recovery that rebuilds a registry whose sealed
// epochs are bit-for-bit identical to the pre-crash ones.
//
// The log is a sequence of segment files (wal-<seq>.log). Every record
// is length-prefixed and CRC32C-framed:
//
//	[u32 payload length][u32 CRC32C(payload)][payload]
//
// with little-endian integers throughout. The payload starts with a
// one-byte kind: add/rebid/leave mutations, rate changes, and seal
// records (plain, or corrected with the health adjustment inlined).
// Appends group-commit: records accumulate in a memory buffer that is
// written to the segment in batches, and fsync runs under a
// configurable policy (every batch, every seal, on an interval, or
// never). The append path allocates nothing in steady state.
//
// Why replaying the log reproduces sealed epochs exactly: a sealed
// epoch is a pure function of the live (id, bid) set, the rate and the
// correction — the canonical ascending-id Neumaier reduction shared
// with alloc.Stream (see internal/registry). The journal hook logs
// every mutation under its shard lock and every seal under ALL shard
// locks, so the seal record is a barrier: mutations logged before it
// are exactly those the epoch observed. Replay therefore rebuilds the
// same live set at every seal record, and resealing (with the logged
// rate and correction) reproduces the identical snapshot — for any
// shard count and any worker count, on both sides of the crash.
//
// Snapshot sidecar files (snap-<epoch>.snap) serialize the sealed
// epoch's source state — the uncorrected live population, the id
// counter, the rate, the correction, and the canonical S of the
// covered epoch for a recovery self-check — plus the log position just
// after the covering seal record. Compaction keeps the two newest
// snapshots and deletes every segment older than the one the previous
// snapshot points into, so recovery always has a valid snapshot-plus-
// tail even if the newest snapshot is damaged. Recovery loads the
// newest valid snapshot, reseals, verifies S bit-for-bit, replays the
// log tail, and truncates a torn final record (a kill -9 mid-write)
// at the last whole-record boundary.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Record kinds. The on-disk values are frozen: recovery of logs
// written by older builds depends on them.
const (
	kindAdd    = byte(1) // u64 id, f64 t
	kindUpdate = byte(2) // u64 id, f64 t
	kindRemove = byte(3) // u64 id
	kindRate   = byte(4) // f64 rate
	kindSeal   = byte(5) // u64 epoch, f64 rate
	kindSealC  = byte(6) // u64 epoch, f64 rate, u32 nDrop, u32 nWeight, nDrop×u64, nWeight×(u64, f64)
)

const (
	// segMagic opens every segment file, followed by the u64 segment
	// sequence number (the header is segHeaderLen bytes in all).
	segMagic     = "LBWAL001"
	segHeaderLen = 16
	// snapMagic opens every snapshot sidecar file.
	snapMagic = "LBSNAP01"
	// frameLen is the per-record framing overhead: u32 length + u32 CRC.
	frameLen = 8
	// maxRecordLen bounds a decoded payload length: anything larger is
	// treated as log corruption rather than allocated.
	maxRecordLen = 1 << 26
	// maxReplayID bounds agent ids accepted during replay: registries
	// size internal tables by the highest id, so an implausibly large
	// id in a damaged log is corruption, not an allocation request.
	maxReplayID = 1 << 40
)

// crcTable is the Castagnoli polynomial (CRC32C), hardware-accelerated
// on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// weightEntry is one (id, weight) pair of a corrected seal record.
type weightEntry struct {
	id int
	w  float64
}

// record is one decoded log record.
type record struct {
	kind    byte
	id      int     // add/update/remove
	t       float64 // add/update bid; rate for kindRate
	epoch   uint64  // seal records
	rate    float64 // seal records
	drops   []int
	weights []weightEntry
}

// decodeRecord parses a CRC-verified payload. It returns an error for
// a malformed payload (truncated fields, unknown kind, inconsistent
// correction counts) — the reader treats that as corruption.
func decodeRecord(p []byte) (record, error) {
	if len(p) == 0 {
		return record{}, fmt.Errorf("wal: empty record payload")
	}
	rec := record{kind: p[0]}
	body := p[1:]
	switch rec.kind {
	case kindAdd, kindUpdate:
		if len(body) != 16 {
			return record{}, fmt.Errorf("wal: mutation record has %d payload bytes, want 16", len(body))
		}
		rec.id = int(binary.LittleEndian.Uint64(body))
		rec.t = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
	case kindRemove:
		if len(body) != 8 {
			return record{}, fmt.Errorf("wal: remove record has %d payload bytes, want 8", len(body))
		}
		rec.id = int(binary.LittleEndian.Uint64(body))
	case kindRate:
		if len(body) != 8 {
			return record{}, fmt.Errorf("wal: rate record has %d payload bytes, want 8", len(body))
		}
		rec.t = math.Float64frombits(binary.LittleEndian.Uint64(body))
	case kindSeal:
		if len(body) != 16 {
			return record{}, fmt.Errorf("wal: seal record has %d payload bytes, want 16", len(body))
		}
		rec.epoch = binary.LittleEndian.Uint64(body)
		rec.rate = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
	case kindSealC:
		if len(body) < 24 {
			return record{}, fmt.Errorf("wal: corrected seal record has %d payload bytes, want >= 24", len(body))
		}
		rec.epoch = binary.LittleEndian.Uint64(body)
		rec.rate = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		nDrop := int(binary.LittleEndian.Uint32(body[16:]))
		nWeight := int(binary.LittleEndian.Uint32(body[20:]))
		want := 24 + 8*nDrop + 16*nWeight
		if len(body) != want {
			return record{}, fmt.Errorf("wal: corrected seal record has %d payload bytes, want %d", len(body), want)
		}
		off := 24
		rec.drops = make([]int, nDrop)
		for i := range rec.drops {
			rec.drops[i] = int(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		rec.weights = make([]weightEntry, nWeight)
		for i := range rec.weights {
			rec.weights[i].id = int(binary.LittleEndian.Uint64(body[off:]))
			rec.weights[i].w = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:]))
			off += 16
		}
	default:
		return record{}, fmt.Errorf("wal: unknown record kind %d", rec.kind)
	}
	return rec, nil
}

// segName and snapName are the on-disk file names.
func segName(seq uint64) string    { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(epoch uint64) string { return fmt.Sprintf("snap-%020d.snap", epoch) }
