package wal

// Differential tests for the write-ahead log: scripted random
// histories run against a journaled registry (with an alloc.Stream
// shadow as the serial ground truth), and recovery must rebuild a
// registry whose sealed epochs are bit-for-bit identical — same
// canonical S, same ids, same bids, same rate — for every combination
// of original and recovery shard counts, for fresh and corrected
// epochs, from full-log replay and from snapshot-plus-tail.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alloc"
	"repro/internal/registry"
)

// sealRec freezes one sealed snapshot for bitwise comparison.
type sealRec struct {
	epoch uint64
	rate  uint64
	sum   uint64
	ids   []int
	vals  []uint64
}

func recordSnap(s *registry.Snapshot) sealRec {
	rec := sealRec{
		epoch: s.Epoch(),
		rate:  math.Float64bits(s.Rate()),
		sum:   math.Float64bits(s.Sum()),
		ids:   append([]int(nil), s.IDs()...),
	}
	rec.vals = make([]uint64, len(rec.ids))
	for i, id := range rec.ids {
		v, ok := s.Value(id)
		if !ok {
			panic("sealed id missing from its own snapshot")
		}
		rec.vals[i] = math.Float64bits(v)
	}
	return rec
}

func compareSnap(tb testing.TB, got *registry.Snapshot, want sealRec) {
	tb.Helper()
	if got.Epoch() != want.epoch {
		tb.Fatalf("epoch: got %d, want %d", got.Epoch(), want.epoch)
	}
	if math.Float64bits(got.Rate()) != want.rate {
		tb.Fatalf("rate: got %x, want %x", math.Float64bits(got.Rate()), want.rate)
	}
	if math.Float64bits(got.Sum()) != want.sum {
		tb.Fatalf("canonical S: got %x, want %x (diff %g)",
			math.Float64bits(got.Sum()), want.sum, got.Sum()-math.Float64frombits(want.sum))
	}
	ids := got.IDs()
	if len(ids) != len(want.ids) {
		tb.Fatalf("live count: got %d, want %d", len(ids), len(want.ids))
	}
	for i, id := range ids {
		if id != want.ids[i] {
			tb.Fatalf("ids[%d]: got %d, want %d", i, id, want.ids[i])
		}
		v, ok := got.Value(id)
		if !ok || math.Float64bits(v) != want.vals[i] {
			tb.Fatalf("value(%d): got %x ok=%v, want %x", id, math.Float64bits(v), ok, want.vals[i])
		}
	}
}

// randCorrection builds a correction over a random subset of the live
// ids: some dropped, some discounted with weights in (0, 1].
func randCorrection(rng *rand.Rand, live []int) *registry.Correction {
	c := &registry.Correction{Drop: map[int]bool{}, Weights: map[int]float64{}}
	for _, id := range live {
		switch rng.IntN(6) {
		case 0:
			c.Drop[id] = true
		case 1, 2:
			c.Weights[id] = 0.05 + 0.95*rng.Float64()
		}
	}
	return c
}

// mirrorCorrection applies a correction to the shadow stream the way
// the sealed epoch prices it: drops become removals, weights become
// rebids at t/w (an id that is both dropped and weighted is dropped).
func mirrorCorrection(tb testing.TB, st *alloc.Stream, c *registry.Correction) {
	tb.Helper()
	for id := range c.Drop {
		if _, ok := st.Value(id); ok {
			if err := st.Remove(id); err != nil {
				tb.Fatalf("mirror remove(%d): %v", id, err)
			}
		}
	}
	for id, w := range c.Weights {
		if c.Drop[id] || w == 1 {
			continue
		}
		if t, ok := st.Value(id); ok {
			if err := st.Update(id, t/w); err != nil {
				tb.Fatalf("mirror update(%d): %v", id, err)
			}
		}
	}
}

// TestRecoveryMatchesLiveHistory is the headline differential test:
// 32 seeded histories × original shard counts {1,4,32}, each ending in
// a fresh or corrected seal, recovered at shard counts {1,4,32} — the
// recovered registry's sealed epoch must be bitwise identical to the
// live one and to the serial alloc.Stream shadow. Even seeds recover
// through a snapshot plus log tail, odd seeds replay the whole log.
func TestRecoveryMatchesLiveHistory(t *testing.T) {
	for seed := 0; seed < 32; seed++ {
		for _, shards := range []int{1, 4, 32} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				dir := t.TempDir()
				opts := Options{Sync: SyncNone}
				if seed%2 == 0 {
					opts.SnapshotEvery = 3
				}
				w, err := Create(dir, opts)
				if err != nil {
					t.Fatal(err)
				}
				r, err := registry.New(registry.Config{Rate: 50, Shards: shards, Journal: w})
				if err != nil {
					t.Fatal(err)
				}
				st, err := alloc.NewStream(50)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15))
				var live []int
				maxID := -1
				n := 300 + rng.IntN(200)
				for i := 0; i < n; i++ {
					p := rng.Float64()
					switch {
					case p < 0.35 || len(live) == 0:
						bid := 0.1 + 10*rng.Float64()
						id, err := r.Add(bid)
						if err != nil {
							t.Fatal(err)
						}
						sid, err := st.Add(bid)
						if err != nil {
							t.Fatal(err)
						}
						if id != sid {
							t.Fatalf("id divergence: registry %d, stream %d", id, sid)
						}
						live = append(live, id)
						if id > maxID {
							maxID = id
						}
					case p < 0.60:
						id := live[rng.IntN(len(live))]
						bid := 0.1 + 10*rng.Float64()
						if err := r.Update(id, bid); err != nil {
							t.Fatal(err)
						}
						if err := st.Update(id, bid); err != nil {
							t.Fatal(err)
						}
					case p < 0.72 && len(live) > 1:
						j := rng.IntN(len(live))
						id := live[j]
						if err := r.Remove(id); err != nil {
							t.Fatal(err)
						}
						if err := st.Remove(id); err != nil {
							t.Fatal(err)
						}
						live[j] = live[len(live)-1]
						live = live[:len(live)-1]
					case p < 0.78:
						rate := 1 + 100*rng.Float64()
						if err := r.SetRate(rate); err != nil {
							t.Fatal(err)
						}
						if err := st.SetRate(rate); err != nil {
							t.Fatal(err)
						}
					case p < 0.92:
						snap := r.Seal()
						if math.Float64bits(snap.Sum()) != math.Float64bits(st.Sealed()) {
							t.Fatalf("live seal diverged from stream at op %d", i)
						}
					default:
						if _, err := r.SealCorrected(randCorrection(rng, live)); err != nil {
							t.Fatal(err)
						}
					}
				}

				// Final epoch: corrected for odd seeds, fresh for even.
				var final sealRec
				if seed%2 == 1 && len(live) > 0 {
					c := randCorrection(rng, live)
					snap, err := r.SealCorrected(c)
					if err != nil {
						t.Fatal(err)
					}
					final = recordSnap(snap)
					mirrorCorrection(t, st, c)
				} else {
					final = recordSnap(r.Seal())
				}
				if math.Float64bits(st.Sealed()) != final.sum {
					t.Fatalf("final live seal diverged from serial stream shadow")
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}

				for _, rshards := range []int{1, 4, 32} {
					r2, info, err := Recover(dir, registry.Config{Rate: 1, Shards: rshards})
					if err != nil {
						t.Fatalf("recover at %d shards: %v", rshards, err)
					}
					if seed%2 == 0 && info.SnapshotEpoch == 0 && final.epoch > 6 {
						t.Fatalf("expected a snapshot recovery, replayed the whole log")
					}
					compareSnap(t, r2.Snapshot(), final)
					if id, err := r2.Add(1.0); err != nil || id <= maxID {
						t.Fatalf("recovered id %d (err %v) not past pre-crash max %d", id, err, maxID)
					}
				}
			})
		}
	}
}

// TestConcurrentJournalRecovery hammers a journaled registry from
// concurrent workers (with a sealer racing them), then recovers the
// log at several shard counts: the recovered epoch must match the last
// live one bitwise, and the final canonical S must match a serial
// alloc.Stream replay of the merged worker logs. Run under -race this
// is also the writer's race test.
func TestConcurrentJournalRecovery(t *testing.T) {
	type op struct {
		kind byte
		id   int
		t    float64
	}
	dir := t.TempDir()
	w, err := Create(dir, Options{Sync: SyncNone, SnapshotEvery: 4, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := registry.New(registry.Config{Rate: 25, Shards: 8, Journal: w})
	if err != nil {
		t.Fatal(err)
	}

	const workers, opsPerWorker = 8, 1500
	logs := make([][]op, workers)
	done := make(chan int, workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			rng := rand.New(rand.NewPCG(uint64(wk), 77))
			var mine []int
			log := make([]op, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				p := rng.Float64()
				switch {
				case p < 0.4 || len(mine) == 0:
					bid := 0.1 + 10*rng.Float64()
					id, err := r.Add(bid)
					if err != nil {
						t.Errorf("worker %d: %v", wk, err)
						break
					}
					mine = append(mine, id)
					log = append(log, op{'a', id, bid})
				case p < 0.85:
					id := mine[rng.IntN(len(mine))]
					bid := 0.1 + 10*rng.Float64()
					if err := r.Update(id, bid); err != nil {
						t.Errorf("worker %d: %v", wk, err)
						break
					}
					log = append(log, op{'u', id, bid})
				default:
					j := rng.IntN(len(mine))
					id := mine[j]
					if err := r.Remove(id); err != nil {
						t.Errorf("worker %d: %v", wk, err)
						break
					}
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					log = append(log, op{'r', id, 0})
				}
				if wk == 0 && i%250 == 249 {
					r.Seal()
				}
			}
			logs[wk] = log
			done <- wk
		}(wk)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	final := recordSnap(r.Seal())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Serial ground truth: per-id histories are total orders (each id
	// is owned by one worker), so replaying id-by-id reproduces the
	// final live set; the canonical S is order-independent beyond that.
	maxID := -1
	for _, log := range logs {
		for _, o := range log {
			if o.id > maxID {
				maxID = o.id
			}
		}
	}
	byID := make([][]op, maxID+1)
	for _, log := range logs {
		for _, o := range log {
			byID[o.id] = append(byID[o.id], o)
		}
	}
	st, err := alloc.NewStream(25)
	if err != nil {
		t.Fatal(err)
	}
	liveBid := make(map[int]float64)
	for id, hist := range byID {
		bid, live := 0.0, false
		for _, o := range hist {
			switch o.kind {
			case 'a', 'u':
				bid, live = o.t, true
			case 'r':
				live = false
			}
		}
		if live {
			liveBid[id] = bid
		}
	}
	// Install the surviving population at its registry ids by adding
	// every id in ascending order and removing the dead ones — stream
	// ids are sequential, so this keeps them aligned.
	for id := 0; id <= maxID; id++ {
		bid, ok := liveBid[id]
		if !ok {
			bid = 1
		}
		sid, err := st.Add(bid)
		if err != nil {
			t.Fatal(err)
		}
		if sid != id {
			t.Fatalf("stream id %d, want %d", sid, id)
		}
	}
	for id := 0; id <= maxID; id++ {
		if _, ok := liveBid[id]; !ok {
			if err := st.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if math.Float64bits(st.Sealed()) != final.sum {
		t.Fatalf("final live seal diverged from serial stream replay")
	}

	for _, shards := range []int{1, 4, 32} {
		r2, _, err := Recover(dir, registry.Config{Rate: 1, Shards: shards})
		if err != nil {
			t.Fatalf("recover at %d shards: %v", shards, err)
		}
		compareSnap(t, r2.Snapshot(), final)
	}
}

// TestRestartContinues opens, serves, closes, reopens: epochs and ids
// must continue where the previous incarnation stopped.
func TestRestartContinues(t *testing.T) {
	dir := t.TempDir()
	cfg := registry.Config{Rate: 10, Shards: 4}
	r1, w1, info1, err := Open(dir, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info1.Fresh {
		t.Fatalf("expected a fresh log")
	}
	ids := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		id, err := r1.Add(float64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	first := recordSnap(r1.Seal())
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, w2, info2, err := Open(dir, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info2.Fresh {
		t.Fatalf("second open should recover, not start fresh")
	}
	compareSnap(t, r2.Snapshot(), first)
	id, err := r2.Add(99)
	if err != nil {
		t.Fatal(err)
	}
	if id <= ids[len(ids)-1] {
		t.Fatalf("id %d reused across restart (max was %d)", id, ids[len(ids)-1])
	}
	snap := r2.Seal()
	if snap.Epoch() != first.epoch+1 {
		t.Fatalf("epoch %d after restart, want %d", snap.Epoch(), first.epoch+1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third incarnation sees the post-restart state.
	r3, w3, _, err := Open(dir, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	compareSnap(t, r3.Snapshot(), recordSnap(snap))
}

// TestSyncPolicies pins the durability contract of each policy under
// an Abandon (a simulated crash that drops the unflushed buffer).
func TestSyncPolicies(t *testing.T) {
	t.Run("seal-durable", func(t *testing.T) {
		dir := t.TempDir()
		w, err := Create(dir, Options{Sync: SyncSeal})
		if err != nil {
			t.Fatal(err)
		}
		r, err := registry.New(registry.Config{Rate: 10, Shards: 4, Journal: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := r.Add(float64(i + 1)); err != nil {
				t.Fatal(err)
			}
		}
		atSeal := recordSnap(r.Seal())
		for i := 0; i < 20; i++ { // buffered after the seal: lost
			if _, err := r.Add(1); err != nil {
				t.Fatal(err)
			}
		}
		w.Abandon()
		r2, info, err := Recover(dir, registry.Config{Rate: 10, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		compareSnap(t, r2.Snapshot(), atSeal)
		if info.TornTail {
			t.Fatalf("clean fsync boundary reported a torn tail")
		}
	})
	t.Run("none-loses-buffer", func(t *testing.T) {
		dir := t.TempDir()
		w, err := Create(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		r, err := registry.New(registry.Config{Rate: 10, Shards: 4, Journal: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := r.Add(float64(i + 1)); err != nil {
				t.Fatal(err)
			}
		}
		r.Seal()
		w.Abandon()
		r2, _, err := Recover(dir, registry.Config{Rate: 10, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := r2.Snapshot(); got.N() != 0 || got.Epoch() != 1 {
			t.Fatalf("unsynced buffer survived the crash: %d live, epoch %d", got.N(), got.Epoch())
		}
	})
	t.Run("parse", func(t *testing.T) {
		for _, s := range []string{"batch", "seal", "interval", "none"} {
			p, err := ParseSyncPolicy(s)
			if err != nil || p.String() != s {
				t.Fatalf("round trip %q: %v (%v)", s, p, err)
			}
		}
		if _, err := ParseSyncPolicy("bogus"); err == nil {
			t.Fatalf("bogus policy accepted")
		}
	})
}

// TestCreateRefusesExistingLog: Create on a directory with a log must
// fail (Open recovers it instead).
func TestCreateRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatalf("Create over an existing log succeeded")
	}
}

// TestCompactionAndSnapshotFallback drives enough traffic through a
// small-segment log that snapshots compact the prefix away, then
// verifies recovery — including with the newest snapshot deliberately
// corrupted, which must fall back to the previous one.
func TestCompactionAndSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Sync: SyncNone, SegmentBytes: 4 << 10, SnapshotEvery: 2, BatchBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	r, err := registry.New(registry.Config{Rate: 10, Shards: 4, Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var live []int
	for i := 0; i < 2500; i++ {
		if len(live) < 40 || rng.IntN(3) == 0 {
			id, err := r.Add(0.1 + 10*rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			id := live[rng.IntN(len(live))]
			if err := r.Update(id, 0.1+10*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if i%150 == 149 {
			r.Seal()
		}
	}
	final := recordSnap(r.Seal())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("retention kept %d snapshots, want 1 or 2", len(snaps))
	}
	// Compaction trims exactly to the fallback (older) snapshot's
	// segment: everything before it is deleted, nothing after. Which
	// mid-run snapshot candidates the background writer skipped is
	// timing-dependent, but this invariant holds for whichever two
	// survive.
	if len(snaps) == 2 {
		older, err := readSnapshot(snaps[0].path)
		if err != nil {
			t.Fatal(err)
		}
		if segs[0].seq != older.seg {
			t.Fatalf("oldest segment %d, want compacted to fallback snapshot's segment %d", segs[0].seq, older.seg)
		}
	}

	check := func() {
		t.Helper()
		r2, info, err := Recover(dir, registry.Config{Rate: 1, Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		if info.SnapshotEpoch == 0 {
			t.Fatalf("recovery did not use a snapshot")
		}
		compareSnap(t, r2.Snapshot(), final)
	}
	check()

	// Corrupt the newest snapshot: recovery must fall back.
	newest := snaps[len(snaps)-1].path
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 2 {
		check()
	}

	// With every snapshot gone and the prefix compacted, recovery must
	// refuse rather than fabricate state.
	for _, s := range snaps {
		if err := os.Remove(s.path); err != nil {
			t.Fatal(err)
		}
	}
	if segs[0].seq > 1 {
		if _, _, err := Recover(dir, registry.Config{Rate: 1, Shards: 8}); err == nil {
			t.Fatalf("recovery fabricated state from a compacted log with no snapshot")
		}
	}
}

// TestOpenTruncatesTornTail appends garbage to the tail segment and
// verifies Open truncates it and keeps serving correctly.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := registry.Config{Rate: 10, Shards: 4}
	r1, w1, _, err := Open(dir, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r1.Add(float64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	pre := recordSnap(r1.Seal())
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn write: a full frame header promising more payload than
	// the file holds.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{17, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	r2, w2, info, err := Open(dir, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail {
		t.Fatalf("torn tail not reported")
	}
	compareSnap(t, r2.Snapshot(), pre)
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-11 {
		t.Fatalf("tail not truncated: %d bytes, want %d", after.Size(), before.Size()-11)
	}
	if _, err := r2.Add(42); err != nil {
		t.Fatal(err)
	}
	post := recordSnap(r2.Seal())
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r3, _, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareSnap(t, r3.Snapshot(), post)
}

// TestWALAppendAllocFree pins the zero-allocation append path.
func TestWALAppendAllocFree(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.Added(7, 1.25) // warm the buffer
	avg := testing.AllocsPerRun(2000, func() {
		w.Added(7, 1.25)
		w.Updated(7, 2.5)
		w.Removed(7)
		w.RateChanged(3.5)
	})
	if avg != 0 {
		t.Fatalf("append path allocates %.1f times per run, want 0", avg)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}
